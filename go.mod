module github.com/emlrtm/emlrtm

go 1.24
