// Policy sweep: run every registered runtime-manager planning policy over
// the *same* fleet of sampled workloads and compare them head to head.
//
// The pluggable policy layer makes the comparison honest: with P policies
// the generator regenerates each workload bit-identically P times, so
// per-policy rows differ only because the strategies differ. The paper's
// pacing heuristic, the quality-first maxaccuracy policy and the
// race-to-idle minenergy policy disagree exactly where the paper says
// they should — deadline misses vs. energy vs. delivered accuracy.
package main

import (
	"fmt"
	"log"
	"sort"

	emlrtm "github.com/emlrtm/emlrtm"
)

func main() {
	const workloads, seed = 24, 2026

	policies := emlrtm.Policies()
	fmt.Printf("sweeping %d policies %v over %d workloads (seed %d, %d runs)\n\n",
		len(policies), policies, workloads, seed, workloads*len(policies))

	rep, results, err := emlrtm.RunFleet(
		emlrtm.FleetGeneratorConfig{Seed: seed, Policies: policies}, workloads, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %7s %7s %11s %11s %10s %9s %6s %5s\n",
		"policy", "frames", "miss%", "p95Lat(ms)", "maxLat(ms)", "energy(J)", "thermal%", "plans", "migr")
	names := make([]string, 0, len(rep.ByPolicy))
	for name := range rep.ByPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := rep.ByPolicy[name]
		fmt.Printf("%-12s %7d %7.2f %11.1f %11.1f %10.1f %9.2f %6d %5d\n",
			name, g.Frames, 100*g.MissRate, 1000*g.P95LatencyS, 1000*g.MaxLatencyS,
			g.EnergyMJ/1000, 100*g.ThermalRate, g.Plans, g.Migrations)
	}

	// Every policy saw the same workloads: frame releases must match
	// pairwise, or the comparison above is comparing different work.
	released := map[string]int{}
	for _, r := range results {
		released[r.Policy] += r.Released
	}
	for _, name := range names {
		if released[name] != released[names[0]] {
			fmt.Printf("\nWARNING: %s released %d frames, %s released %d — workloads diverged\n",
				name, released[name], names[0], released[names[0]])
			return
		}
	}
	fmt.Printf("\nall policies released identical work (%d frames each); differences above are pure strategy\n",
		released[names[0]])

	// Drill into the sharpest disagreement: the workload where the best
	// and worst policy miss rates differ the most.
	byWorkload := map[string]map[string]emlrtm.FleetResult{}
	for _, r := range results {
		if byWorkload[r.Name] == nil {
			byWorkload[r.Name] = map[string]emlrtm.FleetResult{}
		}
		byWorkload[r.Name][r.Policy] = r
	}
	worstName, worstSpread := "", -1.0
	for name, runs := range byWorkload {
		lo, hi := 1.0, 0.0
		for _, r := range runs {
			if r.Released == 0 {
				continue
			}
			miss := float64(r.Missed+r.Dropped) / float64(r.Released)
			if miss < lo {
				lo = miss
			}
			if miss > hi {
				hi = miss
			}
		}
		if hi-lo > worstSpread {
			worstSpread, worstName = hi-lo, name
		}
	}
	if worstName != "" {
		fmt.Printf("\nsharpest disagreement: %s (miss-rate spread %.1f%%)\n", worstName, 100*worstSpread)
		for _, name := range names {
			r := byWorkload[worstName][name]
			fmt.Printf("  %-12s miss %5.1f%%  p95 %7.1f ms  %7.1f J  %2d migrations\n",
				name, 100*float64(r.Missed+r.Dropped)/float64(max(r.Released, 1)),
				1000*r.P95LatencyS, r.EnergyMJ/1000, r.Migrations)
		}
	}
}
