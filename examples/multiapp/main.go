// Multiapp: the paper's Fig 2 runtime scenario through the public API —
// two DNNs, an AR/VR app and a thermal disturbance on an NPU-equipped
// flagship SoC, managed by the runtime manager's knobs and monitors.
//
// Expected timeline (the paper's narrative):
//
//	t=0   DNN1 runs 100% on the NPU
//	t=5   DNN2 (stricter latency) claims the NPU; DNN1 moves to the GPU,
//	      compressed to 75%
//	t=15  AR/VR occupies the GPU; DNN1 moves to the big CPU at 25%
//	t≈22  the device heats up; the manager sheds DNN1 to a low-power
//	      allocation
//	t=25  DNN2's accuracy requirement drops; both DNNs co-locate on the
//	      NPU, dynamically scaled
package main

import (
	"fmt"
	"log"
)

import emlrtm "github.com/emlrtm/emlrtm"

func main() {
	scenario := emlrtm.Fig2Scenario()
	engine, mgr, report, err := emlrtm.RunScenario(scenario, emlrtm.FlagshipSoC(), 0.25, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %.0fs; %d plans, %d migrations, max temp %.1f°C (throttle %.0f°C)\n",
		report.DurationS, mgr.Plans(), report.Migrations, report.MaxTempC, engine.ThrottleC())

	fmt.Println("\ntimeline:")
	for _, ev := range report.Events {
		switch ev.Kind.String() {
		case "app-start", "migrated", "thermal-alarm":
			fmt.Printf("  t=%6.2fs %-13s %-6s %s\n", ev.TimeS, ev.Kind, ev.App, ev.Note)
		}
	}

	fmt.Println("\nfinal state:")
	for _, a := range report.Apps {
		if a.Kind != emlrtm.KindDNN {
			continue
		}
		fmt.Printf("  %s: %s at %s, %d/%d frames on time (avg %.1f ms)\n",
			a.Name, a.Profile.Level(a.Level).Name, a.Placement.Cluster,
			a.Completed-a.Missed, a.Released, a.AvgLatency*1000)
	}

	// The Fig 5 interface: what the manager actually turned.
	if reg := mgr.Registry(); reg != nil {
		fmt.Printf("\nknobs:    %v\n", reg.KnobNames(""))
		fmt.Printf("monitors: %v\n", reg.MonitorNames(""))
	}
}
