// Learned policy, end to end: train a state → policy selection table on a
// seeded fleet, inspect what it learned, then sweep it against its own
// base policies on the same workloads and read the per-workload regret.
//
// This is the paper's "heuristic vs. learned managers" comparison made
// runnable: the learned policy never invents knob settings — it only picks
// which base strategy plans each tick, per discretised system state — so
// everything it wins over the best single policy comes from switching
// strategies as conditions change (thermal headroom, power budget,
// deadline slack, app count).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	emlrtm "github.com/emlrtm/emlrtm"
)

func main() {
	const workloads, seed = 24, 2026

	// 1. Train: every workload under every arm, then epsilon-greedy
	// refinement. Deterministic — rerunning this example retrains the
	// byte-identical table.
	cfg := emlrtm.PolicyTrainConfig{Seed: seed, Workloads: workloads, Epochs: 2, Epsilon: 0.1}
	table, rep, err := emlrtm.TrainPolicy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d workloads (%d runs): %d states, arms %v\n\n",
		rep.Workloads, rep.Runs, rep.States, rep.Arms)

	// 2. Inspect: the table is plain data — per state, per-arm visit
	// counts and mean costs plus the greedy choice.
	fmt.Println("what the table learned (state: chosen arm, per-arm mean cost):")
	keys := make([]string, 0, len(table.States))
	for k := range table.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := table.States[k]
		fmt.Printf("  %-10s -> %-12s costs:", k, st.Arm)
		for i, arm := range table.Arms {
			if st.Visits[i] == 0 {
				fmt.Printf("  %s=unvisited", arm)
				continue
			}
			fmt.Printf("  %s=%.3f", arm, st.Cost[i])
		}
		fmt.Println()
	}
	fmt.Printf("  fallback for unseen states: %s\n\n", table.Fallback)

	// 3. Serialise and reload through the registry: "learned:<path>" works
	// anywhere a policy name does.
	dir, err := os.MkdirTemp("", "learnedpolicy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "table.json")
	if err := table.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	learned := "learned:" + path

	// 4. Sweep the learned policy against its arms on the training fleet.
	sweep := append(append([]string(nil), rep.Arms...), learned)
	frep, _, err := emlrtm.RunFleet(
		emlrtm.FleetGeneratorConfig{Seed: seed, Policies: sweep}, workloads, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %7s %11s %10s | %10s %14s %16s\n",
		"policy", "miss%", "p95Lat(ms)", "energy(J)", "oracleWins", "missRegret(pp)", "energyRegret(J)")
	names := make([]string, 0, len(frep.ByPolicy))
	for name := range frep.ByPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, r := frep.ByPolicy[name], frep.Regret[name]
		display := name
		if name == learned {
			display = "learned"
		}
		fmt.Printf("%-28s %7.2f %11.1f %10.1f | %7d/%-2d %14.2f %16.2f\n",
			display, 100*g.MissRate, 1000*g.P95LatencyS, g.EnergyMJ/1000,
			r.OracleWins, r.Workloads, 100*r.MissRateRegret, r.EnergyRegretMJ/1000)
	}

	fmt.Println("\nregret reads against the per-workload oracle: zero means never")
	fmt.Println("beaten on that metric. The learned row should sit at or below every")
	fmt.Println("base policy — on its training seed it only has to pick the right arm.")
}
