// Fleet evaluation: sample a diverse population of runtime scenarios
// (platforms × workload mixes × disturbance classes), run each one as an
// independent simulator + runtime-manager instance across a worker pool,
// and compare how the manager holds up per platform and per disturbance
// class. The same seed gives the same report on any machine at any
// parallelism.
package main

import (
	"fmt"
	"log"
	"sort"

	emlrtm "github.com/emlrtm/emlrtm"
)

func main() {
	const scenarios, seed = 32, 2026

	rep, results, err := emlrtm.RunFleet(
		emlrtm.FleetGeneratorConfig{Seed: seed}, scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d scenarios (seed %d): %d frames, %.1f%% missed, %.1f J\n",
		rep.Overall.Scenarios, seed, rep.Overall.Frames,
		100*rep.Overall.MissRate, rep.Overall.EnergyMJ/1000)

	// Maps iterate in random order; sort so the same seed prints the same
	// report every run.
	platforms := make([]string, 0, len(rep.ByPlatform))
	for name := range rep.ByPlatform {
		platforms = append(platforms, name)
	}
	sort.Strings(platforms)
	fmt.Println("\nper platform:")
	for _, name := range platforms {
		g := rep.ByPlatform[name]
		fmt.Printf("  %-14s %2d scenarios  miss %5.1f%%  p95 %6.1f ms  thermal %5.2f%%\n",
			name, g.Scenarios, 100*g.MissRate, 1000*g.P95LatencyS, 100*g.ThermalRate)
	}
	classes := make([]string, 0, len(rep.ByClass))
	for class := range rep.ByClass {
		classes = append(classes, string(class))
	}
	sort.Strings(classes)
	fmt.Println("\nper class:")
	for _, class := range classes {
		g := rep.ByClass[emlrtm.FleetClass(class)]
		fmt.Printf("  %-8s %2d scenarios  miss %5.1f%%  plans %3d  migrations %2d\n",
			class, g.Scenarios, 100*g.MissRate, g.Plans, g.Migrations)
	}

	// The worst single scenario is the interesting one to drill into.
	worst := results[0]
	for _, r := range results {
		if r.Released > 0 && float64(r.Missed+r.Dropped)/float64(r.Released) >
			float64(worst.Missed+worst.Dropped)/float64(max(worst.Released, 1)) {
			worst = r
		}
	}
	fmt.Printf("\nworst scenario: %s (%d/%d frames late or dropped, p95 %.1f ms)\n",
		worst.Name, worst.Missed+worst.Dropped, worst.Released, 1000*worst.P95LatencyS)
}
