// Throughput tuning: run the same seeded fleet twice — once carrying the
// raw per-job latency samples and once with them dropped (the fleetsim
// -nolat switch, FleetRunner.DropLatencies here) — and compare wall time
// and result size. Dropping samples is what makes million-scenario sweeps
// (learned-policy training data, design-space exploration) practical: the
// scalar per-scenario mean/p95/max stats survive, only the pooled group
// percentile degrades to the worst per-scenario p95.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	emlrtm "github.com/emlrtm/emlrtm"
)

func main() {
	const scenarios, seed = 48, 7

	gen, err := emlrtm.NewFleetGenerator(emlrtm.FleetGeneratorConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	scens := gen.Generate(scenarios)

	run := func(drop bool) (emlrtm.FleetReport, []emlrtm.FleetResult, time.Duration) {
		runner := &emlrtm.FleetRunner{DropLatencies: drop}
		start := time.Now()
		results := runner.Run(scens)
		wall := time.Since(start)
		return emlrtm.AggregateFleet(seed, results), results, wall
	}

	repFull, resFull, wallFull := run(false)
	repLean, resLean, wallLean := run(true)

	sizeOf := func(res []emlrtm.FleetResult) int {
		b, err := json.Marshal(res)
		if err != nil {
			log.Fatal(err)
		}
		return len(b)
	}
	fullBytes, leanBytes := sizeOf(resFull), sizeOf(resLean)

	fmt.Printf("fleet of %d scenarios (seed %d)\n\n", scenarios, seed)
	fmt.Printf("%-18s %12s %14s %12s\n", "", "wall", "results JSON", "scen/sec")
	fmt.Printf("%-18s %12v %13.1fK %12.1f\n", "with latencies",
		wallFull.Round(time.Millisecond), float64(fullBytes)/1024,
		float64(scenarios)/wallFull.Seconds())
	fmt.Printf("%-18s %12v %13.1fK %12.1f\n", "-nolat",
		wallLean.Round(time.Millisecond), float64(leanBytes)/1024,
		float64(scenarios)/wallLean.Seconds())
	fmt.Printf("\nresult payload shrinks %.1fx; per-scenario scalar stats survive:\n",
		float64(fullBytes)/float64(leanBytes))

	fmt.Printf("  pooled  mean %.2f ms  p95 %6.2f ms  max %6.2f ms\n",
		1000*repFull.Overall.MeanLatencyS, 1000*repFull.Overall.P95LatencyS,
		1000*repFull.Overall.MaxLatencyS)
	fmt.Printf("  -nolat  mean %.2f ms  p95 %6.2f ms  max %6.2f ms  (p95 approximated)\n",
		1000*repLean.Overall.MeanLatencyS, 1000*repLean.Overall.P95LatencyS,
		1000*repLean.Overall.MaxLatencyS)
}
