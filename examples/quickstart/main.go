// Quickstart: build the paper's dynamic DNN, train it incrementally
// (Fig 3), evaluate every configuration (Fig 4(b)), and switch
// configurations at runtime — the whole application-side contribution in
// one short program.
package main

import (
	"fmt"
	"log"
	"os"

	emlrtm "github.com/emlrtm/emlrtm"
)

func main() {
	// A reduced-scale dataset and model keep the demo under a minute;
	// swap in Default*Config for paper scale.
	dcfg := emlrtm.QuickDatasetConfig()
	ds, err := emlrtm.GenerateDataset(dcfg)
	if err != nil {
		log.Fatal(err)
	}

	model, err := emlrtm.NewDynDNN(emlrtm.QuickDynDNNConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Incremental training: step i trains group i with groups < i frozen
	// (Fig 3(b)). Earlier groups are bit-identical afterwards, which is
	// what makes runtime pruning free.
	tcfg := emlrtm.DefaultTrainConfig()
	tcfg.EpochsPerStep = 4
	tcfg.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	if _, err := model.TrainIncremental(ds, tcfg); err != nil {
		log.Fatal(err)
	}

	fmt.Println("configuration ladder (Fig 4(b)):")
	for _, ev := range model.EvaluateAll(ds) {
		fmt.Printf("  %4s model: top-1 %.1f%% (±%.1f over classes), confidence %.2f, %d MACs, %d params\n",
			ev.LevelName, ev.Accuracy*100, ev.ClassStd*100, ev.Confidence, ev.MACs, ev.Params)
	}

	// Runtime switching: a pointer bump, no retraining, no extra storage.
	batch := ds.ValX.Slice4D(0, 4)
	for _, level := range []int{4, 1, 3} {
		model.SetLevel(level)
		out := model.Forward(batch)
		pred := out.ArgMaxRow()
		fmt.Printf("at %s: predictions for 4 validation images: %v (true: %v)\n",
			model.LevelName(level), pred, ds.ValY[:4])
	}

	fmt.Printf("\none dynamic model stores %d KiB and serves all %d configurations\n",
		model.MemoryBytes(model.Levels())/1024, model.Levels())
}
