// Budgetplanner: explore the Fig 4(a) operating-point space of the Odroid
// XU3 and answer budget queries, including the paper's two worked
// examples: (400 ms, 100 mJ) → 100% model on the A7 @ 900 MHz, and
// (200 ms, 150 mJ) → 75% model on the A15 near 1 GHz.
package main

import (
	"fmt"
)

import emlrtm "github.com/emlrtm/emlrtm"

func main() {
	points := emlrtm.OperatingPoints(emlrtm.OdroidXU3(), emlrtm.PaperReferenceProfile(),
		emlrtm.EnumerateOptions{})
	fmt.Printf("operating-point space: %d points (4 configs × 17 A15 + 12 A7 DVFS levels)\n",
		len(points))

	frontier := emlrtm.ParetoFrontier(points)
	fmt.Printf("Pareto frontier (latency, energy, accuracy): %d points\n\n", len(frontier))

	queries := []struct {
		name string
		b    emlrtm.Budget
	}{
		{"paper example 1: 400 ms, 100 mJ", emlrtm.Budget{MaxLatencyS: 0.400, MaxEnergyMJ: 100}},
		{"paper example 2: 200 ms, 150 mJ", emlrtm.Budget{MaxLatencyS: 0.200, MaxEnergyMJ: 150}},
		{"tight: 60 ms, any energy", emlrtm.Budget{MaxLatencyS: 0.060}},
		{"frugal: any latency, 30 mJ", emlrtm.Budget{MaxEnergyMJ: 30}},
		{"accuracy floor 0.70, 300 ms", emlrtm.Budget{MaxLatencyS: 0.300, MinAccuracy: 0.70}},
		{"impossible: 1 ms", emlrtm.Budget{MaxLatencyS: 0.001}},
	}
	for _, q := range queries {
		best, ok := emlrtm.BestOperatingPoint(points, q.b)
		if !ok {
			fmt.Printf("%-34s -> no feasible operating point\n", q.name)
			continue
		}
		fmt.Printf("%-34s -> %s\n", q.name, best)
	}

	// Minimum-energy planning for a soft-real-time app: sweep frame rates.
	fmt.Println("\nminimum-energy point per frame-rate target:")
	for _, fps := range []float64{1, 2, 5, 10, 25} {
		best, ok := emlrtm.MinEnergyOperatingPoint(points, emlrtm.Budget{MaxLatencyS: 1 / fps})
		if !ok {
			fmt.Printf("  %5.0f fps: infeasible on this platform\n", fps)
			continue
		}
		fmt.Printf("  %5.0f fps: %s\n", fps, best)
	}
}
