// Autoscale: drive the dynamic DNN's configuration knob per input using
// the paper's *confidence* monitor — start every inference at the 25%
// configuration and escalate through the nested configurations only while
// the top-1 softmax confidence stays below a threshold. Sweeping the
// threshold traces an accuracy/compute curve inside a single model,
// without the storage and reload costs of the big/little baseline.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
)

func main() {
	dcfg := dataset.QuickConfig()
	dcfg.TrainN, dcfg.ValN = 1500, 400
	ds := dataset.MustGenerate(dcfg)

	model := dyndnn.MustNew(dyndnn.QuickConfig())
	tcfg := dyndnn.QuickTrainConfig()
	tcfg.EpochsPerStep = 4
	tcfg.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	if _, err := model.TrainIncremental(ds, tcfg); err != nil {
		log.Fatal(err)
	}

	scaler := dyndnn.NewAutoScaler(model, 0.8)
	x := ds.ValX
	y := ds.ValY

	fmt.Println("confidence-threshold sweep (per-input escalation through nested configs):")
	fmt.Println("threshold  accuracy  mean MACs  mean level  final-level histogram")
	reps, err := scaler.ThresholdSweep(x, y, []float64{0, 0.5, 0.7, 0.85, 0.95, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	thresholds := []float64{0, 0.5, 0.7, 0.85, 0.95, 1.0}
	for i, r := range reps {
		fmt.Printf("   %4.2f     %5.1f%%   %9.0f  %9.2f   %v\n",
			thresholds[i], 100*r.Accuracy, r.MeanMACs, r.MeanLevel, r.LevelCounts)
	}

	fmt.Println("\nfixed configurations for comparison:")
	for _, ev := range model.EvaluateAll(ds) {
		fmt.Printf("   %4s model: %5.1f%%  %9d MACs\n", ev.LevelName, 100*ev.Accuracy, ev.MACs)
	}
	fmt.Println("\nthe sweep's mid thresholds should sit above the fixed-size curve:")
	fmt.Println("same accuracy at less average compute, from one set of weights.")
}
