// Designtime: the Fig 1 exercise — deploy the same dynamic DNN across
// three platform classes (NPU flagship, GPU Jetson, CPU-only Odroid) under
// three application requirements, and see how much compression each
// platform needs, or where a requirement is simply unreachable.
package main

import (
	"fmt"
)

import emlrtm "github.com/emlrtm/emlrtm"

func main() {
	prof := emlrtm.PaperReferenceProfile()
	requirements := []struct {
		name   string
		fps    float64
		minAcc float64
	}{
		{"1 fps, very-high accuracy", 1, 0.71},
		{"25 fps, high accuracy", 25, 0.68},
		{"60 fps, medium accuracy", 60, 0.62},
	}

	for _, plat := range []*emlrtm.Platform{
		emlrtm.FlagshipSoC(), emlrtm.JetsonNano(), emlrtm.OdroidXU3(),
	} {
		points := emlrtm.OperatingPoints(plat, prof, emlrtm.EnumerateOptions{})
		fmt.Printf("%s:\n", plat.Name)
		for _, req := range requirements {
			b := emlrtm.Budget{MaxLatencyS: 1 / req.fps, MinAccuracy: req.minAcc}
			best, ok := emlrtm.MinEnergyOperatingPoint(points, b)
			if ok {
				fmt.Printf("  %-28s -> %s model on %s @ %.0f MHz (%.1f ms, %.1f mJ)\n",
					req.name, best.LevelName, best.Cluster, best.FreqGHz*1000,
					best.LatencyS*1000, best.EnergyMJ)
				continue
			}
			// Requirement unreachable: report the best accuracy compromise
			// (the paper's point: weaker platforms trade accuracy to meet
			// the same time budget).
			relaxed, ok2 := emlrtm.BestOperatingPoint(points, emlrtm.Budget{MaxLatencyS: 1 / req.fps})
			if ok2 {
				fmt.Printf("  %-28s -> accuracy unmet; closest: %s model on %s (top-1 %.1f%%)\n",
					req.name, relaxed.LevelName, relaxed.Cluster, relaxed.Accuracy*100)
			} else {
				fmt.Printf("  %-28s -> infeasible at any configuration\n", req.name)
			}
		}
	}
}
