// Sharded fleet evaluation: split one fleet across separate OS processes,
// as a multi-machine deployment would, then merge the shard files and
// prove the merged report is byte-identical to a single-process run.
//
// Each shard process is a real `fleetsim -shard i/m` invocation (exec'd
// via `go run`), owning a contiguous slice of the scenario index range.
// Per-scenario SplitMix64 seeds make every slice independently
// reproducible, so the processes share nothing but their command line.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	emlrtm "github.com/emlrtm/emlrtm"
)

const (
	scenarios = 24
	seed      = 7
	shards    = 3
)

func main() {
	root := moduleRoot()
	dir, err := os.MkdirTemp("", "shardedfleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Run every shard as its own process, concurrently.
	paths := make([]string, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i+1))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command("go", "run", "./cmd/fleetsim",
				"-scenarios", fmt.Sprint(scenarios),
				"-seed", fmt.Sprint(seed),
				"-shard", fmt.Sprintf("%d/%d", i+1, shards),
				"-out", paths[i])
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				errs[i] = fmt.Errorf("shard %d/%d: %v\n%s", i+1, shards, err, out)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Read the shard files back and merge them.
	shardResults := make([]emlrtm.FleetShardResult, shards)
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		shardResults[i], err = emlrtm.ReadFleetShard(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d: scenarios [%d,%d) of %d, %d results\n",
			i+1, shardResults[i].Lo, shardResults[i].Hi,
			shardResults[i].Total, len(shardResults[i].Results))
	}
	merged, _, err := emlrtm.MergeFleetShards(shardResults...)
	if err != nil {
		log.Fatal(err)
	}

	// The whole point: the merged report must be byte-identical to a
	// single-process run of the same fleet.
	single, _, err := emlrtm.RunFleet(
		emlrtm.FleetGeneratorConfig{Seed: seed}, scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}
	mergedJSON, err := json.Marshal(merged)
	if err != nil {
		log.Fatal(err)
	}
	singleJSON, err := json.Marshal(single)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(mergedJSON, singleJSON) {
		log.Fatalf("merged report differs from single-process run:\n%s\n%s",
			mergedJSON, singleJSON)
	}

	fmt.Printf("\nmerged %d shards == single-process run (byte-identical report)\n", shards)
	fmt.Printf("fleet of %d scenarios (seed %d): %d frames, %.1f%% missed, %.1f J, p95 %.1f ms\n",
		merged.Overall.Scenarios, seed, merged.Overall.Frames,
		100*merged.Overall.MissRate, merged.Overall.EnergyMJ/1000,
		1000*merged.Overall.P95LatencyS)
}

// moduleRoot locates the repo so the shard processes can be exec'd from
// any working directory.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		log.Fatalf("locating module root: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		log.Fatal("run this example from inside the emlrtm module")
	}
	return filepath.Dir(gomod)
}
