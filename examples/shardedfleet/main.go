// Sharded fleet evaluation with a mid-run crash: split one fleet across
// separate OS processes, SIGKILL one of them partway through, then let the
// orchestrator resume the killed shard from its last flushed scenario and
// merge — proving the final report is byte-identical to a single-process
// run, crash and all.
//
// Each shard process is a real `fleetsim -shard i/m -resume` invocation
// streaming results to an NDJSON file, one flushed line per completed
// scenario. Per-scenario SplitMix64 seeds make every slice independently
// reproducible, so the processes share nothing but their command line —
// and a killed process loses at most a partial trailing line, which the
// resume truncates and re-runs.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	emlrtm "github.com/emlrtm/emlrtm"
)

const (
	scenarios = 48
	seed      = 7
	shards    = 3
)

func main() {
	root := moduleRoot()
	dir, err := os.MkdirTemp("", "shardedfleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build fleetsim once; `go run` would put a compiler between us and the
	// process we intend to SIGKILL.
	bin := filepath.Join(dir, "fleetsim")
	if out, err := command(root, "go", "build", "-o", bin, "./cmd/fleetsim").CombinedOutput(); err != nil {
		log.Fatalf("building fleetsim: %v\n%s", err, out)
	}

	argvFor := func(spec emlrtm.FleetShardSpec) []string {
		return []string{bin,
			"-scenarios", fmt.Sprint(scenarios),
			"-seed", fmt.Sprint(seed),
			"-shard", fmt.Sprintf("%d/%d", spec.Index+1, spec.Count),
			"-resume",
			"-workers", "1",
			"-out", spec.Path,
		}
	}

	// Start shard 1 on its own and kill it once a few scenarios have been
	// flushed: a stand-in for a spot-instance preemption or OOM kill.
	spec := emlrtm.FleetShardSpec{
		Index: 0, Count: shards,
		Path: filepath.Join(dir, emlrtm.FleetStreamFileName(0, shards)),
	}
	victim := argvFor(spec)
	cmd := command(root, victim[0], victim[1:]...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	flushed, err := waitForRecords(spec.Path, 3, 30*time.Second)
	if err != nil {
		cmd.Process.Kill()
		log.Fatal(err)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		log.Fatal(err)
	}
	cmd.Wait()
	fmt.Printf("killed shard 1/%d after %d flushed scenarios (stream survives in %s)\n",
		shards, flushed, filepath.Base(spec.Path))

	// Orchestrate the whole fleet over the same directory: the orchestrator
	// finds shard 1's partial stream, resumes it from the last flushed
	// scenario, runs shards 2..m fresh, and merges as they complete.
	report, _, err := emlrtm.OrchestrateFleet(emlrtm.FleetOrchestratorConfig{
		Config:    emlrtm.FleetGeneratorConfig{Seed: seed},
		Workloads: scenarios,
		Shards:    shards,
		Dir:       dir,
		Start:     emlrtm.FleetCommandStart(argvFor, os.Stderr),
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The whole point: despite the kill, the orchestrated report must be
	// byte-identical to a single-process run of the same fleet.
	single, _, err := emlrtm.RunFleet(
		emlrtm.FleetGeneratorConfig{Seed: seed}, scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}
	orchJSON, err := json.Marshal(report)
	if err != nil {
		log.Fatal(err)
	}
	singleJSON, err := json.Marshal(single)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(orchJSON, singleJSON) {
		log.Fatalf("orchestrated report differs from single-process run:\n%s\n%s",
			orchJSON, singleJSON)
	}

	fmt.Printf("\norchestrated %d shards (1 killed & resumed) == single-process run (byte-identical report)\n", shards)
	fmt.Printf("fleet of %d scenarios (seed %d): %d frames, %.1f%% missed, %.1f J, p95 %.1f ms\n",
		report.Overall.Scenarios, seed, report.Overall.Frames,
		100*report.Overall.MissRate, report.Overall.EnergyMJ/1000,
		1000*report.Overall.P95LatencyS)
}

// waitForRecords polls an NDJSON stream until it holds at least want
// record lines (beyond the header), returning how many were flushed.
func waitForRecords(path string, want int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		if data, err := os.ReadFile(path); err == nil {
			if n := bytes.Count(data, []byte("\n")) - 1; n >= want {
				return n, nil
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("no stream progress in %s after %v", path, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func command(dir, name string, args ...string) *exec.Cmd {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	return cmd
}

// moduleRoot locates the repo so fleetsim can be built from any working
// directory.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		log.Fatalf("locating module root: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		log.Fatal("run this example from inside the emlrtm module")
	}
	return filepath.Dir(gomod)
}
