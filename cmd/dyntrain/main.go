// Command dyntrain trains the dynamic DNN with the paper's incremental
// procedure (Fig 3) on the synthetic dataset and reports the Fig 4(b)
// accuracy table plus the configuration inventory (MACs, parameters,
// memory, switch costs).
//
// Usage:
//
//	dyntrain [-quick] [-seed N] [-epochs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/experiments"
	"github.com/emlrtm/emlrtm/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	opts := experiments.Options{
		Quick: *quick,
		Seed:  *seed,
		Logf:  func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}

	start := time.Now()
	res, err := experiments.TrainDynamic(opts)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained in %.1fs\n\n", time.Since(start).Seconds())
	fmt.Print(res.Fig4b.String())
	fmt.Printf("\naccuracy monotone: %v, spread %.1f points (paper: 56.0 → 71.2 = 15.2)\n\n",
		res.AccuracyMonotone(), res.AccuracySpread()*100)

	inv := trace.NewTable("Configuration inventory", "Config", "MACs", "Params",
		"Memory (KiB)", "Switch-in latency")
	scm := dyndnn.DefaultSwitchCostModel()
	m := res.Model
	for level := 1; level <= m.Levels(); level++ {
		sw := scm.DynamicSwitch(m.Levels(), level)
		inv.AddRow(m.LevelName(level), m.MACs(level), m.Params(level),
			float64(m.MemoryBytes(level))/1024, fmt.Sprintf("%.1fµs", sw.LatencyS*1e6))
	}
	fmt.Print(inv.String())

	cmp := dyndnn.CompareStorage(m)
	fmt.Printf("\nstorage: %s (static multi-model vs one dynamic model)\n", cmp)
}
