// Command fleetsim runs a fleet of generated scenarios — many independent
// simulator + runtime-manager instances — across a worker pool and reports
// aggregate quality-of-service, energy and thermal statistics broken down
// by platform and scenario class.
//
// The same seed yields a byte-identical report for any -workers value:
// scenario generation and execution are deterministic, and aggregation is
// order-stable.
//
// Usage:
//
//	fleetsim [-scenarios 64] [-seed 1] [-workers N] [-platforms a,b]
//	         [-classes steady,thermal] [-format json|table] [-results]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/emlrtm/emlrtm/internal/fleet"
	"github.com/emlrtm/emlrtm/internal/trace"
)

func main() {
	scenarios := flag.Int("scenarios", 64, "number of scenarios to generate")
	seed := flag.Uint64("seed", 1, "master seed (per-scenario seeds derive from it)")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	platforms := flag.String("platforms", "", "comma-separated platform names (empty = all)")
	classes := flag.String("classes", "", "comma-separated scenario classes (empty = all)")
	format := flag.String("format", "json", "output format: json or table")
	results := flag.Bool("results", false, "include per-scenario results (json format)")
	progress := flag.Bool("progress", false, "print progress to stderr")
	flag.Parse()

	if *scenarios <= 0 {
		log.Fatalf("fleetsim: -scenarios %d must be positive", *scenarios)
	}
	cfg := fleet.GeneratorConfig{Seed: *seed}
	if *platforms != "" {
		cfg.Platforms = strings.Split(*platforms, ",")
	}
	if *classes != "" {
		for _, c := range strings.Split(*classes, ",") {
			cfg.Classes = append(cfg.Classes, fleet.Class(c))
		}
	}

	gen, err := fleet.NewGenerator(cfg)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	scens := gen.Generate(*scenarios)
	runner := &fleet.Runner{Workers: *workers}
	if *progress {
		runner.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfleetsim: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res := runner.Run(scens)
	rep := fleet.Aggregate(*seed, res)

	switch *format {
	case "json":
		out := struct {
			fleet.Report
			Results []fleet.Result `json:"results,omitempty"`
		}{Report: rep}
		if *results {
			out.Results = res
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
	case "table":
		printTables(rep)
	default:
		log.Fatalf("fleetsim: unknown format %q", *format)
	}
}

func printTables(rep fleet.Report) {
	t := trace.NewTable(
		fmt.Sprintf("fleet report (seed %d, %d scenarios)", rep.Seed, rep.Overall.Scenarios),
		"group", "scen", "frames", "miss%", "meanLat(ms)", "p95Lat(ms)",
		"energy(J)", "thermal%", "plans", "migr", "oppSw")
	addRow := func(name string, s fleet.GroupStats) {
		t.AddRow(name, s.Scenarios, s.Frames, 100*s.MissRate,
			1000*s.MeanLatencyS, 1000*s.P95LatencyS,
			s.EnergyMJ/1000, 100*s.ThermalRate,
			s.Plans, s.Migrations, s.OPPSwitches)
	}
	addRow("overall", rep.Overall)
	for _, name := range sortedKeys(rep.ByPlatform) {
		addRow("platform:"+name, rep.ByPlatform[name])
	}
	classes := make([]string, 0, len(rep.ByClass))
	for c := range rep.ByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		addRow("class:"+c, rep.ByClass[fleet.Class(c)])
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
}

func sortedKeys(m map[string]fleet.GroupStats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
