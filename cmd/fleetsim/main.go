// Command fleetsim runs a fleet of generated scenarios — many independent
// simulator + runtime-manager instances — across a worker pool and reports
// aggregate quality-of-service, energy and thermal statistics broken down
// by platform, scenario class and planning policy.
//
// The same seed yields a byte-identical report for any -workers value:
// scenario generation and execution are deterministic, and aggregation is
// order-stable.
//
// -policies sweeps several runtime-manager planning policies over the
// *same* sampled workloads (-scenarios counts workloads; total runs are
// scenarios × policies), and the report gains per-policy rows plus a
// per-policy regret block: for every workload the oracle is the best swept
// policy on that exact run, and regret is each policy's mean excess miss
// rate and energy over it. Policy names may be parameterised — a table
// trained by cmd/policytrain runs as "learned:<table.json>":
//
//	fleetsim -scenarios 64 -seed 1 -policies heuristic,maxaccuracy,minenergy -format table
//	fleetsim -scenarios 64 -seed 1 -policies heuristic,learned:table.json -format table
//
// A fleet can also be split across processes or machines. -shard i/m runs
// only the i-th (1-based) contiguous slice of the scenario range and
// writes a shard file (gzip-compressed when -out ends in .gz); "fleetsim
// merge" validates and combines shard files into a report byte-identical
// to the single-process run:
//
//	fleetsim -scenarios 64 -seed 1 -shard 1/2 -out shard1.json.gz
//	fleetsim -scenarios 64 -seed 1 -shard 2/2 -out shard2.json.gz
//	fleetsim merge shard1.json.gz shard2.json.gz
//
// -stream makes a shard crash-resumable: instead of one JSON document
// written at the end, the shard appends each completed scenario to -out as
// an NDJSON record (header line first), flushed as it completes. -resume
// (which implies -stream) restarts an interrupted stream from its last
// flushed scenario — a shard killed at scenario 700/1000 re-runs only
// 700..999. "fleetsim merge" accepts completed streams and classic shard
// files interchangeably:
//
//	fleetsim -scenarios 1000 -seed 1 -shard 1/2 -stream -out s1.ndjson
//	# …SIGKILL…
//	fleetsim -scenarios 1000 -seed 1 -shard 1/2 -resume -out s1.ndjson
//	fleetsim merge s1.ndjson s2.ndjson
//
// "fleetsim orchestrate" supervises a whole sharded run in one command: it
// dispatches -shards m shard subprocesses (each streaming into the -out
// directory), watches stream progress, kills stalled shards (-stall),
// retries failed ranges with bounded backoff (-retries), resumes any
// partial streams already in the directory, and merges as shards
// complete. The report on stdout is byte-identical to the single-process
// run:
//
//	fleetsim orchestrate -scenarios 1000 -seed 1 -shards 4 -out streams/
//
// -classes selects disturbance classes (steady, mixed, bursty, thermal,
// churn, faulty); an unknown class fails with the valid set before any
// simulation runs. The faulty class injects seeded hardware faults —
// clusters dropping offline mid-run (and usually repairing), never all at
// once — and its reports gain fault/recovery columns: cluster fails and
// repairs, aborted jobs, unhosted app-seconds, mean recovery latency
// (fault → first actuated replan), and the miss rate inside vs outside the
// degraded windows.
//
// -nolat drops the raw per-job latency samples from results and shard
// files — they dominate shard bytes, so million-scenario fleets run with
// it. Per-scenario mean/p95/max stay exact; pooled group p95 degrades to
// the worst per-scenario p95 and is marked approximate (p95Approx in
// JSON, a ~ suffix in tables).
//
// Planning work is reused by default: managers elide replans whose
// planning fingerprint has not changed and memoise plans in a per-worker
// cache keyed by the canonical planning view. The report is byte-identical
// either way — -plancache=false plans every replan fresh (CI cmp-checks
// the two against each other), and -cachestats prints the plans / elided /
// cache hit/miss counters to stderr after the run.
//
// Usage:
//
//	fleetsim [-scenarios 64] [-seed 1] [-workers N] [-platforms a,b]
//	         [-classes steady,thermal] [-policy name | -policies a,b]
//	         [-format json|table] [-results] [-nolat] [-shard i/m]
//	         [-stream] [-resume] [-out file] [-plancache=false] [-cachestats]
//	fleetsim merge [-format json|table] [-results] [-out file] shard.json...
//	fleetsim orchestrate -shards m -out dir [-scenarios N] [-seed S]
//	         [-stall 30s] [-retries 2] [-format json|table] [-results]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/emlrtm/emlrtm/internal/fleet"
	"github.com/emlrtm/emlrtm/internal/trace"
)

func main() {
	// Subcommands are dispatched strictly: an unknown word where a
	// subcommand goes must fail with usage, not silently run the default
	// fleet ("fleetsim mrege a.json b.json" burning minutes of simulation
	// was the failure mode).
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "merge":
			mergeMain(os.Args[2:])
			return
		case "orchestrate":
			orchestrateMain(os.Args[2:])
			return
		default:
			fmt.Fprintf(os.Stderr, "fleetsim: unknown subcommand %q (want merge or orchestrate)\n", os.Args[1])
			usage(os.Stderr)
			os.Exit(2)
		}
	}
	runMain()
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: fleetsim [flags]                    run a fleet (or one shard with -shard)")
	fmt.Fprintln(w, "       fleetsim merge [flags] shard...     merge shard files into a report")
	fmt.Fprintln(w, "       fleetsim orchestrate [flags]        dispatch, supervise and merge shard processes")
	fmt.Fprintln(w, "run 'fleetsim -h', 'fleetsim merge -h' or 'fleetsim orchestrate -h' for flags")
}

func runMain() {
	scenarios := flag.Int("scenarios", 64, "number of scenarios in the fleet (the whole fleet, even with -shard)")
	seed := flag.Uint64("seed", 1, "master seed (per-scenario seeds derive from it)")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	platforms := flag.String("platforms", "", "comma-separated platform names (empty = all)")
	classes := flag.String("classes", "", "comma-separated scenario classes: steady,mixed,bursty,thermal,churn,faulty (empty = all)")
	policy := flag.String("policy", "", "runtime-manager planning policy (empty = heuristic)")
	policies := flag.String("policies", "", "comma-separated policies to sweep over the same workloads (total runs = scenarios × policies)")
	format := flag.String("format", "json", "output format: json or table")
	results := flag.Bool("results", false, "include per-scenario results (json format)")
	progress := flag.Bool("progress", false, "print progress to stderr")
	shard := flag.String("shard", "", "run only shard i of m, as \"i/m\" (1-based); output is a shard file for \"fleetsim merge\"")
	out := flag.String("out", "", "write output to this file instead of stdout")
	nolat := flag.Bool("nolat", false, "drop raw per-job latency samples from results and shard files (scalar mean/p95/max stay; group p95 becomes the worst per-scenario p95)")
	stream := flag.Bool("stream", false, "with -shard: append each completed scenario to -out as a flushed NDJSON record (crash-resumable; mergeable once complete)")
	resume := flag.Bool("resume", false, "with -shard: resume an interrupted stream at -out from its last flushed scenario (implies -stream)")
	syncevery := flag.Int("syncevery", 0, "with -stream/-resume: fsync the stream file every N records (0 = never; per-record flushes already survive process death, fsync adds power-loss durability)")
	plancache := flag.Bool("plancache", true, "reuse planning work (replan elision + per-worker plan memo cache); false plans every replan fresh — the report is byte-identical either way")
	cachestats := flag.Bool("cachestats", false, "print plan-reuse counters (plans, elided, cache hits/misses) to stderr after the run")
	flag.Parse()
	if flag.NArg() > 0 {
		// Stray positional args mean a mistyped invocation; running the
		// default fleet anyway would silently ignore the user's intent.
		fmt.Fprintf(os.Stderr, "fleetsim: unexpected argument %q\n", flag.Arg(0))
		usage(os.Stderr)
		os.Exit(2)
	}

	// Validate everything cheap before simulating: a bad -format or -shard
	// must fail now, not after minutes of fleet execution.
	if *format != "json" && *format != "table" {
		log.Fatalf("fleetsim: unknown format %q (want json or table)", *format)
	}
	if *scenarios <= 0 {
		log.Fatalf("fleetsim: -scenarios %d must be positive", *scenarios)
	}
	if *syncevery < 0 {
		log.Fatalf("fleetsim: -syncevery %d must be non-negative", *syncevery)
	}
	if *syncevery > 0 && !*stream && !*resume {
		log.Fatalf("fleetsim: -syncevery only applies to -stream/-resume runs")
	}
	cfg, err := buildConfig(*seed, *platforms, *classes, *policy, *policies)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	shardIdx, shardCount, err := parseShard(*shard)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	// NewGenerator validates platforms, classes and policies: a typo in a
	// sweep spec must fail here, not after minutes of fleet execution.
	gen, err := fleet.NewGenerator(cfg)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}

	if *stream || *resume {
		if shardCount == 0 {
			log.Fatalf("fleetsim: -stream/-resume require -shard (streams are per-shard result files)")
		}
		if *out == "" {
			log.Fatalf("fleetsim: -stream/-resume require -out (the stream file)")
		}
		if *format != "json" || *results {
			log.Fatalf("fleetsim: -format/-results have no effect with -shard; use them on \"fleetsim merge\"")
		}
		if !*resume {
			// A fresh -stream must not silently extend or clobber an
			// existing file; resuming is an explicit choice.
			if fi, err := os.Stat(*out); err == nil && fi.Size() > 0 {
				log.Fatalf("fleetsim: %s already exists; pass -resume to continue it", *out)
			}
		}
		runner := &fleet.Runner{Workers: *workers, DropLatencies: *nolat, SyncEvery: *syncevery, DisablePlanCache: !*plancache}
		if *progress {
			runner.Progress = progressFunc()
		}
		if _, err := runner.ResumeShard(*out, cfg, *scenarios, shardIdx, shardCount); err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		maybePrintCacheStats(*cachestats, runner)
		return
	}

	if shardCount > 0 {
		// Shard mode always emits a JSON shard file; refuse report-shaping
		// flags instead of silently dropping them.
		if *format != "json" || *results {
			log.Fatalf("fleetsim: -format/-results have no effect with -shard; use them on \"fleetsim merge\"")
		}
		runner := &fleet.Runner{Workers: *workers, DropLatencies: *nolat, DisablePlanCache: !*plancache}
		if *progress {
			runner.Progress = progressFunc()
		}
		res, err := runner.RunShard(cfg, *scenarios, shardIdx, shardCount)
		if err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		maybePrintCacheStats(*cachestats, runner)
		if *out != "" {
			// Via the path-aware writer so "-out shard.json.gz" compresses.
			if err := fleet.WriteShardFile(*out, res); err != nil {
				log.Fatalf("fleetsim: %v", err)
			}
			return
		}
		writeOutput(*out, func(w io.Writer) error { return fleet.WriteShard(w, res) })
		return
	}

	scens := gen.Generate(gen.RunCount(*scenarios))
	runner := &fleet.Runner{Workers: *workers, DropLatencies: *nolat, DisablePlanCache: !*plancache}
	if *progress {
		runner.Progress = progressFunc()
	}
	res := runner.Run(scens)
	maybePrintCacheStats(*cachestats, runner)
	rep := fleet.Aggregate(*seed, res)
	if !*results {
		res = nil
	}
	writeOutput(*out, func(w io.Writer) error { return writeReport(w, *format, rep, res) })
}

func mergeMain(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	format := fs.String("format", "json", "output format: json or table")
	results := fs.Bool("results", false, "include per-scenario results (json format)")
	out := fs.String("out", "", "write output to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: fleetsim merge [-format json|table] [-results] [-out file] shard.json...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		log.Fatalf("fleetsim merge: %v", err)
	}
	if *format != "json" && *format != "table" {
		log.Fatalf("fleetsim merge: unknown format %q (want json or table)", *format)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	shards := make([]fleet.ShardResult, 0, fs.NArg())
	for _, path := range fs.Args() {
		s, err := fleet.ReadShardFile(path) // its errors name the file
		if err != nil {
			log.Fatalf("fleetsim merge: %v", err)
		}
		shards = append(shards, s)
	}
	rep, res, err := fleet.Merge(shards...)
	if err != nil {
		log.Fatalf("fleetsim merge: %v", err)
	}
	if !*results {
		res = nil
	}
	writeOutput(*out, func(w io.Writer) error { return writeReport(w, *format, rep, res) })
}

func orchestrateMain(args []string) {
	fs := flag.NewFlagSet("orchestrate", flag.ExitOnError)
	scenarios := fs.Int("scenarios", 64, "number of scenarios in the fleet")
	seed := fs.Uint64("seed", 1, "master seed (per-scenario seeds derive from it)")
	workers := fs.Int("workers", 0, "worker pool size per shard process (0 = NumCPU)")
	platforms := fs.String("platforms", "", "comma-separated platform names (empty = all)")
	classes := fs.String("classes", "", "comma-separated scenario classes: steady,mixed,bursty,thermal,churn,faulty (empty = all)")
	policy := fs.String("policy", "", "runtime-manager planning policy (empty = heuristic)")
	policies := fs.String("policies", "", "comma-separated policies to sweep over the same workloads")
	nolat := fs.Bool("nolat", false, "drop raw per-job latency samples (forwarded to every shard)")
	shards := fs.Int("shards", 2, "number of shard subprocesses to dispatch")
	out := fs.String("out", "", "directory for per-shard stream files (required; partial streams there are resumed)")
	stall := fs.Duration("stall", 30*time.Second, "kill a shard whose stream makes no progress for this long (0 disables)")
	retries := fs.Int("retries", 2, "retries per shard after its first failed attempt")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "wait before the first retry, doubling per attempt")
	format := fs.String("format", "json", "report output format: json or table")
	results := fs.Bool("results", false, "include per-scenario results (json format)")
	quiet := fs.Bool("quiet", false, "suppress shard progress on stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: fleetsim orchestrate -shards m -out dir [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		log.Fatalf("fleetsim orchestrate: %v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim orchestrate: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}
	if *format != "json" && *format != "table" {
		log.Fatalf("fleetsim orchestrate: unknown format %q (want json or table)", *format)
	}
	if *out == "" {
		log.Fatalf("fleetsim orchestrate: -out directory is required")
	}
	cfg, err := buildConfig(*seed, *platforms, *classes, *policy, *policies)
	if err != nil {
		log.Fatalf("fleetsim orchestrate: %v", err)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("fleetsim orchestrate: locating own binary: %v", err)
	}
	// Each shard is this same binary in -resume mode: a retry after a
	// crash or a stall-kill picks up from the last flushed scenario.
	argv := func(spec fleet.ShardSpec) []string {
		a := []string{exe,
			"-scenarios", fmt.Sprint(*scenarios),
			"-seed", fmt.Sprint(*seed),
			"-shard", fmt.Sprintf("%d/%d", spec.Index+1, spec.Count),
			"-resume",
			"-out", spec.Path,
			"-workers", fmt.Sprint(*workers),
		}
		if *platforms != "" {
			a = append(a, "-platforms", *platforms)
		}
		if *classes != "" {
			a = append(a, "-classes", *classes)
		}
		if *policy != "" {
			a = append(a, "-policy", *policy)
		}
		if *policies != "" {
			a = append(a, "-policies", *policies)
		}
		if *nolat {
			a = append(a, "-nolat")
		}
		return a
	}
	ocfg := fleet.OrchestratorConfig{
		Config:       cfg,
		Workloads:    *scenarios,
		Shards:       *shards,
		Dir:          *out,
		Start:        fleet.CommandStart(argv, os.Stderr),
		StallTimeout: *stall,
		MaxAttempts:  *retries + 1,
		RetryBackoff: *backoff,
	}
	if !*quiet {
		ocfg.Logf = func(f string, args ...any) { fmt.Fprintf(os.Stderr, f+"\n", args...) }
	}
	rep, res, err := fleet.Orchestrate(ocfg)
	if err != nil {
		log.Fatalf("fleetsim orchestrate: %v", err)
	}
	if !*results {
		res = nil
	}
	writeOutput("", func(w io.Writer) error { return writeReport(w, *format, rep, res) })
}

// buildConfig assembles the generator config shared by the run and
// orchestrate entry points, so both validate sweep specs identically.
func buildConfig(seed uint64, platforms, classes, policy, policies string) (fleet.GeneratorConfig, error) {
	cfg := fleet.GeneratorConfig{Seed: seed}
	if platforms != "" {
		cfg.Platforms = strings.Split(platforms, ",")
	}
	if classes != "" {
		known := map[fleet.Class]bool{}
		for _, c := range fleet.AllClasses() {
			known[c] = true
		}
		for _, c := range strings.Split(classes, ",") {
			// An unknown class must fail loudly before any simulation, with
			// the valid set and a usage-style exit code.
			if !known[fleet.Class(c)] {
				fmt.Fprintf(os.Stderr, "fleetsim: unknown class %q (valid: %v)\n", c, fleet.AllClasses())
				os.Exit(2)
			}
			cfg.Classes = append(cfg.Classes, fleet.Class(c))
		}
	}
	if policy != "" && policies != "" {
		return cfg, fmt.Errorf("-policy and -policies are mutually exclusive")
	}
	if policy != "" {
		cfg.Policies = []string{policy}
	}
	if policies != "" {
		cfg.Policies = strings.Split(policies, ",")
	}
	return cfg, nil
}

// parseShard parses "i/m" (1-based) into a 0-based index and a count;
// empty input means no sharding (count 0). Trailing garbage is an error:
// a misparsed -shard means minutes of simulating the wrong slice.
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	is, ms, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q must be i/m, e.g. 1/4", s)
	}
	i, err1 := strconv.Atoi(is)
	m, err2 := strconv.Atoi(ms)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("-shard %q must be i/m, e.g. 1/4", s)
	}
	if m < 1 || i < 1 || i > m {
		return 0, 0, fmt.Errorf("-shard %q out of range: want 1 <= i <= m", s)
	}
	return i - 1, m, nil
}

// maybePrintCacheStats prints the runner's accumulated plan-reuse
// counters to stderr when -cachestats is set. Stderr, not the report:
// how work split between elision, cache hits and fresh plans depends on
// how scenarios landed on workers, so the counters must never enter the
// byte-compared report stream.
func maybePrintCacheStats(enabled bool, r *fleet.Runner) {
	if !enabled {
		return
	}
	s := r.PlanCacheStats()
	fmt.Fprintf(os.Stderr, "fleetsim: plans=%d elided=%d cacheHits=%d cacheMisses=%d\n",
		s.Plans, s.Elided, s.CacheHits, s.CacheMisses)
}

func progressFunc() func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rfleetsim: %d/%d", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// writeOutput runs emit against -out (or stdout). Shard and report bytes
// go through here so single-process, shard and merge outputs format
// identically — that is what lets CI `cmp` them.
func writeOutput(path string, emit func(io.Writer) error) {
	w := io.Writer(os.Stdout)
	var f *os.File
	if path != "" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		w = f
	}
	if err := emit(w); err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
	}
}

func writeReport(w io.Writer, format string, rep fleet.Report, res []fleet.Result) error {
	switch format {
	case "json":
		out := struct {
			fleet.Report
			Results []fleet.Result `json:"results,omitempty"`
		}{Report: rep, Results: res}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case "table":
		return printTables(w, rep)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func printTables(w io.Writer, rep fleet.Report) error {
	t := trace.NewTable(
		fmt.Sprintf("fleet report (seed %d, %d scenarios)", rep.Seed, rep.Overall.Scenarios),
		"group", "scen", "frames", "miss%", "meanLat(ms)", "p95Lat(ms)",
		"energy(J)", "thermal%", "plans", "migr", "oppSw")
	addRow := func(name string, s fleet.GroupStats) {
		// Approximate group p95s (a -nolat scenario contributed, so the
		// percentile could not pool every sample) carry a ~ suffix.
		p95 := any(1000 * s.P95LatencyS)
		if s.P95Approx {
			p95 = trace.FormatFloat(1000*s.P95LatencyS) + "~"
		}
		t.AddRow(name, s.Scenarios, s.Frames, 100*s.MissRate,
			1000*s.MeanLatencyS, p95,
			s.EnergyMJ/1000, 100*s.ThermalRate,
			s.Plans, s.Migrations, s.OPPSwitches)
	}
	addRow("overall", rep.Overall)
	for _, name := range sortedKeys(rep.ByPlatform) {
		addRow("platform:"+name, rep.ByPlatform[name])
	}
	classes := make([]string, 0, len(rep.ByClass))
	for c := range rep.ByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		addRow("class:"+c, rep.ByClass[fleet.Class(c)])
	}
	for _, name := range sortedKeys(rep.ByPolicy) {
		addRow("policy:"+name, rep.ByPolicy[name])
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	// Groups that saw cluster faults get the recovery table: how much
	// hardware was lost, how fast the manager replanned around it, and how
	// QoS inside the degraded windows compares to outside them.
	if rep.Overall.ClusterFails > 0 {
		ft := trace.NewTable(
			"fault recovery (degraded = frames released while any cluster was offline)",
			"group", "fails", "repairs", "aborted", "unhosted(s)",
			"recoveries", "meanRecov(s)", "degMiss%", "healthyMiss%")
		addFaultRow := func(name string, s fleet.GroupStats) {
			if s.ClusterFails == 0 {
				return
			}
			ft.AddRow(name, s.ClusterFails, s.ClusterRepairs, s.JobsAborted,
				s.UnhostedS, s.Recoveries, s.MeanRecoveryS,
				100*s.DegradedMissRate, 100*s.HealthyMissRate)
		}
		addFaultRow("overall", rep.Overall)
		for _, c := range classes {
			addFaultRow("class:"+c, rep.ByClass[fleet.Class(c)])
		}
		for _, name := range sortedKeys(rep.ByPolicy) {
			addFaultRow("policy:"+name, rep.ByPolicy[name])
		}
		fmt.Fprintln(w)
		if _, err := ft.WriteTo(w); err != nil {
			return err
		}
	}
	if rep.Regret == nil {
		return nil
	}
	// Sweeps get the regret table: how far each policy sits from the
	// per-workload oracle (the best swept policy on the same bit-identical
	// workload, per metric).
	rt := trace.NewTable(
		"policy regret (oracle = best policy per workload)",
		"policy", "workloads", "oracleWins", "missRegret(pp)", "energyRegret(J)")
	fmt.Fprintln(w)
	for _, name := range sortedKeys(rep.Regret) {
		r := rep.Regret[name]
		rt.AddRow(name, r.Workloads, r.OracleWins,
			100*r.MissRateRegret, r.EnergyRegretMJ/1000)
	}
	_, err := rt.WriteTo(w)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
