// Command rtmsim runs a scripted multi-application scenario under the
// runtime manager and streams its decisions: plans, migrations, DVFS
// changes, thermal events. The default scenario is the paper's Fig 2
// timeline on the flagship SoC.
//
// Usage:
//
//	rtmsim [-scenario fig2|fig5] [-tick 0.25] [-quiet]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "fig2", "scenario: fig2 (flagship SoC) or fig5 (Odroid XU3)")
	tick := flag.Float64("tick", 0.25, "controller epoch in seconds")
	quiet := flag.Bool("quiet", false, "suppress the decision stream")
	flag.Parse()

	var (
		s    workload.Scenario
		plat = hw.FlagshipSoC()
	)
	switch *scenario {
	case "fig2":
		s = workload.Fig2Scenario()
	case "fig5":
		s = workload.Fig5Scenario(perf.PaperReferenceProfile())
		plat = hw.OdroidXU3()
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	logf := func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	if *quiet {
		logf = nil
	}
	e, mgr, rep, err := workload.Run(s, plat, *tick, logf)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("scenario %s on %s: %.0fs simulated\n", s.Name, plat.Name, rep.DurationS)
	fmt.Printf("plans=%d migrations=%d levelSwaps=%d oppSwitches=%d\n",
		mgr.Plans(), rep.Migrations, rep.LevelSwaps, rep.OPPSwitches)
	fmt.Printf("energy=%.0fmJ avgPower=%.0fmW maxTemp=%.1fC overThrottle=%.2fs\n",
		rep.TotalEnergyMJ, rep.AvgPowerMW, rep.MaxTempC, rep.OverThrottleS)
	for _, a := range rep.Apps {
		if a.Kind != sim.KindDNN {
			continue
		}
		fmt.Printf("  %-6s final=%s/%d level=%d frames=%d completed=%d missed=%d dropped=%d avgLat=%.1fms\n",
			a.Name, a.Placement.Cluster, a.Placement.Cores, a.Level,
			a.Released, a.Completed, a.Missed, a.Dropped, a.AvgLatency*1000)
	}
	fmt.Println("timeline:")
	for _, ev := range rep.Events {
		switch ev.Kind {
		case sim.EvAppStart, sim.EvAppStop, sim.EvMigrated, sim.EvThermalAlarm:
			fmt.Printf("  t=%6.2fs %-13s %-6s %s\n", ev.TimeS, ev.Kind, ev.App, ev.Note)
		}
	}
	final, err := e.Cluster("npu")
	if err == nil {
		fmt.Printf("npu residents at end: %v (free memory %.1f MiB)\n",
			final.Residents, float64(final.MemFree)/(1<<20))
	}
}
