// Command policytrain trains the learned runtime-manager policy: it
// replays a seeded fleet of generated workloads under every base policy
// (arm), scores each run on a miss-rate + energy reward, runs
// epsilon-greedy refinement epochs, and writes the resulting state →
// policy selection table as JSON. The table then runs anywhere a policy
// name is accepted, as "learned:<table.json>" — fleetsim sweeps, the
// facade, scripted scenarios.
//
// Training is deterministic: the same -seed (and flags) writes a
// byte-identical table file at any -workers value, so a committed table is
// reproducible and CI can train twice and cmp.
//
// The summary table printed afterwards shows each arm's pure-sweep mean
// cost — the bar the learned policy has to clear — and how many
// discretised states the table covers. Evaluate a trained table against
// its arms with fleetsim's regret block:
//
//	policytrain -seed 1 -workloads 64 -out table.json
//	fleetsim -scenarios 64 -seed 1 \
//	    -policies heuristic,maxaccuracy,minenergy,learned:table.json -format table
//
// Usage:
//
//	policytrain [-seed 1] [-workloads 64] [-workers 0] [-platforms a,b]
//	            [-classes steady,thermal] [-arms heuristic,maxaccuracy,minenergy]
//	            [-epochs 2] [-epsilon 0.1] [-missweight 1] [-energyweight 0.05]
//	            [-out table.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/emlrtm/emlrtm/internal/fleet"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "master training seed (workload sampling and exploration derive from it)")
	workloads := flag.Int("workloads", 64, "fleet workloads to train on")
	workers := flag.Int("workers", 0, "training worker pool size (0 = NumCPU; the table is identical for any value)")
	platforms := flag.String("platforms", "", "comma-separated platform names (empty = all)")
	classes := flag.String("classes", "", "comma-separated scenario classes (empty = all)")
	arms := flag.String("arms", "", "comma-separated base policies to select among (empty = heuristic,maxaccuracy,minenergy)")
	epochs := flag.Int("epochs", 2, "epsilon-greedy refinement epochs after the per-arm sweep")
	epsilon := flag.Float64("epsilon", 0.1, "per-plan exploration probability during refinement")
	missWeight := flag.Float64("missweight", 1, "reward weight of the miss rate")
	energyWeight := flag.Float64("energyweight", 0.05, "reward weight of average power (per watt)")
	out := flag.String("out", "table.json", "trained table output path (\"-\" = stdout)")
	flag.Parse()

	// The flag defaults are non-zero, so both weights at zero means the
	// user explicitly asked for a reward that scores every run 0 — the
	// table's argmin would be arbitrary. Refuse rather than silently
	// substituting the library defaults for an explicit request.
	if *missWeight == 0 && *energyWeight == 0 {
		log.Fatal("policytrain: -missweight 0 -energyweight 0 is a degenerate reward (every run scores 0); set at least one weight")
	}

	cfg := fleet.TrainConfig{
		Seed:         *seed,
		Workloads:    *workloads,
		Workers:      *workers,
		Epochs:       *epochs,
		Epsilon:      *epsilon,
		MissWeight:   *missWeight,
		EnergyWeight: *energyWeight,
	}
	if *platforms != "" {
		cfg.Platforms = strings.Split(*platforms, ",")
	}
	if *classes != "" {
		for _, c := range strings.Split(*classes, ",") {
			cfg.Classes = append(cfg.Classes, fleet.Class(c))
		}
	}
	if *arms != "" {
		cfg.Arms = strings.Split(*arms, ",")
	}

	table, rep, err := fleet.Train(cfg)
	if err != nil {
		log.Fatalf("policytrain: %v", err)
	}

	if *out == "-" {
		raw, err := table.MarshalBytes()
		if err != nil {
			log.Fatalf("policytrain: %v", err)
		}
		os.Stdout.Write(raw)
	} else if err := table.WriteFile(*out); err != nil {
		log.Fatalf("policytrain: %v", err)
	} else {
		fmt.Fprintf(os.Stderr, "policytrain: wrote %s (%d states, %d runs)\n", *out, rep.States, rep.Runs)
	}

	printSummary(table, rep)
}

// printSummary renders the training outcome: per-arm sweep cost (the bar
// the learned table must beat), how often each arm won a state, and the
// fallback for unseen states.
func printSummary(table *rtm.LearnedTable, rep fleet.TrainReport) {
	chosen := map[string]int{}
	for _, st := range table.States {
		chosen[st.Arm]++
	}
	t := trace.NewTable(
		fmt.Sprintf("training summary (seed %d: %d workloads, %d runs, %d states)",
			table.Seed, rep.Workloads, rep.Runs, rep.States),
		"arm", "sweepRuns", "sweepMeanCost", "statesWon")
	names := append([]string(nil), rep.Arms...)
	sort.Strings(names)
	for _, name := range names {
		s := rep.Sweep[name]
		t.AddRow(name, s.Runs, s.MeanCost, chosen[name])
	}
	if _, err := t.WriteTo(os.Stderr); err != nil {
		log.Fatalf("policytrain: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fallback for unseen states: %s\n", table.Fallback)
}
