// Command detlint runs the repo's determinism & hot-path static-analysis
// suite (internal/detlint) over package patterns and reports findings as
// `file:line: [analyzer] message` lines (or JSON objects with -json).
//
// Exit codes: 0 clean, 1 findings, 2 usage or load/type-check failure.
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -json ./internal/sim ./internal/rtm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/emlrtm/emlrtm/internal/detlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: detlint [-json] [packages]\n\n"+
			"Runs the determinism & hot-path analyzers over the given package\n"+
			"patterns (default ./...). Exits 1 when any diagnostic is found.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := detlint.Load(detlint.Config{}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}
	diags := detlint.DefaultSuite().Run(pkgs)
	if err := writeDiagnostics(stdout, diags, *jsonOut); err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// writeDiagnostics renders findings with file paths relative to the
// current directory when possible, so CI logs and editors agree.
func writeDiagnostics(w io.Writer, diags []detlint.Diagnostic, jsonOut bool) error {
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.File); err == nil && !filepath.IsAbs(rel) {
				d.File = rel
			}
		}
		if jsonOut {
			if err := enc.Encode(d); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
