package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/detlint"
)

// The tests drive run() over the analyzer fixture corpus. Loaded through
// the repo's own go.mod the fixtures sit at
// .../internal/detlint/testdata/src/internal/sim etc., which still ends in
// internal/<critical> — the same findings the self-test pins, now through
// the CLI's exit-code and output contract.
const fixtureDir = "../../internal/detlint/testdata/src"

func TestJSONRoundTrip(t *testing.T) {
	var jsonOut, stderr bytes.Buffer
	if code := run([]string{"-json", fixtureDir + "/..."}, &jsonOut, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings); stderr:\n%s", code, stderr.String())
	}
	lines := nonEmptyLines(jsonOut.String())
	if len(lines) == 0 {
		t.Fatal("no JSON diagnostics emitted for the fixture corpus")
	}

	var decoded []detlint.Diagnostic
	for _, line := range lines {
		var d detlint.Diagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q does not decode as a Diagnostic: %v", line, err)
		}
		if d.File == "" || d.Line <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("decoded diagnostic has empty fields: %+v", d)
		}
		// Round trip: re-encoding the decoded value reproduces the line
		// byte for byte, so the JSON mode is a lossless machine interface.
		reenc, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("re-encoding %+v: %v", d, err)
		}
		if string(reenc) != line {
			t.Errorf("round trip mismatch:\n  emitted: %s\n  re-encoded: %s", line, reenc)
		}
		decoded = append(decoded, d)
	}

	// The text mode must agree with the JSON mode line for line.
	var textOut bytes.Buffer
	stderr.Reset()
	if code := run([]string{fixtureDir + "/..."}, &textOut, &stderr); code != 1 {
		t.Fatalf("text mode exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	textLines := nonEmptyLines(textOut.String())
	if len(textLines) != len(decoded) {
		t.Fatalf("text mode emitted %d lines, JSON mode %d", len(textLines), len(decoded))
	}
	for i, d := range decoded {
		if textLines[i] != d.String() {
			t.Errorf("line %d: text %q != rendered JSON diagnostic %q", i, textLines[i], d.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixtureDir + "/orchcli"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%sstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %q", stdout.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "detlint:") {
		t.Errorf("stderr missing error report: %q", stderr.String())
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}
