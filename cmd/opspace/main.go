// Command opspace dumps an operating-point space (Fig 4(a) style) as CSV
// for plotting: one row per (cluster, cores, frequency, model level) with
// latency, power, energy and accuracy.
//
// Usage:
//
//	opspace [-platform odroid-xu3|jetson-nano|flagship-soc]
//	        [-profile paper|mobile] [-cores] [-pareto]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/pareto"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/workload"
)

func main() {
	platName := flag.String("platform", "odroid-xu3", "platform name")
	profName := flag.String("profile", "paper", "model profile: paper (Table I workload) or mobile (Fig 2 workload)")
	sweepCores := flag.Bool("cores", false, "sweep CPU core counts (task-mapping knob)")
	onlyPareto := flag.Bool("pareto", false, "emit only the Pareto frontier")
	flag.Parse()

	plat, ok := hw.Catalog()[*platName]
	if !ok {
		log.Fatalf("unknown platform %q; have %v", *platName, platformNames())
	}
	var prof perf.ModelProfile
	switch *profName {
	case "paper":
		prof = perf.PaperReferenceProfile()
	case "mobile":
		prof = workload.MobileProfile()
	default:
		log.Fatalf("unknown profile %q", *profName)
	}

	pts := perf.Enumerate(plat, prof, perf.EnumerateOptions{SweepCores: *sweepCores})
	if *onlyPareto {
		pts = pareto.Frontier(pts, pareto.LatencyEnergyMetric)
	}

	fmt.Println("platform,cluster,cores,freq_ghz,level,latency_ms,power_mw,energy_mj,accuracy")
	for _, p := range pts {
		fmt.Printf("%s,%s,%d,%.3f,%s,%.3f,%.1f,%.3f,%.3f\n",
			p.Platform, p.Cluster, p.Cores, p.FreqGHz, p.LevelName,
			p.LatencyS*1000, p.PowerMW, p.EnergyMJ, p.Accuracy)
	}
	fmt.Fprintf(os.Stderr, "%d points\n", len(pts))
}

func platformNames() []string {
	var names []string
	for n := range hw.Catalog() {
		names = append(names, n)
	}
	return names
}
