// Command paperrepro regenerates every table and figure of the paper plus
// the ablations, printing paper-style tables (and optionally CSV) to
// stdout. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	paperrepro [-exp all|table1|fig1|fig2|fig3|fig4a|budgets|fig5|ablations]
//	           [-quick] [-seed N] [-csv] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/emlrtm/emlrtm/internal/experiments"
	"github.com/emlrtm/emlrtm/internal/perf"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig3, fig4a, budgets, fig5, ablations)")
	quick := flag.Bool("quick", false, "reduced scale (fast; used by CI)")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of summaries")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}

	// The trained profile feeds several experiments; train once when any
	// of them is requested, otherwise fall back to the published numbers.
	var profile perf.ModelProfile
	needTraining := *exp == "all" || *exp == "fig3"
	if needTraining {
		fmt.Println("== E4/E6: incremental training (Fig 3) and accuracy per configuration (Fig 4(b)) ==")
		res, err := experiments.TrainDynamic(opts)
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		fmt.Print(res.Fig4b.String())
		fmt.Printf("accuracy monotone: %v, spread: %.1f points (paper: 15.2)\n\n",
			res.AccuracyMonotone(), res.AccuracySpread()*100)
		profile = res.Profile
	} else {
		profile = perf.PaperReferenceProfile()
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("table1") {
		fmt.Println("== E1: Table I ==")
		res := experiments.Table1(profile.Level(profile.MaxLevel()).Accuracy)
		fmt.Print(res.Table.String())
		fmt.Printf("worst cell deviation from paper: %.1f%%\n\n", res.MaxRelativeError()*100)
	}
	if run("fig1") {
		fmt.Println("== E2: Fig 1 design-time mapping ==")
		res := experiments.Fig1(perf.PaperReferenceProfile())
		fmt.Print(res.Table.String())
		fmt.Println()
	}
	if run("fig2") {
		fmt.Println("== E3: Fig 2 runtime scenario ==")
		res, err := experiments.Fig2(opts)
		if err != nil {
			log.Fatalf("fig2: %v", err)
		}
		fmt.Print(res.Timeline.String())
		fmt.Print(res.Summary.String())
		fmt.Printf("plans: %d, thermal alarm at t=%.2fs, co-located at end: %v\n\n",
			res.Plans, res.AlarmAtS, res.CoLocated())
	}
	if run("fig4a") {
		fmt.Println("== E5: Fig 4(a) operating-point space ==")
		res := experiments.Fig4a(perf.PaperReferenceProfile())
		if *csv {
			fmt.Print(res.Figure.CSV())
		} else {
			fmt.Printf("%d points, t ∈ [%.1f, %.1f] ms, E ∈ [%.1f, %.1f] mJ, %d series\n",
				len(res.Points), res.Stats.MinLatencyS*1000, res.Stats.MaxLatencyS*1000,
				res.Stats.MinEnergyMJ, res.Stats.MaxEnergyMJ, len(res.Figure.Series))
		}
		fmt.Println()
	}
	if run("budgets") {
		fmt.Println("== E7: Fig 4 budget worked examples ==")
		res := experiments.Fig4Budgets(perf.PaperReferenceProfile())
		fmt.Print(res.Table.String())
		fmt.Println()
	}
	if run("fig5") {
		fmt.Println("== E8: Fig 5 closed-loop control ==")
		res, err := experiments.Fig5(perf.PaperReferenceProfile(), opts)
		if err != nil {
			log.Fatalf("fig5: %v", err)
		}
		fmt.Print(res.Table.String())
		fmt.Printf("knobs: %v\nmonitors: %v\n\n", res.Knobs, res.Monitors)
	}
	if run("ablations") {
		fmt.Println("== A1: knob-combination ablation ==")
		fmt.Print(experiments.AblationKnobs(perf.PaperReferenceProfile()).Table.String())
		fmt.Println()
		fmt.Println("== A2: storage & switching ==")
		fmt.Print(experiments.AblationSwitching(perf.PaperReferenceProfile()).Table.String())
		fmt.Println()
		fmt.Println("== A3: RTM vs no-RTM ==")
		res, err := experiments.AblationNoRTM(opts)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Print(res.Table.String())
	}
}
