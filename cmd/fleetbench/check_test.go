package main

import (
	"strings"
	"testing"
)

// checkFixture is a matched baseline/current pair with no regressions;
// tests mutate the current side to inject specific defects.
func checkFixture() (*Numbers, Numbers) {
	base := &Numbers{
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 8,
		Fleet:      FleetNumbers{Workers: 8, ScenariosPerSec: 1000},
		Benchmarks: map[string]BenchNumbers{
			"engine-run": {NsPerOp: 900e3, BytesPerOp: 0, AllocsPerOp: 0},
			"replan":     {NsPerOp: 10e3, BytesPerOp: 256, AllocsPerOp: 3},
		},
	}
	cur := Numbers{
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 8,
		Fleet:      FleetNumbers{Workers: 8, ScenariosPerSec: 980},
		Benchmarks: map[string]BenchNumbers{
			"engine-run": {NsPerOp: 910e3, BytesPerOp: 0, AllocsPerOp: 0},
			"replan":     {NsPerOp: 11e3, BytesPerOp: 256, AllocsPerOp: 3},
		},
	}
	return base, cur
}

func defaultThresholds() thresholds {
	return thresholds{AllocSlack: 0, MinThroughputRatio: 0.5}
}

func TestCheckRegressionPasses(t *testing.T) {
	base, cur := checkFixture()
	r := checkRegression(base, cur, defaultThresholds())
	if !r.ok() {
		t.Fatalf("clean comparison failed: %+v", r)
	}
	if !strings.Contains(r.render(), "check OK") {
		t.Errorf("report does not say OK:\n%s", r.render())
	}
}

// TestCheckRegressionCatchesAllocRegression is the ISSUE's deliberate-
// regression demonstration: one extra alloc/op over baseline must fail
// the gate at the default zero slack.
func TestCheckRegressionCatchesAllocRegression(t *testing.T) {
	base, cur := checkFixture()
	cur.Benchmarks["replan"] = BenchNumbers{NsPerOp: 11e3, BytesPerOp: 300, AllocsPerOp: 4}
	r := checkRegression(base, cur, defaultThresholds())
	if r.ok() {
		t.Fatal("alloc regression passed the gate")
	}
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "replan") {
		t.Fatalf("violations = %v, want one naming replan", r.Violations)
	}

	// The same regression inside the configured slack passes.
	r = checkRegression(base, cur, thresholds{AllocSlack: 1, MinThroughputRatio: 0.5})
	if !r.ok() {
		t.Fatalf("regression within slack still failed: %+v", r)
	}
}

func TestCheckRegressionCatchesMissingBenchmark(t *testing.T) {
	base, cur := checkFixture()
	delete(cur.Benchmarks, "engine-run")
	r := checkRegression(base, cur, defaultThresholds())
	if r.ok() {
		t.Fatal("missing benchmark passed the gate")
	}
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "missing") {
		t.Fatalf("violations = %v, want one about the missing benchmark", r.Violations)
	}
}

func TestCheckRegressionCatchesThroughputDrop(t *testing.T) {
	base, cur := checkFixture()
	cur.Fleet.ScenariosPerSec = 400 // below the 0.5 floor of 1000
	r := checkRegression(base, cur, defaultThresholds())
	if r.ok() {
		t.Fatal("halved throughput passed the gate")
	}
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "throughput") {
		t.Fatalf("violations = %v, want one throughput violation", r.Violations)
	}

	// Ratio 0 disables the throughput check.
	r = checkRegression(base, cur, thresholds{MinThroughputRatio: 0})
	if !r.ok() {
		t.Fatalf("disabled throughput check still failed: %+v", r)
	}
}

// TestCheckRegressionEnvMismatch pins the satellite contract: a
// goVersion or gomaxprocs difference refuses the comparison outright by
// default, and with the override becomes a loud annotation plus an
// allocs-only check.
func TestCheckRegressionEnvMismatch(t *testing.T) {
	base, cur := checkFixture()
	cur.GoVersion = "go1.25.0"
	cur.GOMAXPROCS = 4

	r := checkRegression(base, cur, defaultThresholds())
	if !r.Refused {
		t.Fatal("env mismatch did not refuse the comparison")
	}
	if len(r.Mismatches) != 2 {
		t.Fatalf("mismatches = %v, want goVersion and gomaxprocs", r.Mismatches)
	}
	if !strings.Contains(r.render(), "REFUSED") {
		t.Errorf("report does not announce the refusal:\n%s", r.render())
	}

	// Override: allocs are still checked, throughput is skipped loudly.
	cur.Benchmarks["engine-run"] = BenchNumbers{AllocsPerOp: 5}
	cur.Fleet.ScenariosPerSec = 1 // would fail throughput if it were checked
	th := defaultThresholds()
	th.AllowEnvMismatch = true
	r = checkRegression(base, cur, th)
	if r.Refused {
		t.Fatal("override still refused")
	}
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "engine-run") {
		t.Fatalf("violations = %v, want only the engine-run alloc regression", r.Violations)
	}
	report := r.render()
	if !strings.Contains(report, "env-mismatch") || !strings.Contains(report, "throughput check skipped") {
		t.Errorf("override report is not loud about the mismatch:\n%s", report)
	}
}

func TestCheckRegressionWorkerMismatchSkipsThroughput(t *testing.T) {
	base, cur := checkFixture()
	cur.Fleet.Workers = 2
	cur.Fleet.ScenariosPerSec = 100 // incomparable, must not be judged
	r := checkRegression(base, cur, defaultThresholds())
	if !r.ok() {
		t.Fatalf("worker-count mismatch failed the gate: %+v", r)
	}
	if !strings.Contains(r.render(), "throughput check skipped") {
		t.Errorf("report does not note the skipped throughput check:\n%s", r.render())
	}
}

func TestCheckRegressionNoBaseline(t *testing.T) {
	_, cur := checkFixture()
	r := checkRegression(nil, cur, defaultThresholds())
	if r.ok() {
		t.Fatal("check without a baseline passed")
	}
	if !strings.Contains(r.render(), "rebaseline") {
		t.Errorf("report does not point at -rebaseline:\n%s", r.render())
	}
}
