package main

import (
	"fmt"
	"sort"
	"strings"
)

// thresholds parametrise one regression check of current numbers against
// the recorded baseline.
type thresholds struct {
	// AllocSlack is the absolute allocs/op increase tolerated per
	// micro-benchmark before the check fails. Allocation counts are
	// deterministic for a fixed toolchain, so the default of 0 is not
	// flaky: any increase is a real regression.
	AllocSlack int64
	// MinThroughputRatio is the floor on current/baseline scenarios-per-sec
	// (e.g. 0.5 fails the check when throughput halves). 0 disables the
	// throughput check entirely. Wall-clock throughput is machine- and
	// load-dependent, so this threshold should stay loose where allocs stay
	// strict.
	MinThroughputRatio float64
	// AllowEnvMismatch downgrades a goVersion/gomaxprocs mismatch between
	// baseline and current from a refusal to a loud annotation: the
	// throughput comparison is skipped (wall-clock numbers from different
	// environments are not comparable) but allocs/op — which depend only on
	// the code and toolchain behaviour, not the machine — are still checked.
	AllowEnvMismatch bool
}

// checkResult is the outcome of one checkRegression call.
type checkResult struct {
	// Refused is set when the environments differ and AllowEnvMismatch is
	// off: no comparison was attempted and the caller must exit non-zero.
	Refused bool
	// Mismatches lists every environment difference found (goVersion,
	// gomaxprocs), whether or not it caused a refusal.
	Mismatches []string
	// Violations lists every threshold breach. Empty + !Refused means pass.
	Violations []string
	// Notes lists loud annotations: skipped checks and their reasons.
	Notes []string
}

func (r checkResult) ok() bool { return !r.Refused && len(r.Violations) == 0 }

// render formats the result as the human-readable report that goes to
// stderr and the CI artifact.
func (r checkResult) render() string {
	var b strings.Builder
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "env-mismatch: %s\n", m)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "REGRESSION: %s\n", v)
	}
	switch {
	case r.Refused:
		b.WriteString("check REFUSED: baseline and current were measured in different environments; re-record the baseline there, or pass -allow-env-mismatch to compare allocs only\n")
	case len(r.Violations) > 0:
		fmt.Fprintf(&b, "check FAILED: %d regression(s) against recorded baseline\n", len(r.Violations))
	default:
		b.WriteString("check OK: no regressions against recorded baseline\n")
	}
	return b.String()
}

// checkRegression compares current numbers against the recorded baseline
// under the given thresholds. It is a pure function so the deliberate-
// regression tests can drive it directly.
//
// Policy: allocs/op is checked strictly and always — it is deterministic
// for a fixed toolchain, so even a cross-machine comparison is meaningful.
// Throughput (scenarios/sec) is wall-clock and only comparable when the
// environment matches: a goVersion or gomaxprocs difference refuses the
// whole comparison unless AllowEnvMismatch, which downgrades to an
// annotated allocs-only check. A workers mismatch between the two fleet
// sweeps likewise skips only the throughput comparison.
func checkRegression(base *Numbers, cur Numbers, th thresholds) checkResult {
	var r checkResult
	if base == nil {
		r.Refused = true
		r.Notes = append(r.Notes, "no recorded baseline in the bench file; run fleetbench -rebaseline to record one")
		return r
	}
	if base.GoVersion != cur.GoVersion {
		r.Mismatches = append(r.Mismatches,
			fmt.Sprintf("goVersion: baseline %q vs current %q", base.GoVersion, cur.GoVersion))
	}
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		r.Mismatches = append(r.Mismatches,
			fmt.Sprintf("gomaxprocs: baseline %d vs current %d", base.GOMAXPROCS, cur.GOMAXPROCS))
	}
	if len(r.Mismatches) > 0 && !th.AllowEnvMismatch {
		r.Refused = true
		return r
	}

	// Allocs: every benchmark the baseline recorded must still exist and
	// must not allocate more than baseline + slack. A benchmark that
	// disappeared is a violation, not a skip — silently dropping the
	// measurement is how a regression hides.
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			r.Violations = append(r.Violations,
				fmt.Sprintf("%s: in baseline (%d allocs/op) but missing from current run", name, b.AllocsPerOp))
			continue
		}
		if limit := b.AllocsPerOp + th.AllocSlack; c.AllocsPerOp > limit {
			r.Violations = append(r.Violations,
				fmt.Sprintf("%s: %d allocs/op exceeds baseline %d + slack %d",
					name, c.AllocsPerOp, b.AllocsPerOp, th.AllocSlack))
		}
	}

	// Throughput: only when the environments and sweep shapes match.
	switch {
	case th.MinThroughputRatio <= 0:
		r.Notes = append(r.Notes, "throughput check disabled (-min-throughput-ratio 0)")
	case len(r.Mismatches) > 0:
		r.Notes = append(r.Notes, "throughput check skipped: environment mismatch (allocs still checked)")
	case base.Fleet.Workers != cur.Fleet.Workers:
		r.Notes = append(r.Notes, fmt.Sprintf(
			"throughput check skipped: baseline swept with %d workers, current with %d",
			base.Fleet.Workers, cur.Fleet.Workers))
	case base.Fleet.ScenariosPerSec <= 0:
		r.Notes = append(r.Notes, "throughput check skipped: baseline has no scenarios/sec")
	default:
		floor := base.Fleet.ScenariosPerSec * th.MinThroughputRatio
		if cur.Fleet.ScenariosPerSec < floor {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"fleet throughput %.1f scenarios/sec below %.0f%% of baseline %.1f (floor %.1f)",
				cur.Fleet.ScenariosPerSec, th.MinThroughputRatio*100,
				base.Fleet.ScenariosPerSec, floor))
		}
	}
	return r
}
