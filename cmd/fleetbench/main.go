// Command fleetbench measures the simulator's three hot layers end to end
// and records the numbers in a machine-readable BENCH_fleet.json — the
// repo's perf trajectory file.
//
// Two kinds of measurement run:
//
//   - a seeded N-scenario × P-policy fleet sweep timed wall-clock, giving
//     scenarios/sec (the number that bounds design-space exploration and
//     learned-policy training set generation), plus per-scenario wall-time
//     p50/p95;
//   - Go testing.Benchmark micro-benchmarks of each hot layer — engine-run
//     (one uncontrolled simulated run), replan (view build + policy plan +
//     actuation against a live engine, plan reuse disabled so the row keeps
//     measuring a full plan), replan-elided (the fingerprint-stable fast
//     path), plan-cache/hit (snapshot + canonical key + memo copy-out when
//     elision is defeated but the state recurs) and policy-plan per
//     registered policy — each reporting ns/op, B/op and allocs/op.
//
// Profile the timed sweep with -cpuprofile/-memprofile: the capture window
// covers exactly the fleet sweep the check gate holds, so a hot-path hunt
// sees the same work mix the scenarios/sec figure measures. Inspect with
// `go tool pprof fleetbench cpu.out`.
//
// When -out points at an existing file, its "baseline" object is
// preserved, so CI reruns keep the recorded pre-optimisation numbers next
// to fresh ones and `benchstat`-style comparisons stay possible from one
// artifact. Compare a before/after pair of bench runs with:
//
//	go test -run '^$' -bench 'PolicyPlan|Replan' -benchmem -count 10 ./internal/rtm > old.txt
//	# ...apply a change...
//	go test -run '^$' -bench 'PolicyPlan|Replan' -benchmem -count 10 ./internal/rtm > new.txt
//	benchstat old.txt new.txt
//
// With -check, fleetbench becomes the perf regression gate: after
// measuring, current is compared against the recorded baseline and the
// process exits non-zero on regression. Allocs/op are checked strictly
// (deterministic for a fixed toolchain; default slack 0), throughput
// loosely (-min-throughput-ratio, default 0.5 — wall-clock is noisy).
// A goVersion or gomaxprocs mismatch between baseline and current refuses
// the comparison outright; -allow-env-mismatch downgrades that to a loud
// annotation and an allocs-only check. Record a new baseline with
// -rebaseline (mutually exclusive with -check).
//
// Usage:
//
//	fleetbench [-scenarios 64] [-seed 1] [-workers 0] [-policies a,b,c]
//	           [-quick] [-benchtime 100ms] [-out BENCH_fleet.json]
//	           [-check] [-alloc-slack 0] [-min-throughput-ratio 0.5]
//	           [-allow-env-mismatch] [-checkout check.txt] [-rebaseline]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/emlrtm/emlrtm/internal/atomicfile"
	"github.com/emlrtm/emlrtm/internal/fleet"
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// BenchNumbers is one micro-benchmark's cost triple.
type BenchNumbers struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// FleetNumbers is the throughput side: a timed fleet sweep.
type FleetNumbers struct {
	Scenarios       int      `json:"scenarios"`
	Policies        []string `json:"policies"`
	Runs            int      `json:"runs"` // scenarios × policies
	Workers         int      `json:"workers"`
	Seed            uint64   `json:"seed"`
	WallSeconds     float64  `json:"wallSeconds"`
	ScenariosPerSec float64  `json:"scenariosPerSec"`
	P50WallMs       float64  `json:"p50WallMs"`
	P95WallMs       float64  `json:"p95WallMs"`
	MaxWallMs       float64  `json:"maxWallMs"`
	// Plan-reuse counters from the pooled sweep. PlansTotal and
	// PlansElided are per-scenario properties and thus deterministic for a
	// seed; cache hits/misses depend on which scenarios each worker's
	// shared cache saw, so they vary with work-stealing order. All four
	// are informational — the check gate never reads them.
	PlansTotal      int `json:"plansTotal,omitempty"`
	PlansElided     int `json:"plansElided,omitempty"`
	PlanCacheHits   int `json:"planCacheHits,omitempty"`
	PlanCacheMisses int `json:"planCacheMisses,omitempty"`
}

// Numbers is one complete measurement set.
type Numbers struct {
	Timestamp  string                  `json:"timestamp,omitempty"`
	GoVersion  string                  `json:"goVersion,omitempty"`
	GOMAXPROCS int                     `json:"gomaxprocs,omitempty"`
	Note       string                  `json:"note,omitempty"`
	Fleet      FleetNumbers            `json:"fleet"`
	Benchmarks map[string]BenchNumbers `json:"benchmarks"`
}

// HistoryEntry is one line of the append-only perf trajectory: a
// timestamped summary of a run that became the baseline.
type HistoryEntry struct {
	Timestamp       string           `json:"timestamp"`
	Note            string           `json:"note,omitempty"`
	ScenariosPerSec float64          `json:"scenariosPerSec"`
	Allocs          map[string]int64 `json:"allocs,omitempty"`
}

// Doc is the BENCH_fleet.json schema: the recorded baseline (kept across
// reruns), the current measurement, and the append-only history of every
// rebaseline — the long-run perf trajectory that survives baselines
// replacing each other.
type Doc struct {
	Schema   int            `json:"schema"`
	Baseline *Numbers       `json:"baseline,omitempty"`
	Current  Numbers        `json:"current"`
	History  []HistoryEntry `json:"history,omitempty"`
}

// historyEntry summarises a measurement for the trajectory log: the
// headline throughput number plus allocs/op per micro-benchmark (the
// deterministic numbers worth tracking across toolchains).
func historyEntry(n Numbers) HistoryEntry {
	h := HistoryEntry{
		Timestamp:       n.Timestamp,
		Note:            n.Note,
		ScenariosPerSec: n.Fleet.ScenariosPerSec,
		Allocs:          make(map[string]int64, len(n.Benchmarks)),
	}
	for name, b := range n.Benchmarks {
		h.Allocs[name] = b.AllocsPerOp
	}
	return h
}

func main() {
	// testing.Init registers the test.* flags (test.benchtime in
	// particular) before our own, so -benchtime can forward to the
	// testing.Benchmark machinery below.
	testing.Init()
	scenarios := flag.Int("scenarios", 64, "workloads in the timed fleet sweep (total runs = scenarios × policies)")
	seed := flag.Uint64("seed", 1, "master fleet seed")
	workers := flag.Int("workers", 0, "fleet worker pool size (0 = NumCPU)")
	policies := flag.String("policies", "heuristic,maxaccuracy,minenergy", "comma-separated policies for the sweep")
	quick := flag.Bool("quick", false, "CI smoke mode: a small sweep (8 scenarios)")
	out := flag.String("out", "BENCH_fleet.json", "output file; an existing file's baseline object is preserved (\"-\" = stdout)")
	note := flag.String("note", "", "free-form annotation stored with the measurement")
	benchtime := flag.String("benchtime", "", "micro-benchmark duration per benchmark (e.g. 100ms, 50x); default is Go's 1s")
	check := flag.Bool("check", false, "after measuring, compare current against the recorded baseline and exit non-zero on regression")
	allocSlack := flag.Int64("alloc-slack", 0, "with -check: absolute allocs/op increase tolerated per benchmark (allocs are deterministic, so 0 is not flaky)")
	minThroughputRatio := flag.Float64("min-throughput-ratio", 0.5, "with -check: fail when fleet scenarios/sec drops below this fraction of baseline (0 disables)")
	allowEnvMismatch := flag.Bool("allow-env-mismatch", false, "with -check: on goVersion/gomaxprocs mismatch, annotate loudly and compare allocs only instead of refusing")
	rebaseline := flag.Bool("rebaseline", false, "record this run's numbers as the new baseline (replacing any recorded one)")
	checkout := flag.String("checkout", "", "with -check: also write the check report to this file (for CI artifacts)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the fleet sweep to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the fleet sweep to this file")
	flag.Parse()

	if *quick {
		*scenarios = 8
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			log.Fatalf("fleetbench: bad -benchtime: %v", err)
		}
	}
	if *check && *rebaseline {
		// Checking against a baseline this same run replaces is a
		// self-comparison; it can only pass and would launder regressions
		// into the new baseline.
		log.Fatalf("fleetbench: -check and -rebaseline are mutually exclusive")
	}
	pols := strings.Split(*policies, ",")
	for _, p := range pols {
		if _, err := rtm.NewPolicy(p); err != nil {
			log.Fatalf("fleetbench: %v", err)
		}
	}
	// Read the previous baseline and history *before* measuring: a corrupt
	// -out file must fail fast, not after minutes of benchmarks whose fresh
	// numbers it would discard along with itself.
	var baseline *Numbers
	var history []HistoryEntry
	if *out != "-" {
		var err error
		if baseline, history, err = loadBaseline(*out); err != nil {
			log.Fatalf("fleetbench: %v", err)
		}
	}

	cur := Numbers{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: map[string]BenchNumbers{},
	}

	// ---- Fleet throughput sweep ----
	// The profile window covers exactly the timed sweep — the number the
	// check gate holds — so a hot-path hunt sees the same mix the
	// scenarios/sec figure measures, without micro-benchmark noise.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("fleetbench: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("fleetbench: -cpuprofile: %v", err)
		}
		defer f.Close()
	}
	fmt.Fprintf(os.Stderr, "fleetbench: sweep %d scenarios x %d policies...\n", *scenarios, len(pols))
	fn, err := sweep(*seed, *scenarios, *workers, pols)
	if err != nil {
		log.Fatalf("fleetbench: %v", err)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "fleetbench: wrote %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("fleetbench: -memprofile: %v", err)
		}
		runtime.GC() // flush recently-freed objects so the profile shows live + cumulative allocs accurately
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("fleetbench: -memprofile: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "fleetbench: wrote %s\n", *memprofile)
	}
	cur.Fleet = fn
	fmt.Fprintf(os.Stderr, "fleetbench: %.1f scenarios/sec (%d runs in %.2fs)\n",
		fn.ScenariosPerSec, fn.Runs, fn.WallSeconds)

	// ---- Hot-layer micro-benchmarks ----
	cur.Benchmarks["engine-run"] = record("engine-run", benchEngineRun)
	cur.Benchmarks["engine-new"] = record("engine-new", benchEngineNew)
	cur.Benchmarks["replan"] = record("replan", benchReplan)
	cur.Benchmarks["replan-elided"] = record("replan-elided", benchReplanElided)
	cur.Benchmarks["plan-cache/hit"] = record("plan-cache/hit", benchPlanCacheHit)
	for _, p := range pols {
		cur.Benchmarks["policy-plan/"+p] = record("policy-plan/"+p, benchPolicyPlan(p))
	}

	if *rebaseline {
		// The trajectory log is append-only: every run that becomes the
		// baseline leaves a permanent line, so the perf history survives
		// baselines replacing each other. Files that predate the history
		// field get their about-to-be-replaced baseline preserved as line
		// zero exactly once.
		if len(history) == 0 && baseline != nil {
			history = append(history, historyEntry(*baseline))
		}
		baseline = &cur
		history = append(history, historyEntry(cur))
	}
	doc := Doc{Schema: 1, Baseline: baseline, Current: cur, History: history}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("fleetbench: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		// Atomic (temp + rename): this file carries the recorded perf
		// trajectory, and a crash mid-write must not leave a truncated
		// artifact that the next run's fail-loud baseline parse rejects.
		// Written before any -check verdict so a failing gate still leaves
		// the fresh numbers on disk for inspection.
		if err := atomicfile.WriteFile(*out, func(w io.Writer) error {
			_, werr := w.Write(enc)
			return werr
		}); err != nil {
			log.Fatalf("fleetbench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "fleetbench: wrote %s\n", *out)
	}

	if !*check {
		return
	}
	res := checkRegression(baseline, cur, thresholds{
		AllocSlack:         *allocSlack,
		MinThroughputRatio: *minThroughputRatio,
		AllowEnvMismatch:   *allowEnvMismatch,
	})
	report := res.render()
	fmt.Fprint(os.Stderr, report)
	if *checkout != "" {
		if err := os.WriteFile(*checkout, []byte(report), 0o644); err != nil {
			log.Fatalf("fleetbench: writing check report: %v", err)
		}
	}
	if !res.ok() {
		os.Exit(1)
	}
}

// loadBaseline extracts the recorded baseline and the append-only history
// from a previous -out file so reruns preserve the pre-optimisation
// numbers and the trajectory log. A missing file is fine (first run: no
// baseline, empty history). A file that exists but does not parse is an
// error, not a shrug: the old behaviour silently dropped the baseline on a
// corrupt artifact and the next write destroyed the recorded perf
// trajectory — exactly the history the file exists to keep. The caller
// refuses to overwrite until the operator fixes or removes the file.
func loadBaseline(path string) (*Numbers, []HistoryEntry, error) {
	prev, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("reading previous %s: %w", path, err)
	}
	var old Doc
	if err := json.Unmarshal(prev, &old); err != nil {
		return nil, nil, fmt.Errorf("previous %s is corrupt (%v); refusing to overwrite it and lose the recorded baseline — fix or delete the file, or use -out - for stdout", path, err)
	}
	return old.Baseline, old.History, nil
}

// sweep times a full fleet run and derives throughput plus per-scenario
// wall-time percentiles.
func sweep(seed uint64, scenarios, workers int, pols []string) (FleetNumbers, error) {
	cfg := fleet.GeneratorConfig{Seed: seed, Policies: pols}
	gen, err := fleet.NewGenerator(cfg)
	if err != nil {
		return FleetNumbers{}, err
	}
	scens := gen.Generate(gen.RunCount(scenarios))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	// Pooled pass: the throughput number. DropLatencies matches how a
	// million-scenario fleet would actually run.
	runner := &fleet.Runner{Workers: workers, DropLatencies: true}
	start := time.Now()
	results := runner.Run(scens)
	total := time.Since(start)
	for _, r := range results {
		if r.Err != "" {
			return FleetNumbers{}, fmt.Errorf("scenario %d failed: %s", r.ID, r.Err)
		}
	}

	// Serial sampled pass: per-scenario wall-time percentiles, free of
	// pool scheduling noise and bounded so fleetbench stays cheap.
	sample := len(scens)
	if sample > 32 {
		sample = 32
	}
	ms := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		t0 := time.Now()
		fleet.RunOne(scens[i])
		ms = append(ms, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	sort.Float64s(ms)
	fn := FleetNumbers{
		Scenarios:       scenarios,
		Policies:        pols,
		Runs:            len(scens),
		Workers:         workers,
		Seed:            seed,
		WallSeconds:     total.Seconds(),
		ScenariosPerSec: float64(len(scens)) / total.Seconds(),
	}
	if n := len(ms); n > 0 {
		fn.P50WallMs = ms[(n-1)/2]
		fn.P95WallMs = ms[min(n-1, int(float64(n)*0.95+0.5)-1)]
		fn.MaxWallMs = ms[n-1]
	}
	ps := runner.PlanCacheStats()
	fn.PlansTotal = ps.Plans
	fn.PlansElided = ps.Elided
	fn.PlanCacheHits = ps.CacheHits
	fn.PlanCacheMisses = ps.CacheMisses
	fmt.Fprintf(os.Stderr, "fleetbench: plan reuse: %d plans, %d elided, %d cache hits, %d misses\n",
		ps.Plans, ps.Elided, ps.CacheHits, ps.CacheMisses)
	return fn, nil
}

// record runs one testing.Benchmark and prints + returns its numbers.
func record(name string, fn func(b *testing.B)) BenchNumbers {
	res := testing.Benchmark(fn)
	n := BenchNumbers{
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "fleetbench: %-24s %12.0f ns/op %8d B/op %6d allocs/op\n",
		name, n.NsPerOp, n.BytesPerOp, n.AllocsPerOp)
	return n
}

func benchApps() []sim.App {
	// The canonical mobile-vision profile the rtm/sim benchmarks model, so
	// the trajectory file stays comparable if the profile is ever retuned.
	prof := workload.MobileProfile()
	return []sim.App{
		{Name: "dnn1", Kind: sim.KindDNN, Profile: prof, Level: 4, PeriodS: 0.040,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "npu"}},
		{Name: "dnn2", Kind: sim.KindDNN, Profile: prof, Level: 4, PeriodS: 1.0 / 60,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "cpu-big", Cores: 4}},
		{Name: "dnn3", Kind: sim.KindDNN, Profile: prof, Level: 2, PeriodS: 0.100,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "cpu-lit", Cores: 2}},
		{Name: "vr", Kind: sim.KindRender, Util: 0.6, Placement: sim.Placement{Cluster: "gpu"}},
		{Name: "bg", Kind: sim.KindBackground, Util: 0.4, Placement: sim.Placement{Cluster: "cpu-lit", Cores: 1}},
	}
}

// benchEngineRun measures the steady-state engine cost the fleet actually
// pays: one uncontrolled 10-simulated-second run on a reused engine, Reset
// in place between iterations exactly as each fleet worker does between
// scenarios. Construction cost is excluded (that is benchEngineNew); this
// number is the "engine allocs/run ≤ 10 steady-state" target the check
// gate enforces.
func benchEngineRun(b *testing.B) {
	cfg := sim.Config{Platform: hw.FlagshipSoC(), Apps: benchApps()}
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineNew measures the same run with per-iteration construction —
// the cold-start cost a worker pays once per scenario stream. Kept
// alongside engine-run so the trajectory file shows what Engine.Reset
// amortises away.
func benchEngineNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := sim.New(sim.Config{Platform: hw.FlagshipSoC(), Apps: benchApps()})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchManagedEngine builds the warmed-up manager + engine pair the replan
// benchmarks share.
func benchManagedEngine(b *testing.B) (*rtm.Manager, *sim.Engine) {
	mgr := rtm.NewManager(map[string]rtm.Requirement{
		"dnn1": {MinAccuracy: 0.70, Priority: 1},
		"dnn2": {MinAccuracy: 0.70, Priority: 2},
		"dnn3": {Priority: 1},
	})
	e, err := sim.New(sim.Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       benchApps(),
		Controller: mgr,
		TickS:      fleet.TickS,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		b.Fatal(err)
	}
	return mgr, e
}

// benchReplan measures the full manager path against a warmed-up engine —
// the cmd-level twin of internal/rtm's BenchmarkReplan. Plan reuse is
// disabled: on a quiescent engine every iteration after the first would
// otherwise be elided, and this row exists to track the cost of a real
// snapshot + plan + actuation.
func benchReplan(b *testing.B) {
	mgr, e := benchManagedEngine(b)
	mgr.NoPlanReuse = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Replan(e)
	}
}

// benchReplanElided measures the fingerprint-stable fast path: after one
// actuated fixed point, every further Replan on a quiescent engine is a
// fingerprint compare and a counter bump. This is the per-tick cost the
// elision tier buys the fleet down to.
func benchReplanElided(b *testing.B) {
	mgr, e := benchManagedEngine(b)
	mgr.Replan(e) // reach the actuated fixed point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Replan(e)
	}
}

// benchPlanCacheHit measures the memo-hit path: re-setting an identical
// requirement bumps the manager's requirement version, which defeats
// elision, but the canonical plan key is unchanged — so each iteration
// pays view build + key build + cached-plan copy-out + actuation, skipping
// only the policy's planning work.
func benchPlanCacheHit(b *testing.B) {
	mgr, e := benchManagedEngine(b)
	req := rtm.Requirement{Priority: 1}
	mgr.SetRequirement("dnn3", req)
	mgr.Replan(e) // prime the cache entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.SetRequirement("dnn3", req)
		mgr.Replan(e)
	}
}

// benchPolicyPlan measures one Plan over a realistic warmed-up view for
// the named policy. The view is the manager's last planning input
// (LastView) after a short managed run — equivalent content to the
// internal benchmark's direct view build, reachable through the public
// API.
func benchPolicyPlan(name string) func(b *testing.B) {
	return func(b *testing.B) {
		p, err := rtm.NewPolicy(name)
		if err != nil {
			b.Fatal(err)
		}
		mgr := rtm.NewManager(map[string]rtm.Requirement{
			"dnn1": {MinAccuracy: 0.70, Priority: 1},
			"dnn2": {MinAccuracy: 0.70, Priority: 2},
			"dnn3": {Priority: 1},
		})
		e, err := sim.New(sim.Config{
			Platform:   hw.FlagshipSoC(),
			Apps:       benchApps(),
			Controller: mgr,
			TickS:      fleet.TickS,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(2); err != nil {
			b.Fatal(err)
		}
		v := mgr.LastView()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if plan := p.Plan(v); len(plan) == 0 {
				b.Fatal("empty plan")
			}
		}
	}
}
