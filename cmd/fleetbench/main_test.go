package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBaseline pins the baseline-preservation contract of the perf
// trajectory file: a missing file starts fresh, a valid file hands its
// recorded baseline through untouched, and — the regression this guards —
// a file that exists but fails to parse is a loud error instead of a
// silently dropped baseline (the old code swallowed the unmarshal error,
// so one corrupt artifact plus one rerun erased the recorded
// pre-optimisation numbers forever).
func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file is a fresh start", func(t *testing.T) {
		b, h, err := loadBaseline(filepath.Join(dir, "nope.json"))
		if err != nil || b != nil || h != nil {
			t.Fatalf("loadBaseline(missing) = %v, %v, %v; want nil, nil, nil", b, h, err)
		}
	})

	t.Run("valid file preserves its baseline", func(t *testing.T) {
		want := Numbers{Note: "pre-PR", Fleet: FleetNumbers{ScenariosPerSec: 123.5, Runs: 192}}
		path := filepath.Join(dir, "valid.json")
		raw, err := json.Marshal(Doc{Schema: 1, Baseline: &want, Current: Numbers{Note: "old current"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := loadBaseline(path)
		if err != nil {
			t.Fatalf("loadBaseline(valid) error: %v", err)
		}
		if got == nil || got.Note != want.Note || got.Fleet.ScenariosPerSec != want.Fleet.ScenariosPerSec {
			t.Fatalf("loadBaseline(valid) = %+v, want %+v", got, want)
		}
	})

	t.Run("valid file without a baseline stays baseline-free", func(t *testing.T) {
		path := filepath.Join(dir, "nobaseline.json")
		raw, err := json.Marshal(Doc{Schema: 1, Current: Numbers{Note: "current only"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		b, _, err := loadBaseline(path)
		if err != nil || b != nil {
			t.Fatalf("loadBaseline(no-baseline) = %v, %v; want nil, nil", b, err)
		}
	})

	t.Run("history rides along untouched", func(t *testing.T) {
		hist := []HistoryEntry{
			{Timestamp: "2026-01-01T00:00:00Z", Note: "seed", ScenariosPerSec: 226.8, Allocs: map[string]int64{"replan": 23}},
			{Timestamp: "2026-02-01T00:00:00Z", Note: "engine reuse", ScenariosPerSec: 609.3},
		}
		path := filepath.Join(dir, "history.json")
		raw, err := json.Marshal(Doc{Schema: 1, Current: Numbers{}, History: hist})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, err := loadBaseline(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(hist) || got[0].Note != "seed" || got[1].ScenariosPerSec != 609.3 ||
			got[0].Allocs["replan"] != 23 {
			t.Fatalf("history mangled on load: %+v", got)
		}
	})

	t.Run("corrupt file fails loudly", func(t *testing.T) {
		path := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(path, []byte(`{"schema": 1, "baseline": {trunc`), 0o644); err != nil {
			t.Fatal(err)
		}
		b, _, err := loadBaseline(path)
		if err == nil {
			t.Fatalf("loadBaseline(corrupt) = %+v, nil; want an error — a corrupt artifact must not silently drop the baseline", b)
		}
		if !strings.Contains(err.Error(), "refusing to overwrite") {
			t.Fatalf("loadBaseline(corrupt) error %q should explain it refuses to overwrite", err)
		}
	})
}

// TestHistoryEntry pins what a rebaseline appends to the trajectory log:
// the headline throughput and the deterministic allocs/op per benchmark.
func TestHistoryEntry(t *testing.T) {
	n := Numbers{
		Timestamp: "2026-08-07T00:00:00Z",
		Note:      "plan reuse",
		Fleet:     FleetNumbers{ScenariosPerSec: 640},
		Benchmarks: map[string]BenchNumbers{
			"replan":         {NsPerOp: 1000, AllocsPerOp: 23},
			"replan-elided":  {NsPerOp: 10, AllocsPerOp: 0},
			"plan-cache/hit": {NsPerOp: 400, AllocsPerOp: 4},
		},
	}
	h := historyEntry(n)
	if h.Timestamp != n.Timestamp || h.Note != n.Note || h.ScenariosPerSec != 640 {
		t.Fatalf("header fields mangled: %+v", h)
	}
	if len(h.Allocs) != 3 || h.Allocs["replan"] != 23 || h.Allocs["replan-elided"] != 0 {
		t.Fatalf("allocs map mangled: %+v", h.Allocs)
	}
}
