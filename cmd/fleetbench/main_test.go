package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBaseline pins the baseline-preservation contract of the perf
// trajectory file: a missing file starts fresh, a valid file hands its
// recorded baseline through untouched, and — the regression this guards —
// a file that exists but fails to parse is a loud error instead of a
// silently dropped baseline (the old code swallowed the unmarshal error,
// so one corrupt artifact plus one rerun erased the recorded
// pre-optimisation numbers forever).
func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file is a fresh start", func(t *testing.T) {
		b, err := loadBaseline(filepath.Join(dir, "nope.json"))
		if err != nil || b != nil {
			t.Fatalf("loadBaseline(missing) = %v, %v; want nil, nil", b, err)
		}
	})

	t.Run("valid file preserves its baseline", func(t *testing.T) {
		want := Numbers{Note: "pre-PR", Fleet: FleetNumbers{ScenariosPerSec: 123.5, Runs: 192}}
		path := filepath.Join(dir, "valid.json")
		raw, err := json.Marshal(Doc{Schema: 1, Baseline: &want, Current: Numbers{Note: "old current"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := loadBaseline(path)
		if err != nil {
			t.Fatalf("loadBaseline(valid) error: %v", err)
		}
		if got == nil || got.Note != want.Note || got.Fleet.ScenariosPerSec != want.Fleet.ScenariosPerSec {
			t.Fatalf("loadBaseline(valid) = %+v, want %+v", got, want)
		}
	})

	t.Run("valid file without a baseline stays baseline-free", func(t *testing.T) {
		path := filepath.Join(dir, "nobaseline.json")
		raw, err := json.Marshal(Doc{Schema: 1, Current: Numbers{Note: "current only"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := loadBaseline(path)
		if err != nil || b != nil {
			t.Fatalf("loadBaseline(no-baseline) = %v, %v; want nil, nil", b, err)
		}
	})

	t.Run("corrupt file fails loudly", func(t *testing.T) {
		path := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(path, []byte(`{"schema": 1, "baseline": {trunc`), 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := loadBaseline(path)
		if err == nil {
			t.Fatalf("loadBaseline(corrupt) = %+v, nil; want an error — a corrupt artifact must not silently drop the baseline", b)
		}
		if !strings.Contains(err.Error(), "refusing to overwrite") {
			t.Fatalf("loadBaseline(corrupt) error %q should explain it refuses to overwrite", err)
		}
	})
}
