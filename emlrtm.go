package emlrtm

import (
	"io"

	"github.com/emlrtm/emlrtm/internal/baselines"
	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/experiments"
	"github.com/emlrtm/emlrtm/internal/fleet"
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/pareto"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/trace"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// ---- Dynamic DNN (the paper's application-side contribution) ----

// Aliases into the dynamic-DNN package: model construction, incremental
// training, evaluation and switch-cost accounting.
type (
	// DynDNNConfig configures the dynamic CNN architecture.
	DynDNNConfig = dyndnn.Config
	// DynDNN is a trained or trainable dynamic DNN with G nested
	// configurations selected via SetLevel.
	DynDNN = dyndnn.Model
	// TrainConfig controls the incremental trainer (Fig 3(b)).
	TrainConfig = dyndnn.TrainConfig
	// TrainReport summarises an incremental training run.
	TrainReport = dyndnn.TrainReport
	// EvalResult holds per-configuration validation metrics (Fig 4(b)).
	EvalResult = dyndnn.EvalResult
	// SwitchCostModel prices configuration/model switches (Park et al.).
	SwitchCostModel = dyndnn.SwitchCostModel
	// SwitchCost is one switch's latency/energy/bytes cost.
	SwitchCost = dyndnn.SwitchCost
)

// NewDynDNN constructs an untrained dynamic DNN.
func NewDynDNN(cfg DynDNNConfig) (*DynDNN, error) { return dyndnn.New(cfg) }

// DefaultDynDNNConfig is the paper-scale model (4 groups, 32×32×3 input).
func DefaultDynDNNConfig() DynDNNConfig { return dyndnn.DefaultConfig() }

// QuickDynDNNConfig is a reduced model for fast experimentation.
func QuickDynDNNConfig() DynDNNConfig { return dyndnn.QuickConfig() }

// DefaultTrainConfig is the paper-scale incremental training recipe.
func DefaultTrainConfig() TrainConfig { return dyndnn.DefaultTrainConfig() }

// ---- Synthetic dataset (CIFAR-10 stand-in) ----

type (
	// DatasetConfig parametrises synthetic data generation.
	DatasetConfig = dataset.Config
	// Dataset holds generated train/validation tensors and labels.
	Dataset = dataset.Dataset
)

// GenerateDataset builds the deterministic synthetic classification task.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// DefaultDatasetConfig mirrors the paper's CIFAR-10 setting.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// QuickDatasetConfig is a reduced dataset for fast experimentation.
func QuickDatasetConfig() DatasetConfig { return dataset.QuickConfig() }

// ---- Hardware platforms ----

type (
	// Platform is a complete SoC/board model.
	Platform = hw.Platform
	// Cluster is one voltage/frequency domain of a platform.
	Cluster = hw.Cluster
	// OPP is a DVFS operating performance point.
	OPP = hw.OPP
	// ThermalParams is the lumped RC thermal model.
	ThermalParams = hw.ThermalParams
)

// OdroidXU3 returns the paper's primary evaluation board, calibrated to
// Table I.
func OdroidXU3() *Platform { return hw.OdroidXU3() }

// JetsonNano returns the paper's second Table I platform.
func JetsonNano() *Platform { return hw.JetsonNano() }

// FlagshipSoC returns a representative NPU-equipped phone SoC (the Fig 2
// scenario platform).
func FlagshipSoC() *Platform { return hw.FlagshipSoC() }

// Platforms returns every built-in platform keyed by name.
func Platforms() map[string]*Platform { return hw.Catalog() }

// ---- Operating points, Pareto queries, budgets ----

type (
	// ModelProfile characterises a dynamic DNN per level for the perf
	// model (MACs, accuracy, memory).
	ModelProfile = perf.ModelProfile
	// LevelSpec is one level of a ModelProfile.
	LevelSpec = perf.LevelSpec
	// OperatingPoint is one point of the E/P/t/accuracy space (Fig 4(a)).
	OperatingPoint = perf.OperatingPoint
	// EnumerateOptions filters operating-point enumeration.
	EnumerateOptions = perf.EnumerateOptions
	// Budget expresses latency/energy/power/accuracy constraints.
	Budget = pareto.Budget
)

// PaperReferenceProfile is the paper's dynamic DNN with published Fig 4(b)
// accuracies and the Table I calibration workload.
func PaperReferenceProfile() ModelProfile { return perf.PaperReferenceProfile() }

// OperatingPoints enumerates the space of a profile on a platform.
func OperatingPoints(p *Platform, prof ModelProfile, opt EnumerateOptions) []OperatingPoint {
	return perf.Enumerate(p, prof, opt)
}

// BestOperatingPoint selects the feasible point with maximum accuracy,
// then minimum energy (the paper's worked-example rule). ok is false when
// the budget is unsatisfiable.
func BestOperatingPoint(points []OperatingPoint, b Budget) (OperatingPoint, bool) {
	return pareto.Best(points, b)
}

// MinEnergyOperatingPoint selects the feasible point with minimum energy.
func MinEnergyOperatingPoint(points []OperatingPoint, b Budget) (OperatingPoint, bool) {
	return pareto.MinEnergy(points, b)
}

// ParetoFrontier filters points to the (latency, energy, -accuracy)
// non-dominated subset.
func ParetoFrontier(points []OperatingPoint) []OperatingPoint {
	return pareto.Frontier(points, pareto.LatencyEnergyMetric)
}

// ---- Simulation and runtime management (Fig 2 / Fig 5) ----

type (
	// App describes a simulated workload (DNN stream, render, background).
	App = sim.App
	// Placement binds an app to a cluster and core count.
	Placement = sim.Placement
	// Engine is the discrete-event simulator.
	Engine = sim.Engine
	// SimConfig configures an Engine.
	SimConfig = sim.Config
	// SimReport is the outcome of a simulation run.
	SimReport = sim.Report
	// AppInfo is the observable state of one simulated app.
	AppInfo = sim.AppInfo
	// Controller is the runtime-manager hook invoked by the engine.
	Controller = sim.Controller
	// Event is an observable simulator event.
	Event = sim.Event
	// SimSnapshot is a read-only capture of the engine's observable state.
	// Engine.Snapshot allocates a fresh one; controllers on a hot loop
	// rebuild an existing snapshot in place with Engine.SnapshotInto, and
	// policies' views clone without allocating via View.CloneInto.
	SimSnapshot = sim.Snapshot

	// Manager is the paper's runtime resource manager (Fig 5): the
	// actuation shell around a pluggable planning Policy.
	Manager = rtm.Manager
	// Requirement is an application's demands on the manager.
	Requirement = rtm.Requirement
	// Registry is the knob/monitor namespace of the Fig 5 architecture.
	Registry = rtm.Registry
	// Policy is a pluggable planning strategy: a pure function from a
	// read-only View to one Assignment per running DNN.
	Policy = rtm.Policy
	// View is the read-only system snapshot a Policy plans over.
	View = rtm.View
	// Assignment is one planned operating point for an app.
	Assignment = rtm.Assignment
	// Governor is a conventional DVFS policy (baseline).
	Governor = rtm.Governor
	// Scenario is a scripted workload timeline.
	Scenario = workload.Scenario
)

// DefaultPolicy is the planning policy NewManager installs (the paper's
// heuristic) and the name the empty string resolves to.
const DefaultPolicy = rtm.DefaultPolicy

// RegisterPolicy adds a planning-policy factory to the registry; the name
// then works everywhere — Manager.SetPolicy via NewPolicy, fleet sweeps,
// fleetsim -policies. It panics on duplicate or empty names.
func RegisterPolicy(name string, factory func() Policy) { rtm.Register(name, factory) }

// RegisterParamPolicy adds a parameterised policy family: the registry
// name "<prefix>:<arg>" resolves by calling factory(arg), which is how
// per-instance-configured strategies (e.g. "learned:<table.json>") ride
// the same name-based plumbing as the built-ins.
func RegisterParamPolicy(prefix string, factory func(arg string) (Policy, error)) {
	rtm.RegisterParam(prefix, factory)
}

// Policies lists all registered planning-policy names, sorted.
func Policies() []string { return rtm.Policies() }

// NewPolicy instantiates a registered planning policy by name ("" =
// DefaultPolicy; "<prefix>:<arg>" resolves parameterised families, e.g.
// "learned:table.json").
func NewPolicy(name string) (Policy, error) { return rtm.NewPolicy(name) }

// ---- Learned policy (trained strategy selection) ----

type (
	// LearnedTable is a trained state → base-policy selection table: the
	// serialisable artifact behind the "learned:<table.json>" policy.
	LearnedTable = rtm.LearnedTable
	// LearnedState is one discretised state's per-arm training record.
	LearnedState = rtm.LearnedState
	// PolicyTrainConfig parametrises offline training of a LearnedTable
	// over a seeded fleet.
	PolicyTrainConfig = fleet.TrainConfig
	// PolicyTrainReport summarises a training run (per-arm sweep costs,
	// state coverage).
	PolicyTrainReport = fleet.TrainReport
	// ArmTrainStats is one arm's pure-sweep summary in a
	// PolicyTrainReport.
	ArmTrainStats = fleet.ArmTrainStats
)

// TrainPolicy trains a learned policy selection table on cfg.Workloads
// seeded fleet workloads: a full per-arm sweep, then cfg.Epochs
// epsilon-greedy refinement epochs. Same config, byte-identical table, at
// any worker count.
func TrainPolicy(cfg PolicyTrainConfig) (*LearnedTable, PolicyTrainReport, error) {
	return fleet.Train(cfg)
}

// NewLearnedPolicy wraps a validated in-memory table as a Policy under the
// given registry name (trainers evaluating a fresh table without a file
// round-trip).
func NewLearnedPolicy(name string, t *LearnedTable) (Policy, error) {
	return rtm.NewLearnedPolicy(name, t)
}

// LoadLearnedPolicy reads a trained table file and wraps it as the Policy
// "learned:<path>" — the same resolution the registry performs for that
// name.
func LoadLearnedPolicy(path string) (Policy, error) { return rtm.LoadLearnedPolicy(path) }

// ReadLearnedTable reads and validates a trained table file.
func ReadLearnedTable(path string) (*LearnedTable, error) { return rtm.ReadLearnedTableFile(path) }

// PolicyStateKey discretises a planning View into the learned policy's
// tabular state key (thermal headroom, power-budget ratio, worst deadline
// slack, running-DNN count).
func PolicyStateKey(v *View) string { return rtm.StateKey(v) }

// Workload kind constants re-exported for App construction.
const (
	KindDNN        = sim.KindDNN
	KindRender     = sim.KindRender
	KindBackground = sim.KindBackground
)

// NewEngine validates the config and builds a simulator.
func NewEngine(cfg SimConfig) (*Engine, error) { return sim.New(cfg) }

// NewManager builds a runtime manager with per-app requirements.
func NewManager(reqs map[string]Requirement) *Manager { return rtm.NewManager(reqs) }

// NewGovernorController builds the governor-only baseline controller.
func NewGovernorController(g Governor) Controller { return rtm.NewGovernorController(g) }

// OndemandGovernor returns the classic load-threshold DVFS governor.
func OndemandGovernor() Governor { return rtm.OndemandGovernor{} }

// PerformanceGovernor returns the max-frequency governor.
func PerformanceGovernor() Governor { return rtm.PerformanceGovernor{} }

// Fig2Scenario returns the paper's Fig 2 runtime timeline.
func Fig2Scenario() Scenario { return workload.Fig2Scenario() }

// MobileProfile returns the mobile-vision-class profile the Fig 2
// scenario's DNNs use.
func MobileProfile() ModelProfile { return workload.MobileProfile() }

// RunScenario executes a scripted scenario under a fresh manager and
// returns the engine, manager and report.
func RunScenario(s Scenario, p *Platform, tickS float64, logf func(string, ...any)) (*Engine, *Manager, SimReport, error) {
	return workload.Run(s, p, tickS, logf)
}

// ---- Fleet-scale scenario harness ----

type (
	// FleetScenario is one generated fleet member: a scripted workload
	// bound to a catalog platform.
	FleetScenario = fleet.Scenario
	// FleetClass labels a scenario's disturbance pattern.
	FleetClass = fleet.Class
	// FleetGeneratorConfig parametrises scenario sampling.
	FleetGeneratorConfig = fleet.GeneratorConfig
	// FleetGenerator samples scenarios deterministically from a seed.
	FleetGenerator = fleet.Generator
	// FleetRunner fans scenarios out over a bounded worker pool.
	FleetRunner = fleet.Runner
	// FleetResult is the compact outcome of one scenario run.
	FleetResult = fleet.Result
	// FleetReport is the aggregate fleet outcome with per-platform and
	// per-class breakdowns.
	FleetReport = fleet.Report
	// FleetGroupStats summarises one slice of the fleet.
	FleetGroupStats = fleet.GroupStats
	// FleetRegretStats quantifies a swept policy's distance from the
	// per-workload oracle (best policy in the sweep on the same
	// bit-identical workload).
	FleetRegretStats = fleet.RegretStats
	// FleetShardResult is one process's share of a fleet run: results for
	// a contiguous scenario range plus the header that proves shard
	// compatibility on merge.
	FleetShardResult = fleet.ShardResult
)

// FleetShardFormatVersion is the current shard-file format version.
const FleetShardFormatVersion = fleet.ShardFormatVersion

// NewFleetGenerator validates the config against the platform catalog.
func NewFleetGenerator(cfg FleetGeneratorConfig) (*FleetGenerator, error) {
	return fleet.NewGenerator(cfg)
}

// RunFleetScenario executes a single fleet scenario to completion.
func RunFleetScenario(s FleetScenario) FleetResult { return fleet.RunOne(s) }

// AggregateFleet folds per-scenario results into the fleet report.
func AggregateFleet(seed uint64, results []FleetResult) FleetReport {
	return fleet.Aggregate(seed, results)
}

// RunFleet generates n workloads, runs each under every policy in
// cfg.Policies (default: just the heuristic) across the worker pool
// (workers <= 0 means NumCPU) and aggregates; sweeps gain a ByPolicy
// breakdown. The report is bit-identical for any worker count.
func RunFleet(cfg FleetGeneratorConfig, n, workers int) (FleetReport, []FleetResult, error) {
	return fleet.Run(cfg, n, workers)
}

// FleetShardRange returns the contiguous scenario index range [lo, hi)
// owned by shard index (0-based) of count over a total-scenario fleet.
func FleetShardRange(total, index, count int) (lo, hi int) {
	return fleet.ShardRange(total, index, count)
}

// RunFleetShard runs shard index (0-based) of count over a
// total-scenario fleet; merging every shard with MergeFleetShards is
// byte-identical to RunFleet over the same config and total.
func RunFleetShard(cfg FleetGeneratorConfig, total, index, count, workers int) (FleetShardResult, error) {
	return fleet.RunShard(cfg, total, index, count, workers)
}

// WriteFleetShard validates the shard and writes it as indented JSON.
func WriteFleetShard(w io.Writer, s FleetShardResult) error {
	return fleet.WriteShard(w, s)
}

// ReadFleetShard decodes one shard file — plain or gzipped, sniffed by
// magic number — validating the format version, index range, per-scenario
// seed derivation and policy assignment.
func ReadFleetShard(r io.Reader) (FleetShardResult, error) {
	return fleet.ReadShard(r)
}

// WriteFleetShardFile writes a shard to path, gzip-compressed when the
// path ends in ".gz".
func WriteFleetShardFile(path string, s FleetShardResult) error {
	return fleet.WriteShardFile(path, s)
}

// ReadFleetShardFile reads and validates one shard file from disk, plain
// or gzipped.
func ReadFleetShardFile(path string) (FleetShardResult, error) {
	return fleet.ReadShardFile(path)
}

// MergeFleetShards combines shards covering a whole fleet — rejecting
// gaps, overlaps, and seed or config mismatches — into a report
// byte-identical to the single-process run.
func MergeFleetShards(shards ...FleetShardResult) (FleetReport, []FleetResult, error) {
	return fleet.Merge(shards...)
}

// ---- Streaming shard results & orchestration ----

type (
	// FleetStreamHeader is the first line of a shard result stream: the run
	// identity (config, fleet size, range) every appended record is
	// validated against.
	FleetStreamHeader = fleet.StreamHeader
	// FleetStreamWriter appends completed results to a shard stream as
	// NDJSON, one flushed line per record, so a killed process loses at
	// most a partial trailing line.
	FleetStreamWriter = fleet.StreamWriter
	// FleetStreamReader incrementally decodes a shard result stream,
	// distinguishing clean EOF from a crash-truncated tail.
	FleetStreamReader = fleet.StreamReader
	// FleetOrchestratorConfig parametrises OrchestrateFleet.
	FleetOrchestratorConfig = fleet.OrchestratorConfig
	// FleetShardSpec is one shard assignment handed to an orchestrator
	// Start function.
	FleetShardSpec = fleet.ShardSpec
	// FleetShardProcess is the orchestrator's handle on a dispatched
	// shard (Wait/Kill).
	FleetShardProcess = fleet.ShardProcess
)

// NewFleetStreamWriter writes the stream header to w and returns a writer
// expecting records hdr.Lo, hdr.Lo+1, … in scenario order.
func NewFleetStreamWriter(w io.Writer, hdr FleetStreamHeader) (*FleetStreamWriter, error) {
	return fleet.NewStreamWriter(w, hdr)
}

// NewFleetStreamReader validates a stream's header (plain or gzipped,
// sniffed) and returns a reader for its records.
func NewFleetStreamReader(r io.Reader) (*FleetStreamReader, error) {
	return fleet.NewStreamReader(r)
}

// ReadFleetStream reads a complete shard result stream and converts it to
// the equivalent FleetShardResult; ReadFleetShard and ReadFleetShardFile
// perform the same conversion automatically when handed a stream.
func ReadFleetStream(r io.Reader) (FleetShardResult, error) {
	return fleet.ReadStream(r)
}

// ResumeFleetShard runs shard index/count of a fleet, streaming each
// completed result to the NDJSON file at path. An existing partial stream
// — say, from a killed process — is validated against cfg, its intact
// records are kept, any torn trailing line is truncated, and only the
// missing scenarios run. The returned shard is byte-identical to an
// uninterrupted RunFleetShard of the same range.
func ResumeFleetShard(path string, cfg FleetGeneratorConfig, total, index, count, workers int) (FleetShardResult, error) {
	return fleet.ResumeShard(path, cfg, total, index, count, workers)
}

// OrchestrateFleet runs a whole fleet as supervised shard processes:
// dispatching, monitoring stream progress, killing and retrying stalled or
// crashed shards (each retry resumes from the last flushed scenario), and
// merging into a report byte-identical to RunFleet of the same config.
func OrchestrateFleet(cfg FleetOrchestratorConfig) (FleetReport, []FleetResult, error) {
	return fleet.Orchestrate(cfg)
}

// FleetCommandStart adapts an argv builder into an orchestrator Start
// function that exec's each shard as a subprocess.
func FleetCommandStart(argv func(FleetShardSpec) []string, errw io.Writer) func(FleetShardSpec) (FleetShardProcess, error) {
	return fleet.CommandStart(argv, errw)
}

// FleetStreamFileName is the stream file OrchestrateFleet assigns to shard
// index (0-based) of count inside its Dir.
func FleetStreamFileName(index, count int) string { return fleet.StreamFileName(index, count) }

// ---- Baselines ----

type (
	// StaticModelSet is the NetAdapt-style per-setting model deployment.
	StaticModelSet = baselines.StaticModelSet
	// BigLittle is the two-model baseline of Park et al.
	BigLittle = baselines.BigLittle
)

// BuildStaticSet generates the static model per hardware setting meeting a
// latency budget.
func BuildStaticSet(p *Platform, prof ModelProfile, budgetS float64) StaticModelSet {
	return baselines.BuildStaticSet(p, prof, budgetS)
}

// NewBigLittle builds the two-model baseline from a profile's extremes.
func NewBigLittle(prof ModelProfile, escalationRate float64) BigLittle {
	return baselines.NewBigLittle(prof, escalationRate)
}

// ---- Experiments (tables & figures) ----

type (
	// ExperimentOptions selects experiment scale and seeding.
	ExperimentOptions = experiments.Options
	// Table is an aligned text/CSV table.
	Table = trace.Table
	// Figure is a set of named series rendered as CSV.
	Figure = trace.Figure
)

// Experiment drivers; see DESIGN.md §4 for the index.
var (
	// Table1 reproduces Table I from the calibrated platform models.
	Table1 = experiments.Table1
	// Fig1 reproduces the design-time platform mapping.
	Fig1 = experiments.Fig1
	// Fig2 runs the runtime scenario under the manager.
	Fig2 = experiments.Fig2
	// TrainDynamic runs incremental training and the Fig 4(b) evaluation.
	TrainDynamic = experiments.TrainDynamic
	// Fig4a enumerates the E/t operating-point space.
	Fig4a = experiments.Fig4a
	// Fig4Budgets reproduces the Section IV worked examples.
	Fig4Budgets = experiments.Fig4Budgets
	// Fig5 runs the closed-loop disturbance comparison.
	Fig5 = experiments.Fig5
	// AblationKnobs measures the knob-combination trade-off range.
	AblationKnobs = experiments.AblationKnobs
	// AblationSwitching compares storage/switching across deployments.
	AblationSwitching = experiments.AblationSwitching
	// AblationNoRTM compares the manager against a governor on Fig 2.
	AblationNoRTM = experiments.AblationNoRTM
)
