// Package emlrtm is a reproduction of "Optimising Resource Management for
// Embedded Machine Learning" (Xun, Tran-Thanh, Al-Hashimi, Merrett — DATE
// 2020) as a reusable Go library.
//
// It provides, end to end:
//
//   - a dynamic DNN built with incremental training and group-convolution
//     pruning (the paper's Fig 3), on a from-scratch tensor/NN substrate,
//     whose 25/50/75/100% configurations switch at runtime with no
//     retraining and no extra storage;
//   - calibrated models of the paper's evaluation platforms (Odroid XU3,
//     Jetson Nano, and a flagship phone SoC with an NPU) — DVFS ladders,
//     CV²f power, lumped RC thermal — fitted to the paper's Table I;
//   - the operating-point space of Fig 4(a) with Pareto/budget queries;
//   - a discrete-event simulator for multi-application workloads and the
//     PRiME-style runtime manager of Fig 5 (knobs/monitors, governors,
//     and a co-optimising planner over model level, task mapping and
//     DVFS) that reproduces the Fig 2 runtime scenario;
//   - experiment drivers regenerating every table and figure, plus the
//     ablations in DESIGN.md.
//
// The root package is a facade over the internal packages: it re-exports
// the stable types and constructors a downstream user needs. See README.md
// for a tour and examples/ for runnable programs.
package emlrtm
