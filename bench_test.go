package emlrtm

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (DESIGN.md §4), plus the ablations and substrate micro-benchmarks.
// Each experiment benchmark regenerates its artefact per iteration; run
//
//	go test -bench=. -benchmem
//
// to reproduce everything and record the wall cost of doing so. The
// experiment benchmarks print their table/figure summary once (on the
// first iteration) so a bench run doubles as a report.

import (
	"sync"
	"testing"

	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/experiments"
	"github.com/emlrtm/emlrtm/internal/nn"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/tensor"
)

var benchOpts = experiments.Options{Quick: true, Seed: 1}

// printOnce logs a rendered artefact on the first iteration only.
func printOnce(b *testing.B, i int, what string) {
	if i == 0 && testing.Verbose() {
		b.Log(what)
	}
}

// BenchmarkTableI regenerates Table I (E1).
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(perf.PaperAccuracies[3])
		if res.MaxRelativeError() > 0.05 {
			b.Fatal("calibration drifted")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkFig1 regenerates the design-time mapping of Fig 1 (E2).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1(prof)
		if len(res.Cells) != 9 {
			b.Fatal("wrong cell count")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkFig2 runs the full Fig 2 runtime scenario (E3).
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CoLocated() {
			b.Fatal("scenario did not converge to NPU co-location")
		}
		printOnce(b, i, res.Timeline.String())
	}
}

// trainedOnce caches one quick training run: Fig 3/4(b) benchmarks measure
// their own phase, and downstream benches reuse the measured profile.
var trainedOnce = sync.OnceValues(func() (experiments.TrainResult, error) {
	return experiments.TrainDynamic(benchOpts)
})

// BenchmarkFig3Train runs incremental training end to end (E4). Each
// iteration is a complete 4-step training on the quick-scale task.
func BenchmarkFig3Train(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TrainDynamic(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AccuracyMonotone() {
			b.Log("warning: accuracy not monotone this run")
		}
		printOnce(b, i, res.Fig4b.String())
	}
}

// BenchmarkFig4b evaluates all four configurations of a trained model on
// the validation set (E6) — the Fig 4(b) measurement itself.
func BenchmarkFig4b(b *testing.B) {
	b.ReportAllocs()
	res, err := trainedOnce()
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.MustGenerate(benchOpts.Dataset())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evals := res.Model.EvaluateAll(ds)
		if len(evals) != res.Model.Levels() {
			b.Fatal("missing evals")
		}
	}
}

// BenchmarkFig4a enumerates the 116-point E/t space (E5).
func BenchmarkFig4a(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4a(prof)
		if len(res.Points) != 116 {
			b.Fatal("wrong point count")
		}
		printOnce(b, i, res.Figure.CSV())
	}
}

// BenchmarkFig4Budgets answers the Section IV worked examples (E7).
func BenchmarkFig4Budgets(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4Budgets(prof)
		if !res.Cases[0].Feasible || !res.Cases[1].Feasible {
			b.Fatal("worked examples infeasible")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkFig5Loop runs the closed-loop disturbance comparison (E8).
func BenchmarkFig5Loop(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(prof, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if experiments.BadFraction(res.Managed) >= experiments.BadFraction(res.Baseline) {
			b.Fatal("manager lost to governor")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkAblationKnobs measures the knob-combination ranges (A1).
func BenchmarkAblationKnobs(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationKnobs(prof)
		if len(res.Sets) != 5 {
			b.Fatal("wrong set count")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkAblationSwitching compares storage/switch costs (A2).
func BenchmarkAblationSwitching(b *testing.B) {
	b.ReportAllocs()
	prof := perf.PaperReferenceProfile()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationSwitching(prof)
		if res.StaticSetBytes <= res.DynamicBytes {
			b.Fatal("baseline accounting broken")
		}
		printOnce(b, i, res.Table.String())
	}
}

// BenchmarkAblationNoRTM compares RTM against a governor on Fig 2 (A3).
func BenchmarkAblationNoRTM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNoRTM(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Table.String())
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkMatMul measures the GEMM kernel at a conv-typical shape.
func BenchmarkMatMul(b *testing.B) {
	b.ReportAllocs()
	rng := tensor.NewRNG(1)
	a := tensor.New(256, 108)
	c := tensor.New(108, 64)
	a.FillNormal(rng, 0, 1)
	c.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(a, c)
	}
}

// BenchmarkIm2Col measures the convolution lowering.
func BenchmarkIm2Col(b *testing.B) {
	b.ReportAllocs()
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{InC: 16, InH: 32, InW: 32, Kernel: 3, Stride: 1, Pad: 1}
	img := make([]float32, g.InC*g.InH*g.InW)
	for i := range img {
		img[i] = float32(rng.NormFloat64())
	}
	cols := tensor.New(g.OutH()*g.OutW(), g.InC*g.Kernel*g.Kernel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(img, g, cols)
	}
}

// BenchmarkInferenceByLevel measures one forward pass of the dynamic DNN
// at each configuration level — the compute-scaling the perf model relies
// on.
func BenchmarkInferenceByLevel(b *testing.B) {
	b.ReportAllocs()
	m := dyndnn.MustNew(dyndnn.QuickConfig())
	cfg := dataset.QuickConfig()
	cfg.TrainN, cfg.ValN = 10, 10
	ds := dataset.MustGenerate(cfg)
	x := ds.ValX.Slice4D(0, 8)
	for level := 1; level <= m.Levels(); level++ {
		level := level
		b.Run(m.LevelName(level), func(b *testing.B) {
			b.ReportAllocs()
			m.SetLevel(level)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Forward(x)
			}
		})
	}
}

// BenchmarkTrainingStep measures one SGD mini-batch step at full width.
func BenchmarkTrainingStep(b *testing.B) {
	b.ReportAllocs()
	m := dyndnn.MustNew(dyndnn.QuickConfig())
	cfg := dataset.QuickConfig()
	cfg.TrainN, cfg.ValN = 64, 10
	ds := dataset.MustGenerate(cfg)
	x := ds.TrainX.Slice4D(0, 32)
	y := ds.TrainY[:32]
	opt := nn.NewSGD(0.05, 0.9, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Net.Forward(x, true)
		_, dl := nn.SoftmaxCrossEntropy(logits, y)
		m.Net.Backward(dl)
		opt.Step(m.Net.Params())
	}
}

// BenchmarkSimScenarioSecond measures simulator throughput: one simulated
// second of the Fig 2 workload per iteration (amortised).
func BenchmarkSimScenarioSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
