package rtm

import "github.com/emlrtm/emlrtm/internal/sim"

// minEnergyPolicy is the race-to-idle strategy: meet each requirement at
// the minimal model level, always clocking the hosting cluster at its
// maximum OPP so the job finishes as fast as possible and the cores spend
// the rest of the frame idle. Among feasible race points it picks the one
// with the least average dynamic power. It is the classic embedded
// energy policy the paper's pacing heuristic argues against under a CV²f
// power model — registering it makes that argument measurable: a fleet
// sweep puts pacing and racing side by side on identical workloads.
type minEnergyPolicy struct{ epochKeyed }

// planCacheID implements cacheKeyed.
func (minEnergyPolicy) planCacheID() string { return "minenergy" }

// Name implements Policy.
func (minEnergyPolicy) Name() string { return "minenergy" }

// Plan implements Policy.
func (minEnergyPolicy) Plan(v View) []Assignment {
	return pooledPlan(&v, minEnergyAssign)
}

// planInto implements scratchPlanner: the Manager's allocation-free path.
func (minEnergyPolicy) planInto(v *View, sc *planScratch) []Assignment {
	return planWith(v, sc, minEnergyAssign)
}

func minEnergyAssign(v *View, st *planState, sc *planScratch, a sim.AppInfo) Assignment {
	req := v.Req(a)
	// Pass 1: minimal level meeting the accuracy floor, raced to idle.
	minLevel := minLevelMeeting(a, req.MinAccuracy)
	if a.Profile.Level(minLevel).Accuracy >= req.MinAccuracy {
		sc.levels = append(sc.levels[:0], minLevel)
		if c, ok := raceBest(v, st, sc, a, req, sc.levels); ok {
			return st.commit(a, c, 1)
		}
	}
	// Pass 2: accuracy relaxed — the cheapest feasible race point wins
	// outright (smaller levels draw less, so this walks levels upward and
	// stops improving once energy rises).
	sc.levels = sc.levels[:0]
	for l := 1; l <= a.Profile.MaxLevel(); l++ {
		sc.levels = append(sc.levels, l)
	}
	if c, ok := raceBest(v, st, sc, a, req, sc.levels); ok {
		return st.commit(a, c, 2)
	}
	// Pass 3: best effort — minimise latency under the power budget only.
	sc.levels = descendingLevels(a, sc.levels)
	if c, ok := heuristicBest(v, st, sc, a, req, sc.levels, true); ok {
		return st.commit(a, c, 3)
	}
	return park(v, st, a)
}

// raceBest enumerates candidates pinned to each cluster's maximum OPP
// (race-to-idle) and returns the minimum-average-power feasible one.
// levels may alias sc.levels; only sc.opts is consumed.
func raceBest(v *View, st *planState, sc *planScratch, a sim.AppInfo, req Requirement, levels []int) (candidate, bool) {
	var best candidate
	found := false
	for ci, cl := range v.Platform.Clusters {
		sc.opts = coreOptions(cl, st, ci, sc.opts)
		for _, cores := range sc.opts {
			for _, level := range levels {
				c, ok := evalCandidate(st, a, req, cl, ci, cores, level, len(cl.OPPs)-1, false)
				if !ok {
					continue
				}
				if !found || c.dynPowMW < best.dynPowMW {
					best = c
					found = true
				}
			}
		}
	}
	return best, found
}
