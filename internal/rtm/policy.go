package rtm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// This file is the pluggable policy layer extracted from the runtime
// manager. The paper frames trade-off management — which dynamic-DNN
// level, DVFS point and core allocation each application gets — as a
// *policy* question with interchangeable strategies (heuristic or
// learned). A Policy is exactly that strategy: a pure planning function
// over a read-only View of the system. The Manager remains the actuation
// shell: it builds the View, asks the Policy for a plan, and drives the
// knob layer to realise it.

// View is the read-only snapshot a policy plans over. The runtime state
// in it — Apps, Clusters, Reqs — is value copies rebuilt per plan, so a
// policy that scribbles on them corrupts only its own input, never
// manager or engine state. Platform (and the profile level tables inside
// each AppInfo) is shared static configuration: neither the engine nor
// the manager ever mutates it, and policies must honour the same
// read-only contract — it is not defensively copied.
type View struct {
	// NowS is the simulation clock at planning time.
	NowS float64
	// AmbientC / TempC / ThrottleC describe the thermal situation.
	AmbientC  float64
	TempC     float64
	ThrottleC float64
	// MarginC is the planning margin below the throttle point the manager
	// currently demands (base margin plus accumulated thermal pressure).
	MarginC float64
	// DynBudgetMW is the sustained platform power budget, in mW, derived
	// from the RC thermal model at ThrottleC − MarginC. It includes static
	// (idle) power: planners must subtract idle and co-runner power before
	// spending it on DNN placements (newPlanState does this).
	DynBudgetMW float64
	// Platform is the hardware description (clusters, OPP ladders, thermal
	// parameters). Treat as read-only.
	Platform *hw.Platform
	// Apps is the observable state of every app, in engine creation order.
	Apps []sim.AppInfo
	// Clusters is the observable state of every cluster, in platform order.
	Clusters []sim.ClusterInfo
	// Reqs holds the resolved requirement of every DNN app (defaults
	// applied: a zero MaxLatencyS becomes the app's frame period).
	Reqs map[string]Requirement
}

// Req returns the requirement for an app with defaults applied, tolerating
// hand-built Views whose Reqs map is sparse or unresolved.
func (v *View) Req(a sim.AppInfo) Requirement {
	r := v.Reqs[a.Name]
	if r.MaxLatencyS == 0 {
		r.MaxLatencyS = a.PeriodS
	}
	return r
}

// ClusterOnline reports whether the cluster at platform index ci is
// available. Manager-built views carry one ClusterInfo per platform
// cluster in order; sparse hand-built views (fewer Clusters than platform
// clusters) default to online, matching the pre-fault behaviour.
func (v *View) ClusterOnline(ci int) bool {
	if ci < 0 || ci >= len(v.Clusters) {
		return true
	}
	return v.Clusters[ci].Online
}

// Clone deep-copies the view's slices and map (one level: profile level
// tables inside AppInfo are shared, as is the Platform description). It is
// what Manager.LastView returns, so callers can inspect the last planning
// input without aliasing manager state.
func (v View) Clone() View {
	var c View
	v.CloneInto(&c)
	return c
}

// CloneInto rebuilds dst as a clone of v — the same one-level deep copy as
// Clone, but into dst's existing slices and map so a caller replanning
// every tick (the Manager) clones without allocating once the buffers have
// grown to the working-set size.
//
//detlint:hotpath
func (v View) CloneInto(dst *View) {
	apps, clusters, reqs := dst.Apps[:0], dst.Clusters[:0], dst.Reqs
	*dst = v
	dst.Apps = append(apps, v.Apps...)
	dst.Clusters = append(clusters, v.Clusters...)
	if reqs == nil {
		reqs = make(map[string]Requirement, len(v.Reqs))
	}
	clear(reqs)
	//detlint:ordered map-to-map copy; per-key writes are order-independent
	for k, r := range v.Reqs {
		reqs[k] = r
	}
	dst.Reqs = reqs
}

// Policy maps a View to one Assignment per running DNN app. Plan must be
// deterministic (same View, same plan) and must not retain or mutate the
// View; the fleet harness depends on both to keep sweeps reproducible.
// (The Manager hands Plan a view whose buffers it reuses across replans —
// a retained View would observe the next tick's state, which is exactly
// why retention is outside the contract.)
type Policy interface {
	// Name is the registry key the policy is addressed by (e.g. in
	// fleetsim -policies); stable and lowercase by convention.
	Name() string
	// Plan computes assignments for every running DNN in the view.
	Plan(v View) []Assignment
}

// DefaultPolicy is the policy NewManager installs and the name the empty
// string resolves to: the paper's heuristic manager.
const DefaultPolicy = "heuristic"

var (
	policyMu        sync.RWMutex
	policyFactories = map[string]func() Policy{}
	paramFactories  = map[string]func(arg string) (Policy, error){}
)

// Register adds a policy factory under its name. New strategies are one
// file: implement Policy, Register it from an init function, and every
// layer above — manager, fleet sweeps, fleetsim -policies, the facade —
// can address it by name. Register panics on a duplicate or empty name
// (a programming error, caught at init time).
func Register(name string, factory func() Policy) {
	if name == "" || factory == nil {
		panic("rtm: Register requires a name and a factory")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyFactories[name]; dup {
		panic(fmt.Sprintf("rtm: policy %q registered twice", name))
	}
	policyFactories[name] = factory
}

// RegisterParam adds a parameterised policy family under a prefix: the
// registry name "<prefix>:<arg>" resolves by calling factory(arg). This is
// how strategies with per-instance configuration — a trained table file,
// say — ride the same name-based plumbing as the built-ins: fleet sweeps,
// shard validation and the CLIs all address policies by string, and a
// parameterised name stays a plain string. The factory may fail (a missing
// or corrupt file), which is why it errors where Register's factories
// cannot. Panics on a duplicate or empty prefix, or one containing the
// ':' separator.
func RegisterParam(prefix string, factory func(arg string) (Policy, error)) {
	if prefix == "" || factory == nil {
		panic("rtm: RegisterParam requires a prefix and a factory")
	}
	if strings.Contains(prefix, ":") {
		panic(fmt.Sprintf("rtm: RegisterParam prefix %q must not contain ':'", prefix))
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := paramFactories[prefix]; dup {
		panic(fmt.Sprintf("rtm: parameterised policy %q registered twice", prefix))
	}
	paramFactories[prefix] = factory
}

// Policies lists all registered policy names, sorted.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPolicy instantiates a registered policy by name; "" resolves to
// DefaultPolicy, and "<prefix>:<arg>" resolves through the parameterised
// families added with RegisterParam (e.g. "learned:table.json" loads a
// trained selection table). Unknown names error with the list of valid
// ones, so a typo in a sweep spec fails loudly before any simulation runs.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	policyMu.RLock()
	factory := policyFactories[name]
	var param func(string) (Policy, error)
	if factory == nil {
		if prefix, arg, ok := strings.Cut(name, ":"); ok {
			if param = paramFactories[prefix]; param != nil {
				policyMu.RUnlock()
				p, err := param(arg)
				if err != nil {
					return nil, fmt.Errorf("rtm: policy %q: %w", name, err)
				}
				return p, nil
			}
		}
	}
	policyMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("rtm: unknown policy %q (registered: %v; parameterised: %v)",
			name, Policies(), ParamPolicies())
	}
	return factory(), nil
}

// ParamPolicies lists the registered parameterised-policy prefixes in
// their addressable "<prefix>:<arg>" form, sorted.
func ParamPolicies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(paramFactories))
	//detlint:ordered prefixes are decorated while collected, then sorted below
	for prefix := range paramFactories {
		out = append(out, prefix+":<arg>")
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("heuristic", func() Policy { return heuristicPolicy{} })
	Register("maxaccuracy", func() Policy { return maxAccuracyPolicy{} })
	Register("minenergy", func() Policy { return minEnergyPolicy{} })
}

// ---- Shared planning machinery ----
//
// The pieces below are the constraint bookkeeping every greedy policy
// shares: the resource ledger, candidate evaluation, OPP/core option
// enumeration, and commitment. Policies differ in which candidates they
// enumerate and how they rank them.
//
// Everything here plans out of a planScratch: the ledger and every
// intermediate slice reset in place instead of reallocating, because a
// fleet sweep replans thousands of times per simulated scenario and the
// per-plan maps this replaced were the planning hot path's dominant
// allocation.

// candidate is one evaluated operating point during planning.
type candidate struct {
	placement sim.Placement
	ci        int // platform cluster index of placement.Cluster
	level     int
	oppIdx    int
	latencyS  float64
	duty      float64
	dynPowMW  float64
	accuracy  float64
	memBytes  int64
}

// planState is the resource ledger consumed while assigning apps. Entries
// are indexed by platform cluster position (see clusterIndex), not name:
// index-addressed slices reset in place where name-keyed maps reallocated
// per plan.
type planState struct {
	clusters  []*hw.Cluster // v.Platform.Clusters, the index space
	online    []bool
	freeCores []int
	freeDuty  []float64
	freeMem   []int64
	oppNeed   []int
	dynBudget float64 // remaining average dynamic power, mW
}

// clusterIndex maps a cluster name to its platform position (-1 when
// unknown). Platforms carry a handful of clusters, so a linear scan beats
// any allocation-bearing index structure.
func (st *planState) clusterIndex(name string) int {
	for i, cl := range st.clusters {
		if cl.Name == name {
			return i
		}
	}
	return -1
}

// reuse returns s with length n and zeroed contents, keeping the backing
// array whenever it is large enough.
func reuse[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// newPlanState builds a fresh ledger from a view (tests and one-shot
// callers); policies running hot go through planState.init on a scratch
// ledger instead.
func newPlanState(v *View) *planState {
	st := &planState{}
	st.init(v)
	return st
}

// init (re)builds the ledger from a view: the thermal power budget less
// every cluster's idle power and the (uncontrollable) power of non-DNN
// co-runners, plus free cores, accelerator duty and accelerator memory.
// Iteration follows platform cluster order, not map order: the budget is a
// float accumulation, and a run-dependent summation order could flip a
// marginal feasibility decision between identical runs.
//
//detlint:hotpath
func (st *planState) init(v *View) {
	cls := v.Platform.Clusters
	st.clusters = cls
	st.online = reuse(st.online, len(cls))
	st.freeCores = reuse(st.freeCores, len(cls))
	st.freeDuty = reuse(st.freeDuty, len(cls))
	st.freeMem = reuse(st.freeMem, len(cls))
	st.oppNeed = reuse(st.oppNeed, len(cls))
	st.dynBudget = v.DynBudgetMW
	for ci, cl := range cls {
		st.online[ci] = v.ClusterOnline(ci)
		if !st.online[ci] {
			// Dead silicon: no allocatable resources (coreOptions then
			// returns empty for every policy) and no idle draw to charge.
			continue
		}
		st.dynBudget -= cl.IdlePowerMW()
		if cl.Type.IsAccelerator() {
			st.freeDuty[ci] = 1
			st.freeMem[ci] = cl.MemBytes
		} else {
			st.freeCores[ci] = cl.Cores
		}
	}
	// Non-DNN apps consume resources and power at the OPP they will be
	// pinned to: max for render clusters, min otherwise. Per cluster, apps
	// are visited in view (engine creation) order — the same accumulation
	// order as the map-grouped implementation this replaces.
	for ci, cl := range cls {
		if !st.online[ci] {
			continue // co-runners on a dead cluster run nothing and draw nothing
		}
		resident, render := false, false
		for i := range v.Apps {
			a := &v.Apps[i]
			if !a.Running || a.Kind == sim.KindDNN || a.Placement.Cluster != cl.Name {
				continue
			}
			resident = true
			if a.Kind == sim.KindRender {
				render = true
			}
		}
		if !resident {
			continue
		}
		opp := cl.MinOPP()
		if render {
			opp = cl.MaxOPP()
			st.oppNeed[ci] = len(cl.OPPs) - 1
		}
		for i := range v.Apps {
			a := &v.Apps[i]
			if !a.Running || a.Kind == sim.KindDNN || a.Placement.Cluster != cl.Name {
				continue
			}
			dyn := dynPowerMW(cl, opp, clApplyCores(cl, a.Placement.Cores), a.Util)
			st.dynBudget -= dyn
			if cl.Type.IsAccelerator() {
				st.freeDuty[ci] -= a.Util
			} else {
				st.freeCores[ci] -= a.Placement.Cores
			}
		}
	}
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}
}

// planScratch owns every buffer one planning pass needs — the ledger, the
// sorted DNN worklist, option/level enumeration buffers and the plan under
// construction. The Manager keeps one per instance so its replan loop is
// allocation-free; the public Plan entry points borrow one from a pool.
type planScratch struct {
	st     planState
	dnns   []sim.AppInfo
	opts   []int
	levels []int
	plan   []Assignment
}

// scratchPool backs the public Plan entry points, which must hand back a
// caller-owned slice and so cannot expose pooled memory directly.
var scratchPool = sync.Pool{New: func() any { return new(planScratch) }}

// scratchPlanner is the package-internal seam the Manager prefers: a
// policy that can plan into caller-owned scratch buffers, returning a
// slice that aliases sc.plan. All built-in policies implement it; external
// policies fall back to the public Plan contract.
type scratchPlanner interface {
	planInto(v *View, sc *planScratch) []Assignment
}

// assignFunc is one policy's per-app planning step over the shared ledger.
type assignFunc func(v *View, st *planState, sc *planScratch, a sim.AppInfo) Assignment

// planWith runs a policy's assign step over the plannable DNNs in priority
// order, building the plan in sc.plan. The returned slice aliases sc.plan
// — callers that outlive the scratch must copy.
//
//detlint:hotpath
func planWith(v *View, sc *planScratch, assign assignFunc) []Assignment {
	sc.st.init(v)
	plan := sc.plan[:0]
	for _, a := range sc.plannableDNNs(v) {
		plan = append(plan, assign(v, &sc.st, sc, a))
	}
	sc.plan = plan
	return plan
}

// pooledPlan is the public-Plan path: borrow a scratch, plan, publish a
// caller-owned copy.
func pooledPlan(v *View, assign assignFunc) []Assignment {
	sc := scratchPool.Get().(*planScratch)
	defer scratchPool.Put(sc)
	return append([]Assignment(nil), planWith(v, sc, assign)...)
}

// plannableDNNs rebuilds sc.dnns with the running DNN apps in planning
// order: priority descending, then latency budget ascending, stable over
// engine order. The insertion sort is stable and comparison-compatible
// with the sort.SliceStable it replaces, so the order — and therefore
// every downstream planning decision — is identical.
//
//detlint:hotpath
func (sc *planScratch) plannableDNNs(v *View) []sim.AppInfo {
	dnns := sc.dnns[:0]
	for _, a := range v.Apps {
		if a.Running && a.Kind == sim.KindDNN {
			dnns = append(dnns, a)
		}
	}
	for i := 1; i < len(dnns); i++ {
		for j := i; j > 0 && dnnBefore(v, dnns[j], dnns[j-1]); j-- {
			dnns[j], dnns[j-1] = dnns[j-1], dnns[j]
		}
	}
	sc.dnns = dnns
	return dnns
}

// dnnBefore is the planning order: priority descending, then latency
// budget ascending.
func dnnBefore(v *View, a, b sim.AppInfo) bool {
	ra, rb := v.Req(a), v.Req(b)
	if ra.Priority != rb.Priority {
		return ra.Priority > rb.Priority
	}
	return ra.MaxLatencyS < rb.MaxLatencyS
}

func clApplyCores(cl *hw.Cluster, cores int) int {
	if cl.Type.IsAccelerator() {
		return cl.Cores
	}
	return cores
}

// dynPowerMW is the average dynamic (above-static) power of n cores at the
// given utilisation.
func dynPowerMW(cl *hw.Cluster, opp hw.OPP, n int, util float64) float64 {
	return cl.BusyPowerMW(opp, n, util) - cl.IdlePowerMW()
}

// coreOptions lists allocatable core counts on cluster index ci given the
// ledger, largest first (so a tie on the objective keeps the bigger
// allocation). Options are appended into buf, which is reset and reused —
// callers pass a scratch buffer and must consume the result before the
// next call with the same buffer.
//
//detlint:hotpath
func coreOptions(cl *hw.Cluster, st *planState, ci int, buf []int) []int {
	buf = buf[:0]
	if cl.Type.IsAccelerator() {
		if st.freeDuty[ci] <= 0 {
			return buf
		}
		return append(buf, cl.Cores)
	}
	free := st.freeCores[ci]
	for n := free; n >= 1; n-- {
		buf = append(buf, n)
	}
	return buf
}

// chooseOPP returns the lowest OPP index >= floor (the cluster's committed
// DVFS floor) meeting the latency budget — pacing beats race-to-idle under
// a CV²f power model. ok is false when even the maximum OPP misses.
func chooseOPP(cl *hw.Cluster, floor, cores int, macs int64, budgetS float64) (int, bool) {
	for i := floor; i < len(cl.OPPs); i++ {
		if perf.InferenceLatencyS(cl, cl.OPPs[i], cores, macs) <= budgetS {
			return i, true
		}
	}
	return 0, false
}

// evalCandidate checks one (cluster, cores, level, OPP) point against the
// ledger — accelerator memory, latency budget (skipped in best-effort
// mode), accelerator duty and the power budget — and prices it. ci is the
// cluster's ledger index. ok is false when any constraint fails.
func evalCandidate(st *planState, a sim.AppInfo, req Requirement, cl *hw.Cluster, ci, cores, level, oppIdx int, bestEffort bool) (candidate, bool) {
	spec := a.Profile.Level(level)
	var memNeed int64
	if cl.MemBytes > 0 && a.ModelBytes > 0 {
		memNeed = a.ModelBytes * int64(level) / int64(a.Profile.MaxLevel())
		if memNeed > st.freeMem[ci] {
			return candidate{}, false
		}
	}
	opp := cl.OPPs[oppIdx]
	lat := perf.InferenceLatencyS(cl, opp, cores, spec.MACs)
	duty := lat / a.PeriodS
	if duty > 1 {
		duty = 1
	}
	if !bestEffort {
		if lat > req.MaxLatencyS {
			return candidate{}, false
		}
		if cl.Type.IsAccelerator() && duty > st.freeDuty[ci]+1e-9 {
			return candidate{}, false
		}
	}
	dyn := dynPowerMW(cl, opp, cores, 1) * duty
	if dyn > st.dynBudget+1e-9 {
		return candidate{}, false
	}
	return candidate{
		placement: sim.Placement{Cluster: cl.Name, Cores: cores},
		ci:        ci,
		level:     level,
		oppIdx:    oppIdx,
		latencyS:  lat,
		duty:      duty,
		dynPowMW:  dyn,
		accuracy:  spec.Accuracy,
		memBytes:  memNeed,
	}, true
}

// commit consumes ledger resources for the chosen candidate and converts
// it into an Assignment.
//
//detlint:hotpath
func (st *planState) commit(a sim.AppInfo, c candidate, pass int) Assignment {
	cl := st.clusters[c.ci]
	if c.duty > 0 && cl.Type.IsAccelerator() {
		st.freeDuty[c.ci] -= c.duty
	}
	if !cl.Type.IsAccelerator() {
		st.freeCores[c.ci] -= c.placement.Cores
	}
	if c.memBytes > 0 {
		st.freeMem[c.ci] -= c.memBytes
	}
	st.dynBudget -= c.dynPowMW
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}
	if c.oppIdx > st.oppNeed[c.ci] {
		st.oppNeed[c.ci] = c.oppIdx
	}
	return Assignment{
		App:       a.Name,
		Placement: c.placement,
		Level:     c.level,
		OPPIndex:  c.oppIdx,
		LatencyS:  c.latencyS,
		DynPowMW:  c.dynPowMW,
		Accuracy:  c.accuracy,
		Pass:      pass,
	}
}

// park is the nothing-fits fallback every policy shares: stay at the
// current placement, minimum level, minimum OPP, and let best effort ride.
// When the current placement is on an offline cluster, staying put would
// leave the app unhosted, so park diverts to the degraded pin: lowest
// level on the least-loaded online cluster that can still take it. Only
// when no online cluster can host the app does it stay on the dead one —
// the retry/repair triggers in the Manager pick it up from there.
func park(v *View, st *planState, a sim.AppInfo) Assignment {
	if ci := st.clusterIndex(a.Placement.Cluster); ci >= 0 && !st.online[ci] {
		if alt := degradedPin(st, a); alt >= 0 {
			cl := st.clusters[alt]
			cores := clApplyCores(cl, 1)
			c := candidate{
				placement: sim.Placement{Cluster: cl.Name, Cores: cores},
				ci:        alt,
				level:     1,
				oppIdx:    0,
				latencyS:  perf.InferenceLatencyS(cl, cl.MinOPP(), cores, a.Profile.Level(1).MACs),
				accuracy:  a.Profile.Level(1).Accuracy,
			}
			if cl.MemBytes > 0 && a.ModelBytes > 0 {
				c.memBytes = a.ModelBytes / int64(a.Profile.MaxLevel())
			}
			return st.commit(a, c, 3)
		}
	}
	cl := v.Platform.Cluster(a.Placement.Cluster)
	c := candidate{
		placement: a.Placement,
		ci:        st.clusterIndex(a.Placement.Cluster),
		level:     1,
		oppIdx:    0,
		latencyS:  perf.InferenceLatencyS(cl, cl.MinOPP(), clApplyCores(cl, a.Placement.Cores), a.Profile.Level(1).MACs),
		accuracy:  a.Profile.Level(1).Accuracy,
	}
	return st.commit(a, c, 3)
}

// degradedPin picks the ledger index of the least-loaded online cluster
// able to host a at its lowest level, or -1 when none can. CPUs must have
// a free core and memory-capped accelerators must fit the level-1 model —
// both hard actuation constraints — but accelerator duty may oversubscribe:
// in degraded mode a slow frame beats no frame. Load is the consumed
// fraction of the ledger; ties resolve in platform order.
func degradedPin(st *planState, a sim.AppInfo) int {
	best, bestLoad := -1, 0.0
	for ci, cl := range st.clusters {
		if !st.online[ci] {
			continue
		}
		var load float64
		if cl.Type.IsAccelerator() {
			if cl.MemBytes > 0 && a.ModelBytes > 0 &&
				a.ModelBytes/int64(a.Profile.MaxLevel()) > st.freeMem[ci] {
				continue
			}
			load = 1 - st.freeDuty[ci]
		} else {
			if st.freeCores[ci] < 1 {
				continue
			}
			load = 1 - float64(st.freeCores[ci])/float64(cl.Cores)
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = ci, load
		}
	}
	return best
}

// descendingLevels fills buf with [MaxLevel .. 1] for a profile, reusing
// the buffer's backing array.
func descendingLevels(a sim.AppInfo, buf []int) []int {
	buf = buf[:0]
	for l := a.Profile.MaxLevel(); l >= 1; l-- {
		buf = append(buf, l)
	}
	return buf
}

// minLevelMeeting returns the lowest level whose accuracy meets the floor
// (the highest level when none does).
func minLevelMeeting(a sim.AppInfo, minAccuracy float64) int {
	minLevel := 1
	for l := 1; l <= a.Profile.MaxLevel(); l++ {
		minLevel = l
		if a.Profile.Level(l).Accuracy >= minAccuracy {
			break
		}
	}
	return minLevel
}
