package rtm

import (
	"fmt"
	"sort"
	"sync"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// This file is the pluggable policy layer extracted from the runtime
// manager. The paper frames trade-off management — which dynamic-DNN
// level, DVFS point and core allocation each application gets — as a
// *policy* question with interchangeable strategies (heuristic or
// learned). A Policy is exactly that strategy: a pure planning function
// over a read-only View of the system. The Manager remains the actuation
// shell: it builds the View, asks the Policy for a plan, and drives the
// knob layer to realise it.

// View is the read-only snapshot a policy plans over. The runtime state
// in it — Apps, Clusters, Reqs — is value copies rebuilt per plan, so a
// policy that scribbles on them corrupts only its own input, never
// manager or engine state. Platform (and the profile level tables inside
// each AppInfo) is shared static configuration: neither the engine nor
// the manager ever mutates it, and policies must honour the same
// read-only contract — it is not defensively copied.
type View struct {
	// NowS is the simulation clock at planning time.
	NowS float64
	// AmbientC / TempC / ThrottleC describe the thermal situation.
	AmbientC  float64
	TempC     float64
	ThrottleC float64
	// MarginC is the planning margin below the throttle point the manager
	// currently demands (base margin plus accumulated thermal pressure).
	MarginC float64
	// DynBudgetMW is the sustained platform power budget, in mW, derived
	// from the RC thermal model at ThrottleC − MarginC. It includes static
	// (idle) power: planners must subtract idle and co-runner power before
	// spending it on DNN placements (newPlanState does this).
	DynBudgetMW float64
	// Platform is the hardware description (clusters, OPP ladders, thermal
	// parameters). Treat as read-only.
	Platform *hw.Platform
	// Apps is the observable state of every app, in engine creation order.
	Apps []sim.AppInfo
	// Clusters is the observable state of every cluster, in platform order.
	Clusters []sim.ClusterInfo
	// Reqs holds the resolved requirement of every DNN app (defaults
	// applied: a zero MaxLatencyS becomes the app's frame period).
	Reqs map[string]Requirement
}

// Req returns the requirement for an app with defaults applied, tolerating
// hand-built Views whose Reqs map is sparse or unresolved.
func (v *View) Req(a sim.AppInfo) Requirement {
	r := v.Reqs[a.Name]
	if r.MaxLatencyS == 0 {
		r.MaxLatencyS = a.PeriodS
	}
	return r
}

// Clone deep-copies the view's slices and map (one level: profile level
// tables inside AppInfo are shared, as is the Platform description). It is
// what Manager.LastView returns, so callers can inspect the last planning
// input without aliasing manager state.
func (v View) Clone() View {
	c := v
	c.Apps = append([]sim.AppInfo(nil), v.Apps...)
	c.Clusters = append([]sim.ClusterInfo(nil), v.Clusters...)
	c.Reqs = make(map[string]Requirement, len(v.Reqs))
	for k, r := range v.Reqs {
		c.Reqs[k] = r
	}
	return c
}

// Policy maps a View to one Assignment per running DNN app. Plan must be
// deterministic (same View, same plan) and must not retain or mutate the
// View; the fleet harness depends on both to keep sweeps reproducible.
type Policy interface {
	// Name is the registry key the policy is addressed by (e.g. in
	// fleetsim -policies); stable and lowercase by convention.
	Name() string
	// Plan computes assignments for every running DNN in the view.
	Plan(v View) []Assignment
}

// DefaultPolicy is the policy NewManager installs and the name the empty
// string resolves to: the paper's heuristic manager.
const DefaultPolicy = "heuristic"

var (
	policyMu        sync.RWMutex
	policyFactories = map[string]func() Policy{}
)

// Register adds a policy factory under its name. New strategies are one
// file: implement Policy, Register it from an init function, and every
// layer above — manager, fleet sweeps, fleetsim -policies, the facade —
// can address it by name. Register panics on a duplicate or empty name
// (a programming error, caught at init time).
func Register(name string, factory func() Policy) {
	if name == "" || factory == nil {
		panic("rtm: Register requires a name and a factory")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyFactories[name]; dup {
		panic(fmt.Sprintf("rtm: policy %q registered twice", name))
	}
	policyFactories[name] = factory
}

// Policies lists all registered policy names, sorted.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPolicy instantiates a registered policy by name; "" resolves to
// DefaultPolicy. Unknown names error with the list of valid ones, so a
// typo in a sweep spec fails loudly before any simulation runs.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	policyMu.RLock()
	factory := policyFactories[name]
	policyMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("rtm: unknown policy %q (registered: %v)", name, Policies())
	}
	return factory(), nil
}

func init() {
	Register("heuristic", func() Policy { return heuristicPolicy{} })
	Register("maxaccuracy", func() Policy { return maxAccuracyPolicy{} })
	Register("minenergy", func() Policy { return minEnergyPolicy{} })
}

// ---- Shared planning machinery ----
//
// The pieces below are the constraint bookkeeping every greedy policy
// shares: the resource ledger, candidate evaluation, OPP/core option
// enumeration, and commitment. Policies differ in which candidates they
// enumerate and how they rank them.

// candidate is one evaluated operating point during planning.
type candidate struct {
	placement sim.Placement
	level     int
	oppIdx    int
	latencyS  float64
	duty      float64
	dynPowMW  float64
	accuracy  float64
	memBytes  int64
}

// planState is the resource ledger consumed while assigning apps.
type planState struct {
	freeCores map[string]int
	freeDuty  map[string]float64
	freeMem   map[string]int64
	oppNeed   map[string]int
	dynBudget float64 // remaining average dynamic power, mW
}

// newPlanState builds the ledger from a view: the thermal power budget
// less every cluster's idle power and the (uncontrollable) power of
// non-DNN co-runners, plus free cores, accelerator duty and accelerator
// memory. Iteration follows platform cluster order, not map order: the
// budget is a float accumulation, and a run-dependent summation order
// could flip a marginal feasibility decision between identical runs.
func newPlanState(v *View) *planState {
	st := &planState{
		freeCores: map[string]int{},
		freeDuty:  map[string]float64{},
		freeMem:   map[string]int64{},
		oppNeed:   map[string]int{},
	}
	st.dynBudget = v.DynBudgetMW
	for _, cl := range v.Platform.Clusters {
		st.dynBudget -= cl.IdlePowerMW()
		if cl.Type.IsAccelerator() {
			st.freeDuty[cl.Name] = 1
			st.freeMem[cl.Name] = cl.MemBytes
		} else {
			st.freeCores[cl.Name] = cl.Cores
		}
	}
	// Non-DNN apps consume resources and power at the OPP they will be
	// pinned to: max for render clusters, min otherwise.
	others := coRunners(v)
	for _, cl := range v.Platform.Clusters {
		residents := others[cl.Name]
		if len(residents) == 0 {
			continue
		}
		opp := cl.MinOPP()
		if hasRender(residents) {
			opp = cl.MaxOPP()
			st.oppNeed[cl.Name] = len(cl.OPPs) - 1
		}
		for _, a := range residents {
			dyn := dynPowerMW(cl, opp, clApplyCores(cl, a.Placement.Cores), a.Util)
			st.dynBudget -= dyn
			if cl.Type.IsAccelerator() {
				st.freeDuty[cl.Name] -= a.Util
			} else {
				st.freeCores[cl.Name] -= a.Placement.Cores
			}
		}
	}
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}
	return st
}

// coRunners groups running non-DNN apps by cluster, in app order.
func coRunners(v *View) map[string][]sim.AppInfo {
	others := map[string][]sim.AppInfo{}
	for _, a := range v.Apps {
		if !a.Running || a.Kind == sim.KindDNN {
			continue
		}
		others[a.Placement.Cluster] = append(others[a.Placement.Cluster], a)
	}
	return others
}

// plannableDNNs returns the running DNN apps in planning order: priority
// descending, then latency budget ascending (stable over engine order).
func plannableDNNs(v *View) []sim.AppInfo {
	var dnns []sim.AppInfo
	for _, a := range v.Apps {
		if a.Running && a.Kind == sim.KindDNN {
			dnns = append(dnns, a)
		}
	}
	sort.SliceStable(dnns, func(i, j int) bool {
		ri, rj := v.Req(dnns[i]), v.Req(dnns[j])
		if ri.Priority != rj.Priority {
			return ri.Priority > rj.Priority
		}
		return ri.MaxLatencyS < rj.MaxLatencyS
	})
	return dnns
}

func hasRender(apps []sim.AppInfo) bool {
	for _, a := range apps {
		if a.Kind == sim.KindRender {
			return true
		}
	}
	return false
}

func clApplyCores(cl *hw.Cluster, cores int) int {
	if cl.Type.IsAccelerator() {
		return cl.Cores
	}
	return cores
}

// dynPowerMW is the average dynamic (above-static) power of n cores at the
// given utilisation.
func dynPowerMW(cl *hw.Cluster, opp hw.OPP, n int, util float64) float64 {
	return cl.BusyPowerMW(opp, n, util) - cl.IdlePowerMW()
}

// coreOptions lists allocatable core counts on a cluster given the ledger,
// largest first (so a tie on the objective keeps the bigger allocation).
func coreOptions(cl *hw.Cluster, st *planState) []int {
	if cl.Type.IsAccelerator() {
		if st.freeDuty[cl.Name] <= 0 {
			return nil
		}
		return []int{cl.Cores}
	}
	free := st.freeCores[cl.Name]
	if free < 1 {
		return nil
	}
	opts := make([]int, 0, free)
	for n := free; n >= 1; n-- {
		opts = append(opts, n)
	}
	return opts
}

// chooseOPP returns the lowest OPP index >= floor (the cluster's committed
// DVFS floor) meeting the latency budget — pacing beats race-to-idle under
// a CV²f power model. ok is false when even the maximum OPP misses.
func chooseOPP(cl *hw.Cluster, floor, cores int, macs int64, budgetS float64) (int, bool) {
	for i := floor; i < len(cl.OPPs); i++ {
		if perf.InferenceLatencyS(cl, cl.OPPs[i], cores, macs) <= budgetS {
			return i, true
		}
	}
	return 0, false
}

// evalCandidate checks one (cluster, cores, level, OPP) point against the
// ledger — accelerator memory, latency budget (skipped in best-effort
// mode), accelerator duty and the power budget — and prices it. ok is
// false when any constraint fails.
func evalCandidate(st *planState, a sim.AppInfo, req Requirement, cl *hw.Cluster, cores, level, oppIdx int, bestEffort bool) (candidate, bool) {
	spec := a.Profile.Level(level)
	var memNeed int64
	if cl.MemBytes > 0 && a.ModelBytes > 0 {
		memNeed = a.ModelBytes * int64(level) / int64(a.Profile.MaxLevel())
		if memNeed > st.freeMem[cl.Name] {
			return candidate{}, false
		}
	}
	opp := cl.OPPs[oppIdx]
	lat := perf.InferenceLatencyS(cl, opp, cores, spec.MACs)
	duty := lat / a.PeriodS
	if duty > 1 {
		duty = 1
	}
	if !bestEffort {
		if lat > req.MaxLatencyS {
			return candidate{}, false
		}
		if cl.Type.IsAccelerator() && duty > st.freeDuty[cl.Name]+1e-9 {
			return candidate{}, false
		}
	}
	dyn := dynPowerMW(cl, opp, cores, 1) * duty
	if dyn > st.dynBudget+1e-9 {
		return candidate{}, false
	}
	return candidate{
		placement: sim.Placement{Cluster: cl.Name, Cores: cores},
		level:     level,
		oppIdx:    oppIdx,
		latencyS:  lat,
		duty:      duty,
		dynPowMW:  dyn,
		accuracy:  spec.Accuracy,
		memBytes:  memNeed,
	}, true
}

// commit consumes ledger resources for the chosen candidate and converts
// it into an Assignment.
func (st *planState) commit(a sim.AppInfo, c candidate, pass int) Assignment {
	if c.duty > 0 {
		if _, accel := st.freeDuty[c.placement.Cluster]; accel {
			st.freeDuty[c.placement.Cluster] -= c.duty
		}
	}
	if _, cpu := st.freeCores[c.placement.Cluster]; cpu {
		st.freeCores[c.placement.Cluster] -= c.placement.Cores
	}
	if c.memBytes > 0 {
		st.freeMem[c.placement.Cluster] -= c.memBytes
	}
	st.dynBudget -= c.dynPowMW
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}
	if c.oppIdx > st.oppNeed[c.placement.Cluster] {
		st.oppNeed[c.placement.Cluster] = c.oppIdx
	}
	return Assignment{
		App:       a.Name,
		Placement: c.placement,
		Level:     c.level,
		OPPIndex:  c.oppIdx,
		LatencyS:  c.latencyS,
		DynPowMW:  c.dynPowMW,
		Accuracy:  c.accuracy,
		Pass:      pass,
	}
}

// park is the nothing-fits fallback every policy shares: stay at the
// current placement, minimum level, minimum OPP, and let best effort ride.
func park(v *View, st *planState, a sim.AppInfo) Assignment {
	cl := v.Platform.Cluster(a.Placement.Cluster)
	c := candidate{
		placement: a.Placement,
		level:     1,
		oppIdx:    0,
		latencyS:  perf.InferenceLatencyS(cl, cl.MinOPP(), clApplyCores(cl, a.Placement.Cores), a.Profile.Level(1).MACs),
		accuracy:  a.Profile.Level(1).Accuracy,
	}
	return st.commit(a, c, 3)
}

// descendingLevels returns [MaxLevel .. 1] for a profile.
func descendingLevels(a sim.AppInfo) []int {
	levels := make([]int, 0, a.Profile.MaxLevel())
	for l := a.Profile.MaxLevel(); l >= 1; l-- {
		levels = append(levels, l)
	}
	return levels
}

// minLevelMeeting returns the lowest level whose accuracy meets the floor
// (the highest level when none does).
func minLevelMeeting(a sim.AppInfo, minAccuracy float64) int {
	minLevel := 1
	for l := 1; l <= a.Profile.MaxLevel(); l++ {
		minLevel = l
		if a.Profile.Level(l).Accuracy >= minAccuracy {
			break
		}
	}
	return minLevel
}
