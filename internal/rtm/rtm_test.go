package rtm

import (
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

func TestRegistryKnobLifecycle(t *testing.T) {
	r := NewRegistry()
	applied := -1
	k, err := r.RegisterKnob("app.x.level", LayerApplication, 1, 4, 2,
		func(v int) error { applied = v; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if k.Value() != 2 {
		t.Fatalf("initial value %d", k.Value())
	}
	if err := k.Set(3); err != nil || applied != 3 || k.Value() != 3 {
		t.Fatalf("Set failed: err=%v applied=%d value=%d", err, applied, k.Value())
	}
	if err := k.Set(9); err == nil {
		t.Fatal("out-of-range Set must fail")
	}
	if k.Value() != 3 {
		t.Fatal("failed Set must not change value")
	}
	if _, err := r.RegisterKnob("app.x.level", LayerApplication, 1, 4, 1, nil); err == nil {
		t.Fatal("duplicate knob must be rejected")
	}
	if _, err := r.RegisterKnob("bad", LayerDevice, 3, 1, 2, nil); err == nil {
		t.Fatal("inverted range must be rejected")
	}
}

func TestRegistryMonitorsAndNames(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterMonitor("dev.temp", LayerDevice, "C", func() float64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterMonitor("app.lat", LayerApplication, "s", func() float64 { return 0.1 }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterMonitor("dev.temp", LayerDevice, "C", nil); err == nil {
		t.Fatal("duplicate monitor must be rejected")
	}
	if got := r.Monitor("dev.temp").Read(); got != 42 {
		t.Fatalf("Read = %v", got)
	}
	if names := r.MonitorNames(LayerDevice); len(names) != 1 || names[0] != "dev.temp" {
		t.Fatalf("device monitors = %v", names)
	}
	if names := r.KnobNames(""); len(names) != 0 {
		t.Fatalf("knobs = %v", names)
	}
	snap := r.Snapshot()
	if snap["dev.temp"] != 42 || snap["app.lat"] != 0.1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestGovernorDecisions(t *testing.T) {
	if got := (PerformanceGovernor{}).Decide(0, 0, 10); got != 9 {
		t.Fatalf("performance -> %d", got)
	}
	if got := (PowersaveGovernor{}).Decide(1, 9, 10); got != 0 {
		t.Fatalf("powersave -> %d", got)
	}
	g := OndemandGovernor{}
	if got := g.Decide(0.9, 3, 10); got != 9 {
		t.Fatalf("ondemand high util -> %d", got)
	}
	if got := g.Decide(0.1, 3, 10); got != 2 {
		t.Fatalf("ondemand low util -> %d", got)
	}
	if got := g.Decide(0.5, 3, 10); got != 3 {
		t.Fatalf("ondemand mid util -> %d", got)
	}
	if got := g.Decide(0.1, 0, 10); got != 0 {
		t.Fatal("ondemand must not underflow")
	}
	for _, gov := range []Governor{PerformanceGovernor{}, PowersaveGovernor{}, g} {
		if gov.Name() == "" {
			t.Fatal("governor must have a name")
		}
	}
}

func dnn(name, cluster string, cores int, periodS float64) sim.App {
	return sim.App{
		Name:       name,
		Kind:       sim.KindDNN,
		Profile:    perf.PaperReferenceProfile(),
		Level:      4,
		PeriodS:    periodS,
		ModelBytes: 350 << 10,
		Placement:  sim.Placement{Cluster: cluster, Cores: cores},
	}
}

func TestGovernorControllerRampsUpAndDown(t *testing.T) {
	plat := hw.OdroidXU3()
	ctrl := NewGovernorController(OndemandGovernor{})
	// 100% model at 4 fps: at 200 MHz latency ~1.8s → util 1 → governor
	// must ramp the A15 up; once fast, util drops and it steps back down.
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 0.25)},
		Controller: ctrl,
		TickS:      0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.OPPSwitches == 0 {
		t.Fatal("ondemand governor never changed frequency")
	}
	info, _ := e.App("d")
	if info.Completed == 0 {
		t.Fatal("no jobs completed")
	}
}

// The manager must hold a latency budget that a pure governor cannot:
// when the model is too big for the budget anywhere, it compresses it.
func TestManagerCompressesToMeetLatency(t *testing.T) {
	plat := hw.OdroidXU3()
	// 100% model cheapest latency on XU3 is ~115 ms (A15@1.8GHz); a 60 ms
	// budget forces level 2 or below (level 2 @1.8GHz ≈ 59.6 ms).
	mgr := NewManager(map[string]Requirement{
		"d": {MaxLatencyS: 0.060, Priority: 1},
	})
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 0.060)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, _ := e.App("d")
	if info.Level > 2 {
		t.Fatalf("manager left level %d; budget requires <= 2", info.Level)
	}
	if info.Completed == 0 {
		t.Fatal("no jobs completed")
	}
	missRate := float64(info.Missed+info.Dropped) / float64(info.Released)
	if missRate > 0.1 {
		t.Fatalf("miss rate %.2f too high under manager", missRate)
	}
}

// With an accuracy floor, the manager must pick the minimal level meeting
// it and the cheapest cluster that holds the latency budget.
func TestManagerRespectsAccuracyFloor(t *testing.T) {
	plat := hw.OdroidXU3()
	mgr := NewManager(map[string]Requirement{
		"d": {MinAccuracy: 0.70, Priority: 1}, // → level 4 (0.712)
	})
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 1.0)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(8); err != nil {
		t.Fatal(err)
	}
	info, _ := e.App("d")
	if info.Level != 4 {
		t.Fatalf("level %d, want 4 for 0.70 accuracy floor", info.Level)
	}
	// Energy-first: with a 1 s period the A7 can hold the budget far more
	// cheaply than the A15.
	if info.Placement.Cluster != "a7" {
		t.Fatalf("placed on %s, want a7 (cheapest feasible)", info.Placement.Cluster)
	}
}

// Reactive thermal path: plan is feasible at ambient 25, then ambient
// jumps; the die crosses the throttle point, the alarm fires, and the
// manager sheds power until the temperature recovers.
func TestManagerReactsToThermalAlarm(t *testing.T) {
	plat := hw.FlagshipSoC()
	mgr := NewManager(map[string]Requirement{
		// The accuracy floor forces a large configuration, so the planned
		// point draws real power (~2.2 W with statics) and the ambient jump
		// pushes steady-state past the 65 °C trip point.
		"d": {MaxLatencyS: 0.040, MinAccuracy: 0.70, Priority: 1},
	})
	app := dnn("d", "cpu-big", 4, 0.040)
	app.Profile = perf.UniformProfile("hot", 7_000_000, 7<<20, perf.PaperAccuracies, nil)
	app.ModelBytes = 12 << 20 // levels 3-4 exceed the 8 MiB NPU: forces CPU/GPU for high accuracy
	type ambientCtl struct{ done bool }
	ac := &ambientCtl{}
	wrapper := ctrlFuncs{
		tick: func(e *sim.Engine) {
			if !ac.done && e.Now() >= 4 {
				e.SetAmbient(50)
				ac.done = true
			}
			mgr.OnTick(e)
		},
		event: func(e *sim.Engine, ev sim.Event) { mgr.OnEvent(e, ev) },
	}
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{app},
		Controller: wrapper,
		TickS:      0.25,
		LogEvents:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	sawAlarm := false
	for _, ev := range rep.Events {
		if ev.Kind == sim.EvThermalAlarm {
			sawAlarm = true
		}
	}
	if !sawAlarm {
		t.Fatalf("no thermal alarm fired (maxT %.1f)", rep.MaxTempC)
	}
	if mgr.Pressure() == 0 && rep.OverThrottleS > 2 {
		t.Fatal("manager did not respond to thermal pressure")
	}
	// The die must not run away to the critical point.
	if rep.OverCriticalS > 0 {
		t.Fatalf("critical temperature violated for %.2fs", rep.OverCriticalS)
	}
	if rep.MaxTempC >= plat.Thermal.CriticalC {
		t.Fatalf("max temp %.1f reached critical", rep.MaxTempC)
	}
}

func TestManagerBuildsRegistry(t *testing.T) {
	plat := hw.OdroidXU3()
	mgr := NewManager(nil)
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 0.5)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	reg := mgr.Registry()
	if reg == nil {
		t.Fatal("registry not built")
	}
	wantKnobs := []string{"app.d.level", "dev.a15.opp", "dev.a7.opp"}
	got := reg.KnobNames("")
	if strings.Join(got, ",") != strings.Join(wantKnobs, ",") {
		t.Fatalf("knobs = %v, want %v", got, wantKnobs)
	}
	for _, mn := range []string{"app.d.latency", "app.d.accuracy", "dev.temperature", "dev.power"} {
		if reg.Monitor(mn) == nil {
			t.Fatalf("monitor %s missing", mn)
		}
	}
	if v := reg.Monitor("dev.power").Read(); v <= 0 {
		t.Fatalf("power monitor read %v", v)
	}
}

func TestManagerRequirementChangeTriggersReplan(t *testing.T) {
	plat := hw.OdroidXU3()
	mgr := NewManager(map[string]Requirement{
		"d": {MinAccuracy: 0.70, Priority: 1},
	})
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 1.0)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	before, _ := e.App("d")
	if before.Level != 4 {
		t.Fatalf("precondition: level %d", before.Level)
	}
	plansBefore := mgr.Plans()
	mgr.SetRequirement("d", Requirement{MinAccuracy: 0.55, Priority: 1})
	mgr.Replan(e)
	if mgr.Plans() != plansBefore+1 {
		t.Fatal("explicit Replan did not run")
	}
	after := mgr.LastPlan()
	if len(after) != 1 || after[0].Level != 1 {
		t.Fatalf("after relaxation plan = %+v, want level 1 (0.56 >= 0.55)", after)
	}
}

func TestManagerPlanRecorded(t *testing.T) {
	plat := hw.OdroidXU3()
	mgr := NewManager(nil)
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{dnn("d", "a15", 4, 0.5)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	plan := mgr.LastPlan()
	if len(plan) != 1 {
		t.Fatalf("plan size %d", len(plan))
	}
	if plan[0].App != "d" || plan[0].String() == "" {
		t.Fatalf("plan = %+v", plan[0])
	}
	if mgr.Plans() < 1 {
		t.Fatal("plan counter not incremented")
	}
}

type ctrlFuncs struct {
	tick  func(*sim.Engine)
	event func(*sim.Engine, sim.Event)
}

func (c ctrlFuncs) OnTick(e *sim.Engine) {
	if c.tick != nil {
		c.tick(e)
	}
}
func (c ctrlFuncs) OnEvent(e *sim.Engine, ev sim.Event) {
	if c.event != nil {
		c.event(e, ev)
	}
}
