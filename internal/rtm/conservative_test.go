package rtm

import "testing"

func TestConservativeGovernorSteps(t *testing.T) {
	g := ConservativeGovernor{}
	if got := g.Decide(0.9, 3, 10); got != 4 {
		t.Fatalf("high util -> %d, want single step up", got)
	}
	if got := g.Decide(0.1, 3, 10); got != 2 {
		t.Fatalf("low util -> %d, want single step down", got)
	}
	if got := g.Decide(0.9, 9, 10); got != 9 {
		t.Fatal("must not overflow the ladder")
	}
	if got := g.Decide(0.1, 0, 10); got != 0 {
		t.Fatal("must not underflow the ladder")
	}
	if g.Name() != "conservative" {
		t.Fatal("name")
	}
}
