// Package rtm implements the paper's runtime-management layer (Section V,
// Fig 5): a PRiME-style three-layer architecture in which applications and
// devices expose *knobs* (adjustable parameters) and *monitors* (observable
// metrics), and a runtime manager closes the loop between application
// requirements and device constraints.
//
// Knobs implemented: the dynamic-DNN configuration level (application
// knob), task mapping and per-cluster DVFS (device knobs). Monitors:
// frame latency / miss counts / accuracy and confidence (application),
// temperature and power (device).
package rtm

import (
	"fmt"
	"sort"
)

// Layer identifies which Fig 5 layer an interface element belongs to.
type Layer string

// Fig 5 layers.
const (
	LayerApplication Layer = "application"
	LayerDevice      Layer = "device"
)

// Knob is an adjustable integer-valued parameter with an inclusive range.
// Examples: a DNN's configuration level (1..G), a cluster's OPP index
// (0..n-1), a task's core allocation.
type Knob struct {
	Name  string
	Layer Layer
	Min   int
	Max   int
	value int
	apply func(int) error
}

// Value returns the knob's current setting.
func (k *Knob) Value() int { return k.value }

// Set actuates the knob. Out-of-range values are rejected before the
// underlying actuator runs.
func (k *Knob) Set(v int) error {
	if v < k.Min || v > k.Max {
		return fmt.Errorf("rtm: knob %s value %d outside [%d,%d]", k.Name, v, k.Min, k.Max)
	}
	if k.apply != nil {
		if err := k.apply(v); err != nil {
			return err
		}
	}
	k.value = v
	return nil
}

// Monitor is a read-only metric source. Examples: frame latency, top-1
// accuracy of the active configuration, die temperature, platform power.
type Monitor struct {
	Name  string
	Layer Layer
	Unit  string
	read  func() float64
}

// Read samples the monitor.
func (m *Monitor) Read() float64 {
	if m.read == nil {
		return 0
	}
	return m.read()
}

// Registry is the knob/monitor namespace the runtime manager operates on —
// the "interface between available hardware resources, software
// requirements and user experience" the paper argues must be managed.
type Registry struct {
	knobs    map[string]*Knob
	monitors map[string]*Monitor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{knobs: map[string]*Knob{}, monitors: map[string]*Monitor{}}
}

// RegisterKnob adds a knob; the initial value must lie in [min,max].
func (r *Registry) RegisterKnob(name string, layer Layer, min, max, initial int, apply func(int) error) (*Knob, error) {
	if _, dup := r.knobs[name]; dup {
		return nil, fmt.Errorf("rtm: duplicate knob %q", name)
	}
	if min > max || initial < min || initial > max {
		return nil, fmt.Errorf("rtm: knob %q range [%d,%d] initial %d invalid", name, min, max, initial)
	}
	k := &Knob{Name: name, Layer: layer, Min: min, Max: max, value: initial, apply: apply}
	r.knobs[name] = k
	return k, nil
}

// RegisterMonitor adds a monitor.
func (r *Registry) RegisterMonitor(name string, layer Layer, unit string, read func() float64) (*Monitor, error) {
	if _, dup := r.monitors[name]; dup {
		return nil, fmt.Errorf("rtm: duplicate monitor %q", name)
	}
	m := &Monitor{Name: name, Layer: layer, Unit: unit, read: read}
	r.monitors[name] = m
	return m, nil
}

// Knob returns the named knob, or nil.
func (r *Registry) Knob(name string) *Knob { return r.knobs[name] }

// Monitor returns the named monitor, or nil.
func (r *Registry) Monitor(name string) *Monitor { return r.monitors[name] }

// KnobNames returns all knob names sorted, optionally filtered by layer
// ("" = all).
func (r *Registry) KnobNames(layer Layer) []string {
	var out []string
	//detlint:ordered names are filtered while collected, then sorted below
	for n, k := range r.knobs {
		if layer == "" || k.Layer == layer {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// MonitorNames returns all monitor names sorted, optionally filtered by
// layer ("" = all).
func (r *Registry) MonitorNames(layer Layer) []string {
	var out []string
	//detlint:ordered names are filtered while collected, then sorted below
	for n, m := range r.monitors {
		if layer == "" || m.Layer == layer {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot reads every monitor once, keyed by name — one control-loop
// observation.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.monitors))
	//detlint:ordered map-to-map rebuild; per-key reads and writes are order-independent
	for n, m := range r.monitors {
		out[n] = m.Read()
	}
	return out
}
