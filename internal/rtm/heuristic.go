package rtm

import "github.com/emlrtm/emlrtm/internal/sim"

// heuristicPolicy is the paper's runtime manager strategy, extracted
// verbatim from the pre-policy Manager (the fleet golden report pins it
// byte-for-byte).
//
// Per app, in priority order:
//
//	pass 1: place the *minimal* model level whose accuracy meets the
//	        requirement, at the cheapest (average dynamic power) feasible
//	        (cluster, cores, min-OPP) point meeting the latency budget,
//	        accelerator duty, accelerator memory and the thermal power
//	        budget;
//	pass 2: if no such point exists, relax the accuracy requirement and
//	        maximise accuracy among feasible points (the paper's
//	        "dynamically compressed, trading accuracy");
//	pass 3: if still nothing, run best-effort: minimise latency subject to
//	        the power budget only (deadlines may be missed, thermal safety
//	        is preserved).
//
// DVFS pacing: within a feasible point the lowest OPP meeting the budget
// wins — pacing beats race-to-idle under a CV²f power model (contrast
// minEnergyPolicy, which races).
type heuristicPolicy struct{ epochKeyed }

// planCacheID implements cacheKeyed.
func (heuristicPolicy) planCacheID() string { return "heuristic" }

// Name implements Policy.
func (heuristicPolicy) Name() string { return "heuristic" }

// Plan implements Policy.
func (heuristicPolicy) Plan(v View) []Assignment {
	return pooledPlan(&v, heuristicAssign)
}

// planInto implements scratchPlanner: the Manager's allocation-free path.
func (heuristicPolicy) planInto(v *View, sc *planScratch) []Assignment {
	return planWith(v, sc, heuristicAssign)
}

// heuristicAssign finds the best operating point for one app given the
// ledger, and commits the resources.
func heuristicAssign(v *View, st *planState, sc *planScratch, a sim.AppInfo) Assignment {
	req := v.Req(a)
	minLevel := minLevelMeeting(a, req.MinAccuracy)

	// Pass 1: exactly the minimal level meeting the accuracy requirement.
	if a.Profile.Level(minLevel).Accuracy >= req.MinAccuracy {
		sc.levels = append(sc.levels[:0], minLevel)
		if c, ok := heuristicBest(v, st, sc, a, req, sc.levels, false); ok {
			return st.commit(a, c, 1)
		}
	}
	// Pass 2: accuracy relaxed — maximise accuracy among feasible points.
	sc.levels = descendingLevels(a, sc.levels)
	if c, ok := heuristicBest(v, st, sc, a, req, sc.levels, false); ok {
		return st.commit(a, c, 2)
	}
	// Pass 3: best effort — minimise latency subject to the power budget.
	if c, ok := heuristicBest(v, st, sc, a, req, sc.levels, true); ok {
		return st.commit(a, c, 3)
	}
	// Nothing fits at all (power budget exhausted).
	return park(v, st, a)
}

// heuristicBest enumerates feasible candidates over the level list and
// returns the winner. In best-effort mode latency/duty feasibility is
// dropped; only power, cores and memory bind, and the objective becomes
// minimum latency. levels may alias sc.levels; only sc.opts is consumed.
func heuristicBest(v *View, st *planState, sc *planScratch, a sim.AppInfo, req Requirement, levels []int, bestEffort bool) (candidate, bool) {
	var best candidate
	found := false
	better := func(c candidate) bool {
		if !found {
			return true
		}
		// Hysteresis: candidates keeping the current placement and level
		// get a 5% cost discount to avoid migration churn.
		cost := func(x candidate) float64 {
			v := x.dynPowMW
			if bestEffort {
				v = x.latencyS * 1000
			}
			if x.placement == a.Placement && x.level == a.Level {
				v *= 0.95
			}
			return v
		}
		if !bestEffort && c.accuracy != best.accuracy {
			return c.accuracy > best.accuracy
		}
		return cost(c) < cost(best)
	}
	for ci, cl := range v.Platform.Clusters {
		sc.opts = coreOptions(cl, st, ci, sc.opts)
		for _, cores := range sc.opts {
			for _, level := range levels {
				oppIdx, ok := len(cl.OPPs)-1, true
				if !bestEffort {
					oppIdx, ok = chooseOPP(cl, st.oppNeed[ci], cores, a.Profile.Level(level).MACs, req.MaxLatencyS)
				}
				if !ok {
					continue
				}
				c, ok := evalCandidate(st, a, req, cl, ci, cores, level, oppIdx, bestEffort)
				if !ok {
					continue
				}
				if better(c) {
					best = c
					found = true
				}
			}
		}
	}
	return best, found
}
