package rtm

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// Requirement is what an application demands from the runtime manager —
// the information flowing down through application monitors in Fig 5.
type Requirement struct {
	// MaxLatencyS is the per-inference latency budget; 0 means "use the
	// app's frame period".
	MaxLatencyS float64
	// MinAccuracy is the lowest acceptable top-1 accuracy (0 = any).
	MinAccuracy float64
	// Priority orders apps during planning; higher wins resources first.
	Priority int
}

// Assignment is one planned operating point for an app.
type Assignment struct {
	App       string
	Placement sim.Placement
	Level     int
	OPPIndex  int
	LatencyS  float64
	DynPowMW  float64 // average dynamic power (duty-weighted)
	Accuracy  float64
	Pass      int // 1 = requirement met, 2 = accuracy relaxed, 3 = best effort
}

// Manager is the paper's runtime resource manager: on workload arrivals,
// thermal alarms, sustained deadline misses and requirement changes it
// re-plans the (model level, mapping, DVFS) knob settings of every managed
// DNN so that application requirements are met within device constraints.
//
// The manager itself is an actuation shell. *What* to plan is delegated to
// a pluggable Policy (NewManager installs the paper's heuristic; see
// Register/Policies for alternatives): each replan builds a read-only View
// of the system, asks the policy for one Assignment per DNN, and actuates
// the plan through the knob layer.
//
// The thermal power budget the View carries is derived from the RC model:
// sustained power that keeps steady-state temperature at throttle − margin.
// Each thermal alarm raises the margin (pressure); the pressure decays once
// the die cools, restoring performance — a reactive feedback loop on top of
// the proactive plan.
type Manager struct {
	reqs map[string]Requirement

	// PressureStepC is the margin added per outstanding thermal alarm.
	PressureStepC float64
	// BaseMarginC is the planning margin below the throttle point.
	BaseMarginC float64
	// MissReplanThreshold triggers a replan after this many deadline
	// misses/frame drops since the previous plan.
	MissReplanThreshold int
	// Logf, when set, receives planning decisions.
	Logf func(format string, args ...any)

	// MissReplanBackoffS rate-limits miss-triggered replans: when the
	// workload is unschedulable, every frame misses and replanning each
	// tick would churn without changing the plan.
	MissReplanBackoffS float64

	// FaultReplanBackoffS rate-limits fault-triggered replans the same way:
	// a fault storm (several clusters failing close together) or a degraded
	// pin the engine keeps rejecting must not replan every event. The first
	// fault after a quiet period always replans immediately.
	FaultReplanBackoffS float64

	// NoPlanReuse disables both plan-reuse tiers (replan elision and the
	// plan memo cache): every Replan rebuilds the view and re-runs the
	// policy. Reuse is byte-identical by construction; this switch exists
	// so equivalence tests and the CI determinism check can prove it.
	NoPlanReuse bool

	policy       Policy
	registry     *Registry
	pressure     int
	misses       int
	pending      bool
	plans        int
	last         []Assignment
	lastView     View
	lastMissPlan float64

	// Fault-replan state: faultPending marks an open fault burst (recovery
	// latency is measured from faultAtS to the next actuated replan),
	// faultReplanWanted defers a fault/repair-triggered replan that landed
	// inside the backoff window to a later tick, and recoveries accumulates
	// the measured latencies for fleet reporting.
	faultPending      bool
	faultReplanWanted bool
	faultAtS          float64
	lastFaultPlan     float64
	recoveries        []float64
	degradedUsed      []int // scratch for applyDegradedFallback

	// Plan-reuse state: version counters folded into the elision
	// fingerprint, the fingerprint of the last actuated plan (valid only
	// while lastFPOK — i.e. the last actuation was a fixed point), the
	// memo cache and its counters, and the reused key buffers.
	reqsVer     uint64
	policyVer   uint64
	lastFP      planFingerprint
	lastFPOK    bool
	elided      int
	cacheHits   int
	cacheMisses int
	planCache   *PlanCache
	keyBuf      []byte
	platKeyBuf  []byte
	platKeyFor  *hw.Platform

	// Replan scratch: the manager replans every controller tick, so the
	// planning input (engine snapshot + view), the defensive policy copy,
	// the policy's working buffers and the actuation indexes are all
	// rebuilt in place instead of reallocated. Handed-out state stays
	// defensive — LastPlan and LastView copy on read.
	snap       sim.Snapshot
	viewReqs   map[string]Requirement
	policyView View
	scratch    planScratch
	curApps    map[string]sim.AppInfo
	renderOn   map[string]bool
	levelKnobs map[string]*Knob
	oppKnobs   map[string]*Knob
}

// NewManager builds a manager with the given per-app requirements (keyed
// by app name; apps without an entry get defaults: latency = period,
// accuracy unconstrained, priority 0) and the default heuristic policy.
func NewManager(reqs map[string]Requirement) *Manager {
	m := &Manager{
		reqs:                map[string]Requirement{},
		PressureStepC:       4,
		BaseMarginC:         0,
		MissReplanThreshold: 2,
		MissReplanBackoffS:  2,
		FaultReplanBackoffS: 0.5,
		lastFaultPlan:       math.Inf(-1),
		policy:              heuristicPolicy{},
	}
	//detlint:ordered map-to-map copy; per-key writes are order-independent
	for k, v := range reqs {
		m.reqs[k] = v
	}
	return m
}

// SetPolicy swaps the planning policy and schedules a replan so the swap
// takes effect at the next controller tick. A nil policy is ignored.
func (m *Manager) SetPolicy(p Policy) {
	if p == nil {
		return
	}
	m.policy = p
	m.policyVer++
	m.pending = true
}

// PolicyName reports which planning policy the manager is running.
func (m *Manager) PolicyName() string { return m.policy.Name() }

// SetRequirement installs or replaces an app's requirement at runtime (the
// Fig 2(d) event: "the accuracy requirement of the second DNN is reduced")
// and schedules a replan.
func (m *Manager) SetRequirement(app string, r Requirement) {
	m.reqs[app] = r
	m.reqsVer++
	m.pending = true
}

// Requirement returns the requirement for an app (with defaults applied).
func (m *Manager) Requirement(app string, periodS float64) Requirement {
	r := m.reqs[app]
	if r.MaxLatencyS == 0 {
		r.MaxLatencyS = periodS
	}
	return r
}

// Plans returns how many replans have executed.
func (m *Manager) Plans() int { return m.plans }

// PlanStats reports the manager's plan-reuse counters: total replans,
// elided replans, and memo cache hits/misses. The counters are
// observability only — they never enter simulation reports, whose bytes
// must not depend on cache state.
func (m *Manager) PlanStats() PlanStats {
	return PlanStats{Plans: m.plans, Elided: m.elided, CacheHits: m.cacheHits, CacheMisses: m.cacheMisses}
}

// SetPlanCache installs a plan memo cache, replacing the manager-owned
// one. A fleet worker shares one cache across its whole scenario stream
// this way — recurring (policy, platform, app-set, budget) states hit
// across scenario boundaries. The cache is not goroutine-safe; callers
// must not share one across concurrently running managers.
func (m *Manager) SetPlanCache(c *PlanCache) { m.planCache = c }

// LastPlan returns a copy of the most recent set of assignments.
func (m *Manager) LastPlan() []Assignment { return append([]Assignment(nil), m.last...) }

// LastView returns a copy of the view the most recent plan was computed
// over — the read-only planning input, for inspection and tests. Like
// LastPlan, the copy is defensive: callers (and policies, which receive
// the view by value at plan time) cannot reach manager or engine state
// through it.
func (m *Manager) LastView() View { return m.lastView.Clone() }

// Registry returns the knob/monitor registry built for the bound engine
// (nil before the first plan). It is an actuation surface for external
// tooling; policies never see it — they plan over the read-only View.
func (m *Manager) Registry() *Registry { return m.registry }

// Pressure returns the outstanding thermal pressure level.
func (m *Manager) Pressure() int { return m.pressure }

func (m *Manager) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

// OnTick implements sim.Controller.
func (m *Manager) OnTick(e *sim.Engine) {
	// Thermal pressure decays when the die has cooled well below the trip
	// point, restoring performance headroom.
	if m.pressure > 0 && e.Temperature() < e.ThrottleC()-6 {
		m.pressure--
		m.pending = true
	}
	if m.misses >= m.MissReplanThreshold && e.Now()-m.lastMissPlan >= m.MissReplanBackoffS {
		m.pending = true
		m.lastMissPlan = e.Now()
	}
	// Fault retry: a deferred fault/repair replan, or apps still sitting on
	// dead hardware (a degraded pin the engine rejected, or no online
	// cluster could take them), keeps replanning on the fault backoff until
	// everything is hosted or the fault burst is over.
	if (m.faultReplanWanted || e.UnhostedApps() > 0) && e.Now()-m.lastFaultPlan >= m.FaultReplanBackoffS {
		m.faultReplanWanted = false
		m.lastFaultPlan = e.Now()
		m.pending = true
	}
	if m.pending {
		m.Replan(e)
	}
}

// OnEvent implements sim.Controller.
func (m *Manager) OnEvent(e *sim.Engine, ev sim.Event) {
	switch ev.Kind {
	case sim.EvAppStart, sim.EvAppStop:
		m.Replan(e)
	case sim.EvThermalAlarm:
		m.pressure++
		m.logf("rtm: t=%.2fs thermal alarm (%s), pressure=%d", ev.TimeS, ev.Note, m.pressure)
		m.Replan(e)
	case sim.EvDeadlineMiss, sim.EvFrameDrop:
		m.misses++
	case sim.EvClusterFail, sim.EvClusterRepair:
		if ev.Kind == sim.EvClusterFail && !m.faultPending {
			m.faultPending = true
			m.faultAtS = ev.TimeS
		}
		m.logf("rtm: t=%.2fs %s %s", ev.TimeS, ev.Kind, ev.Cluster)
		if e.Now()-m.lastFaultPlan >= m.FaultReplanBackoffS {
			m.lastFaultPlan = e.Now()
			m.Replan(e)
		} else {
			m.faultReplanWanted = true
		}
	}
}

// FaultRecoveries returns the recovery latencies measured so far: for each
// fault burst, the time from the first EvClusterFail to the first
// subsequent actuated (non-elided) replan. The slice is a copy.
func (m *Manager) FaultRecoveries() []float64 {
	return append([]float64(nil), m.recoveries...)
}

// buildView snapshots the engine and the manager's thermal stance into the
// read-only planning input, rebuilding the manager's scratch snapshot and
// requirement map in place. Apps and clusters are value copies from the
// engine snapshot and the requirement map is rebuilt per view, so handing
// the view to a policy exposes no internal mutable state.
func (m *Manager) buildView(e *sim.Engine) View {
	e.SnapshotInto(&m.snap)
	plat := e.Platform()
	margin := m.BaseMarginC + float64(m.pressure)*m.PressureStepC
	capW := plat.Thermal.PowerBudgetW(m.snap.AmbientC, plat.Thermal.ThrottleC-margin)
	if m.viewReqs == nil {
		m.viewReqs = map[string]Requirement{}
	}
	clear(m.viewReqs)
	v := View{
		NowS:        m.snap.TimeS,
		AmbientC:    m.snap.AmbientC,
		TempC:       m.snap.TempC,
		ThrottleC:   m.snap.ThrottleC,
		MarginC:     margin,
		DynBudgetMW: capW * 1000,
		Platform:    plat,
		Apps:        m.snap.Apps,
		Clusters:    m.snap.Clusters,
		Reqs:        m.viewReqs,
	}
	for _, a := range m.snap.Apps {
		if a.Kind == sim.KindDNN {
			m.viewReqs[a.Name] = m.Requirement(a.Name, a.PeriodS)
		}
	}
	return v
}

// fingerprint builds the elision key for the current policy, or ok=false
// when the policy has not opted into elision (or reuse is disabled).
func (m *Manager) fingerprint(e *sim.Engine) (planFingerprint, bool) {
	if m.NoPlanReuse {
		return planFingerprint{}, false
	}
	fpr, ok := m.policy.(fingerprinted)
	if !ok {
		return planFingerprint{}, false
	}
	return planFingerprint{
		epoch:      e.PlanEpoch(),
		reqsVer:    m.reqsVer,
		policyVer:  m.policyVer,
		pressure:   m.pressure,
		baseMargin: math.Float64bits(m.BaseMarginC),
		pressStep:  math.Float64bits(m.PressureStepC),
		dyn:        fpr.dynFingerprint(e, m),
	}, true
}

// Replan recomputes and actuates assignments for every running DNN app:
// build the view, delegate planning to the policy, actuate the plan.
//
// Two reuse tiers sit in front of the policy, both byte-identical to
// planning fresh. Elision: when the planning fingerprint is unchanged
// since the last plan AND that plan actuated as a fixed point (actuation
// changed nothing, so engine state equals the plan's targets), planning
// would reproduce the same plan and actuation would no-op — skip all of
// it. The fixed-point condition is essential: a plan the engine could not
// fully realise (a failed migration, an oscillating policy) must keep
// replanning. Memoisation: otherwise, an exact canonical key over every
// View field the policy can read looks up a previous plan, skipping the
// policy invocation but still actuating. Counters (LastPlan, LastView,
// Plans, miss reset) behave identically on every path.
func (m *Manager) Replan(e *sim.Engine) {
	m.pending = false
	m.misses = 0
	m.plans++

	if m.registry == nil {
		m.buildRegistry(e)
	}

	fp, fpOK := m.fingerprint(e)
	if fpOK && m.lastFPOK && fp == m.lastFP {
		m.elided++
		return
	}

	v := m.buildView(e)
	var plan []Assignment
	hit := false
	ck, canCache := m.policy.(cacheKeyed)
	var cacheID string
	if canCache && !m.NoPlanReuse {
		cacheID = ck.planCacheID()
	}
	if cacheID != "" {
		if m.planCache == nil {
			m.planCache = NewPlanCache(DefaultPlanCacheCap)
		}
		key := m.buildPlanKey(&v, cacheID, ck)
		if cached, ok := m.planCache.get(key); ok {
			m.cacheHits++
			hit = true
			// Copy out through the scratch plan buffer: the cached entry
			// stays vandal-safe and the hot path stays allocation-free.
			m.scratch.plan = append(m.scratch.plan[:0], cached...)
			plan = m.scratch.plan
		} else {
			m.cacheMisses++
		}
	}
	if !hit {
		// The policy gets its own clone: a policy that scribbles on its
		// View's runtime state cannot corrupt the copy actuation and
		// LastView read from. Built-in policies additionally plan through
		// the manager-owned scratch buffers (the allocation-free hot
		// path); third-party policies go through the public Plan contract.
		v.CloneInto(&m.policyView)
		if sp, ok := m.policy.(scratchPlanner); ok {
			plan = sp.planInto(&m.policyView, &m.scratch)
		} else {
			plan = m.policy.Plan(m.policyView)
		}
		if cacheID != "" {
			// buildPlanKey's buffer is still valid: planning reads the
			// view but never rewrites the key scratch.
			m.planCache.put(m.keyBuf, plan)
		}
	}
	// The last-resort degradation guarantee runs after the cache put: the
	// cache stores the raw policy plan and the fallback is a pure function
	// of (view, plan), so fresh and memo-hit plans degrade identically.
	m.applyDegradedFallback(&v, plan)
	// Publish into manager-owned storage *before* any callback can run:
	// plan aliases the policy scratch and v aliases the snapshot scratch,
	// both of which the next replan rewrites in place — a Logf (or later
	// OnTick) caller reading LastPlan/LastView must never observe a stale
	// slice header over a rewritten backing array. Both copies reuse their
	// destination buffers, so the hot path stays allocation-free.
	m.last = append(m.last[:0], plan...)
	v.CloneInto(&m.lastView)
	for _, asg := range plan {
		m.logf("rtm: t=%.2fs plan %s -> %s/%d cores, level %d, opp %d (pass %d, %.1fms, %.0fmW)",
			v.NowS, asg.App, asg.Placement.Cluster, asg.Placement.Cores, asg.Level,
			asg.OPPIndex, asg.Pass, asg.LatencyS*1000, asg.DynPowMW)
	}
	m.actuate(e, v, plan)
	// An actuated plan closes the open fault burst: the policy has had its
	// say over the degraded hardware, so the recovery latency ends here.
	if m.faultPending {
		m.recoveries = append(m.recoveries, v.NowS-m.faultAtS)
		m.faultPending = false
	}
	// Arm elision for the next replan only if actuating this plan was a
	// fixed point: no knob moved, so engine state now equals the plan's
	// targets and an identical fingerprint implies an identical no-op
	// replan. (fp was sampled before actuation; PlanEpoch moving past
	// fp.epoch means actuation changed something.)
	m.lastFP = fp
	m.lastFPOK = fpOK && e.PlanEpoch() == fp.epoch
}

// applyDegradedFallback rewrites any assignment still targeting an offline
// cluster to the last-resort degraded pin: lowest level, minimum OPP, on
// the least-loaded online cluster that can take the app (a free core for
// CPUs, a level-1 memory fit for capped accelerators; accelerator duty may
// oversubscribe — in degraded mode a slow frame beats no frame). When
// every online CPU core is already planned away, the fallback shrinks a
// donor: the plan's largest CPU allocation on an online cluster gives up
// one core so the stranded app gets a seat — a greedy policy must not
// strand a low-priority app on dead silicon just because higher-priority
// apps claimed every core. Built-in policies already divert inside
// planning (see park), so this post-pass is the manager-level guarantee
// that holds for third-party policies — and for the no-seat-left case park
// cannot solve. It is a pure function of (view, plan) — no manager or
// engine state — so it degrades fresh and memo-cache-hit plans
// identically, and it leaves an assignment untouched only when no online
// cluster can possibly host the app (the OnTick fault retry keeps
// replanning until a repair changes that).
func (m *Manager) applyDegradedFallback(v *View, plan []Assignment) {
	anyOffline := false
	for i := range v.Clusters {
		if !v.Clusters[i].Online {
			anyOffline = true
			break
		}
	}
	if !anyOffline {
		return
	}
	clusterIdx := func(name string) int {
		for j := range v.Platform.Clusters {
			if v.Platform.Clusters[j].Name == name {
				return j
			}
		}
		return -1
	}
	// Planned CPU-core commitments per cluster: non-DNN co-runners keep
	// their current cores, DNNs occupy what the plan gives them. This is
	// the capacity the engine will enforce at migration time, so pins that
	// respect it actuate cleanly.
	used := reuseInts(m.degradedUsed, len(v.Platform.Clusters))
	m.degradedUsed = used
	for _, a := range v.Apps {
		if a.Running && a.Kind != sim.KindDNN {
			if cj := clusterIdx(a.Placement.Cluster); cj >= 0 && !v.Platform.Clusters[cj].Type.IsAccelerator() {
				used[cj] += a.Placement.Cores
			}
		}
	}
	for i := range plan {
		if cj := clusterIdx(plan[i].Placement.Cluster); cj >= 0 && !v.Platform.Clusters[cj].Type.IsAccelerator() {
			used[cj] += plan[i].Placement.Cores
		}
	}
	// Normalise over-committed CPU clusters: refugees from a dead cluster
	// pile onto the survivors on top of apps parked at their pre-fault core
	// counts, and a plan that books more cores than exist can never fully
	// actuate — the engine rejects the move-ins and every retry regenerates
	// the same dead-locked plan. Shrink the largest allocation (earliest in
	// plan order on ties) one core at a time until the books balance or
	// every seat is down to one core.
	for cj, cl := range v.Platform.Clusters {
		if cl.Type.IsAccelerator() || !v.ClusterOnline(cj) {
			continue
		}
		for used[cj] > cl.Cores {
			donor := -1
			for j := range plan {
				if clusterIdx(plan[j].Placement.Cluster) != cj || plan[j].Placement.Cores < 2 {
					continue
				}
				if donor < 0 || plan[j].Placement.Cores > plan[donor].Placement.Cores {
					donor = j
				}
			}
			if donor < 0 {
				break
			}
			plan[donor].Placement.Cores--
			used[cj]--
		}
	}
	for i := range plan {
		asg := &plan[i]
		ci := clusterIdx(asg.Placement.Cluster)
		if ci < 0 || v.ClusterOnline(ci) {
			continue
		}
		var app *sim.AppInfo
		for j := range v.Apps {
			if v.Apps[j].Name == asg.App {
				app = &v.Apps[j]
				break
			}
		}
		if app == nil {
			continue
		}
		// Strict pass: an online cluster with a planned seat free.
		best, bestLoad := -1, 0.0
		for cj, cl := range v.Platform.Clusters {
			if !v.ClusterOnline(cj) {
				continue
			}
			var load float64
			if cl.Type.IsAccelerator() {
				if cj < len(v.Clusters) && cl.MemBytes > 0 && app.ModelBytes > 0 &&
					app.ModelBytes/int64(app.Profile.MaxLevel()) > v.Clusters[cj].MemFree {
					continue
				}
				if cj < len(v.Clusters) {
					load = v.Clusters[cj].Util
				}
			} else {
				if used[cj] >= cl.Cores {
					continue
				}
				load = float64(used[cj]) / float64(cl.Cores)
			}
			if best == -1 || load < bestLoad {
				best, bestLoad = cj, load
			}
		}
		// Donor pass: shrink the largest planned CPU allocation on an
		// online cluster by one core (earliest in plan order on ties).
		if best < 0 {
			donor := -1
			for j := range plan {
				cj := clusterIdx(plan[j].Placement.Cluster)
				if j == i || cj < 0 || !v.ClusterOnline(cj) ||
					v.Platform.Clusters[cj].Type.IsAccelerator() || plan[j].Placement.Cores < 2 {
					continue
				}
				if donor < 0 || plan[j].Placement.Cores > plan[donor].Placement.Cores {
					donor = j
				}
			}
			if donor >= 0 {
				plan[donor].Placement.Cores--
				best = clusterIdx(plan[donor].Placement.Cluster)
				used[best]--
			}
		}
		if best < 0 {
			continue
		}
		cl := v.Platform.Clusters[best]
		asg.Placement = sim.Placement{Cluster: cl.Name, Cores: clApplyCores(cl, 1)}
		asg.Level = 1
		asg.OPPIndex = 0
		asg.Pass = 3
		if !cl.Type.IsAccelerator() {
			used[best]++
		}
	}
}

// reuseInts returns s with length n and zeroed contents, keeping the
// backing array whenever it is large enough.
func reuseInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// actuate applies the plan through the knob layer: level reductions first
// (to release accelerator memory), then migrations, then level increases,
// then per-cluster OPPs. The per-cluster DVFS floor is derived from the
// plan itself (the highest OPP any assignment committed on the cluster)
// plus the render pin, so actuation depends only on (view, plan) — not on
// policy-internal ledgers.
func (m *Manager) actuate(e *sim.Engine, v View, plan []Assignment) {
	// The view was snapshotted from this engine within the same replan, so
	// it *is* the current state — indexing it avoids re-querying the
	// engine. Both indexes are manager scratch, cleared per actuation.
	if m.curApps == nil {
		m.curApps = map[string]sim.AppInfo{}
		m.renderOn = map[string]bool{}
	}
	current := m.curApps
	clear(current)
	for _, a := range v.Apps {
		current[a.Name] = a
	}
	for _, asg := range plan {
		if cur := current[asg.App]; asg.Level < cur.Level {
			m.setLevel(e, asg.App, asg.Level)
		}
	}
	// Migrations run in three waves ordered so freed capacity is visible
	// within the same plan: same-cluster core shrinks first (they free CPU
	// cores a move-in on that cluster needs), then apps vacating a
	// memory-constrained accelerator (freeing memory), then everything
	// else.
	migrate := func(want int) {
		for _, asg := range plan {
			cur := current[asg.App]
			if asg.Placement == cur.Placement {
				continue
			}
			fromCl := e.Platform().Cluster(cur.Placement.Cluster)
			wave := 2
			switch {
			case asg.Placement.Cluster == cur.Placement.Cluster && asg.Placement.Cores < cur.Placement.Cores:
				wave = 0
			case fromCl != nil && fromCl.MemBytes > 0:
				wave = 1
			}
			if wave != want {
				continue
			}
			if err := e.Migrate(asg.App, asg.Placement); err != nil {
				m.logf("rtm: migrate %s: %v", asg.App, err)
			} else {
				cur.Placement = asg.Placement
				current[asg.App] = cur
			}
		}
	}
	migrate(0)
	migrate(1)
	migrate(2)
	for _, asg := range plan {
		if cur := current[asg.App]; asg.Level > cur.Level {
			m.setLevel(e, asg.App, asg.Level)
		}
	}
	// DVFS: clusters hosting DNNs get the highest OPP their assignments
	// committed; render clusters run flat out; everything else drops to
	// minimum.
	renderOn := m.renderOn
	clear(renderOn)
	for _, a := range v.Apps {
		if a.Running && a.Kind == sim.KindRender {
			renderOn[a.Placement.Cluster] = true
		}
	}
	for _, cl := range e.Platform().Clusters {
		idx := 0
		if renderOn[cl.Name] {
			idx = len(cl.OPPs) - 1
		}
		for _, asg := range plan {
			if asg.Placement.Cluster == cl.Name && asg.OPPIndex > idx {
				idx = asg.OPPIndex
			}
		}
		m.setOPP(e, cl.Name, idx)
	}
}

// setLevel/setOPP actuate through the registry knobs (Fig 5's interface),
// falling back to direct engine calls before the registry exists. The
// knob pointers are cached by app/cluster name at registry build time:
// actuation happens every replan, and re-deriving "app.<name>.level" keys
// would allocate a string per knob per tick.
func (m *Manager) setLevel(e *sim.Engine, app string, level int) {
	if k := m.levelKnobs[app]; k != nil {
		if err := k.Set(level); err != nil {
			m.logf("rtm: level %s=%d: %v", app, level, err)
		}
		return
	}
	if err := e.SetLevel(app, level); err != nil {
		m.logf("rtm: level %s=%d: %v", app, level, err)
	}
}

func (m *Manager) setOPP(e *sim.Engine, cluster string, idx int) {
	if k := m.oppKnobs[cluster]; k != nil {
		if err := k.Set(idx); err != nil {
			m.logf("rtm: opp %s=%d: %v", cluster, idx, err)
		}
		return
	}
	if err := e.SetOPP(cluster, idx); err != nil {
		m.logf("rtm: opp %s=%d: %v", cluster, idx, err)
	}
}

// buildRegistry wires the engine's apps and clusters into a knob/monitor
// registry — the concrete realisation of Fig 5.
func (m *Manager) buildRegistry(e *sim.Engine) {
	r := NewRegistry()
	m.levelKnobs = map[string]*Knob{}
	m.oppKnobs = map[string]*Knob{}
	for _, a := range e.Apps() {
		if a.Kind != sim.KindDNN {
			continue
		}
		name := a.Name
		k, err := r.RegisterKnob("app."+name+".level", LayerApplication,
			1, a.Profile.MaxLevel(), a.Level,
			func(v int) error { return e.SetLevel(name, v) })
		if err != nil {
			m.logf("rtm: registry: %v", err)
		} else {
			m.levelKnobs[name] = k
		}
		if _, err := r.RegisterMonitor("app."+name+".latency", LayerApplication, "s", func() float64 {
			info, err := e.App(name)
			if err != nil {
				return math.NaN()
			}
			return info.AvgLatency
		}); err != nil {
			m.logf("rtm: registry: %v", err)
		}
		if _, err := r.RegisterMonitor("app."+name+".accuracy", LayerApplication, "top1", func() float64 {
			info, err := e.App(name)
			if err != nil {
				return math.NaN()
			}
			return info.Profile.Level(info.Level).Accuracy
		}); err != nil {
			m.logf("rtm: registry: %v", err)
		}
	}
	for _, cl := range e.Platform().Clusters {
		name := cl.Name
		info, err := e.Cluster(name)
		if err != nil {
			continue
		}
		k, err := r.RegisterKnob("dev."+name+".opp", LayerDevice,
			0, len(cl.OPPs)-1, info.OPPIndex,
			func(v int) error { return e.SetOPP(name, v) })
		if err != nil {
			m.logf("rtm: registry: %v", err)
		} else {
			m.oppKnobs[name] = k
		}
	}
	if _, err := r.RegisterMonitor("dev.temperature", LayerDevice, "C", e.Temperature); err != nil {
		m.logf("rtm: registry: %v", err)
	}
	if _, err := r.RegisterMonitor("dev.power", LayerDevice, "mW", e.TotalPowerMW); err != nil {
		m.logf("rtm: registry: %v", err)
	}
	m.registry = r
}

var _ sim.Controller = (*Manager)(nil)

// String renders an assignment for reports.
func (a Assignment) String() string {
	return fmt.Sprintf("%s -> %s/%d L%d opp%d (%.1fms, pass %d)",
		a.App, a.Placement.Cluster, a.Placement.Cores, a.Level, a.OPPIndex, a.LatencyS*1000, a.Pass)
}
