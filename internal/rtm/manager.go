package rtm

import (
	"fmt"
	"math"
	"sort"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// Requirement is what an application demands from the runtime manager —
// the information flowing down through application monitors in Fig 5.
type Requirement struct {
	// MaxLatencyS is the per-inference latency budget; 0 means "use the
	// app's frame period".
	MaxLatencyS float64
	// MinAccuracy is the lowest acceptable top-1 accuracy (0 = any).
	MinAccuracy float64
	// Priority orders apps during planning; higher wins resources first.
	Priority int
}

// Assignment is one planned operating point for an app.
type Assignment struct {
	App       string
	Placement sim.Placement
	Level     int
	OPPIndex  int
	LatencyS  float64
	DynPowMW  float64 // average dynamic power (duty-weighted)
	Accuracy  float64
	Pass      int // 1 = requirement met, 2 = accuracy relaxed, 3 = best effort
}

// Manager is the paper's runtime resource manager: on workload arrivals,
// thermal alarms, sustained deadline misses and requirement changes it
// re-plans the (model level, mapping, DVFS) knob settings of every managed
// DNN so that application requirements are met within device constraints.
//
// Planning policy (per app, in priority order):
//
//	pass 1: place the *minimal* model level whose accuracy meets the
//	        requirement, at the cheapest (average dynamic power) feasible
//	        (cluster, cores, min-OPP) point meeting the latency budget,
//	        accelerator duty, accelerator memory and the thermal power
//	        budget;
//	pass 2: if no such point exists, relax the accuracy requirement and
//	        maximise accuracy among feasible points (the paper's
//	        "dynamically compressed, trading accuracy");
//	pass 3: if still nothing, run best-effort: minimise latency subject to
//	        the power budget only (deadlines may be missed, thermal safety
//	        is preserved).
//
// The thermal power budget is derived from the RC model: sustained power
// that keeps steady-state temperature at throttle − margin. Each thermal
// alarm raises the margin (pressure); the pressure decays once the die
// cools, restoring performance — a reactive feedback loop on top of the
// proactive plan.
type Manager struct {
	reqs map[string]Requirement

	// PressureStepC is the margin added per outstanding thermal alarm.
	PressureStepC float64
	// BaseMarginC is the planning margin below the throttle point.
	BaseMarginC float64
	// MissReplanThreshold triggers a replan after this many deadline
	// misses/frame drops since the previous plan.
	MissReplanThreshold int
	// Logf, when set, receives planning decisions.
	Logf func(format string, args ...any)

	// MissReplanBackoffS rate-limits miss-triggered replans: when the
	// workload is unschedulable, every frame misses and replanning each
	// tick would churn without changing the plan.
	MissReplanBackoffS float64

	registry     *Registry
	pressure     int
	misses       int
	pending      bool
	plans        int
	last         []Assignment
	lastMissPlan float64
}

// NewManager builds a manager with the given per-app requirements (keyed
// by app name; apps without an entry get defaults: latency = period,
// accuracy unconstrained, priority 0).
func NewManager(reqs map[string]Requirement) *Manager {
	m := &Manager{
		reqs:                map[string]Requirement{},
		PressureStepC:       4,
		BaseMarginC:         0,
		MissReplanThreshold: 2,
		MissReplanBackoffS:  2,
	}
	for k, v := range reqs {
		m.reqs[k] = v
	}
	return m
}

// SetRequirement installs or replaces an app's requirement at runtime (the
// Fig 2(d) event: "the accuracy requirement of the second DNN is reduced")
// and schedules a replan.
func (m *Manager) SetRequirement(app string, r Requirement) {
	m.reqs[app] = r
	m.pending = true
}

// Requirement returns the requirement for an app (with defaults applied).
func (m *Manager) Requirement(app string, periodS float64) Requirement {
	r := m.reqs[app]
	if r.MaxLatencyS == 0 {
		r.MaxLatencyS = periodS
	}
	return r
}

// Plans returns how many replans have executed.
func (m *Manager) Plans() int { return m.plans }

// LastPlan returns the most recent set of assignments.
func (m *Manager) LastPlan() []Assignment { return append([]Assignment(nil), m.last...) }

// Registry returns the knob/monitor registry built for the bound engine
// (nil before the first plan).
func (m *Manager) Registry() *Registry { return m.registry }

// Pressure returns the outstanding thermal pressure level.
func (m *Manager) Pressure() int { return m.pressure }

func (m *Manager) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

// OnTick implements sim.Controller.
func (m *Manager) OnTick(e *sim.Engine) {
	// Thermal pressure decays when the die has cooled well below the trip
	// point, restoring performance headroom.
	if m.pressure > 0 && e.Temperature() < e.ThrottleC()-6 {
		m.pressure--
		m.pending = true
	}
	if m.misses >= m.MissReplanThreshold && e.Now()-m.lastMissPlan >= m.MissReplanBackoffS {
		m.pending = true
		m.lastMissPlan = e.Now()
	}
	if m.pending {
		m.Replan(e)
	}
}

// OnEvent implements sim.Controller.
func (m *Manager) OnEvent(e *sim.Engine, ev sim.Event) {
	switch ev.Kind {
	case sim.EvAppStart, sim.EvAppStop:
		m.Replan(e)
	case sim.EvThermalAlarm:
		m.pressure++
		m.logf("rtm: t=%.2fs thermal alarm (%s), pressure=%d", ev.TimeS, ev.Note, m.pressure)
		m.Replan(e)
	case sim.EvDeadlineMiss, sim.EvFrameDrop:
		m.misses++
	}
}

// candidate is one evaluated operating point during planning.
type candidate struct {
	placement sim.Placement
	level     int
	oppIdx    int
	latencyS  float64
	duty      float64
	dynPowMW  float64
	accuracy  float64
	memBytes  int64
}

// planState is the resource ledger consumed while assigning apps.
type planState struct {
	freeCores map[string]int
	freeDuty  map[string]float64
	freeMem   map[string]int64
	oppNeed   map[string]int
	dynBudget float64 // remaining average dynamic power, mW
}

// Replan recomputes and actuates assignments for every running DNN app.
func (m *Manager) Replan(e *sim.Engine) {
	m.pending = false
	m.misses = 0
	m.plans++
	plat := e.Platform()

	if m.registry == nil {
		m.buildRegistry(e)
	}

	// Partition apps.
	var dnns []sim.AppInfo
	others := map[string][]sim.AppInfo{} // cluster -> non-DNN residents
	for _, a := range e.Apps() {
		if !a.Running {
			continue
		}
		if a.Kind == sim.KindDNN {
			dnns = append(dnns, a)
		} else {
			others[a.Placement.Cluster] = append(others[a.Placement.Cluster], a)
		}
	}
	sort.SliceStable(dnns, func(i, j int) bool {
		ri := m.Requirement(dnns[i].Name, dnns[i].PeriodS)
		rj := m.Requirement(dnns[j].Name, dnns[j].PeriodS)
		if ri.Priority != rj.Priority {
			return ri.Priority > rj.Priority
		}
		return ri.MaxLatencyS < rj.MaxLatencyS
	})

	// Build the resource ledger.
	st := &planState{
		freeCores: map[string]int{},
		freeDuty:  map[string]float64{},
		freeMem:   map[string]int64{},
		oppNeed:   map[string]int{},
	}
	margin := m.BaseMarginC + float64(m.pressure)*m.PressureStepC
	capW := plat.Thermal.PowerBudgetW(e.Ambient(), plat.Thermal.ThrottleC-margin)
	st.dynBudget = capW * 1000
	for _, cl := range plat.Clusters {
		st.dynBudget -= cl.IdlePowerMW()
		if cl.Type.IsAccelerator() {
			st.freeDuty[cl.Name] = 1
			st.freeMem[cl.Name] = cl.MemBytes
		} else {
			st.freeCores[cl.Name] = cl.Cores
		}
	}
	// Non-DNN apps consume resources and (uncontrollable) power at the OPP
	// they will be pinned to: max for render clusters, min otherwise.
	// Iterate in platform cluster order, not map order: the budget is a
	// float accumulation, and a run-dependent summation order could flip a
	// marginal feasibility decision between otherwise identical runs.
	for _, cl := range plat.Clusters {
		clName := cl.Name
		residents := others[clName]
		if len(residents) == 0 {
			continue
		}
		opp := cl.MinOPP()
		if hasRender(residents) {
			opp = cl.MaxOPP()
			st.oppNeed[clName] = len(cl.OPPs) - 1
		}
		for _, a := range residents {
			dyn := dynPowerMW(cl, opp, clApplyCores(cl, a.Placement.Cores), a.Util)
			st.dynBudget -= dyn
			if cl.Type.IsAccelerator() {
				st.freeDuty[clName] -= a.Util
			} else {
				st.freeCores[clName] -= a.Placement.Cores
			}
		}
	}
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}

	// Assign apps greedily.
	var plan []Assignment
	for _, a := range dnns {
		req := m.Requirement(a.Name, a.PeriodS)
		asg := m.assign(plat, st, a, req)
		plan = append(plan, asg)
		m.logf("rtm: t=%.2fs plan %s -> %s/%d cores, level %d, opp %d (pass %d, %.1fms, %.0fmW)",
			e.Now(), a.Name, asg.Placement.Cluster, asg.Placement.Cores, asg.Level,
			asg.OPPIndex, asg.Pass, asg.LatencyS*1000, asg.DynPowMW)
	}
	m.last = plan
	m.actuate(e, plan, st, others)
}

func hasRender(apps []sim.AppInfo) bool {
	for _, a := range apps {
		if a.Kind == sim.KindRender {
			return true
		}
	}
	return false
}

func clApplyCores(cl *hw.Cluster, cores int) int {
	if cl.Type.IsAccelerator() {
		return cl.Cores
	}
	return cores
}

// dynPowerMW is the average dynamic (above-static) power of n cores at the
// given utilisation.
func dynPowerMW(cl *hw.Cluster, opp hw.OPP, n int, util float64) float64 {
	return cl.BusyPowerMW(opp, n, util) - cl.IdlePowerMW()
}

// assign finds the best operating point for one app given the ledger, and
// commits the resources.
func (m *Manager) assign(plat *hw.Platform, st *planState, a sim.AppInfo, req Requirement) Assignment {
	minLevel := 1
	for l := 1; l <= a.Profile.MaxLevel(); l++ {
		minLevel = l
		if a.Profile.Level(l).Accuracy >= req.MinAccuracy {
			break
		}
	}

	// Pass 1: exactly the minimal level meeting the accuracy requirement.
	if a.Profile.Level(minLevel).Accuracy >= req.MinAccuracy {
		if c, ok := m.bestCandidate(plat, st, a, req, []int{minLevel}, false); ok {
			return m.commit(st, a, c, 1)
		}
	}
	// Pass 2: accuracy relaxed — maximise accuracy among feasible points.
	levels := make([]int, 0, a.Profile.MaxLevel())
	for l := a.Profile.MaxLevel(); l >= 1; l-- {
		levels = append(levels, l)
	}
	if c, ok := m.bestCandidate(plat, st, a, req, levels, false); ok {
		return m.commit(st, a, c, 2)
	}
	// Pass 3: best effort — minimise latency subject to the power budget.
	if c, ok := m.bestCandidate(plat, st, a, req, levels, true); ok {
		return m.commit(st, a, c, 3)
	}
	// Nothing fits at all (power budget exhausted): park at the current
	// placement, minimum level, minimum OPP.
	cl := plat.Cluster(a.Placement.Cluster)
	park := candidate{
		placement: a.Placement,
		level:     1,
		oppIdx:    0,
		latencyS:  perf.InferenceLatencyS(cl, cl.MinOPP(), clApplyCores(cl, a.Placement.Cores), a.Profile.Level(1).MACs),
		accuracy:  a.Profile.Level(1).Accuracy,
	}
	return m.commit(st, a, park, 3)
}

// bestCandidate enumerates feasible candidates over the level list and
// returns the winner. In best-effort mode latency/duty feasibility is
// dropped; only power, cores and memory bind, and the objective becomes
// minimum latency.
func (m *Manager) bestCandidate(plat *hw.Platform, st *planState, a sim.AppInfo, req Requirement, levels []int, bestEffort bool) (candidate, bool) {
	var best candidate
	found := false
	better := func(c candidate) bool {
		if !found {
			return true
		}
		// Hysteresis: candidates keeping the current placement and level
		// get a 5% cost discount to avoid migration churn.
		cost := func(x candidate) float64 {
			v := x.dynPowMW
			if bestEffort {
				v = x.latencyS * 1000
			}
			if x.placement == a.Placement && x.level == a.Level {
				v *= 0.95
			}
			return v
		}
		if !bestEffort && c.accuracy != best.accuracy {
			return c.accuracy > best.accuracy
		}
		return cost(c) < cost(best)
	}
	for _, cl := range plat.Clusters {
		coreOptions := m.coreOptions(cl, st)
		for _, cores := range coreOptions {
			for _, level := range levels {
				spec := a.Profile.Level(level)
				// Memory feasibility on accelerators.
				var memNeed int64
				if cl.MemBytes > 0 && a.ModelBytes > 0 {
					memNeed = a.ModelBytes * int64(level) / int64(a.Profile.MaxLevel())
					if memNeed > st.freeMem[cl.Name] {
						continue
					}
				}
				oppIdx, ok := m.chooseOPP(cl, st, cores, spec.MACs, req.MaxLatencyS, bestEffort)
				if !ok {
					continue
				}
				opp := cl.OPPs[oppIdx]
				lat := perf.InferenceLatencyS(cl, opp, cores, spec.MACs)
				duty := lat / a.PeriodS
				if duty > 1 {
					duty = 1
				}
				if !bestEffort {
					if lat > req.MaxLatencyS {
						continue
					}
					if cl.Type.IsAccelerator() && duty > st.freeDuty[cl.Name]+1e-9 {
						continue
					}
				}
				dyn := dynPowerMW(cl, opp, cores, 1) * duty
				if dyn > st.dynBudget+1e-9 {
					continue
				}
				c := candidate{
					placement: sim.Placement{Cluster: cl.Name, Cores: cores},
					level:     level,
					oppIdx:    oppIdx,
					latencyS:  lat,
					duty:      duty,
					dynPowMW:  dyn,
					accuracy:  spec.Accuracy,
					memBytes:  memNeed,
				}
				if better(c) {
					best = c
					found = true
				}
			}
		}
	}
	return best, found
}

// coreOptions lists allocatable core counts on a cluster given the ledger.
func (m *Manager) coreOptions(cl *hw.Cluster, st *planState) []int {
	if cl.Type.IsAccelerator() {
		if st.freeDuty[cl.Name] <= 0 {
			return nil
		}
		return []int{cl.Cores}
	}
	free := st.freeCores[cl.Name]
	if free < 1 {
		return nil
	}
	opts := make([]int, 0, free)
	for n := free; n >= 1; n-- {
		opts = append(opts, n)
	}
	return opts
}

// chooseOPP returns the lowest OPP (≥ the cluster's committed floor)
// meeting the latency budget — pacing beats race-to-idle under a CV²f
// power model. In best-effort mode it returns the maximum OPP.
func (m *Manager) chooseOPP(cl *hw.Cluster, st *planState, cores int, macs int64, budgetS float64, bestEffort bool) (int, bool) {
	floor := st.oppNeed[cl.Name]
	if bestEffort {
		return len(cl.OPPs) - 1, true
	}
	for i := floor; i < len(cl.OPPs); i++ {
		if perf.InferenceLatencyS(cl, cl.OPPs[i], cores, macs) <= budgetS {
			return i, true
		}
	}
	return 0, false
}

// commit consumes ledger resources for the chosen candidate.
func (m *Manager) commit(st *planState, a sim.AppInfo, c candidate, pass int) Assignment {
	if c.duty > 0 {
		if _, accel := st.freeDuty[c.placement.Cluster]; accel {
			st.freeDuty[c.placement.Cluster] -= c.duty
		}
	}
	if _, cpu := st.freeCores[c.placement.Cluster]; cpu {
		st.freeCores[c.placement.Cluster] -= c.placement.Cores
	}
	if c.memBytes > 0 {
		st.freeMem[c.placement.Cluster] -= c.memBytes
	}
	st.dynBudget -= c.dynPowMW
	if st.dynBudget < 0 {
		st.dynBudget = 0
	}
	if c.oppIdx > st.oppNeed[c.placement.Cluster] {
		st.oppNeed[c.placement.Cluster] = c.oppIdx
	}
	return Assignment{
		App:       a.Name,
		Placement: c.placement,
		Level:     c.level,
		OPPIndex:  c.oppIdx,
		LatencyS:  c.latencyS,
		DynPowMW:  c.dynPowMW,
		Accuracy:  c.accuracy,
		Pass:      pass,
	}
}

// actuate applies the plan through the knob layer: level reductions first
// (to release accelerator memory), then migrations, then level increases,
// then per-cluster OPPs.
func (m *Manager) actuate(e *sim.Engine, plan []Assignment, st *planState, others map[string][]sim.AppInfo) {
	current := map[string]sim.AppInfo{}
	for _, a := range e.Apps() {
		current[a.Name] = a
	}
	for _, asg := range plan {
		if cur := current[asg.App]; asg.Level < cur.Level {
			m.setLevel(e, asg.App, asg.Level)
		}
	}
	// Apps vacating a memory-constrained accelerator migrate first so the
	// freed memory is visible to apps moving in within the same plan.
	migrate := func(vacatingFirst bool) {
		for _, asg := range plan {
			cur := current[asg.App]
			if asg.Placement == cur.Placement {
				continue
			}
			fromCl := e.Platform().Cluster(cur.Placement.Cluster)
			vacating := fromCl != nil && fromCl.MemBytes > 0
			if vacating != vacatingFirst {
				continue
			}
			if err := e.Migrate(asg.App, asg.Placement); err != nil {
				m.logf("rtm: migrate %s: %v", asg.App, err)
			} else {
				cur.Placement = asg.Placement
				current[asg.App] = cur
			}
		}
	}
	migrate(true)
	migrate(false)
	for _, asg := range plan {
		if cur := current[asg.App]; asg.Level > cur.Level {
			m.setLevel(e, asg.App, asg.Level)
		}
	}
	// DVFS: clusters hosting DNNs get their committed floor; render
	// clusters run flat out; everything else drops to minimum.
	hosted := map[string]bool{}
	for _, asg := range plan {
		hosted[asg.Placement.Cluster] = true
	}
	for _, cl := range e.Platform().Clusters {
		var idx int
		switch {
		case hosted[cl.Name]:
			idx = st.oppNeed[cl.Name]
		case hasRender(others[cl.Name]):
			idx = len(cl.OPPs) - 1
		default:
			idx = 0
		}
		m.setOPP(e, cl.Name, idx)
	}
}

// setLevel/setOPP actuate through the registry knobs (Fig 5's interface),
// falling back to direct engine calls before the registry exists.
func (m *Manager) setLevel(e *sim.Engine, app string, level int) {
	if k := m.registry.Knob("app." + app + ".level"); k != nil {
		if err := k.Set(level); err != nil {
			m.logf("rtm: level %s=%d: %v", app, level, err)
		}
		return
	}
	if err := e.SetLevel(app, level); err != nil {
		m.logf("rtm: level %s=%d: %v", app, level, err)
	}
}

func (m *Manager) setOPP(e *sim.Engine, cluster string, idx int) {
	if k := m.registry.Knob("dev." + cluster + ".opp"); k != nil {
		if err := k.Set(idx); err != nil {
			m.logf("rtm: opp %s=%d: %v", cluster, idx, err)
		}
		return
	}
	if err := e.SetOPP(cluster, idx); err != nil {
		m.logf("rtm: opp %s=%d: %v", cluster, idx, err)
	}
}

// buildRegistry wires the engine's apps and clusters into a knob/monitor
// registry — the concrete realisation of Fig 5.
func (m *Manager) buildRegistry(e *sim.Engine) {
	r := NewRegistry()
	for _, a := range e.Apps() {
		if a.Kind != sim.KindDNN {
			continue
		}
		name := a.Name
		_, err := r.RegisterKnob("app."+name+".level", LayerApplication,
			1, a.Profile.MaxLevel(), a.Level,
			func(v int) error { return e.SetLevel(name, v) })
		if err != nil {
			m.logf("rtm: registry: %v", err)
		}
		if _, err := r.RegisterMonitor("app."+name+".latency", LayerApplication, "s", func() float64 {
			info, err := e.App(name)
			if err != nil {
				return math.NaN()
			}
			return info.AvgLatency
		}); err != nil {
			m.logf("rtm: registry: %v", err)
		}
		if _, err := r.RegisterMonitor("app."+name+".accuracy", LayerApplication, "top1", func() float64 {
			info, err := e.App(name)
			if err != nil {
				return math.NaN()
			}
			return info.Profile.Level(info.Level).Accuracy
		}); err != nil {
			m.logf("rtm: registry: %v", err)
		}
	}
	for _, cl := range e.Platform().Clusters {
		name := cl.Name
		info, err := e.Cluster(name)
		if err != nil {
			continue
		}
		if _, err := r.RegisterKnob("dev."+name+".opp", LayerDevice,
			0, len(cl.OPPs)-1, info.OPPIndex,
			func(v int) error { return e.SetOPP(name, v) }); err != nil {
			m.logf("rtm: registry: %v", err)
		}
	}
	if _, err := r.RegisterMonitor("dev.temperature", LayerDevice, "C", e.Temperature); err != nil {
		m.logf("rtm: registry: %v", err)
	}
	if _, err := r.RegisterMonitor("dev.power", LayerDevice, "mW", e.TotalPowerMW); err != nil {
		m.logf("rtm: registry: %v", err)
	}
	m.registry = r
}

var _ sim.Controller = (*Manager)(nil)

// String renders an assignment for reports.
func (a Assignment) String() string {
	return fmt.Sprintf("%s -> %s/%d L%d opp%d (%.1fms, pass %d)",
		a.App, a.Placement.Cluster, a.Placement.Cores, a.Level, a.OPPIndex, a.LatencyS*1000, a.Pass)
}
