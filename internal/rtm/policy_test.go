package rtm

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/sim"
)

func TestPolicyRegistry(t *testing.T) {
	got := Policies()
	want := []string{"heuristic", "maxaccuracy", "minenergy"}
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in policy %q not registered (got %v)", name, got)
		}
	}
	if !sortedStrings(got) {
		t.Errorf("Policies() not sorted: %v", got)
	}

	p, err := NewPolicy("")
	if err != nil || p.Name() != DefaultPolicy {
		t.Fatalf(`NewPolicy("") = %v, %v; want the default %q`, p, err, DefaultPolicy)
	}
	for _, name := range want {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("no-such-policy"); err == nil {
		t.Fatal("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "heuristic") {
		t.Errorf("unknown-policy error %q does not list registered policies", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("heuristic", func() Policy { return heuristicPolicy{} })
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// testCluster is a hand-sized fixture for the planner-seam unit tests:
// 4 cores, three OPPs, 1e9 MAC/s per GHz with linear core scaling, so
// latency is macs / (1e9 · f · n/4) exactly.
func testCluster() *hw.Cluster {
	return &hw.Cluster{
		Name:  "cpu",
		Type:  hw.CoreA15,
		Cores: 4,
		OPPs:  []hw.OPP{{FreqGHz: 0.5, VoltageV: 0.9}, {FreqGHz: 1.0, VoltageV: 1.0}, {FreqGHz: 2.0, VoltageV: 1.2}},
		Power: hw.PowerParams{CeffMWPerV2GHz: 100, StaticMW: 50},

		RateMACsPerSecGHz: 1e9,
		ParallelAlpha:     1,
	}
}

// TestChooseOPP pins the pacing rule at the policy seam: lowest OPP at or
// above the committed floor that meets the budget. Before the policy
// extraction this decision was unreachable without a full engine run.
func TestChooseOPP(t *testing.T) {
	cl := testCluster()
	const macs = 100_000_000 // 0.2s / 0.1s / 0.05s at the three OPPs (4 cores)
	cases := []struct {
		name    string
		floor   int
		cores   int
		budgetS float64
		wantIdx int
		wantOK  bool
	}{
		{"loose budget paces to min OPP", 0, 4, 0.25, 0, true},
		{"exact fit at min OPP", 0, 4, 0.2, 0, true},
		{"mid budget picks mid OPP", 0, 4, 0.1, 1, true},
		{"tight budget needs max OPP", 0, 4, 0.05, 2, true},
		{"impossible budget fails", 0, 4, 0.04, 0, false},
		{"committed floor overrides pacing", 2, 4, 0.25, 2, true},
		{"fewer cores shift the choice", 0, 2, 0.25, 1, true}, // 2 cores: 0.4/0.2/0.1s
		{"fewer cores can fail", 0, 1, 0.05, 0, false},
	}
	for _, tc := range cases {
		idx, ok := chooseOPP(cl, tc.floor, tc.cores, macs, tc.budgetS)
		if idx != tc.wantIdx || ok != tc.wantOK {
			t.Errorf("%s: chooseOPP(floor=%d, cores=%d, budget=%gs) = (%d, %v), want (%d, %v)",
				tc.name, tc.floor, tc.cores, tc.budgetS, idx, ok, tc.wantIdx, tc.wantOK)
		}
	}
}

// TestCoreOptions pins the allocation enumeration at the policy seam,
// including the buffer-reuse contract: results are appended into the
// caller's scratch buffer, whose backing array must be reused when large
// enough.
func TestCoreOptions(t *testing.T) {
	cpu := testCluster()
	npu := &hw.Cluster{
		Name: "npu", Type: hw.CoreNPU, Cores: 1,
		OPPs:              []hw.OPP{{FreqGHz: 1, VoltageV: 1}},
		RateMACsPerSecGHz: 1e9, ParallelAlpha: 1,
	}
	ledger := func(cl *hw.Cluster, cores int, duty float64) *planState {
		return &planState{
			clusters:  []*hw.Cluster{cl},
			freeCores: []int{cores},
			freeDuty:  []float64{duty},
			freeMem:   []int64{0},
			oppNeed:   []int{0},
		}
	}
	cases := []struct {
		name string
		cl   *hw.Cluster
		st   *planState
		want []int
	}{
		{"all cores free, largest first", cpu, ledger(cpu, 4, 0), []int{4, 3, 2, 1}},
		{"partially consumed ledger", cpu, ledger(cpu, 2, 0), []int{2, 1}},
		{"exhausted CPU yields nothing", cpu, ledger(cpu, 0, 0), []int{}},
		{"over-consumed CPU yields nothing", cpu, ledger(cpu, -1, 0), []int{}},
		{"accelerator is all-or-nothing", npu, ledger(npu, 0, 0.4), []int{1}},
		{"saturated accelerator yields nothing", npu, ledger(npu, 0, 0), []int{}},
	}
	buf := make([]int, 0, 8)
	for _, tc := range cases {
		got := coreOptions(tc.cl, tc.st, 0, buf)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: coreOptions = %v, want %v", tc.name, got, tc.want)
		}
		if cap(got) > 0 && &got[:cap(got)][0] != &buf[:cap(buf)][0] {
			t.Errorf("%s: coreOptions reallocated instead of reusing the buffer", tc.name)
		}
	}
}

// runUnder runs one 4-second scenario under the named policy and returns
// the manager.
func runUnder(t *testing.T, policy string, reqs map[string]Requirement, apps []sim.App) *Manager {
	t.Helper()
	p, err := NewPolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(reqs)
	mgr.SetPolicy(p)
	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       apps,
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestPoliciesDisagree: on an unconstrained workload (no accuracy floor,
// generous period) the three built-in strategies must pick visibly
// different operating points — minimal level paced for the heuristic,
// maximal level for maxaccuracy, minimal level at the hosting cluster's
// top OPP for minenergy.
func TestPoliciesDisagree(t *testing.T) {
	apps := []sim.App{dnn("d", "a15", 4, 1.0)}

	heur := runUnder(t, "heuristic", nil, apps).LastPlan()
	maxacc := runUnder(t, "maxaccuracy", nil, apps).LastPlan()
	race := runUnder(t, "minenergy", nil, apps).LastPlan()
	if len(heur) != 1 || len(maxacc) != 1 || len(race) != 1 {
		t.Fatalf("plan sizes: %d/%d/%d, want 1 each", len(heur), len(maxacc), len(race))
	}

	if heur[0].Level != 1 {
		t.Errorf("heuristic level = %d, want 1 (minimal level meeting no floor)", heur[0].Level)
	}
	if maxacc[0].Level != 4 {
		t.Errorf("maxaccuracy level = %d, want 4 (highest level that fits)", maxacc[0].Level)
	}
	if race[0].Level != 1 {
		t.Errorf("minenergy level = %d, want 1", race[0].Level)
	}

	raceCl := hw.OdroidXU3().Cluster(race[0].Placement.Cluster)
	if race[0].OPPIndex != len(raceCl.OPPs)-1 {
		t.Errorf("minenergy OPP = %d on %s, want the top index %d (race to idle)",
			race[0].OPPIndex, raceCl.Name, len(raceCl.OPPs)-1)
	}
	if maxacc[0].Accuracy < heur[0].Accuracy {
		t.Errorf("maxaccuracy accuracy %.3f below heuristic %.3f", maxacc[0].Accuracy, heur[0].Accuracy)
	}
}

// TestManagerPolicyPlumbing: PolicyName reflects SetPolicy, nil is
// ignored, and swapping schedules a replan at the next tick.
func TestManagerPolicyPlumbing(t *testing.T) {
	mgr := NewManager(nil)
	if mgr.PolicyName() != DefaultPolicy {
		t.Fatalf("fresh manager policy %q, want %q", mgr.PolicyName(), DefaultPolicy)
	}
	mgr.SetPolicy(nil)
	if mgr.PolicyName() != DefaultPolicy {
		t.Fatal("SetPolicy(nil) replaced the policy")
	}
	p, err := NewPolicy("minenergy")
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetPolicy(p)
	if mgr.PolicyName() != "minenergy" {
		t.Fatalf("policy %q after SetPolicy", mgr.PolicyName())
	}

	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []sim.App{dnn("d", "a15", 4, 0.5)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	plans := mgr.Plans()
	heur, _ := NewPolicy("heuristic")
	mgr.SetPolicy(heur)
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if mgr.Plans() <= plans {
		t.Error("policy swap did not trigger a replan on the next tick")
	}
}

// vandalPolicy mutates everything it can reach in the view before
// delegating to the heuristic — a worst-case tenant for the defensive-copy
// audit.
type vandalPolicy struct{}

func (vandalPolicy) Name() string { return "vandal" }
func (vandalPolicy) Plan(v View) []Assignment {
	plan := heuristicPolicy{}.Plan(v)
	for name := range v.Reqs {
		v.Reqs[name] = Requirement{MaxLatencyS: 1e-9, MinAccuracy: 2, Priority: -1}
	}
	for i := range v.Apps {
		v.Apps[i].Name = "corrupted"
		v.Apps[i].Level = 99
		v.Apps[i].Placement = sim.Placement{Cluster: "corrupted", Cores: 99}
	}
	for i := range v.Clusters {
		v.Clusters[i].Name = "corrupted"
		v.Clusters[i].OPPIndex = 99
	}
	return plan
}

// TestViewDefensiveCopies is the LastPlan-style audit from the policy
// seam: a policy that vandalises its View — and a caller that vandalises
// LastPlan/LastView — must not be able to corrupt manager or engine
// state, because everything handed out is a copy.
func TestViewDefensiveCopies(t *testing.T) {
	reqs := map[string]Requirement{"d": {MinAccuracy: 0.70, Priority: 1}}
	run := func(p Policy) (*Manager, *sim.Engine) {
		mgr := NewManager(reqs)
		if p != nil {
			mgr.SetPolicy(p)
		}
		e, err := sim.New(sim.Config{
			Platform:   hw.OdroidXU3(),
			Apps:       []sim.App{dnn("d", "a15", 4, 1.0)},
			Controller: mgr,
			TickS:      0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(4); err != nil {
			t.Fatal(err)
		}
		return mgr, e
	}

	clean, _ := run(nil)
	vandal, e := run(vandalPolicy{})

	// The manager's requirement store must be untouched by the vandal.
	if got := vandal.Requirement("d", 1.0); got != clean.Requirement("d", 1.0) {
		t.Errorf("policy mutated manager requirements: %+v", got)
	}
	// The engine must still know the app under its real name and level.
	info, err := e.App("d")
	if err != nil {
		t.Fatalf("engine lost the app after a vandal plan: %v", err)
	}
	if info.Level != 4 {
		t.Errorf("engine level %d after vandal run, want 4", info.Level)
	}
	// The vandal's *planning* is the heuristic's: same assignments.
	cj, _ := json.Marshal(clean.LastPlan())
	vj, _ := json.Marshal(vandal.LastPlan())
	if string(cj) != string(vj) {
		t.Errorf("vandal plan diverged from heuristic:\n%s\n%s", cj, vj)
	}

	// LastPlan and LastView hand out copies.
	p1 := vandal.LastPlan()
	if len(p1) == 0 {
		t.Fatal("no plan recorded")
	}
	p1[0].App = "corrupted"
	p1[0].Level = 99
	if vandal.LastPlan()[0].App == "corrupted" {
		t.Error("LastPlan exposes internal plan storage")
	}
	v1 := vandal.LastView()
	if len(v1.Apps) == 0 || len(v1.Reqs) == 0 {
		t.Fatal("LastView empty")
	}
	v1.Apps[0].Name = "corrupted"
	v1.Reqs["d"] = Requirement{Priority: -99}
	v1.Clusters[0].Name = "corrupted"
	v2 := vandal.LastView()
	if v2.Apps[0].Name == "corrupted" || v2.Reqs["d"].Priority == -99 || v2.Clusters[0].Name == "corrupted" {
		t.Error("LastView exposes internal view storage")
	}
}

// TestHeuristicPlanMatchesLegacyBehaviour re-runs the scenarios the old
// monolithic Manager tests pinned, through the extracted policy: the
// refactor keeps the exact decisions (the fleet golden report checks this
// at scale; this is the fast in-package guard).
func TestHeuristicPlanMatchesLegacyBehaviour(t *testing.T) {
	// Accuracy floor 0.70 on a 1 s period → level 4 on the cheap a7.
	mgr := runUnder(t, "heuristic", map[string]Requirement{
		"d": {MinAccuracy: 0.70, Priority: 1},
	}, []sim.App{dnn("d", "a15", 4, 1.0)})
	plan := mgr.LastPlan()
	if len(plan) != 1 || plan[0].Level != 4 || plan[0].Placement.Cluster != "a7" {
		t.Fatalf("plan = %+v, want level 4 on a7", plan)
	}
	if plan[0].Pass != 1 {
		t.Errorf("pass = %d, want 1", plan[0].Pass)
	}
}

// TestViewReqDefaults: a hand-built sparse view resolves latency budgets
// from the frame period.
func TestViewReqDefaults(t *testing.T) {
	v := View{Reqs: map[string]Requirement{"a": {MinAccuracy: 0.5}}}
	app := sim.AppInfo{Name: "a", PeriodS: 0.25}
	if got := v.Req(app); got.MaxLatencyS != 0.25 || got.MinAccuracy != 0.5 {
		t.Errorf("Req = %+v, want MaxLatencyS 0.25 from the period", got)
	}
	other := sim.AppInfo{Name: "missing", PeriodS: 0.1}
	if got := v.Req(other); got.MaxLatencyS != 0.1 {
		t.Errorf("Req of unknown app = %+v, want period default", got)
	}
}
