package rtm

import (
	"fmt"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// mobileProfile mirrors workload.MobileProfile (which cannot be imported
// from an in-package rtm test without a cycle): the 7 MMAC mobile-vision
// dynamic DNN the Fig 2 scenario runs.
func mobileProfile() perf.ModelProfile {
	return perf.UniformProfile("dnn-mobile", 7_000_000, 7<<20,
		perf.PaperAccuracies, []float64{0.61, 0.68, 0.74, 0.78})
}

// benchView builds a realistic planning input: the flagship SoC hosting
// three DNN streams, a render app and background load, captured after a
// short warm-up so placements and thermal state are non-trivial. The
// policy seam makes this possible without a live engine in the loop:
// Plan(View) is a pure function, so the benchmark measures planner cost
// alone — the number that bounds how often a real manager can replan.
func benchView(tb testing.TB) View {
	prof := mobileProfile()
	apps := []sim.App{
		{Name: "dnn1", Kind: sim.KindDNN, Profile: prof, Level: 4, PeriodS: 0.040,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "npu"}},
		{Name: "dnn2", Kind: sim.KindDNN, Profile: prof, Level: 4, PeriodS: 1.0 / 60,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "cpu-big", Cores: 4}},
		{Name: "dnn3", Kind: sim.KindDNN, Profile: prof, Level: 2, PeriodS: 0.100,
			ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "cpu-lit", Cores: 2}},
		{Name: "vr", Kind: sim.KindRender, Util: 0.6, Placement: sim.Placement{Cluster: "gpu"}},
		{Name: "bg", Kind: sim.KindBackground, Util: 0.4, Placement: sim.Placement{Cluster: "cpu-lit", Cores: 1}},
	}
	mgr := NewManager(map[string]Requirement{
		"dnn1": {MinAccuracy: 0.70, Priority: 1},
		"dnn2": {MinAccuracy: 0.70, Priority: 2},
		"dnn3": {Priority: 1},
	})
	e, err := sim.New(sim.Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       apps,
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		tb.Fatal(err)
	}
	return mgr.buildView(e)
}

// BenchmarkPolicyPlan measures one full Plan over the benchView input for
// every registered policy, so planner cost shows up per strategy in the
// BENCH trajectory:
//
//	go test ./internal/rtm -bench BenchmarkPolicyPlan -benchmem
func BenchmarkPolicyPlan(b *testing.B) {
	v := benchView(b)
	for _, name := range Policies() {
		p, err := NewPolicy(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan := p.Plan(v)
				if len(plan) != 3 {
					b.Fatalf("plan covered %d DNNs, want 3", len(plan))
				}
			}
		})
	}
}

// BenchmarkReplan measures the full manager path — view construction,
// policy planning and actuation against a live engine — for the default
// heuristic; the Plan-only benchmark above isolates the policy share.
// Plan reuse is disabled: on a quiescent engine every iteration after the
// first would otherwise be elided, and this benchmark exists to track the
// cost of a real plan (BenchmarkReplanElided tracks the fast path).
func BenchmarkReplan(b *testing.B) {
	mgr, e := benchReplanSetup(b)
	mgr.NoPlanReuse = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Replan(e)
	}
}

// BenchmarkReplanElided measures the fingerprint-stable fast path: after
// an actuated fixed point, a Replan on a quiescent engine is a fingerprint
// compare and a counter bump.
func BenchmarkReplanElided(b *testing.B) {
	mgr, e := benchReplanSetup(b)
	mgr.Replan(e) // reach the actuated fixed point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Replan(e)
	}
	if s := mgr.PlanStats(); s.Elided < b.N {
		b.Fatalf("only %d of %d replans elided", s.Elided, b.N)
	}
}

func benchReplanSetup(b *testing.B) (*Manager, *sim.Engine) {
	prof := mobileProfile()
	mgr := NewManager(map[string]Requirement{"d": {MinAccuracy: 0.70, Priority: 1}})
	e, err := sim.New(sim.Config{
		Platform: hw.FlagshipSoC(),
		Apps: []sim.App{{Name: "d", Kind: sim.KindDNN, Profile: prof, Level: 4,
			PeriodS: 0.040, ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "npu"}}},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		b.Fatal(err)
	}
	return mgr, e
}

// Example of addressing policies through the registry, for the doc page.
func ExamplePolicies() {
	fmt.Println(Policies())
	// Output: [heuristic maxaccuracy minenergy]
}
