package rtm

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// trainedTestTable builds a small finalised table over the three built-in
// arms, biased so state lookups are observable: every state it contains
// selects "maxaccuracy" while the fallback is "minenergy".
func trainedTestTable(keys ...string) *LearnedTable {
	t := NewLearnedTable([]string{"heuristic", "maxaccuracy", "minenergy"})
	for _, k := range keys {
		t.Observe(k, 0, 1.0) // heuristic: expensive
		t.Observe(k, 1, 0.1) // maxaccuracy: cheapest in-state
		t.Observe(k, 2, 0.5)
	}
	// Many cheap observations in an extra state drag minenergy's global
	// visit-weighted mean below maxaccuracy's 0.1, making it the fallback.
	for i := 0; i < 50; i++ {
		t.Observe("h9p9s9a9", 2, 0)
	}
	t.Finalise()
	return t
}

func TestLearnedTableFinalise(t *testing.T) {
	tab := trainedTestTable("h1p1s1a1")
	if got := tab.Choose("h1p1s1a1"); got != "maxaccuracy" {
		t.Errorf("trained state chooses %q, want maxaccuracy", got)
	}
	if tab.Fallback != "minenergy" {
		t.Errorf("fallback = %q, want minenergy (lowest global mean cost)", tab.Fallback)
	}
	if got := tab.Choose("h0p0s0a0"); got != "minenergy" {
		t.Errorf("unseen state chooses %q, want the fallback", got)
	}
}

// TestLearnedTableRoundTrip: serialise → read back → identical table and
// identical bytes, the property the trainer's determinism contract and
// CI's cmp-based smoke rest on.
func TestLearnedTableRoundTrip(t *testing.T) {
	tab := trainedTestTable("h1p1s1a1", "h2p3s2a2", "h0p1s0a3")
	raw, err := tab.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadLearnedTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, back) {
		t.Fatalf("round-trip changed the table:\n%+v\n%+v", tab, back)
	}
	raw2, err := back.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("re-marshalling a read table is not byte-identical")
	}
}

func TestLearnedTableValidate(t *testing.T) {
	base := func() *LearnedTable { return trainedTestTable("h1p1s1a1") }
	cases := []struct {
		name  string
		wreck func(*LearnedTable)
		want  string
	}{
		{"bad version", func(tb *LearnedTable) { tb.Version = 99 }, "version"},
		{"no arms", func(tb *LearnedTable) { tb.Arms = nil }, "no arms"},
		{"nested learned arm", func(tb *LearnedTable) { tb.Arms[0] = "learned:x.json" }, "plain registry name"},
		{"duplicate arm", func(tb *LearnedTable) { tb.Arms[1] = tb.Arms[0] }, "listed twice"},
		{"unknown fallback", func(tb *LearnedTable) { tb.Fallback = "nope" }, "fallback"},
		{"unknown state arm", func(tb *LearnedTable) { tb.States["h1p1s1a1"].Arm = "nope" }, "unknown arm"},
		{"misaligned visits", func(tb *LearnedTable) { tb.States["h1p1s1a1"].Visits = []int{1} }, "one per arm"},
	}
	for _, tc := range cases {
		tb := base()
		tc.wreck(tb)
		err := tb.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestLearnedTableValidateDeterministicError: with several defective
// states, Validate must always report the lexically-first one. It used to
// iterate the States map directly, so *which* defect a multi-defect table
// reported varied run to run — surfaced by detlint's rangemap analyzer.
func TestLearnedTableValidateDeterministicError(t *testing.T) {
	for i := 0; i < 20; i++ {
		tb := trainedTestTable("h0p0s0a1", "h1p1s1a1", "h2p2s2a2")
		tb.States["h1p1s1a1"].Arm = "nope"
		tb.States["h2p2s2a2"].Arm = "nope"
		tb.States["h0p0s0a1"].Visits = []int{1} // lexically first defect
		err := tb.Validate()
		if err == nil {
			t.Fatal("Validate passed on a doubly-defective table")
		}
		if !strings.Contains(err.Error(), `state "h0p0s0a1"`) {
			t.Fatalf("iteration %d: Validate reported %q, want the lexically-first defective state h0p0s0a1", i, err)
		}
	}
}

// TestStateKeyBuckets pins the discretisation on hand-built views: the
// learned table's state space is part of the file format (keys appear in
// serialised tables), so bucket boundaries must not drift silently.
func TestStateKeyBuckets(t *testing.T) {
	v := benchView(t)

	base := StateKey(&v)
	if StateKey(&v) != base {
		t.Fatal("StateKey not deterministic on an identical view")
	}

	// Thermal: pushing the die to the throttle point lands in bucket 0.
	hot := v.Clone()
	hot.TempC = hot.ThrottleC
	if !strings.HasPrefix(StateKey(&hot), "h0") {
		t.Errorf("die at throttle: key %q, want h0 prefix", StateKey(&hot))
	}
	cool := v.Clone()
	cool.TempC = cool.ThrottleC - cool.MarginC - 50
	if !strings.HasPrefix(StateKey(&cool), "h2") {
		t.Errorf("cold die: key %q, want h2 prefix", StateKey(&cool))
	}

	// Power: a zeroed budget is bucket 0, an absurd one bucket 3.
	broke := v.Clone()
	broke.DynBudgetMW = 0
	if !strings.Contains(StateKey(&broke), "p0") {
		t.Errorf("zero budget: key %q, want p0", StateKey(&broke))
	}
	rich := v.Clone()
	rich.DynBudgetMW = 1e12
	if !strings.Contains(StateKey(&rich), "p3") {
		t.Errorf("huge budget: key %q, want p3", StateKey(&rich))
	}

	// Slack: latencies beyond every budget are bucket 0; no running DNNs
	// reports full slack.
	late := v.Clone()
	for i := range late.Apps {
		late.Apps[i].AvgLatency = 10
	}
	if !strings.Contains(StateKey(&late), "s0") {
		t.Errorf("all-missing: key %q, want s0", StateKey(&late))
	}
	idle := v.Clone()
	for i := range idle.Apps {
		idle.Apps[i].Running = false
	}
	if !strings.Contains(StateKey(&idle), "s3") || !strings.HasSuffix(StateKey(&idle), "a0") {
		t.Errorf("no running DNNs: key %q, want s3…a0", StateKey(&idle))
	}

	// App count: the bench view runs three DNNs.
	if !strings.HasSuffix(base, "a3") {
		t.Errorf("bench view key %q, want a3 suffix (three running DNNs)", base)
	}
}

// TestLearnedPolicyDelegates: a learned policy must produce, plan for
// plan, exactly what its selected arm produces — delegation, not
// imitation. The test table forces a known arm for the bench view's state
// and a different fallback, exercising both lookup paths.
func TestLearnedPolicyDelegates(t *testing.T) {
	v := benchView(t)
	key := StateKey(&v)

	tab := trainedTestTable(key)
	pol, err := NewLearnedPolicy("learned:test", tab)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewPolicy("maxaccuracy")
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := pol.Plan(v.Clone()), want.Plan(v.Clone()); !reflect.DeepEqual(got, exp) {
		t.Fatalf("learned plan diverges from its arm:\n got %v\nwant %v", got, exp)
	}

	// An unseen state delegates to the fallback (minenergy here).
	idle := v.Clone()
	idle.TempC = idle.ThrottleC // h0…, not in the table
	fb, err := NewPolicy("minenergy")
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := pol.Plan(idle.Clone()), fb.Plan(idle.Clone()); !reflect.DeepEqual(got, exp) {
		t.Fatalf("fallback plan diverges from the fallback arm:\n got %v\nwant %v", got, exp)
	}

	// The scratch path must agree with the public path.
	sp, ok := Policy(pol).(*learnedPolicy)
	if !ok {
		t.Fatal("learned policy lost its concrete type")
	}
	var sc planScratch
	vv := v.Clone()
	if got, exp := sp.planInto(&vv, &sc), want.Plan(v.Clone()); !reflect.DeepEqual(got, exp) {
		t.Fatalf("planInto diverges from Plan:\n got %v\nwant %v", got, exp)
	}
}

// TestNewPolicyParameterised: the "learned:<path>" registry form loads a
// table file, names the policy by its full parameterised key (what shard
// validation compares), and fails loudly on missing or corrupt files and
// unknown prefixes.
func TestNewPolicyParameterised(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	if err := trainedTestTable("h1p1s1a1").WriteFile(path); err != nil {
		t.Fatal(err)
	}

	name := "learned:" + path
	pol, err := NewPolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != name {
		t.Errorf("Name() = %q, want the full parameterised key %q", pol.Name(), name)
	}

	if _, err := NewPolicy("learned:" + filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing table file must fail to load")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPolicy("learned:" + bad); err == nil {
		t.Error("corrupt table file must fail to load")
	}
	if _, err := NewPolicy("mystery:arg"); err == nil || !strings.Contains(err.Error(), "parameterised") {
		t.Errorf("unknown prefix error %v should list parameterised families", err)
	}
}
