package rtm

import "github.com/emlrtm/emlrtm/internal/sim"

// maxAccuracyPolicy runs every DNN at the highest configuration that
// still meets its deadline — energy-blind. It is the quality-first end of
// the policy spectrum (Taylor et al.'s "most accurate model that fits the
// budget" selection rule): accuracy floors are treated as soft minima to
// exceed, not targets to hit cheaply, and within a placement the policy
// clocks as fast as the thermal budget allows so the largest possible
// level fits. Latency deadlines, accelerator duty/memory and the thermal
// power budget still bind — the policy is aggressive, not unsafe.
type maxAccuracyPolicy struct{ epochKeyed }

// planCacheID implements cacheKeyed.
func (maxAccuracyPolicy) planCacheID() string { return "maxaccuracy" }

// Name implements Policy.
func (maxAccuracyPolicy) Name() string { return "maxaccuracy" }

// Plan implements Policy.
func (maxAccuracyPolicy) Plan(v View) []Assignment {
	return pooledPlan(&v, maxAccuracyAssign)
}

// planInto implements scratchPlanner: the Manager's allocation-free path.
func (maxAccuracyPolicy) planInto(v *View, sc *planScratch) []Assignment {
	return planWith(v, sc, maxAccuracyAssign)
}

func maxAccuracyAssign(v *View, st *planState, sc *planScratch, a sim.AppInfo) Assignment {
	req := v.Req(a)
	// Pass 1: the highest feasible level, ranked accuracy-first. For each
	// (cluster, cores, level) the fastest OPP that fits both the latency
	// budget and the remaining power budget is taken — racing upward in
	// frequency buys headroom for bigger levels, and the policy does not
	// care what that costs in energy.
	sc.levels = descendingLevels(a, sc.levels)
	var best candidate
	found := false
	for ci, cl := range v.Platform.Clusters {
		sc.opts = coreOptions(cl, st, ci, sc.opts)
		for _, cores := range sc.opts {
			for _, level := range sc.levels {
				for oppIdx := len(cl.OPPs) - 1; oppIdx >= st.oppNeed[ci]; oppIdx-- {
					c, ok := evalCandidate(st, a, req, cl, ci, cores, level, oppIdx, false)
					if !ok {
						continue
					}
					// Highest-frequency feasible OPP for this point wins.
					if !found || c.accuracy > best.accuracy ||
						(c.accuracy == best.accuracy && c.latencyS < best.latencyS) {
						best = c
						found = true
					}
					break
				}
			}
		}
	}
	if found {
		pass := 1
		if best.accuracy < req.MinAccuracy {
			pass = 2 // even the best feasible level sits below the floor
		}
		return st.commit(a, best, pass)
	}
	// Pass 3: best effort — minimise latency under the power budget only.
	if c, ok := heuristicBest(v, st, sc, a, req, sc.levels, true); ok {
		return st.commit(a, c, 3)
	}
	return park(v, st, a)
}
