package rtm

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/sim"
)

// Governor is a conventional per-cluster DVFS policy of the kind the paper
// cites as prior art (Section V: "a variety of online resource management
// approaches have been proposed, such as DVFS"): it sees only hardware
// load, not application requirements. Governors serve as the no-RTM
// baseline (ablation A3) and as the device-layer fallback for clusters the
// manager has no DNN placed on.
type Governor interface {
	Name() string
	// Decide returns the next OPP index given the cluster's utilisation
	// (0..1), its current OPP index, and the ladder length.
	Decide(util float64, cur, nOPPs int) int
}

// PerformanceGovernor pins the maximum frequency.
type PerformanceGovernor struct{}

// Name implements Governor.
func (PerformanceGovernor) Name() string { return "performance" }

// Decide implements Governor.
func (PerformanceGovernor) Decide(util float64, cur, n int) int { return n - 1 }

// PowersaveGovernor pins the minimum frequency.
type PowersaveGovernor struct{}

// Name implements Governor.
func (PowersaveGovernor) Name() string { return "powersave" }

// Decide implements Governor.
func (PowersaveGovernor) Decide(util float64, cur, n int) int { return 0 }

// OndemandGovernor raises the frequency to maximum when utilisation
// crosses UpThreshold and steps down while below DownThreshold — the
// classic Linux ondemand shape.
type OndemandGovernor struct {
	UpThreshold   float64 // default 0.80
	DownThreshold float64 // default 0.30
}

// Name implements Governor.
func (OndemandGovernor) Name() string { return "ondemand" }

// Decide implements Governor.
func (g OndemandGovernor) Decide(util float64, cur, n int) int {
	up, down := g.UpThreshold, g.DownThreshold
	if up == 0 {
		up = 0.80
	}
	if down == 0 {
		down = 0.30
	}
	switch {
	case util >= up:
		return n - 1
	case util < down && cur > 0:
		return cur - 1
	}
	return cur
}

// ConservativeGovernor steps one OPP at a time in both directions — the
// Linux "conservative" shape, gentler on shared-domain co-residents than
// ondemand's jump-to-max.
type ConservativeGovernor struct {
	UpThreshold   float64 // default 0.80
	DownThreshold float64 // default 0.30
}

// Name implements Governor.
func (ConservativeGovernor) Name() string { return "conservative" }

// Decide implements Governor.
func (g ConservativeGovernor) Decide(util float64, cur, n int) int {
	up, down := g.UpThreshold, g.DownThreshold
	if up == 0 {
		up = 0.80
	}
	if down == 0 {
		down = 0.30
	}
	switch {
	case util >= up && cur < n-1:
		return cur + 1
	case util < down && cur > 0:
		return cur - 1
	}
	return cur
}

// GovernorController drives every cluster with a Governor and nothing
// else: no task mapping, no model scaling. It is the paper's "existing
// approaches optimise hardware behaviour ... application requirements are
// not addressed" baseline.
type GovernorController struct {
	gov Governor
	// PerCluster overrides the governor for specific clusters.
	PerCluster map[string]Governor
}

// NewGovernorController builds the baseline controller.
func NewGovernorController(g Governor) *GovernorController {
	return &GovernorController{gov: g, PerCluster: map[string]Governor{}}
}

// OnTick implements sim.Controller.
func (c *GovernorController) OnTick(e *sim.Engine) {
	for _, cl := range e.Platform().Clusters {
		info, err := e.Cluster(cl.Name)
		if err != nil {
			continue
		}
		g := c.gov
		if o, ok := c.PerCluster[cl.Name]; ok {
			g = o
		}
		next := g.Decide(info.Util, info.OPPIndex, len(cl.OPPs))
		if next != info.OPPIndex {
			// The engine validates the index; a failure here is a logic
			// error in the governor.
			if err := e.SetOPP(cl.Name, next); err != nil {
				panic(fmt.Sprintf("rtm: governor actuation: %v", err))
			}
		}
	}
}

// OnEvent implements sim.Controller (governors are event-blind).
func (c *GovernorController) OnEvent(e *sim.Engine, ev sim.Event) {}

var _ sim.Controller = (*GovernorController)(nil)
