package rtm

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

func asg(app string, level int) Assignment {
	return Assignment{App: app, Level: level, Placement: sim.Placement{Cluster: "a15", Cores: 4}}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	c.put([]byte("a"), []Assignment{asg("a", 1)})
	c.put([]byte("b"), []Assignment{asg("b", 2)})
	if _, ok := c.get([]byte("a")); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recently used; inserting c must evict b.
	c.put([]byte("c"), []Assignment{asg("c", 3)})
	if _, ok := c.get([]byte("b")); ok {
		t.Fatal("b not evicted (LRU order broken)")
	}
	if _, ok := c.get([]byte("a")); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if got, ok := c.get([]byte("c")); !ok || got[0].App != "c" {
		t.Fatalf("c lookup = %v, %v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
}

func TestPlanCacheRePutRefreshes(t *testing.T) {
	c := NewPlanCache(2)
	c.put([]byte("a"), []Assignment{asg("a", 1)})
	c.put([]byte("b"), []Assignment{asg("b", 1)})
	// Re-putting a refreshes its recency and contents.
	c.put([]byte("a"), []Assignment{asg("a", 4)})
	c.put([]byte("c"), []Assignment{asg("c", 1)}) // must evict b
	if _, ok := c.get([]byte("b")); ok {
		t.Fatal("b survived; re-put did not refresh a's recency")
	}
	if got, ok := c.get([]byte("a")); !ok || got[0].Level != 4 {
		t.Fatalf("a = %v, %v; re-put did not update contents", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPlanCacheCopiesOnPut(t *testing.T) {
	c := NewPlanCache(4)
	key := []byte("k")
	plan := []Assignment{asg("a", 3)}
	c.put(key, plan)
	// Vandalising the caller's slices must not reach the cached entry.
	plan[0].Level = 1
	key[0] = 'x'
	got, ok := c.get([]byte("k"))
	if !ok || got[0].Level != 3 {
		t.Fatalf("cached plan = %v, %v; put did not copy", got, ok)
	}
}

// reuseScenario is a dynamic managed run shared by the elision and
// equivalence tests: two DNNs with real contention, a render app arriving
// mid-run, an ambient jump driving thermal pressure, and a requirement
// change — every replan trigger the manager has.
func reuseScenario(t *testing.T, pol Policy, noReuse bool) (*Manager, sim.Report) {
	t.Helper()
	prof := perf.UniformProfile("reuse", 7_000_000, 7<<20, perf.PaperAccuracies, nil)
	apps := []sim.App{
		{
			Name: "dnn1", Kind: sim.KindDNN, Profile: prof, Level: 4,
			PeriodS: 0.040, ModelBytes: 7 << 20,
			Placement: sim.Placement{Cluster: "npu"},
		},
		{
			Name: "dnn2", Kind: sim.KindDNN, Profile: prof, Level: 4,
			PeriodS: 1.0 / 60, ModelBytes: 7 << 20, StartS: 5,
			Placement: sim.Placement{Cluster: "cpu-big", Cores: 4},
		},
		{
			Name: "vr", Kind: sim.KindRender, Util: 0.75, StartS: 12,
			Placement: sim.Placement{Cluster: "gpu"},
		},
	}
	mgr := NewManager(map[string]Requirement{
		"dnn1": {MinAccuracy: 0.70, Priority: 1},
		"dnn2": {MinAccuracy: 0.70, Priority: 2},
	})
	mgr.SetPolicy(pol)
	mgr.NoPlanReuse = noReuse
	hot, relaxed := false, false
	nextForce := 2.0
	ctrl := ctrlFuncs{
		tick: func(e *sim.Engine) {
			if !hot && e.Now() >= 16 {
				hot = true
				e.SetAmbient(40)
			}
			if !relaxed && e.Now() >= 22 {
				relaxed = true
				mgr.SetRequirement("dnn2", Requirement{MinAccuracy: 0.60, Priority: 2})
			}
			// Force a replan every 2 s regardless of pending state: this is
			// the redundant-work pattern elision exists for, and it runs
			// identically in both arms so Plans() stays comparable.
			if e.Now() >= nextForce {
				nextForce += 2
				mgr.Replan(e)
			}
			mgr.OnTick(e)
		},
		event: func(e *sim.Engine, ev sim.Event) { mgr.OnEvent(e, ev) },
	}
	e, err := sim.New(sim.Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       apps,
		Controller: ctrl,
		TickS:      0.25,
		LogEvents:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	return mgr, e.Report()
}

func testPolicies(t *testing.T) map[string]func() Policy {
	t.Helper()
	mk := func(name string) func() Policy {
		return func() Policy {
			p, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	learned := func() Policy {
		table := NewLearnedTable([]string{"heuristic", "minenergy"})
		table.Observe("h2p1s3a1", 0, 0.1)
		table.Observe("h2p1s3a2", 1, 0.2)
		table.Observe("h1p1s3a2", 1, 0.1)
		table.Finalise()
		p, err := NewLearnedPolicy("learned:test", table)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return map[string]func() Policy{
		"heuristic":   mk("heuristic"),
		"maxaccuracy": mk("maxaccuracy"),
		"minenergy":   mk("minenergy"),
		"learned":     learned,
	}
}

// TestPlanReuseEquivalence is the tentpole's correctness property at the
// manager layer: with reuse on (elision + memo cache) the full simulation
// report — every event, stat and temperature — must be byte-identical to
// planning every replan fresh, for every built-in policy and a trained
// learned policy.
func TestPlanReuseEquivalence(t *testing.T) {
	for name, mk := range testPolicies(t) {
		t.Run(name, func(t *testing.T) {
			mgrOff, repOff := reuseScenario(t, mk(), true)
			mgrOn, repOn := reuseScenario(t, mk(), false)

			off, err := json.Marshal(repOff)
			if err != nil {
				t.Fatal(err)
			}
			on, err := json.Marshal(repOn)
			if err != nil {
				t.Fatal(err)
			}
			if string(on) != string(off) {
				t.Error("reuse-on report differs from reuse-off report")
			}
			if mgrOn.Plans() != mgrOff.Plans() {
				t.Errorf("plans %d with reuse, %d without (must match: elided plans still count)",
					mgrOn.Plans(), mgrOff.Plans())
			}
			offStats := mgrOff.PlanStats()
			if offStats.Elided != 0 || offStats.CacheHits != 0 || offStats.CacheMisses != 0 {
				t.Errorf("NoPlanReuse manager reused work: %+v", offStats)
			}
			onStats := mgrOn.PlanStats()
			if onStats.Elided == 0 {
				t.Errorf("no replans elided in a 30 s steady-heavy run: %+v", onStats)
			}
		})
	}
}

// TestReplanElisionSavesPolicyCalls pins the mechanism (not just the
// outcome): a counting policy must be invoked strictly fewer times with
// reuse on, while the manager reports the same number of replans.
func TestReplanElisionSavesPolicyCalls(t *testing.T) {
	calls := func(noReuse bool) (int, int) {
		cp := &countingHeuristic{}
		mgr, _ := reuseScenario(t, cp, noReuse)
		return cp.calls, mgr.Plans()
	}
	offCalls, offPlans := calls(true)
	onCalls, onPlans := calls(false)
	if onPlans != offPlans {
		t.Fatalf("plans diverged: %d vs %d", onPlans, offPlans)
	}
	if onCalls >= offCalls {
		t.Fatalf("reuse saved no policy invocations: %d on vs %d off", onCalls, offCalls)
	}
}

// countingHeuristic wraps the heuristic with an invocation counter. It
// embeds epochKeyed and forwards planCacheID, so it participates in both
// reuse tiers exactly like the real built-in.
type countingHeuristic struct {
	epochKeyed
	calls int
	inner heuristicPolicy
}

func (p *countingHeuristic) Name() string { return "counting-heuristic" }

func (p *countingHeuristic) planCacheID() string { return "counting-heuristic" }

func (p *countingHeuristic) Plan(v View) []Assignment {
	p.calls++
	return p.inner.Plan(v)
}

func (p *countingHeuristic) planInto(v *View, sc *planScratch) []Assignment {
	p.calls++
	return p.inner.planInto(v, sc)
}

// TestThirdPartyPolicyNeverReused: a policy outside this package's sealed
// interfaces must plan fresh on every replan — elision and memoisation
// are opt-in for exactly-known read-sets only.
func TestThirdPartyPolicyNeverReused(t *testing.T) {
	mgr, _ := reuseScenario(t, externalPolicy{}, false)
	s := mgr.PlanStats()
	if s.Elided != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("third-party policy was reused: %+v", s)
	}
	if s.Plans == 0 {
		t.Fatal("scenario never planned")
	}
}

// externalPolicy stands in for a third-party Policy: it deliberately does
// not (and cannot, outside the package) implement the sealed seams.
type externalPolicy struct{}

func (externalPolicy) Name() string { return "external" }

func (externalPolicy) Plan(v View) []Assignment {
	return heuristicPolicy{}.Plan(v)
}

// TestMissReplanBackoff is the table-driven contract for the
// MissReplanThreshold × MissReplanBackoffS interaction: when a tick
// replans on accumulated misses, how the backoff window suppresses and
// defers miss-triggered replans, and how every replan resets the counter.
func TestMissReplanBackoff(t *testing.T) {
	type step struct {
		at      float64 // advance the engine to this time
		misses  int     // deadline misses injected before the tick
		replans bool    // whether the tick must replan
	}
	cases := []struct {
		name      string
		threshold int
		backoff   float64
		steps     []step
	}{
		{
			name:      "below threshold never replans",
			threshold: 2, backoff: 0,
			steps: []step{{at: 1, misses: 1}, {at: 2, misses: 0}},
		},
		{
			name:      "threshold met outside backoff replans",
			threshold: 2, backoff: 0,
			steps: []step{{at: 1, misses: 2, replans: true}},
		},
		{
			name:      "threshold met inside backoff window is deferred",
			threshold: 2, backoff: 2,
			steps: []step{
				// lastMissPlan starts at 0: t=1 is inside the window.
				{at: 1, misses: 2},
				// Misses are retained, not dropped: once the window passes
				// the deferred replan fires without new misses.
				{at: 2.5, misses: 0, replans: true},
			},
		},
		{
			name:      "replan resets the miss counter",
			threshold: 2, backoff: 0,
			steps: []step{
				{at: 1, misses: 2, replans: true},
				{at: 2, misses: 1},                // one fresh miss < threshold
				{at: 3, misses: 1, replans: true}, // second fresh miss
			},
		},
		{
			name:      "backoff rate-limits a miss storm",
			threshold: 1, backoff: 3,
			steps: []step{
				{at: 3, misses: 1, replans: true}, // 3-0 ≥ 3
				{at: 4, misses: 1},                // 4-3 < 3: suppressed
				{at: 6, misses: 0, replans: true}, // 6-3 ≥ 3: deferred fires
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A minimal engine supplies the clock and thermal reads OnTick
			// needs; the manager is driven by hand, not as the controller,
			// so only the injected misses trigger replans.
			e, err := sim.New(sim.Config{
				Platform: hw.OdroidXU3(),
				Apps:     []sim.App{dnn("d", "a15", 4, 0.5)},
				TickS:    0.25,
			})
			if err != nil {
				t.Fatal(err)
			}
			mgr := NewManager(nil)
			mgr.MissReplanThreshold = tc.threshold
			mgr.MissReplanBackoffS = tc.backoff
			for i, s := range tc.steps {
				if err := e.Run(s.at); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < s.misses; j++ {
					mgr.OnEvent(e, sim.Event{TimeS: e.Now(), Kind: sim.EvDeadlineMiss})
				}
				before := mgr.Plans()
				mgr.OnTick(e)
				if got := mgr.Plans() > before; got != s.replans {
					t.Fatalf("step %d (t=%.1f): replanned=%v, want %v", i, s.at, got, s.replans)
				}
			}
		})
	}
}

// TestLearnedPlanCacheIDContentHashed: two byte-identical tables share a
// cache identity; different tables do not — the property that lets fleet
// workers share one cache across scenarios running the same trained
// table, without ever mixing plans across different tables.
func TestLearnedPlanCacheIDContentHashed(t *testing.T) {
	build := func(cost float64) *learnedPolicy {
		table := NewLearnedTable([]string{"heuristic", "minenergy"})
		table.Observe("h2p1s3a1", 0, cost)
		table.Finalise()
		p, err := NewLearnedPolicy("learned:x", table)
		if err != nil {
			t.Fatal(err)
		}
		return p.(*learnedPolicy)
	}
	a, b, c := build(0.1), build(0.1), build(0.9)
	if a.planCacheID() == "" {
		t.Fatal("no cache ID for a valid table")
	}
	if a.planCacheID() != b.planCacheID() {
		t.Error("byte-identical tables got different cache IDs")
	}
	if a.planCacheID() == c.planCacheID() {
		t.Error("different tables share a cache ID")
	}
	if a.planCacheID() != a.planCacheID() {
		t.Error("cache ID not stable")
	}
}

// TestManagerPlanKeyDistinguishesViews: canonical keys must differ when
// any planning-visible input differs, and agree for an identical view.
func TestManagerPlanKeyDistinguishesViews(t *testing.T) {
	mgr := NewManager(map[string]Requirement{"d": {MaxLatencyS: 0.060, Priority: 1}})
	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []sim.App{dnn("d", "a15", 4, 0.060)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	v := mgr.buildView(e)
	ck := mgr.policy.(cacheKeyed)
	key1 := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck))
	key2 := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck))
	if key1 != key2 {
		t.Fatal("identical views produced different keys")
	}
	budget := v.DynBudgetMW
	v.DynBudgetMW = budget * 0.5
	if got := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck)); got == key1 {
		t.Error("budget change did not change the key")
	}
	v.DynBudgetMW = budget
	origLevel := v.Apps[0].Level
	v.Apps[0].Level = (origLevel + 1) % 5
	if got := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck)); got == key1 {
		t.Error("level change did not change the key")
	}
	v.Apps[0].Level = origLevel
	if got := fmt.Sprintf("%x", mgr.buildPlanKey(&v, "otherpolicy", ck)); got == key1 {
		t.Error("policy identity change did not change the key")
	}
}
