package rtm

import (
	"encoding/binary"
	"math"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// This file is the plan-reuse layer: the fingerprint seam behind replan
// elision and the exact-key memo cache behind plan memoisation. Both tiers
// exist because a fleet sweep replans thousands of times per scenario and
// revisits the same planning states constantly — paying for a decision
// once and reusing it while the state class holds is the same amortisation
// the paper's RTM applies to knob actuation.
//
// Correctness rests on two sealed, package-internal interfaces. A policy
// participates only by implementing them, which keeps the reuse tiers
// opt-in for the built-ins (whose read-sets are known exactly) and
// automatically sealed off for third-party policies: an external Policy
// cannot implement an unexported interface, so it always plans fresh.

// PlanStats summarises one manager's plan-reuse behaviour.
type PlanStats struct {
	// Plans is the total number of Replan calls (elided ones included —
	// an elided replan still counts as a plan, exactly as before).
	Plans int `json:"plans"`
	// Elided counts replans skipped entirely because the planning
	// fingerprint was unchanged since the last actuated fixed point.
	Elided int `json:"elided"`
	// CacheHits / CacheMisses count plan memo cache lookups on the
	// replans that were not elided.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
}

// Add accumulates other into s.
func (s *PlanStats) Add(other PlanStats) {
	s.Plans += other.Plans
	s.Elided += other.Elided
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
}

// DefaultPlanCacheCap bounds the manager-owned plan memo cache. Planning
// states recur heavily within a scenario and across a worker's scenario
// stream; a few thousand distinct (policy, platform, app-set, budget)
// states cover even a large fleet shard.
const DefaultPlanCacheCap = 4096

// planEntry is one cached plan in the LRU list.
type planEntry struct {
	key        string
	plan       []Assignment
	prev, next *planEntry
}

// PlanCache is a bounded exact-key LRU from canonical View keys to plans.
// It is NOT goroutine-safe: a cache belongs to one manager (or one fleet
// worker's scenario stream) at a time, mirroring how engines are owned.
// Entries are defensive copies in both directions — put copies the plan
// in, the manager copies hits out — so no caller can vandalise a cached
// plan.
type PlanCache struct {
	capacity   int
	entries    map[string]*planEntry
	head, tail *planEntry // head = most recently used
	hits       uint64
	misses     uint64
}

// NewPlanCache builds an empty cache holding at most capacity plans
// (capacity < 1 falls back to DefaultPlanCacheCap).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheCap
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[string]*planEntry),
	}
}

// Len reports how many plans are cached.
func (c *PlanCache) Len() int { return len(c.entries) }

// Stats reports lifetime lookup counters.
func (c *PlanCache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// get returns the cached plan for key and marks it most recently used.
// The returned slice is the cache's own storage: callers must copy before
// the entry can be evicted or must not retain it — the Manager copies
// into its scratch immediately.
func (c *PlanCache) get(key []byte) ([]Assignment, bool) {
	// map[string]([]byte) lookups compile to an allocation-free form.
	e, ok := c.entries[string(key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.plan, true
}

// put stores a copy of plan under a copy of key, evicting the least
// recently used entry when full. Re-putting an existing key refreshes its
// recency and contents.
func (c *PlanCache) put(key []byte, plan []Assignment) {
	if e, ok := c.entries[string(key)]; ok {
		e.plan = append(e.plan[:0], plan...)
		c.moveToFront(e)
		return
	}
	var e *planEntry
	if len(c.entries) >= c.capacity {
		// Recycle the evicted tail entry's storage for the new plan.
		e = c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		e.plan = e.plan[:0]
	} else {
		e = &planEntry{}
	}
	e.key = string(key)
	e.plan = append(e.plan, plan...)
	c.entries[e.key] = e
	c.pushFront(e)
}

func (c *PlanCache) moveToFront(e *planEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *PlanCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PlanCache) pushFront(e *planEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// ---- Sealed reuse seams ----

// fingerprinted is the sealed seam behind replan elision: a policy whose
// plan depends only on the engine's PlanEpoch-tracked state plus the
// manager's thermal stance returns a constant; a policy that additionally
// reads continuously-moving observables (the learned policy's thermal and
// slack buckets) folds them — discretised exactly as its Plan would see
// them — into the returned value. A policy that does not implement this
// interface is never elided.
type fingerprinted interface {
	dynFingerprint(e *sim.Engine, m *Manager) uint64
}

// cacheKeyed is the sealed seam behind plan memoisation: planCacheID
// names the policy's planning function identity (for the learned policy,
// a content hash of its table — two managers running byte-identical
// tables share cache entries; "" disables caching), and appendPlanKey
// appends whatever the policy reads beyond the canonical View fields the
// manager already serialises. A policy that does not implement this
// interface is never memoised. The view crosses this boundary by value:
// handing an interface callee a pointer into Replan's stack frame would
// force the whole view to escape, putting an allocation back on the
// replan hot path.
type cacheKeyed interface {
	planCacheID() string
	appendPlanKey(b []byte, v View) []byte
}

// epochKeyed is embedded by built-in policies whose Plan reads only the
// canonical View fields (requirements, platform, DynBudgetMW, per-app
// identity/placement/level/profile): it declares an empty dynamic
// fingerprint and key extension, opting the policy into both reuse tiers.
type epochKeyed struct{}

func (epochKeyed) dynFingerprint(*sim.Engine, *Manager) uint64 { return 0 }
func (epochKeyed) appendPlanKey(b []byte, _ View) []byte       { return b }

// planFingerprint is the elision key: comparable, cheap to build, and
// covering every input Replan feeds the policy — the engine's planning
// epoch, the manager's requirement and policy versions, the thermal
// stance (pressure and margins, which set DynBudgetMW together with the
// epoch-tracked ambient), and the policy's dynamic extension.
type planFingerprint struct {
	epoch      uint64
	reqsVer    uint64
	policyVer  uint64
	pressure   int
	baseMargin uint64
	pressStep  uint64
	dyn        uint64
}

// ---- Canonical View key construction ----

func appendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

func appendF64(b []byte, x float64) []byte {
	return appendU64(b, math.Float64bits(x))
}

// appendStr appends a length-prefixed string so concatenated fields can
// never alias each other.
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPlatformKey serialises every hw.Platform field planning can read.
// Platforms are static for an engine's lifetime, so the manager memoises
// the result per platform pointer.
func appendPlatformKey(b []byte, p *hw.Platform) []byte {
	b = appendStr(b, p.Name)
	b = binary.AppendUvarint(b, uint64(len(p.Clusters)))
	for _, cl := range p.Clusters {
		b = appendStr(b, cl.Name)
		b = appendStr(b, string(cl.Type))
		b = binary.AppendUvarint(b, uint64(cl.Cores))
		b = binary.AppendUvarint(b, uint64(len(cl.OPPs)))
		for _, opp := range cl.OPPs {
			b = appendF64(b, opp.FreqGHz)
			b = appendF64(b, opp.VoltageV)
		}
		b = appendF64(b, cl.Power.CeffMWPerV2GHz)
		b = appendF64(b, cl.Power.StaticMW)
		b = appendF64(b, cl.RateMACsPerSecGHz)
		b = appendF64(b, cl.ParallelAlpha)
		b = appendF64(b, cl.FixedOverheadS)
		b = appendF64(b, cl.CompanionUtil)
		b = appendStr(b, cl.CompanionName)
		b = appendU64(b, uint64(cl.MemBytes))
	}
	return b
}

// platformKey returns the memoised canonical platform serialisation. The
// cache is keyed by pointer: a manager binds one engine, and the fleet
// catalog hands out fresh (but content-identical) platform values per
// scenario, which the full content serialisation keeps collision-free
// across the shared per-worker plan cache.
func (m *Manager) platformKey(p *hw.Platform) []byte {
	if m.platKeyFor != p {
		m.platKeyBuf = appendPlatformKey(m.platKeyBuf[:0], p)
		m.platKeyFor = p
	}
	return m.platKeyBuf
}

// buildPlanKey serialises the canonical planning inputs of a view into the
// manager's reused key buffer: the policy identity, the power budget, the
// full platform content, every app's planning-visible state (in view
// order), every resolved DNN requirement, and the policy's own extension.
// Fields a built-in policy cannot read — the clock, temperatures, per-app
// statistics, cluster runtime state — are deliberately excluded: that is
// what makes recurring states collide and the cache hit.
func (m *Manager) buildPlanKey(v *View, id string, ck cacheKeyed) []byte {
	b := m.keyBuf[:0]
	b = appendStr(b, id)
	b = appendF64(b, v.DynBudgetMW)
	b = append(b, m.platformKey(v.Platform)...)
	// Cluster availability is planning-visible runtime state (offline
	// clusters get no candidates and trigger the park divert), so it joins
	// the key: a plan computed against one availability set must never be
	// served for another. Elision is already safe — fail/repair bump the
	// PlanEpoch inside the fingerprint.
	for ci := range v.Platform.Clusters {
		if v.ClusterOnline(ci) {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(v.Apps)))
	for i := range v.Apps {
		a := &v.Apps[i]
		b = appendStr(b, a.Name)
		b = binary.AppendUvarint(b, uint64(a.Kind))
		if a.Running {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendStr(b, a.Placement.Cluster)
		b = binary.AppendUvarint(b, uint64(a.Placement.Cores))
		b = binary.AppendUvarint(b, uint64(a.Level))
		b = appendF64(b, a.PeriodS)
		b = appendF64(b, a.Util)
		b = appendU64(b, uint64(a.ModelBytes))
		b = appendStr(b, a.Profile.Name)
		b = binary.AppendUvarint(b, uint64(len(a.Profile.Levels)))
		for _, l := range a.Profile.Levels {
			b = appendU64(b, uint64(l.MACs))
			b = appendF64(b, l.Accuracy)
			b = appendF64(b, l.Confidence)
			b = appendU64(b, uint64(l.MemBytes))
		}
		if a.Kind == sim.KindDNN {
			r := v.Req(*a)
			b = appendF64(b, r.MaxLatencyS)
			b = appendF64(b, r.MinAccuracy)
			b = appendU64(b, uint64(int64(r.Priority)))
		}
	}
	b = ck.appendPlanKey(b, *v)
	m.keyBuf = b
	return b
}
