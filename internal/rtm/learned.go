package rtm

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/emlrtm/emlrtm/internal/sim"
)

// This file is the learned side of the paper's "heuristic vs. learned
// managers" framing: a tabular policy that discretises the planning View
// into a small state and, per state, delegates the whole Plan to whichever
// registered base policy training found cheapest there — the adaptive
// model-selection shape of Marco et al., with base policies as the
// pre-built strategies. The table is trained offline (internal/fleet's
// trainer replays seeded fleet scenarios and scores each state/arm pair on
// a miss-rate + energy reward), serialised to JSON, and loaded at runtime
// through the parameterised registry name "learned:<table.json>" — so a
// trained policy threads through fleet sweeps, shard validation and the
// fleetsim CLI exactly like a built-in.

// LearnedTableVersion is the current table-file format; ReadLearnedTable
// rejects other versions instead of silently misreading arm indices.
const LearnedTableVersion = 1

// LearnedParamPrefix is the parameterised registry prefix a trained table
// is addressed by: "learned:<path.json>".
const LearnedParamPrefix = "learned"

// LearnedState is one discretised state's training record: per-arm visit
// counts and mean costs (index-aligned with LearnedTable.Arms) plus the
// greedy choice Finalise derived from them. Keeping the full per-arm
// statistics in the file — not just the argmin — is what makes a trained
// table inspectable: `policytrain` and humans can read how contested each
// state was.
type LearnedState struct {
	// Arm is the base policy Plan delegates to in this state.
	Arm string `json:"arm"`
	// Visits is how many training observations each arm received here.
	Visits []int `json:"visits"`
	// Cost is each arm's mean training cost here (lower is better).
	Cost []float64 `json:"cost"`
}

// LearnedTable is a trained state → base-policy selection table. It is the
// unit of serialisation: the trainer fills it with Observe, freezes it
// with Finalise, and WriteFile emits deterministic bytes (sorted state
// keys, shortest-round-trip floats) so the same training seed yields a
// byte-identical artifact.
type LearnedTable struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	// Arms lists the base policies the table selects among; every
	// per-state Visits/Cost slice is index-aligned with it. Arms must be
	// plain registry names (no "learned:" nesting).
	Arms []string `json:"arms"`
	// Fallback is the arm used for states never seen in training.
	Fallback string `json:"fallback"`
	// MissWeight and EnergyWeight record the reward the table was trained
	// on (cost = MissWeight·missRate + EnergyWeight·avgPowerW), so a table
	// file documents its own objective.
	MissWeight   float64 `json:"missWeight"`
	EnergyWeight float64 `json:"energyWeight"`
	// States maps StateKey strings to training records.
	States map[string]*LearnedState `json:"states"`
}

// NewLearnedTable builds an empty table over the given arms.
func NewLearnedTable(arms []string) *LearnedTable {
	return &LearnedTable{
		Version: LearnedTableVersion,
		Arms:    append([]string(nil), arms...),
		States:  map[string]*LearnedState{},
	}
}

// Observe folds one training observation — cost of running arm (index into
// Arms) through a scenario that visited state key — into the running
// per-state mean. Call order determines nothing but float accumulation
// order, so trainers must apply observations in a deterministic order.
func (t *LearnedTable) Observe(key string, arm int, cost float64) {
	st := t.States[key]
	if st == nil {
		st = &LearnedState{
			Visits: make([]int, len(t.Arms)),
			Cost:   make([]float64, len(t.Arms)),
		}
		t.States[key] = st
	}
	st.Visits[arm]++
	st.Cost[arm] += (cost - st.Cost[arm]) / float64(st.Visits[arm])
}

// Finalise freezes the greedy selection: Fallback becomes the arm with the
// lowest visit-weighted global mean cost, and each state's Arm the lowest-
// cost arm among those visited there (Fallback where none were). Ties
// break toward the lower arm index, and the global sums accumulate over
// sorted state keys — map-order float accumulation could flip a
// within-rounding-error fallback argmin between identical training runs,
// which the byte-identical-table contract cannot afford.
func (t *LearnedTable) Finalise() {
	keys := make([]string, 0, len(t.States))
	for k := range t.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	totalVisits := make([]int, len(t.Arms))
	totalCost := make([]float64, len(t.Arms))
	for _, k := range keys {
		st := t.States[k]
		for i, n := range st.Visits {
			totalVisits[i] += n
			totalCost[i] += float64(n) * st.Cost[i]
		}
	}
	fb := 0
	fbCost := math.Inf(1)
	for i := range t.Arms {
		if totalVisits[i] == 0 {
			continue
		}
		if c := totalCost[i] / float64(totalVisits[i]); c < fbCost {
			fb, fbCost = i, c
		}
	}
	t.Fallback = t.Arms[fb]
	//detlint:ordered each state's argmin is computed from that state alone; no cross-state accumulation
	for _, st := range t.States {
		best, bestCost := -1, math.Inf(1)
		for i, n := range st.Visits {
			if n > 0 && st.Cost[i] < bestCost {
				best, bestCost = i, st.Cost[i]
			}
		}
		if best < 0 {
			st.Arm = t.Fallback
		} else {
			st.Arm = t.Arms[best]
		}
	}
}

// Choose returns the arm for a state key: the trained greedy choice, or
// Fallback for states never seen in training.
func (t *LearnedTable) Choose(key string) string {
	if st := t.States[key]; st != nil {
		return st.Arm
	}
	return t.Fallback
}

// Validate checks a table is internally consistent — version, arm names,
// per-state slice alignment, finite costs — so a hand-edited or truncated
// file fails at load with a field-level message, not at plan time with a
// panic or a silently wrong delegation.
func (t *LearnedTable) Validate() error {
	if t.Version != LearnedTableVersion {
		return fmt.Errorf("rtm: learned table version %d, want %d", t.Version, LearnedTableVersion)
	}
	if len(t.Arms) == 0 {
		return fmt.Errorf("rtm: learned table has no arms")
	}
	armIdx := make(map[string]bool, len(t.Arms))
	for _, a := range t.Arms {
		if a == "" || strings.Contains(a, ":") {
			return fmt.Errorf("rtm: learned table arm %q must be a plain registry name", a)
		}
		if armIdx[a] {
			return fmt.Errorf("rtm: learned table arm %q listed twice", a)
		}
		armIdx[a] = true
	}
	if !armIdx[t.Fallback] {
		return fmt.Errorf("rtm: learned table fallback %q is not an arm (%v)", t.Fallback, t.Arms)
	}
	// Visit states in sorted key order: validation stops at the first bad
	// state, and map order would make *which* error a multi-defect table
	// reports vary run to run (detlint:rangemap surfaced this).
	keys := make([]string, 0, len(t.States))
	for k := range t.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := t.States[key]
		if st == nil {
			return fmt.Errorf("rtm: learned table state %q is null", key)
		}
		if !armIdx[st.Arm] {
			return fmt.Errorf("rtm: learned table state %q selects unknown arm %q", key, st.Arm)
		}
		if len(st.Visits) != len(t.Arms) || len(st.Cost) != len(t.Arms) {
			return fmt.Errorf("rtm: learned table state %q carries %d visit / %d cost entries, want %d (one per arm)",
				key, len(st.Visits), len(st.Cost), len(t.Arms))
		}
		for i, n := range st.Visits {
			if n < 0 {
				return fmt.Errorf("rtm: learned table state %q arm %q has negative visits", key, t.Arms[i])
			}
			if math.IsNaN(st.Cost[i]) || math.IsInf(st.Cost[i], 0) {
				return fmt.Errorf("rtm: learned table state %q arm %q has non-finite cost", key, t.Arms[i])
			}
		}
	}
	return nil
}

// MarshalBytes renders the table as deterministic indented JSON: map keys
// sort, floats use shortest-round-trip formatting, so identical tables are
// byte-identical files — the property the trainer's seed-determinism
// contract (and CI's cmp check) rests on.
func (t *LearnedTable) MarshalBytes() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// WriteFile validates and writes the table to path.
func (t *LearnedTable) WriteFile(path string) error {
	raw, err := t.MarshalBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ReadLearnedTable decodes and validates a table from JSON bytes.
func ReadLearnedTable(raw []byte) (*LearnedTable, error) {
	var t LearnedTable
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("rtm: decoding learned table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadLearnedTableFile reads and validates a table file from disk.
func ReadLearnedTableFile(path string) (*LearnedTable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rtm: reading learned table: %w", err)
	}
	t, err := ReadLearnedTable(raw)
	if err != nil {
		return nil, fmt.Errorf("rtm: %s: %w", path, err)
	}
	return t, nil
}

// ---- State discretisation ----

// State-space sizes. The buckets are deliberately coarse: with three base
// policies and a few hundred fleet workloads per training run, a small
// table fills densely; a fine one would train on single-digit visits per
// cell.
const (
	stateThermalBuckets = 3 // headroom to throttle: hot / warm / cool
	statePowerBuckets   = 4 // budget ÷ platform max dynamic power quartile-ish
	stateSlackBuckets   = 4 // worst deadline slack: missing / tight / ok / loose
	stateAppsCap        = 4 // running DNN count, capped
)

// StateKey discretises a planning View into the learned policy's tabular
// state: thermal-headroom bucket, power-budget ratio bucket, worst
// deadline-slack bucket, and running-DNN count. Identical Views map to
// identical keys, and the key depends only on View fields — both
// properties the Policy determinism contract needs.
//
// The key is compact ("h1p2s0a3") because it appears once per Plan call on
// the training hot path and as every map key of the serialised table.
//
//detlint:hotpath
func StateKey(v *View) string {
	var b [12]byte
	key := append(b[:0], 'h')
	key = strconv.AppendInt(key, int64(thermalBucket(v)), 10)
	key = append(key, 'p')
	key = strconv.AppendInt(key, int64(powerBucket(v)), 10)
	key = append(key, 's')
	key = strconv.AppendInt(key, int64(slackBucket(v)), 10)
	key = append(key, 'a')
	key = strconv.AppendInt(key, int64(dnnCount(v)), 10)
	return string(key)
}

// thermalBucket classifies the headroom between the die and the effective
// throttle point (margin included): <3 °C hot, <10 °C warm, else cool.
func thermalBucket(v *View) int {
	return thermalBucketOf(v.ThrottleC - v.MarginC - v.TempC)
}

// thermalBucketOf is the headroom → bucket mapping shared by the View
// path and the live-engine fingerprint path; both must discretise
// identically or elision could reuse a plan the policy would not repeat.
func thermalBucketOf(headC float64) int {
	switch {
	case headC < 3:
		return 0
	case headC < 10:
		return 1
	default:
		return 2
	}
}

// powerBucket classifies the thermal power budget relative to the
// platform's maximum dynamic draw (every cluster flat out): the same
// absolute budget means very different planning freedom on a 5 W board
// and a 15 W SoC.
func powerBucket(v *View) int {
	maxDyn := 0.0
	for _, cl := range v.Platform.Clusters {
		maxDyn += dynPowerMW(cl, cl.MaxOPP(), cl.Cores, 1)
	}
	if maxDyn <= 0 {
		return statePowerBuckets - 1
	}
	switch r := v.DynBudgetMW / maxDyn; {
	case r < 0.25:
		return 0
	case r < 0.5:
		return 1
	case r < 1:
		return 2
	default:
		return 3
	}
}

// slackBucket classifies the worst relative deadline slack across running
// DNNs, judged on each app's observed average latency: negative slack
// (missing) is 0, under a quarter of the budget left is 1, under 60% is
// 2, else 3. A view with no running DNNs reports full slack.
func slackBucket(v *View) int {
	worst := math.Inf(1)
	for i := range v.Apps {
		a := &v.Apps[i]
		if !a.Running || a.Kind != sim.KindDNN {
			continue
		}
		budget := v.Req(*a).MaxLatencyS
		if budget <= 0 {
			continue
		}
		if slack := (budget - a.AvgLatency) / budget; slack < worst {
			worst = slack
		}
	}
	return slackBucketOf(worst)
}

// slackBucketOf maps a worst relative slack to its bucket (shared with
// the live-engine fingerprint path, like thermalBucketOf).
func slackBucketOf(worst float64) int {
	switch {
	case math.IsInf(worst, 1):
		return stateSlackBuckets - 1
	case worst < 0:
		return 0
	case worst < 0.25:
		return 1
	case worst < 0.6:
		return 2
	default:
		return 3
	}
}

// dnnCount counts running DNN apps, capped at stateAppsCap.
func dnnCount(v *View) int {
	n := 0
	for i := range v.Apps {
		if v.Apps[i].Running && v.Apps[i].Kind == sim.KindDNN {
			n++
		}
	}
	if n > stateAppsCap {
		n = stateAppsCap
	}
	return n
}

// ---- The runtime policy ----

// learnedPolicy delegates each Plan, whole, to the base policy its table
// selects for the current discretised state. Delegating the entire plan —
// rather than learning knob settings directly — keeps every plan the
// learned policy emits inside the feasibility envelope the base policies
// already guarantee (ledger bookkeeping, thermal budget, memory), so the
// learner can only ever choose *among* safe strategies, never invent an
// unsafe one.
type learnedPolicy struct {
	name  string
	table *LearnedTable
	arms  map[string]Policy
}

// learnedTableCache memoises successfully loaded table files by path
// (sync.Map: written once per path, read per policy resolution). A fleet
// run resolves its policy by name once per scenario, so an uncached
// loader would re-read, re-parse and re-validate the file millions of
// times on the hot path — and, worse, a file edited mid-run would split
// one sweep across two different tables, breaking the bit-identical-at-
// any-worker-count contract. First successful load wins for the process
// lifetime; load *errors* are not cached, so a missing file can be fixed
// and retried.
var learnedTableCache sync.Map

// LoadLearnedPolicy reads a trained table file and wraps it as a Policy
// named "learned:<path>" — the same string the parameterised registry
// resolves, so Result.Policy fields and shard validation round-trip it.
// Tables are cached by path for the process lifetime (see
// learnedTableCache); the returned Policy is fresh per call.
func LoadLearnedPolicy(path string) (Policy, error) {
	t, ok := learnedTableCache.Load(path)
	if !ok {
		loaded, err := ReadLearnedTableFile(path)
		if err != nil {
			return nil, err
		}
		// LoadOrStore keeps the first stored table on a racing load, so
		// every concurrent resolver still plans from one table.
		t, _ = learnedTableCache.LoadOrStore(path, loaded)
	}
	// Cached tables were validated at load; skip the O(states×arms)
	// re-validation a per-scenario resolution would otherwise repeat.
	return newLearnedPolicy(LearnedParamPrefix+":"+path, t.(*LearnedTable))
}

// NewLearnedPolicy validates an in-memory table and wraps it as a Policy
// under the given registry name. Trainers use it to evaluate a freshly
// trained table without a file round-trip.
func NewLearnedPolicy(name string, t *LearnedTable) (Policy, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return newLearnedPolicy(name, t)
}

// newLearnedPolicy wraps an already-validated table. Arms are instantiated
// fresh per policy — never cached or shared — because third-party arms may
// carry per-instance state, and policy instances elsewhere in the system
// are one-per-scenario-run.
func newLearnedPolicy(name string, t *LearnedTable) (Policy, error) {
	arms := make(map[string]Policy, len(t.Arms))
	for _, a := range t.Arms {
		p, err := NewPolicy(a)
		if err != nil {
			return nil, fmt.Errorf("rtm: learned table arm: %w", err)
		}
		arms[a] = p
	}
	return &learnedPolicy{name: name, table: t, arms: arms}, nil
}

// Name implements Policy: the full parameterised registry key.
func (p *learnedPolicy) Name() string { return p.name }

// armFor resolves the base policy for a view's state.
func (p *learnedPolicy) armFor(v *View) Policy {
	return p.arms[p.table.Choose(StateKey(v))]
}

// Plan implements Policy.
func (p *learnedPolicy) Plan(v View) []Assignment {
	return p.armFor(&v).Plan(v)
}

// planInto implements scratchPlanner: state lookup is read-only, so the
// delegate's allocation-free path carries straight through and a manager
// running a learned policy keeps the PR 4 hot-path properties (modulo the
// state-key string itself).
func (p *learnedPolicy) planInto(v *View, sc *planScratch) []Assignment {
	arm := p.armFor(v)
	if sp, ok := arm.(scratchPlanner); ok {
		return sp.planInto(v, sc)
	}
	return arm.Plan(*v)
}

// ---- Plan-reuse seams ----
//
// The learned policy opts into both reuse tiers, but unlike the built-ins
// its plan depends on more than the epoch-tracked View: the thermal and
// slack buckets read continuously-moving observables (die temperature,
// per-app average latency). Elision therefore folds those buckets —
// discretised exactly as StateKey would see them — into the dynamic
// fingerprint, and memoisation keys on the chosen arm (plus a content
// hash of the table, so only byte-identical tables share entries).

// learnedIDCache memoises planCacheID per table pointer. Tables are
// immutable after load and shared process-wide (learnedTableCache), so
// hashing each one once is enough.
var learnedIDCache sync.Map

// planCacheID implements cacheKeyed: a content hash of the trained table,
// so two managers running byte-identical tables (however they were
// loaded) share plan cache entries, while different tables never collide.
// Returns "" — disabling memoisation — if the table fails to marshal.
func (p *learnedPolicy) planCacheID() string {
	if id, ok := learnedIDCache.Load(p.table); ok {
		return id.(string)
	}
	raw, err := p.table.MarshalBytes()
	if err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(raw)
	id := LearnedParamPrefix + "/" + strconv.FormatUint(h.Sum64(), 16)
	actual, _ := learnedIDCache.LoadOrStore(p.table, id)
	return actual.(string)
}

// appendPlanKey implements cacheKeyed: beyond the canonical View fields
// the manager serialises, the plan depends only on which arm the table
// selects — so the key appends the chosen arm name rather than the raw
// state key. Distinct states that resolve to the same arm then share
// cache entries, which is both correct (the arm fully determines the
// plan given the View) and strictly better for the hit rate.
func (p *learnedPolicy) appendPlanKey(b []byte, v View) []byte {
	return appendStr(b, p.table.Choose(StateKey(&v)))
}

// dynFingerprint implements fingerprinted: the thermal and slack buckets
// computed from live engine state, bit-for-bit as the View path would
// discretise them. The remaining StateKey inputs (power bucket, DNN
// count) are fully determined by epoch-tracked state plus the manager
// fields already in the fingerprint, so they need no re-derivation here.
func (p *learnedPolicy) dynFingerprint(e *sim.Engine, m *Manager) uint64 {
	margin := m.BaseMarginC + float64(m.Pressure())*m.PressureStepC
	tb := thermalBucketOf(e.ThrottleC() - margin - e.Temperature())
	worst := math.Inf(1)
	for i, n := 0, e.AppCount(); i < n; i++ {
		a := e.AppAt(i)
		if !a.Running || a.Kind != sim.KindDNN {
			continue
		}
		budget := m.Requirement(a.Name, a.PeriodS).MaxLatencyS
		if budget <= 0 {
			continue
		}
		if slack := (budget - a.AvgLatency) / budget; slack < worst {
			worst = slack
		}
	}
	sb := slackBucketOf(worst)
	return uint64(tb)<<8 | uint64(sb)
}

func init() {
	RegisterParam(LearnedParamPrefix, func(arg string) (Policy, error) {
		return LoadLearnedPolicy(arg)
	})
}
