package rtm

import (
	"fmt"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// markOffline flips the named cluster's availability bit in a view copy.
func markOffline(v *View, names ...string) {
	for i := range v.Clusters {
		for _, n := range names {
			if v.Clusters[i].Name == n {
				v.Clusters[i].Online = false
			}
		}
	}
}

// faultPolicies returns one instance of every planning strategy,
// including a learned policy over a small trained table.
func faultPolicies(t *testing.T) []Policy {
	t.Helper()
	var ps []Policy
	for _, name := range []string{"heuristic", "maxaccuracy", "minenergy"} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	lp, err := NewLearnedPolicy("learned:test", trainedTestTable("h1p1s1a1"))
	if err != nil {
		t.Fatal(err)
	}
	return append(ps, lp)
}

// Every policy must route around dead silicon: with cpu-big offline no
// assignment may target it, including for the app currently placed there.
func TestPoliciesSkipOfflineClusters(t *testing.T) {
	for _, p := range faultPolicies(t) {
		t.Run(p.Name(), func(t *testing.T) {
			v := benchView(t)
			markOffline(&v, "cpu-big")
			plan := p.Plan(v)
			if len(plan) == 0 {
				t.Fatal("empty plan")
			}
			for _, asg := range plan {
				if asg.Placement.Cluster == "cpu-big" {
					t.Fatalf("%s assigned %s to offline cpu-big (pass %d)", p.Name(), asg.App, asg.Pass)
				}
			}
		})
	}
}

// With every cluster offline a plan is still produced (degenerate park)
// and nothing panics — the edge the fleet generator never produces but a
// library user can.
func TestAllClustersOfflinePlansWithoutPanic(t *testing.T) {
	for _, p := range faultPolicies(t) {
		t.Run(p.Name(), func(t *testing.T) {
			v := benchView(t)
			for i := range v.Clusters {
				v.Clusters[i].Online = false
			}
			plan := p.Plan(v)
			if len(plan) == 0 {
				t.Fatal("empty plan with all clusters offline")
			}
		})
	}
}

// degradedPin picks the least-loaded online cluster able to host the app
// at its floor, and refuses when no online cluster qualifies.
func TestDegradedPin(t *testing.T) {
	v := benchView(t)
	st := newPlanState(&v)
	app := v.Apps[0] // dnn1, 7 MiB model
	if ci := degradedPin(st, app); ci < 0 || !st.online[ci] {
		t.Fatalf("degradedPin = %d with healthy platform", ci)
	}
	// All offline: nowhere to pin.
	vAll := benchView(t)
	for i := range vAll.Clusters {
		vAll.Clusters[i].Online = false
	}
	if ci := degradedPin(newPlanState(&vAll), app); ci != -1 {
		t.Fatalf("degradedPin = %d with all clusters offline, want -1", ci)
	}
	// CPU clusters need a free core and memory-capped accelerators a
	// level-1 fit; exhaust both (an uncapped accelerator always qualifies,
	// so take those offline) and no eligible host remains.
	st2 := newPlanState(&v)
	for ci, cl := range st2.clusters {
		switch {
		case cl.Type.IsAccelerator() && cl.MemBytes == 0:
			st2.online[ci] = false
		case cl.Type.IsAccelerator():
			st2.freeMem[ci] = 0
		default:
			st2.freeCores[ci] = 0
		}
	}
	big := app
	big.ModelBytes = 64 << 20 // level-1 slice larger than any freed memory
	if ci := degradedPin(st2, big); ci != -1 {
		t.Fatalf("degradedPin = %d with no seats, want -1", ci)
	}
}

// The memo-cache key must separate planning states that differ only in
// cluster availability: a plan computed on healthy hardware is not valid
// once a cluster is gone, and vice versa.
func TestPlanKeyIncludesAvailability(t *testing.T) {
	mgr := NewManager(map[string]Requirement{"d": {MaxLatencyS: 0.060, Priority: 1}})
	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []sim.App{dnn("d", "a15", 4, 0.060)},
		Controller: mgr,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	v := mgr.buildView(e)
	ck := mgr.policy.(cacheKeyed)
	healthy := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck))
	v.Clusters[0].Online = false
	if got := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck)); got == healthy {
		t.Error("availability change did not change the plan key")
	}
	v.Clusters[0].Online = true
	if got := fmt.Sprintf("%x", mgr.buildPlanKey(&v, ck.planCacheID(), ck)); got != healthy {
		t.Error("availability round-trip changed the plan key")
	}
}

// Manager in the loop across a fail/repair cycle: the app is rehosted
// during the window (tiny unhosted time), a recovery latency is recorded,
// and nothing is left unhosted at the end.
func TestManagerRecoversFromClusterFault(t *testing.T) {
	mgr := NewManager(map[string]Requirement{"d": {Priority: 1}})
	var failed, repaired bool
	ctrl := ctrlFuncs{
		tick: func(e *sim.Engine) {
			if !failed && e.Now() >= 2 {
				failed = true
				if err := e.SetClusterOnline("a15", false); err != nil {
					t.Error(err)
				}
			}
			if failed && !repaired && e.Now() >= 6 {
				repaired = true
				if err := e.SetClusterOnline("a15", true); err != nil {
					t.Error(err)
				}
			}
			mgr.OnTick(e)
		},
		event: func(e *sim.Engine, ev sim.Event) { mgr.OnEvent(e, ev) },
	}
	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []sim.App{dnn("d", "a15", 4, 0.5)},
		Controller: ctrl,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("app unhosted at end of run")
	}
	rep := e.Report()
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 1 {
		t.Fatalf("fails=%d repairs=%d", rep.ClusterFails, rep.ClusterRepairs)
	}
	// The fault-triggered replan moves the app in the same instant, so no
	// meaningful unhosted time accrues across the 4 s outage.
	if rep.UnhostedS > 0.5 {
		t.Fatalf("UnhostedS = %.2f across a handled fault, want ~0", rep.UnhostedS)
	}
	recs := mgr.FaultRecoveries()
	if len(recs) == 0 {
		t.Fatal("no recovery latency recorded")
	}
	for _, r := range recs {
		if r < 0 || r > 1 {
			t.Fatalf("recovery latency %.3f out of range", r)
		}
	}
}

// A repair landing inside the fault-replan backoff is deferred, not lost:
// the tick retry picks it up once the backoff expires.
func TestRepairDuringBackoffStillReplans(t *testing.T) {
	mgr := NewManager(map[string]Requirement{"d": {Priority: 1}})
	mgr.FaultReplanBackoffS = 3
	var failed, repaired bool
	ctrl := ctrlFuncs{
		tick: func(e *sim.Engine) {
			if !failed && e.Now() >= 2 {
				failed = true
				if err := e.SetClusterOnline("a15", false); err != nil {
					t.Error(err)
				}
			}
			// Repair 0.5 s after the fault, well inside the 3 s backoff.
			if failed && !repaired && e.Now() >= 2.5 {
				repaired = true
				if err := e.SetClusterOnline("a15", true); err != nil {
					t.Error(err)
				}
			}
			mgr.OnTick(e)
		},
		event: func(e *sim.Engine, ev sim.Event) { mgr.OnEvent(e, ev) },
	}
	e, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []sim.App{dnn("d", "a15", 4, 0.5)},
		Controller: ctrl,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("app unhosted at end of run")
	}
	rep := e.Report()
	if rep.ClusterRepairs != 1 {
		t.Fatalf("repairs=%d, want 1", rep.ClusterRepairs)
	}
}

// A cluster failing while the platform is under thermal pressure: both
// disturbance paths are active at once and the manager must neither panic
// nor let the die run to critical.
func TestFaultDuringThermalAlarm(t *testing.T) {
	plat := hw.FlagshipSoC()
	mgr := NewManager(map[string]Requirement{
		"d": {MaxLatencyS: 0.040, MinAccuracy: 0.70, Priority: 1},
	})
	app := dnn("d", "cpu-big", 4, 0.040)
	app.Profile = perf.UniformProfile("hot", 7_000_000, 7<<20, perf.PaperAccuracies, nil)
	app.ModelBytes = 12 << 20 // levels 3-4 exceed the NPU: high accuracy needs CPU/GPU
	var warmed, failed, repaired bool
	ctrl := ctrlFuncs{
		tick: func(e *sim.Engine) {
			if !warmed && e.Now() >= 4 {
				warmed = true
				e.SetAmbient(50) // push the die over the throttle point
			}
			if !failed && e.Now() >= 8 {
				failed = true
				if err := e.SetClusterOnline("cpu-big", false); err != nil {
					t.Error(err)
				}
			}
			if failed && !repaired && e.Now() >= 14 {
				repaired = true
				if err := e.SetClusterOnline("cpu-big", true); err != nil {
					t.Error(err)
				}
			}
			mgr.OnTick(e)
		},
		event: func(e *sim.Engine, ev sim.Event) { mgr.OnEvent(e, ev) },
	}
	e, err := sim.New(sim.Config{
		Platform:   plat,
		Apps:       []sim.App{app},
		Controller: ctrl,
		TickS:      0.25,
		LogEvents:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("app unhosted at end of run")
	}
	rep := e.Report()
	if rep.OverCriticalS > 0 {
		t.Fatalf("critical temperature violated for %.2fs during fault", rep.OverCriticalS)
	}
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 1 {
		t.Fatalf("fails=%d repairs=%d", rep.ClusterFails, rep.ClusterRepairs)
	}
}
