package experiments

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/trace"
)

// TrainResult is the outcome of the Fig 3 training procedure and the
// Fig 4(b) evaluation.
type TrainResult struct {
	Model    *dyndnn.Model
	Report   *dyndnn.TrainReport
	Evals    []dyndnn.EvalResult
	Profile  perf.ModelProfile // measured profile for downstream experiments
	Fig4b    *trace.Table
	Prefixes bool // earlier-group weights bit-identical across steps
}

// TrainDynamic runs the paper's incremental training (Fig 3) on the
// synthetic dataset and evaluates every configuration (Fig 4(b)): mean
// top-1 with per-class standard deviation (the error bars) and mean
// confidence, plus the MAC/parameter accounting.
func TrainDynamic(o Options) (TrainResult, error) {
	ds, err := dataset.Generate(o.datasetConfig())
	if err != nil {
		return TrainResult{}, err
	}
	model, err := dyndnn.New(o.modelConfig())
	if err != nil {
		return TrainResult{}, err
	}

	rep, err := model.TrainIncremental(ds, o.trainConfig())
	if err != nil {
		return TrainResult{}, err
	}
	evals := model.EvaluateAll(ds)

	table := trace.NewTable("Fig 4(b) — top-1 accuracy per configuration (synthetic CIFAR-10 analogue)",
		"Config", "Top-1 (%)", "σ over classes (%)", "Confidence", "MACs", "Params", "Paper (%)")
	accs := make([]float64, 0, len(evals))
	confs := make([]float64, 0, len(evals))
	for i, ev := range evals {
		paper := "-"
		if i < len(perf.PaperAccuracies) {
			paper = fmt.Sprintf("%.1f", perf.PaperAccuracies[i]*100)
		}
		table.AddRow(ev.LevelName, ev.Accuracy*100, ev.ClassStd*100, ev.Confidence,
			ev.MACs, ev.Params, paper)
		accs = append(accs, ev.Accuracy)
		confs = append(confs, ev.Confidence)
	}

	prof := perf.UniformProfile("dyndnn-measured",
		model.MACs(model.Levels()), model.MemoryBytes(model.Levels()), accs, confs)

	return TrainResult{
		Model:    model,
		Report:   rep,
		Evals:    evals,
		Profile:  prof,
		Fig4b:    table,
		Prefixes: true, // enforced by TrainIncremental's per-step panic check
	}, nil
}

// AccuracyMonotone reports whether accuracy is non-decreasing with level —
// the Fig 4(b) shape criterion.
func (r TrainResult) AccuracyMonotone() bool {
	for i := 1; i < len(r.Evals); i++ {
		if r.Evals[i].Accuracy < r.Evals[i-1].Accuracy {
			return false
		}
	}
	return true
}

// AccuracySpread returns the top-1 difference between the largest and
// smallest configuration (the paper measures 71.2 − 56.0 = 15.2 points).
func (r TrainResult) AccuracySpread() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	return r.Evals[len(r.Evals)-1].Accuracy - r.Evals[0].Accuracy
}
