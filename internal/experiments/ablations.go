package experiments

import (
	"github.com/emlrtm/emlrtm/internal/baselines"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/pareto"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/trace"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// KnobSet labels a subset of the three knobs of Section IV.
type KnobSet struct {
	Name       string
	Points     []perf.OperatingPoint
	Stats      pareto.RangeStats
	Coverage   float64 // fraction of the budget grid satisfiable
	ParetoSize int
}

// AblationKnobsResult quantifies the paper's Section IV claim: combining
// the dynamic DNN with task mapping and DVFS "achieves a wider dynamic
// range of performance trade-off" than any knob alone.
type AblationKnobsResult struct {
	Sets  []KnobSet
	Table *trace.Table
}

// AblationKnobs builds the XU3 operating-point space under each knob
// subset and measures span, Pareto-front size and budget coverage.
func AblationKnobs(prof perf.ModelProfile) AblationKnobsResult {
	plat := hw.OdroidXU3()
	maxA15 := len(plat.Cluster("a15").OPPs) - 1
	full := prof.MaxLevel()

	latGrid := []float64{0.03, 0.06, 0.12, 0.25, 0.5, 1.0, 2.0}
	enGrid := []float64{20, 40, 80, 160, 320}

	fixOPP := func(pts []perf.OperatingPoint, idx int) []perf.OperatingPoint {
		var out []perf.OperatingPoint
		for _, p := range pts {
			if p.OPPIndex == idx {
				out = append(out, p)
			}
		}
		return out
	}

	sets := []struct {
		name string
		pts  []perf.OperatingPoint
	}{
		{"DVFS only (A15, 100% model)", perf.Enumerate(plat, prof,
			perf.EnumerateOptions{Clusters: []string{"a15"}, Levels: []int{full}})},
		{"model only (A15 @ max freq)", fixOPP(perf.Enumerate(plat, prof,
			perf.EnumerateOptions{Clusters: []string{"a15"}}), maxA15)},
		{"mapping only (100% model @ max freq)", append(
			fixOPP(perf.Enumerate(plat, prof, perf.EnumerateOptions{
				Clusters: []string{"a15"}, Levels: []int{full}, SweepCores: true}), maxA15),
			fixOPP(perf.Enumerate(plat, prof, perf.EnumerateOptions{
				Clusters: []string{"a7"}, Levels: []int{full}, SweepCores: true}),
				len(plat.Cluster("a7").OPPs)-1)...)},
		{"DVFS + model (A15)", perf.Enumerate(plat, prof,
			perf.EnumerateOptions{Clusters: []string{"a15"}})},
		{"all three knobs", perf.Enumerate(plat, prof,
			perf.EnumerateOptions{SweepCores: true})},
	}

	res := AblationKnobsResult{
		Table: trace.NewTable("A1 — knob-combination ablation (Odroid XU3)",
			"Knobs", "Points", "t span (ms)", "E span (mJ)", "Accuracy range", "Pareto size", "Budget coverage (%)"),
	}
	for _, s := range sets {
		st := pareto.Stats(s.pts)
		front := pareto.Frontier(s.pts, pareto.LatencyEnergyMetric)
		cov := pareto.SatisfiableFraction(s.pts, latGrid, enGrid)
		ks := KnobSet{Name: s.name, Points: s.pts, Stats: st, Coverage: cov, ParetoSize: len(front)}
		res.Sets = append(res.Sets, ks)
		res.Table.AddRow(s.name, len(s.pts), st.LatencySpan*1000, st.EnergySpan,
			st.MaxAccuracy-st.MinAccuracy, len(front), cov*100)
	}
	return res
}

// CoverageOf returns the budget coverage of the named knob set.
func (r AblationKnobsResult) CoverageOf(name string) float64 {
	for _, s := range r.Sets {
		if s.Name == name {
			return s.Coverage
		}
	}
	return -1
}

// AblationSwitchingResult is the A2 comparison: one dynamic model vs a
// static model set vs big/little, on storage and switch cost (the Park et
// al. [20] argument of Section III-B).
type AblationSwitchingResult struct {
	DynamicBytes    int64
	StaticSetBytes  int64
	StaticSetModels int
	BigLittleBytes  int64
	DynamicSwitch   dyndnn.SwitchCost
	StaticSwitch    dyndnn.SwitchCost
	Table           *trace.Table
}

// AblationSwitching computes storage and switching costs for the three
// deployment strategies covering the XU3's hardware settings at a 250 ms
// budget.
func AblationSwitching(prof perf.ModelProfile) AblationSwitchingResult {
	plat := hw.OdroidXU3()
	set := baselines.BuildStaticSet(plat, prof, 0.250)
	bl := baselines.NewBigLittle(prof, 0.25)
	scm := dyndnn.DefaultSwitchCostModel()

	full := prof.Level(prof.MaxLevel())
	res := AblationSwitchingResult{
		DynamicBytes:    full.MemBytes,
		StaticSetBytes:  set.StorageBytes(),
		StaticSetModels: set.DistinctModels(),
		BigLittleBytes:  bl.StorageBytes(),
		DynamicSwitch:   scm.DynamicSwitch(1, prof.MaxLevel()),
		StaticSwitch:    scm.StaticSwitch(full.MemBytes),
	}
	res.Table = trace.NewTable("A2 — storage & switching: dynamic DNN vs static deployments",
		"Strategy", "Storage (KiB)", "Models", "Switch latency (ms)", "Switch energy (mJ)")
	res.Table.AddRow("dynamic DNN (this work)", float64(res.DynamicBytes)/1024, 1,
		res.DynamicSwitch.LatencyS*1000, res.DynamicSwitch.EnergyJ*1000)
	res.Table.AddRow("static per-setting set (NetAdapt-style)", float64(res.StaticSetBytes)/1024,
		res.StaticSetModels, res.StaticSwitch.LatencyS*1000, res.StaticSwitch.EnergyJ*1000)
	res.Table.AddRow("big/little (Park et al.)", float64(res.BigLittleBytes)/1024, 2,
		res.StaticSwitch.LatencyS*1000, res.StaticSwitch.EnergyJ*1000)
	return res
}

// AblationNoRTMResult is the A3 comparison on the Fig 2 scenario.
type AblationNoRTMResult struct {
	ManagedBad    float64 // miss+drop fraction across both DNNs
	BaselineBad   float64
	ManagedOverC  float64 // seconds above throttle
	BaselineOverC float64
	Table         *trace.Table
}

// AblationNoRTM runs the Fig 2 scenario with the manager and with an
// ondemand governor (static mapping, no model scaling) and compares
// deadline performance and thermal behaviour.
func AblationNoRTM(o Options) (AblationNoRTMResult, error) {
	s := workload.Fig2Scenario()

	_, _, mrep, err := workload.Run(s, hw.FlagshipSoC(), 0.25, o.Logf)
	if err != nil {
		return AblationNoRTMResult{}, err
	}

	gov := rtm.NewGovernorController(rtm.OndemandGovernor{})
	be, err := sim.New(sim.Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       s.Apps,
		Controller: gov,
		TickS:      0.25,
	})
	if err != nil {
		return AblationNoRTMResult{}, err
	}
	if err := be.Run(s.EndS); err != nil {
		return AblationNoRTMResult{}, err
	}
	brep := be.Report()

	badOf := func(rep sim.Report) float64 {
		released, bad := 0, 0
		for _, a := range rep.Apps {
			if a.Kind != sim.KindDNN {
				continue
			}
			released += a.Released
			bad += a.Missed + a.Dropped
		}
		if released == 0 {
			return 0
		}
		return float64(bad) / float64(released)
	}

	res := AblationNoRTMResult{
		ManagedBad:    badOf(mrep),
		BaselineBad:   badOf(brep),
		ManagedOverC:  mrep.OverThrottleS,
		BaselineOverC: brep.OverThrottleS,
	}
	res.Table = trace.NewTable("A3 — RTM vs no-RTM on the Fig 2 scenario",
		"Controller", "Bad frames (%)", "Time above throttle (s)", "Max temp (C)", "Energy (mJ)")
	res.Table.AddRow("RTM", res.ManagedBad*100, mrep.OverThrottleS, mrep.MaxTempC, mrep.TotalEnergyMJ)
	res.Table.AddRow("ondemand governor", res.BaselineBad*100, brep.OverThrottleS, brep.MaxTempC, brep.TotalEnergyMJ)
	return res, nil
}
