package experiments

import (
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/trace"
)

// Table1Row is one row of the reproduced Table I.
type Table1Row struct {
	Platform string
	Cores    string
	TimeMs   float64
	PowerMW  float64
	EnergyMJ float64
	Top1     float64 // platform-independent: identical across rows
	// Paper columns for side-by-side comparison.
	PaperTimeMs   float64
	PaperPowerMW  float64
	PaperEnergyMJ float64
}

// Table1Result bundles the rows and the rendered table.
type Table1Result struct {
	Rows  []Table1Row
	Table *trace.Table
}

// paperTable1 holds the published Table I cells.
var paperTable1 = []struct {
	platform, cluster, label string
	fGHz                     float64
	companionGHz             float64 // for GPU rows: the paired A57 frequency
	ms, mw, mj               float64
}{
	{"jetson-nano", "gpu", "GPU (614MHz) + A57 CPU (921MHz)", 0.614, 0.921, 7.4, 1340, 9.92},
	{"jetson-nano", "gpu", "GPU (921MHz) + A57 CPU (1.43GHz)", 0.9216, 1.43, 4.93, 2500, 12.3},
	{"jetson-nano", "a57", "A57 CPU (921MHz)", 0.921, 0, 69.4, 878, 60.9},
	{"jetson-nano", "a57", "A57 CPU (1.43GHz)", 1.43, 0, 46.9, 1490, 69.9},
	{"odroid-xu3", "a15", "A15 CPU (200MHz)", 0.2, 0, 1020, 326, 320},
	{"odroid-xu3", "a15", "A15 CPU (1GHz)", 1.0, 0, 204, 846, 173},
	{"odroid-xu3", "a15", "A15 CPU (1.8GHz)", 1.8, 0, 117, 2120, 248},
	{"odroid-xu3", "a7", "A7 CPU (200MHz)", 0.2, 0, 1780, 72.4, 129},
	{"odroid-xu3", "a7", "A7 CPU (700MHz)", 0.7, 0, 504, 141, 71.4},
	{"odroid-xu3", "a7", "A7 CPU (1.3GHz)", 1.3, 0, 280, 329, 92.1},
}

// Table1 reproduces Table I: the 100% model deployed across the Jetson
// Nano and Odroid XU3 hardware settings, reporting platform-dependent
// metrics from the calibrated models and the platform-independent top-1
// accuracy (identical in every row, the paper's point).
//
// accuracy is the measured (or published) top-1 of the 100% configuration.
func Table1(accuracy float64) Table1Result {
	cat := hw.Catalog()
	prof := perf.PaperReferenceProfile()
	spec := prof.Level(prof.MaxLevel())

	res := Table1Result{
		Table: trace.NewTable("Table I — platform-dependent & independent DNN performance metrics",
			"Platform", "Computing cores", "t (ms)", "P (mW)", "E (mJ)", "Top-1 (%)",
			"paper t", "paper P", "paper E"),
	}
	for _, row := range paperTable1 {
		p := cat[row.platform]
		cl := p.Cluster(row.cluster)
		opp := cl.OPPs[cl.NearestOPPIndex(row.fGHz)]
		lat := perf.InferenceLatencyS(cl, opp, cl.Cores, spec.MACs)
		pw := cl.BusyPowerMW(opp, cl.Cores, 1)
		if comp := p.Companion(cl); comp != nil && row.companionGHz > 0 {
			compOPP := comp.OPPs[comp.NearestOPPIndex(row.companionGHz)]
			pw += comp.BusyPowerMW(compOPP, comp.Cores, cl.CompanionUtil)
		}
		e := perf.InferenceEnergyMJ(lat, pw)
		r := Table1Row{
			Platform:      row.platform,
			Cores:         row.label,
			TimeMs:        lat * 1000,
			PowerMW:       pw,
			EnergyMJ:      e,
			Top1:          accuracy * 100,
			PaperTimeMs:   row.ms,
			PaperPowerMW:  row.mw,
			PaperEnergyMJ: row.mj,
		}
		res.Rows = append(res.Rows, r)
		res.Table.AddRow(r.Platform, r.Cores, r.TimeMs, r.PowerMW, r.EnergyMJ, r.Top1,
			r.PaperTimeMs, r.PaperPowerMW, r.PaperEnergyMJ)
	}
	return res
}

// MaxRelativeError returns the worst relative deviation from the paper
// across all latency/power/energy cells.
func (r Table1Result) MaxRelativeError() float64 {
	worst := 0.0
	rel := func(got, want float64) float64 {
		d := (got - want) / want
		if d < 0 {
			d = -d
		}
		return d
	}
	for _, row := range r.Rows {
		for _, d := range []float64{
			rel(row.TimeMs, row.PaperTimeMs),
			rel(row.PowerMW, row.PaperPowerMW),
			rel(row.EnergyMJ, row.PaperEnergyMJ),
		} {
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
