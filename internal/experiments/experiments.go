// Package experiments contains one driver per table and figure of the
// paper, plus the ablations DESIGN.md defines. Each driver returns both
// structured results (for tests and benchmarks) and formatted tables or
// figure CSVs (for the cmd tools and EXPERIMENTS.md).
//
// Index (see DESIGN.md §4):
//
//	E1 Table I        — Table1()
//	E2 Fig 1          — Fig1()
//	E3 Fig 2          — Fig2()
//	E4 Fig 3 training — TrainDynamic()
//	E5 Fig 4(a)       — Fig4a()
//	E6 Fig 4(b)       — part of TrainDynamic()
//	E7 Fig 4 budgets  — Fig4Budgets()
//	E8 Fig 5 loop     — Fig5()
//	A1 knob ablation  — AblationKnobs()
//	A2 switching      — AblationSwitching()
//	A3 no-RTM         — AblationNoRTM()
package experiments

import (
	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/dyndnn"
)

// Options selects the experiment scale.
type Options struct {
	// Quick selects reduced datasets/model sizes so the full suite runs in
	// seconds (used by tests); the default is paper scale.
	Quick bool
	// Seed drives every stochastic component.
	Seed uint64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Dataset returns the synthetic-data configuration this option scale
// uses; exported so benchmarks can regenerate the matching dataset.
func (o Options) Dataset() dataset.Config { return o.datasetConfig() }

// datasetConfig returns the synthetic-data configuration for the scale.
func (o Options) datasetConfig() dataset.Config {
	if o.Quick {
		c := dataset.QuickConfig()
		c.TrainN = 1500
		c.ValN = 800
		c.Seed = o.seed()
		return c
	}
	c := dataset.DefaultConfig()
	c.Seed = o.seed()
	return c
}

// modelConfig returns the dynamic-DNN configuration for the scale.
func (o Options) modelConfig() dyndnn.Config {
	if o.Quick {
		c := dyndnn.QuickConfig()
		c.Seed = o.seed() + 1
		return c
	}
	c := dyndnn.DefaultConfig()
	c.Seed = o.seed() + 1
	return c
}

// trainConfig returns the training recipe for the scale.
func (o Options) trainConfig() dyndnn.TrainConfig {
	if o.Quick {
		c := dyndnn.QuickTrainConfig()
		c.EpochsPerStep = 5
		c.Seed = o.seed() + 2
		c.Logf = o.Logf
		return c
	}
	c := dyndnn.DefaultTrainConfig()
	c.Seed = o.seed() + 2
	c.Logf = o.Logf
	return c
}
