package experiments

import (
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/perf"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestTable1MatchesPaperWithin5Percent(t *testing.T) {
	res := Table1(perf.PaperAccuracies[3])
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (paper Table I)", len(res.Rows))
	}
	if err := res.MaxRelativeError(); err > 0.05 {
		t.Fatalf("worst cell deviates %.1f%% from the paper (budget 5%%)", err*100)
	}
	// Platform-independent column identical across rows.
	for _, r := range res.Rows {
		if r.Top1 != res.Rows[0].Top1 {
			t.Fatal("top-1 must be platform-independent")
		}
	}
	if res.Table.Rows() != 10 {
		t.Fatal("rendered table incomplete")
	}
}

func TestFig4aSpaceShape(t *testing.T) {
	res := Fig4a(perf.PaperReferenceProfile())
	if len(res.Points) != 116 {
		t.Fatalf("points = %d, want 116 (4 configs × 29 OPPs)", len(res.Points))
	}
	if len(res.Figure.Series) != 8 {
		t.Fatalf("series = %d, want 8 (2 clusters × 4 configs)", len(res.Figure.Series))
	}
	// Paper axes: time up to ~1.2 s on the A7 at 200 MHz with 25-100%
	// models; energy up to ~350 mJ.
	if res.Stats.MaxLatencyS < 1.0 || res.Stats.MaxLatencyS > 2.5 {
		t.Fatalf("max latency %.2fs outside the paper's axis range", res.Stats.MaxLatencyS)
	}
	if res.Stats.MaxEnergyMJ < 200 || res.Stats.MaxEnergyMJ > 450 {
		t.Fatalf("max energy %.0fmJ outside the paper's axis range", res.Stats.MaxEnergyMJ)
	}
	if res.Figure.Points() != 116 {
		t.Fatal("figure points mismatch")
	}
}

func TestFig4BudgetsReproduceWorkedExamples(t *testing.T) {
	res := Fig4Budgets(perf.PaperReferenceProfile())
	if len(res.Cases) != 2 {
		t.Fatal("want 2 worked examples")
	}
	c1 := res.Cases[0]
	if !c1.Feasible || c1.Selected.Cluster != "a7" || c1.Selected.LevelName != "100%" {
		t.Fatalf("case 1 selected %v, paper says A7 100%%", c1.Selected)
	}
	c2 := res.Cases[1]
	if !c2.Feasible || c2.Selected.Cluster != "a15" || c2.Selected.LevelName != "75%" {
		t.Fatalf("case 2 selected %v, paper says A15 75%%", c2.Selected)
	}
}

func TestFig1DesignTimeMapping(t *testing.T) {
	res := Fig1(perf.PaperReferenceProfile())
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 3 platforms × 3 requirements", len(res.Cells))
	}
	// The flagship (NPU) must satisfy every requirement.
	for _, req := range Fig1Requirements() {
		cell, ok := res.CellFor("flagship-soc", req.Name)
		if !ok || !cell.Feasible {
			t.Fatalf("flagship must satisfy %q", req.Name)
		}
	}
	// The CPU-only XU3 must fail at least the 60 fps requirement (the
	// paper's premise: weaker platforms need more compression or miss).
	cell, ok := res.CellFor("odroid-xu3", "60 fps / medium accuracy")
	if !ok {
		t.Fatal("missing XU3 cell")
	}
	if cell.Feasible {
		t.Fatal("XU3 should not sustain 60 fps at medium accuracy with this model")
	}
	// Capability ordering: more capable platforms run the same requirement
	// at lower energy. Compare the 1 fps case.
	flag, _ := res.CellFor("flagship-soc", "1 fps / very-high accuracy")
	xu3, _ := res.CellFor("odroid-xu3", "1 fps / very-high accuracy")
	if !flag.Feasible || !xu3.Feasible {
		t.Fatal("1 fps must be feasible on both")
	}
	if flag.Point.EnergyMJ >= xu3.Point.EnergyMJ {
		t.Fatal("flagship should serve 1 fps more efficiently than the XU3")
	}
}

func TestTrainDynamicQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := TrainDynamic(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 4 {
		t.Fatalf("evals = %d", len(res.Evals))
	}
	if !res.AccuracyMonotone() {
		accs := make([]float64, len(res.Evals))
		for i, e := range res.Evals {
			accs[i] = e.Accuracy
		}
		t.Fatalf("accuracy not monotone: %v", accs)
	}
	// Paper spread is 15.2 points; the quick-scale synthetic task keeps
	// the shape but with a wider spread (the 25% tower underfits harder
	// under the reduced training budget).
	if s := res.AccuracySpread(); s < 0.05 || s > 0.65 {
		t.Fatalf("accuracy spread %.3f implausible", s)
	}
	if err := res.Profile.Validate(); err != nil {
		t.Fatalf("measured profile invalid: %v", err)
	}
	if !strings.Contains(res.Fig4b.String(), "25%") {
		t.Fatal("Fig 4(b) table missing configs")
	}
}

func TestFig2ExperimentGoldenShape(t *testing.T) {
	res, err := Fig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoLocated() {
		t.Fatalf("phase (d) failed: dnn1 on %s, dnn2 on %s",
			res.FinalDNN1.Placement.Cluster, res.FinalDNN2.Placement.Cluster)
	}
	if res.AlarmAtS < 18 || res.AlarmAtS > 25 {
		t.Fatalf("thermal alarm at %.2fs, want within (18,25)", res.AlarmAtS)
	}
	if res.Plans < 4 {
		t.Fatalf("only %d plans", res.Plans)
	}
	if res.Timeline.Rows() < 6 {
		t.Fatal("timeline too sparse")
	}
}

func TestFig5ManagerBeatsGovernor(t *testing.T) {
	res, err := Fig5(perf.PaperReferenceProfile(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	mBad := BadFraction(res.Managed)
	bBad := BadFraction(res.Baseline)
	if mBad > 0.2 {
		t.Fatalf("managed bad fraction %.2f too high", mBad)
	}
	if bBad <= mBad {
		t.Fatalf("governor baseline (%.2f) should be worse than RTM (%.2f)", bBad, mBad)
	}
	if len(res.Knobs) == 0 || len(res.Monitors) == 0 {
		t.Fatal("knob/monitor registry empty")
	}
}

func TestAblationKnobsWiderRange(t *testing.T) {
	res := AblationKnobs(perf.PaperReferenceProfile())
	if len(res.Sets) != 5 {
		t.Fatalf("sets = %d", len(res.Sets))
	}
	all := res.CoverageOf("all three knobs")
	for _, s := range res.Sets {
		if s.Coverage > all+1e-9 {
			t.Fatalf("%q coverage %.2f exceeds all-knobs %.2f", s.Name, s.Coverage, all)
		}
	}
	// The combination must strictly beat each single knob (Section IV).
	for _, single := range []string{
		"DVFS only (A15, 100% model)",
		"model only (A15 @ max freq)",
		"mapping only (100% model @ max freq)",
	} {
		if c := res.CoverageOf(single); c >= all {
			t.Fatalf("single knob %q coverage %.2f not below combination %.2f", single, c, all)
		}
	}
}

func TestAblationSwitchingFavoursDynamic(t *testing.T) {
	res := AblationSwitching(perf.PaperReferenceProfile())
	if res.StaticSetBytes <= res.DynamicBytes {
		t.Fatal("static set must need more storage than one dynamic model")
	}
	if res.StaticSetModels < 2 {
		t.Fatalf("static set has %d distinct models; expected several", res.StaticSetModels)
	}
	if res.DynamicSwitch.LatencyS >= res.StaticSwitch.LatencyS {
		t.Fatal("dynamic switch must be faster than a model reload")
	}
	if res.DynamicSwitch.BytesMoved != 0 {
		t.Fatal("dynamic switch moves no bytes")
	}
}

func TestAblationNoRTM(t *testing.T) {
	res, err := AblationNoRTM(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineBad <= res.ManagedBad {
		t.Fatalf("baseline bad %.2f should exceed managed %.2f", res.BaselineBad, res.ManagedBad)
	}
	if res.ManagedBad > 0.15 {
		t.Fatalf("managed bad fraction %.2f too high", res.ManagedBad)
	}
}
