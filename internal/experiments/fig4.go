package experiments

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/pareto"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/trace"
)

// Fig4aResult is the operating-point space of Fig 4(a): for each (cluster,
// model level) series, energy vs classification time across the DVFS
// ladder.
type Fig4aResult struct {
	Points []perf.OperatingPoint
	Figure *trace.Figure
	Stats  pareto.RangeStats
}

// Fig4a enumerates the Odroid XU3 space exactly as the paper does: 4 model
// configurations × (A7: 12, A15: 17) frequency levels, full clusters.
// prof supplies the per-level MACs/accuracy (use the trained profile or
// perf.PaperReferenceProfile()).
func Fig4a(prof perf.ModelProfile) Fig4aResult {
	plat := hw.OdroidXU3()
	pts := perf.Enumerate(plat, prof, perf.EnumerateOptions{})

	fig := trace.NewFigure("Fig 4(a) — E/t operating points (Odroid XU3)",
		"classification_time_ms", "energy_mJ")
	series := map[string]*trace.Series{}
	for _, p := range pts {
		key := fmt.Sprintf("%s, %s model", clusterLabel(p.Cluster), p.LevelName)
		s, ok := series[key]
		if !ok {
			s = fig.NewSeries(key)
			series[key] = s
		}
		s.Add(p.LatencyS*1000, p.EnergyMJ)
	}
	return Fig4aResult{Points: pts, Figure: fig, Stats: pareto.Stats(pts)}
}

func clusterLabel(name string) string {
	switch name {
	case "a15":
		return "A15"
	case "a7":
		return "A7"
	}
	return name
}

// BudgetCase is one worked example of Section IV.
type BudgetCase struct {
	Name        string
	Budget      pareto.Budget
	Selected    perf.OperatingPoint
	Feasible    bool
	PaperAnswer string
}

// Fig4BudgetsResult bundles the worked examples with a rendered table.
type Fig4BudgetsResult struct {
	Cases []BudgetCase
	Table *trace.Table
}

// Fig4Budgets reproduces the paper's two worked examples on the Fig 4(a)
// space: (400 ms, 100 mJ) → 100% model on the A7 at 900 MHz, and
// (200 ms, 150 mJ) → 75% model on the A15 near 1 GHz.
func Fig4Budgets(prof perf.ModelProfile) Fig4BudgetsResult {
	pts := perf.Enumerate(hw.OdroidXU3(), prof, perf.EnumerateOptions{})
	cases := []struct {
		name   string
		b      pareto.Budget
		answer string
	}{
		{"400ms / 100mJ", pareto.Budget{MaxLatencyS: 0.400, MaxEnergyMJ: 100},
			"100% model on A7 @ 900 MHz"},
		{"200ms / 150mJ", pareto.Budget{MaxLatencyS: 0.200, MaxEnergyMJ: 150},
			"75% model on A15 @ 1 GHz"},
	}
	res := Fig4BudgetsResult{
		Table: trace.NewTable("Fig 4 — budget worked examples",
			"Budget", "Selected", "t (ms)", "E (mJ)", "Top-1 (%)", "Paper"),
	}
	for _, c := range cases {
		best, ok := pareto.Best(pts, c.b)
		bc := BudgetCase{Name: c.name, Budget: c.b, Selected: best, Feasible: ok, PaperAnswer: c.answer}
		res.Cases = append(res.Cases, bc)
		sel := "infeasible"
		if ok {
			sel = fmt.Sprintf("%s model on %s @ %.0f MHz",
				best.LevelName, clusterLabel(best.Cluster), best.FreqGHz*1000)
		}
		res.Table.AddRow(c.name, sel, best.LatencyS*1000, best.EnergyMJ, best.Accuracy*100, c.answer)
	}
	return res
}
