package experiments

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/trace"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Fig2Result is the outcome of the scripted Fig 2 runtime scenario.
type Fig2Result struct {
	Report    sim.Report
	Plans     int
	Timeline  *trace.Table
	Summary   *trace.Table
	AlarmAtS  float64 // -1 if no alarm fired
	FinalDNN1 sim.AppInfo
	FinalDNN2 sim.AppInfo
}

// Fig2 runs the paper's Fig 2 timeline under the runtime manager and
// renders the phase table: which cluster and configuration each DNN holds
// in each phase, plus the thermal response.
func Fig2(o Options) (Fig2Result, error) {
	s := workload.Fig2Scenario()
	e, mgr, rep, err := workload.Run(s, hw.FlagshipSoC(), 0.25, o.Logf)
	if err != nil {
		return Fig2Result{}, err
	}

	res := Fig2Result{Report: rep, Plans: mgr.Plans(), AlarmAtS: -1}
	res.FinalDNN1, _ = e.App("dnn1")
	res.FinalDNN2, _ = e.App("dnn2")

	res.Timeline = trace.NewTable("Fig 2 — runtime scenario timeline (flagship SoC)",
		"t (s)", "Event", "App", "Detail")
	for _, ev := range rep.Events {
		switch ev.Kind {
		case sim.EvAppStart, sim.EvAppStop, sim.EvMigrated, sim.EvThermalAlarm:
			res.Timeline.AddRow(fmt.Sprintf("%.2f", ev.TimeS), ev.Kind.String(), ev.App, ev.Note)
			if ev.Kind == sim.EvThermalAlarm && res.AlarmAtS < 0 {
				res.AlarmAtS = ev.TimeS
			}
		}
	}

	res.Summary = trace.NewTable("Fig 2 — per-app outcome",
		"App", "Final placement", "Final config", "Frames", "Completed", "Missed", "Dropped", "Avg latency (ms)")
	for _, a := range rep.Apps {
		cfg := "-"
		if a.Kind == sim.KindDNN {
			cfg = a.Profile.Level(a.Level).Name
		}
		res.Summary.AddRow(a.Name,
			fmt.Sprintf("%s/%d", a.Placement.Cluster, a.Placement.Cores),
			cfg, a.Released, a.Completed, a.Missed, a.Dropped, a.AvgLatency*1000)
	}
	return res, nil
}

// CoLocated reports whether both DNNs ended on the NPU (phase (d)).
func (r Fig2Result) CoLocated() bool {
	return r.FinalDNN1.Placement.Cluster == "npu" && r.FinalDNN2.Placement.Cluster == "npu"
}
