package experiments

import (
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/trace"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Fig5Result is the closed-loop disturbance experiment: the RTM holds a
// DNN's budget through a background burst on the same cluster, using the
// knob/monitor interface of Fig 5; a governor-only baseline on the same
// scenario shows what the application-blind prior art achieves.
type Fig5Result struct {
	Managed        sim.AppInfo
	Baseline       sim.AppInfo
	ManagedReport  sim.Report
	BaselineReport sim.Report
	Knobs          []string
	Monitors       []string
	Table          *trace.Table
}

// Fig5 runs the disturbance scenario twice — once under the manager, once
// under an ondemand governor with static mapping — on the Odroid XU3 with
// the given (measured or published) profile.
func Fig5(prof perf.ModelProfile, o Options) (Fig5Result, error) {
	s := workload.Fig5Scenario(prof)

	e, mgr, _, err := workload.Run(s, hw.OdroidXU3(), 0.25, o.Logf)
	if err != nil {
		return Fig5Result{}, err
	}
	managed, _ := e.App("dnn")

	gov := rtm.NewGovernorController(rtm.OndemandGovernor{})
	be, err := sim.New(sim.Config{
		Platform:   hw.OdroidXU3(),
		Apps:       s.Apps,
		Controller: gov,
		TickS:      0.25,
	})
	if err != nil {
		return Fig5Result{}, err
	}
	if err := be.Run(s.EndS); err != nil {
		return Fig5Result{}, err
	}
	baseline, _ := be.App("dnn")

	res := Fig5Result{
		Managed:        managed,
		Baseline:       baseline,
		ManagedReport:  e.Report(),
		BaselineReport: be.Report(),
	}
	if reg := mgr.Registry(); reg != nil {
		res.Knobs = reg.KnobNames("")
		res.Monitors = reg.MonitorNames("")
	}
	res.Table = trace.NewTable("Fig 5 — closed-loop control through a background burst (Odroid XU3)",
		"Controller", "Frames", "Completed", "Missed", "Dropped", "Bad (%)", "Avg latency (ms)", "Energy (mJ)")
	add := func(name string, a sim.AppInfo, rep sim.Report) {
		bad := 0.0
		if a.Released > 0 {
			bad = 100 * float64(a.Missed+a.Dropped) / float64(a.Released)
		}
		res.Table.AddRow(name, a.Released, a.Completed, a.Missed, a.Dropped, bad,
			a.AvgLatency*1000, rep.TotalEnergyMJ)
	}
	add("RTM (knobs+monitors)", managed, res.ManagedReport)
	add("ondemand governor", baseline, res.BaselineReport)
	return res, nil
}

// BadFraction returns the miss+drop fraction for an app info.
func BadFraction(a sim.AppInfo) float64 {
	if a.Released == 0 {
		return 0
	}
	return float64(a.Missed+a.Dropped) / float64(a.Released)
}
