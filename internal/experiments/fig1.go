package experiments

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/pareto"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/trace"
)

// Fig1Requirement is one application requirement of Fig 1.
type Fig1Requirement struct {
	Name        string
	FPS         float64
	MinAccuracy float64
}

// Fig1Requirements are the paper's three example requirements: 1 fps at
// very-high accuracy, 25 fps at high accuracy, 60 fps at medium accuracy.
// Accuracy tiers map onto the Fig 4(b) ladder.
func Fig1Requirements() []Fig1Requirement {
	return []Fig1Requirement{
		{Name: "1 fps / very-high accuracy", FPS: 1, MinAccuracy: 0.71},
		{Name: "25 fps / high accuracy", FPS: 25, MinAccuracy: 0.68},
		{Name: "60 fps / medium accuracy", FPS: 60, MinAccuracy: 0.62},
	}
}

// Fig1Cell is the design-time choice for one (platform, requirement).
type Fig1Cell struct {
	Platform    string
	Requirement string
	Feasible    bool
	Point       perf.OperatingPoint
}

// Fig1Result bundles the mapping matrix with a rendered table.
type Fig1Result struct {
	Cells []Fig1Cell
	Table *trace.Table
}

// Fig1 reproduces the design-time mapping of Fig 1: the same dynamic DNN
// deployed across three platform classes (NPU-equipped flagship, GPU-class
// Jetson, CPU-only Odroid) under the three application requirements. For
// each cell the minimum-energy operating point meeting both the frame
// period and the accuracy tier is selected; infeasible cells demonstrate
// the paper's point that weaker platforms need more compression (lower
// accuracy) or cannot meet the requirement at all.
func Fig1(prof perf.ModelProfile) Fig1Result {
	platforms := []*hw.Platform{hw.FlagshipSoC(), hw.JetsonNano(), hw.OdroidXU3()}
	res := Fig1Result{
		Table: trace.NewTable("Fig 1 — design-time deployment across platforms",
			"Platform", "Requirement", "Chosen config", "t (ms)", "E (mJ)", "Top-1 (%)"),
	}
	for _, plat := range platforms {
		pts := perf.Enumerate(plat, prof, perf.EnumerateOptions{})
		for _, req := range Fig1Requirements() {
			b := pareto.Budget{MaxLatencyS: 1 / req.FPS, MinAccuracy: req.MinAccuracy}
			best, ok := pareto.MinEnergy(pts, b)
			cell := Fig1Cell{Platform: plat.Name, Requirement: req.Name, Feasible: ok, Point: best}
			res.Cells = append(res.Cells, cell)
			if ok {
				res.Table.AddRow(plat.Name, req.Name,
					fmt.Sprintf("%s on %s @ %.0f MHz", best.LevelName, best.Cluster, best.FreqGHz*1000),
					best.LatencyS*1000, best.EnergyMJ, best.Accuracy*100)
			} else {
				// Retry with the accuracy requirement dropped: report the
				// compromise the platform would need, or full infeasibility.
				relaxed, ok2 := pareto.MinEnergy(pts, pareto.Budget{MaxLatencyS: 1 / req.FPS})
				if ok2 {
					res.Table.AddRow(plat.Name, req.Name,
						fmt.Sprintf("accuracy unmet; best: %s on %s @ %.0f MHz",
							relaxed.LevelName, relaxed.Cluster, relaxed.FreqGHz*1000),
						relaxed.LatencyS*1000, relaxed.EnergyMJ, relaxed.Accuracy*100)
				} else {
					res.Table.AddRow(plat.Name, req.Name, "infeasible", "-", "-", "-")
				}
			}
		}
	}
	return res
}

// FeasibleCount returns how many cells met their full requirement.
func (r Fig1Result) FeasibleCount() int {
	n := 0
	for _, c := range r.Cells {
		if c.Feasible {
			n++
		}
	}
	return n
}

// CellFor returns the cell for a platform/requirement pair.
func (r Fig1Result) CellFor(platform, requirement string) (Fig1Cell, bool) {
	for _, c := range r.Cells {
		if c.Platform == platform && c.Requirement == requirement {
			return c, true
		}
	}
	return Fig1Cell{}, false
}
