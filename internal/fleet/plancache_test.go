package fleet

import (
	"encoding/json"
	"testing"
)

// TestPlanCacheEquivalence is the tentpole's correctness property at the
// fleet layer for the plan-reuse tiers: a Runner whose workers share a
// per-worker plan cache (and elide fingerprint-stable replans) must
// produce results byte-identical to a Runner with DisablePlanCache — at
// workers 1 and 8, across a mix of platforms, classes and policies. The
// cache-on arm must also demonstrably reuse work, or the test is vacuous.
func TestPlanCacheEquivalence(t *testing.T) {
	cfg := GeneratorConfig{
		Seed:     41,
		Classes:  []Class{ClassSteady, ClassBursty, ClassThermal},
		Policies: []string{"heuristic", "minenergy", "maxaccuracy"},
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(gen.RunCount(20))

	off := &Runner{Workers: 1, DisablePlanCache: true}
	want, err := json.Marshal(off.Run(scens))
	if err != nil {
		t.Fatal(err)
	}
	if s := off.PlanCacheStats(); s.Elided != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("DisablePlanCache runner reused planning work: %+v", s)
	}

	for _, workers := range []int{1, 8} {
		r := &Runner{Workers: workers}
		got, err := json.Marshal(r.Run(scens))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: plan-cache results differ from no-reuse results", workers)
		}
		s := r.PlanCacheStats()
		if s.Plans == 0 {
			t.Fatalf("workers=%d: no plans recorded", workers)
		}
		if s.Elided == 0 && s.CacheHits == 0 {
			t.Errorf("workers=%d: cache-on run reused nothing: %+v", workers, s)
		}
	}
}
