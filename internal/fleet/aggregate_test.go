package fleet

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"
)

// TestPercentileEdgeCases pins the true nearest-rank convention
// (rank = ceil(n*p), 1-based, clamped) on the boundaries that matter
// for pooled p95 stats: empty and single-sample inputs, and sample
// counts where the p=0.95 rank sits exactly on a rounding boundary.
func TestPercentileEdgeCases(t *testing.T) {
	// ascending(n) = [1, 2, ..., n], so the k-th smallest is k and the
	// expected value states the selected rank directly.
	ascending := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1)
		}
		return s
	}
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 0.95, 0},
		{"empty zero-length", []float64{}, 0.5, 0},
		{"single sample p95", []float64{3.25}, 0.95, 3.25},
		{"single sample p0", []float64{3.25}, 0, 3.25},
		{"single sample p1", []float64{3.25}, 1, 3.25},
		{"p0 clamps to min", ascending(10), 0, 1},
		{"p1 selects max", ascending(10), 1, 10},
		// n=10: ceil(9.5) = 10, so p95 selects the maximum.
		{"p95 n=10 rounds up to max", ascending(10), 0.95, 10},
		// n=20: ceil(19.0) = 19, so p95 leaves the maximum out.
		{"p95 n=20 leaves headroom", ascending(20), 0.95, 19},
		// n=19: ceil(18.05) = 19 — round-half-up gave 18 here, the defect
		// TestPercentileNearestRankVsRoundHalfUp pins from both sides.
		{"p95 n=19", ascending(19), 0.95, 19},
		{"p95 n=21", ascending(21), 0.95, 20},
		{"p95 n=100", ascending(100), 0.95, 95},
		{"p50 even count", ascending(4), 0.5, 2},
		{"p50 odd count", ascending(5), 0.5, 3},
		{"unsorted input", []float64{9, 1, 5, 7, 3}, 0.5, 5},
	}
	for _, tc := range cases {
		if got := percentile(tc.samples, tc.p); got != tc.want {
			t.Errorf("%s: percentile(n=%d, p=%g) = %g, want %g",
				tc.name, len(tc.samples), tc.p, got, tc.want)
		}
	}
}

// TestPercentileNearestRankVsRoundHalfUp pins the cases where true
// nearest-rank (rank = ceil(n*p)) and the round-half-up rank the
// implementation used to compute (rank = int(n*p + 0.5)) diverge: any
// n*p whose fractional part lies in (0, 0.5) rounds down under the old
// rule, selecting a sample that covers fewer than the requested n*p
// observations. Each case states both ranks so a regression to either
// definition fails with a readable diff.
func TestPercentileNearestRankVsRoundHalfUp(t *testing.T) {
	ascending := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1)
		}
		return s
	}
	cases := []struct {
		n           int
		p           float64
		nearestRank int // ceil(n*p): what percentile must return
		roundedRank int // int(n*p+0.5): the old, wrong selection
	}{
		{10, 0.91, 10, 9}, // the ISSUE case: ceil(9.1)=10, round(9.1)=9
		{19, 0.95, 19, 18},
		{7, 0.30, 3, 2}, // ceil(2.1)=3, round(2.1)=2
		{25, 0.85, 22, 21},
		{3, 0.50, 2, 2},    // frac = 0.5: both agree
		{20, 0.95, 19, 19}, // integer product: both agree
		{10, 0.95, 10, 10}, // frac = 0.5: both agree
	}
	for _, tc := range cases {
		samples := ascending(tc.n)
		got := percentile(samples, tc.p)
		if got != float64(tc.nearestRank) {
			t.Errorf("percentile(n=%d, p=%g) = %g, want nearest-rank %d (round-half-up would give %d)",
				tc.n, tc.p, got, tc.nearestRank, tc.roundedRank)
		}
		if tc.nearestRank != tc.roundedRank && got == float64(tc.roundedRank) {
			t.Errorf("percentile(n=%d, p=%g) regressed to round-half-up rank %d", tc.n, tc.p, tc.roundedRank)
		}
	}
}

// TestPercentileSortedMatchesPercentile pins the sorted-once fast path
// against the copy-and-sort-per-quantile reference: for every table the
// p50/p95/max read off one sorted copy must be identical to calling
// percentile per quantile. This is what lets group finalisation (and the
// runner's per-scenario stats) sort each pooled latency slice exactly
// once.
func TestPercentileSortedMatchesPercentile(t *testing.T) {
	tables := map[string][]float64{
		"empty":      nil,
		"single":     {3.25},
		"sorted":     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		"reversed":   {10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		"unsorted":   {9, 1, 5, 7, 3},
		"duplicates": {2, 2, 2, 1, 1, 3, 3, 3, 3, 2},
		"negatives":  {-5, 3, -1, 0, 2, -4},
		"latencies":  {0.016, 0.033, 0.017, 0.040, 0.016, 0.250, 0.017, 0.018},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	for name, samples := range tables {
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, p := range quantiles {
			want := percentile(samples, p)
			if got := percentileSorted(sorted, p); got != want {
				t.Errorf("%s: percentileSorted(p=%g) = %g, want %g (percentile reference)",
					name, p, got, want)
			}
		}
		if len(sorted) > 0 {
			if max := sorted[len(sorted)-1]; max != percentile(samples, 1) {
				t.Errorf("%s: sorted max %g != percentile(p=1) %g", name, max, percentile(samples, 1))
			}
		}
	}
}

// TestAggregateScalarFallback: results whose raw Latencies were dropped
// (Runner.DropLatencies) still contribute exact group means — each
// completion carried exactly one latency sample, so mean × completed
// reconstructs the sum — and the group p95 degrades to the worst
// per-scenario p95.
func TestAggregateScalarFallback(t *testing.T) {
	full := Result{
		ID: 0, Class: ClassSteady, Platform: "jetson-nano",
		Released: 4, Completed: 4,
		DurationS: 10, Latencies: []float64{1, 2, 3, 4},
		MeanLatencyS: 2.5, P95LatencyS: 4, MaxLatencyS: 4,
	}
	dropped := full
	dropped.ID = 1
	dropped.Latencies = nil

	// All-scalar group: exact mean, p95 from the per-scenario p95.
	rep := Aggregate(1, []Result{dropped})
	if g := rep.Overall; g.MeanLatencyS != 2.5 || g.P95LatencyS != 4 || g.MaxLatencyS != 4 {
		t.Errorf("scalar-only group stats = mean %g p95 %g max %g, want 2.5/4/4",
			g.MeanLatencyS, g.P95LatencyS, g.MaxLatencyS)
	}

	// Mixed group: the mean must still be the exact pooled mean.
	other := Result{
		ID: 2, Class: ClassSteady, Platform: "jetson-nano",
		Released: 2, Completed: 2,
		DurationS: 10, Latencies: []float64{5, 6},
		MeanLatencyS: 5.5, P95LatencyS: 6, MaxLatencyS: 6,
	}
	rep = Aggregate(1, []Result{dropped, other})
	wantMean := (1.0 + 2 + 3 + 4 + 5 + 6) / 6
	if g := rep.Overall; g.MeanLatencyS != wantMean {
		t.Errorf("mixed group mean = %g, want %g", g.MeanLatencyS, wantMean)
	}
	if g := rep.Overall; g.MaxLatencyS != 6 {
		t.Errorf("mixed group max = %g, want 6", g.MaxLatencyS)
	}

	// A full-sample fleet must be unaffected by the fallback machinery:
	// identical report with and without a no-op scalar path.
	exact := Aggregate(1, []Result{full, other})
	ej, _ := json.Marshal(exact.Overall)
	want := GroupStats{
		Scenarios: 2, Frames: 6, Completed: 6,
		MeanLatencyS: 3.5, P95LatencyS: 6, MaxLatencyS: 6, SimSeconds: 20,
	}
	wj, _ := json.Marshal(want)
	if string(ej) != string(wj) {
		t.Errorf("full-sample aggregate changed:\n got %s\nwant %s", ej, wj)
	}
}

// TestAggregateP95ApproxMarker: a group whose percentile pooled every raw
// sample reports an exact p95 (and, via omitempty, keeps its JSON bytes),
// while any group a sample-free scenario contributed to carries the
// p95Approx marker — including the mixed case where the pooled raw samples
// happened to dominate the scalar fallback, which used to be
// indistinguishable from an exact percentile.
func TestAggregateP95ApproxMarker(t *testing.T) {
	full := Result{
		ID: 0, Class: ClassSteady, Platform: "jetson-nano",
		Released: 4, Completed: 4, DurationS: 10,
		Latencies:    []float64{1, 2, 3, 9},
		MeanLatencyS: 3.75, P95LatencyS: 9, MaxLatencyS: 9,
	}
	dropped := Result{
		ID: 1, Class: ClassSteady, Platform: "jetson-nano",
		Released: 2, Completed: 2, DurationS: 10,
		MeanLatencyS: 1.5, P95LatencyS: 2, MaxLatencyS: 2,
	}

	exact := Aggregate(1, []Result{full})
	if exact.Overall.P95Approx {
		t.Error("full-sample group marked approximate")
	}
	if raw, err := json.Marshal(exact.Overall); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(raw), "p95Approx") {
		t.Errorf("exact group JSON leaks the marker: %s", raw)
	}

	// Mixed group where raw samples win the p95 anyway: still approximate.
	mixed := Aggregate(1, []Result{full, dropped})
	if g := mixed.Overall; !g.P95Approx || g.P95LatencyS != 9 {
		t.Errorf("mixed group p95/approx = %g/%v, want 9/true", g.P95LatencyS, g.P95Approx)
	}
	if raw, err := json.Marshal(mixed.Overall); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(string(raw), `"p95Approx":true`) {
		t.Errorf("mixed group JSON lacks the marker: %s", raw)
	}

	// All-scalar group: the p95 is the worst per-scenario p95, marked.
	scalar := Aggregate(1, []Result{dropped})
	if g := scalar.Overall; !g.P95Approx || g.P95LatencyS != 2 {
		t.Errorf("scalar group p95/approx = %g/%v, want 2/true", g.P95LatencyS, g.P95Approx)
	}
}

// TestAggregateRegret pins the per-policy regret computation on a
// hand-built two-workload sweep where the oracle is obvious: policy "a"
// wins workload 1 on both metrics, policy "b" wins workload 2 on miss rate
// while "a" keeps the energy oracle, so "b" carries energy regret even on
// the workload it wins.
func TestAggregateRegret(t *testing.T) {
	mk := func(id int, seed uint64, name, pol string, missed int, energy float64) Result {
		return Result{
			ID: id, Seed: seed, Name: name, Class: ClassSteady,
			Platform: "jetson-nano", Policy: pol,
			Released: 10, Completed: 10 - missed, Missed: missed,
			DurationS: 10, EnergyMJ: energy,
		}
	}
	results := []Result{
		mk(0, 11, "wl1", "a", 0, 100), // oracle of wl1 outright
		mk(1, 11, "wl1", "b", 2, 150),
		mk(2, 22, "wl2", "a", 3, 200), // energy oracle of wl2
		mk(3, 22, "wl2", "b", 1, 260), // miss-rate oracle (and combined) of wl2
	}
	rep := Aggregate(1, results)
	if rep.Regret == nil {
		t.Fatal("sweep report missing regret")
	}
	a, b := rep.Regret["a"], rep.Regret["b"]
	if a.Workloads != 2 || b.Workloads != 2 {
		t.Fatalf("workloads = %d/%d, want 2/2", a.Workloads, b.Workloads)
	}
	if a.OracleWins != 1 || b.OracleWins != 1 {
		t.Errorf("oracle wins = %d/%d, want 1/1 (a takes wl1, b takes wl2 on miss rate)", a.OracleWins, b.OracleWins)
	}
	approx := func(got, want float64) bool {
		return math.Abs(got-want) < 1e-12
	}
	// a: wl1 regret 0/0; wl2 miss regret 0.3-0.1=0.2, energy regret 0.
	if want := 0.2 / 2; !approx(a.MissRateRegret, want) {
		t.Errorf("a.MissRateRegret = %g, want %g", a.MissRateRegret, want)
	}
	if a.EnergyRegretMJ != 0 {
		t.Errorf("a.EnergyRegretMJ = %g, want 0", a.EnergyRegretMJ)
	}
	// b: wl1 miss regret 0.2, energy regret 50; wl2 miss regret 0, energy
	// regret 60 (the energy oracle on wl2 is a's 200).
	if want := 0.2 / 2; !approx(b.MissRateRegret, want) {
		t.Errorf("b.MissRateRegret = %g, want %g", b.MissRateRegret, want)
	}
	if want := (50.0 + 60.0) / 2; b.EnergyRegretMJ != want {
		t.Errorf("b.EnergyRegretMJ = %g, want %g", b.EnergyRegretMJ, want)
	}

	// An errored run poisons its whole workload: neither policy is
	// charged or credited for it.
	bad := mk(4, 33, "wl3", "a", 0, 1)
	bad.Err = "boom"
	withErr := Aggregate(1, append(results, bad, mk(5, 33, "wl3", "b", 0, 2)))
	if g := withErr.Regret["b"]; g.Workloads != 2 {
		t.Errorf("errored workload leaked into regret: b.Workloads = %d, want 2", g.Workloads)
	}

	// Single-policy fleets carry no regret block at all.
	single := Aggregate(1, []Result{mk(0, 11, "wl1", "a", 0, 100), mk(1, 22, "wl2", "a", 1, 50)})
	if single.Regret != nil || single.ByPolicy != nil {
		t.Errorf("single-policy report grew regret/byPolicy: %+v / %+v", single.Regret, single.ByPolicy)
	}
}

// TestAggregateAllErrored: a group made entirely of errored scenarios has
// Frames == 0 and SimSeconds == 0; no rate may divide through to NaN or
// Inf (json.Marshal would also reject those, breaking every report
// writer downstream).
func TestAggregateAllErrored(t *testing.T) {
	results := []Result{
		{ID: 0, Class: ClassSteady, Platform: "odroid-xu3", Err: "unknown platform"},
		{ID: 1, Class: ClassSteady, Platform: "odroid-xu3", Err: "boom"},
	}
	rep := Aggregate(3, results)
	for name, g := range map[string]GroupStats{
		"overall":  rep.Overall,
		"platform": rep.ByPlatform["odroid-xu3"],
		"class":    rep.ByClass[ClassSteady],
	} {
		if g.Scenarios != 2 || g.Errors != 2 {
			t.Errorf("%s: scenarios/errors = %d/%d, want 2/2", name, g.Scenarios, g.Errors)
		}
		if g.Frames != 0 {
			t.Errorf("%s: frames = %d, want 0", name, g.Frames)
		}
		for field, v := range map[string]float64{
			"MissRate": g.MissRate, "MeanLatencyS": g.MeanLatencyS,
			"P95LatencyS": g.P95LatencyS, "MaxLatencyS": g.MaxLatencyS,
			"ThermalRate": g.ThermalRate,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %g with zero frames", name, field, v)
			}
			if v != 0 {
				t.Errorf("%s: %s = %g, want 0 for an all-errored group", name, field, v)
			}
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("all-errored report not JSON-encodable: %v", err)
	}
}

// TestAggregateMixedErrors: errored scenarios count toward Scenarios and
// Errors but contribute nothing to frame, energy or latency stats.
func TestAggregateMixedErrors(t *testing.T) {
	ok := Result{
		ID: 0, Class: ClassBursty, Platform: "jetson-nano",
		Released: 10, Completed: 8, Missed: 2,
		DurationS: 20, EnergyMJ: 500, OverThrottleS: 1,
		MaxLatencyS: 3, Latencies: []float64{1, 3},
	}
	bad := Result{ID: 1, Class: ClassBursty, Platform: "jetson-nano", Err: "boom",
		// Junk that must be ignored because the scenario errored.
		Released: 99, EnergyMJ: 9999, Latencies: []float64{7}}
	rep := Aggregate(1, []Result{ok, bad})
	g := rep.Overall
	if g.Scenarios != 2 || g.Errors != 1 {
		t.Fatalf("scenarios/errors = %d/%d, want 2/1", g.Scenarios, g.Errors)
	}
	if g.Frames != 10 || g.EnergyMJ != 500 {
		t.Errorf("errored scenario leaked into stats: frames %d, energy %g", g.Frames, g.EnergyMJ)
	}
	if g.MissRate != 0.2 {
		t.Errorf("miss rate = %g, want 0.2", g.MissRate)
	}
	if g.MeanLatencyS != 2 || g.MaxLatencyS != 3 {
		t.Errorf("latency stats = mean %g max %g, want 2/3", g.MeanLatencyS, g.MaxLatencyS)
	}
}
