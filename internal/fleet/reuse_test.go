package fleet

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestEngineReuseEquivalence is the tentpole's correctness property at the
// fleet layer: a Runner whose workers reuse one Reset engine across their
// whole scenario stream must produce results byte-identical to running
// every scenario on a fresh engine — at workers 1 (the serial reuse path)
// and 8 (each worker's independent stream), across a random mix of
// platforms, classes and policies.
func TestEngineReuseEquivalence(t *testing.T) {
	cfg := GeneratorConfig{
		Seed:     97,
		Classes:  []Class{ClassSteady, ClassBursty, ClassThermal},
		Policies: []string{"heuristic", "minenergy"},
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(gen.RunCount(20))

	// Reference: every scenario on its own fresh engine (RunOne passes a
	// nil engine, so each call constructs from scratch).
	fresh := make([]Result, len(scens))
	for i, s := range scens {
		fresh[i] = RunOne(s)
	}
	want, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		r := &Runner{Workers: workers}
		got, err := json.Marshal(r.Run(scens))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: engine-reuse results differ from fresh-engine results", workers)
		}
	}
}

// TestRunnerProgressCoversDelivered pins the Progress/OnResult ordering
// contract: every Progress(done, total) call with OnResult set arrives
// strictly after the OnResult calls for indices [0, done), so done can be
// read as "results 0..done-1 are on disk". Run under -race this also
// proves the callbacks are serialized.
func TestRunnerProgressCoversDelivered(t *testing.T) {
	cfg := GeneratorConfig{Seed: 11, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(gen.RunCount(24))

	for _, workers := range []int{1, 8} {
		var mu sync.Mutex
		delivered := 0
		lastDone := 0
		r := &Runner{
			Workers: workers,
			OnResult: func(index int, _ Result) {
				mu.Lock()
				defer mu.Unlock()
				if index != delivered {
					t.Errorf("workers=%d: OnResult index %d, want %d (in-order delivery)", workers, index, delivered)
				}
				delivered++
			},
			Progress: func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				if done > delivered {
					t.Errorf("workers=%d: Progress(done=%d) before OnResult delivered %d results", workers, done, delivered)
				}
				if done < lastDone {
					t.Errorf("workers=%d: Progress went backwards: %d after %d", workers, done, lastDone)
				}
				lastDone = done
				if total != len(scens) {
					t.Errorf("workers=%d: Progress total %d, want %d", workers, total, len(scens))
				}
			},
		}
		r.Run(scens)
		if delivered != len(scens) {
			t.Errorf("workers=%d: delivered %d of %d results", workers, delivered, len(scens))
		}
		if lastDone != len(scens) {
			t.Errorf("workers=%d: final Progress reported %d of %d", workers, lastDone, len(scens))
		}
	}
}
