package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
)

// A shard result stream is the crash-resumable encoding of a ShardResult:
// one NDJSON header line followed by one line per completed scenario, in
// ascending scenario-index order, each flushed as it completes. A process
// killed at any point leaves a prefix of the stream on disk; ResumeShard
// replays that prefix and re-runs only the missing range. A complete
// stream converts losslessly into a ShardResult (ReadShard sniffs and
// accepts it), so Merge and the golden report are untouched by how a shard
// was produced — batch, streamed, crashed-and-resumed, or retried.

// streamMagic identifies a shard result stream. It is the value of the
// header's first JSON key, so the opening bytes of a stream file are
// constant and a reader can distinguish a stream from a classic shard
// document by peeking.
const streamMagic = "emlrtm-fleet-shard"

// streamPrefix is the byte prefix every stream file starts with:
// json.Marshal emits struct fields in declaration order and Stream is
// StreamHeader's first field.
const streamPrefix = `{"stream":"` + streamMagic + `"`

// StreamHeader is the first line of a shard result stream: everything a
// resuming or merging process needs to prove the records that follow
// belong to the run it was asked for. It mirrors the ShardResult header,
// plus the latency-dropping mode, which changes record bytes and so must
// match between the crashed and the resuming run.
type StreamHeader struct {
	Stream        string          `json:"stream"`
	FormatVersion int             `json:"formatVersion"`
	Config        GeneratorConfig `json:"config"`
	Total         int             `json:"total"`
	Lo            int             `json:"lo"`
	Hi            int             `json:"hi"` // exclusive
	NoLatencies   bool            `json:"noLatencies,omitempty"`
}

// validate checks internal consistency, mirroring ShardResult.Validate's
// header checks.
func (h StreamHeader) validate() error {
	if h.Stream != streamMagic {
		return fmt.Errorf("fleet: stream marker %q, want %q", h.Stream, streamMagic)
	}
	if h.FormatVersion != ShardFormatVersion {
		return fmt.Errorf("fleet: stream format version %d, want %d", h.FormatVersion, ShardFormatVersion)
	}
	if h.Total <= 0 {
		return fmt.Errorf("fleet: stream total %d must be positive", h.Total)
	}
	if h.Lo < 0 || h.Hi < h.Lo || h.Hi > h.Total {
		return fmt.Errorf("fleet: stream range [%d,%d) outside fleet [0,%d)", h.Lo, h.Hi, h.Total)
	}
	if _, err := resolvePolicies(h.Config.Policies); err != nil {
		return err
	}
	return nil
}

// matches reports whether two headers describe the same shard of the same
// run, using the same normalized-config comparison Merge applies across
// shards. It is the resume gate: a stream written under a different seed,
// config, range or latency mode must not be extended.
func (h StreamHeader) matches(want StreamHeader) error {
	switch {
	case h.FormatVersion != want.FormatVersion:
		return fmt.Errorf("fleet: stream format version %d, want %d", h.FormatVersion, want.FormatVersion)
	case h.Config.Seed != want.Config.Seed:
		return fmt.Errorf("fleet: stream seed mismatch: file has %d, run wants %d", h.Config.Seed, want.Config.Seed)
	case h.Total != want.Total || h.Lo != want.Lo || h.Hi != want.Hi:
		return fmt.Errorf("fleet: stream range mismatch: file covers [%d,%d) of %d, run wants [%d,%d) of %d",
			h.Lo, h.Hi, h.Total, want.Lo, want.Hi, want.Total)
	case h.NoLatencies != want.NoLatencies:
		return fmt.Errorf("fleet: stream latency mode mismatch: file noLatencies=%v, run wants %v (resume with the same -nolat setting)", h.NoLatencies, want.NoLatencies)
	case !reflect.DeepEqual(h.Config.normalized(), want.Config.normalized()):
		return fmt.Errorf("fleet: stream config mismatch: file was written with %+v, run wants %+v", h.Config, want.Config)
	}
	return nil
}

// StreamWriter appends completed results to a shard stream as NDJSON, one
// flushed line per record, in scenario-index order. It validates every
// record against the header the way shard readers do, so a stream can only
// ever contain records of the run its header declares.
//
// Crash model: every record is flushed through the bufio layer to the
// underlying writer before Append returns, so a *process* death (SIGKILL,
// panic, OOM kill) loses at most the partially written final line, which
// resume discards. Flushing does NOT fsync: on a whole-machine power loss
// the OS page cache can drop any number of "flushed" trailing records (the
// file simply ends earlier — resume re-runs them, so no corruption, just
// lost work). Callers who need bounded data loss across power failure set
// SetSyncEvery, which fsyncs the underlying file every n records.
type StreamWriter struct {
	w    *bufio.Writer
	hdr  StreamHeader
	pols []string
	next int
	err  error // sticky: after a write error the stream is poisoned

	sync      func() error // fsync of the underlying file, if it has one
	syncEvery int          // fsync cadence in records; 0 = never
	sinceSync int
}

// SetSyncEvery makes the writer fsync the underlying file after every n
// appended records (0, the default, never fsyncs — see the crash model
// above). It is a no-op when the underlying writer has no Sync method
// (e.g. a pipe or an in-memory buffer). Each fsync bounds power-loss data
// loss to the last n records at a real durability cost per sync; leave it
// off unless re-running lost scenarios after a power failure is more
// expensive than fsyncing through the run.
func (sw *StreamWriter) SetSyncEvery(n int) { sw.syncEvery = n }

// NewStreamWriter writes the header line to w and returns a writer
// expecting records hdr.Lo, hdr.Lo+1, … in order. The Stream marker and
// FormatVersion fields are filled in; the caller provides the run
// identity (Config, Total, Lo, Hi, NoLatencies).
func NewStreamWriter(w io.Writer, hdr StreamHeader) (*StreamWriter, error) {
	hdr.Stream = streamMagic
	hdr.FormatVersion = ShardFormatVersion
	if err := hdr.validate(); err != nil {
		return nil, err
	}
	sw := newStreamWriterAt(w, hdr, hdr.Lo)
	line, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if _, err := sw.w.Write(append(line, '\n')); err != nil {
		return nil, err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, err
	}
	return sw, nil
}

// newStreamWriterAt builds a writer for a stream whose header (and next-lo
// records) are already on disk — the resume path. hdr must already be
// validated.
func newStreamWriterAt(w io.Writer, hdr StreamHeader, next int) *StreamWriter {
	pols, _ := resolvePolicies(hdr.Config.Policies) // validated with hdr
	sw := &StreamWriter{w: bufio.NewWriter(w), hdr: hdr, pols: pols, next: next}
	if s, ok := w.(interface{ Sync() error }); ok {
		sw.sync = s.Sync
	}
	return sw
}

// Append writes one completed result and flushes it to the underlying
// writer, so the record survives the process being killed immediately
// after. Records must arrive in scenario-index order (Runner.OnResult
// delivers exactly that) and must belong to the header's run.
func (sw *StreamWriter) Append(r Result) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.next >= sw.hdr.Hi {
		return fmt.Errorf("fleet: stream [%d,%d) is complete; cannot append scenario %d", sw.hdr.Lo, sw.hdr.Hi, r.ID)
	}
	if r.ID != sw.next {
		return fmt.Errorf("fleet: stream expects scenario %d next, got %d (records must be appended in scenario order)", sw.next, r.ID)
	}
	if err := validateResultAt(sw.hdr.Config.Seed, sw.pols, r, sw.next); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(append(line, '\n')); err != nil {
		sw.err = err
		return err
	}
	if err := sw.w.Flush(); err != nil {
		sw.err = err
		return err
	}
	if sw.syncEvery > 0 && sw.sync != nil {
		if sw.sinceSync++; sw.sinceSync >= sw.syncEvery {
			if err := sw.sync(); err != nil {
				sw.err = err
				return err
			}
			sw.sinceSync = 0
		}
	}
	sw.next++
	return nil
}

// Next returns the scenario index the writer expects to append next.
func (sw *StreamWriter) Next() int { return sw.next }

// Complete reports whether every record in the header's range has been
// appended.
func (sw *StreamWriter) Complete() bool { return sw.next == sw.hdr.Hi }

// StreamReader reads a shard result stream record by record, validating
// each against the header exactly as ShardResult.Validate would.
type StreamReader struct {
	br   *bufio.Reader
	hdr  StreamHeader
	pols []string
	next int
}

// NewStreamReader reads and validates the header line, transparently
// decompressing gzip input (a finished stream may be archived compressed;
// sniffed by magic number like ReadShard).
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	src, _, err := sniffGzip(br)
	if err != nil {
		return nil, err
	}
	return newStreamReader(bufio.NewReader(src))
}

// newStreamReader is NewStreamReader past the gzip sniff; ReadShard calls
// it directly after its own sniffing.
func newStreamReader(br *bufio.Reader) (*StreamReader, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("fleet: reading stream header: %w", err)
	}
	var hdr StreamHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("fleet: decoding stream header: %w", err)
	}
	if err := hdr.validate(); err != nil {
		return nil, err
	}
	pols, _ := resolvePolicies(hdr.Config.Policies) // validated with hdr
	return &StreamReader{br: br, hdr: hdr, pols: pols, next: hdr.Lo}, nil
}

// Header returns the validated stream header.
func (sr *StreamReader) Header() StreamHeader { return sr.hdr }

// Read returns the next record. It fails loud on a record that does not
// belong to the header's run, on trailing records beyond the range, and on
// a truncated final line (io.ErrUnexpectedEOF — the crash point of a
// killed writer). io.EOF means the stream ended cleanly at a record
// boundary; the caller decides whether the prefix read so far is complete.
func (sr *StreamReader) Read() (Result, error) {
	line, err := sr.br.ReadBytes('\n')
	if errors.Is(err, io.EOF) {
		if len(line) == 0 {
			return Result{}, io.EOF
		}
		return Result{}, fmt.Errorf("fleet: stream record %d truncated mid-line: %w", sr.next, io.ErrUnexpectedEOF)
	}
	if err != nil {
		return Result{}, fmt.Errorf("fleet: reading stream record %d: %w", sr.next, err)
	}
	if sr.next >= sr.hdr.Hi {
		return Result{}, fmt.Errorf("fleet: stream [%d,%d) carries records beyond its range", sr.hdr.Lo, sr.hdr.Hi)
	}
	var r Result
	if err := json.Unmarshal(line, &r); err != nil {
		return Result{}, fmt.Errorf("fleet: decoding stream record %d: %w", sr.next, err)
	}
	if err := validateResultAt(sr.hdr.Config.Seed, sr.pols, r, sr.next); err != nil {
		return Result{}, err
	}
	sr.next++
	return r, nil
}

// ReadStream reads a complete stream and converts it into the equivalent
// ShardResult. An incomplete stream — fewer records than the header's
// range — is an error; resume it with ResumeShard instead.
func ReadStream(r io.Reader) (ShardResult, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return ShardResult{}, err
	}
	return sr.readAll()
}

// readStreamShard is ReadStream past the gzip sniff, for ReadShard.
func readStreamShard(br *bufio.Reader) (ShardResult, error) {
	sr, err := newStreamReader(br)
	if err != nil {
		return ShardResult{}, err
	}
	return sr.readAll()
}

func (sr *StreamReader) readAll() (ShardResult, error) {
	results := make([]Result, 0, sr.hdr.Hi-sr.hdr.Lo)
	for {
		r, err := sr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return ShardResult{}, err
		}
		results = append(results, r)
	}
	if len(results) != sr.hdr.Hi-sr.hdr.Lo {
		return ShardResult{}, fmt.Errorf("fleet: stream incomplete: has %d of %d results (scenarios [%d,%d) of [%d,%d) missing); resume it with ResumeShard or fleetsim -resume",
			len(results), sr.hdr.Hi-sr.hdr.Lo, sr.hdr.Lo+len(results), sr.hdr.Hi, sr.hdr.Lo, sr.hdr.Hi)
	}
	s := ShardResult{
		FormatVersion: sr.hdr.FormatVersion,
		Config:        sr.hdr.Config,
		Total:         sr.hdr.Total,
		Lo:            sr.hdr.Lo,
		Hi:            sr.hdr.Hi,
		Results:       results,
	}
	if err := s.Validate(); err != nil {
		return ShardResult{}, err
	}
	return s, nil
}

// ResumeShard runs shard index (0-based) of count over a total-workload
// fleet, streaming each completed result to path, resuming from whatever a
// previous (possibly killed) process already flushed there. See
// Runner.ResumeShard.
func ResumeShard(path string, cfg GeneratorConfig, total, index, count, workers int) (ShardResult, error) {
	return (&Runner{Workers: workers}).ResumeShard(path, cfg, total, index, count)
}

// ResumeShard is the crash-resumable counterpart of RunShard: results
// stream to path as NDJSON, flushed per scenario, so a process killed at
// scenario k of its range restarts from k+1 — not from scratch. A missing
// or empty path starts a fresh stream; an existing one must carry a header
// matching the requested run (same seed, config, range, format version and
// latency mode) and is replayed, validated record by record, before the
// missing suffix is generated and run. A truncated final line — the usual
// kill-mid-write artifact — is discarded and rewritten. The returned ShardResult
// is identical to what RunShard would have produced in one uninterrupted
// process, which is what keeps the merged report byte-identical no matter
// how many times a shard crashed on the way.
func (r *Runner) ResumeShard(path string, cfg GeneratorConfig, total, index, count int) (ShardResult, error) {
	if total <= 0 {
		return ShardResult{}, fmt.Errorf("fleet: scenario count %d must be positive", total)
	}
	if count < 1 || index < 0 || index >= count {
		return ShardResult{}, fmt.Errorf("fleet: shard index %d of %d out of range", index, count)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return ShardResult{}, err
	}
	runs := gen.RunCount(total)
	lo, hi := ShardRange(runs, index, count)
	want := StreamHeader{
		Stream:        streamMagic,
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         runs,
		Lo:            lo,
		Hi:            hi,
		NoLatencies:   r.DropLatencies,
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return ShardResult{}, err
	}
	defer f.Close()

	replayed, offset, err := replayStream(f, want)
	if err != nil {
		return ShardResult{}, fmt.Errorf("%s: %w", path, err)
	}
	next := lo + len(replayed)

	// Drop any truncated final line and position the writer at the end of
	// the last intact record (or at 0 for a fresh/garbled-header file).
	if err := f.Truncate(offset); err != nil {
		return ShardResult{}, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return ShardResult{}, err
	}
	var sw *StreamWriter
	if offset == 0 {
		if sw, err = NewStreamWriter(f, want); err != nil {
			return ShardResult{}, err
		}
	} else {
		sw = newStreamWriterAt(f, want, next)
	}
	sw.SetSyncEvery(r.SyncEvery)

	results := replayed
	if next < hi {
		// Copy the runner so the stream hook does not clobber a caller's
		// own callback wiring; OnResult delivery is already serialized and
		// index-ordered, which is exactly the order the stream needs. The
		// copy shares the original's plan-stats accumulator, so the
		// caller's PlanCacheStats still sees this run.
		r.ensurePlanStats()
		rr := *r
		var streamErr error
		rr.OnResult = func(_ int, res Result) {
			if streamErr == nil {
				streamErr = sw.Append(res)
			}
		}
		fresh := rr.Run(gen.GenerateRange(next, hi))
		if streamErr != nil {
			return ShardResult{}, fmt.Errorf("%s: %w", path, streamErr)
		}
		results = append(results, fresh...)
	}
	if err := f.Sync(); err != nil {
		return ShardResult{}, err
	}

	s := ShardResult{
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         runs,
		Lo:            lo,
		Hi:            hi,
		Results:       results,
	}
	if err := s.Validate(); err != nil {
		return ShardResult{}, fmt.Errorf("%s: resumed shard failed validation: %w", path, err)
	}
	return s, nil
}

// replayStream reads an existing stream file from the start, returning the
// intact completed results and the byte offset just past the last intact
// line. A missing trailing newline or an unparsable final record marks the
// crash point: replay stops there and the caller truncates. An empty file
// — or one whose header line itself was torn mid-write — replays to
// nothing (offset 0, full restart). A header that parses but does not
// match the requested run is a hard error: the caller pointed resume at
// the wrong file, and extending it would corrupt someone else's shard.
func replayStream(f *os.File, want StreamHeader) ([]Result, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if fi.Size() == 0 {
		return nil, 0, nil
	}
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if errors.Is(err, io.EOF) {
		// Torn header write: nothing trustworthy in the file.
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var hdr StreamHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, 0, fmt.Errorf("fleet: existing file is not a shard result stream (header: %v); refusing to overwrite it", err)
	}
	if err := hdr.validate(); err != nil {
		return nil, 0, err
	}
	if err := hdr.matches(want); err != nil {
		return nil, 0, err
	}
	pols, _ := resolvePolicies(want.Config.Policies) // validated via NewGenerator
	offset := int64(len(line))
	var results []Result
	next := want.Lo
	for {
		line, err := br.ReadBytes('\n')
		if errors.Is(err, io.EOF) {
			// A partial trailing line (len > 0) is the crash point; either
			// way replay is done.
			return results, offset, nil
		}
		if err != nil {
			return nil, 0, err
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			// A garbled line mid-file: everything from here on is
			// untrustworthy. Truncate and re-run from this scenario — the
			// re-run reproduces the discarded records bit-identically.
			return results, offset, nil
		}
		if next >= want.Hi {
			return nil, 0, fmt.Errorf("fleet: stream [%d,%d) carries records beyond its range", want.Lo, want.Hi)
		}
		if err := validateResultAt(want.Config.Seed, pols, r, next); err != nil {
			return nil, 0, err
		}
		results = append(results, r)
		next++
		offset += int64(len(line))
	}
}
