package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Faulty scenarios carry at least one seeded window, never take every
// cluster down at once, and keep fail/repair times inside the run.
func TestFaultyClassScenarioShape(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{Seed: 5, Classes: []Class{ClassFaulty}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Generate(20) {
		sc := s.Script
		if len(sc.Faults) == 0 {
			t.Fatalf("%s: faulty scenario without fault windows", sc.Name)
		}
		plat := hw.Catalog()[s.Platform]
		clusters := map[string]bool{}
		for _, fw := range sc.Faults {
			if plat.Cluster(fw.Cluster) == nil {
				t.Fatalf("%s: fault names unknown cluster %q", sc.Name, fw.Cluster)
			}
			if clusters[fw.Cluster] {
				t.Fatalf("%s: two windows for cluster %q", sc.Name, fw.Cluster)
			}
			clusters[fw.Cluster] = true
			if fw.FailS <= 0 || fw.FailS >= sc.EndS {
				t.Fatalf("%s: fail time %.2f outside (0, %.2f)", sc.Name, fw.FailS, sc.EndS)
			}
			if fw.RepairS != 0 && (fw.RepairS <= fw.FailS || fw.RepairS >= sc.EndS) {
				t.Fatalf("%s: repair time %.2f outside (%.2f, %.2f)", sc.Name, fw.RepairS, fw.FailS, sc.EndS)
			}
		}
		if len(clusters) >= len(plat.Clusters) {
			t.Fatalf("%s: fault windows cover all %d clusters", sc.Name, len(plat.Clusters))
		}
	}
}

// The acceptance property of the whole degradation stack: however the
// windows land, no scenario ends with an app stuck on dead silicon while
// any cluster is still online.
func TestNoFaultyScenarioEndsUnhosted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 24 scenarios")
	}
	gen, err := NewGenerator(GeneratorConfig{Seed: 9, Classes: []Class{ClassFaulty}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Generate(24) {
		plat := hw.Catalog()[s.Platform]
		eng, _, rep, err := workload.RunEngineOpts(nil, s.Script, plat, TickS, nil, workload.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		anyOnline := false
		for _, cl := range plat.Clusters {
			ci, err := eng.Cluster(cl.Name)
			if err != nil {
				t.Fatal(err)
			}
			if ci.Online {
				anyOnline = true
			}
		}
		if !anyOnline {
			t.Fatalf("%s: generator produced a run ending with all clusters offline", s.Script.Name)
		}
		if n := eng.UnhostedApps(); n != 0 {
			t.Errorf("%s: %d apps unhosted at end of run (unhostedS=%.2f)", s.Script.Name, n, rep.UnhostedS)
		}
		if rep.ClusterFails == 0 {
			t.Errorf("%s: no fault was injected", s.Script.Name)
		}
	}
}

// Determinism across worker counts holds for fault-injected fleets.
func TestFaultyRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 16 scenarios twice")
	}
	const n, seed = 16, 13
	gen, err := NewGenerator(GeneratorConfig{Seed: seed, Classes: []Class{ClassFaulty}})
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(n)

	serial := (&Runner{Workers: 1}).Run(scens)
	parallel := (&Runner{Workers: 8}).Run(scens)
	js, err := json.Marshal(Aggregate(seed, serial))
	if err != nil {
		t.Fatal(err)
	}
	jp, err := json.Marshal(Aggregate(seed, parallel))
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jp) {
		t.Fatalf("faulty aggregate differs between workers=1 and workers=8:\n%s\n%s", js, jp)
	}
	if Aggregate(seed, serial).Overall.ClusterFails == 0 {
		t.Fatal("faulty fleet recorded no cluster failures")
	}
}

// Plan reuse (elision + memo cache) is invisible under faults: a faulty
// fleet with reuse disabled matches the cache-on run byte for byte.
func TestFaultyPlanCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a faulty fleet three times")
	}
	cfg := GeneratorConfig{
		Seed:     17,
		Classes:  []Class{ClassFaulty},
		Policies: []string{"heuristic", "minenergy", "maxaccuracy"},
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(gen.RunCount(8))

	off := &Runner{Workers: 1, DisablePlanCache: true}
	want, err := json.Marshal(off.Run(scens))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		r := &Runner{Workers: workers}
		got, err := json.Marshal(r.Run(scens))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: faulty plan-cache results differ from no-reuse results", workers)
		}
	}
}

// Aggregate edge cases: a group where every frame was degraded (healthy
// denominator zero) and a scenario with no frames at all must produce
// finite stats — NaN would poison the JSON report.
func TestAggregateDegradedEdgeCases(t *testing.T) {
	results := []Result{
		{
			ID: 0, Name: "all-degraded", Class: ClassFaulty, Platform: "p", Policy: "heuristic",
			Released: 100, Completed: 80, Missed: 10, Dropped: 5, JobsAborted: 5,
			ClusterFails: 1, DegradedFrames: 100, DegradedMissed: 10, DegradedDropped: 10,
			DurationS: 10,
		},
		{
			ID: 1, Name: "no-frames", Class: ClassFaulty, Platform: "p", Policy: "heuristic",
			ClusterFails: 2, DurationS: 10, UnhostedS: 10,
		},
	}
	rep := Aggregate(1, results)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("aggregate with degraded edge cases not marshallable: %v", err)
	}
	check := func(name string, g GroupStats) {
		for label, v := range map[string]float64{
			"missRate":         g.MissRate,
			"degradedMissRate": g.DegradedMissRate,
			"healthyMissRate":  g.HealthyMissRate,
			"meanRecoveryS":    g.MeanRecoveryS,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", name, label, v)
			}
		}
	}
	check("overall", rep.Overall)
	for k, g := range rep.ByClass {
		check("class "+string(k), g)
	}
	if rep.Overall.ClusterFails != 3 {
		t.Fatalf("ClusterFails = %d, want 3", rep.Overall.ClusterFails)
	}
	// All frames degraded: the healthy rate stays zero rather than 0/0.
	if rep.Overall.HealthyMissRate != 0 {
		t.Errorf("HealthyMissRate = %v with zero healthy frames", rep.Overall.HealthyMissRate)
	}
	if rep.Overall.DegradedMissRate != 0.2 {
		t.Errorf("DegradedMissRate = %v, want 0.2", rep.Overall.DegradedMissRate)
	}
	_ = data
}

// Golden pin for the fault-injection stack: one fixed faulty-only fleet.
// Regenerate with -update after deliberate behaviour changes only.
func TestGoldenFaultyReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 16 scenarios")
	}
	rep, _, err := Run(GeneratorConfig{Seed: 1, Classes: []Class{ClassFaulty}}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_faulty_seed1_n16.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("faulty report drifted from %s%s\n(if the change is intended, regenerate with -update and review the diff)",
			path, firstDiff(want, got))
	}
}

// Crash-resume over a faulty fleet: SIGKILL a shard mid-run (every
// scenario carries fault windows, so the kill lands mid-fault for the
// in-flight scenario) and the orchestrated resume must still match the
// single-process report byte for byte.
func TestOrchestrateSIGKILLResumeFaulty(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real shard subprocesses")
	}
	const seed = 29
	const workloads = 32
	const shards = 2
	cfg := helperFaultyConfig(seed)

	singleRep, singleRes, err := Run(cfg, workloads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if singleRep.Overall.ClusterFails == 0 {
		t.Fatal("faulty fleet recorded no cluster failures")
	}

	dir := t.TempDir()
	start := CommandStart(helperArgv("runf", seed, workloads), os.Stderr)

	spec := ShardSpec{Index: 0, Count: shards, Path: filepath.Join(dir, StreamFileName(0, shards))}
	proc, err := start(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(spec.Path); err == nil && bytes.Count(data, []byte("\n")) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			proc.Kill()
			t.Fatal("shard process produced no stream records within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := proc.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	proc.Wait()

	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: shards, Dir: dir,
		Start: start, StallTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("orchestrated faulty report after SIGKILL differs from single-process run")
	}
}
