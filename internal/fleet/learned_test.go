package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
)

// trainCfg is the battery's shared tiny-but-real training configuration:
// a dozen workloads across all platforms and classes is enough for every
// arm to win somewhere while keeping the battery in test-suite budget.
func trainCfg(seed uint64) TrainConfig {
	return TrainConfig{Seed: seed, Workloads: 12, Epochs: 1}
}

// TestTrainRejectsBadArms: arm validation must fail before any scenario
// runs — an empty name (a trailing comma in policytrain -arms), a
// duplicate, or a parameterised arm would otherwise surface only when the
// finished table fails to serialise, discarding the whole training run.
func TestTrainRejectsBadArms(t *testing.T) {
	for name, arms := range map[string][]string{
		"empty arm":         {"heuristic", "minenergy", ""},
		"duplicate arm":     {"heuristic", "heuristic"},
		"parameterised arm": {"heuristic", "learned:x.json"},
		"unknown arm":       {"heuristic", "nope"},
		"single arm":        {"heuristic"},
	} {
		cfg := trainCfg(1)
		cfg.Arms = arms
		if _, _, err := Train(cfg); err == nil {
			t.Errorf("%s: Train(%v) succeeded, want up-front validation error", name, arms)
		}
	}
}

// TestTrainSeedDeterminism: the trainer's core contract — same config,
// byte-identical table, regardless of worker count. This is what lets CI
// train twice and cmp, and what makes a committed table reproducible.
func TestTrainSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a fleet")
	}
	cfg := trainCfg(7)
	cfg.Workers = 1
	t1, rep1, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	t2, rep2, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := t1.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := t2.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed trained different tables at different worker counts")
	}
	if rep1.Runs != rep2.Runs || rep1.States != rep2.States {
		t.Fatalf("train reports diverged: %+v vs %+v", rep1, rep2)
	}
	if rep1.Runs != 12*3+12 {
		t.Errorf("runs = %d, want 12 workloads × 3 arms + 1 epoch × 12", rep1.Runs)
	}

	// A different seed must not (within this tiny budget, demonstrably)
	// train the identical byte stream — Seed is serialised, so even a
	// behaviourally identical table differs.
	cfg = trainCfg(8)
	t3, _, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := t3.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Error("different seeds produced byte-identical tables")
	}
}

// TestLearnedSweepDeterminism: a fleet sweep that includes a trained
// "learned:<path>" policy is bit-identical at any worker count, exactly
// like the built-in policies — the property every shard/merge/CI cmp
// depends on.
func TestLearnedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and sweeps a fleet")
	}
	table, _, err := Train(trainCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.json")
	if err := table.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	cfg := GeneratorConfig{Seed: 7, Policies: []string{
		"heuristic", "maxaccuracy", "minenergy", "learned:" + path,
	}}
	rep1, res1, err := Run(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep8, res8, err := Run(cfg, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(struct {
		Report
		Results []Result
	}{rep1, res1})
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(struct {
		Report
		Results []Result
	}{rep8, res8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("learned-policy sweep differs across worker counts")
	}
	if rep1.Regret == nil {
		t.Fatal("sweep report missing regret")
	}
	if _, ok := rep1.Regret["learned:"+path]; !ok {
		t.Fatalf("regret lacks the learned policy: %v", rep1.Regret)
	}
}

// TestRegretZeroForOracle: recompute the per-workload oracle directly from
// sweep results and pin the Report.Regret invariants — regret is never
// negative, on every workload the per-metric oracle policy is charged
// exactly zero for that metric, and the independently recomputed means
// match the report.
func TestRegretZeroForOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a fleet")
	}
	cfg := GeneratorConfig{Seed: 11, Policies: []string{"heuristic", "maxaccuracy", "minenergy"}}
	rep, results, err := Run(cfg, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regret == nil {
		t.Fatal("sweep report missing regret")
	}

	missRate := func(r Result) float64 {
		if r.Released == 0 {
			return 0
		}
		return float64(r.Missed+r.Dropped+r.JobsAborted) / float64(r.Released)
	}
	type agg struct {
		n                  int
		missSum, energySum float64
	}
	expect := map[string]*agg{}
	byWorkload := map[uint64][]Result{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("scenario %d failed: %s", r.ID, r.Err)
		}
		byWorkload[r.Seed] = append(byWorkload[r.Seed], r)
	}
	for _, runs := range byWorkload {
		if len(runs) != 3 {
			t.Fatalf("workload has %d runs, want one per policy", len(runs))
		}
		bestMiss, bestEnergy := math.Inf(1), math.Inf(1)
		for _, r := range runs {
			bestMiss = math.Min(bestMiss, missRate(r))
			bestEnergy = math.Min(bestEnergy, r.EnergyMJ)
		}
		zeroMiss, zeroEnergy := false, false
		for _, r := range runs {
			missEx, energyEx := missRate(r)-bestMiss, r.EnergyMJ-bestEnergy
			if missEx < 0 || energyEx < 0 {
				t.Fatalf("negative excess for %s on workload %d", r.Policy, r.Seed)
			}
			// The oracle policy of each metric pays zero on it.
			zeroMiss = zeroMiss || missEx == 0
			zeroEnergy = zeroEnergy || energyEx == 0
			a := expect[r.Policy]
			if a == nil {
				a = &agg{}
				expect[r.Policy] = a
			}
			a.n++
			a.missSum += missEx
			a.energySum += energyEx
		}
		if !zeroMiss || !zeroEnergy {
			t.Fatal("no policy achieved the oracle value on its own workload")
		}
	}
	wins := 0
	for pol, a := range expect {
		got, ok := rep.Regret[pol]
		if !ok {
			t.Fatalf("report regret lacks %q", pol)
		}
		if got.Workloads != a.n {
			t.Errorf("%s: workloads = %d, want %d", pol, got.Workloads, a.n)
		}
		if want := a.missSum / float64(a.n); math.Abs(got.MissRateRegret-want) > 1e-12 {
			t.Errorf("%s: miss-rate regret = %g, recomputed %g", pol, got.MissRateRegret, want)
		}
		if want := a.energySum / float64(a.n); math.Abs(got.EnergyRegretMJ-want) > 1e-9 {
			t.Errorf("%s: energy regret = %g, recomputed %g", pol, got.EnergyRegretMJ, want)
		}
		if got.MissRateRegret < 0 || got.EnergyRegretMJ < 0 {
			t.Errorf("%s: negative regret %+v", pol, got)
		}
		wins += got.OracleWins
	}
	if wins < len(byWorkload) {
		t.Errorf("oracle wins sum to %d across %d workloads; every workload has a winner", wins, len(byWorkload))
	}
}

// TestLearnedBeatsWorstBase is the training-objective smoke CI runs: on
// the training seed itself, the learned policy's mean training cost across
// the swept workloads must undercut the worst base arm's — otherwise the
// table learned nothing and shipping it would be pure overhead.
func TestLearnedBeatsWorstBase(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and sweeps a fleet")
	}
	cfg := trainCfg(7)
	table, rep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.json")
	if err := table.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	learned := "learned:" + path
	sweepCfg := GeneratorConfig{
		Seed:     cfg.Seed,
		Policies: append(append([]string(nil), rep.Arms...), learned),
	}
	_, results, err := Run(sweepCfg, cfg.Workloads, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Score every policy with the exact reward the table was trained on.
	cost := map[string]float64{}
	n := map[string]int{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("scenario %d failed: %s", r.ID, r.Err)
		}
		missRate := 0.0
		if r.Released > 0 {
			missRate = float64(r.Missed+r.Dropped) / float64(r.Released)
		}
		avgPowerW := 0.0
		if r.DurationS > 0 {
			avgPowerW = r.EnergyMJ / r.DurationS / 1000
		}
		cost[r.Policy] += table.MissWeight*missRate + table.EnergyWeight*avgPowerW
		n[r.Policy]++
	}
	worst, worstArm := math.Inf(-1), ""
	for _, arm := range rep.Arms {
		if c := cost[arm] / float64(n[arm]); c > worst {
			worst, worstArm = c, arm
		}
	}
	got := cost[learned] / float64(n[learned])
	t.Logf("learned mean cost %.4f vs worst base %q %.4f", got, worstArm, worst)
	if got >= worst {
		t.Fatalf("learned policy mean cost %.4f does not beat the worst base arm %q (%.4f)", got, worstArm, worst)
	}
}
