package fleet

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateRangeMatchesGenerate: a shard's slice of the index range
// must equal the same slice of a full generation — the property that
// makes contiguous shards independently reproducible.
func TestGenerateRangeMatchesGenerate(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	full := gen.Generate(20)
	for _, r := range [][2]int{{0, 20}, {0, 7}, {7, 13}, {13, 20}, {19, 20}, {5, 5}} {
		lo, hi := r[0], r[1]
		part := gen.GenerateRange(lo, hi)
		if len(part) != hi-lo {
			t.Fatalf("GenerateRange(%d,%d) yielded %d scenarios", lo, hi, len(part))
		}
		for i, s := range part {
			if fingerprint(s) != fingerprint(full[lo+i]) {
				t.Errorf("GenerateRange(%d,%d)[%d] != Generate(20)[%d]", lo, hi, i, lo+i)
			}
		}
	}
	if got := gen.GenerateRange(-3, -1); len(got) != 0 {
		t.Errorf("GenerateRange(-3,-1) yielded %d scenarios, want 0", len(got))
	}
}

// TestShardRangePartitions: for any (total, count), the shard ranges must
// cover [0, total) contiguously with sizes differing by at most one.
func TestShardRangePartitions(t *testing.T) {
	for _, total := range []int{1, 2, 5, 7, 16, 64, 100} {
		for count := 1; count <= 6; count++ {
			next, minSz, maxSz := 0, total, 0
			for i := 0; i < count; i++ {
				lo, hi := ShardRange(total, i, count)
				if lo != next {
					t.Fatalf("ShardRange(%d,%d,%d) = [%d,%d), want lo %d", total, i, count, lo, hi, next)
				}
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				next = hi
			}
			if next != total {
				t.Fatalf("shards of %d/%d cover [0,%d), want [0,%d)", total, count, next, total)
			}
			if count <= total && maxSz-minSz > 1 {
				t.Errorf("shards of %d/%d unbalanced: sizes span [%d,%d]", total, count, minSz, maxSz)
			}
		}
	}
}

// TestShardEquivalenceProperty is the distributed layer's core contract:
// across randomized seeds, fleet sizes, shard splits (1-5 shards with
// uneven boundaries) and worker counts, running shards in separate
// runners, round-tripping each through the shard-file encoding, and
// merging must reproduce the single-process report and results
// byte-for-byte (compared via JSON, so every exported field — including
// the pooled Latencies — participates).
func TestShardEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~60 scenarios")
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 3; trial++ {
		cfg := GeneratorConfig{Seed: rng.Uint64()}
		n := 6 + rng.Intn(9) // 6..14 scenarios

		singleRep, singleRes, err := Run(cfg, n, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}

		// Random uneven split into 1-5 contiguous shards.
		count := 1 + rng.Intn(5)
		if count > n {
			count = n
		}
		cuts := map[int]bool{0: true, n: true}
		for len(cuts) < count+1 {
			cuts[1+rng.Intn(n-1)] = true
		}
		bounds := make([]int, 0, len(cuts))
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sortInts(bounds)

		gen, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var shards []ShardResult
		for i := 0; i+1 < len(bounds); i++ {
			lo, hi := bounds[i], bounds[i+1]
			runner := &Runner{Workers: 1 + rng.Intn(4)}
			s := ShardResult{
				FormatVersion: ShardFormatVersion,
				Config:        cfg,
				Total:         n,
				Lo:            lo,
				Hi:            hi,
				Results:       runner.Run(gen.GenerateRange(lo, hi)),
			}
			// Round-trip through the file encoding: merged results must be
			// built from what a reader decodes, not from in-memory state.
			var buf bytes.Buffer
			if err := WriteShard(&buf, s); err != nil {
				t.Fatalf("trial %d: WriteShard [%d,%d): %v", trial, lo, hi, err)
			}
			back, err := ReadShard(&buf)
			if err != nil {
				t.Fatalf("trial %d: ReadShard [%d,%d): %v", trial, lo, hi, err)
			}
			shards = append(shards, back)
		}
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

		mergedRep, mergedRes, err := Merge(shards...)
		if err != nil {
			t.Fatalf("trial %d (seed %d, n %d, %d shards): %v", trial, cfg.Seed, n, len(shards), err)
		}
		wantRep, _ := json.Marshal(singleRep)
		gotRep, _ := json.Marshal(mergedRep)
		if !bytes.Equal(wantRep, gotRep) {
			t.Errorf("trial %d (seed %d, n %d, bounds %v): merged report != single-process report\nsingle: %s\nmerged: %s",
				trial, cfg.Seed, n, bounds, wantRep, gotRep)
		}
		wantRes, _ := json.Marshal(singleRes)
		gotRes, _ := json.Marshal(mergedRes)
		if !bytes.Equal(wantRes, gotRes) {
			t.Errorf("trial %d (seed %d, n %d, bounds %v): merged results != single-process results",
				trial, cfg.Seed, n, bounds)
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fakeShard fabricates a structurally valid shard without running any
// simulations: IDs and seeds follow the real derivation, so only the
// aspect a test deliberately corrupts is wrong.
func fakeShard(cfg GeneratorConfig, total, lo, hi int) ShardResult {
	results := make([]Result, 0, hi-lo)
	for id := lo; id < hi; id++ {
		results = append(results, Result{
			ID:       id,
			Seed:     scenarioSeed(cfg.Seed, id),
			Class:    ClassSteady,
			Platform: "odroid-xu3",
			Policy:   "heuristic",
		})
	}
	return ShardResult{
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         total,
		Lo:            lo,
		Hi:            hi,
		Results:       results,
	}
}

// TestMergeRejections: every way shards can fail to describe one fleet
// must produce a clear error naming the problem.
func TestMergeRejections(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	otherSeed := GeneratorConfig{Seed: 6}
	otherCfg := GeneratorConfig{Seed: 5, Platforms: []string{"odroid-xu3"}}

	tamperedSeed := fakeShard(cfg, 8, 4, 8)
	tamperedSeed.Results[0].Seed++

	cases := []struct {
		name    string
		shards  []ShardResult
		wantErr string
	}{
		{"no shards", nil, "no shards"},
		{"gap at start", []ShardResult{fakeShard(cfg, 8, 2, 8)}, "gap"},
		{"gap in middle", []ShardResult{fakeShard(cfg, 8, 0, 3), fakeShard(cfg, 8, 5, 8)}, "gap"},
		{"gap at end", []ShardResult{fakeShard(cfg, 8, 0, 6)}, "gap"},
		{"overlap", []ShardResult{fakeShard(cfg, 8, 0, 5), fakeShard(cfg, 8, 3, 8)}, "overlap"},
		{"duplicate shard", []ShardResult{fakeShard(cfg, 8, 0, 8), fakeShard(cfg, 8, 0, 8)}, "overlap"},
		{"master seed mismatch", []ShardResult{fakeShard(cfg, 8, 0, 4), fakeShard(otherSeed, 8, 4, 8)}, "seed mismatch"},
		{"config mismatch", []ShardResult{fakeShard(cfg, 8, 0, 4), fakeShard(otherCfg, 8, 4, 8)}, "config mismatch"},
		{"total mismatch", []ShardResult{fakeShard(cfg, 8, 0, 4), fakeShard(cfg, 12, 4, 12)}, "fleet-size mismatch"},
		{"tampered result seed", []ShardResult{fakeShard(cfg, 8, 0, 4), tamperedSeed}, "does not derive"},
	}
	for _, tc := range cases {
		_, _, err := Merge(tc.shards...)
		if err == nil {
			t.Errorf("%s: merge accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// The valid counterpart of the cases above must merge.
	if _, res, err := Merge(fakeShard(cfg, 8, 4, 8), fakeShard(cfg, 8, 0, 4)); err != nil {
		t.Errorf("valid out-of-order shards rejected: %v", err)
	} else if len(res) != 8 || res[0].ID != 0 || res[7].ID != 7 {
		t.Errorf("merged results not restored to scenario order: %d results", len(res))
	}
}

// TestShardValidate covers the consistency checks a reader runs before
// trusting a shard file.
func TestShardValidate(t *testing.T) {
	cfg := GeneratorConfig{Seed: 9}

	badVersion := fakeShard(cfg, 4, 0, 4)
	badVersion.FormatVersion = ShardFormatVersion + 1

	badRange := fakeShard(cfg, 4, 0, 4)
	badRange.Hi = 5

	badCount := fakeShard(cfg, 4, 0, 4)
	badCount.Results = badCount.Results[:3]

	badOrder := fakeShard(cfg, 4, 0, 4)
	badOrder.Results[1], badOrder.Results[2] = badOrder.Results[2], badOrder.Results[1]

	cases := []struct {
		name    string
		shard   ShardResult
		wantErr string
	}{
		{"future format version", badVersion, "format version"},
		{"range outside fleet", badRange, "outside fleet"},
		{"missing results", badCount, "carries 3 results"},
		{"out-of-order results", badOrder, "scenario order"},
	}
	for _, tc := range cases {
		err := tc.shard.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(tc.shard); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadShard(&buf); err == nil {
			t.Errorf("%s: ReadShard accepted what Validate rejects", tc.name)
		}
	}

	if err := fakeShard(cfg, 4, 0, 4).Validate(); err != nil {
		t.Errorf("valid shard rejected: %v", err)
	}
	if _, err := ReadShard(strings.NewReader("{not json")); err == nil {
		t.Error("ReadShard accepted malformed JSON")
	}
}

// TestReadShardFileCorrupt: damaged shard files must fail loudly with the
// file path in the error, never decode to a partial or empty shard.
func TestReadShardFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	shard := fakeShard(GeneratorConfig{Seed: 5}, 8, 0, 4)

	// A gzip shard cut off mid-stream: write a valid file, keep half.
	truncated := filepath.Join(dir, "truncated.json.gz")
	if err := WriteShardFile(truncated, shard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardFile(truncated); err == nil {
		t.Error("truncated gzip shard accepted")
	} else if !strings.Contains(err.Error(), truncated) {
		t.Errorf("truncated-gzip error %q does not name the file", err)
	}

	// A stream file whose header is valid but whose body is garbage.
	garbled := filepath.Join(dir, "garbled.ndjson")
	var buf bytes.Buffer
	if _, err := NewStreamWriter(&buf, StreamHeader{Config: GeneratorConfig{Seed: 5}, Total: 8, Lo: 0, Hi: 4}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("this is not a result record\n")
	if err := os.WriteFile(garbled, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardFile(garbled); err == nil {
		t.Error("stream with garbage body accepted")
	} else if !strings.Contains(err.Error(), garbled) {
		t.Errorf("garbled-stream error %q does not name the file", err)
	}

	// A missing file: the error must carry the path too.
	missing := filepath.Join(dir, "no-such-shard.json")
	if _, err := ReadShardFile(missing); err == nil {
		t.Error("missing shard file accepted")
	} else if !strings.Contains(err.Error(), missing) {
		t.Errorf("missing-file error %q does not name the file", err)
	}
}

// TestWriteShardFileAtomic: a failed write must leave any existing file
// untouched and no temp litter behind.
func TestWriteShardFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	good := fakeShard(GeneratorConfig{Seed: 5}, 8, 0, 4)
	if err := WriteShardFile(path, good); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := fakeShard(GeneratorConfig{Seed: 5}, 8, 0, 4)
	bad.Hi = 99 // fails Validate inside WriteShard
	if err := WriteShardFile(path, bad); err == nil {
		t.Fatal("invalid shard written")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed write clobbered the existing shard file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("failed write left %d entries in the directory, want just the original", len(entries))
	}
}

// TestRunShardBounds covers RunShard argument validation.
func TestRunShardBounds(t *testing.T) {
	cfg := GeneratorConfig{Seed: 1}
	if _, err := RunShard(cfg, 0, 0, 1, 1); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := RunShard(cfg, 4, 2, 2, 1); err == nil {
		t.Error("index >= count accepted")
	}
	if _, err := RunShard(cfg, 4, -1, 2, 1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := RunShard(cfg, 4, 0, 0, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := RunShard(GeneratorConfig{Platforms: []string{"nope"}}, 4, 0, 2, 1); err == nil {
		t.Error("invalid generator config accepted")
	}
}
