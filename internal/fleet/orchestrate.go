package fleet

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// ShardSpec describes one shard assignment handed to a Start function: its
// 0-based index of Count, the run-index range it owns, and the stream file
// it must write (and may resume).
type ShardSpec struct {
	Index, Count int
	Lo, Hi       int    // run-index range [Lo, Hi), for logging/labels
	Path         string // NDJSON stream file the shard appends to
}

// ShardProcess is the orchestrator's handle on a dispatched shard: Wait
// blocks until it exits, Kill terminates it (the straggler path). An
// exec'd subprocess satisfies this via CommandStart; tests satisfy it
// in-process.
type ShardProcess interface {
	Wait() error
	Kill() error
}

// OrchestratorConfig parametrises Orchestrate.
type OrchestratorConfig struct {
	// Config and Workloads define the fleet, exactly as in Run/RunShard.
	Config    GeneratorConfig
	Workloads int
	// Shards is how many shard processes partition the fleet.
	Shards int
	// Dir receives one stream file per shard (StreamFileName). Existing
	// complete or partial streams in Dir are reused/resumed, never
	// recomputed — re-running an interrupted orchestration picks up where
	// it died.
	Dir string
	// Start launches one shard; it must (eventually) complete spec.Path as
	// a shard result stream, resuming any existing content. Nil runs
	// shards in this process via Runner.ResumeShard (straggler detection
	// then has nothing to kill and is disabled).
	Start func(ShardSpec) (ShardProcess, error)
	// Workers is the per-shard worker-pool size for in-process shards
	// (Start == nil); 0 means NumCPU.
	Workers int
	// DropLatencies runs in-process shards without raw latency samples
	// (the -nolat mode); subprocess Starts encode this in their argv.
	DropLatencies bool
	// StallTimeout declares a dispatched shard dead when its stream file
	// gains no bytes for this long (every completed scenario flushes, so
	// file growth is a progress signal; mtime is only a fallback). The
	// straggler is killed and the attempt counts as failed; the retry
	// resumes from its last flushed scenario. Zero disables detection.
	StallTimeout time.Duration
	// PollInterval is how often stall detection samples the stream file's
	// size; default 200ms.
	PollInterval time.Duration
	// MaxAttempts bounds tries per shard (first run + retries); default 3.
	MaxAttempts int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt; default 250ms.
	RetryBackoff time.Duration
	// Logf, when set, receives orchestration progress: dispatches,
	// completions, stalls, retries, merges.
	Logf func(format string, args ...any)
}

// StreamFileName is the stream file the orchestrator assigns to shard
// index (0-based) of count inside its Dir. Exported so a shard started —
// or crashed — outside the orchestrator can drop its stream where a later
// Orchestrate call will find and resume it.
func StreamFileName(index, count int) string {
	return fmt.Sprintf("shard-%03d-of-%03d.ndjson", index+1, count)
}

// Orchestrate runs a whole fleet as supervised shards: it dispatches one
// process per shard (each streaming results to its file in Dir), monitors
// stream progress, kills and retries stalled or dead shards with bounded
// backoff — each retry resuming from the shard's last flushed scenario —
// and merges shards as they complete. Because every shard stream is
// validated against the run's seed/config/range and each scenario is a
// pure function of its spec, the merged report is byte-identical to a
// single-process Run of the same fleet no matter how many crashes,
// retries, or out-of-order completions happened along the way.
func Orchestrate(cfg OrchestratorConfig) (Report, []Result, error) {
	if cfg.Workloads <= 0 {
		return Report{}, nil, fmt.Errorf("fleet: scenario count %d must be positive", cfg.Workloads)
	}
	if cfg.Shards < 1 {
		return Report{}, nil, fmt.Errorf("fleet: shard count %d must be at least 1", cfg.Shards)
	}
	gen, err := NewGenerator(cfg.Config)
	if err != nil {
		return Report{}, nil, err
	}
	if cfg.Dir == "" {
		return Report{}, nil, fmt.Errorf("fleet: orchestrator needs a stream directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return Report{}, nil, err
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	runs := gen.RunCount(cfg.Workloads)
	type outcome struct {
		index    int
		shard    ShardResult
		attempts int
		err      error
	}
	ch := make(chan outcome)
	for i := 0; i < cfg.Shards; i++ {
		lo, hi := ShardRange(runs, i, cfg.Shards)
		spec := ShardSpec{
			Index: i, Count: cfg.Shards,
			Lo: lo, Hi: hi,
			Path: filepath.Join(cfg.Dir, StreamFileName(i, cfg.Shards)),
		}
		go func(spec ShardSpec) {
			s, attempts, err := superviseShard(cfg, spec, logf)
			ch <- outcome{index: spec.Index, shard: s, attempts: attempts, err: err}
		}(spec)
	}

	// Collect shards as they complete — the incremental merge. Order of
	// completion does not matter: Merge restores scenario order, and a
	// late straggler only delays, never changes, the report.
	shards := make([]ShardResult, 0, cfg.Shards)
	var firstErr error
	for done := 0; done < cfg.Shards; done++ {
		o := <-ch
		if o.err != nil {
			logf("fleet: shard %d/%d FAILED: %v", o.index+1, cfg.Shards, o.err)
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		shards = append(shards, o.shard)
		logf("fleet: shard %d/%d complete after %d attempt(s); merged %d/%d shards (%d results)",
			o.index+1, cfg.Shards, o.attempts, len(shards), cfg.Shards, len(o.shard.Results))
	}
	if firstErr != nil {
		return Report{}, nil, firstErr
	}
	return Merge(shards...)
}

// superviseShard drives one shard to completion: attempt, watch, kill on
// stall, retry with exponential backoff, resume from the stream each time.
func superviseShard(cfg OrchestratorConfig, spec ShardSpec, logf func(string, ...any)) (ShardResult, int, error) {
	backoff := cfg.RetryBackoff
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			logf("fleet: shard %d/%d retry %d after %v: %v", spec.Index+1, spec.Count, attempt-1, backoff, lastErr)
			//detlint:allow wallclock retry backoff paces real shard subprocesses, not simulated time
			time.Sleep(backoff)
			backoff *= 2
		}
		s, err := attemptShard(cfg, spec)
		if err == nil {
			return s, attempt, nil
		}
		lastErr = err
	}
	return ShardResult{}, cfg.MaxAttempts, fmt.Errorf("fleet: shard %d/%d failed after %d attempts: %w",
		spec.Index+1, spec.Count, cfg.MaxAttempts, lastErr)
}

// attemptShard makes one attempt at a shard — in-process when no Start
// function is configured, otherwise dispatch-and-watch — and reads the
// finished stream back as a validated, complete ShardResult.
func attemptShard(cfg OrchestratorConfig, spec ShardSpec) (ShardResult, error) {
	if cfg.Start == nil {
		r := &Runner{Workers: cfg.Workers, DropLatencies: cfg.DropLatencies}
		return r.ResumeShard(spec.Path, cfg.Config, cfg.Workloads, spec.Index, spec.Count)
	}
	proc, err := cfg.Start(spec)
	if err != nil {
		return ShardResult{}, fmt.Errorf("starting shard: %w", err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- proc.Wait() }()

	// Every appended record flushes, so the stream file's *size* is the
	// shard's heartbeat. Size growth is tracked against our own clock —
	// comparing mtimes between polls would miss progress on filesystems
	// with coarse (1s+) mtime granularity, where two appends within the
	// same second leave the mtime unchanged and a fast shard looks dead.
	// The mtime is kept only as a fallback for a writer that rewrites
	// bytes in place without growing the file. Before the file exists the
	// attempt start is the baseline.
	last := time.Now() //detlint:allow wallclock stall detection watches a real OS process's stream file
	lastSize := int64(-1)
	ticker := time.NewTicker(cfg.PollInterval) //detlint:allow wallclock polling cadence for a real subprocess heartbeat
	defer ticker.Stop()
	stalled := false
	for {
		select {
		case werr := <-waitCh:
			if stalled {
				return ShardResult{}, fmt.Errorf("killed: no stream progress on %s for %v", spec.Path, cfg.StallTimeout)
			}
			if werr != nil {
				return ShardResult{}, fmt.Errorf("shard process: %w", werr)
			}
			// Exited cleanly: the stream must now be complete; reading it
			// back revalidates every record.
			return ReadShardFile(spec.Path)
		case <-ticker.C:
			if cfg.StallTimeout <= 0 || stalled {
				continue
			}
			if fi, err := os.Stat(spec.Path); err == nil {
				if fi.Size() != lastSize {
					lastSize = fi.Size()
					last = time.Now() //detlint:allow wallclock heartbeat timestamps are host time by nature
				} else if fi.ModTime().After(last) {
					last = fi.ModTime()
				}
			}
			//detlint:allow wallclock stall timeout measures real elapsed time of a real process
			if time.Since(last) > cfg.StallTimeout {
				stalled = true
				proc.Kill() // Wait will return; the select above reports the stall
			}
		}
	}
}

// CommandStart adapts an argv builder into an Orchestrate Start function
// that exec's each shard as a subprocess (stdout/stderr to errw, which may
// be nil to discard). The command must write — resuming if partial — the
// stream at spec.Path; fleetsim orchestrate builds
// "fleetsim -shard i/m -resume -out <spec.Path> …" argvs this way.
func CommandStart(argv func(ShardSpec) []string, errw io.Writer) func(ShardSpec) (ShardProcess, error) {
	return func(spec ShardSpec) (ShardProcess, error) {
		a := argv(spec)
		if len(a) == 0 {
			return nil, fmt.Errorf("fleet: empty shard command")
		}
		cmd := exec.Command(a[0], a[1:]...)
		cmd.Stdout = errw
		cmd.Stderr = errw
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmdProcess{cmd}, nil
	}
}

type cmdProcess struct{ cmd *exec.Cmd }

func (p cmdProcess) Wait() error { return p.cmd.Wait() }
func (p cmdProcess) Kill() error { return p.cmd.Process.Kill() }
