package fleet

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStream encodes a shard as a result stream, returning the bytes.
func writeStream(t *testing.T, s ShardResult, nolat bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, StreamHeader{
		Config: s.Config, Total: s.Total, Lo: s.Lo, Hi: s.Hi, NoLatencies: nolat,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Results {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if !sw.Complete() {
		t.Fatalf("stream incomplete after %d appends", len(s.Results))
	}
	return buf.Bytes()
}

// TestStreamRoundTrip: a complete stream converts losslessly back into the
// ShardResult it encodes — through ReadStream, through the sniffing
// ReadShard (the merge path), and through gzip on top.
func TestStreamRoundTrip(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	want := fakeShard(cfg, 8, 2, 6)
	raw := writeStream(t, want, false)

	if !bytes.HasPrefix(raw, []byte(streamPrefix)) {
		t.Fatalf("stream does not start with %q: %q", streamPrefix, raw[:40])
	}

	got, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("ReadStream round-trip differs:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}

	// ReadShard must sniff and accept the stream encoding.
	got2, err := ReadShard(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadShard rejected a complete stream: %v", err)
	}
	got2JSON, _ := json.Marshal(got2)
	if !bytes.Equal(wantJSON, got2JSON) {
		t.Error("ReadShard stream round-trip differs from original shard")
	}

	// And the same through gzip (an archived stream).
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw)
	zw.Close()
	got3, err := ReadShard(&zbuf)
	if err != nil {
		t.Fatalf("ReadShard rejected a gzipped stream: %v", err)
	}
	got3JSON, _ := json.Marshal(got3)
	if !bytes.Equal(wantJSON, got3JSON) {
		t.Error("gzipped stream round-trip differs from original shard")
	}
}

// TestStreamWriterRejects: the writer refuses records that do not belong
// to its header's run, out-of-order appends, and appends past the range.
func TestStreamWriterRejects(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	s := fakeShard(cfg, 8, 2, 6)

	if _, err := NewStreamWriter(io.Discard, StreamHeader{Config: cfg, Total: 8, Lo: 5, Hi: 3}); err == nil {
		t.Error("inverted range header accepted")
	}

	sw, err := NewStreamWriter(io.Discard, StreamHeader{Config: cfg, Total: 8, Lo: 2, Hi: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(s.Results[1]); err == nil || !strings.Contains(err.Error(), "scenario order") {
		t.Errorf("out-of-order append error = %v, want scenario-order complaint", err)
	}
	tampered := s.Results[0]
	tampered.Seed++
	if err := sw.Append(tampered); err == nil || !strings.Contains(err.Error(), "does not derive") {
		t.Errorf("tampered-seed append error = %v, want seed complaint", err)
	}
	for _, r := range s.Results {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Append(s.Results[len(s.Results)-1]); err == nil || !strings.Contains(err.Error(), "complete") {
		t.Errorf("append past range error = %v, want completeness complaint", err)
	}
}

// TestStreamReaderFailLoud: garbled headers, foreign records, truncation
// and trailing garbage all surface as errors, never as a zero-valued or
// silently shortened shard.
func TestStreamReaderFailLoud(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	s := fakeShard(cfg, 8, 2, 6)
	raw := writeStream(t, s, false)
	lines := bytes.SplitAfter(raw, []byte("\n"))

	if _, err := NewStreamReader(strings.NewReader("{\"stream\":\"wrong\"}\n")); err == nil {
		t.Error("wrong stream marker accepted")
	}
	if _, err := NewStreamReader(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}

	// Truncated final record: the crash artifact a reader must name.
	trunc := raw[:len(raw)-3]
	if _, err := ReadStream(bytes.NewReader(trunc)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated record error = %v, want io.ErrUnexpectedEOF", err)
	}

	// A cleanly cut but incomplete stream converts only via resume.
	short := bytes.Join(lines[:3], nil) // header + 2 records
	if _, err := ReadStream(bytes.NewReader(short)); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete stream error = %v, want incompleteness complaint", err)
	}

	// A record from a different run (tampered seed) fails validation.
	var rec Result
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatal(err)
	}
	rec.Seed++
	bad, _ := json.Marshal(rec)
	corrupt := append(append([]byte{}, lines[0]...), append(bad, '\n')...)
	if _, err := ReadStream(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "does not derive") {
		t.Errorf("foreign record error = %v, want seed complaint", err)
	}

	// More records than the header's range declares.
	over := append(append([]byte{}, raw...), lines[len(lines)-2]...)
	if _, err := ReadStream(bytes.NewReader(over)); err == nil || !strings.Contains(err.Error(), "beyond its range") {
		t.Errorf("overlong stream error = %v, want beyond-range complaint", err)
	}
}

// TestResumeShardFromCrash is the crash-resume contract: a stream cut off
// mid-record (as a SIGKILL leaves it) resumes from the last intact
// scenario and produces a ShardResult identical to an uninterrupted run —
// and the finished file reads back as the same shard via ReadShardFile.
func TestResumeShardFromCrash(t *testing.T) {
	cfg := GeneratorConfig{Seed: 11, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}
	const total = 6
	want, err := RunShard(cfg, total, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	path := filepath.Join(t.TempDir(), "shard.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f, StreamHeader{Config: cfg, Total: total, Lo: 0, Hi: total})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want.Results[:2] {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The torn tail of a record the OS flushed only partially.
	if _, err := f.WriteString(`{"id":2,"name":"stea`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := ResumeShard(path, cfg, total, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Error("resumed shard differs from uninterrupted run")
	}

	// The completed stream file itself must now read back as the shard.
	back, err := ReadShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	backJSON, _ := json.Marshal(back)
	if !bytes.Equal(wantJSON, backJSON) {
		t.Error("completed stream file differs from uninterrupted run")
	}

	// Resuming a complete stream is an idempotent no-op.
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ResumeShard(path, cfg, total, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	againJSON, _ := json.Marshal(again)
	if !bytes.Equal(wantJSON, againJSON) {
		t.Error("re-resume of a complete stream differs")
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Errorf("re-resume grew the file: %d -> %d bytes", before.Size(), after.Size())
	}

	// A fresh path runs the whole range and still matches.
	fresh, err := ResumeShard(filepath.Join(t.TempDir(), "fresh.ndjson"), cfg, total, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, _ := json.Marshal(fresh)
	if !bytes.Equal(wantJSON, freshJSON) {
		t.Error("fresh streamed shard differs from RunShard")
	}
}

// TestResumeShardRefusesForeignStreams: resume must never extend a stream
// belonging to a different run, range, latency mode — or a file that is
// not a stream at all.
func TestResumeShardRefusesForeignStreams(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	dir := t.TempDir()

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	header := func(h StreamHeader) []byte {
		h.Stream = streamMagic
		h.FormatVersion = ShardFormatVersion
		b, _ := json.Marshal(h)
		return append(b, '\n')
	}

	cases := []struct {
		name    string
		path    string
		runner  Runner
		wantErr string
	}{
		{"different seed", write("seed.ndjson",
			header(StreamHeader{Config: GeneratorConfig{Seed: 6}, Total: 8, Lo: 0, Hi: 4})),
			Runner{}, "seed mismatch"},
		{"different range", write("range.ndjson",
			header(StreamHeader{Config: cfg, Total: 8, Lo: 4, Hi: 8})),
			Runner{}, "range mismatch"},
		{"different latency mode", write("nolat.ndjson",
			header(StreamHeader{Config: cfg, Total: 8, Lo: 0, Hi: 4, NoLatencies: true})),
			Runner{}, "latency mode"},
		{"not a stream", write("noise.txt", []byte("hello world\n")),
			Runner{}, "not a shard result stream"},
	}
	for _, tc := range cases {
		_, err := tc.runner.ResumeShard(tc.path, cfg, 8, 0, 2)
		if err == nil {
			t.Errorf("%s: resume accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), tc.path) {
			t.Errorf("%s: error %q does not name the file", tc.name, err)
		}
	}
}

// TestRunnerOnResultOrder: the completion callback must deliver every
// scenario exactly once, in index order, at any worker count — the seam
// the stream writer depends on.
func TestRunnerOnResultOrder(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{Seed: 3, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}})
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(8)
	for _, workers := range []int{1, 3, 8} {
		var seen []int
		r := &Runner{Workers: workers, OnResult: func(i int, res Result) {
			if res.ID != scens[i].ID {
				t.Errorf("workers=%d: OnResult(%d) carries result ID %d, want %d", workers, i, res.ID, scens[i].ID)
			}
			seen = append(seen, i)
		}}
		r.Run(scens)
		if len(seen) != len(scens) {
			t.Fatalf("workers=%d: %d callbacks, want %d", workers, len(seen), len(scens))
		}
		for i, idx := range seen {
			if idx != i {
				t.Fatalf("workers=%d: delivery order %v not ascending", workers, seen)
			}
		}
	}
}

// syncCounter is an in-memory stream target with an fsync-shaped Sync
// method, counting calls.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (w *syncCounter) Sync() error { w.syncs++; return nil }

// TestStreamWriterSyncEvery: SetSyncEvery fsyncs the underlying writer
// every n records — and only then; the default never syncs, and a writer
// without a Sync method is a silent no-op.
func TestStreamWriterSyncEvery(t *testing.T) {
	cfg := GeneratorConfig{Seed: 5}
	s := fakeShard(cfg, 8, 2, 6) // 4 records

	newWriter := func(w io.Writer) *StreamWriter {
		t.Helper()
		sw, err := NewStreamWriter(w, StreamHeader{Config: cfg, Total: s.Total, Lo: s.Lo, Hi: s.Hi})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	appendAll := func(sw *StreamWriter) {
		t.Helper()
		for _, r := range s.Results {
			if err := sw.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Default: the header and 4 records trigger zero syncs.
	w := &syncCounter{}
	appendAll(newWriter(w))
	if w.syncs != 0 {
		t.Errorf("default writer synced %d times, want 0", w.syncs)
	}

	// Every 2 records: 4 appends = 2 syncs.
	w = &syncCounter{}
	sw := newWriter(w)
	sw.SetSyncEvery(2)
	appendAll(sw)
	if w.syncs != 2 {
		t.Errorf("SyncEvery(2) synced %d times over 4 records, want 2", w.syncs)
	}

	// Every 3 records: syncs at record 3; records 4 leaves one pending.
	w = &syncCounter{}
	sw = newWriter(w)
	sw.SetSyncEvery(3)
	appendAll(sw)
	if w.syncs != 1 {
		t.Errorf("SyncEvery(3) synced %d times over 4 records, want 1", w.syncs)
	}

	// A writer with no Sync method must not break.
	var buf bytes.Buffer
	sw = newWriter(&buf)
	sw.SetSyncEvery(1)
	appendAll(sw)
	if !sw.Complete() {
		t.Error("stream incomplete on a sync-less writer")
	}
}
