package fleet

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates golden files instead of comparing against them:
//
//	go test ./internal/fleet -run TestGoldenReport -update
//
// Only do this after deliberately changing generator/manager/simulator
// behaviour, and review the golden diff like code.
var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenReport pins the exact report for one fixed config
// (seed 1, 32 scenarios, all platforms and classes). Any behavioural
// drift anywhere in the stack — scenario sampling, the simulator, the
// manager's planning, aggregation — shows up here as a readable JSON
// diff instead of silently shifting every downstream experiment.
func TestGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 32 scenarios")
	}
	rep, _, err := Run(GeneratorConfig{Seed: 1}, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_seed1_n32.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from %s%s\n(if the change is intended, regenerate with -update and review the diff)",
			path, firstDiff(want, got))
	}
}

// firstDiff locates the first differing line so the failure reads as a
// diff hunk rather than two multi-kilobyte blobs.
func firstDiff(want, got []byte) string {
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("\nfirst difference at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return ""
}
