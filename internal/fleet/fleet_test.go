package fleet

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"strings"
	"testing"
)

// TestGeneratorDeterministic: the same seed must generate the same
// scenarios, and prefixes must be stable when the count grows.
func TestGeneratorDeterministic(t *testing.T) {
	gen1, err := NewGenerator(GeneratorConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := NewGenerator(GeneratorConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, b := gen1.Generate(16), gen2.Generate(32)
	for i := range a {
		if fingerprint(a[i]) != fingerprint(b[i]) {
			t.Errorf("scenario %d differs between n=16 and n=32 generations:\n%s\n%s",
				i, fingerprint(a[i]), fingerprint(b[i]))
		}
	}
}

// TestGeneratorSeedsDiffer: distinct seeds must produce distinct scenario
// sets.
func TestGeneratorSeedsDiffer(t *testing.T) {
	gen1, err := NewGenerator(GeneratorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := NewGenerator(GeneratorConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := gen1.Generate(16), gen2.Generate(16)
	same := true
	for i := range a {
		if fingerprint(a[i]) != fingerprint(b[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 generated identical 16-scenario sets")
	}
}

// fingerprint captures everything sampled into a scenario except action
// closures (represented by their names and times).
func fingerprint(s Scenario) string {
	out := fmt.Sprintf("%d/%d/%s/%s/end=%.9f", s.ID, s.Seed, s.Class, s.Platform, s.Script.EndS)
	for _, a := range s.Script.Apps {
		out += fmt.Sprintf("|app:%s,%v,%d,%.9f,%.3f,%s/%d,%.9f-%.9f",
			a.Name, a.Kind, a.Level, a.PeriodS, a.Util,
			a.Placement.Cluster, a.Placement.Cores, a.StartS, a.StopS)
	}
	names := make([]string, 0, len(s.Script.Reqs))
	for name := range s.Script.Reqs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.Script.Reqs[name]
		out += fmt.Sprintf("|req:%s,%.9f,%.9f,%d", name, r.MaxLatencyS, r.MinAccuracy, r.Priority)
	}
	for _, act := range s.Script.Actions {
		out += fmt.Sprintf("|act:%s@%.9f", act.Name, act.AtS)
	}
	return out
}

// TestRunDeterministicAcrossWorkers is the harness's core contract: the
// same seed must produce an identical aggregate report with workers=1 and
// workers=8. Compared via JSON so every exported field participates.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 24 scenarios")
	}
	const n, seed = 24, 7
	gen, err := NewGenerator(GeneratorConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	scens := gen.Generate(n)

	serial := (&Runner{Workers: 1}).Run(scens)
	parallel := (&Runner{Workers: 8}).Run(scens)

	js, err := json.Marshal(Aggregate(seed, serial))
	if err != nil {
		t.Fatal(err)
	}
	jp, err := json.Marshal(Aggregate(seed, parallel))
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jp) {
		t.Fatalf("aggregate differs between workers=1 and workers=8:\n%s\n%s", js, jp)
	}
	for i := range serial {
		if serial[i].Err != "" {
			t.Errorf("scenario %d (%s): %s", i, serial[i].Name, serial[i].Err)
		}
	}
}

// TestRunOnePure: running the same scenario twice must give identical
// results (no hidden shared state in the engine/manager stack).
func TestRunOnePure(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Generate(5) {
		a, b := RunOne(s), RunOne(s)
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("scenario %s not reproducible:\n%s\n%s", s.Script.Name, ja, jb)
		}
	}
}

// TestAggregateGroups: group membership must match the scenario labels and
// the overall frame count must equal the per-platform sum.
func TestAggregateGroups(t *testing.T) {
	rep, results, err := Run(GeneratorConfig{Seed: 11}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Scenarios != 12 {
		t.Fatalf("overall scenarios = %d, want 12", rep.Overall.Scenarios)
	}
	if got := len(results); got != 12 {
		t.Fatalf("results = %d, want 12", got)
	}
	platFrames, platScen := 0, 0
	for _, g := range rep.ByPlatform {
		platFrames += g.Frames
		platScen += g.Scenarios
	}
	if platFrames != rep.Overall.Frames || platScen != 12 {
		t.Errorf("platform breakdown frames=%d scen=%d, want %d/12", platFrames, platScen, rep.Overall.Frames)
	}
	classScen := 0
	for _, g := range rep.ByClass {
		classScen += g.Scenarios
	}
	if classScen != 12 {
		t.Errorf("class breakdown scenarios=%d, want 12", classScen)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("scenario %s failed: %s", r.Name, r.Err)
		}
		if r.Released == 0 {
			t.Errorf("scenario %s released no frames", r.Name)
		}
	}
}

// TestGeneratorRejectsBadConfig covers validation paths.
func TestGeneratorRejectsBadConfig(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Platforms: []string{"no-such-board"}}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{MinDurationS: 10, MaxDurationS: 5}); err == nil {
		t.Error("inverted duration range accepted")
	}
	if _, _, err := Run(GeneratorConfig{}, 0, 1); err == nil {
		t.Error("zero scenario count accepted")
	}
}

// TestResolvePolicies pins the policy-list contract, in particular the
// duplicate rejection that `fleetsim -policies heuristic,heuristic` must
// hit: running the same strategy twice would silently skew every
// per-policy aggregate, so it is an error, not a dedup.
func TestResolvePolicies(t *testing.T) {
	cases := []struct {
		name    string
		in      []string
		want    []string
		wantErr string
	}{
		{name: "empty list gets the default", in: nil, want: []string{"heuristic"}},
		{name: "valid list keeps order", in: []string{"minenergy", "heuristic"}, want: []string{"minenergy", "heuristic"}},
		{name: "blank resolves to the default", in: []string{""}, want: []string{"heuristic"}},
		{name: "explicit duplicate rejected", in: []string{"heuristic", "heuristic"}, wantErr: `fleet: policy "heuristic" listed twice`},
		{name: "blank colliding with explicit default rejected", in: []string{"", "heuristic"}, wantErr: `fleet: policy "heuristic" listed twice`},
		{name: "unknown policy rejected", in: []string{"no-such-policy"}, wantErr: "no-such-policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := resolvePolicies(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, tc.want) {
				t.Fatalf("resolvePolicies(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
	// The same rejection must surface through the generator, which is the
	// path the fleetsim CLI takes.
	if _, err := NewGenerator(GeneratorConfig{Policies: []string{"heuristic", "heuristic"}}); err == nil {
		t.Error("generator accepted a duplicated policy list")
	}
}

// percentile returns the p-quantile (nearest-rank) of the samples. It is
// test-only scaffolding: the production runner sorts once and reads every
// order statistic through percentileSorted, and this reference wrapper
// exists so tests can express expectations over unsorted sample sets.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// TestPercentile pins the nearest-rank convention.
func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	if got := percentile(samples, 0.95); got != 5 {
		t.Errorf("p95 of 1..5 = %g, want 5", got)
	}
	if got := percentile(samples, 0.5); got != 3 {
		t.Errorf("p50 of 1..5 = %g, want 3", got)
	}
	if got := percentile(nil, 0.95); got != 0 {
		t.Errorf("p95 of empty = %g, want 0", got)
	}
	// The input must not be reordered.
	if samples[0] != 5 {
		t.Error("percentile mutated its input")
	}
}
