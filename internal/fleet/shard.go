package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
)

// ShardFormatVersion is the current shard-file format. ReadShard rejects
// files written by an incompatible future format instead of merging them
// silently; bump it whenever the meaning of an existing field changes.
const ShardFormatVersion = 1

// ShardResult is one process's share of a fleet run: the results for a
// contiguous scenario index range [Lo, Hi) of a Total-scenario fleet,
// plus the exact generator config that defines what those indices mean.
// It is the unit of the distributed-fleet layer — each shard is written
// by an independent process and later combined with Merge, which can
// only be trusted because the header carries everything needed to prove
// the shards describe the same fleet.
type ShardResult struct {
	FormatVersion int             `json:"formatVersion"`
	Config        GeneratorConfig `json:"config"`
	Total         int             `json:"total"`
	Lo            int             `json:"lo"`
	Hi            int             `json:"hi"` // exclusive
	Results       []Result        `json:"results"`
}

// Validate checks internal consistency: format version, range bounds,
// one result per owned index in ascending ID order, and — the actual
// determinism guarantee — that every result's recorded seed matches the
// seed GenerateRange would derive for that ID under Config.Seed, so a
// shard generated under a different master seed cannot slip in.
func (s ShardResult) Validate() error {
	if s.FormatVersion != ShardFormatVersion {
		return fmt.Errorf("fleet: shard format version %d, want %d", s.FormatVersion, ShardFormatVersion)
	}
	if s.Total <= 0 {
		return fmt.Errorf("fleet: shard total %d must be positive", s.Total)
	}
	if s.Lo < 0 || s.Hi < s.Lo || s.Hi > s.Total {
		return fmt.Errorf("fleet: shard range [%d,%d) outside fleet [0,%d)", s.Lo, s.Hi, s.Total)
	}
	if len(s.Results) != s.Hi-s.Lo {
		return fmt.Errorf("fleet: shard [%d,%d) carries %d results, want %d", s.Lo, s.Hi, len(s.Results), s.Hi-s.Lo)
	}
	for i, r := range s.Results {
		id := s.Lo + i
		if r.ID != id {
			return fmt.Errorf("fleet: shard [%d,%d) result %d has ID %d, want %d (results must be in scenario order)", s.Lo, s.Hi, i, r.ID, id)
		}
		if want := scenarioSeed(s.Config.Seed, id); r.Seed != want {
			return fmt.Errorf("fleet: scenario %d seed %d does not derive from master seed %d (want %d); shard was generated under a different seed", id, r.Seed, s.Config.Seed, want)
		}
	}
	return nil
}

// ShardRange returns the half-open index range [lo, hi) owned by shard
// index (0-based) of count over a total-scenario fleet. Ranges are
// contiguous, cover [0, total) exactly, and differ in size by at most
// one, so any shard count partitions the same fleet.
func ShardRange(total, index, count int) (lo, hi int) {
	return index * total / count, (index + 1) * total / count
}

// RunShard generates and runs shard index (0-based) of count over a
// total-scenario fleet. The returned ShardResult is ready to write with
// WriteShard and merge with Merge; running every shard and merging is
// byte-identical to a single-process Run over the same config and total.
func RunShard(cfg GeneratorConfig, total, index, count, workers int) (ShardResult, error) {
	return (&Runner{Workers: workers}).RunShard(cfg, total, index, count)
}

// RunShard is RunShard with the caller's Runner, so pool size and the
// Progress callback carry over. It is the single place a ShardResult is
// assembled: every writer fills the same header the same way.
func (r *Runner) RunShard(cfg GeneratorConfig, total, index, count int) (ShardResult, error) {
	if total <= 0 {
		return ShardResult{}, fmt.Errorf("fleet: scenario count %d must be positive", total)
	}
	if count < 1 || index < 0 || index >= count {
		return ShardResult{}, fmt.Errorf("fleet: shard index %d of %d out of range", index, count)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return ShardResult{}, err
	}
	lo, hi := ShardRange(total, index, count)
	return ShardResult{
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         total,
		Lo:            lo,
		Hi:            hi,
		Results:       r.Run(gen.GenerateRange(lo, hi)),
	}, nil
}

// WriteShard validates the shard and writes it as indented JSON. Result
// float fields (including the raw Latencies samples that Aggregate pools
// for percentiles) are encoded with Go's shortest-round-trip formatting,
// so a written-then-read shard is bit-identical to the in-memory one.
func WriteShard(w io.Writer, s ShardResult) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadShard decodes and validates one shard file. Validation on read
// means a merge fails at the offending file with a seed/range/version
// message, not downstream with a silently wrong report.
func ReadShard(r io.Reader) (ShardResult, error) {
	var s ShardResult
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return ShardResult{}, fmt.Errorf("fleet: decoding shard: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ShardResult{}, err
	}
	return s, nil
}

// Merge combines shard results into the fleet report. It requires full
// coverage — every scenario index in [0, Total) owned by exactly one
// shard, all shards generated under an identical config — then restores
// scenario-ID order and reuses Aggregate, so the merged report is
// byte-identical (via JSON) to a single-process run of the same fleet.
// Shard argument order does not matter.
func Merge(shards ...ShardResult) (Report, []Result, error) {
	if len(shards) == 0 {
		return Report{}, nil, fmt.Errorf("fleet: no shards to merge")
	}
	ordered := append([]ShardResult(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })

	first := ordered[0]
	for _, s := range ordered {
		if err := s.Validate(); err != nil {
			return Report{}, nil, err
		}
		if s.Config.Seed != first.Config.Seed {
			return Report{}, nil, fmt.Errorf("fleet: shard seed mismatch: shard [%d,%d) has seed %d, shard [%d,%d) has seed %d",
				first.Lo, first.Hi, first.Config.Seed, s.Lo, s.Hi, s.Config.Seed)
		}
		if !reflect.DeepEqual(s.Config, first.Config) {
			return Report{}, nil, fmt.Errorf("fleet: shard config mismatch: shard [%d,%d) was generated with %+v, shard [%d,%d) with %+v",
				first.Lo, first.Hi, first.Config, s.Lo, s.Hi, s.Config)
		}
		if s.Total != first.Total {
			return Report{}, nil, fmt.Errorf("fleet: shard fleet-size mismatch: %d vs %d scenarios", first.Total, s.Total)
		}
	}

	results := make([]Result, 0, first.Total)
	next := 0
	for _, s := range ordered {
		switch {
		case s.Lo > next:
			return Report{}, nil, fmt.Errorf("fleet: coverage gap: scenarios [%d,%d) missing from the merged shards", next, s.Lo)
		case s.Lo < next:
			return Report{}, nil, fmt.Errorf("fleet: coverage overlap: scenarios [%d,%d) appear in more than one shard", s.Lo, min(next, s.Hi))
		}
		results = append(results, s.Results...)
		next = s.Hi
	}
	if next != first.Total {
		return Report{}, nil, fmt.Errorf("fleet: coverage gap: scenarios [%d,%d) missing from the merged shards", next, first.Total)
	}
	return Aggregate(first.Config.Seed, results), results, nil
}
