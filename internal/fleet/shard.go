package fleet

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"

	"github.com/emlrtm/emlrtm/internal/atomicfile"
)

// ShardFormatVersion is the current shard-file format. ReadShard rejects
// files written by an incompatible format instead of merging them
// silently; bump it whenever the meaning of an existing field changes.
//
// Version history:
//
//	1: initial format.
//	2: policy sweeps — Config may carry Policies, every Result records its
//	   Policy, and with P policies run index i means workload i/P under
//	   policy i%P (so v1 files, whose IDs meant workloads directly, cannot
//	   be merged with v2 sweeps).
const ShardFormatVersion = 2

// ShardResult is one process's share of a fleet run: the results for a
// contiguous scenario index range [Lo, Hi) of a Total-scenario fleet,
// plus the exact generator config that defines what those indices mean.
// It is the unit of the distributed-fleet layer — each shard is written
// by an independent process and later combined with Merge, which can
// only be trusted because the header carries everything needed to prove
// the shards describe the same fleet.
type ShardResult struct {
	FormatVersion int             `json:"formatVersion"`
	Config        GeneratorConfig `json:"config"`
	Total         int             `json:"total"`
	Lo            int             `json:"lo"`
	Hi            int             `json:"hi"` // exclusive
	Results       []Result        `json:"results"`
}

// Validate checks internal consistency: format version, range bounds,
// one result per owned index in ascending ID order, and — the actual
// determinism guarantee — that every result's recorded seed matches the
// seed GenerateRange would derive for that ID's workload under
// Config.Seed, and that its recorded policy is the one the sweep assigns
// to that ID. A shard generated under a different master seed or policy
// list cannot slip in.
func (s ShardResult) Validate() error {
	if s.FormatVersion != ShardFormatVersion {
		return fmt.Errorf("fleet: shard format version %d, want %d", s.FormatVersion, ShardFormatVersion)
	}
	if s.Total <= 0 {
		return fmt.Errorf("fleet: shard total %d must be positive", s.Total)
	}
	if s.Lo < 0 || s.Hi < s.Lo || s.Hi > s.Total {
		return fmt.Errorf("fleet: shard range [%d,%d) outside fleet [0,%d)", s.Lo, s.Hi, s.Total)
	}
	if len(s.Results) != s.Hi-s.Lo {
		return fmt.Errorf("fleet: shard [%d,%d) carries %d results, want %d", s.Lo, s.Hi, len(s.Results), s.Hi-s.Lo)
	}
	pols, err := resolvePolicies(s.Config.Policies)
	if err != nil {
		return err
	}
	for i, r := range s.Results {
		id := s.Lo + i
		if r.ID != id {
			return fmt.Errorf("fleet: shard [%d,%d) result %d has ID %d, want %d (results must be in scenario order)", s.Lo, s.Hi, i, r.ID, id)
		}
		if err := validateResultAt(s.Config.Seed, pols, r, id); err != nil {
			return err
		}
	}
	return nil
}

// validateResultAt checks that one result claims scenario index id of the
// fleet defined by masterSeed and the resolved policy sweep — the same
// derivation GenerateRange performs, recomputed on the consumer side. It
// is shared by shard validation and the stream reader/writer: a result
// generated under a different seed, policy list or index cannot enter a
// merge through either path.
func validateResultAt(masterSeed uint64, pols []string, r Result, id int) error {
	if r.ID != id {
		return fmt.Errorf("fleet: result has ID %d, want %d", r.ID, id)
	}
	if want := scenarioSeed(masterSeed, id/len(pols)); r.Seed != want {
		return fmt.Errorf("fleet: scenario %d seed %d does not derive from master seed %d (want %d); shard was generated under a different seed", id, r.Seed, masterSeed, want)
	}
	if want := pols[id%len(pols)]; r.Policy != want {
		return fmt.Errorf("fleet: scenario %d ran policy %q, want %q under the configured sweep %v; shard was generated under a different policy list", id, r.Policy, want, pols)
	}
	return nil
}

// ShardRange returns the half-open index range [lo, hi) owned by shard
// index (0-based) of count over a total-scenario fleet. Ranges are
// contiguous, cover [0, total) exactly, and differ in size by at most
// one, so any shard count partitions the same fleet.
func ShardRange(total, index, count int) (lo, hi int) {
	return index * total / count, (index + 1) * total / count
}

// RunShard generates and runs shard index (0-based) of count over a fleet
// of total workloads (total × P scenario runs when the config sweeps P
// policies). The returned ShardResult is ready to write with WriteShard
// and merge with Merge; running every shard and merging is byte-identical
// to a single-process Run over the same config and total.
func RunShard(cfg GeneratorConfig, total, index, count, workers int) (ShardResult, error) {
	return (&Runner{Workers: workers}).RunShard(cfg, total, index, count)
}

// RunShard is RunShard with the caller's Runner, so pool size and the
// Progress callback carry over. It is the single place a ShardResult is
// assembled: every writer fills the same header the same way.
func (r *Runner) RunShard(cfg GeneratorConfig, total, index, count int) (ShardResult, error) {
	if total <= 0 {
		return ShardResult{}, fmt.Errorf("fleet: scenario count %d must be positive", total)
	}
	if count < 1 || index < 0 || index >= count {
		return ShardResult{}, fmt.Errorf("fleet: shard index %d of %d out of range", index, count)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return ShardResult{}, err
	}
	runs := gen.RunCount(total)
	lo, hi := ShardRange(runs, index, count)
	return ShardResult{
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         runs,
		Lo:            lo,
		Hi:            hi,
		Results:       r.Run(gen.GenerateRange(lo, hi)),
	}, nil
}

// WriteShard validates the shard and writes it as indented JSON. Result
// float fields (including the raw Latencies samples that Aggregate pools
// for percentiles) are encoded with Go's shortest-round-trip formatting,
// so a written-then-read shard is bit-identical to the in-memory one.
func WriteShard(w io.Writer, s ShardResult) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// sniffGzip wraps br in a gzip reader when the input starts with the gzip
// magic number, so shard and stream readers accept either form without
// being told how the file was written. The returned closer is non-nil only
// for compressed input.
func sniffGzip(br *bufio.Reader) (io.Reader, io.Closer, error) {
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: decompressing shard: %w", err)
		}
		return zr, zr, nil
	}
	return br, nil, nil
}

// ReadShard decodes and validates one shard file, transparently
// decompressing gzip input (sniffed by magic number, so readers need not
// know how a shard was written) and accepting both encodings: the classic
// one-document JSON shard and the NDJSON result stream a crash-resumable
// shard process appends (sniffed by the stream header's leading bytes). A
// stream is accepted only when complete — every scenario in its range
// present — so a partial stream can never slip into a merge. Validation on
// read means a merge fails at the offending file with a
// seed/range/version message, not downstream with a silently wrong report.
func ReadShard(r io.Reader) (ShardResult, error) {
	br := bufio.NewReader(r)
	src, closer, err := sniffGzip(br)
	if err != nil {
		return ShardResult{}, err
	}
	if closer != nil {
		defer closer.Close()
	}
	bsrc := bufio.NewReader(src)
	if p, err := bsrc.Peek(len(streamPrefix)); err == nil && string(p) == streamPrefix {
		return readStreamShard(bsrc)
	}
	var s ShardResult
	if err := json.NewDecoder(bsrc).Decode(&s); err != nil {
		return ShardResult{}, fmt.Errorf("fleet: decoding shard: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ShardResult{}, err
	}
	return s, nil
}

// WriteShardFile writes a shard to path, gzip-compressed when the path
// ends in ".gz" (raw Latencies samples dominate shard bytes and compress
// several-fold). ReadShardFile — or any ReadShard — accepts either form.
// The write is atomic (temp file + rename): a process killed mid-write
// leaves the previous file or nothing, never a truncated shard that would
// poison a later merge or resume.
func WriteShardFile(path string, s ShardResult) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".gz") {
			zw := gzip.NewWriter(w)
			if err := WriteShard(zw, s); err != nil {
				zw.Close()
				return err
			}
			return zw.Close()
		}
		return WriteShard(w, s)
	})
}

// ReadShardFile reads and validates one shard file from disk — plain or
// gzipped, classic JSON or a complete NDJSON stream. Errors name the file:
// a corrupt shard in a hundred-file merge must point at itself.
func ReadShardFile(path string) (ShardResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ShardResult{}, err
	}
	defer f.Close()
	s, err := ReadShard(f)
	if err != nil {
		return ShardResult{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Merge combines shard results into the fleet report. It requires full
// coverage — every scenario index in [0, Total) owned by exactly one
// shard, all shards generated under an identical config — then restores
// scenario-ID order and reuses Aggregate, so the merged report is
// byte-identical (via JSON) to a single-process run of the same fleet.
// Shard argument order does not matter.
func Merge(shards ...ShardResult) (Report, []Result, error) {
	if len(shards) == 0 {
		return Report{}, nil, fmt.Errorf("fleet: no shards to merge")
	}
	ordered := append([]ShardResult(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })

	first := ordered[0]
	for _, s := range ordered {
		if err := s.Validate(); err != nil {
			return Report{}, nil, err
		}
		if s.Config.Seed != first.Config.Seed {
			return Report{}, nil, fmt.Errorf("fleet: shard seed mismatch: shard [%d,%d) has seed %d, shard [%d,%d) has seed %d",
				first.Lo, first.Hi, first.Config.Seed, s.Lo, s.Hi, s.Config.Seed)
		}
		if !reflect.DeepEqual(s.Config.normalized(), first.Config.normalized()) {
			return Report{}, nil, fmt.Errorf("fleet: shard config mismatch: shard [%d,%d) was generated with %+v, shard [%d,%d) with %+v",
				first.Lo, first.Hi, first.Config, s.Lo, s.Hi, s.Config)
		}
		if s.Total != first.Total {
			return Report{}, nil, fmt.Errorf("fleet: shard fleet-size mismatch: %d vs %d scenarios", first.Total, s.Total)
		}
	}

	results := make([]Result, 0, first.Total)
	next := 0
	for _, s := range ordered {
		switch {
		case s.Lo > next:
			return Report{}, nil, fmt.Errorf("fleet: coverage gap: scenarios [%d,%d) missing from the merged shards", next, s.Lo)
		case s.Lo < next:
			return Report{}, nil, fmt.Errorf("fleet: coverage overlap: scenarios [%d,%d) appear in more than one shard", s.Lo, min(next, s.Hi))
		}
		results = append(results, s.Results...)
		next = s.Hi
	}
	if next != first.Total {
		return Report{}, nil, fmt.Errorf("fleet: coverage gap: scenarios [%d,%d) missing from the merged shards", next, first.Total)
	}
	return Aggregate(first.Config.Seed, results), results, nil
}
