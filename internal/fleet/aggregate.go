package fleet

import (
	"fmt"
	"sort"
)

// GroupStats summarises one slice of the fleet (overall, per platform, or
// per class). Rates are frame-weighted across the group's scenarios;
// percentiles pool every job latency in the group.
type GroupStats struct {
	Scenarios int `json:"scenarios"`
	Errors    int `json:"errors"`

	Frames    int     `json:"frames"` // DNN job releases
	Completed int     `json:"completed"`
	Missed    int     `json:"missed"`
	Dropped   int     `json:"dropped"`
	MissRate  float64 `json:"missRate"` // (missed+dropped)/frames

	MeanLatencyS float64 `json:"meanLatencyS"`
	P95LatencyS  float64 `json:"p95LatencyS"`
	// P95Approx marks P95LatencyS as approximate: at least one of the
	// group's scenarios ran with its raw latency samples dropped
	// (Runner.DropLatencies / fleetsim -nolat), so the group percentile
	// could not pool every job latency and fell back to the worst
	// per-scenario p95 for the sample-free scenarios. omitempty keeps
	// full-latency reports byte-identical to the pre-marker format.
	P95Approx   bool    `json:"p95Approx,omitempty"`
	MaxLatencyS float64 `json:"maxLatencyS"`

	EnergyMJ      float64 `json:"energyMJ"`      // total across the group
	SimSeconds    float64 `json:"simSeconds"`    // total simulated time
	OverThrottleS float64 `json:"overThrottleS"` // total thermal-violation time
	ThermalRate   float64 `json:"thermalRate"`   // overThrottleS / simSeconds

	Plans       int `json:"plans"`
	Migrations  int `json:"migrations"`
	LevelSwaps  int `json:"levelSwaps"`
	OPPSwitches int `json:"oppSwitches"`

	// Fault/recovery metrics, present only when the group saw cluster
	// faults (omitempty keeps fault-free reports byte-identical to before).
	// MeanRecoveryS averages the manager's fault→actuated-replan latency
	// over Recoveries bursts. DegradedMissRate is the miss+drop+abort rate
	// of frames released while any cluster was offline; HealthyMissRate is
	// the same rate over the remaining frames — the inside/outside-window
	// comparison. UnhostedS totals running-DNN app-seconds spent placed on
	// dead hardware.
	ClusterFails     int     `json:"clusterFails,omitempty"`
	ClusterRepairs   int     `json:"clusterRepairs,omitempty"`
	JobsAborted      int     `json:"jobsAborted,omitempty"`
	UnhostedS        float64 `json:"unhostedS,omitempty"`
	Recoveries       int     `json:"recoveries,omitempty"`
	MeanRecoveryS    float64 `json:"meanRecoveryS,omitempty"`
	DegradedFrames   int     `json:"degradedFrames,omitempty"`
	DegradedMissRate float64 `json:"degradedMissRate,omitempty"`
	HealthyMissRate  float64 `json:"healthyMissRate,omitempty"`
}

// RegretStats quantifies how far one swept policy sits from the
// per-workload oracle — the best policy in the sweep on the same
// bit-identical workload. Because a sweep replays each sampled workload
// under every policy, the oracle is observable, not hypothetical: for each
// workload and metric the oracle value is simply the best value any swept
// policy achieved on that exact run. Regret is the policy's mean excess
// over that oracle, so zero regret on a metric means the policy was never
// beaten on it.
type RegretStats struct {
	// Workloads is how many swept workloads this policy was compared on
	// (workloads where any policy's run errored are excluded — a failed
	// run has no comparable miss rate or energy).
	Workloads int `json:"workloads"`
	// OracleWins counts workloads where this policy *is* the oracle under
	// the sweep's selection order (lowest miss rate, energy breaking
	// ties); ties share the win.
	OracleWins int `json:"oracleWins"`
	// MissRateRegret is the mean over workloads of (policy miss rate −
	// best swept miss rate on that workload); 0 means never beaten on QoS.
	MissRateRegret float64 `json:"missRateRegret"`
	// EnergyRegretMJ is the mean over workloads of (policy energy − best
	// swept energy on that workload), in mJ.
	EnergyRegretMJ float64 `json:"energyRegretMJ"`
}

// Report is the aggregate outcome of a fleet run, broken down by platform,
// scenario class and — when the fleet sweeps more than one planning policy
// — by policy. ByPolicy and Regret are omitted for single-policy fleets,
// where ByPolicy would duplicate Overall row for row and a one-policy
// sweep has no oracle to regret against (this also keeps single-policy
// reports byte-identical to the pre-sweep format). Maps marshal with
// sorted keys, so the JSON encoding is deterministic.
type Report struct {
	Seed       uint64                 `json:"seed"`
	Overall    GroupStats             `json:"overall"`
	ByPlatform map[string]GroupStats  `json:"byPlatform"`
	ByClass    map[Class]GroupStats   `json:"byClass"`
	ByPolicy   map[string]GroupStats  `json:"byPolicy,omitempty"`
	Regret     map[string]RegretStats `json:"regret,omitempty"`
}

// group accumulates results before finalisation.
type group struct {
	stats     GroupStats
	latencies []float64
	latSum    float64
	// Scalar fallback for results whose raw Latencies were dropped
	// (Runner.DropLatencies / fleetsim -nolat): the group mean stays exact
	// (per-scenario mean × completion count), the group p95 is
	// approximated by the worst per-scenario p95.
	scalarCount int
	scalarP95   float64
	// Fault accumulation feeding the finalised recovery metrics.
	recoverTotalS float64
	degMissed     int
	degDropped    int
}

func (g *group) add(r Result) {
	s := &g.stats
	s.Scenarios++
	if r.Err != "" {
		s.Errors++
		return
	}
	s.Frames += r.Released
	s.Completed += r.Completed
	s.Missed += r.Missed
	s.Dropped += r.Dropped
	s.EnergyMJ += r.EnergyMJ
	s.SimSeconds += r.DurationS
	s.OverThrottleS += r.OverThrottleS
	s.Plans += r.Plans
	s.Migrations += r.Migrations
	s.LevelSwaps += r.LevelSwaps
	s.OPPSwitches += r.OPPSwitches
	s.ClusterFails += r.ClusterFails
	s.ClusterRepairs += r.ClusterRepairs
	s.JobsAborted += r.JobsAborted
	s.UnhostedS += r.UnhostedS
	s.Recoveries += r.RecoverCount
	s.DegradedFrames += r.DegradedFrames
	g.recoverTotalS += r.RecoverTotalS
	g.degMissed += r.DegradedMissed
	g.degDropped += r.DegradedDropped
	if r.MaxLatencyS > s.MaxLatencyS {
		s.MaxLatencyS = r.MaxLatencyS
	}
	switch {
	case len(r.Latencies) > 0:
		g.latencies = append(g.latencies, r.Latencies...)
		for _, l := range r.Latencies {
			g.latSum += l
		}
	case r.Completed > 0:
		// Latency samples were dropped at run time; fold the scalars. Each
		// completion contributed exactly one sample, so mean × completed
		// reconstructs the group latency sum.
		g.scalarCount += r.Completed
		g.latSum += r.MeanLatencyS * float64(r.Completed)
		if r.P95LatencyS > g.scalarP95 {
			g.scalarP95 = r.P95LatencyS
		}
	}
}

func (g *group) finalise() GroupStats {
	s := g.stats
	if s.Frames > 0 {
		// Aborted frames are QoS failures too; the term is zero (and the
		// value byte-identical to before) on fault-free fleets.
		s.MissRate = float64(s.Missed+s.Dropped+s.JobsAborted) / float64(s.Frames)
	}
	if s.Recoveries > 0 {
		s.MeanRecoveryS = g.recoverTotalS / float64(s.Recoveries)
	}
	if s.DegradedFrames > 0 {
		s.DegradedMissRate = float64(g.degMissed+g.degDropped) / float64(s.DegradedFrames)
	}
	// Healthy failures are total failures minus in-window ones: aborts of
	// frames released before their cluster died land here by construction.
	if healthy := s.Frames - s.DegradedFrames; healthy > 0 && s.DegradedFrames > 0 {
		fails := s.Missed + s.Dropped + s.JobsAborted - g.degMissed - g.degDropped
		if fails < 0 {
			fails = 0
		}
		s.HealthyMissRate = float64(fails) / float64(healthy)
	}
	if n := len(g.latencies) + g.scalarCount; n > 0 {
		s.MeanLatencyS = g.latSum / float64(n)
	}
	if len(g.latencies) > 0 {
		// The group owns its pooled copy, so one in-place sort serves
		// every order statistic (p95 today, any quantile tomorrow) —
		// percentile() would copy and re-sort per call.
		sort.Float64s(g.latencies)
		s.P95LatencyS = percentileSorted(g.latencies, 0.95)
	}
	if g.scalarP95 > s.P95LatencyS {
		s.P95LatencyS = g.scalarP95
	}
	// Any sample-free scenario makes the group percentile approximate —
	// even when the pooled samples happened to win the max above, the pool
	// was incomplete.
	s.P95Approx = g.scalarCount > 0
	if s.SimSeconds > 0 {
		s.ThermalRate = s.OverThrottleS / s.SimSeconds
	}
	return s
}

// Aggregate folds per-scenario results into the fleet report. Results are
// consumed in slice order, so the report is deterministic whenever the
// results slice is (which Runner.Run guarantees).
func Aggregate(seed uint64, results []Result) Report {
	overall := &group{}
	byPlat := map[string]*group{}
	byClass := map[Class]*group{}
	byPol := map[string]*group{}
	for _, r := range results {
		overall.add(r)
		if byPlat[r.Platform] == nil {
			byPlat[r.Platform] = &group{}
		}
		byPlat[r.Platform].add(r)
		if byClass[r.Class] == nil {
			byClass[r.Class] = &group{}
		}
		byClass[r.Class].add(r)
		if byPol[r.Policy] == nil {
			byPol[r.Policy] = &group{}
		}
		byPol[r.Policy].add(r)
	}
	rep := Report{
		Seed:       seed,
		Overall:    overall.finalise(),
		ByPlatform: map[string]GroupStats{},
		ByClass:    map[Class]GroupStats{},
	}
	//detlint:ordered map-to-map rebuild; finalise reads only its own group
	for name, g := range byPlat {
		rep.ByPlatform[name] = g.finalise()
	}
	//detlint:ordered map-to-map rebuild; finalise reads only its own group
	for class, g := range byClass {
		rep.ByClass[class] = g.finalise()
	}
	// A policy breakdown of a single-policy fleet would repeat Overall;
	// only sweeps get one — and only sweeps have an oracle to regret
	// against.
	if len(byPol) > 1 {
		rep.ByPolicy = map[string]GroupStats{}
		//detlint:ordered map-to-map rebuild; finalise reads only its own group
		for name, g := range byPol {
			rep.ByPolicy[name] = g.finalise()
		}
		rep.Regret = regret(results)
	}
	return rep
}

// missRate is a result's deadline-miss fraction, (missed+dropped+aborted)/
// released — the QoS scalar regret and the trainer's reward both score.
// Aborted frames (cluster faults) fail QoS like any other lost frame; the
// term is zero on fault-free runs.
func missRate(r Result) float64 {
	if r.Released == 0 {
		return 0
	}
	return float64(r.Missed+r.Dropped+r.JobsAborted) / float64(r.Released)
}

// workloadKey identifies one bit-identical sampled workload inside a
// policy sweep: the generator gives every run of a workload the same seed,
// name, platform and class, varying only the policy. Hand-built results
// that share all four fields are treated as the same workload.
type workloadKey struct {
	seed     uint64
	name     string
	platform string
	class    Class
}

// regret computes per-policy RegretStats from sweep results: group runs by
// workload, find each workload's per-metric oracle values, and charge
// every policy its excess. Workloads touched by an errored run are
// excluded whole — a crash has no miss rate to compare, and comparing the
// survivors only would bias their regret down. Group iteration is
// first-seen order over the results slice, so the computation (a float
// accumulation per policy) is deterministic whenever the results order is.
// Returns nil when no workload was run under more than one policy.
func regret(results []Result) map[string]RegretStats {
	type wl struct {
		runs    []Result
		errored bool
	}
	var order []workloadKey
	groups := map[workloadKey]*wl{}
	for _, r := range results {
		k := workloadKey{r.Seed, r.Name, r.Platform, r.Class}
		g := groups[k]
		if g == nil {
			g = &wl{}
			groups[k] = g
			order = append(order, k)
		}
		if r.Err != "" {
			g.errored = true
			continue
		}
		g.runs = append(g.runs, r)
	}
	type acc struct {
		workloads int
		wins      int
		missSum   float64
		energySum float64
	}
	accs := map[string]*acc{}
	for _, k := range order {
		g := groups[k]
		if g.errored || len(g.runs) < 2 {
			continue
		}
		// Per-metric oracle values, plus the combined oracle (min miss
		// rate, energy breaking ties) for win counting.
		bestMiss, bestEnergy := missRate(g.runs[0]), g.runs[0].EnergyMJ
		winMiss, winEnergy := bestMiss, bestEnergy
		for _, r := range g.runs[1:] {
			m := missRate(r)
			if m < bestMiss {
				bestMiss = m
			}
			if r.EnergyMJ < bestEnergy {
				bestEnergy = r.EnergyMJ
			}
			if m < winMiss || (m == winMiss && r.EnergyMJ < winEnergy) {
				winMiss, winEnergy = m, r.EnergyMJ
			}
		}
		for _, r := range g.runs {
			a := accs[r.Policy]
			if a == nil {
				a = &acc{}
				accs[r.Policy] = a
			}
			m := missRate(r)
			a.workloads++
			a.missSum += m - bestMiss
			a.energySum += r.EnergyMJ - bestEnergy
			if m == winMiss && r.EnergyMJ == winEnergy {
				a.wins++
			}
		}
	}
	if len(accs) == 0 {
		return nil
	}
	out := make(map[string]RegretStats, len(accs))
	//detlint:ordered map-to-map rebuild; each RegretStats is computed from its own accumulator
	for name, a := range accs {
		out[name] = RegretStats{
			Workloads:      a.workloads,
			OracleWins:     a.wins,
			MissRateRegret: a.missSum / float64(a.workloads),
			EnergyRegretMJ: a.energySum / float64(a.workloads),
		}
	}
	return out
}

// Run is the one-call entry point: generate n workloads from the config,
// run each under every configured policy across the pool, and aggregate
// (n workloads × P policies scenario runs in total).
func Run(cfg GeneratorConfig, n, workers int) (Report, []Result, error) {
	if n <= 0 {
		return Report{}, nil, fmt.Errorf("fleet: scenario count %d must be positive", n)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return Report{}, nil, err
	}
	scenarios := gen.Generate(gen.RunCount(n))
	runner := &Runner{Workers: workers}
	results := runner.Run(scenarios)
	return Aggregate(cfg.Seed, results), results, nil
}
