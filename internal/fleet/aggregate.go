package fleet

import (
	"fmt"
	"sort"
)

// GroupStats summarises one slice of the fleet (overall, per platform, or
// per class). Rates are frame-weighted across the group's scenarios;
// percentiles pool every job latency in the group.
type GroupStats struct {
	Scenarios int `json:"scenarios"`
	Errors    int `json:"errors"`

	Frames    int     `json:"frames"` // DNN job releases
	Completed int     `json:"completed"`
	Missed    int     `json:"missed"`
	Dropped   int     `json:"dropped"`
	MissRate  float64 `json:"missRate"` // (missed+dropped)/frames

	MeanLatencyS float64 `json:"meanLatencyS"`
	P95LatencyS  float64 `json:"p95LatencyS"`
	MaxLatencyS  float64 `json:"maxLatencyS"`

	EnergyMJ      float64 `json:"energyMJ"`      // total across the group
	SimSeconds    float64 `json:"simSeconds"`    // total simulated time
	OverThrottleS float64 `json:"overThrottleS"` // total thermal-violation time
	ThermalRate   float64 `json:"thermalRate"`   // overThrottleS / simSeconds

	Plans       int `json:"plans"`
	Migrations  int `json:"migrations"`
	LevelSwaps  int `json:"levelSwaps"`
	OPPSwitches int `json:"oppSwitches"`
}

// Report is the aggregate outcome of a fleet run, broken down by platform,
// scenario class and — when the fleet sweeps more than one planning policy
// — by policy. ByPolicy is omitted for single-policy fleets, where it
// would duplicate Overall row for row (this also keeps single-policy
// reports byte-identical to the pre-sweep format). Maps marshal with
// sorted keys, so the JSON encoding is deterministic.
type Report struct {
	Seed       uint64                `json:"seed"`
	Overall    GroupStats            `json:"overall"`
	ByPlatform map[string]GroupStats `json:"byPlatform"`
	ByClass    map[Class]GroupStats  `json:"byClass"`
	ByPolicy   map[string]GroupStats `json:"byPolicy,omitempty"`
}

// group accumulates results before finalisation.
type group struct {
	stats     GroupStats
	latencies []float64
	latSum    float64
	// Scalar fallback for results whose raw Latencies were dropped
	// (Runner.DropLatencies / fleetsim -nolat): the group mean stays exact
	// (per-scenario mean × completion count), the group p95 is
	// approximated by the worst per-scenario p95.
	scalarCount int
	scalarP95   float64
}

func (g *group) add(r Result) {
	s := &g.stats
	s.Scenarios++
	if r.Err != "" {
		s.Errors++
		return
	}
	s.Frames += r.Released
	s.Completed += r.Completed
	s.Missed += r.Missed
	s.Dropped += r.Dropped
	s.EnergyMJ += r.EnergyMJ
	s.SimSeconds += r.DurationS
	s.OverThrottleS += r.OverThrottleS
	s.Plans += r.Plans
	s.Migrations += r.Migrations
	s.LevelSwaps += r.LevelSwaps
	s.OPPSwitches += r.OPPSwitches
	if r.MaxLatencyS > s.MaxLatencyS {
		s.MaxLatencyS = r.MaxLatencyS
	}
	switch {
	case len(r.Latencies) > 0:
		g.latencies = append(g.latencies, r.Latencies...)
		for _, l := range r.Latencies {
			g.latSum += l
		}
	case r.Completed > 0:
		// Latency samples were dropped at run time; fold the scalars. Each
		// completion contributed exactly one sample, so mean × completed
		// reconstructs the group latency sum.
		g.scalarCount += r.Completed
		g.latSum += r.MeanLatencyS * float64(r.Completed)
		if r.P95LatencyS > g.scalarP95 {
			g.scalarP95 = r.P95LatencyS
		}
	}
}

func (g *group) finalise() GroupStats {
	s := g.stats
	if s.Frames > 0 {
		s.MissRate = float64(s.Missed+s.Dropped) / float64(s.Frames)
	}
	if n := len(g.latencies) + g.scalarCount; n > 0 {
		s.MeanLatencyS = g.latSum / float64(n)
	}
	if len(g.latencies) > 0 {
		// The group owns its pooled copy, so one in-place sort serves
		// every order statistic (p95 today, any quantile tomorrow) —
		// percentile() would copy and re-sort per call.
		sort.Float64s(g.latencies)
		s.P95LatencyS = percentileSorted(g.latencies, 0.95)
	}
	if g.scalarP95 > s.P95LatencyS {
		s.P95LatencyS = g.scalarP95
	}
	if s.SimSeconds > 0 {
		s.ThermalRate = s.OverThrottleS / s.SimSeconds
	}
	return s
}

// Aggregate folds per-scenario results into the fleet report. Results are
// consumed in slice order, so the report is deterministic whenever the
// results slice is (which Runner.Run guarantees).
func Aggregate(seed uint64, results []Result) Report {
	overall := &group{}
	byPlat := map[string]*group{}
	byClass := map[Class]*group{}
	byPol := map[string]*group{}
	for _, r := range results {
		overall.add(r)
		if byPlat[r.Platform] == nil {
			byPlat[r.Platform] = &group{}
		}
		byPlat[r.Platform].add(r)
		if byClass[r.Class] == nil {
			byClass[r.Class] = &group{}
		}
		byClass[r.Class].add(r)
		if byPol[r.Policy] == nil {
			byPol[r.Policy] = &group{}
		}
		byPol[r.Policy].add(r)
	}
	rep := Report{
		Seed:       seed,
		Overall:    overall.finalise(),
		ByPlatform: map[string]GroupStats{},
		ByClass:    map[Class]GroupStats{},
	}
	for name, g := range byPlat {
		rep.ByPlatform[name] = g.finalise()
	}
	for class, g := range byClass {
		rep.ByClass[class] = g.finalise()
	}
	// A policy breakdown of a single-policy fleet would repeat Overall;
	// only sweeps get one.
	if len(byPol) > 1 {
		rep.ByPolicy = map[string]GroupStats{}
		for name, g := range byPol {
			rep.ByPolicy[name] = g.finalise()
		}
	}
	return rep
}

// Run is the one-call entry point: generate n workloads from the config,
// run each under every configured policy across the pool, and aggregate
// (n workloads × P policies scenario runs in total).
func Run(cfg GeneratorConfig, n, workers int) (Report, []Result, error) {
	if n <= 0 {
		return Report{}, nil, fmt.Errorf("fleet: scenario count %d must be positive", n)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		return Report{}, nil, err
	}
	scenarios := gen.Generate(gen.RunCount(n))
	runner := &Runner{Workers: workers}
	results := runner.Run(scenarios)
	return Aggregate(cfg.Seed, results), results, nil
}
