package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Result is the compact outcome of one scenario run. Latencies carries the
// raw per-job samples Aggregate pools for percentiles; it is part of the
// JSON encoding so results can round-trip through a file and be merged
// across processes (the ROADMAP's distributed-fleet path) without silently
// zeroing the pooled latency stats.
type Result struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Class    Class  `json:"class"`
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`
	Err      string `json:"err,omitempty"`

	DurationS float64 `json:"durationS"`

	Released  int `json:"released"`
	Completed int `json:"completed"`
	Missed    int `json:"missed"`
	Dropped   int `json:"dropped"`

	MeanLatencyS float64 `json:"meanLatencyS"`
	P95LatencyS  float64 `json:"p95LatencyS"`
	MaxLatencyS  float64 `json:"maxLatencyS"`

	EnergyMJ   float64 `json:"energyMJ"`
	AvgPowerMW float64 `json:"avgPowerMW"`

	MaxTempC      float64 `json:"maxTempC"`
	OverThrottleS float64 `json:"overThrottleS"`

	Plans       int `json:"plans"`
	Migrations  int `json:"migrations"`
	LevelSwaps  int `json:"levelSwaps"`
	OPPSwitches int `json:"oppSwitches"`

	Latencies []float64 `json:"latencies,omitempty"`
}

// TickS is the manager epoch every fleet run uses; a constant keeps runs
// comparable across scenarios.
const TickS = 0.25

// RunOne executes a single scenario to completion. It is a pure function
// of the scenario (fresh platform, fresh manager, no logging), which is
// what makes fleet results independent of scheduling.
func RunOne(s Scenario) Result {
	script := s.Script
	if script.Policy == "" {
		// Hand-built scenarios may set only the outer Policy field.
		script.Policy = s.Policy
	}
	res := Result{
		ID:       s.ID,
		Name:     script.Name,
		Class:    s.Class,
		Platform: s.Platform,
		Policy:   script.Policy,
		Seed:     s.Seed,
	}
	if res.Policy == "" {
		res.Policy = rtm.DefaultPolicy
	}
	plat := hw.Catalog()[s.Platform]
	if plat == nil {
		res.Err = fmt.Sprintf("unknown platform %q", s.Platform)
		return res
	}
	_, mgr, rep, err := workload.Run(script, plat, TickS, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	res.DurationS = rep.DurationS
	res.EnergyMJ = rep.TotalEnergyMJ
	res.AvgPowerMW = rep.AvgPowerMW
	res.MaxTempC = rep.MaxTempC
	res.OverThrottleS = rep.OverThrottleS
	res.Plans = mgr.Plans()
	res.Migrations = rep.Migrations
	res.LevelSwaps = rep.LevelSwaps
	res.OPPSwitches = rep.OPPSwitches
	for _, a := range rep.Apps {
		if a.Kind != sim.KindDNN {
			continue
		}
		res.Released += a.Released
		res.Completed += a.Completed
		res.Missed += a.Missed
		res.Dropped += a.Dropped
	}
	for _, ev := range rep.Events {
		if ev.Kind == sim.EvJobComplete || ev.Kind == sim.EvDeadlineMiss {
			res.Latencies = append(res.Latencies, ev.LatencyS)
		}
	}
	var sum float64
	for _, l := range res.Latencies {
		sum += l
		if l > res.MaxLatencyS {
			res.MaxLatencyS = l
		}
	}
	if len(res.Latencies) > 0 {
		res.MeanLatencyS = sum / float64(len(res.Latencies))
		res.P95LatencyS = percentile(res.Latencies, 0.95)
	}
	return res
}

// percentile returns the p-quantile (nearest-rank) of the samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(float64(len(s))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Runner fans scenarios out over a bounded worker pool.
type Runner struct {
	// Workers is the pool size; 0 means runtime.NumCPU().
	Workers int
	// Progress, when set, is called after each scenario completes with the
	// number done so far and the total. Calls arrive from worker
	// goroutines; the callback must be safe for concurrent use.
	Progress func(done, total int)
}

// Run executes all scenarios and returns results indexed by scenario
// position. Output is bit-identical for any worker count: each run is
// independent and results land in their own slot.
func (r *Runner) Run(scenarios []Scenario) []Result {
	results := make([]Result, len(scenarios))
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers <= 1 {
		for i, s := range scenarios {
			results[i] = RunOne(s)
			if r.Progress != nil {
				r.Progress(i+1, len(scenarios))
			}
		}
		return results
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				results[i] = RunOne(scenarios[i])
				if r.Progress != nil {
					r.Progress(int(done.Add(1)), len(scenarios))
				}
			}
		}()
	}
	wg.Wait()
	return results
}
