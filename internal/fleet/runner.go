package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Result is the compact outcome of one scenario run. Latencies carries the
// raw per-job samples Aggregate pools for percentiles; it is part of the
// JSON encoding so results can round-trip through a file and be merged
// across processes (the ROADMAP's distributed-fleet path) without silently
// zeroing the pooled latency stats. The field is optional: runs made with
// Runner.DropLatencies (fleetsim -nolat) omit it to keep million-scenario
// shard files small, and Aggregate then falls back to the scalar stats.
type Result struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Class    Class  `json:"class"`
	Platform string `json:"platform"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`
	Err      string `json:"err,omitempty"`

	DurationS float64 `json:"durationS"`

	Released  int `json:"released"`
	Completed int `json:"completed"`
	Missed    int `json:"missed"`
	Dropped   int `json:"dropped"`

	MeanLatencyS float64 `json:"meanLatencyS"`
	P95LatencyS  float64 `json:"p95LatencyS"`
	MaxLatencyS  float64 `json:"maxLatencyS"`

	EnergyMJ   float64 `json:"energyMJ"`
	AvgPowerMW float64 `json:"avgPowerMW"`

	MaxTempC      float64 `json:"maxTempC"`
	OverThrottleS float64 `json:"overThrottleS"`

	Plans       int `json:"plans"`
	Migrations  int `json:"migrations"`
	LevelSwaps  int `json:"levelSwaps"`
	OPPSwitches int `json:"oppSwitches"`

	// Fault accounting, present only for runs that saw cluster faults
	// (omitempty keeps fault-free shard files byte-identical to before).
	// RecoverTotalS sums the manager's fault→actuated-replan latencies over
	// RecoverCount bursts; DegradedFrames/Missed/Dropped count frames
	// released while any cluster was offline and their outcomes.
	ClusterFails    int     `json:"clusterFails,omitempty"`
	ClusterRepairs  int     `json:"clusterRepairs,omitempty"`
	JobsAborted     int     `json:"jobsAborted,omitempty"`
	UnhostedS       float64 `json:"unhostedS,omitempty"`
	RecoverCount    int     `json:"recoverCount,omitempty"`
	RecoverTotalS   float64 `json:"recoverTotalS,omitempty"`
	DegradedFrames  int     `json:"degradedFrames,omitempty"`
	DegradedMissed  int     `json:"degradedMissed,omitempty"`
	DegradedDropped int     `json:"degradedDropped,omitempty"`

	Latencies []float64 `json:"latencies,omitempty"`
}

// TickS is the manager epoch every fleet run uses; a constant keeps runs
// comparable across scenarios.
const TickS = 0.25

// latBufs is one worker's reusable latency scratch: raw collects samples
// in event order, sorted is the one sorted copy every percentile reads
// from. Pooled because a fleet run executes thousands of scenarios per
// worker and the per-scenario copies were the runner's dominant
// allocation; the published Result only ever gets an exact-size copy.
type latBufs struct {
	raw    []float64
	sorted []float64
}

var latPool = sync.Pool{New: func() any { return new(latBufs) }}

// RunOne executes a single scenario to completion. It is a pure function
// of the scenario (fresh platform, fresh manager, no logging), which is
// what makes fleet results independent of scheduling.
func RunOne(s Scenario) Result {
	r, _, _ := runOne(s, runOpts{keepLatencies: true})
	return r
}

// runOpts bundles the per-run knobs runOne threads through to
// workload.RunEngineOpts: whether raw Latencies are published, which
// engine to Reset instead of constructing, which plan cache the manager
// uses, and whether plan reuse is disabled outright. None of them change
// a result byte — TestEngineReuseEquivalence and
// TestPlanCacheEquivalence pin that.
type runOpts struct {
	keepLatencies bool
	eng           *sim.Engine
	planCache     *rtm.PlanCache
	noPlanReuse   bool
}

// runOne is RunOne with runOpts control. The engine actually used is
// returned for the caller's next run (nil after a failed run, so a
// poisoned engine is never reused), along with the manager's plan-reuse
// counters for observability accumulation.
func runOne(s Scenario, o runOpts) (Result, *sim.Engine, rtm.PlanStats) {
	script := s.Script
	if script.Policy == "" {
		// Hand-built scenarios may set only the outer Policy field.
		script.Policy = s.Policy
	}
	res := Result{
		ID:       s.ID,
		Name:     script.Name,
		Class:    s.Class,
		Platform: s.Platform,
		Policy:   script.Policy,
		Seed:     s.Seed,
	}
	if script.Planner != nil {
		// An injected policy instance (workload.Scenario.Planner) plans
		// the run regardless of the Policy name; label the result after
		// what actually planned, or per-policy aggregates would charge
		// its miss/energy numbers to the named (default) policy's group.
		res.Policy = script.Planner.Name()
	}
	if res.Policy == "" {
		res.Policy = rtm.DefaultPolicy
	}
	plat := hw.Catalog()[s.Platform]
	if plat == nil {
		res.Err = fmt.Sprintf("unknown platform %q", s.Platform)
		return res, o.eng, rtm.PlanStats{}
	}
	eng, mgr, rep, err := workload.RunEngineOpts(o.eng, script, plat, TickS, nil, workload.RunOptions{
		PlanCache:        o.planCache,
		DisablePlanReuse: o.noPlanReuse,
	})
	if err != nil {
		res.Err = err.Error()
		return res, nil, rtm.PlanStats{}
	}

	res.DurationS = rep.DurationS
	res.EnergyMJ = rep.TotalEnergyMJ
	res.AvgPowerMW = rep.AvgPowerMW
	res.MaxTempC = rep.MaxTempC
	res.OverThrottleS = rep.OverThrottleS
	res.Plans = mgr.Plans()
	res.Migrations = rep.Migrations
	res.LevelSwaps = rep.LevelSwaps
	res.OPPSwitches = rep.OPPSwitches
	res.ClusterFails = rep.ClusterFails
	res.ClusterRepairs = rep.ClusterRepairs
	res.JobsAborted = rep.JobsAborted
	res.UnhostedS = rep.UnhostedS
	res.DegradedFrames = rep.DegradedFrames
	res.DegradedMissed = rep.DegradedMissed
	res.DegradedDropped = rep.DegradedDropped
	for _, rec := range mgr.FaultRecoveries() {
		res.RecoverCount++
		res.RecoverTotalS += rec
	}
	for _, a := range rep.Apps {
		if a.Kind != sim.KindDNN {
			continue
		}
		res.Released += a.Released
		res.Completed += a.Completed
		res.Missed += a.Missed
		res.Dropped += a.Dropped
	}
	sc := latPool.Get().(*latBufs)
	defer latPool.Put(sc)
	raw := sc.raw[:0]
	for _, ev := range rep.Events {
		if ev.Kind == sim.EvJobComplete || ev.Kind == sim.EvDeadlineMiss {
			raw = append(raw, ev.LatencyS)
		}
	}
	sc.raw = raw
	var sum float64
	for _, l := range raw {
		sum += l
	}
	if len(raw) > 0 {
		// One sorted copy serves every order statistic.
		sorted := append(sc.sorted[:0], raw...)
		sc.sorted = sorted
		sort.Float64s(sorted)
		res.MeanLatencyS = sum / float64(len(raw))
		res.P95LatencyS = percentileSorted(sorted, 0.95)
		res.MaxLatencyS = sorted[len(sorted)-1]
	}
	if o.keepLatencies && len(raw) > 0 {
		// Publish an exact-size copy in event order: the pooled buffer
		// never escapes, and append-growth slack never reaches the Result.
		res.Latencies = make([]float64, len(raw))
		copy(res.Latencies, raw)
	}
	return res, eng, mgr.PlanStats()
}

// percentileSorted returns the p-quantile (true nearest-rank, rank =
// ceil(n·p), 1-based, clamped to [1, n]) of samples that are already sorted
// ascending — percentile without the per-quantile copy and sort, so
// p50/p95/max reads off one sorted slice share a single sort.
//
// Nearest-rank never interpolates and never selects below the requested
// coverage: the returned sample is ≥ at least ⌈n·p⌉ of the n samples. The
// round-half-up rank this replaced (int(n·p+0.5)) under-selected whenever
// n·p had a fractional part below one half — e.g. n=10, p=0.91 gave rank 9
// where nearest-rank requires ⌈9.1⌉ = 10.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// The (1 - 1e-12) nudge absorbs representation dust in n·p: an exact
	// integer product that lands a hair above its true value (9.1 is not
	// representable; 10×0.91 evaluates to 9.099999…96, but 100×0.91 to
	// 91.000000…1) must not ceil one rank too high.
	np := float64(len(sorted)) * p
	idx := int(math.Ceil(np*(1-1e-12))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Runner fans scenarios out over a bounded worker pool.
type Runner struct {
	// Workers is the pool size; 0 means runtime.NumCPU().
	Workers int
	// Progress, when set, is called as scenarios complete with the number
	// done so far and the total. Calls arrive from worker goroutines; the
	// callback must be safe for concurrent use.
	//
	// When OnResult is also set, done counts *delivered* results — the
	// prefix-complete count — and every Progress(done, total) call is
	// ordered strictly after the OnResult calls for indices [0, done).
	// A streaming consumer can therefore treat done as "results 0..done-1
	// are on disk". Without OnResult, done counts raw completions, which
	// finish out of order under the pool.
	Progress func(done, total int)
	// DropLatencies omits the raw per-job Latencies samples from every
	// Result (the fleetsim -nolat switch). The scalar per-scenario
	// mean/p95/max stay exact; what is lost is the pooled group
	// percentile, which Aggregate then approximates from the per-scenario
	// p95s. Raw samples dominate result and shard-file size, so
	// million-scenario fleets run with this set.
	DropLatencies bool
	// SyncEvery, for streaming runs (ResumeShard), fsyncs the stream file
	// after every this-many appended records. 0 (the default) never
	// fsyncs mid-run: per-record bufio flushes already survive process
	// death, and fsync only buys durability against whole-machine power
	// loss — see StreamWriter's crash model.
	SyncEvery int
	// OnResult, when set, is called exactly once per completed scenario,
	// in ascending scenario-index order (index is the position in the
	// slice passed to Run). Workers complete out of order; Run holds
	// finished results back until every earlier index has been delivered,
	// so a streaming consumer (the crash-resume stream writer) sees the
	// same prefix-complete order a sequential run would produce. Calls are
	// serialized but may arrive from any worker goroutine.
	OnResult func(index int, r Result)
	// DisablePlanCache turns off replan elision and plan memoisation in
	// every scenario's manager (the fleetsim -plancache=false switch).
	// Results are byte-identical either way — the switch exists so CI can
	// prove exactly that, and so regressions can be bisected against the
	// reuse-free path.
	DisablePlanCache bool

	// planStats accumulates every run's plan-reuse counters across this
	// Runner's lifetime (all Run calls). It sits behind a pointer so the
	// Runner itself stays a plain copyable value: the streaming path
	// copies a caller's Runner to rewire OnResult, and a shared
	// accumulator is exactly what that copy should inherit.
	planStats *planStatsAccum
}

// planStatsAccum is the mutex-guarded plan-reuse counter shared by every
// copy of a Runner.
type planStatsAccum struct {
	mu sync.Mutex
	s  rtm.PlanStats
}

// PlanCacheStats reports the accumulated plan-reuse counters of every
// scenario this Runner has executed. The totals are observability only:
// how work splits between elision, cache hits and fresh plans depends on
// how scenarios landed on workers, so these numbers never enter reports.
func (r *Runner) PlanCacheStats() rtm.PlanStats {
	if r.planStats == nil {
		return rtm.PlanStats{}
	}
	r.planStats.mu.Lock()
	defer r.planStats.mu.Unlock()
	return r.planStats.s
}

// addPlanStats folds one worker's accumulated counters into the runner's.
func (r *Runner) addPlanStats(s rtm.PlanStats) {
	r.planStats.mu.Lock()
	r.planStats.s.Add(s)
	r.planStats.mu.Unlock()
}

// ensurePlanStats lazily installs the shared accumulator. Called from the
// single-threaded entry of Run (and before the streaming path copies the
// Runner), so later copies share one accumulator with the original.
func (r *Runner) ensurePlanStats() {
	if r.planStats == nil {
		r.planStats = &planStatsAccum{}
	}
}

// workerPlanCache builds the per-worker plan memo cache — one cache per
// scenario stream, shared across that worker's runs so recurring planning
// states hit across scenario boundaries — or nil when reuse is disabled.
func (r *Runner) workerPlanCache() *rtm.PlanCache {
	if r.DisablePlanCache {
		return nil
	}
	return rtm.NewPlanCache(rtm.DefaultPlanCacheCap)
}

// Run executes all scenarios and returns results indexed by scenario
// position. Output is bit-identical for any worker count: each run is
// independent and results land in their own slot. Each worker owns one
// sim.Engine for its whole scenario stream, Reset in place between
// scenarios — the engine-construction allocations are paid once per
// worker, not once per scenario.
func (r *Runner) Run(scenarios []Scenario) []Result {
	r.ensurePlanStats()
	results := make([]Result, len(scenarios))
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers <= 1 {
		o := runOpts{
			keepLatencies: !r.DropLatencies,
			planCache:     r.workerPlanCache(),
			noPlanReuse:   r.DisablePlanCache,
		}
		var stats rtm.PlanStats
		for i, s := range scenarios {
			var ps rtm.PlanStats
			results[i], o.eng, ps = runOne(s, o)
			stats.Add(ps)
			if r.OnResult != nil {
				r.OnResult(i, results[i])
			}
			if r.Progress != nil {
				r.Progress(i+1, len(scenarios))
			}
		}
		r.addPlanStats(stats)
		return results
	}
	// emit tracks in-order delivery for OnResult: ready marks finished
	// indices, emit is the next index owed to the callback. Whichever
	// worker completes the missing prefix element drains everything that
	// became deliverable behind it, under the mutex, so callbacks stay
	// serialized and ordered. Progress shares the critical section so a
	// Progress(done, total) call can never race ahead of the OnResult
	// deliveries it claims to cover.
	var (
		emitMu sync.Mutex
		ready  []bool
		emit   int
	)
	if r.OnResult != nil {
		ready = make([]bool, len(scenarios))
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			o := runOpts{
				keepLatencies: !r.DropLatencies,
				planCache:     r.workerPlanCache(),
				noPlanReuse:   r.DisablePlanCache,
			}
			var stats rtm.PlanStats
			defer func() { r.addPlanStats(stats) }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				var ps rtm.PlanStats
				results[i], o.eng, ps = runOne(scenarios[i], o)
				stats.Add(ps)
				if r.OnResult != nil {
					emitMu.Lock()
					ready[i] = true
					delivered := 0
					for emit < len(ready) && ready[emit] {
						r.OnResult(emit, results[emit])
						emit++
						delivered++
					}
					if r.Progress != nil && delivered > 0 {
						r.Progress(emit, len(scenarios))
					}
					emitMu.Unlock()
				} else if r.Progress != nil {
					r.Progress(int(done.Add(1)), len(scenarios))
				}
			}
		}()
	}
	wg.Wait()
	return results
}
