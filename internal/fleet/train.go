package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// This file is the offline trainer behind the "learned:<table.json>"
// policy: it replays seeded fleet scenarios under every base policy (arm),
// records which discretised planning states each run visited, scores the
// run on a miss-rate + energy reward, and credits the score to every
// (state, arm) cell the run touched. A pure per-arm sweep seeds the table;
// epsilon-greedy epochs then refine it by re-running the workloads with
// per-state arm selection, so cells that only ever appear mid-run under
// mixed control get their own evidence. The PR 3 policy registry supplies
// the arms and the PR 4 allocation-free hot path is what makes the
// resulting run count cheap — this loop is planner-bound, not GC-bound.

// TrainConfig parametrises offline training of a learned policy table.
// TrainConfig{Seed: 1, Workloads: 64} is a complete configuration: arms,
// weights and workers default as documented, and zero Epochs/Epsilon are
// honoured as written (pure per-arm sweep, greedy refinement).
type TrainConfig struct {
	// Seed is the master seed: it derives the sampled workloads (exactly
	// as GeneratorConfig.Seed does) and every exploration decision, so a
	// given config trains to a byte-identical table.
	Seed uint64
	// Workloads is how many fleet workloads to sample (required, > 0).
	Workloads int
	// Workers bounds the training worker pool (0 = NumCPU). The trained
	// table is bit-identical for any value: runs within a phase read a
	// frozen table, and observations apply in run-index order.
	Workers int
	// Platforms / Classes restrict sampling, as in GeneratorConfig.
	Platforms []string
	Classes   []Class
	// Arms lists the base policies the table selects among (default:
	// heuristic, maxaccuracy, minenergy). Plain registry names only.
	Arms []string
	// Epochs is how many epsilon-greedy refinement epochs follow the
	// per-arm sweep. Zero is meaningful — a pure-sweep table — so no
	// default applies; cmd/policytrain's flag supplies its own (2).
	Epochs int
	// Epsilon is the per-Plan exploration probability during refinement
	// epochs. Zero is meaningful — greedy refinement (unseen states
	// still explore) — so no default applies; cmd/policytrain's flag
	// supplies its own (0.1).
	Epsilon float64
	// MissWeight and EnergyWeight define the scalar training cost of one
	// run: MissWeight·missRate + EnergyWeight·avgPowerW (defaults 1 and
	// 0.05 when both are zero — misses dominate, energy breaks ties).
	MissWeight   float64
	EnergyWeight float64
}

// ArmTrainStats is one arm's pure-sweep summary in a TrainReport.
type ArmTrainStats struct {
	// Runs is how many sweep runs the arm executed (one per workload).
	Runs int `json:"runs"`
	// MeanCost is the arm's mean training cost across those runs — the
	// number the learned policy must undercut to be worth shipping.
	MeanCost float64 `json:"meanCost"`
}

// TrainReport summarises a training run for humans and smoke tests.
type TrainReport struct {
	Workloads int      `json:"workloads"`
	Runs      int      `json:"runs"` // total scenario executions
	States    int      `json:"states"`
	Arms      []string `json:"arms"`
	// Sweep holds each arm's pure-sweep stats, keyed by arm name.
	Sweep map[string]ArmTrainStats `json:"sweep"`
}

// applied returns cfg with defaults resolved (see field docs). Epochs and
// Epsilon are deliberately not defaulted: zero is a meaningful setting for
// both (pure sweep; greedy refinement), and silently overriding an
// explicit zero would train a different table than the caller asked for.
func (cfg TrainConfig) applied() TrainConfig {
	if len(cfg.Arms) == 0 {
		cfg.Arms = []string{"heuristic", "maxaccuracy", "minenergy"}
	}
	if cfg.MissWeight == 0 && cfg.EnergyWeight == 0 {
		cfg.MissWeight, cfg.EnergyWeight = 1, 0.05
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return cfg
}

// visit is one recorded Plan-time decision: which arm ran in which state.
type visit struct {
	key string
	arm int
}

// trainRun is one scenario execution's outcome: the decision trace and the
// scalar cost the trace's cells are credited with.
type trainRun struct {
	visits []visit
	cost   float64
	err    error
}

// recordingPolicy is the in-training policy: per Plan it discretises the
// view, asks pick for an arm, records the decision and delegates. It is
// deliberately not registered — training injects it directly into a
// manager, bypassing the name registry.
type recordingPolicy struct {
	arms   []rtm.Policy
	pick   func(key string) int
	visits []visit
}

func (p *recordingPolicy) Name() string { return "learned-trainer" }

func (p *recordingPolicy) Plan(v rtm.View) []rtm.Assignment {
	key := rtm.StateKey(&v)
	arm := p.pick(key)
	p.visits = append(p.visits, visit{key, arm})
	return p.arms[arm].Plan(v)
}

// Train samples cfg.Workloads seeded fleet workloads and trains a learned
// policy selection table over them: a full per-arm sweep (every workload
// under every arm) followed by cfg.Epochs epsilon-greedy refinement
// epochs. Same config, same table, byte for byte, at any worker count —
// the determinism CI pins with a double-train cmp.
func Train(cfg TrainConfig) (*rtm.LearnedTable, TrainReport, error) {
	cfg = cfg.applied()
	if cfg.Workloads <= 0 {
		return nil, TrainReport{}, fmt.Errorf("fleet: training workload count %d must be positive", cfg.Workloads)
	}
	if len(cfg.Arms) < 2 {
		return nil, TrainReport{}, fmt.Errorf("fleet: training needs at least two arms, got %v", cfg.Arms)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		return nil, TrainReport{}, fmt.Errorf("fleet: epsilon %g outside [0,1]", cfg.Epsilon)
	}
	if cfg.Epochs < 0 {
		return nil, TrainReport{}, fmt.Errorf("fleet: epoch count %d must not be negative", cfg.Epochs)
	}
	// Arms validate fully up front — empty names (a trailing comma in
	// -arms), duplicates and parameterised names would otherwise surface
	// only when the finished table fails to serialise, discarding the
	// whole training run.
	seen := map[string]bool{}
	for _, name := range cfg.Arms {
		if name == "" || strings.Contains(name, ":") {
			return nil, TrainReport{}, fmt.Errorf("fleet: arm %q must be a plain policy name (no parameterised arms)", name)
		}
		if seen[name] {
			return nil, TrainReport{}, fmt.Errorf("fleet: arm %q listed twice", name)
		}
		seen[name] = true
		if _, err := rtm.NewPolicy(name); err != nil {
			return nil, TrainReport{}, fmt.Errorf("fleet: %w", err)
		}
	}
	gen, err := NewGenerator(GeneratorConfig{
		Seed: cfg.Seed, Platforms: cfg.Platforms, Classes: cfg.Classes,
	})
	if err != nil {
		return nil, TrainReport{}, err
	}
	scenarios := gen.Generate(cfg.Workloads)

	table := rtm.NewLearnedTable(cfg.Arms)
	rep := TrainReport{
		Workloads: cfg.Workloads,
		Arms:      append([]string(nil), cfg.Arms...),
		Sweep:     map[string]ArmTrainStats{},
	}

	// Phase 1 — per-arm sweep: run (workload, arm) exhaustively. Every
	// recorder pins one arm, so each visited state gets a clean sample of
	// what that arm costs end to end.
	sweep := make([]trainRun, len(scenarios)*len(cfg.Arms))
	err = forEachRun(cfg.Workers, len(sweep), func(i int, eng *sim.Engine) *sim.Engine {
		wl, arm := i/len(cfg.Arms), i%len(cfg.Arms)
		sweep[i], eng = trainOne(cfg, scenarios[wl], func(string) int { return arm }, eng)
		return eng
	}, sweep)
	if err != nil {
		return nil, TrainReport{}, err
	}
	rep.Runs += len(sweep)
	for i, r := range sweep {
		arm := i % len(cfg.Arms)
		for _, vi := range r.visits {
			table.Observe(vi.key, vi.arm, r.cost)
		}
		s := rep.Sweep[cfg.Arms[arm]]
		s.Runs++
		s.MeanCost += (r.cost - s.MeanCost) / float64(s.Runs)
		rep.Sweep[cfg.Arms[arm]] = s
	}

	// Phase 2 — epsilon-greedy refinement: replay the workloads under
	// per-state selection so states reached only under mixed control gain
	// their own cells. Runs read the table frozen (updates apply between
	// epochs, in workload order) and every exploration draw derives from
	// (Seed, epoch, workload), which together make the phase worker-count
	// independent.
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		runs := make([]trainRun, len(scenarios))
		err = forEachRun(cfg.Workers, len(runs), func(wl int, eng *sim.Engine) *sim.Engine {
			rng := rand.New(rand.NewSource(int64(splitmix64(splitmix64(cfg.Seed+uint64(epoch)) + uint64(wl)))))
			runs[wl], eng = trainOne(cfg, scenarios[wl], func(key string) int {
				if arm := greedyArm(table, key); arm >= 0 && rng.Float64() >= cfg.Epsilon {
					return arm
				}
				return rng.Intn(len(cfg.Arms))
			}, eng)
			return eng
		}, runs)
		if err != nil {
			return nil, TrainReport{}, err
		}
		rep.Runs += len(runs)
		for _, r := range runs {
			for _, vi := range r.visits {
				table.Observe(vi.key, vi.arm, r.cost)
			}
		}
	}

	table.Seed = cfg.Seed
	table.MissWeight, table.EnergyWeight = cfg.MissWeight, cfg.EnergyWeight
	table.Finalise()
	rep.States = len(table.States)
	return table, rep, nil
}

// greedyArm returns the index of the cheapest visited arm for a state, or
// -1 when the state is unknown or unvisited (the caller explores).
func greedyArm(t *rtm.LearnedTable, key string) int {
	st := t.States[key]
	if st == nil {
		return -1
	}
	best := -1
	for i, n := range st.Visits {
		if n > 0 && (best < 0 || st.Cost[i] < st.Cost[best]) {
			best = i
		}
	}
	return best
}

// forEachRun executes fn(0..n-1) across a bounded worker pool, then
// surfaces the first (lowest-index) run error. Results land in the
// caller's slice by index, so scheduling never reorders anything. Each
// worker threads one sim.Engine through its run stream — fn receives the
// worker's engine and returns the engine to carry forward — so training
// pays engine construction once per worker, exactly like Runner.Run.
func forEachRun(workers, n int, fn func(i int, eng *sim.Engine) *sim.Engine, runs []trainRun) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var eng *sim.Engine
		for i := 0; i < n; i++ {
			eng = fn(i, eng)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var eng *sim.Engine
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					eng = fn(i, eng)
				}
			}()
		}
		wg.Wait()
	}
	for i := range runs {
		if runs[i].err != nil {
			return fmt.Errorf("fleet: training run %d (%s): %w", i, runs[i].errContext(), runs[i].err)
		}
	}
	return nil
}

// errContext names the failing run for the error message.
func (r *trainRun) errContext() string {
	if len(r.visits) == 0 {
		return "before first plan"
	}
	return fmt.Sprintf("after %d plans", len(r.visits))
}

// trainOne executes one scenario under a recording policy and scores it.
// It runs through the very same runOne path a fleet evaluation uses —
// Scenario.Script.Planner injects the instrumented policy while every
// other execution detail (manager wiring, tick, metric extraction) stays
// shared — so training replays exactly the dynamics the trained table is
// later evaluated on. Arms are instantiated fresh per run, matching the
// one-policy-instance-per-scenario contract every other call site keeps
// (a stateful third-party arm must never be shared across worker
// goroutines). The worker's engine threads through exactly as in
// Runner.Run (returned nil after a failed run). The recording policy is
// outside both reuse tiers by construction — it cannot implement the
// sealed rtm seams — so every training run plans fresh and its visit
// trace stays complete.
func trainOne(cfg TrainConfig, s Scenario, pick func(key string) int, eng *sim.Engine) (trainRun, *sim.Engine) {
	rec := &recordingPolicy{arms: make([]rtm.Policy, len(cfg.Arms)), pick: pick}
	for i, name := range cfg.Arms {
		p, err := rtm.NewPolicy(name)
		if err != nil {
			return trainRun{err: err}, eng
		}
		rec.arms[i] = p
	}
	s.Script.Planner = rec
	r, eng, _ := runOne(s, runOpts{eng: eng})
	if r.Err != "" {
		return trainRun{visits: rec.visits, err: fmt.Errorf("%s", r.Err)}, eng
	}
	return trainRun{
		visits: rec.visits,
		cost:   cfg.MissWeight*missRate(r) + cfg.EnergyWeight*(r.AvgPowerMW/1000),
	}, eng
}
