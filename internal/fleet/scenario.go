// Package fleet is a fleet-scale evaluation harness: it samples many
// diverse runtime scenarios from the repo's building blocks (platforms
// from hw.Catalog, app mixes and disturbance patterns in the style of
// internal/workload) and runs them as independent sim.Engine + rtm.Manager
// instances across a bounded worker pool.
//
// Determinism is the core contract. Every scenario carries its own RNG
// seed, derived from the master seed and the scenario index by a SplitMix64
// step, so scenario i is the same no matter how many scenarios are
// generated around it; and every run is a pure function of its scenario,
// so the aggregate report is bit-identical regardless of worker count or
// completion order. That is what lets a 1-worker CI run and a 64-worker
// sweep box check each other.
package fleet

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
	"github.com/emlrtm/emlrtm/internal/workload"
)

// Class labels the disturbance pattern a scenario exercises. Classes keep
// the sampled population covering the paper's qualitatively different
// regimes instead of collapsing into one average workload.
type Class string

// Scenario classes, from least to most adversarial.
const (
	// ClassSteady: DNN streams only, no disturbances — the manager's plan
	// should converge once and hold.
	ClassSteady Class = "steady"
	// ClassMixed: DNN streams sharing the platform with render and
	// background load from the start (the Fig 2 co-location premise).
	ClassMixed Class = "mixed"
	// ClassBursty: background bursts arrive and leave mid-run (the Fig 5
	// disturbance shape).
	ClassBursty Class = "bursty"
	// ClassThermal: the ambient temperature ramps up mid-run, forcing the
	// manager to shed power (the Fig 2 t=18 event).
	ClassThermal Class = "thermal"
	// ClassChurn: apps arrive/leave mid-run and a requirement changes (the
	// Fig 2 t=25 event).
	ClassChurn Class = "churn"
	// ClassFaulty: clusters drop offline mid-run (and usually come back) —
	// the hardware-fault disturbance. Never all clusters at once, so a
	// graceful policy always has somewhere to degrade to.
	ClassFaulty Class = "faulty"
)

// AllClasses lists every built-in class in generation order.
func AllClasses() []Class {
	return []Class{ClassSteady, ClassMixed, ClassBursty, ClassThermal, ClassChurn, ClassFaulty}
}

// Scenario is one generated fleet member: a scripted workload bound to a
// named catalog platform, run under a named planning policy. When the
// generator sweeps several policies, consecutive scenario IDs share one
// workload (same Seed, Class, Platform, Script) and differ only in
// Policy, so per-policy aggregates compare strategies on identical work.
type Scenario struct {
	ID       int
	Seed     uint64
	Class    Class
	Platform string // hw.Catalog key
	Policy   string // rtm policy registry key
	Script   workload.Scenario
}

// GeneratorConfig parametrises scenario sampling. It is JSON-tagged
// because shard files embed it verbatim: Merge only accepts shards whose
// configs are identical, since any difference here changes what scenario
// index i means.
type GeneratorConfig struct {
	// Seed is the master seed; all per-scenario seeds derive from it.
	Seed uint64 `json:"seed"`
	// Platforms restricts sampling to these hw.Catalog names (nil = all,
	// in sorted-name order for determinism).
	Platforms []string `json:"platforms,omitempty"`
	// Classes restricts sampling to these classes (nil = AllClasses).
	Classes []Class `json:"classes,omitempty"`
	// MinDurationS/MaxDurationS bound the sampled simulation horizon.
	// Defaults: 20 and 40 seconds.
	MinDurationS float64 `json:"minDurationS,omitempty"`
	MaxDurationS float64 `json:"maxDurationS,omitempty"`
	// Policies lists the rtm planning policies to sweep (nil = just the
	// default heuristic). With P policies, run index i carries workload
	// i/P under policy i%P: each sampled workload is evaluated under
	// every policy, back to back in the index space, so any contiguous
	// shard split keeps the sweep balanced.
	Policies []string `json:"policies,omitempty"`
}

// Generator samples scenarios deterministically.
type Generator struct {
	cfg       GeneratorConfig
	platforms []string
	classes   []Class
	policies  []string
}

// NewGenerator validates the config against the platform catalog.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	cat := hw.Catalog()
	if cfg.MinDurationS == 0 {
		cfg.MinDurationS = 20
	}
	if cfg.MaxDurationS == 0 {
		cfg.MaxDurationS = 40
	}
	if cfg.MinDurationS <= 0 || cfg.MaxDurationS < cfg.MinDurationS {
		return nil, fmt.Errorf("fleet: bad duration range [%g,%g]", cfg.MinDurationS, cfg.MaxDurationS)
	}
	g := &Generator{cfg: cfg}
	if len(cfg.Platforms) == 0 {
		for name := range cat {
			g.platforms = append(g.platforms, name)
		}
		sort.Strings(g.platforms)
	} else {
		for _, name := range cfg.Platforms {
			if cat[name] == nil {
				return nil, fmt.Errorf("fleet: unknown platform %q", name)
			}
			g.platforms = append(g.platforms, name)
		}
	}
	if len(cfg.Classes) == 0 {
		g.classes = AllClasses()
	} else {
		known := map[Class]bool{}
		for _, c := range AllClasses() {
			known[c] = true
		}
		for _, c := range cfg.Classes {
			if !known[c] {
				return nil, fmt.Errorf("fleet: unknown class %q (valid: %v)", c, AllClasses())
			}
		}
		g.classes = cfg.Classes
	}
	pols, err := resolvePolicies(cfg.Policies)
	if err != nil {
		return nil, err
	}
	g.policies = pols
	return g, nil
}

// resolvePolicies validates a policy list against the rtm registry and
// applies the default. Duplicates are rejected: they would silently run
// the same strategy twice and skew per-policy aggregates.
func resolvePolicies(names []string) ([]string, error) {
	if len(names) == 0 {
		return []string{rtm.DefaultPolicy}, nil
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(names))
	for _, name := range names {
		if _, err := rtm.NewPolicy(name); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		if name == "" {
			name = rtm.DefaultPolicy
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: policy %q listed twice", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	return out, nil
}

// normalized returns the config with Policies resolved to its canonical
// form (nil and [""] become ["heuristic"]), so configs that mean the same
// fleet compare equal — a shard run with the default policy implicit must
// merge with one where it was spelled out.
func (c GeneratorConfig) normalized() GeneratorConfig {
	if pols, err := resolvePolicies(c.Policies); err == nil {
		c.Policies = pols
	}
	return c
}

// Policies returns the resolved policy sweep list.
func (g *Generator) Policies() []string { return append([]string(nil), g.policies...) }

// RunCount converts a workload count into a run count: every sampled
// workload is run once per swept policy.
func (g *Generator) RunCount(workloads int) int { return workloads * len(g.policies) }

// splitmix64 is the standard SplitMix64 output step; it turns the master
// seed and a scenario index into a well-mixed per-scenario seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scenarioSeed derives scenario id's RNG seed from the master seed. It is
// the determinism anchor of the distributed layer: shard readers recompute
// it to detect results that were generated under a different master seed.
func scenarioSeed(master uint64, id int) uint64 {
	return splitmix64(master + uint64(id)*0x9e3779b97f4a7c15)
}

// Generate samples n scenarios (n <= 0 yields none). Scenario i depends
// only on (Seed, i), so prefixes are stable when n grows.
func (g *Generator) Generate(n int) []Scenario {
	return g.GenerateRange(0, n)
}

// GenerateRange samples scenarios for the half-open index range [lo, hi).
// Because scenario i depends only on (Seed, i), a contiguous range is
// independently reproducible in any process: GenerateRange(lo, hi) equals
// Generate(hi)[lo:hi] element for element. This is what a shard owns in a
// multi-process fleet run. Out-of-range bounds clamp (lo < 0 becomes 0;
// hi <= lo yields none).
func (g *Generator) GenerateRange(lo, hi int) []Scenario {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	// One RNG serves the whole range, re-seeded per scenario: reseeding a
	// rand.Rand is state-identical to constructing one from rand.NewSource
	// with the same seed, so batching the setup drops two allocations per
	// scenario without moving a single sampled byte.
	rng := rand.New(rand.NewSource(0))
	out := make([]Scenario, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, g.generateOne(i, rng))
	}
	return out
}

func (g *Generator) generateOne(id int, rng *rand.Rand) Scenario {
	// With P swept policies, run id carries workload id/P under policy
	// id%P: the workload RNG seeds off the *workload* index, so the same
	// script is regenerated bit-identically for every policy it runs
	// under — that is what makes per-policy aggregates comparable.
	wl := id / len(g.policies)
	policy := g.policies[id%len(g.policies)]
	seed := scenarioSeed(g.cfg.Seed, wl)
	rng.Seed(int64(seed))
	class := g.classes[rng.Intn(len(g.classes))]
	platName := g.platforms[rng.Intn(len(g.platforms))]
	plat := hw.Catalog()[platName]

	s := Scenario{
		ID:       id,
		Seed:     seed,
		Class:    class,
		Platform: platName,
		Policy:   policy,
	}
	s.Script = g.script(rng, class, plat)
	s.Script.Name = fmt.Sprintf("%s-%s-%04d", class, platName, wl)
	s.Script.Policy = policy
	return s
}

// env is the platform-derived sampling envelope: which profile is
// realistic, which clusters can host what, and how fast the best cluster
// runs the full model (periods scale off that so every platform sees
// feasible-but-tight frame rates rather than one hardcoded mix).
type env struct {
	prof       perf.ModelProfile
	modelBytes int64
	bestLatS   float64 // full-model latency on the fastest cluster at max OPP
	dnnHosts   []string
	cpuHosts   []*hw.Cluster // CPU clusters for background load
	renderHost string        // GPU cluster name, "" if none
}

func newEnv(plat *hw.Platform) env {
	e := env{prof: perf.PaperReferenceProfile(), modelBytes: 350 << 10}
	// Platforms with a fast accelerator get the heavier mobile-vision
	// profile so the accelerator faces real trade-offs.
	for _, cl := range plat.Clusters {
		if cl.Type.IsAccelerator() && cl.RateMACsPerSecGHz*cl.MaxOPP().FreqGHz >= 100e6 {
			e.prof = workload.MobileProfile()
			e.modelBytes = 7 << 20
			break
		}
	}
	full := e.prof.Level(e.prof.MaxLevel()).MACs
	best := 0.0
	for _, cl := range plat.Clusters {
		lat := perf.InferenceLatencyS(cl, cl.MaxOPP(), cl.Cores, full)
		if best == 0 || lat < best {
			best = lat
		}
		e.dnnHosts = append(e.dnnHosts, cl.Name)
		if cl.Type.IsAccelerator() {
			if cl.Type == hw.CoreGPU && e.renderHost == "" {
				e.renderHost = cl.Name
			}
		} else {
			e.cpuHosts = append(e.cpuHosts, cl)
		}
	}
	e.bestLatS = best
	return e
}

// pickPeriod samples a frame period as a multiple of the platform's best
// full-model latency: tight (×1.5) through comfortable (×8).
func pickPeriod(rng *rand.Rand, e env) float64 {
	factors := []float64{1.5, 2, 3, 5, 8}
	return e.bestLatS * factors[rng.Intn(len(factors))]
}

// pickRequirement samples an achievable accuracy floor by choosing a level
// of the profile (or none) and a priority.
func pickRequirement(rng *rand.Rand, e env) rtm.Requirement {
	r := rtm.Requirement{Priority: 1 + rng.Intn(3)}
	if lvl := rng.Intn(e.prof.MaxLevel() + 1); lvl > 0 {
		r.MinAccuracy = e.prof.Level(lvl).Accuracy
	}
	return r
}

func (g *Generator) sampleDuration(rng *rand.Rand) float64 {
	lo, hi := g.cfg.MinDurationS, g.cfg.MaxDurationS
	return lo + rng.Float64()*(hi-lo)
}

// script builds the class-specific workload timeline.
func (g *Generator) script(rng *rand.Rand, class Class, plat *hw.Platform) workload.Scenario {
	e := newEnv(plat)
	endS := g.sampleDuration(rng)
	sc := workload.Scenario{
		EndS: endS,
		Reqs: map[string]rtm.Requirement{},
	}

	nDNN := 1 + rng.Intn(3)
	var dnnNames []string
	for i := 0; i < nDNN; i++ {
		name := fmt.Sprintf("dnn%d", i+1)
		dnnNames = append(dnnNames, name)
		host := plat.Cluster(e.dnnHosts[rng.Intn(len(e.dnnHosts))])
		cores := host.Cores
		if !host.Type.IsAccelerator() {
			cores = 1 + rng.Intn(host.Cores)
		}
		app := sim.App{
			Name:       name,
			Kind:       sim.KindDNN,
			Profile:    e.prof,
			Level:      1 + rng.Intn(e.prof.MaxLevel()),
			PeriodS:    pickPeriod(rng, e),
			ModelBytes: e.modelBytes,
			Placement:  sim.Placement{Cluster: host.Name, Cores: cores},
		}
		if class == ClassChurn && i > 0 {
			// Staggered arrivals; some leave before the end.
			app.StartS = rng.Float64() * endS / 2
			if rng.Intn(2) == 0 {
				app.StopS = app.StartS + (0.3+0.5*rng.Float64())*(endS-app.StartS)
			}
		}
		sc.Apps = append(sc.Apps, app)
		sc.Reqs[name] = pickRequirement(rng, e)
	}

	switch class {
	case ClassMixed:
		if e.renderHost != "" {
			sc.Apps = append(sc.Apps, sim.App{
				Name:      "render",
				Kind:      sim.KindRender,
				Util:      0.3 + 0.5*rng.Float64(),
				Placement: sim.Placement{Cluster: e.renderHost},
			})
		}
		if len(e.cpuHosts) > 0 {
			host := e.cpuHosts[rng.Intn(len(e.cpuHosts))]
			sc.Apps = append(sc.Apps, sim.App{
				Name:      "bg",
				Kind:      sim.KindBackground,
				Util:      0.3 + 0.6*rng.Float64(),
				Placement: sim.Placement{Cluster: host.Name, Cores: 1 + rng.Intn(host.Cores)},
			})
		}
	case ClassBursty:
		nBurst := 1 + rng.Intn(2)
		for i := 0; i < nBurst && len(e.cpuHosts) > 0; i++ {
			host := e.cpuHosts[rng.Intn(len(e.cpuHosts))]
			start := rng.Float64() * endS * 0.6
			sc.Apps = append(sc.Apps, sim.App{
				Name:      fmt.Sprintf("burst%d", i+1),
				Kind:      sim.KindBackground,
				Util:      0.6 + 0.4*rng.Float64(),
				StartS:    start,
				StopS:     start + (0.2+0.3*rng.Float64())*endS,
				Placement: sim.Placement{Cluster: host.Name, Cores: 1 + rng.Intn(host.Cores)},
			})
		}
	case ClassThermal:
		hotAt := (0.2 + 0.3*rng.Float64()) * endS
		hotC := plat.AmbientC + 10 + 10*rng.Float64()
		sc.Actions = append(sc.Actions, workload.Action{
			AtS:  hotAt,
			Name: "hot-environment",
			Do:   func(se *sim.Engine, m *rtm.Manager) { se.SetAmbient(hotC) },
		})
		if rng.Intn(2) == 0 {
			coolAt := hotAt + (0.3+0.3*rng.Float64())*(endS-hotAt)
			base := plat.AmbientC
			sc.Actions = append(sc.Actions, workload.Action{
				AtS:  coolAt,
				Name: "cool-environment",
				Do:   func(se *sim.Engine, m *rtm.Manager) { se.SetAmbient(base) },
			})
		}
	case ClassFaulty:
		// Seeded hardware faults: one cluster (two on bigger platforms)
		// drops offline mid-run; most come back. rng.Perm keeps the failed
		// clusters distinct, so at least one cluster always stays online
		// and a graceful policy has somewhere to degrade to.
		nWin := 1
		if len(plat.Clusters) > 2 && rng.Intn(2) == 0 {
			nWin = 2
		}
		order := rng.Perm(len(plat.Clusters))
		for i := 0; i < nWin; i++ {
			fw := workload.FaultWindow{
				Cluster: plat.Clusters[order[i]].Name,
				FailS:   (0.2 + 0.4*rng.Float64()) * endS,
			}
			if rng.Intn(3) > 0 {
				fw.RepairS = fw.FailS + (0.15+0.35*rng.Float64())*(endS-fw.FailS)
			}
			sc.Faults = append(sc.Faults, fw)
		}
	case ClassChurn:
		// Mid-run requirement change on one DNN, as in Fig 2 t=25.
		target := dnnNames[rng.Intn(len(dnnNames))]
		newReq := pickRequirement(rng, e)
		sc.Actions = append(sc.Actions, workload.Action{
			AtS:  (0.4 + 0.3*rng.Float64()) * endS,
			Name: "requirement-change-" + target,
			Do: func(se *sim.Engine, m *rtm.Manager) {
				m.SetRequirement(target, newReq)
				m.Replan(se)
			},
		})
	}
	return sc
}
