package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var sweep3 = []string{"heuristic", "maxaccuracy", "minenergy"}

// TestSweepPairsWorkloads: with P policies, consecutive run indices must
// carry the *same* workload (seed, class, platform, script) under
// different policies — that identity is what makes per-policy aggregates
// a controlled comparison.
func TestSweepPairsWorkloads(t *testing.T) {
	gen, err := NewGenerator(GeneratorConfig{Seed: 21, Policies: sweep3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewGenerator(GeneratorConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const workloads = 5
	runs := gen.Generate(gen.RunCount(workloads))
	if len(runs) != workloads*len(sweep3) {
		t.Fatalf("generated %d runs, want %d", len(runs), workloads*len(sweep3))
	}
	plain := base.Generate(workloads)
	for i, s := range runs {
		wl, pol := i/len(sweep3), sweep3[i%len(sweep3)]
		if s.Policy != pol || s.Script.Policy != pol {
			t.Errorf("run %d policy = %q/%q, want %q", i, s.Policy, s.Script.Policy, pol)
		}
		// Strip the policy and compare against the single-policy
		// generation of the same workload index: everything else must be
		// bit-identical.
		stripped := s
		stripped.ID = wl
		stripped.Policy = ""
		stripped.Script.Policy = ""
		if fingerprint(stripped) != fingerprint(plain[wl]) {
			t.Errorf("run %d (workload %d, %s) workload differs from single-policy generation:\n%s\n%s",
				i, wl, pol, fingerprint(stripped), fingerprint(plain[wl]))
		}
	}
}

// TestSweepReportDeterministicAcrossWorkers: the acceptance contract for
// `fleetsim -policies ...` — one report, per-policy rows, identical at
// any parallelism, with every policy aggregating the same frame count.
func TestSweepReportDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 18 scenarios")
	}
	cfg := GeneratorConfig{Seed: 9, Policies: sweep3, Platforms: []string{"odroid-xu3"}}
	const workloads = 6

	rep1, res1, err := Run(cfg, workloads, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep8, _, err := Run(cfg, workloads, 8)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(rep1)
	j8, _ := json.Marshal(rep8)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("sweep report differs between workers=1 and workers=8:\n%s\n%s", j1, j8)
	}

	if len(rep1.ByPolicy) != len(sweep3) {
		t.Fatalf("ByPolicy has %d entries, want %d: %v", len(rep1.ByPolicy), len(sweep3), rep1.ByPolicy)
	}
	frames := -1
	for _, name := range sweep3 {
		g, ok := rep1.ByPolicy[name]
		if !ok {
			t.Fatalf("ByPolicy missing %q", name)
		}
		if g.Scenarios != workloads {
			t.Errorf("policy %s aggregated %d scenarios, want %d", name, g.Scenarios, workloads)
		}
		if frames == -1 {
			frames = g.Frames
		} else if g.Frames != frames {
			t.Errorf("policy %s saw %d frames, others saw %d — workloads diverged", name, g.Frames, frames)
		}
	}
	for _, r := range res1 {
		if r.Err != "" {
			t.Errorf("scenario %d (%s/%s): %s", r.ID, r.Name, r.Policy, r.Err)
		}
	}
}

// TestSinglePolicyReportOmitsByPolicy: a single-policy fleet must not grow
// a ByPolicy section — that is what keeps the heuristic report
// byte-identical to the pre-policy golden file.
func TestSinglePolicyReportOmitsByPolicy(t *testing.T) {
	rep, results, err := Run(GeneratorConfig{Seed: 4, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByPolicy != nil {
		t.Fatalf("single-policy report grew ByPolicy: %v", rep.ByPolicy)
	}
	j, _ := json.Marshal(rep)
	if bytes.Contains(j, []byte("byPolicy")) {
		t.Fatalf("byPolicy key present in single-policy JSON: %s", j)
	}
	for _, r := range results {
		if r.Policy != "heuristic" {
			t.Errorf("scenario %d policy = %q, want heuristic", r.ID, r.Policy)
		}
	}
}

// TestGeneratorPolicyValidation: unknown and duplicate policies must fail
// before any simulation.
func TestGeneratorPolicyValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Policies: []string{"warp-speed"}}); err == nil {
		t.Error("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "warp-speed") {
		t.Errorf("error %q does not name the bad policy", err)
	}
	if _, err := NewGenerator(GeneratorConfig{Policies: []string{"heuristic", "heuristic"}}); err == nil {
		t.Error("duplicate policy accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Policies: []string{"minenergy", "", "heuristic"}}); err == nil {
		t.Error(`"" alongside its resolved name "heuristic" accepted`)
	}
	gen, err := NewGenerator(GeneratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := gen.Policies(); len(got) != 1 || got[0] != "heuristic" {
		t.Errorf("default policies = %v, want [heuristic]", got)
	}
	if gen.RunCount(7) != 7 {
		t.Errorf("single-policy RunCount(7) = %d", gen.RunCount(7))
	}
}

// TestShardSweepValidation: shard files from a policy sweep must prove
// their policy assignment on read/merge — a result claiming the wrong
// policy for its index, or a config naming an unknown policy, is
// rejected at the file boundary.
func TestShardSweepValidation(t *testing.T) {
	cfg := GeneratorConfig{Seed: 3, Policies: []string{"heuristic", "minenergy"}}
	shard := fakeSweepShard(cfg, 8, 0, 4)
	if err := shard.Validate(); err != nil {
		t.Fatalf("valid sweep shard rejected: %v", err)
	}

	tampered := fakeSweepShard(cfg, 8, 0, 4)
	tampered.Results[1].Policy = "heuristic" // index 1 belongs to minenergy
	err := tampered.Validate()
	if err == nil {
		t.Fatal("tampered policy assignment validated")
	}
	if !strings.Contains(err.Error(), "policy") {
		t.Errorf("error %q does not mention the policy", err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(&buf); err == nil {
		t.Error("ReadShard accepted a shard Validate rejects")
	}

	unknown := fakeSweepShard(cfg, 8, 0, 4)
	unknown.Config.Policies = []string{"heuristic", "warp-speed"}
	if err := unknown.Validate(); err == nil {
		t.Error("shard with unknown policy in config validated")
	}

	// Merging shards from different policy lists must fail as a config
	// mismatch.
	other := GeneratorConfig{Seed: 3, Policies: []string{"heuristic", "maxaccuracy"}}
	if _, _, err := Merge(fakeSweepShard(cfg, 8, 0, 4), fakeSweepShard(other, 8, 4, 8)); err == nil {
		t.Error("merge across different policy sweeps accepted")
	}

	// ...but spelling the default policy out must not: a shard run with
	// Policies nil and one with an explicit ["heuristic"] describe the
	// same fleet and merge cleanly.
	implicit := GeneratorConfig{Seed: 3}
	explicit := GeneratorConfig{Seed: 3, Policies: []string{"heuristic"}}
	if _, res, err := Merge(fakeSweepShard(implicit, 8, 0, 4), fakeSweepShard(explicit, 8, 4, 8)); err != nil {
		t.Errorf("implicit/explicit default-policy shards failed to merge: %v", err)
	} else if len(res) != 8 {
		t.Errorf("merged %d results, want 8", len(res))
	}
}

// fakeSweepShard is fakeShard for a multi-policy config: seeds and
// policies follow the real id → (workload, policy) derivation.
func fakeSweepShard(cfg GeneratorConfig, total, lo, hi int) ShardResult {
	pols := cfg.Policies
	if len(pols) == 0 {
		pols = []string{"heuristic"}
	}
	results := make([]Result, 0, hi-lo)
	for id := lo; id < hi; id++ {
		results = append(results, Result{
			ID:       id,
			Seed:     scenarioSeed(cfg.Seed, id/len(pols)),
			Class:    ClassSteady,
			Platform: "odroid-xu3",
			Policy:   pols[id%len(pols)],
		})
	}
	return ShardResult{
		FormatVersion: ShardFormatVersion,
		Config:        cfg,
		Total:         total,
		Lo:            lo,
		Hi:            hi,
		Results:       results,
	}
}

// TestSweepShardEquivalence: sharding a policy sweep and merging must be
// byte-identical to the single-process sweep — including the ByPolicy
// section — with shards round-tripped through gzipped files.
func TestSweepShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 16 scenarios")
	}
	cfg := GeneratorConfig{Seed: 17, Policies: []string{"heuristic", "minenergy"}, Platforms: []string{"odroid-xu3"}}
	const workloads, shards = 4, 3

	singleRep, singleRes, err := Run(cfg, workloads, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	read := make([]ShardResult, 0, shards)
	for i := 0; i < shards; i++ {
		s, err := RunShard(cfg, workloads, i, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "shard.json.gz")
		if err := WriteShardFile(path, s); err != nil {
			t.Fatal(err)
		}
		back, err := ReadShardFile(path)
		if err != nil {
			t.Fatal(err)
		}
		read = append(read, back)
	}
	mergedRep, mergedRes, err := Merge(read...)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, _ := json.Marshal(singleRep)
	gotRep, _ := json.Marshal(mergedRep)
	if !bytes.Equal(wantRep, gotRep) {
		t.Errorf("merged sweep report != single-process report:\n%s\n%s", wantRep, gotRep)
	}
	wantRes, _ := json.Marshal(singleRes)
	gotRes, _ := json.Marshal(mergedRes)
	if !bytes.Equal(wantRes, gotRes) {
		t.Error("merged sweep results != single-process results")
	}
	if len(mergedRep.ByPolicy) != 2 {
		t.Errorf("merged ByPolicy = %v, want 2 policies", mergedRep.ByPolicy)
	}
}

// TestGzipShardFiles: the .gz path must round-trip bit-identically, sniff
// transparently on read, and actually shrink the file (Latencies dominate
// shard bytes and compress well).
func TestGzipShardFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 scenarios")
	}
	cfg := GeneratorConfig{Seed: 8, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}
	s, err := RunShard(cfg, 2, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	plain := filepath.Join(dir, "shard.json")
	zipped := filepath.Join(dir, "shard.json.gz")
	if err := WriteShardFile(plain, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardFile(zipped, s); err != nil {
		t.Fatal(err)
	}

	pi, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zi, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zi.Size() >= pi.Size() {
		t.Errorf("gzip did not shrink the shard: %d >= %d bytes", zi.Size(), pi.Size())
	}

	want, _ := json.Marshal(s)
	for _, path := range []string{plain, zipped} {
		back, err := ReadShardFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, _ := json.Marshal(back)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: round-trip changed the shard", path)
		}
	}

	// The gzip file really is gzip (magic number), and ReadShard sniffs it
	// from a plain reader too.
	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("gz file does not start with the gzip magic number")
	}
	if _, err := ReadShard(bytes.NewReader(raw)); err != nil {
		t.Errorf("ReadShard failed to sniff gzip from a stream: %v", err)
	}

	// Truncated gzip input must error, not silently yield a partial shard.
	if _, err := ReadShard(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated gzip shard accepted")
	}
}
