package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles the test binary as a real shard process: invoked as
//
//	<test-binary> __fleet_shard_helper <mode> <path> <seed> <total> <index> <count>
//
// it never reaches the test runner. Mode "run" executes ResumeShard — the
// exact code path fleetsim -resume drives — so orchestrator tests can
// dispatch, SIGKILL and resume genuine OS processes. Mode "stall" appends
// one record and then hangs, simulating a dead or wedged shard for the
// straggler-detection path.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "__fleet_shard_helper" {
		shardHelper(os.Args[2:])
		return
	}
	os.Exit(m.Run())
}

func shardHelper(args []string) {
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "shard helper: %v\n", err)
		os.Exit(1)
	}
	if len(args) != 6 {
		die(fmt.Errorf("want 6 args, got %d", len(args)))
	}
	mode, path := args[0], args[1]
	seed, err1 := strconv.ParseUint(args[2], 10, 64)
	total, err2 := strconv.Atoi(args[3])
	index, err3 := strconv.Atoi(args[4])
	count, err4 := strconv.Atoi(args[5])
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			die(err)
		}
	}
	cfg := helperConfig(seed)
	if mode == "runf" {
		cfg = helperFaultyConfig(seed)
	}
	switch mode {
	case "run", "runf":
		if _, err := ResumeShard(path, cfg, total, index, count, 1); err != nil {
			die(err)
		}
	case "stall":
		// One record of progress, then silence: the orchestrator must
		// notice the flat mtime and kill us.
		gen, err := NewGenerator(cfg)
		if err != nil {
			die(err)
		}
		lo, hi := ShardRange(gen.RunCount(total), index, count)
		f, err := os.Create(path)
		if err != nil {
			die(err)
		}
		sw, err := NewStreamWriter(f, StreamHeader{Config: cfg, Total: gen.RunCount(total), Lo: lo, Hi: hi})
		if err != nil {
			die(err)
		}
		if err := sw.Append(RunOne(gen.GenerateRange(lo, lo+1)[0])); err != nil {
			die(err)
		}
		time.Sleep(time.Minute)
	default:
		die(fmt.Errorf("unknown mode %q", mode))
	}
	os.Exit(0)
}

// helperConfig pins the fleet the helper processes run; parent tests must
// use the same derivation.
func helperConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{Seed: seed, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}
}

// helperFaultyConfig is the fault-injection counterpart ("runf" mode):
// every scenario carries seeded cluster-fault windows, so a SIGKILL lands
// mid-fault for the in-flight scenario.
func helperFaultyConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{Seed: seed, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassFaulty}}
}

// helperArgv builds the helper-process argv for CommandStart.
func helperArgv(mode string, seed uint64, total int) func(ShardSpec) []string {
	return func(spec ShardSpec) []string {
		return []string{os.Args[0], "__fleet_shard_helper", mode, spec.Path,
			strconv.FormatUint(seed, 10), strconv.Itoa(total),
			strconv.Itoa(spec.Index), strconv.Itoa(spec.Count)}
	}
}

func reportJSON(t *testing.T, rep Report, res []Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Rep Report
		Res []Result
	}{rep, res})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOrchestrateInProcess: the orchestrator over in-process shards — one
// of them resuming a crash-truncated stream left in the directory — must
// reproduce the single-process report and results byte-for-byte.
func TestOrchestrateInProcess(t *testing.T) {
	cfg := GeneratorConfig{Seed: 31, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady, ClassBursty}}
	const workloads = 8
	const shards = 3

	singleRep, singleRes, err := Run(cfg, workloads, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Leave a crashed shard 2 behind: header, one intact record, one torn
	// line. The orchestrator must resume it, not recompute or reject it.
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runs := gen.RunCount(workloads)
	lo, hi := ShardRange(runs, 1, shards)
	crashed := filepath.Join(dir, StreamFileName(1, shards))
	f, err := os.Create(crashed)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f, StreamHeader{Config: cfg, Total: runs, Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(RunOne(gen.GenerateRange(lo, lo+1)[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logs []string
	var logMu sync.Mutex
	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: shards, Dir: dir, Workers: 2,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("orchestrated report differs from single-process run")
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, fmt.Sprintf("merged %d/%d", shards, shards)) {
		t.Errorf("logs never report the final incremental merge:\n%s", joined)
	}
}

// TestOrchestrateRetriesFailedShard: a shard whose first attempt dies
// after partial progress is retried with backoff and resumes; the final
// report is unaffected by the failure.
func TestOrchestrateRetriesFailedShard(t *testing.T) {
	cfg := GeneratorConfig{Seed: 17, Platforms: []string{"odroid-xu3"}, Classes: []Class{ClassSteady}}
	const workloads = 6
	const shards = 2

	singleRep, singleRes, err := Run(cfg, workloads, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runs := gen.RunCount(workloads)

	dir := t.TempDir()
	var attemptMu sync.Mutex
	attempts := map[int]int{}
	start := func(spec ShardSpec) (ShardProcess, error) {
		attemptMu.Lock()
		attempts[spec.Index]++
		n := attempts[spec.Index]
		attemptMu.Unlock()
		return inProcessShard(func() error {
			if spec.Index == 0 && n == 1 {
				// First attempt of shard 1: flush one record, then die the
				// way a crashed process does — partial stream, error exit.
				f, err := os.Create(spec.Path)
				if err != nil {
					return err
				}
				defer f.Close()
				sw, err := NewStreamWriter(f, StreamHeader{Config: cfg, Total: runs, Lo: spec.Lo, Hi: spec.Hi})
				if err != nil {
					return err
				}
				if err := sw.Append(RunOne(gen.GenerateRange(spec.Lo, spec.Lo+1)[0])); err != nil {
					return err
				}
				return fmt.Errorf("simulated crash")
			}
			_, err := ResumeShard(spec.Path, cfg, workloads, spec.Index, spec.Count, 1)
			return err
		}), nil
	}

	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: shards, Dir: dir,
		Start: start, RetryBackoff: time.Millisecond, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts[0] != 2 {
		t.Errorf("shard 1 ran %d attempts, want 2 (fail, then resumed success)", attempts[0])
	}
	if attempts[1] != 1 {
		t.Errorf("shard 2 ran %d attempts, want 1", attempts[1])
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("report after crash-and-retry differs from single-process run")
	}

	// A shard that fails every attempt must fail the orchestration with
	// the attempt count in the error.
	_, _, err = Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: 1, Dir: t.TempDir(),
		Start: func(spec ShardSpec) (ShardProcess, error) {
			return inProcessShard(func() error { return fmt.Errorf("always down") }), nil
		},
		RetryBackoff: time.Millisecond, MaxAttempts: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("exhausted-retries error = %v, want attempt count", err)
	}
}

// inProcessShard adapts a function into a ShardProcess for tests; Kill is
// a no-op (nothing to signal in-process).
type fnProcess struct{ done chan error }

func inProcessShard(fn func() error) ShardProcess {
	p := fnProcess{done: make(chan error, 1)}
	go func() { p.done <- fn() }()
	return p
}

func (p fnProcess) Wait() error { return <-p.done }
func (p fnProcess) Kill() error { return nil }

// TestOrchestrateSIGKILLResume is the headline determinism-under-crash
// test: a real shard OS process is SIGKILLed mid-run, and the orchestrated
// run that follows — resuming the killed shard's stream, running the rest
// — produces a report byte-identical to the single-process fleet.
func TestOrchestrateSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real shard subprocesses")
	}
	const seed = 23
	const workloads = 48
	const shards = 2
	cfg := helperConfig(seed)

	singleRep, singleRes, err := Run(cfg, workloads, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	start := CommandStart(helperArgv("run", seed, workloads), os.Stderr)

	// Launch shard 1 alone and SIGKILL it once it has flushed a few
	// scenarios but (with 24 sequential scenarios ahead) is still mid-run.
	spec := ShardSpec{Index: 0, Count: shards, Path: filepath.Join(dir, StreamFileName(0, shards))}
	proc, err := start(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(spec.Path); err == nil && bytes.Count(data, []byte("\n")) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			proc.Kill()
			t.Fatal("shard process produced no stream records within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := proc.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	proc.Wait()
	data, err := os.ReadFile(spec.Path)
	if err != nil {
		t.Fatal(err)
	}
	flushed := bytes.Count(data, []byte("\n")) - 1 // minus header
	t.Logf("killed shard 1/%d after %d flushed scenarios", shards, flushed)

	// Orchestrate the whole fleet over the same directory: shard 1 resumes
	// from its flushed prefix, shard 2 runs fresh.
	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: shards, Dir: dir,
		Start: start, StallTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("orchestrated report after SIGKILL differs from single-process run")
	}

	// The resumed stream must have kept the pre-kill prefix, not restarted.
	final, err := os.ReadFile(spec.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(final, data[:bytes.LastIndexByte(data, '\n')+1]) {
		t.Error("resume rewrote the killed shard's flushed prefix instead of extending it")
	}
}

// TestOrchestrateStallKill: a wedged shard (progress, then silence) is
// detected by its stream file no longer growing, killed, and its retry
// resumes past the point it stalled at — still byte-identical to the
// single-process run.
func TestOrchestrateStallKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real shard subprocesses")
	}
	const seed = 29
	const workloads = 6
	cfg := helperConfig(seed)

	singleRep, singleRes, err := Run(cfg, workloads, 0)
	if err != nil {
		t.Fatal(err)
	}

	var attemptMu sync.Mutex
	attempts := 0
	runArgv := helperArgv("run", seed, workloads)
	stallArgv := helperArgv("stall", seed, workloads)
	start := CommandStart(func(spec ShardSpec) []string {
		attemptMu.Lock()
		defer attemptMu.Unlock()
		if spec.Index == 0 {
			attempts++
			if attempts == 1 {
				return stallArgv(spec)
			}
		}
		return runArgv(spec)
	}, os.Stderr)

	var logs []string
	var logMu sync.Mutex
	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: 2, Dir: t.TempDir(),
		Start: start,
		// Generous enough that subprocess startup (slow under -race) never
		// reads as a stall, short enough that the wedged helper — which
		// sleeps for a minute — is reliably killed.
		StallTimeout: 3 * time.Second,
		PollInterval: 100 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(logs, "\n"), "no stream progress") {
		t.Errorf("stall kill never logged:\n%s", strings.Join(logs, "\n"))
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("report after stall-kill-retry differs from single-process run")
	}
}

// TestOrchestrateRejectsBadConfig covers argument validation.
func TestOrchestrateRejectsBadConfig(t *testing.T) {
	cfg := GeneratorConfig{Seed: 1}
	if _, _, err := Orchestrate(OrchestratorConfig{Config: cfg, Workloads: 0, Shards: 1, Dir: t.TempDir()}); err == nil {
		t.Error("zero workloads accepted")
	}
	if _, _, err := Orchestrate(OrchestratorConfig{Config: cfg, Workloads: 4, Shards: 0, Dir: t.TempDir()}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, _, err := Orchestrate(OrchestratorConfig{Config: cfg, Workloads: 4, Shards: 1}); err == nil {
		t.Error("missing stream directory accepted")
	}
	if _, _, err := Orchestrate(OrchestratorConfig{Config: GeneratorConfig{Platforms: []string{"nope"}}, Workloads: 4, Shards: 1, Dir: t.TempDir()}); err == nil {
		t.Error("invalid generator config accepted")
	}
}

// slowShardProcess appends one pre-computed record to its stream at a
// fixed cadence, pinning the file's mtime into the past after every
// append — a shard making steady progress on a filesystem with coarse
// mtime granularity, where consecutive appends leave the mtime unchanged.
type slowShardProcess struct {
	done   chan error
	mu     sync.Mutex
	killed bool
}

func (p *slowShardProcess) Wait() error { return <-p.done }
func (p *slowShardProcess) Kill() error {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
	return nil
}
func (p *slowShardProcess) wasKilled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// TestOrchestrateStallDetectionSurvivesCoarseMtime is the regression test
// for the false-stall kill: stall detection keyed on mtime alone declared
// a steadily progressing shard dead whenever the filesystem's mtime
// granularity was coarser than the stall timeout (every append landed on
// the "same" mtime). Detection must key on file growth; a shard whose
// stream gains bytes is alive no matter what its mtime says.
func TestOrchestrateStallDetectionSurvivesCoarseMtime(t *testing.T) {
	const seed = 41
	const workloads = 4
	cfg := helperConfig(seed)

	singleRep, singleRes, err := Run(cfg, workloads, 0)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runs := gen.RunCount(workloads)
	scens := gen.GenerateRange(0, runs)
	results := make([]Result, runs)
	for i, s := range scens {
		results[i] = RunOne(s)
	}

	// Worst-case coarse mtime: the file's timestamp never moves at all.
	past := time.Now().Add(-time.Hour)
	var proc *slowShardProcess
	start := func(spec ShardSpec) (ShardProcess, error) {
		proc = &slowShardProcess{done: make(chan error, 1)}
		go func() {
			proc.done <- func() error {
				f, err := os.Create(spec.Path)
				if err != nil {
					return err
				}
				defer f.Close()
				sw, err := NewStreamWriter(f, StreamHeader{Config: cfg, Total: runs, Lo: spec.Lo, Hi: spec.Hi})
				if err != nil {
					return err
				}
				os.Chtimes(spec.Path, past, past)
				for _, r := range results[spec.Lo:spec.Hi] {
					// Each record arrives well within the stall timeout, but
					// the whole stream takes longer than it — only byte
					// growth proves liveness.
					time.Sleep(120 * time.Millisecond)
					if err := sw.Append(r); err != nil {
						return err
					}
					os.Chtimes(spec.Path, past, past)
				}
				return nil
			}()
		}()
		return proc, nil
	}

	rep, res, err := Orchestrate(OrchestratorConfig{
		Config: cfg, Workloads: workloads, Shards: 1, Dir: t.TempDir(),
		Start:        start,
		StallTimeout: 300 * time.Millisecond, // < total stream time, > per-record cadence
		PollInterval: 25 * time.Millisecond,
		MaxAttempts:  1, // a false kill must fail the test, not retry past it
	})
	if err != nil {
		t.Fatalf("orchestrate killed a progressing shard: %v", err)
	}
	if proc.wasKilled() {
		t.Fatal("stall detection killed a shard whose stream was growing")
	}
	if !bytes.Equal(reportJSON(t, singleRep, singleRes), reportJSON(t, rep, res)) {
		t.Error("report differs from single-process run")
	}
}
