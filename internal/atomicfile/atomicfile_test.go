package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content %q, want %q", got, "first")
	}

	// A failing emit must leave the previous content untouched and no
	// temp litter behind.
	if err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-")
		return fmt.Errorf("disk on fire")
	}); err == nil {
		t.Fatal("failing emit reported success")
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("failed write clobbered content: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the output file", len(entries))
	}
}

func TestWriteFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mode.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode %v, want 0644", fi.Mode().Perm())
	}
}
