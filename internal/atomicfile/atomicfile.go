// Package atomicfile writes files atomically: content goes to a
// same-directory temp file that is renamed over the destination only after
// a successful write, sync and close. Readers therefore never observe a
// truncated file — a crash mid-write leaves either the old content or an
// orphaned temp file, never a half-written artifact that would poison a
// later merge or resume.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams emit's output to path atomically with mode 0644. The
// temp file lives in path's directory so the final rename never crosses a
// filesystem boundary.
func WriteFile(path string, emit func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = emit(tmp); err != nil {
		return err
	}
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
