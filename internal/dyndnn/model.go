// Package dyndnn implements the paper's primary application-side
// contribution: a dynamic DNN built with incremental training and group
// convolution pruning (Fig 3). One trained model contains G nested
// configurations — the paper's 25%, 50%, 75% and 100% models for G=4 —
// which can be switched at runtime with no retraining and no extra model
// storage, trading accuracy against computation (and therefore inference
// time and energy on a given platform).
package dyndnn

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/nn"
	"github.com/emlrtm/emlrtm/internal/tensor"
)

// Config describes the dynamic CNN architecture.
type Config struct {
	Groups        int   // G: number of increments (4 in the paper)
	Classes       int   // output classes (10)
	ImageSize     int   // square input size; must be divisible by 8
	InputChannels int   // image channels (3)
	StageWidths   []int // output channels per group for each conv stage
	Seed          uint64
}

// DefaultConfig is the paper-scale model: 4 groups, 10 classes, 32×32×3
// input, three conv stages.
func DefaultConfig() Config {
	return Config{
		Groups:        4,
		Classes:       10,
		ImageSize:     32,
		InputChannels: 3,
		StageWidths:   []int{2, 4, 8},
		Seed:          7,
	}
}

// QuickConfig is a reduced model for tests: 16×16 input, narrower stages.
func QuickConfig() Config {
	c := DefaultConfig()
	c.ImageSize = 16
	c.StageWidths = []int{3, 6, 12}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Groups < 1:
		return fmt.Errorf("dyndnn: groups must be >= 1, got %d", c.Groups)
	case c.Classes < 2:
		return fmt.Errorf("dyndnn: classes must be >= 2, got %d", c.Classes)
	case c.ImageSize < 8 || c.ImageSize%8 != 0:
		return fmt.Errorf("dyndnn: image size must be >= 8 and divisible by 8, got %d", c.ImageSize)
	case c.InputChannels < 1:
		return fmt.Errorf("dyndnn: input channels must be >= 1, got %d", c.InputChannels)
	case len(c.StageWidths) != 3:
		return fmt.Errorf("dyndnn: want exactly 3 conv stages, got %d", len(c.StageWidths))
	}
	for i, w := range c.StageWidths {
		if w < 1 {
			return fmt.Errorf("dyndnn: stage %d width %d invalid", i, w)
		}
	}
	return nil
}

// Model is a trained (or trainable) dynamic DNN. The embedded network's
// active-group count selects the runtime configuration.
type Model struct {
	Cfg   Config
	Net   *nn.Network
	convs []*nn.GroupedConv2D
	head  *nn.GroupedDense
}

// New constructs an untrained dynamic DNN.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	s := cfg.ImageSize
	w := cfg.StageWidths
	g := cfg.Groups

	conv1 := nn.NewGroupedConv2D("conv1", nn.SharedInput, g, w[0],
		tensor.ConvGeom{InC: cfg.InputChannels, InH: s, InW: s, Kernel: 3, Stride: 1, Pad: 1}, rng)
	conv2 := nn.NewGroupedConv2D("conv2", nn.Diagonal, g, w[1],
		tensor.ConvGeom{InC: g * w[0], InH: s / 2, InW: s / 2, Kernel: 3, Stride: 1, Pad: 1}, rng)
	conv3 := nn.NewGroupedConv2D("conv3", nn.Diagonal, g, w[2],
		tensor.ConvGeom{InC: g * w[1], InH: s / 4, InW: s / 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
	featPerGroup := w[2] * (s / 8) * (s / 8)
	head := nn.NewGroupedDense("fc", g, featPerGroup, cfg.Classes, rng)

	net := nn.NewNetwork(g,
		conv1, nn.NewReLU("relu1"), nn.NewMaxPool2x2("pool1"),
		conv2, nn.NewReLU("relu2"), nn.NewMaxPool2x2("pool2"),
		conv3, nn.NewReLU("relu3"), nn.NewMaxPool2x2("pool3"),
		nn.NewFlatten("flatten"), head)

	return &Model{
		Cfg:   cfg,
		Net:   net,
		convs: []*nn.GroupedConv2D{conv1, conv2, conv3},
		head:  head,
	}, nil
}

// MustNew is New that panics on config error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Levels returns the number of runtime configurations (== Groups).
func (m *Model) Levels() int { return m.Cfg.Groups }

// SetLevel selects runtime configuration level ∈ [1, Groups]: level k
// enables the first k groups. This is the paper's application knob; it is
// a pointer-bump operation — no weights move, no retraining happens.
func (m *Model) SetLevel(level int) { m.Net.SetActiveGroups(level) }

// Level returns the current configuration level.
func (m *Model) Level() int { return m.Net.ActiveGroups() }

// LevelName renders a level as the paper's percentage naming ("25%" for
// level 1 of 4).
func (m *Model) LevelName(level int) string {
	return fmt.Sprintf("%d%%", 100*level/m.Cfg.Groups)
}

// Forward runs inference on a batch at the current level.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.Net.Forward(x, false)
}

// MACs returns the multiply-accumulate count of one inference at the given
// level. Shared-input stages cost level × per-group MACs (every group reads
// the full input); diagonal stages and the head are also linear in level,
// so total compute scales ∝ level — the paper's "25% model requires the
// minimum computation" accounting.
func (m *Model) MACs(level int) int64 {
	if level < 1 || level > m.Cfg.Groups {
		panic(fmt.Sprintf("dyndnn: level %d out of range [1,%d]", level, m.Cfg.Groups))
	}
	var per int64
	for _, c := range m.convs {
		per += c.MACsPerGroup()
	}
	per += m.head.MACsPerGroup()
	return per * int64(level)
}

// Params returns the scalar parameter count used at the given level.
func (m *Model) Params(level int) int { return m.Net.NumParamsForGroups(level) }

// MemoryBytes returns the parameter storage for the given level at float32.
// The full dynamic model stores MemoryBytes(Groups) once and serves all
// levels from it — contrast with static multi-model deployment, which
// stores one model per operating point (see switchcost.go).
func (m *Model) MemoryBytes(level int) int64 { return int64(m.Params(level)) * 4 }

// Checksum digests the weights of the first k groups; tests and the
// incremental trainer use it to prove earlier groups are untouched.
func (m *Model) Checksum(k int) uint64 { return m.Net.ParamChecksum(k) }
