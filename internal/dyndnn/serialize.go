package dyndnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/emlrtm/emlrtm/internal/nn"
)

// Serialization: a deployable dynamic DNN must move between the training
// host and the embedded target as one artefact. The format is deliberately
// simple and versioned:
//
//	magic "EMLD" | version u32 | config (7×i64) | param count u32 |
//	for each param: name len u32 | name | group i32 | elem count u32 |
//	               float32 values (little endian)
//
// Loading verifies the architecture matches the receiving model and every
// parameter lines up by name, group and size, so a truncated or mismatched
// file fails loudly rather than producing silent garbage.

const (
	magic         = "EMLD"
	formatVersion = 1
)

// Save writes the model's configuration and all weights.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("dyndnn: save: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(formatVersion)); err != nil {
		return fmt.Errorf("dyndnn: save: %w", err)
	}
	cfgInts := []int64{
		int64(m.Cfg.Groups), int64(m.Cfg.Classes), int64(m.Cfg.ImageSize),
		int64(m.Cfg.InputChannels),
		int64(m.Cfg.StageWidths[0]), int64(m.Cfg.StageWidths[1]), int64(m.Cfg.StageWidths[2]),
	}
	for _, v := range cfgInts {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dyndnn: save: %w", err)
		}
	}
	params := m.Net.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("dyndnn: save: %w", err)
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return fmt.Errorf("dyndnn: save %s: %w", p.Name, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, int32(p.Group)); err != nil {
			return fmt.Errorf("dyndnn: save %s: %w", p.Name, err)
		}
		data := p.Value.Data()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(data))); err != nil {
			return fmt.Errorf("dyndnn: save %s: %w", p.Name, err)
		}
		buf := make([]byte, 4*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dyndnn: save %s: %w", p.Name, err)
		}
	}
	return bw.Flush()
}

// Load reads weights saved by Save into m. The stored configuration must
// match m's architecture exactly.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("dyndnn: load: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("dyndnn: load: bad magic %q", head)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("dyndnn: load: %w", err)
	}
	if version != formatVersion {
		return fmt.Errorf("dyndnn: load: unsupported version %d", version)
	}
	var cfgInts [7]int64
	for i := range cfgInts {
		if err := binary.Read(br, binary.LittleEndian, &cfgInts[i]); err != nil {
			return fmt.Errorf("dyndnn: load: %w", err)
		}
	}
	want := []int64{
		int64(m.Cfg.Groups), int64(m.Cfg.Classes), int64(m.Cfg.ImageSize),
		int64(m.Cfg.InputChannels),
		int64(m.Cfg.StageWidths[0]), int64(m.Cfg.StageWidths[1]), int64(m.Cfg.StageWidths[2]),
	}
	for i, v := range want {
		if cfgInts[i] != v {
			return fmt.Errorf("dyndnn: load: architecture mismatch at field %d: file %d, model %d", i, cfgInts[i], v)
		}
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("dyndnn: load: %w", err)
	}
	params := m.Net.Params()
	if int(count) != len(params) {
		return fmt.Errorf("dyndnn: load: %d params in file, model has %d", count, len(params))
	}
	byName := map[string]*nn.Param{}
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := 0; i < int(count); i++ {
		name, err := readString(br)
		if err != nil {
			return fmt.Errorf("dyndnn: load param %d: %w", i, err)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("dyndnn: load: unknown param %q", name)
		}
		var group int32
		if err := binary.Read(br, binary.LittleEndian, &group); err != nil {
			return fmt.Errorf("dyndnn: load %s: %w", name, err)
		}
		if int(group) != p.Group {
			return fmt.Errorf("dyndnn: load %s: group %d, model has %d", name, group, p.Group)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("dyndnn: load %s: %w", name, err)
		}
		if int(n) != p.Value.Len() {
			return fmt.Errorf("dyndnn: load %s: %d elems, model has %d", name, n, p.Value.Len())
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("dyndnn: load %s: %w", name, err)
		}
		data := p.Value.Data()
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
