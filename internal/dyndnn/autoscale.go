package dyndnn

import (
	"fmt"
	"sort"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// Autoscaling: the paper lists *confidence* among the platform-independent
// monitors (Table I, Fig 5). This file turns it into a per-input policy:
// run the smallest configuration first and escalate through the nested
// configurations while the top-1 softmax confidence stays below a
// threshold. Unlike the big/little baseline (two separate models, full
// reload on escalation), escalation here reuses the same weights and adds
// only the incremental groups' compute.
type AutoScaler struct {
	Model *Model
	// Threshold is the confidence below which the scaler escalates.
	Threshold float64
	// StartLevel is the first configuration tried (default 1).
	StartLevel int
	// MaxLevel caps escalation (default: the model's top level).
	MaxLevel int
}

// NewAutoScaler builds a scaler with defaults filled in.
func NewAutoScaler(m *Model, threshold float64) *AutoScaler {
	return &AutoScaler{Model: m, Threshold: threshold, StartLevel: 1, MaxLevel: m.Levels()}
}

// Validate reports configuration errors.
func (a *AutoScaler) Validate() error {
	switch {
	case a.Model == nil:
		return fmt.Errorf("dyndnn: autoscaler without model")
	case a.Threshold < 0 || a.Threshold > 1:
		return fmt.Errorf("dyndnn: confidence threshold %f outside [0,1]", a.Threshold)
	case a.StartLevel < 1 || a.StartLevel > a.Model.Levels():
		return fmt.Errorf("dyndnn: start level %d out of range", a.StartLevel)
	case a.MaxLevel < a.StartLevel || a.MaxLevel > a.Model.Levels():
		return fmt.Errorf("dyndnn: max level %d out of range", a.MaxLevel)
	}
	return nil
}

// Decision records how one input was classified.
type Decision struct {
	Pred       int
	Level      int     // configuration that produced the final answer
	Confidence float64 // its top-1 softmax probability
	MACs       int64   // total compute spent, including escalations
}

// Classify runs the escalation policy on a single image (C,H,W tensor with
// a leading batch dim of 1).
func (a *AutoScaler) Classify(x *tensor.Tensor) (Decision, error) {
	if err := a.Validate(); err != nil {
		return Decision{}, err
	}
	if x.Dim(0) != 1 {
		return Decision{}, fmt.Errorf("dyndnn: Classify expects batch size 1, got %d", x.Dim(0))
	}
	saved := a.Model.Level()
	defer a.Model.SetLevel(saved)

	var d Decision
	for level := a.StartLevel; level <= a.MaxLevel; level++ {
		a.Model.SetLevel(level)
		logits := a.Model.Forward(x)
		probs := logits.Clone().SoftmaxRows()
		row := probs.Row(0)
		best, arg := row[0], 0
		for c, v := range row[1:] {
			if v > best {
				best, arg = v, c+1
			}
		}
		// Escalation re-runs the whole (larger) configuration; in a fused
		// implementation only the new groups would run, but counting the
		// full cost keeps the comparison against big/little conservative.
		d.MACs += a.Model.MACs(level)
		d.Pred = arg
		d.Level = level
		d.Confidence = float64(best)
		if d.Confidence >= a.Threshold {
			break
		}
	}
	return d, nil
}

// AutoScaleReport summarises the policy over a dataset slice.
type AutoScaleReport struct {
	N           int
	Accuracy    float64
	MeanMACs    float64
	MeanLevel   float64
	LevelCounts []int // decisions per final level (index level-1)
}

// Evaluate runs the policy over images x (N,C,H,W) with labels y and
// aggregates accuracy, compute and escalation statistics.
func (a *AutoScaler) Evaluate(x *tensor.Tensor, y []int) (AutoScaleReport, error) {
	if err := a.Validate(); err != nil {
		return AutoScaleReport{}, err
	}
	n := x.Dim(0)
	if n != len(y) {
		return AutoScaleReport{}, fmt.Errorf("dyndnn: %d images, %d labels", n, len(y))
	}
	rep := AutoScaleReport{N: n, LevelCounts: make([]int, a.Model.Levels())}
	correct := 0
	var macs, levels float64
	for i := 0; i < n; i++ {
		d, err := a.Classify(x.Slice4D(i, i+1))
		if err != nil {
			return AutoScaleReport{}, err
		}
		if d.Pred == y[i] {
			correct++
		}
		macs += float64(d.MACs)
		levels += float64(d.Level)
		rep.LevelCounts[d.Level-1]++
	}
	rep.Accuracy = float64(correct) / float64(n)
	rep.MeanMACs = macs / float64(n)
	rep.MeanLevel = levels / float64(n)
	return rep, nil
}

// ThresholdSweep evaluates the policy across thresholds and returns the
// (threshold, accuracy, mean MACs) frontier, sorted by threshold — the
// accuracy/compute trade-off curve the confidence knob exposes.
func (a *AutoScaler) ThresholdSweep(x *tensor.Tensor, y []int, thresholds []float64) ([]AutoScaleReport, error) {
	sorted := append([]float64(nil), thresholds...)
	sort.Float64s(sorted)
	out := make([]AutoScaleReport, 0, len(sorted))
	savedThreshold := a.Threshold
	defer func() { a.Threshold = savedThreshold }()
	for _, th := range sorted {
		a.Threshold = th
		rep, err := a.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
