package dyndnn

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/dataset"
)

func tinyModel(t *testing.T) *Model {
	t.Helper()
	cfg := QuickConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Groups: 0, Classes: 10, ImageSize: 32, InputChannels: 3, StageWidths: []int{8, 16, 32}},
		{Groups: 4, Classes: 1, ImageSize: 32, InputChannels: 3, StageWidths: []int{8, 16, 32}},
		{Groups: 4, Classes: 10, ImageSize: 30, InputChannels: 3, StageWidths: []int{8, 16, 32}},
		{Groups: 4, Classes: 10, ImageSize: 32, InputChannels: 0, StageWidths: []int{8, 16, 32}},
		{Groups: 4, Classes: 10, ImageSize: 32, InputChannels: 3, StageWidths: []int{8, 16}},
		{Groups: 4, Classes: 10, ImageSize: 32, InputChannels: 3, StageWidths: []int{8, 0, 32}},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestLevelNames(t *testing.T) {
	m := tinyModel(t)
	want := []string{"25%", "50%", "75%", "100%"}
	for i, w := range want {
		if got := m.LevelName(i + 1); got != w {
			t.Fatalf("LevelName(%d) = %q, want %q", i+1, got, w)
		}
	}
}

func TestMACsLinearInLevel(t *testing.T) {
	m := tinyModel(t)
	base := m.MACs(1)
	if base <= 0 {
		t.Fatal("MACs(1) must be positive")
	}
	for level := 2; level <= m.Levels(); level++ {
		if got := m.MACs(level); got != base*int64(level) {
			t.Fatalf("MACs(%d) = %d, want %d (linear)", level, got, base*int64(level))
		}
	}
}

func TestParamsMonotoneAndMemoryMatches(t *testing.T) {
	m := tinyModel(t)
	prev := 0
	for level := 1; level <= m.Levels(); level++ {
		p := m.Params(level)
		if p <= prev {
			t.Fatalf("Params(%d) = %d not > Params(%d) = %d", level, p, level-1, prev)
		}
		if m.MemoryBytes(level) != int64(p)*4 {
			t.Fatalf("MemoryBytes(%d) != 4*Params", level)
		}
		prev = p
	}
}

func TestForwardAllLevels(t *testing.T) {
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	x := ds.ValX.Slice4D(0, 4)
	for level := 1; level <= m.Levels(); level++ {
		m.SetLevel(level)
		out := m.Forward(x)
		if out.Dim(0) != 4 || out.Dim(1) != m.Cfg.Classes {
			t.Fatalf("level %d: output shape %v", level, out.Shape())
		}
	}
}

func miniData() dataset.Config {
	c := dataset.QuickConfig()
	c.TrainN = 600
	c.ValN = 300
	// Easier than the experiment-scale noise: this test checks training
	// invariants (freezing, monotone capacity benefit), not the Fig 4(b)
	// accuracy shape, so it uses a setting where learning is fast and
	// reliable under a 2-epoch budget.
	c.Noise = 0.5
	return c
}

func TestTrainIncrementalInvariantsAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	tc := QuickTrainConfig()
	tc.EpochsPerStep = 3
	tc.LR = 0.05

	pre1 := m.Checksum(0) // trivially constant, sanity
	rep, err := m.TrainIncremental(ds, tc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Checksum(0) != pre1 {
		t.Fatal("checksum(0) must be the FNV basis constant")
	}
	if len(rep.Steps) != m.Levels() {
		t.Fatalf("got %d step reports, want %d", len(rep.Steps), m.Levels())
	}

	// All configurations must beat chance after training.
	chance := 1.0 / float64(m.Cfg.Classes)
	results := m.EvaluateAll(ds)
	for _, r := range results {
		if r.Accuracy < chance*1.5 {
			t.Fatalf("%s model accuracy %.3f barely above chance", r.LevelName, r.Accuracy)
		}
	}
	// Capacity helps: the full model must outperform the smallest.
	if results[len(results)-1].Accuracy <= results[0].Accuracy {
		t.Fatalf("100%% model (%.3f) not better than 25%% model (%.3f)",
			results[len(results)-1].Accuracy, results[0].Accuracy)
	}
	// Confidence must be a valid probability.
	for _, r := range results {
		if r.Confidence < chance || r.Confidence > 1 {
			t.Fatalf("%s confidence %.3f out of range", r.LevelName, r.Confidence)
		}
	}
	// Per-class accuracy must cover all classes.
	for _, r := range results {
		if len(r.PerClass) != m.Cfg.Classes {
			t.Fatalf("per-class length %d", len(r.PerClass))
		}
	}
}

func TestTrainRejectsMismatchedDataset(t *testing.T) {
	m := tinyModel(t) // 16×16 input
	big := dataset.DefaultConfig()
	big.TrainN, big.ValN = 20, 20 // keep generation cheap
	ds := dataset.MustGenerate(big)
	if _, err := m.TrainIncremental(ds, QuickTrainConfig()); err == nil {
		t.Fatal("expected error for 32x32 data into 16x16 model")
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	tc := QuickTrainConfig()
	tc.EpochsPerStep = 0
	if _, err := m.TrainIncremental(ds, tc); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}

func TestSwitchCostDynamicVsStatic(t *testing.T) {
	m := tinyModel(t)
	sc := DefaultSwitchCostModel()
	dyn := sc.DynamicSwitch(1, 4)
	static := sc.StaticSwitch(m.MemoryBytes(4))
	if dyn.BytesMoved != 0 {
		t.Fatal("dynamic switch must move zero bytes")
	}
	if dyn.LatencyS >= static.LatencyS {
		t.Fatalf("dynamic switch latency %.6fs not below static %.6fs", dyn.LatencyS, static.LatencyS)
	}
	if static.EnergyJ <= dyn.EnergyJ {
		t.Fatal("static switch must cost more energy")
	}
	if same := sc.DynamicSwitch(2, 2); same.LatencyS != 0 || same.EnergyJ != 0 {
		t.Fatal("no-op switch must be free")
	}
}

func TestCompareStorage(t *testing.T) {
	m := tinyModel(t)
	c := CompareStorage(m)
	if c.DynamicBytes != m.MemoryBytes(m.Levels()) {
		t.Fatal("dynamic storage must equal the full model footprint")
	}
	if c.StaticTotalBytes <= c.DynamicBytes {
		t.Fatal("static model set must need more storage than one dynamic model")
	}
	if c.Ratio <= 1 {
		t.Fatalf("ratio %.2f must exceed 1", c.Ratio)
	}
	if c.String() == "" {
		t.Fatal("String must render")
	}
}

func TestSetLevelDoesNotTouchWeights(t *testing.T) {
	m := tinyModel(t)
	before := m.Checksum(m.Levels())
	for _, l := range []int{1, 3, 2, 4, 1} {
		m.SetLevel(l)
	}
	if m.Checksum(m.Levels()) != before {
		t.Fatal("SetLevel must not modify weights")
	}
}
