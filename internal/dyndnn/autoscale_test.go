package dyndnn

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/dataset"
)

// trainedTiny returns a briefly trained quick model with its dataset (one
// per test run; training takes ~1s at this scale).
func trainedTiny(t *testing.T) (*Model, *dataset.Dataset) {
	t.Helper()
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	tc := QuickTrainConfig()
	tc.EpochsPerStep = 3
	tc.LR = 0.05
	if _, err := m.TrainIncremental(ds, tc); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestAutoScalerValidate(t *testing.T) {
	m := tinyModel(t)
	bad := []*AutoScaler{
		{Model: nil, Threshold: 0.5, StartLevel: 1, MaxLevel: 1},
		{Model: m, Threshold: -0.1, StartLevel: 1, MaxLevel: 4},
		{Model: m, Threshold: 1.5, StartLevel: 1, MaxLevel: 4},
		{Model: m, Threshold: 0.5, StartLevel: 0, MaxLevel: 4},
		{Model: m, Threshold: 0.5, StartLevel: 3, MaxLevel: 2},
		{Model: m, Threshold: 0.5, StartLevel: 1, MaxLevel: 9},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Fatalf("scaler %d should be rejected", i)
		}
	}
	if NewAutoScaler(m, 0.8).Validate() != nil {
		t.Fatal("default scaler must validate")
	}
}

func TestAutoScalerZeroThresholdNeverEscalates(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, ds := trainedTiny(t)
	a := NewAutoScaler(m, 0) // any confidence suffices
	rep, err := a.Evaluate(ds.ValX.Slice4D(0, 40), ds.ValY[:40])
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanLevel != 1 {
		t.Fatalf("mean level %.2f, want 1 (never escalate)", rep.MeanLevel)
	}
	if rep.MeanMACs != float64(m.MACs(1)) {
		t.Fatalf("mean MACs %.0f, want %d", rep.MeanMACs, m.MACs(1))
	}
}

func TestAutoScalerImpossibleThresholdAlwaysEscalates(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, ds := trainedTiny(t)
	a := NewAutoScaler(m, 1.0) // confidence 1.0 effectively unreachable
	rep, err := a.Evaluate(ds.ValX.Slice4D(0, 20), ds.ValY[:20])
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanLevel != float64(m.Levels()) {
		t.Fatalf("mean level %.2f, want %d (always run to the top)", rep.MeanLevel, m.Levels())
	}
}

func TestAutoScalerTradeoffMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, ds := trainedTiny(t)
	a := NewAutoScaler(m, 0.5)
	x := ds.ValX.Slice4D(0, 60)
	y := ds.ValY[:60]
	reps, err := a.ThresholdSweep(x, y, []float64{0.0, 0.6, 0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Compute must be non-decreasing in the threshold.
	for i := 1; i < len(reps); i++ {
		if reps[i].MeanMACs < reps[i-1].MeanMACs-1e-9 {
			t.Fatalf("mean MACs decreased from %.0f to %.0f as threshold rose",
				reps[i-1].MeanMACs, reps[i].MeanMACs)
		}
	}
	// Every report is internally consistent.
	for _, r := range reps {
		total := 0
		for _, c := range r.LevelCounts {
			total += c
		}
		if total != r.N {
			t.Fatalf("level counts %v do not sum to %d", r.LevelCounts, r.N)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy %f", r.Accuracy)
		}
	}
	// The unrestricted top level should be at least as accurate as
	// never-escalate (it subsumes its capacity).
	if reps[len(reps)-1].Accuracy+0.05 < reps[0].Accuracy {
		t.Fatalf("always-escalate accuracy %.2f well below never-escalate %.2f",
			reps[len(reps)-1].Accuracy, reps[0].Accuracy)
	}
}

func TestAutoScalerRestoresModelLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, ds := trainedTiny(t)
	m.SetLevel(3)
	a := NewAutoScaler(m, 0.9)
	if _, err := a.Classify(ds.ValX.Slice4D(0, 1)); err != nil {
		t.Fatal(err)
	}
	if m.Level() != 3 {
		t.Fatalf("Classify left level %d, want 3 restored", m.Level())
	}
}

func TestAutoScalerRejectsBatch(t *testing.T) {
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	a := NewAutoScaler(m, 0.5)
	if _, err := a.Classify(ds.ValX.Slice4D(0, 2)); err == nil {
		t.Fatal("batch of 2 accepted by single-input Classify")
	}
}
