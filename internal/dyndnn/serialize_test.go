package dyndnn

import (
	"bytes"
	"testing"

	"github.com/emlrtm/emlrtm/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := tinyModel(t)
	// Perturb some weights so the round trip is non-trivial.
	for i, p := range m.Net.Params() {
		p.Value.Data()[0] = float32(i) * 0.25
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sum := m.Checksum(m.Levels())

	other := tinyModel(t)
	if other.Checksum(other.Levels()) == sum {
		t.Fatal("precondition: models should differ before Load")
	}
	if err := other.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if other.Checksum(other.Levels()) != sum {
		t.Fatal("weights differ after round trip")
	}
}

func TestLoadedModelPredictsIdentically(t *testing.T) {
	m := tinyModel(t)
	ds := dataset.MustGenerate(miniData())
	x := ds.ValX.Slice4D(0, 4)
	want := m.Forward(x).Clone()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyModel(t)
	if err := other.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := other.Forward(x); !got.AllClose(want, 0) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := tinyModel(t)
	if err := m.Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := m.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	bigger := DefaultConfig() // 32×32 vs the quick 16×16
	other := MustNew(bigger)
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	other := tinyModel(t)
	if err := other.Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}
