package dyndnn

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/dataset"
	"github.com/emlrtm/emlrtm/internal/nn"
	"github.com/emlrtm/emlrtm/internal/tensor"
)

// TrainConfig controls the incremental trainer.
type TrainConfig struct {
	EpochsPerStep int // training epochs for each incremental step
	BatchSize     int
	LR            float32
	LRDecay       float32 // multiplicative decay applied per epoch
	Momentum      float32
	WeightDecay   float32
	// Retries bounds divergence recovery: when a step ends with the new
	// configuration performing worse than the previous one (or barely
	// above chance for step 1), the group is restored to its initial
	// weights and retrained at LR/3. Narrow towers on hard data
	// occasionally diverge under momentum SGD; retrying at a lower rate
	// recovers them deterministically.
	Retries int
	Seed    uint64
	Logf    func(format string, args ...any) // optional progress sink
}

// DefaultTrainConfig returns the paper-scale training recipe.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		EpochsPerStep: 6,
		BatchSize:     32,
		LR:            0.03,
		LRDecay:       0.8,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		Retries:       3,
		Seed:          3,
	}
}

// QuickTrainConfig is a fast recipe for tests.
func QuickTrainConfig() TrainConfig {
	c := DefaultTrainConfig()
	c.EpochsPerStep = 2
	return c
}

// StepReport records the outcome of one incremental step (Fig 3(b)).
type StepReport struct {
	Step        int     // 1-based: step i trains group i-1
	FinalLoss   float64 // training loss at end of the step
	ValAccuracy float64 // validation top-1 with the first `Step` groups active
}

// TrainReport summarises an incremental training run.
type TrainReport struct {
	Steps []StepReport
}

// TrainIncremental runs the paper's incremental training procedure:
//
//	Step i: enable groups 1..i, freeze groups 1..i-1, ignore groups i+1..G,
//	        train group i on the classification loss.
//
// After step i completes, the weights of groups < i are verified
// bit-identical to their pre-step values (the property that makes runtime
// pruning free); a violation panics because it would invalidate every
// downstream experiment.
func (m *Model) TrainIncremental(ds *dataset.Dataset, tc TrainConfig) (*TrainReport, error) {
	if tc.EpochsPerStep < 1 || tc.BatchSize < 1 {
		return nil, fmt.Errorf("dyndnn: invalid train config %+v", tc)
	}
	if ds.Cfg.Size != m.Cfg.ImageSize || ds.Cfg.Channels != m.Cfg.InputChannels {
		return nil, fmt.Errorf("dyndnn: dataset %dx%dx%d does not match model input %dx%dx%d",
			ds.Cfg.Channels, ds.Cfg.Size, ds.Cfg.Size,
			m.Cfg.InputChannels, m.Cfg.ImageSize, m.Cfg.ImageSize)
	}
	logf := tc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := tensor.NewRNG(tc.Seed)
	report := &TrainReport{}

	prevAcc := 0.0
	for step := 1; step <= m.Cfg.Groups; step++ {
		m.Net.SetActiveGroups(step)
		m.Net.FreezeGroupsBelow(step - 1)
		pre := m.Net.ParamChecksum(step - 1)

		// Snapshot the step's trainable group so a diverged attempt can be
		// rolled back and retried at a lower learning rate.
		var snapVals []*tensor.Tensor
		for _, p := range m.Net.Params() {
			if p.Group == step-1 {
				snapVals = append(snapVals, p.Value.Clone())
			}
		}
		restore := func() {
			i := 0
			for _, p := range m.Net.Params() {
				if p.Group == step-1 {
					p.Value.CopyFrom(snapVals[i])
					p.ZeroGrad()
					i++
				}
			}
		}

		lr := tc.LR
		var lastLoss, acc float64
		for attempt := 0; ; attempt++ {
			opt := nn.NewSGD(lr, tc.Momentum, tc.WeightDecay)
			for epoch := 0; epoch < tc.EpochsPerStep; epoch++ {
				var epochLoss float64
				batches := dataset.Batches(rng, ds.TrainX.Dim(0), tc.BatchSize)
				for _, idx := range batches {
					bx, by := dataset.Gather(ds.TrainX, ds.TrainY, idx)
					logits := m.Net.Forward(bx, true)
					loss, dl := nn.SoftmaxCrossEntropy(logits, by)
					epochLoss += loss * float64(len(idx))
					m.Net.Backward(dl)
					opt.Step(m.Net.Params())
				}
				lastLoss = epochLoss / float64(ds.TrainX.Dim(0))
				opt.LR *= tc.LRDecay
				logf("dyndnn: step %d epoch %d loss %.4f (lr %.4f)", step, epoch+1, lastLoss, lr)
			}
			acc = m.EvaluateLevel(ds, step).Accuracy
			if m.stepHealthy(step, acc, prevAcc) || attempt >= tc.Retries {
				if attempt > 0 {
					logf("dyndnn: step %d recovered on attempt %d (lr %.4f, acc %.1f%%)",
						step, attempt+1, lr, 100*acc)
				}
				break
			}
			logf("dyndnn: step %d attempt %d diverged (acc %.1f%%, prev %.1f%%); retrying at lr %.4f",
				step, attempt+1, 100*acc, 100*prevAcc, lr/3)
			restore()
			lr /= 3
		}

		if m.Net.ParamChecksum(step-1) != pre {
			panic(fmt.Sprintf("dyndnn: incremental step %d modified frozen groups — invariant broken", step))
		}

		logf("dyndnn: step %d done — %s model val accuracy %.1f%%", step, m.LevelName(step), 100*acc)
		report.Steps = append(report.Steps, StepReport{Step: step, FinalLoss: lastLoss, ValAccuracy: acc})
		prevAcc = acc
	}
	m.Net.FreezeAll()
	return report, nil
}

// stepHealthy decides whether an incremental step's outcome is acceptable:
// step 1 must clear 1.5× chance; later steps must not fall more than two
// points below the previous configuration (added capacity trained on the
// residual should never hurt).
func (m *Model) stepHealthy(step int, acc, prevAcc float64) bool {
	if step == 1 {
		return acc >= 1.5/float64(m.Cfg.Classes)
	}
	return acc >= prevAcc-0.02
}

// EvalResult holds the validation metrics of one configuration level —
// the platform-independent metrics of the paper's Table I and Fig 4(b).
type EvalResult struct {
	Level       int
	LevelName   string
	Accuracy    float64   // top-1 over the validation set
	PerClass    []float64 // top-1 per true class (error bars of Fig 4(b))
	ClassStd    float64   // std-dev across classes
	Confidence  float64   // mean top-1 softmax probability
	MACs        int64
	Params      int
	MemoryBytes int64
}

// EvaluateLevel computes validation metrics at the given level.
func (m *Model) EvaluateLevel(ds *dataset.Dataset, level int) EvalResult {
	saved := m.Level()
	defer m.SetLevel(saved)
	m.SetLevel(level)

	n := ds.ValX.Dim(0)
	const chunk = 256
	correct := 0
	perClassCorrect := make([]int, m.Cfg.Classes)
	perClassTotal := make([]int, m.Cfg.Classes)
	var confSum float64
	for i := 0; i < n; i += chunk {
		j := i + chunk
		if j > n {
			j = n
		}
		bx := ds.ValX.Slice4D(i, j)
		logits := m.Net.Forward(bx, false)
		pred := logits.ArgMaxRow()
		for bi, p := range pred {
			y := ds.ValY[i+bi]
			perClassTotal[y]++
			if p == y {
				correct++
				perClassCorrect[y]++
			}
		}
		confSum += nn.MeanConfidence(logits) * float64(j-i)
	}
	perClass := make([]float64, m.Cfg.Classes)
	for c := range perClass {
		if perClassTotal[c] == 0 {
			perClass[c] = math.NaN()
			continue
		}
		perClass[c] = float64(perClassCorrect[c]) / float64(perClassTotal[c])
	}
	_, std := nn.MeanStd(perClass)
	return EvalResult{
		Level:       level,
		LevelName:   m.LevelName(level),
		Accuracy:    float64(correct) / float64(n),
		PerClass:    perClass,
		ClassStd:    std,
		Confidence:  confSum / float64(n),
		MACs:        m.MACs(level),
		Params:      m.Params(level),
		MemoryBytes: m.MemoryBytes(level),
	}
}

// EvaluateAll evaluates every configuration level (Fig 4(b)).
func (m *Model) EvaluateAll(ds *dataset.Dataset) []EvalResult {
	out := make([]EvalResult, 0, m.Cfg.Groups)
	for level := 1; level <= m.Cfg.Groups; level++ {
		out = append(out, m.EvaluateLevel(ds, level))
	}
	return out
}
