package dyndnn

import "fmt"

// SwitchCostModel quantifies the cost of changing operating point at
// runtime, reproducing the argument the paper takes from Park et al. [20]:
// deploying multiple static DNNs to cover all hardware settings incurs
// significant memory storage overhead, and switching between them at
// runtime causes significant delay and energy; a dynamic DNN switches
// within one memory footprint.
type SwitchCostModel struct {
	// MemoryBandwidth is the sustained model-load bandwidth in bytes/s
	// (flash/eMMC → DRAM on an embedded platform).
	MemoryBandwidth float64
	// ReinitLatency is the fixed runtime/graph re-initialisation time in
	// seconds charged whenever a different model binary is activated.
	ReinitLatency float64
	// LoadPower is the platform power draw in watts while loading.
	LoadPower float64
}

// DefaultSwitchCostModel uses representative embedded numbers: ~200 MB/s
// eMMC read bandwidth, 50 ms framework re-init, 1.5 W active load power.
func DefaultSwitchCostModel() SwitchCostModel {
	return SwitchCostModel{
		MemoryBandwidth: 200e6,
		ReinitLatency:   0.050,
		LoadPower:       1.5,
	}
}

// SwitchCost is the cost of one model-configuration change.
type SwitchCost struct {
	BytesMoved int64
	LatencyS   float64
	EnergyJ    float64
}

// DynamicSwitch returns the cost of switching the dynamic DNN between two
// levels: no parameters move (all levels live in one footprint); the only
// cost is updating the active-group setting, modelled as a fixed few
// microseconds of control work.
func (s SwitchCostModel) DynamicSwitch(from, to int) SwitchCost {
	if from == to {
		return SwitchCost{}
	}
	const controlLatency = 5e-6
	return SwitchCost{
		BytesMoved: 0,
		LatencyS:   controlLatency,
		EnergyJ:    controlLatency * s.LoadPower,
	}
}

// StaticSwitch returns the cost of swapping in a different static model of
// the given size: the new model's parameters are loaded from storage and
// the runtime re-initialises.
func (s SwitchCostModel) StaticSwitch(newModelBytes int64) SwitchCost {
	lat := float64(newModelBytes)/s.MemoryBandwidth + s.ReinitLatency
	return SwitchCost{
		BytesMoved: newModelBytes,
		LatencyS:   lat,
		EnergyJ:    lat * s.LoadPower,
	}
}

// StorageComparison contrasts the storage of one dynamic model against a
// set of static models covering the same operating points.
type StorageComparison struct {
	DynamicBytes     int64 // one model serving all levels
	StaticTotalBytes int64 // Σ standalone model per level
	Ratio            float64
}

// CompareStorage computes the storage comparison for model m, assuming the
// static alternative deploys one standalone model per configuration level
// (each sized like the corresponding nested configuration, which is
// favourable to the static baseline — NetAdapt-style models are typically
// not nested and would be at least this large).
func CompareStorage(m *Model) StorageComparison {
	dyn := m.MemoryBytes(m.Cfg.Groups)
	var static int64
	for level := 1; level <= m.Cfg.Groups; level++ {
		static += m.MemoryBytes(level)
	}
	r := 0.0
	if dyn > 0 {
		r = float64(static) / float64(dyn)
	}
	return StorageComparison{DynamicBytes: dyn, StaticTotalBytes: static, Ratio: r}
}

// String renders the comparison for reports.
func (c StorageComparison) String() string {
	return fmt.Sprintf("dynamic %.1f KiB vs static-set %.1f KiB (%.2fx)",
		float64(c.DynamicBytes)/1024, float64(c.StaticTotalBytes)/1024, c.Ratio)
}
