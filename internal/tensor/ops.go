package tensor

import (
	"fmt"
	"math"
)

// Add computes t += o element-wise. Shapes must match.
func (t *Tensor) Add(o *Tensor) *Tensor {
	mustSameLen(t, o, "Add")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// Sub computes t -= o element-wise. Shapes must match.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	mustSameLen(t, o, "Sub")
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulElem computes t *= o element-wise (Hadamard product).
func (t *Tensor) MulElem(o *Tensor) *Tensor {
	mustSameLen(t, o, "MulElem")
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaled computes t += s*o, the AXPY primitive used by SGD.
func (t *Tensor) AddScaled(s float32, o *Tensor) *Tensor {
	mustSameLen(t, o, "AddScaled")
	for i := range t.data {
		t.data[i] += s * o.data[i]
	}
	return t
}

// Sum returns the sum of all elements in float64 for accumulation accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element and its flat index.
func (t *Tensor) Max() (float32, int) {
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// AbsMax returns the maximum absolute element value.
func (t *Tensor) AbsMax() float32 {
	var best float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > best {
			best = a
		}
	}
	return best
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns, for each row of a rank-2 tensor, the column index of
// its maximum element. This is the top-1 decision used for accuracy.
func (t *Tensor) ArgMaxRow() []int {
	if t.Rank() != 2 {
		panic("tensor: ArgMaxRow requires rank-2 tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		base := r * cols
		best, arg := t.data[base], 0
		for c := 1; c < cols; c++ {
			if v := t.data[base+c]; v > best {
				best, arg = v, c
			}
		}
		out[r] = arg
	}
	return out
}

// MatMul returns a new tensor c = a·b for rank-2 tensors a (m×k) and
// b (k×n). The inner loops are ordered i-k-j so the innermost traversal is
// contiguous in both b and c, which matters for the im2col-lowered
// convolutions that dominate training time.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d != %d", k, k2))
	}
	c := New(m, n)
	matMulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatMulInto computes c = a·b, writing into a pre-allocated c (m×n). It
// avoids per-call allocation in training inner loops.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || c.shape[0] != m || c.shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	for i := range c.data {
		c.data[i] = 0
	}
	matMulInto(c.data, a.data, b.data, m, k, n)
}

func matMulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b for a (k×m) and b (k×n): result m×n. Used for
// weight gradients without materialising the transpose.
func MatMulATB(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB inner dimension mismatch %d != %d", k, k2))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulABT returns a·bᵀ for a (m×k) and b (n×k): result m×n. Used for
// input gradients without materialising the transpose.
func MatMulABT(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT inner dimension mismatch %d != %d", k, k2))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// Transpose returns a new rank-2 tensor that is the transpose of t.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a rank-2
// tensor in place and returns t.
func (t *Tensor) SoftmaxRows() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SoftmaxRows requires rank-2 tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[i] = e
			sum += float64(e)
		}
		inv := float32(1.0 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
	return t
}

func mustSameLen(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s length mismatch %v vs %v", op, a.shape, b.shape))
	}
}
