package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
// All fields use the same value for height and width (square kernels), which
// is all the reproduction's CNN requires.
type ConvGeom struct {
	InC, InH, InW int // input channels / spatial size
	Kernel        int // square kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate reports an error for geometries that would produce empty outputs
// or are otherwise malformed.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has invalid kernel/stride/pad %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col lowers one image (C,H,W laid out contiguously in img) into a matrix
// with one row per output position and one column per (channel, ky, kx)
// kernel tap: shape (OutH*OutW, C*K*K). Out-of-bounds taps (padding) read as
// zero. The result is written into cols, which must be pre-sized; it is
// returned for convenience.
//
// This lowering turns convolution into a single MatMul, the standard
// CPU-friendly strategy (and the one embedded inference runtimes such as
// CMSIS-NN and TFLite Micro use), so the FLOP counts the perf model derives
// from it match what a real deployment would execute.
func Im2Col(img []float32, g ConvGeom, cols *Tensor) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	k := g.Kernel
	wantRows, wantCols := outH*outW, g.InC*k*k
	if cols.Rank() != 2 || cols.shape[0] != wantRows || cols.shape[1] != wantCols {
		panic(fmt.Sprintf("tensor: Im2Col target shape %v, want [%d %d]", cols.shape, wantRows, wantCols))
	}
	cd := cols.data
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			rowBase := (oy*outW + ox) * wantCols
			iy0 := oy*g.Stride - g.Pad
			ix0 := ox*g.Stride - g.Pad
			col := 0
			for c := 0; c < g.InC; c++ {
				chBase := c * g.InH * g.InW
				for ky := 0; ky < k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < k; kx++ {
							cd[rowBase+col] = 0
							col++
						}
						continue
					}
					rowOff := chBase + iy*g.InW
					for kx := 0; kx < k; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							cd[rowBase+col] = 0
						} else {
							cd[rowBase+col] = img[rowOff+ix]
						}
						col++
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatters the column-matrix gradient back into an image gradient,
// accumulating overlapping windows. It is the adjoint of Im2Col: dImg must
// be pre-zeroed by the caller if accumulation from zero is wanted.
func Col2Im(cols *Tensor, g ConvGeom, dImg []float32) {
	outH, outW := g.OutH(), g.OutW()
	k := g.Kernel
	wantCols := g.InC * k * k
	if cols.shape[0] != outH*outW || cols.shape[1] != wantCols {
		panic(fmt.Sprintf("tensor: Col2Im source shape %v, want [%d %d]", cols.shape, outH*outW, wantCols))
	}
	cd := cols.data
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			rowBase := (oy*outW + ox) * wantCols
			iy0 := oy*g.Stride - g.Pad
			ix0 := ox*g.Stride - g.Pad
			col := 0
			for c := 0; c < g.InC; c++ {
				chBase := c * g.InH * g.InW
				for ky := 0; ky < k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						col += k
						continue
					}
					rowOff := chBase + iy*g.InW
					for kx := 0; kx < k; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							dImg[rowOff+ix] += cd[rowBase+col]
						}
						col++
					}
				}
			}
		}
	}
}

// MaxPool2x2 applies 2×2 max pooling with stride 2 to a single (C,H,W)
// image, writing the pooled output and the flat argmax index of each window
// (relative to the image) for use in the backward pass. H and W must be
// even. Returns the output spatial size.
func MaxPool2x2(img []float32, c, h, w int, out []float32, argmax []int) (outH, outW int) {
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: MaxPool2x2 requires even spatial dims, got %dx%d", h, w))
	}
	outH, outW = h/2, w/2
	for ch := 0; ch < c; ch++ {
		inBase := ch * h * w
		outBase := ch * outH * outW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				iy, ix := oy*2, ox*2
				i00 := inBase + iy*w + ix
				i01 := i00 + 1
				i10 := i00 + w
				i11 := i10 + 1
				best, arg := img[i00], i00
				if img[i01] > best {
					best, arg = img[i01], i01
				}
				if img[i10] > best {
					best, arg = img[i10], i10
				}
				if img[i11] > best {
					best, arg = img[i11], i11
				}
				o := outBase + oy*outW + ox
				out[o] = best
				argmax[o] = arg
			}
		}
	}
	return outH, outW
}

// GlobalAvgPool reduces each channel of a (C,H,W) image to its mean,
// writing C values into out.
func GlobalAvgPool(img []float32, c, h, w int, out []float32) {
	hw := h * w
	inv := 1.0 / float32(hw)
	for ch := 0; ch < c; ch++ {
		base := ch * hw
		var s float32
		for i := 0; i < hw; i++ {
			s += img[base+i]
		}
		out[ch] = s * inv
	}
}
