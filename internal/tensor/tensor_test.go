package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", x.Rank())
	}
	if x.Len() != 24 {
		t.Fatalf("len = %d, want 24", x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("dims = %v, want [2 3 4]", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Set(9, 1, 1)
	if d[3] != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major layout: (2,1) is offset 2*4+1 = 9.
	if x.Data()[9] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshapeIsView(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Fatal("Reshape must alias the same data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := Full(1, 2, 2)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestAddSubInverse(t *testing.T) {
	r := NewRNG(1)
	x := New(4, 5)
	x.FillNormal(r, 0, 1)
	orig := x.Clone()
	o := New(4, 5)
	o.FillNormal(r, 0, 1)
	x.Add(o).Sub(o)
	if !x.AllClose(orig, 1e-5) {
		t.Fatal("x+o-o should equal x")
	}
}

func TestScaleAddScaled(t *testing.T) {
	x := Full(2, 3)
	x.Scale(0.5)
	for _, v := range x.Data() {
		if v != 1 {
			t.Fatalf("Scale: got %v, want 1", v)
		}
	}
	y := Full(1, 3)
	x.AddScaled(3, y)
	for _, v := range x.Data() {
		if v != 4 {
			t.Fatalf("AddScaled: got %v, want 4", v)
		}
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(2)
	a := New(4, 4)
	a.FillNormal(r, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	if !c.AllClose(a, 1e-6) {
		t.Fatal("A·I must equal A")
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	r := NewRNG(3)
	a := New(5, 7)
	b := New(7, 3)
	a.FillNormal(r, 0, 1)
	b.FillNormal(r, 0, 1)
	want := MatMul(a, b)
	got := Full(99, 5, 3) // pre-filled garbage must be overwritten
	MatMulInto(got, a, b)
	if !got.AllClose(want, 1e-5) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}

func TestMatMulATBMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(4)
	a := New(6, 4)
	b := New(6, 5)
	a.FillNormal(r, 0, 1)
	b.FillNormal(r, 0, 1)
	want := MatMul(a.Transpose(), b)
	got := MatMulATB(a, b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulATB disagrees with explicit transpose")
	}
}

func TestMatMulABTMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(5)
	a := New(6, 4)
	b := New(5, 4)
	a.FillNormal(r, 0, 1)
	b.FillNormal(r, 0, 1)
	want := MatMul(a, b.Transpose())
	got := MatMulABT(a, b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulABT disagrees with explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(6)
	a := New(3, 7)
	a.FillNormal(r, 0, 1)
	if !a.Transpose().Transpose().AllClose(a, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	r := NewRNG(7)
	x := New(8, 10)
	x.FillNormal(r, 0, 5)
	x.SoftmaxRows()
	for i := 0; i < 8; i++ {
		var s float64
		for j := 0; j < 10; j++ {
			v := x.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v, want 1", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	x.SoftmaxRows()
	for _, v := range x.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{0, 5, 1, 9, 2, 3}, 2, 3)
	got := x.ArgMaxRow()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRow = %v, want [1 0]", got)
	}
}

func TestSumMeanMax(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, 4}, 2, 2)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", x.Mean())
	}
	v, i := x.Max()
	if v != 4 || i != 3 {
		t.Fatalf("Max = (%v,%d), want (4,3)", v, i)
	}
	if x.AbsMax() != 4 {
		t.Fatalf("AbsMax = %v, want 4", x.AbsMax())
	}
}

func TestSlice4D(t *testing.T) {
	x := New(4, 2, 3, 3)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	y := x.Slice4D(1, 3)
	if y.Dim(0) != 2 {
		t.Fatalf("sliced batch = %d, want 2", y.Dim(0))
	}
	if y.At(0, 0, 0, 0) != x.At(1, 0, 0, 0) {
		t.Fatal("Slice4D must start at batch b0")
	}
	// Copies, not views.
	y.Set(-1, 0, 0, 0, 0)
	if x.At(1, 0, 0, 0) == -1 {
		t.Fatal("Slice4D must copy")
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4)
		a, b, c := New(m, k), New(k, n), New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		c.FillNormal(r, 0, 1)
		left := MatMul(a, b.Clone().Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling commutes with matmul: (sA)B = s(AB).
func TestMatMulScaleCommutes(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 2+r.Intn(3), 2+r.Intn(3), 2+r.Intn(3)
		s := float32(r.Float64()*4 - 2)
		a, b := New(m, k), New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		left := MatMul(a.Clone().Scale(s), b)
		right := MatMul(a, b).Scale(s)
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 2+r.Intn(3), 2+r.Intn(3), 2+r.Intn(3)
		a, b := New(m, k), New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
