package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64 core)
// used for weight initialisation and synthetic data. It is intentionally
// independent of math/rand so that datasets and initialisations are stable
// across Go releases, keeping experiment outputs reproducible bit-for-bit.
type RNG struct {
	state uint64
	// cached second normal variate from Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped to a
// fixed non-zero constant so the zero value still produces a usable stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a pseudo-random permutation of [0,n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillUniform fills t with uniform values in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float32()
	}
}

// FillNormal fills t with normal values of the given mean and standard
// deviation.
func (t *Tensor) FillNormal(r *RNG, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*float32(r.NormFloat64())
	}
}

// KaimingInit fills t with He-normal initialisation for a layer with the
// given fan-in, the standard choice for ReLU networks like the paper's CNN.
func (t *Tensor) KaimingInit(r *RNG, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	t.FillNormal(r, 0, std)
}
