// Package tensor implements a minimal dense float32 tensor library used by
// the neural-network substrate. Tensors are row-major and mutable; all
// operations are implemented with the standard library only.
//
// The package provides exactly what the dynamic-DNN reproduction needs:
// shaped storage, element access, BLAS-like matmul, im2col/col2im for
// convolution lowering, and a deterministic PRNG for reproducible
// initialisation and datasets.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is not usable;
// construct tensors with New, Zeros, FromSlice or Full.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is non-positive, mirroring make's behaviour for negative sizes.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// Zeros is an alias of New, provided for readability at call sites that
// emphasise the initial value rather than allocation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly the number of elements implied
// by the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice is shared;
// callers must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Index converts multi-dimensional indices to a flat offset. It panics on
// rank mismatch or out-of-range indices.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", ix, i, t.shape[i]))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Index(idx...)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Index(idx...)] = v }

// Reshape returns a view of the same data with a new shape. The element
// count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return FromSlice(t.data, shape...)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d != %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether all elements of t and o are within tol of each
// other. Shapes must match exactly.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i]-o.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description: shape plus up to the first eight
// elements. Intended for debugging, not serialisation.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

// Slice4D returns a copy of t[b0:b1, ...] along the first dimension of a
// rank-4 tensor (NCHW batch slicing). The copy owns its data.
func (t *Tensor) Slice4D(b0, b1 int) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: Slice4D requires rank-4 tensor")
	}
	if b0 < 0 || b1 > t.shape[0] || b0 >= b1 {
		panic(fmt.Sprintf("tensor: Slice4D range [%d,%d) out of range for dim %d", b0, b1, t.shape[0]))
	}
	per := t.strides[0]
	out := New(b1-b0, t.shape[1], t.shape[2], t.shape[3])
	copy(out.data, t.data[b0*per:b1*per])
	return out
}

// Row returns a copy of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float32 {
	if t.Rank() != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	cols := t.shape[1]
	out := make([]float32, cols)
	copy(out, t.data[i*cols:(i+1)*cols])
	return out
}
