package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvGeomOutputSize(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, Kernel: 3, Stride: 1, Pad: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-padding 3x3: out %dx%d, want 32x32", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 5, InW: 5, Kernel: 3, Stride: 2, Pad: 0}
	if g2.OutH() != 2 || g2.OutW() != 2 {
		t.Fatalf("strided: out %dx%d, want 2x2", g2.OutH(), g2.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	cases := []struct {
		g  ConvGeom
		ok bool
	}{
		{ConvGeom{InC: 3, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}, true},
		{ConvGeom{InC: 0, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}, false},
		{ConvGeom{InC: 3, InH: 8, InW: 8, Kernel: 0, Stride: 1, Pad: 1}, false},
		{ConvGeom{InC: 3, InH: 8, InW: 8, Kernel: 3, Stride: 0, Pad: 1}, false},
		{ConvGeom{InC: 3, InH: 2, InW: 2, Kernel: 5, Stride: 1, Pad: 0}, false},
		{ConvGeom{InC: 3, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: -1}, false},
	}
	for i, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Fatalf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

// A direct (naive) convolution used as the reference implementation for the
// im2col path.
func convDirect(img []float32, g ConvGeom, w []float32, outC int) []float32 {
	outH, outW := g.OutH(), g.OutW()
	out := make([]float32, outC*outH*outW)
	k := g.Kernel
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float32
				for ic := 0; ic < g.InC; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*g.Stride - g.Pad + ky
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*g.Stride - g.Pad + kx
							if ix < 0 || ix >= g.InW {
								continue
							}
							wIdx := ((oc*g.InC+ic)*k+ky)*k + kx
							acc += img[(ic*g.InH+iy)*g.InW+ix] * w[wIdx]
						}
					}
				}
				out[(oc*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out
}

func TestIm2ColMatMulMatchesDirectConv(t *testing.T) {
	r := NewRNG(11)
	g := ConvGeom{InC: 3, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}
	outC := 4
	img := make([]float32, g.InC*g.InH*g.InW)
	for i := range img {
		img[i] = float32(r.NormFloat64())
	}
	w := make([]float32, outC*g.InC*g.Kernel*g.Kernel)
	for i := range w {
		w[i] = float32(r.NormFloat64())
	}

	cols := New(g.OutH()*g.OutW(), g.InC*g.Kernel*g.Kernel)
	Im2Col(img, g, cols)
	wm := FromSlice(w, outC, g.InC*g.Kernel*g.Kernel)
	got := MatMulABT(cols, wm) // (positions × outC)

	want := convDirect(img, g, w, outC)
	outHW := g.OutH() * g.OutW()
	for oc := 0; oc < outC; oc++ {
		for p := 0; p < outHW; p++ {
			gv := got.At(p, oc)
			wv := want[oc*outHW+p]
			if d := gv - wv; d > 1e-4 || d < -1e-4 {
				t.Fatalf("conv mismatch at oc=%d p=%d: im2col=%v direct=%v", oc, p, gv, wv)
			}
		}
	}
}

func TestIm2ColStridedNoPad(t *testing.T) {
	r := NewRNG(12)
	g := ConvGeom{InC: 2, InH: 7, InW: 7, Kernel: 3, Stride: 2, Pad: 0}
	outC := 3
	img := make([]float32, g.InC*g.InH*g.InW)
	for i := range img {
		img[i] = float32(r.NormFloat64())
	}
	w := make([]float32, outC*g.InC*g.Kernel*g.Kernel)
	for i := range w {
		w[i] = float32(r.NormFloat64())
	}
	cols := New(g.OutH()*g.OutW(), g.InC*g.Kernel*g.Kernel)
	Im2Col(img, g, cols)
	wm := FromSlice(w, outC, g.InC*g.Kernel*g.Kernel)
	got := MatMulABT(cols, wm)
	want := convDirect(img, g, w, outC)
	outHW := g.OutH() * g.OutW()
	for oc := 0; oc < outC; oc++ {
		for p := 0; p < outHW; p++ {
			gv := got.At(p, oc)
			wv := want[oc*outHW+p]
			if d := gv - wv; d > 1e-4 || d < -1e-4 {
				t.Fatalf("strided conv mismatch at oc=%d p=%d", oc, p)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> = <x, Col2Im(y)>
// for all x, y. This is exactly the property backprop relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		g := ConvGeom{
			InC:    1 + r.Intn(3),
			InH:    4 + r.Intn(5),
			InW:    4 + r.Intn(5),
			Kernel: 3,
			Stride: 1 + r.Intn(2),
			Pad:    r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate geometry
		}
		n := g.InC * g.InH * g.InW
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		rows, colsN := g.OutH()*g.OutW(), g.InC*g.Kernel*g.Kernel
		y := New(rows, colsN)
		y.FillNormal(r, 0, 1)

		cx := New(rows, colsN)
		Im2Col(x, g, cx)
		var lhs float64
		for i := range cx.Data() {
			lhs += float64(cx.Data()[i]) * float64(y.Data()[i])
		}

		back := make([]float32, n)
		Col2Im(y, g, back)
		var rhs float64
		for i := range back {
			rhs += float64(back[i]) * float64(x[i])
		}
		d := lhs - rhs
		if d < 0 {
			d = -d
		}
		scale := 1.0
		if l := lhs; l < 0 {
			scale = -l
		} else if l > 0 {
			scale = l
		}
		return d <= 1e-2*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool2x2KnownValues(t *testing.T) {
	// Single channel 4x4.
	img := []float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}
	out := make([]float32, 4)
	arg := make([]int, 4)
	oh, ow := MaxPool2x2(img, 1, 4, 4, out, arg)
	if oh != 2 || ow != 2 {
		t.Fatalf("out size %dx%d, want 2x2", oh, ow)
	}
	want := []float32{4, 8, 12, 16}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out[i], w)
		}
	}
	if img[arg[0]] != 4 || img[arg[3]] != 16 {
		t.Fatal("argmax indices must point at window maxima")
	}
}

func TestMaxPoolArgmaxWithinWindow(t *testing.T) {
	r := NewRNG(13)
	c, h, w := 3, 8, 8
	img := make([]float32, c*h*w)
	for i := range img {
		img[i] = float32(r.NormFloat64())
	}
	out := make([]float32, c*h/2*w/2)
	arg := make([]int, len(out))
	MaxPool2x2(img, c, h, w, out, arg)
	for i, a := range arg {
		if img[a] != out[i] {
			t.Fatalf("argmax %d does not hold pooled value", i)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	img := []float32{
		1, 2, 3, 4, // ch0: mean 2.5
		10, 20, 30, 40, // ch1: mean 25
	}
	out := make([]float32, 2)
	GlobalAvgPool(img, 2, 2, 2, out)
	if out[0] != 2.5 || out[1] != 25 {
		t.Fatalf("GlobalAvgPool = %v, want [2.5 25]", out)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 10 {
		t.Fatal("zero-seeded RNG produced repeats in first 10 draws")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(8)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestKaimingInitVariance(t *testing.T) {
	r := NewRNG(10)
	fanIn := 128
	x := New(64, fanIn)
	x.KaimingInit(r, fanIn)
	var sumSq float64
	for _, v := range x.Data() {
		sumSq += float64(v) * float64(v)
	}
	variance := sumSq / float64(x.Len())
	want := 2.0 / float64(fanIn)
	if variance < want*0.7 || variance > want*1.3 {
		t.Fatalf("Kaiming variance = %v, want ~%v", variance, want)
	}
}
