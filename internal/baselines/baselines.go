// Package baselines implements the comparison points the paper positions
// the dynamic DNN against:
//
//   - StaticModelSet — NetAdapt-style static pruning (Yang et al. [5]):
//     one fixed model per (platform, hardware setting, budget). Covering
//     runtime variability requires deploying many models, with the storage
//     and switching overheads of Park et al. [20].
//   - BigLittle — Park et al. [20]: exactly two models (a big and a little
//     one), switched at runtime by a confidence/latency trigger.
//
// The no-RTM baseline (a conventional governor with static mapping) lives
// in rtm.GovernorController.
package baselines

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/dyndnn"
	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// StaticModel is one fixed pruned model produced at design time for a
// specific hardware setting.
type StaticModel struct {
	Name     string
	MACs     int64
	Accuracy float64
	Bytes    int64
}

// StaticModelSet is the collection of static models a NetAdapt-style flow
// must deploy to cover a set of hardware settings at a latency budget.
type StaticModelSet struct {
	Models []StaticModel
}

// BuildStaticSet generates, for every (cluster, OPP) hardware setting of
// the platform, the largest model level of prof that meets the latency
// budget — the per-setting model a static pruning flow would emit. Settings
// where even the smallest model misses the budget produce no model.
func BuildStaticSet(p *hw.Platform, prof perf.ModelProfile, budgetS float64) StaticModelSet {
	var set StaticModelSet
	for _, cl := range p.Clusters {
		for oi, opp := range cl.OPPs {
			best := -1
			for _, spec := range prof.Levels {
				lat := perf.InferenceLatencyS(cl, opp, cl.Cores, spec.MACs)
				if lat <= budgetS {
					best = spec.Level
				}
			}
			if best < 0 {
				continue
			}
			spec := prof.Level(best)
			set.Models = append(set.Models, StaticModel{
				Name:     fmt.Sprintf("%s-opp%d-%s", cl.Name, oi, spec.Name),
				MACs:     spec.MACs,
				Accuracy: spec.Accuracy,
				Bytes:    spec.MemBytes,
			})
		}
	}
	return set
}

// DistinctModels returns the number of distinct model sizes in the set —
// the models that actually need storage (identical sizes are stored once).
func (s StaticModelSet) DistinctModels() int {
	seen := map[int64]bool{}
	for _, m := range s.Models {
		seen[m.Bytes] = true
	}
	return len(seen)
}

// StorageBytes returns the storage the distinct models require.
func (s StaticModelSet) StorageBytes() int64 {
	seen := map[int64]bool{}
	var total int64
	for _, m := range s.Models {
		if !seen[m.Bytes] {
			seen[m.Bytes] = true
			total += m.Bytes
		}
	}
	return total
}

// SwitchCost returns the cost of moving between two hardware settings with
// the static set (a full model reload when the sizes differ) using the
// dyndnn switch-cost model.
func (s StaticModelSet) SwitchCost(model SwitchCostModel, fromBytes, toBytes int64) dyndnn.SwitchCost {
	if fromBytes == toBytes {
		return dyndnn.SwitchCost{}
	}
	return dyndnn.SwitchCostModel(model).StaticSwitch(toBytes)
}

// SwitchCostModel re-exports dyndnn's cost model for baseline call sites.
type SwitchCostModel dyndnn.SwitchCostModel

// BigLittle is the two-model baseline of Park et al. [20]: inference runs
// on the little model; when its confidence falls below the threshold the
// input is re-run on the big model.
type BigLittle struct {
	Little perf.LevelSpec
	Big    perf.LevelSpec
	// EscalationRate is the fraction of inputs the little model escalates
	// (a function of the confidence threshold; measured offline).
	EscalationRate float64
}

// NewBigLittle builds the baseline from the extreme levels of a profile.
func NewBigLittle(prof perf.ModelProfile, escalationRate float64) BigLittle {
	return BigLittle{
		Little:         prof.Level(1),
		Big:            prof.Level(prof.MaxLevel()),
		EscalationRate: escalationRate,
	}
}

// ExpectedMACs returns the mean per-input compute: the little model always
// runs; escalated inputs additionally run the big model.
func (b BigLittle) ExpectedMACs() float64 {
	return float64(b.Little.MACs) + b.EscalationRate*float64(b.Big.MACs)
}

// ExpectedAccuracy estimates accuracy: escalated inputs get big-model
// accuracy, the rest keep little-model accuracy. (Optimistic for the
// baseline: it assumes escalation perfectly identifies the inputs the
// little model would get wrong.)
func (b BigLittle) ExpectedAccuracy() float64 {
	return b.Little.Accuracy + b.EscalationRate*(b.Big.Accuracy-b.Little.Accuracy)
}

// StorageBytes returns the two-model storage footprint.
func (b BigLittle) StorageBytes() int64 { return b.Little.MemBytes + b.Big.MemBytes }

// WorstCaseLatencyS returns the tail latency on the given cluster/OPP:
// little + big back-to-back (an escalated input).
func (b BigLittle) WorstCaseLatencyS(cl *hw.Cluster, opp hw.OPP, cores int) float64 {
	return perf.InferenceLatencyS(cl, opp, cores, b.Little.MACs) +
		perf.InferenceLatencyS(cl, opp, cores, b.Big.MACs)
}
