package baselines

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

func TestBuildStaticSetCoversSettings(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	set := BuildStaticSet(plat, prof, 0.250)
	if len(set.Models) == 0 {
		t.Fatal("empty static set")
	}
	// Settings too slow for even the 25% model produce no entry; fast
	// settings carry the 100% model. Both extremes must appear.
	total := 0
	for _, cl := range plat.Clusters {
		total += len(cl.OPPs)
	}
	if len(set.Models) >= total {
		t.Fatalf("every setting got a model (%d of %d); slow settings must be excluded",
			len(set.Models), total)
	}
	saw100, saw25 := false, false
	for _, m := range set.Models {
		if m.MACs == prof.Level(4).MACs {
			saw100 = true
		}
		if m.MACs == prof.Level(1).MACs {
			saw25 = true
		}
	}
	if !saw100 || !saw25 {
		t.Fatalf("expected both extremes in the set (100%%: %v, 25%%: %v)", saw100, saw25)
	}
}

func TestStaticSetStorageAccounting(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	set := BuildStaticSet(plat, prof, 0.250)
	distinct := set.DistinctModels()
	if distinct < 2 || distinct > prof.MaxLevel() {
		t.Fatalf("distinct models = %d, want within [2,%d]", distinct, prof.MaxLevel())
	}
	// Storage equals the sum of the distinct model sizes.
	var want int64
	seen := map[int64]bool{}
	for _, m := range set.Models {
		if !seen[m.Bytes] {
			seen[m.Bytes] = true
			want += m.Bytes
		}
	}
	if got := set.StorageBytes(); got != want {
		t.Fatalf("StorageBytes = %d, want %d", got, want)
	}
	// The static set always stores at least as much as one dynamic model.
	if set.StorageBytes() < prof.Level(prof.MaxLevel()).MemBytes {
		t.Fatal("static set cannot be smaller than the full model")
	}
}

func TestStaticSetTighterBudgetSmallerModels(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	loose := BuildStaticSet(plat, prof, 2.0)
	tight := BuildStaticSet(plat, prof, 0.060)
	maxMACs := func(s StaticModelSet) int64 {
		var m int64
		for _, x := range s.Models {
			if x.MACs > m {
				m = x.MACs
			}
		}
		return m
	}
	if maxMACs(tight) >= maxMACs(loose) {
		t.Fatal("tighter budgets must force smaller models")
	}
	if len(tight.Models) >= len(loose.Models) {
		t.Fatal("tighter budgets must exclude more settings")
	}
}

func TestStaticSwitchCost(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	set := BuildStaticSet(plat, prof, 0.250)
	model := SwitchCostModel{MemoryBandwidth: 200e6, ReinitLatency: 0.05, LoadPower: 1.5}
	same := set.SwitchCost(model, 1000, 1000)
	if same.LatencyS != 0 || same.BytesMoved != 0 {
		t.Fatal("same-size switch must be free")
	}
	diff := set.SwitchCost(model, 1000, 2000)
	if diff.LatencyS <= 0.05 || diff.BytesMoved != 2000 {
		t.Fatalf("switch cost %+v implausible", diff)
	}
}

func TestBigLittleAccounting(t *testing.T) {
	prof := perf.PaperReferenceProfile()
	bl := NewBigLittle(prof, 0.25)
	// Expected compute: little always + 25% of big.
	want := float64(prof.Level(1).MACs) + 0.25*float64(prof.Level(4).MACs)
	if got := bl.ExpectedMACs(); got != want {
		t.Fatalf("ExpectedMACs = %v, want %v", got, want)
	}
	acc := bl.ExpectedAccuracy()
	if acc <= prof.Level(1).Accuracy || acc >= prof.Level(4).Accuracy {
		t.Fatalf("expected accuracy %.3f must lie between the extremes", acc)
	}
	if bl.StorageBytes() != prof.Level(1).MemBytes+prof.Level(4).MemBytes {
		t.Fatal("storage must be both models")
	}
}

func TestBigLittleWorstCaseLatency(t *testing.T) {
	prof := perf.PaperReferenceProfile()
	bl := NewBigLittle(prof, 0.25)
	cl := hw.OdroidXU3().Cluster("a15")
	opp := cl.MaxOPP()
	worst := bl.WorstCaseLatencyS(cl, opp, cl.Cores)
	bigOnly := perf.InferenceLatencyS(cl, opp, cl.Cores, prof.Level(4).MACs)
	littleOnly := perf.InferenceLatencyS(cl, opp, cl.Cores, prof.Level(1).MACs)
	if worst <= bigOnly || worst >= bigOnly+littleOnly+0.01 {
		t.Fatalf("worst case %.3fs out of range (big %.3fs, little %.3fs)", worst, bigOnly, littleOnly)
	}
	// The paper's point: the two-model baseline has a worse tail than any
	// single dynamic configuration it contains.
	if worst <= bigOnly {
		t.Fatal("escalation must cost more than the big model alone")
	}
}

func TestBigLittleMoreEscalationMoreComputeMoreAccuracy(t *testing.T) {
	prof := perf.PaperReferenceProfile()
	lo := NewBigLittle(prof, 0.1)
	hi := NewBigLittle(prof, 0.5)
	if hi.ExpectedMACs() <= lo.ExpectedMACs() {
		t.Fatal("more escalation must cost more compute")
	}
	if hi.ExpectedAccuracy() <= lo.ExpectedAccuracy() {
		t.Fatal("more escalation must gain accuracy")
	}
}
