// Package trace renders experiment results as aligned text tables and CSV,
// the two formats the reproduction's tools emit: tables mirror the paper's
// presentation, CSV feeds external plotting.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float the way AddRow does — magnitude-scaled
// precision — so callers that decorate a cell (a "~" approximation suffix,
// say) and pass it as a string stay aligned with undecorated numeric
// cells in the same column.
func FormatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a == 0:
		return "0"
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells
// containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) sequence — one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series with axis labels, rendered as long-format CSV
// (series, x, y) for plotting.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds and returns a new named series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// CSV renders the figure in long format.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Points returns the total number of points across all series.
func (f *Figure) Points() int {
	n := 0
	for _, s := range f.Series {
		n += len(s.X)
	}
	return n
}
