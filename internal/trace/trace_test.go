package trace

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value", "Note")
	tb.AddRow("alpha", 3.14159, "first")
	tb.AddRow("beta", 12345.6, "second")
	tb.AddRow("gamma", 0.001234, "third")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"alpha", "beta", "gamma", "3.14", "12346", "0.001"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("line count %d, want 6:\n%s", len(lines), out)
	}
	if tb.Rows() != 3 {
		t.Fatalf("Rows() = %d", tb.Rows())
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("xxxxxxxxxx", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row must place the second column at the same offset.
	hIdx := strings.Index(lines[0], "LongHeader")
	rIdx := strings.Index(lines[2], "1")
	if hIdx != rIdx {
		t.Fatalf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{42.42, "42.4"},
		{3.14159, "3.14"},
		{0.1234, "0.123"},
		{-7.5, "-7.50"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header wrong: %s", csv)
	}
}

func TestFigureSeriesAndCSV(t *testing.T) {
	f := NewFigure("fig", "x_ms", "y_mj")
	s1 := f.NewSeries("A7, 25% model")
	s1.Add(1, 2)
	s1.Add(3, 4)
	s2 := f.NewSeries("A15, 100% model")
	s2.Add(5, 6)
	if f.Points() != 3 {
		t.Fatalf("Points = %d", f.Points())
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "series,x_ms,y_mj\n") {
		t.Fatalf("header wrong: %s", csv)
	}
	for _, want := range []string{"A7, 25% model,1,2", "A7, 25% model,3,4", "A15, 100% model,5,6"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("csv missing %q:\n%s", want, csv)
		}
	}
}

func TestEmptyTableStillRenders(t *testing.T) {
	tb := NewTable("Empty", "only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("header missing on empty table")
	}
}
