package workload

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
)

func TestMobileProfileShape(t *testing.T) {
	p := MobileProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MaxLevel() != 4 {
		t.Fatalf("levels = %d", p.MaxLevel())
	}
	if p.Level(4).MACs != 7_000_000 {
		t.Fatalf("full MACs = %d", p.Level(4).MACs)
	}
	if p.Level(1).Accuracy >= p.Level(4).Accuracy {
		t.Fatal("accuracy must rise with level")
	}
}

func TestScenarioControllerAppliesActionsInOrder(t *testing.T) {
	var order []string
	actions := []Action{
		{AtS: 2, Name: "b", Do: func(e *sim.Engine, m *rtm.Manager) { order = append(order, "b") }},
		{AtS: 1, Name: "a", Do: func(e *sim.Engine, m *rtm.Manager) { order = append(order, "a") }},
	}
	ctrl := NewScenarioController(nil, actions)
	e, err := sim.New(sim.Config{
		Platform: hw.OdroidXU3(),
		Apps: []sim.App{{Name: "bg", Kind: sim.KindBackground, Util: 0.1,
			Placement: sim.Placement{Cluster: "a7", Cores: 1}}},
		Controller: ctrl,
		TickS:      0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("actions ran %v, want [a b]", order)
	}
}

// E3 golden-shape test: the full Fig 2 timeline. Every phase transition of
// the paper's narrative must appear, and overall quality of service must
// hold (small miss/drop fractions, no critical thermal violation).
func TestFig2ScenarioReproducesPaperTimeline(t *testing.T) {
	s := Fig2Scenario()
	e, mgr, rep, err := Run(s, hw.FlagshipSoC(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Final state (phase d): both DNNs co-located on the NPU, compressed.
	d1, _ := e.App("dnn1")
	d2, _ := e.App("dnn2")
	if d1.Placement.Cluster != "npu" || d2.Placement.Cluster != "npu" {
		t.Fatalf("phase (d): dnn1 on %s, dnn2 on %s, want both on npu",
			d1.Placement.Cluster, d2.Placement.Cluster)
	}
	if d1.Level >= 4 || d2.Level >= 3 {
		t.Fatalf("phase (d): levels %d/%d, want both compressed", d1.Level, d2.Level)
	}

	// Phase transitions via the migration log.
	type mig struct {
		t    float64
		app  string
		note string
	}
	var migs []mig
	sawAlarm := false
	for _, ev := range rep.Events {
		switch ev.Kind {
		case sim.EvMigrated:
			migs = append(migs, mig{ev.TimeS, ev.App, ev.Note})
		case sim.EvThermalAlarm:
			sawAlarm = true
		}
	}
	expect := []struct {
		app      string
		contains string
		loS, hiS float64
	}{
		{"dnn1", "npu -> gpu", 4.9, 6},       // (b) DNN2 claims NPU, DNN1 to GPU
		{"dnn2", "-> npu", 4.9, 6},           // (b)
		{"dnn1", "gpu -> cpu-big", 14.9, 16}, // (c) AR/VR takes the GPU
		{"dnn1", "-> npu", 24.9, 26},         // (d) co-location
	}
	for _, want := range expect {
		found := false
		for _, m := range migs {
			if m.app == want.app && m.t >= want.loS && m.t <= want.hiS &&
				contains(m.note, want.contains) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("missing migration %q for %s in [%.1f,%.1f]; got %v",
				want.contains, want.app, want.loS, want.hiS, migs)
		}
	}

	// (c) thermal: the hot environment must trip the alarm before t=25 and
	// the manager must shed DNN1 off the big cluster.
	if !sawAlarm {
		t.Fatalf("no thermal alarm fired (maxT %.1f)", rep.MaxTempC)
	}
	shed := false
	for _, m := range migs {
		if m.app == "dnn1" && m.t > 18 && m.t < 25 && contains(m.note, "cpu-big ->") {
			shed = true
		}
	}
	if !shed {
		t.Fatalf("dnn1 was not shed off cpu-big after the thermal alarm; migrations %v", migs)
	}
	if rep.OverCriticalS > 0 {
		t.Fatal("critical temperature violated")
	}
	if rep.OverThrottleS > 1.5 {
		t.Fatalf("spent %.2fs above throttle; manager too slow", rep.OverThrottleS)
	}

	// Quality of service: both DNNs complete the overwhelming majority of
	// frames (migration downtimes cost a handful).
	for _, a := range []sim.AppInfo{d1, d2} {
		bad := float64(a.Missed+a.Dropped) / float64(a.Released)
		if bad > 0.15 {
			t.Fatalf("%s miss+drop fraction %.2f too high", a.Name, bad)
		}
	}
	if mgr.Plans() < 4 {
		t.Fatalf("manager planned only %d times", mgr.Plans())
	}
}

// The no-RTM baseline on the same scenario must do strictly worse: with a
// static mapping and a plain governor, DNN1 never fits its budget once the
// GPU is taken, and nothing resolves the NPU memory conflict.
func TestFig2BaselineWithoutRTMDegrades(t *testing.T) {
	s := Fig2Scenario()
	gov := rtm.NewGovernorController(rtm.OndemandGovernor{})
	e, err := sim.New(sim.Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       s.Apps,
		Controller: gov,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(s.EndS); err != nil {
		t.Fatal(err)
	}
	d2, _ := e.App("dnn2")
	// DNN2 stays where it started (cpu-big), which cannot hold 60 fps for
	// the 100% mobile model: overwhelming misses.
	if d2.Placement.Cluster != "cpu-big" {
		t.Fatalf("baseline moved dnn2 to %s; governors must not migrate", d2.Placement.Cluster)
	}
	bad := float64(d2.Missed+d2.Dropped) / float64(d2.Released)
	if bad < 0.5 {
		t.Fatalf("baseline dnn2 miss+drop fraction %.2f suspiciously low", bad)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFig5ScenarioHoldsBudgetThroughDisturbance(t *testing.T) {
	// The Fig 5 loop runs on the XU3, so it uses the XU3-calibrated
	// reference profile: the 100% model at a 250 ms budget is feasible on
	// the A15 but not once the burst takes 3 of its cores — the manager
	// must shrink the model or move it to the A7.
	s := Fig5Scenario(perf.PaperReferenceProfile())
	e, _, rep, err := Run(s, hw.OdroidXU3(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := e.App("dnn")
	bad := float64(d.Missed+d.Dropped) / float64(d.Released)
	if bad > 0.2 {
		t.Fatalf("manager failed to hold the budget through the burst: %.2f bad frames", bad)
	}
	if rep.OverCriticalS > 0 {
		t.Fatal("critical thermal violation")
	}
}
