// Package workload builds the workload mixes of the paper's scenarios:
// DNN inference streams with frame-rate requirements, AR/VR render load,
// background tasks, and the scripted Fig 2 timeline with its runtime
// disturbances (app arrivals, an environmental thermal event, a
// requirement change).
package workload

import (
	"sort"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// MobileProfile is a mobile-vision-class dynamic DNN: 7 MMACs and 7 MiB of
// parameters at the 100% configuration, with the paper's Fig 4(b)
// accuracies. It is deliberately heavier than the Table I calibration
// workload so that the flagship SoC's GPU and CPU clusters — not just the
// NPU — face real trade-offs, which is the premise of Fig 2.
func MobileProfile() perf.ModelProfile {
	return perf.UniformProfile("dnn-mobile", 7_000_000, 7<<20,
		perf.PaperAccuracies, []float64{0.61, 0.68, 0.74, 0.78})
}

// Action is one scripted scenario step.
type Action struct {
	AtS  float64
	Name string
	Do   func(e *sim.Engine, m *rtm.Manager)
}

// FaultWindow is one scripted hardware fault: the named cluster drops
// offline at FailS and, when RepairS > 0, comes back at RepairS. A zero
// RepairS means the cluster stays dead for the rest of the run.
type FaultWindow struct {
	Cluster string
	FailS   float64
	RepairS float64
}

// Scenario bundles everything a scripted run needs.
type Scenario struct {
	Name    string
	Apps    []sim.App
	Reqs    map[string]rtm.Requirement
	Actions []Action
	// Faults are seeded hardware-fault windows, applied at tick quantisation
	// like Actions (they are converted to fail/repair actions at run time).
	Faults []FaultWindow
	EndS   float64
	// Policy names the registered planning policy the manager runs under
	// ("" = the default heuristic). Run resolves it via rtm.NewPolicy, so
	// the same scripted workload can be replayed under any strategy.
	Policy string
	// Planner, when non-nil, is the policy *instance* the manager runs,
	// taking precedence over Policy. It exists for callers whose policies
	// carry per-run state the name registry cannot construct — the fleet
	// trainer's recording/exploring policies — while keeping every other
	// execution detail identical to a named run.
	Planner rtm.Policy
}

// ScenarioController wraps a manager, applying scripted actions at their
// times (quantised to the controller tick) before delegating to the
// manager — disturbances arrive "from outside" exactly as in Fig 2.
type ScenarioController struct {
	Mgr     *rtm.Manager
	Actions []Action
	applied int
}

// NewScenarioController sorts the actions by time and wires the manager.
func NewScenarioController(m *rtm.Manager, actions []Action) *ScenarioController {
	sorted := append([]Action(nil), actions...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtS < sorted[j].AtS })
	return &ScenarioController{Mgr: m, Actions: sorted}
}

// OnTick implements sim.Controller.
func (c *ScenarioController) OnTick(e *sim.Engine) {
	for c.applied < len(c.Actions) && c.Actions[c.applied].AtS <= e.Now() {
		a := c.Actions[c.applied]
		c.applied++
		a.Do(e, c.Mgr)
	}
	if c.Mgr != nil {
		c.Mgr.OnTick(e)
	}
}

// OnEvent implements sim.Controller.
func (c *ScenarioController) OnEvent(e *sim.Engine, ev sim.Event) {
	if c.Mgr != nil {
		c.Mgr.OnEvent(e, ev)
	}
}

var _ sim.Controller = (*ScenarioController)(nil)

// Fig2Scenario reproduces the paper's runtime timeline (Fig 2) on the
// flagship SoC:
//
//	t=0   DNN1 (25 fps, min accuracy 0.70) starts; expected on the NPU at
//	      the 100% configuration with the companion CPU pre-processing.
//	t=5   DNN2 (60 fps, min accuracy 0.70, higher priority) starts;
//	      expected to claim the NPU, pushing DNN1 to the GPU compressed
//	      (75%), trading accuracy.
//	t=15  An AR/VR app occupies 75% of the GPU; DNN1 is expected to move
//	      to the big CPU cluster, compressed further (25%).
//	t=18  The device enters a hot environment (ambient 25→40 °C); the SoC
//	      crosses its thermal limit shortly after, and the manager must
//	      shed power: DNN1 ends up compressed on a low-power allocation.
//	t=25  DNN2's accuracy requirement is reduced to 0.60; it compresses to
//	      50%, freeing NPU memory, and the manager co-locates both DNNs on
//	      the NPU (Fig 2(d)).
func Fig2Scenario() Scenario {
	prof := MobileProfile()
	apps := []sim.App{
		{
			Name:       "dnn1",
			Kind:       sim.KindDNN,
			Profile:    prof,
			Level:      4,
			PeriodS:    0.040, // 25 fps
			ModelBytes: 7 << 20,
			Placement:  sim.Placement{Cluster: "npu"},
		},
		{
			Name:       "dnn2",
			Kind:       sim.KindDNN,
			Profile:    prof,
			Level:      4,
			PeriodS:    1.0 / 60, // 60 fps: the stricter latency requirement
			ModelBytes: 7 << 20,
			StartS:     5,
			Placement:  sim.Placement{Cluster: "cpu-big", Cores: 4},
		},
		{
			Name:      "vrapp",
			Kind:      sim.KindRender,
			Util:      0.75,
			StartS:    15,
			Placement: sim.Placement{Cluster: "gpu"},
		},
	}
	reqs := map[string]rtm.Requirement{
		"dnn1": {MinAccuracy: 0.70, Priority: 1},
		"dnn2": {MinAccuracy: 0.70, Priority: 2},
	}
	actions := []Action{
		{
			AtS:  18,
			Name: "hot-environment",
			Do:   func(e *sim.Engine, m *rtm.Manager) { e.SetAmbient(40) },
		},
		{
			AtS:  25,
			Name: "dnn2-accuracy-requirement-reduced",
			Do: func(e *sim.Engine, m *rtm.Manager) {
				m.SetRequirement("dnn2", rtm.Requirement{MinAccuracy: 0.60, Priority: 2})
				m.Replan(e)
			},
		},
	}
	return Scenario{
		Name:    "fig2",
		Apps:    apps,
		Reqs:    reqs,
		Actions: actions,
		EndS:    35,
	}
}

// Fig5Scenario is a closed-loop disturbance run used by the Fig 5
// experiment: a single DNN with a latency budget and accuracy floor on the
// Odroid XU3 while a background task arrives on the same cluster mid-run
// and later leaves. The manager must hold the budget through the
// disturbance using the level, mapping and DVFS knobs.
func Fig5Scenario(prof perf.ModelProfile) Scenario {
	apps := []sim.App{
		{
			Name:       "dnn",
			Kind:       sim.KindDNN,
			Profile:    prof,
			Level:      prof.MaxLevel(),
			PeriodS:    0.250,
			ModelBytes: 350 << 10,
			Placement:  sim.Placement{Cluster: "a15", Cores: 4},
		},
		{
			Name:      "burst",
			Kind:      sim.KindBackground,
			Util:      1.0,
			StartS:    10,
			StopS:     20,
			Placement: sim.Placement{Cluster: "a15", Cores: 3},
		},
	}
	reqs := map[string]rtm.Requirement{
		"dnn": {MinAccuracy: 0.60, Priority: 1},
	}
	return Scenario{Name: "fig5", Apps: apps, Reqs: reqs, EndS: 30}
}

// Run executes a scenario with the manager in the loop and returns the
// engine for inspection, the manager, and the final report.
func Run(s Scenario, plat *hw.Platform, tickS float64, logf func(string, ...any)) (*sim.Engine, *rtm.Manager, sim.Report, error) {
	return RunEngine(nil, s, plat, tickS, logf)
}

// RunOptions carries plan-reuse wiring for RunEngineOpts. The zero value
// is the default behaviour: the manager lazily owns its own plan cache
// and both reuse tiers are active.
type RunOptions struct {
	// PlanCache, when non-nil, is installed as the manager's plan memo
	// cache. A fleet worker passes one cache for its whole scenario
	// stream so recurring planning states hit across scenarios, not just
	// within one.
	PlanCache *rtm.PlanCache
	// DisablePlanReuse turns off replan elision and plan memoisation
	// (rtm.Manager.NoPlanReuse) — the reuse-off arm of equivalence tests
	// and the fleetsim -plancache=false switch.
	DisablePlanReuse bool
}

// RunEngine is Run with engine reuse: a non-nil engine is Reset in place
// for the scenario instead of constructed, which removes the per-run
// engine-construction allocations — the point of a worker owning one
// engine for its whole scenario stream. The manager and controller are
// always fresh (their construction is cheap and their state must be
// pristine per run), so a reused-engine run is byte-identical to a fresh
// one. Passing nil behaves exactly like Run. The returned engine is the
// one the scenario actually ran on; reuse it for the next call. A
// scenario's Report must be consumed before the engine is reused — Reset
// rewrites the event log the Report's Events field aliases.
func RunEngine(e *sim.Engine, s Scenario, plat *hw.Platform, tickS float64, logf func(string, ...any)) (*sim.Engine, *rtm.Manager, sim.Report, error) {
	return RunEngineOpts(e, s, plat, tickS, logf, RunOptions{})
}

// RunEngineOpts is RunEngine with plan-reuse wiring (see RunOptions).
// Reuse never changes a report byte — the options only control whether
// and where planning work is skipped.
func RunEngineOpts(e *sim.Engine, s Scenario, plat *hw.Platform, tickS float64, logf func(string, ...any), opts RunOptions) (*sim.Engine, *rtm.Manager, sim.Report, error) {
	pol := s.Planner
	if pol == nil {
		var err error
		pol, err = rtm.NewPolicy(s.Policy)
		if err != nil {
			return nil, nil, sim.Report{}, err
		}
	}
	mgr := rtm.NewManager(s.Reqs)
	mgr.SetPolicy(pol)
	mgr.Logf = logf
	mgr.NoPlanReuse = opts.DisablePlanReuse
	if opts.PlanCache != nil {
		mgr.SetPlanCache(opts.PlanCache)
	}
	actions := s.Actions
	if len(s.Faults) > 0 {
		// Fault windows become ordinary scripted actions so they share the
		// Actions path's tick quantisation and deterministic ordering
		// (NewScenarioController's stable sort keeps fail-before-repair for
		// windows converted in order).
		actions = append(append([]Action(nil), s.Actions...), faultActions(s.Faults)...)
	}
	ctrl := NewScenarioController(mgr, actions)
	cfg := sim.Config{
		Platform:   plat,
		Apps:       s.Apps,
		Controller: ctrl,
		TickS:      tickS,
		LogEvents:  true,
	}
	var err error
	if e == nil {
		e, err = sim.New(cfg)
	} else {
		err = e.Reset(cfg)
	}
	if err != nil {
		return nil, nil, sim.Report{}, err
	}
	if err := e.Run(s.EndS); err != nil {
		return nil, nil, sim.Report{}, err
	}
	return e, mgr, e.Report(), nil
}

// faultActions converts fault windows into fail/repair actions. The
// SetClusterOnline error is ignored by design: a window naming an unknown
// cluster is a scenario-authoring bug that validation should catch, and a
// duplicate transition is a no-op.
func faultActions(faults []FaultWindow) []Action {
	out := make([]Action, 0, 2*len(faults))
	for _, fw := range faults {
		cluster := fw.Cluster
		out = append(out, Action{
			AtS:  fw.FailS,
			Name: "fault-" + cluster,
			Do:   func(e *sim.Engine, m *rtm.Manager) { _ = e.SetClusterOnline(cluster, false) },
		})
		if fw.RepairS > 0 {
			out = append(out, Action{
				AtS:  fw.RepairS,
				Name: "repair-" + cluster,
				Do:   func(e *sim.Engine, m *rtm.Manager) { _ = e.SetClusterOnline(cluster, true) },
			})
		}
	}
	return out
}
