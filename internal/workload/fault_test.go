package workload

import (
	"reflect"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/rtm"
	"github.com/emlrtm/emlrtm/internal/sim"
)

func faultScenario() Scenario {
	prof := MobileProfile()
	return Scenario{
		Name: "fault",
		Apps: []sim.App{
			{Name: "d1", Kind: sim.KindDNN, Profile: prof, Level: 1, PeriodS: 0.2,
				ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "a15", Cores: 4}},
			{Name: "d2", Kind: sim.KindDNN, Profile: prof, Level: 1, PeriodS: 0.5,
				ModelBytes: 7 << 20, Placement: sim.Placement{Cluster: "a7", Cores: 2}},
		},
		Reqs: map[string]rtm.Requirement{
			"d1": {Priority: 2},
			"d2": {Priority: 1},
		},
		Faults: []FaultWindow{{Cluster: "a15", FailS: 3, RepairS: 7}},
		EndS:   12,
	}
}

// Scenario fault windows become fail/repair transitions in the engine,
// applied alongside ordinary actions, and the manager rides through them.
func TestScenarioFaultWindowsApplied(t *testing.T) {
	s := faultScenario()
	var acted bool
	s.Actions = []Action{{AtS: 5, Name: "probe",
		Do: func(e *sim.Engine, m *rtm.Manager) { acted = true }}}
	e, _, rep, err := Run(s, hw.OdroidXU3(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 1 {
		t.Fatalf("fails=%d repairs=%d, want 1/1", rep.ClusterFails, rep.ClusterRepairs)
	}
	if !acted {
		t.Fatal("ordinary action was dropped when fault windows were present")
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("apps left unhosted after repair")
	}
	ci, err := e.Cluster("a15")
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Online {
		t.Fatal("a15 still offline after its repair window")
	}
	// Service continued: both apps kept completing frames (the d1 stream
	// alone releases ~60 over 12 s).
	total := 0
	for _, a := range rep.Apps {
		total += a.Completed
	}
	if total < 50 {
		t.Fatalf("completed %d frames across the fault window", total)
	}
}

// A never-repaired fault leaves the cluster dead to the end, with the
// survivors hosting every app.
func TestScenarioFaultWithoutRepair(t *testing.T) {
	s := faultScenario()
	s.Faults = []FaultWindow{{Cluster: "a15", FailS: 3}}
	e, _, rep, err := Run(s, hw.OdroidXU3(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 0 {
		t.Fatalf("fails=%d repairs=%d, want 1/0", rep.ClusterFails, rep.ClusterRepairs)
	}
	ci, err := e.Cluster("a15")
	if err != nil {
		t.Fatal(err)
	}
	if ci.Online {
		t.Fatal("a15 online despite no repair window")
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("apps stranded on the dead cluster while a7 is online")
	}
}

// Faulty runs are as deterministic as healthy ones: identical scenarios
// produce identical reports, including the fault-derived stats.
func TestFaultyRunDeterministic(t *testing.T) {
	_, _, rep1, err := Run(faultScenario(), hw.OdroidXU3(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rep2, err := Run(faultScenario(), hw.OdroidXU3(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("identical faulty scenarios diverged:\n%+v\n%+v", rep1, rep2)
	}
	if rep1.ClusterFails != 1 || rep1.ClusterRepairs != 1 {
		t.Fatal("fault window left no trace in the report")
	}
}
