package workload

import (
	"encoding/json"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/sim"
)

// TestRunEngineReuseEquivalence: RunEngine on a reused engine must
// reproduce Run's report byte-for-byte, scenario after scenario — the
// contract the fleet runner's per-worker engine reuse stands on, here
// exercised through the managed (controller-in-the-loop) path and across
// a platform switch mid-stream.
func TestRunEngineReuseEquivalence(t *testing.T) {
	steps := []struct {
		s    Scenario
		plat func() *hw.Platform
	}{
		{Fig2Scenario(), hw.FlagshipSoC},
		{Fig5Scenario(perf.PaperReferenceProfile()), hw.OdroidXU3},
		{Fig2Scenario(), hw.FlagshipSoC},
	}

	var reused *sim.Engine
	for i, st := range steps {
		_, _, want, err := Run(st.s, st.plat(), 0.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}

		eng, _, got, err := RunEngine(reused, st.s, st.plat(), 0.25, nil)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		// Compare before the next iteration's Reset rewrites the event log
		// the report aliases.
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("scenario %d (%s): reused-engine report differs from fresh run", i, st.s.Name)
		}
		reused = eng
	}
}
