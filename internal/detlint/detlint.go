// Package detlint is the repo's determinism & hot-path static-analysis
// suite. Every layer of this codebase rests on one invariant — same seed →
// byte-identical bytes — and one performance contract — zero-alloc
// steady-state hot paths. Both are enforced after the fact by golden-report
// cmps and AllocsPerRun pins; detlint enforces them at the source level,
// before a stray map-range or wall-clock read ever reaches a golden test.
//
// The suite is stdlib-only (go/parser, go/ast, go/types) and ships four
// invariant analyzers plus a directive-hygiene pass:
//
//   - rangemap: `for … range` over a map in a determinism-critical package
//     (sim, rtm, fleet, workload, trace) is the canonical determinism bug —
//     iteration order is randomised per run. Collecting keys into a slice
//     that is sorted (the sorted-keys idiom) is recognised as clean; any
//     other map range needs a `//detlint:ordered <reason>` directive.
//   - wallclock: time.Now/Since/Sleep (and siblings) in those packages —
//     the simulation owns its clock; wall time is only legal in
//     orchestrator/CLI code, via `//detlint:allow wallclock <reason>`.
//   - globalrand: package-level math/rand functions anywhere outside tests
//     — all randomness must flow through an explicitly seeded *rand.Rand.
//   - hotalloc: functions marked `//detlint:hotpath` must avoid
//     known-allocating constructs: fmt.Sprintf/Errorf, non-constant string
//     concatenation, composite literals escaping into interfaces, and
//     append to slices that are neither parameter-owned nor built with a
//     capacity hint.
//   - directive: `//detlint:` comments themselves are checked — unknown
//     verbs, suppressions without a reason, and allow-directives naming
//     unknown analyzers are diagnostics.
//
// Diagnostics print as `file:line: [analyzer] message`; cmd/detlint exits
// nonzero when any are found, and CI runs it as a required job.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding. The JSON field names are the machine-readable
// contract of `cmd/detlint -json` (one object per line).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the human-readable form: file:line: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Package is one parsed, type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass is the per-package context handed to each analyzer.
type Pass struct {
	Pkg *Package
	// Critical reports whether the package is determinism-critical (the
	// rangemap and wallclock analyzers only apply there).
	Critical bool

	analyzer string
	dirs     *directiveIndex
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a suppression directive for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.dirs.suppressed(p.analyzer, position.Filename, position.Line) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Suite is a set of analyzers plus the policy deciding which packages are
// determinism-critical.
type Suite struct {
	Analyzers []*Analyzer
	// Critical classifies a package import path as determinism-critical.
	Critical func(pkgPath string) bool
}

// criticalBases are the determinism-critical package names: the simulation
// core, the policy/actuation layer, the fleet harness, the workload runner
// and the trace formatter. Everything they emit feeds a golden cmp.
var criticalBases = map[string]bool{
	"sim":      true,
	"rtm":      true,
	"fleet":    true,
	"workload": true,
	"trace":    true,
}

// DefaultCritical is the repo's classification: a package is
// determinism-critical when its import path ends in internal/<base> for
// one of the critical base names. Examples and CLIs that merely *use*
// those packages (examples/fleet, cmd/fleetsim) are presentation code,
// not simulation state, and stay out.
func DefaultCritical(pkgPath string) bool {
	i := strings.LastIndexByte(pkgPath, '/')
	if i < 0 {
		return false
	}
	base := pkgPath[i+1:]
	if !criticalBases[base] {
		return false
	}
	parent := pkgPath[:i]
	return parent == "internal" || strings.HasSuffix(parent, "/internal")
}

// DefaultSuite returns the full analyzer suite with the repo's critical-
// package classification.
func DefaultSuite() *Suite {
	return &Suite{
		Analyzers: []*Analyzer{RangeMap, WallClock, GlobalRand, HotAlloc, Directive},
		Critical:  DefaultCritical,
	}
}

// knownAnalyzers is the set of names a //detlint:allow directive may name.
var knownAnalyzers = map[string]bool{
	"rangemap":   true,
	"wallclock":  true,
	"globalrand": true,
	"hotalloc":   true,
	"directive":  true,
}

// Run executes every analyzer over every package and returns the combined
// diagnostics sorted by file, line, column and analyzer.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	critical := s.Critical
	if critical == nil {
		critical = DefaultCritical
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := indexDirectives(pkg)
		for _, a := range s.Analyzers {
			pass := &Pass{
				Pkg:      pkg,
				Critical: critical(pkg.Path),
				analyzer: a.Name,
				dirs:     dirs,
				out:      &out,
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
