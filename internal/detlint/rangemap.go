package detlint

import (
	"go/ast"
	"go/types"
)

// RangeMap flags `for … range` over map-typed values in determinism-
// critical packages. Go randomises map iteration order per run, so any map
// range whose body's effect depends on visit order breaks the same-seed →
// same-bytes invariant — PR 1's rtm.Replan fix was exactly this bug.
//
// One shape is recognised as clean without a directive: the sorted-keys
// idiom, a key-only range whose body is exactly `keys = append(keys, k)` —
// collecting keys for a subsequent sort is order-independent by
// construction. Everything else needs `//detlint:ordered <reason>` on the
// range statement.
var RangeMap = &Analyzer{
	Name: "rangemap",
	Doc:  "flag map iteration in determinism-critical packages",
	Run:  runRangeMap,
}

func runRangeMap(pass *Pass) {
	if !pass.Critical {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isSortedKeysIdiom(info, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map (%s) in determinism-critical package: iteration order is randomised per run; sort keys first or annotate with //detlint:ordered <reason>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
			return true
		})
	}
}

// isSortedKeysIdiom recognises the key-collection loop that feeds a sort:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// Key-only (no value binding), and the body is a single append of the key
// variable back onto the same slice it assigns (a plain variable or a
// field path like g.platforms). Map values are never read, so the loop's
// effect is the key *set*, not the visit order.
func isSortedKeysIdiom(info *types.Info, rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || !isBuiltin(info, fun, "append") {
		return false
	}
	// append's destination and the assignment target must be the same
	// storage path, and the appended element must be the range key.
	elemObj := identObj(info, call.Args[1])
	keyObj := info.Defs[keyIdent]
	return keyObj != nil && elemObj == keyObj &&
		samePath(info, assign.Lhs[0], call.Args[0])
}

// samePath reports whether two expressions are the identical simple
// storage path: the same variable, or the same selector chain over the
// same objects (keys vs k.e.y.s is resolved by object identity, not
// spelling).
func samePath(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		oa, ob := identObj(info, a), identObj(info, bi)
		return oa != nil && oa == ob
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		oa, ob := info.Uses[a.Sel], info.Uses[bs.Sel]
		if oa == nil || oa != ob {
			return false
		}
		return samePath(info, a.X, bs.X)
	default:
		return false
	}
}

// identObj resolves a plain identifier expression to its object (nil for
// anything more structured).
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isBuiltin reports whether an identifier resolves to the named builtin.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
