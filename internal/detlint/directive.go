package detlint

import (
	"go/ast"
	"strings"
)

// Directive comments steer the suite:
//
//	//detlint:ordered <reason>   suppress rangemap on this (or the next) line
//	//detlint:allow <analyzer> <reason>
//	                             suppress any analyzer on this (or the next) line
//	//detlint:hotpath [note]     opt a function into the hotalloc checks
//	                             (placed in the function's doc comment)
//
// Suppressions require a reason: an unexplained exemption is itself a
// diagnostic (the directive analyzer), so every hole punched in an
// invariant carries its justification in the source.

const directivePrefix = "//detlint:"

// parsedDirective is one //detlint: comment, split into its parts.
type parsedDirective struct {
	comment *ast.Comment
	verb    string // "ordered", "allow", "hotpath", or anything (checked later)
	args    string // text after the verb, space-trimmed
}

// parseDirective splits a comment into a directive, or returns ok=false
// for ordinary comments.
func parseDirective(c *ast.Comment) (parsedDirective, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return parsedDirective{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	return parsedDirective{comment: c, verb: verb, args: strings.TrimSpace(args)}, true
}

// directiveIndex records, per file and analyzer, which lines carry a
// suppression. A directive suppresses its own line (trailing-comment form)
// and the line below it (own-line form).
type directiveIndex struct {
	// suppress[analyzer][file] = set of suppressed lines
	suppress map[string]map[string]map[int]bool
	// all holds every parsed directive for the hygiene pass.
	all []parsedDirective
}

func (ix *directiveIndex) add(analyzer, file string, line int) {
	byFile := ix.suppress[analyzer]
	if byFile == nil {
		byFile = map[string]map[int]bool{}
		ix.suppress[analyzer] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = map[int]bool{}
		byFile[file] = lines
	}
	lines[line] = true
	lines[line+1] = true
}

func (ix *directiveIndex) suppressed(analyzer, file string, line int) bool {
	return ix.suppress[analyzer][file][line]
}

// indexDirectives scans a package's comments once, building the
// suppression index shared by every analyzer's Reportf.
func indexDirectives(pkg *Package) *directiveIndex {
	ix := &directiveIndex{suppress: map[string]map[string]map[int]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				ix.all = append(ix.all, d)
				pos := pkg.Fset.Position(c.Pos())
				switch d.verb {
				case "ordered":
					if d.args != "" {
						ix.add("rangemap", pos.Filename, pos.Line)
					}
				case "allow":
					name, reason, _ := strings.Cut(d.args, " ")
					if knownAnalyzers[name] && strings.TrimSpace(reason) != "" {
						ix.add(name, pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return ix
}

// hotpathDirective reports whether a function's doc comment opts it into
// the hotalloc analyzer.
func hotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.verb == "hotpath" {
			return true
		}
	}
	return false
}

// Directive is the hygiene pass over //detlint: comments themselves:
// unknown verbs, suppressions missing their mandatory reason, and allow
// directives naming unknown analyzers are all diagnostics — a malformed
// directive silently suppressing nothing (or everything) would defeat the
// suite.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "validate //detlint: directives (verbs known, reasons present)",
	Run:  runDirective,
}

func runDirective(pass *Pass) {
	dirs := pass.dirs
	for _, d := range dirs.all {
		pos := d.comment.Pos()
		switch d.verb {
		case "hotpath":
			// No mandatory arguments: the marker is the contract.
		case "ordered":
			if d.args == "" {
				pass.Reportf(pos, "detlint:ordered requires a reason explaining why this map iteration is order-independent")
			}
		case "allow":
			name, reason, _ := strings.Cut(d.args, " ")
			if name == "" {
				pass.Reportf(pos, "detlint:allow requires an analyzer name and a reason")
				continue
			}
			if !knownAnalyzers[name] {
				pass.Reportf(pos, "detlint:allow names unknown analyzer %q (known: directive, globalrand, hotalloc, rangemap, wallclock)", name)
				continue
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "detlint:allow %s requires a reason explaining the exemption", name)
			}
		default:
			pass.Reportf(pos, "unknown detlint directive %q (known: allow, hotpath, ordered)", d.verb)
		}
	}
}
