package detlint

import (
	"go/types"
)

// WallClock flags wall-clock reads and sleeps in determinism-critical
// packages. The simulation owns its clock (Engine.now advances event by
// event); a time.Now or time.Sleep in sim/rtm/fleet/workload/trace couples
// results to the host's scheduler and breaks same-seed → same-bytes.
// Orchestration code that supervises real OS processes legitimately needs
// wall time — those sites carry `//detlint:allow wallclock <reason>`.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag wall-clock use in determinism-critical packages",
	Run:  runWallClock,
}

// wallClockFuncs are the package-level time functions that read or depend
// on the host clock. Pure constructors/converters (time.Duration math,
// time.Unix, time.Date) are deterministic and stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWallClock(pass *Pass) {
	if !pass.Critical {
		return
	}
	for id, obj := range pass.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if !wallClockFuncs[fn.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"time.%s in determinism-critical package: the simulation owns its clock; use simulated time, or //detlint:allow wallclock <reason> for real-process supervision",
			fn.Name())
	}
}

// GlobalRand flags package-level math/rand functions anywhere outside
// tests. The global generator is shared mutable state seeded from the
// runtime: two goroutines interleave draws, and a library init can burn
// values — either silently changes every downstream byte. All randomness
// must flow through an explicitly seeded *rand.Rand (methods on a *Rand
// value are fine; rand.New/NewSource are the seam and stay legal).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flag package-level math/rand use outside tests",
	Run:  runGlobalRand,
}

// globalRandExempt are the constructors that build the explicitly seeded
// generator the rest of the API is forbidden in favour of.
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runGlobalRand(pass *Pass) {
	for id, obj := range pass.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if globalRandExempt[fn.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"package-level rand.%s uses the shared global generator: all randomness must flow through an explicitly seeded *rand.Rand",
			fn.Name())
	}
}
