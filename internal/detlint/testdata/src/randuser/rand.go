// Package randuser is a fixture for globalrand, which applies to every
// non-test package: randomness must flow through a seeded *rand.Rand.
package randuser

import "math/rand"

// GlobalDraws use the shared global generator: flagged.
func GlobalDraws() (int, float64) {
	n := rand.Intn(10)                 // want `package-level rand\.Intn`
	f := rand.Float64()                // want `package-level rand\.Float64`
	rand.Shuffle(n, func(i, j int) {}) // want `package-level rand\.Shuffle`
	return n, f
}

// SeededDraws go through an explicit *rand.Rand: methods are clean, and
// rand.New/rand.NewSource are the legal seam that builds one.
func SeededDraws(seed int64) (int, float64) {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10), r.Float64()
}

// AllowedGlobal carries a reasoned exemption.
func AllowedGlobal() int {
	//detlint:allow globalrand fixture exercises the suppression path
	return rand.Int()
}
