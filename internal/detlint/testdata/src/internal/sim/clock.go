// clock.go is the second file of the sim fixture package: multi-file
// packages must type-check as a unit and report per-file positions.
package sim

import "time"

// WallRead reads the host clock in a critical package.
func WallRead() time.Time {
	return time.Now() // want `time\.Now in determinism-critical package`
}

// WallWait sleeps and measures on the host clock.
func WallWait(start time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want `time\.Sleep`
	return time.Since(start)     // want `time\.Since`
}

// DeterministicTime uses only pure constructors/arithmetic: clean.
func DeterministicTime() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

// AllowedWall carries a reasoned exemption.
func AllowedWall() time.Time {
	//detlint:allow wallclock fixture exercises the suppression path
	return time.Now()
}

// crossFile uses a type declared in maps.go: the two files really are one
// type-checked package.
func crossFile(s stats) int { return s.n }
