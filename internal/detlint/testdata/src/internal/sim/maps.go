// Package sim is a fixture: its import path ends in internal/sim, so the
// determinism-critical analyzers (rangemap, wallclock) apply. Lines carry
// `// want "regex"` expectations consumed by the detlint self-test.
package sim

import "sort"

type stats struct{ n int }

// Flagged reads map values in visit order: the canonical determinism bug.
func Flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map \(map\[string\]int\)`
		total += v
	}
	return total
}

// SortedKeysIdiom collects keys for a sort: recognised as clean.
func SortedKeysIdiom(m map[string]stats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NestedIdiom is the sorted-keys idiom nested inside another loop — still
// clean: nesting does not change the inner loop's order-independence.
func NestedIdiom(ms []map[string]int) [][]string {
	var out [][]string
	for _, m := range ms {
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, keys)
	}
	return out
}

type collector struct{ names []string }

// FieldIdiom appends keys onto a field path: the idiom also covers
// selector-chain targets (c.names = append(c.names, k)).
func (c *collector) FieldIdiom(m map[string]int) {
	for k := range m {
		c.names = append(c.names, k)
	}
	sort.Strings(c.names)
}

// NotQuiteIdiom appends a *derived* value, not the key itself: flagged.
func NotQuiteIdiom(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, "k="+k)
	}
	sort.Strings(out)
	return out
}

// Suppressed carries a reasoned directive on its own line.
func Suppressed(m map[string]int) int {
	n := 0
	//detlint:ordered pure count accumulation; visit order cannot change the sum
	for range m {
		n++
	}
	return n
}

// SuppressedTrailing carries the directive as a trailing comment.
func SuppressedTrailing(dst, src map[string]int) {
	for k, v := range src { //detlint:ordered map-to-map copy is order-independent
		dst[k] = v
	}
}

// MissingReason's directive has no reason: the directive itself is a
// diagnostic AND the suppression does not take effect.
func MissingReason(m map[string]int) {
	//detlint:ordered
	// want-1 `detlint:ordered requires a reason`
	for k := range m { // want `range over map`
		_ = k
	}
}
