// Package trace is a fixture for directive hygiene: malformed //detlint:
// comments are diagnostics themselves. (The package path ends in
// internal/trace, so it is also determinism-critical — irrelevant here,
// the directive analyzer runs everywhere.)
package trace

//detlint:frobnicate whatever
// want-1 `unknown detlint directive "frobnicate"`

//detlint:allow nosuchanalyzer because reasons
// want-1 `unknown analyzer "nosuchanalyzer"`

//detlint:allow wallclock
// want-1 `detlint:allow wallclock requires a reason`

//detlint:allow
// want-1 `detlint:allow requires an analyzer name and a reason`

// Format formats a value; the directives above are free-floating comments
// so the file stays otherwise clean.
func Format(v int) int { return v + 1 }
