// Package hot is a fixture for hotalloc: allocation constructs are only
// flagged inside functions whose doc comment carries //detlint:hotpath.
package hot

import "fmt"

type ring struct {
	buf []int
}

// Unmarked does everything hotalloc hates, but carries no hotpath
// directive: clean.
func Unmarked(parts []string) string {
	s := fmt.Sprintf("%d parts", len(parts))
	for _, p := range parts {
		s = s + "," + p
	}
	return s
}

// FmtOnHot formats on a hot free function.
//
//detlint:hotpath
func FmtOnHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates on a //detlint:hotpath function`
}

// ErrOnHot builds an error on a hot function.
//
//detlint:hotpath
func ErrOnHot(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) // want `fmt\.Errorf allocates`
	}
	return nil
}

// ConcatOnHot concatenates non-constant strings on a hot METHOD — the
// directive must work on methods exactly as on free functions.
//
//detlint:hotpath
func (r *ring) ConcatOnHot(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// ConstConcat folds at compile time: clean even on a hot path.
//
//detlint:hotpath
func ConstConcat() string {
	return "a" + "b" + "c"
}

// IfaceEscape passes a composite literal through an interface.
//
//detlint:hotpath
func IfaceEscape(sink func(any)) {
	sink([2]int{1, 2}) // want `composite literal .* escapes to the heap`
}

// GrowLocal appends to a local slice with no capacity hint.
//
//detlint:hotpath
func GrowLocal(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want `append to non-parameter slice without a capacity hint`
	}
	return out
}

// GrowParam appends into a caller-supplied buffer: clean — the caller
// owns the allocation.
//
//detlint:hotpath
func GrowParam(dst, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x*2)
	}
	return dst
}

// GrowReceiver appends to receiver-owned storage: clean.
//
//detlint:hotpath
func (r *ring) GrowReceiver(x int) {
	r.buf = append(r.buf, x)
}

// GrowHinted makes the local with explicit capacity: clean.
//
//detlint:hotpath
func GrowHinted(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// GrowArrayBacked slices a local array: clean — the backing store is on
// the stack.
//
//detlint:hotpath
func GrowArrayBacked(xs []int) []int {
	var arr [8]int
	out := arr[:0]
	for _, x := range xs {
		if len(out) == cap(out) {
			break
		}
		out = append(out, x)
	}
	return out
}

// AllowedAlloc carries a reasoned exemption for a cold branch.
//
//detlint:hotpath
func AllowedAlloc(n int) error {
	if n < 0 {
		//detlint:allow hotalloc one-time validation; never hit in steady state
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}
