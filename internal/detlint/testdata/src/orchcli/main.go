// Package orchcli is a fixture for the allowlist boundary: its path does
// NOT end in internal/<critical>, so wall-clock reads and map ranges are
// legal here — orchestrators and CLIs live in host time.
package orchcli

import "time"

// Supervise polls with real time: clean outside critical packages.
func Supervise(deadline time.Time) bool {
	time.Sleep(time.Millisecond)
	return time.Now().After(deadline)
}

// PrintAll ranges a map without ceremony: clean outside critical packages.
func PrintAll(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
