package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader is stdlib-only: it discovers the module root itself, expands
// `./...`-style patterns by walking directories, parses each package with
// go/parser and type-checks it with go/types. Imports inside the module
// resolve recursively through the same loader; everything else (the
// standard library) goes through the compiler-independent source importer.
// Test files (_test.go) are never loaded — the suite's invariants govern
// shipped code, and fixture corpora live under testdata, which the walk
// skips like the go tool does.

// Config points the loader at a module.
type Config struct {
	// Dir is the directory patterns are resolved from. When ModRoot is
	// empty the loader finds the enclosing go.mod from here. Defaults to
	// the current directory.
	Dir string
	// ModRoot / ModPath override module discovery — the fixture corpus
	// under testdata has no go.mod, so its tests load it as a synthetic
	// module.
	ModRoot string
	ModPath string
}

// Load parses and type-checks the packages matched by patterns (`./...`,
// `dir/...`, or plain directories), returning them sorted by import path.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath := cfg.ModRoot, cfg.ModPath
	if modRoot == "" {
		modRoot, modPath, err = findModule(absDir)
		if err != nil {
			return nil, err
		}
	} else if modRoot, err = filepath.Abs(modRoot); err != nil {
		return nil, err
	}
	if modPath == "" {
		return nil, fmt.Errorf("detlint: module path unknown for %s", modRoot)
	}

	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(d, path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("detlint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("detlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns to package directories, in
// deterministic sorted order. A trailing `/...` walks recursively; walking
// skips testdata, vendor, and hidden or underscore-prefixed directories,
// matching the go tool.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("detlint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("detlint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("detlint: no Go files in %s", root)
			}
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// loader parses and type-checks packages, resolving module-internal
// imports itself and delegating the rest to the source importer. It also
// implements types.Importer so the type checker calls back into it.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = in progress
	loading []string            // import stack, for cycle reporting
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("detlint: %s is outside module root %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
		pkg, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package directory (memoised by import
// path).
func (l *loader) load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("detlint: import cycle through %s (stack: %s)",
				path, strings.Join(l.loading, " -> "))
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // mark in progress
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("detlint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-10))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("detlint: type-checking %s failed:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("detlint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
