package detlint

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The suite is regression-tested against a fixture corpus under
// testdata/src, loaded as a synthetic module named "fixture". Expectations
// live in the fixtures as comments:
//
//	expr // want `regex`
//
// anchors a diagnostic to the comment's own line. A directive-hygiene
// diagnostic lands on a comment-only line that cannot carry a second `//`
// comment, so the offset form anchors relative to the comment:
//
//	//detlint:ordered
//	// want-1 `detlint:ordered requires a reason`
//
// Every diagnostic must match exactly one pending want on its (file, line)
// and every want must be consumed — unexpected findings and silent misses
// both fail.

var wantRE = regexp.MustCompile("^want([+-][0-9]+)? `([^`]+)`$")

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// collectWants scans the loaded fixture files for want comments.
func collectWants(t *testing.T, pkgs []*Package) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want") {
						continue
					}
					m := wantRE.FindStringSubmatch(text)
					if m == nil {
						t.Fatalf("%s: malformed want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
					}
					offset := 0
					if m[1] != "" {
						var err error
						offset, err = strconv.Atoi(m[1])
						if err != nil {
							t.Fatalf("%s: bad want offset %q", pkg.Fset.Position(c.Pos()), m[1])
						}
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", pkg.Fset.Position(c.Pos()), m[2], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantComment{
						file: pos.Filename,
						line: pos.Line + offset,
						re:   re,
						raw:  m[2],
					})
				}
			}
		}
	}
	return wants
}

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(Config{Dir: "testdata/src", ModRoot: "testdata/src", ModPath: "fixture"}, "./...")
	if err != nil {
		t.Fatalf("loading fixture corpus: %v", err)
	}
	return pkgs
}

func TestFixtureCorpus(t *testing.T) {
	pkgs := loadFixtures(t)

	// The corpus must cover both sides of the critical boundary.
	paths := map[string]bool{}
	for _, pkg := range pkgs {
		paths[pkg.Path] = true
	}
	for _, p := range []string{"fixture/internal/sim", "fixture/internal/trace", "fixture/orchcli", "fixture/randuser", "fixture/hot"} {
		if !paths[p] {
			t.Fatalf("fixture corpus missing package %s (loaded: %v)", p, paths)
		}
	}

	wants := collectWants(t, pkgs)
	if len(wants) == 0 {
		t.Fatal("no want comments found: the expectation parser is broken")
	}
	diags := DefaultSuite().Run(pkgs)
	if len(diags) == 0 {
		t.Fatal("no diagnostics on the fixture corpus: the suite is broken")
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected a diagnostic matching `%s`, got none", w.file, w.line, w.raw)
		}
	}
}

func TestDefaultCritical(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/emlrtm/emlrtm/internal/sim", true},
		{"github.com/emlrtm/emlrtm/internal/rtm", true},
		{"github.com/emlrtm/emlrtm/internal/fleet", true},
		{"github.com/emlrtm/emlrtm/internal/workload", true},
		{"github.com/emlrtm/emlrtm/internal/trace", true},
		{"fixture/internal/sim", true},
		// The tooling itself is not simulation state.
		{"github.com/emlrtm/emlrtm/internal/detlint", false},
		// Presentation code that merely uses critical packages stays out.
		{"github.com/emlrtm/emlrtm/examples/fleet", false},
		{"github.com/emlrtm/emlrtm/cmd/fleetsim", false},
		// A critical base name alone is not enough: it must sit under internal.
		{"sim", false},
		{"pkg/sim", false},
		{"internal/sim", true},
	}
	for _, c := range cases {
		if got := DefaultCritical(c.path); got != c.want {
			t.Errorf("DefaultCritical(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestRepoIsClean is the enforcement test: the repository's own sources
// must carry zero findings. A new map range, wall-clock read or hot-path
// allocation fails this test (and the static-analysis CI job) until it is
// either fixed or annotated with a reasoned directive.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load(Config{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded (%d): loader regression?", len(pkgs))
	}
	diags := DefaultSuite().Run(pkgs)
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}
