package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-alloc contract on functions opted in with a
// `//detlint:hotpath` directive in their doc comment (the engine's event
// loop and heap sifts, SnapshotInto/CloneInto, the planState planning
// machinery, StateKey). Inside a marked function it flags the constructs
// that reliably allocate:
//
//   - fmt.Sprintf / fmt.Errorf (and Sprint/Sprintln) — always allocate the
//     result string, and box every operand through ...any;
//   - non-constant string concatenation — every `+` on strings builds a
//     new string (constant-folded concatenations are free and stay legal);
//   - composite literals escaping into an interface — passing, assigning,
//     returning or converting `T{…}` / `&T{…}` where an interface is
//     expected heap-allocates the value;
//   - append to a slice that is neither parameter-owned (the reusable-
//     buffer idiom: caller passes the buffer in, or it hangs off the
//     receiver) nor derived from a capacity hint (`make` with capacity, or
//     slicing a fixed-size array) — growth in steady state.
//
// The checks cover the marked function's own body, not its callees: the
// alloc budget for a whole path is still pinned by AllocsPerRun tests;
// hotalloc catches the regressions at the line that introduces them.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs in //detlint:hotpath functions",
	Run:  runHotAlloc,
}

// fmtAllocFuncs are the fmt formatters that always allocate.
var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Errorf":   true,
	"Sprint":   true,
	"Sprintln": true,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathDirective(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	h := &hotChecker{
		pass:   pass,
		info:   info,
		params: paramObjects(info, fd),
		// coveredAdds suppresses one-report-per-operand on chained a+b+c.
		coveredAdds: map[*ast.BinaryExpr]bool{},
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.BinaryExpr:
			h.checkStringConcat(n)
		case *ast.AssignStmt:
			h.checkAssignInterface(n)
		case *ast.ValueSpec:
			h.checkValueSpecInterface(n)
		case *ast.ReturnStmt:
			h.checkReturnInterface(n, fd)
		case *ast.FuncLit:
			// A closure has its own parameters and allocation story; it is
			// not part of the marked function's steady-state loop body
			// budget unless marked itself (function literals cannot carry
			// doc directives, so they are out of scope).
			return false
		}
		return true
	})
}

type hotChecker struct {
	pass        *Pass
	info        *types.Info
	params      map[types.Object]bool
	coveredAdds map[*ast.BinaryExpr]bool
}

// paramObjects collects the objects bound to a function's parameters,
// results and receiver — the caller-owned storage append may grow.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	return out
}

// localInit resolves the initialiser of a local object by scanning the
// enclosing function body on demand (bodies are small; hot functions
// doubly so). Tuple assignments resolve index to index; multi-value calls
// stay unresolved (unknown storage).
func (h *hotChecker) localInit(obj types.Object, body *ast.BlockStmt) ast.Expr {
	var init ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && h.defOrUse(id) == obj {
						if n.Tok == token.DEFINE || init == nil {
							init = n.Rhs[i]
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if h.info.Defs[name] == obj && i < len(n.Values) {
					init = n.Values[i]
				}
			}
		}
		return true
	})
	return init
}

func (h *hotChecker) defOrUse(id *ast.Ident) types.Object {
	if obj := h.info.Defs[id]; obj != nil {
		return obj
	}
	return h.info.Uses[id]
}

// checkCall handles fmt formatters, interface-escaping composite-literal
// arguments, interface conversions, and append-target classification.
func (h *hotChecker) checkCall(call *ast.CallExpr) {
	// fmt.Sprintf / fmt.Errorf family.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := h.info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
			h.pass.Reportf(call.Pos(), "fmt.%s allocates on a //detlint:hotpath function", fn.Name())
		}
	}

	// Explicit conversion to an interface type: any(T{…}), error(&E{…}).
	if tv, ok := h.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) && isCompositeLit(call.Args[0]) {
			h.pass.Reportf(call.Args[0].Pos(),
				"composite literal converted to interface %s escapes to the heap on a //detlint:hotpath function",
				types.TypeString(tv.Type, types.RelativeTo(h.pass.Pkg.Types)))
		}
		return // a conversion is not a call; no params, no append
	}

	// append target classification.
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(h.info, id, "append") && len(call.Args) > 0 {
		h.checkAppendTarget(call)
		return
	}

	// Composite-literal arguments landing in interface parameters.
	sig, ok := h.info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if !isCompositeLit(arg) {
			continue
		}
		pt := paramType(sig, i)
		if pt != nil && types.IsInterface(pt) {
			h.pass.Reportf(arg.Pos(),
				"composite literal passed as interface %s escapes to the heap on a //detlint:hotpath function",
				types.TypeString(pt, types.RelativeTo(h.pass.Pkg.Types)))
		}
	}
}

// paramType returns the type of parameter i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isCompositeLit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// checkStringConcat flags non-constant string `+`. Only the outermost add
// of a chain reports; its nested adds are marked covered.
func (h *hotChecker) checkStringConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD || h.coveredAdds[be] {
		return
	}
	tv, ok := h.info.Types[be]
	if !ok {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time: free
	}
	h.pass.Reportf(be.OpPos, "string concatenation allocates on a //detlint:hotpath function")
	// Cover nested adds so a+b+c reports once.
	ast.Inspect(be, func(n ast.Node) bool {
		if nested, ok := n.(*ast.BinaryExpr); ok && nested != be && nested.Op == token.ADD {
			h.coveredAdds[nested] = true
		}
		return true
	})
}

// checkAssignInterface flags composite literals assigned into interface-
// typed destinations.
func (h *hotChecker) checkAssignInterface(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isCompositeLit(rhs) {
			continue
		}
		lt := h.info.TypeOf(as.Lhs[i])
		if lt != nil && types.IsInterface(lt) {
			h.pass.Reportf(rhs.Pos(),
				"composite literal assigned to interface %s escapes to the heap on a //detlint:hotpath function",
				types.TypeString(lt, types.RelativeTo(h.pass.Pkg.Types)))
		}
	}
}

func (h *hotChecker) checkValueSpecInterface(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	dt := h.info.TypeOf(vs.Type)
	if dt == nil || !types.IsInterface(dt) {
		return
	}
	for _, v := range vs.Values {
		if isCompositeLit(v) {
			h.pass.Reportf(v.Pos(),
				"composite literal assigned to interface %s escapes to the heap on a //detlint:hotpath function",
				types.TypeString(dt, types.RelativeTo(h.pass.Pkg.Types)))
		}
	}
}

func (h *hotChecker) checkReturnInterface(rs *ast.ReturnStmt, fd *ast.FuncDecl) {
	results := fd.Type.Results
	if results == nil || len(rs.Results) == 0 {
		return
	}
	// Walk the result fields in parallel with the returned expressions;
	// a bare `return` with named results has nothing to check.
	i := 0
	for _, field := range results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		ft := h.info.TypeOf(field.Type)
		for k := 0; k < n && i < len(rs.Results); k++ {
			if ft != nil && types.IsInterface(ft) && isCompositeLit(rs.Results[i]) {
				h.pass.Reportf(rs.Results[i].Pos(),
					"composite literal returned as interface %s escapes to the heap on a //detlint:hotpath function",
					types.TypeString(ft, types.RelativeTo(h.pass.Pkg.Types)))
			}
			i++
		}
	}
}

// checkAppendTarget classifies append's destination. Parameter-owned
// storage (the reusable-buffer idiom) and capacity-hinted locals are the
// two legal shapes; anything else grows an unsized heap slice in the hot
// path.
func (h *hotChecker) checkAppendTarget(call *ast.CallExpr) {
	if h.appendTargetOK(call.Args[0], 0) {
		return
	}
	h.pass.Reportf(call.Pos(),
		"append to non-parameter slice without a capacity hint on a //detlint:hotpath function (pass the buffer in, or make it with capacity)")
}

// appendTargetOK chases an append destination to its root: parameters,
// receivers and their fields are caller-owned; make(...) carries a
// capacity; slicing a fixed-size array is stack-bounded. Local variables
// are resolved through their initialiser, depth-limited so pathological
// chains terminate.
func (h *hotChecker) appendTargetOK(e ast.Expr, depth int) bool {
	if depth > 8 || e == nil {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := h.defOrUse(e)
		if obj == nil {
			return false
		}
		if h.params[obj] {
			return true
		}
		if init := h.lookupInit(obj); init != nil {
			return h.appendTargetOK(init, depth+1)
		}
		return false
	case *ast.SelectorExpr:
		// x.f: storage hanging off x — legal when x roots in a parameter
		// or receiver (sc.plan, s.Apps, h's backing array...).
		return h.rootIsParam(e.X, depth+1)
	case *ast.IndexExpr:
		return h.rootIsParam(e.X, depth+1)
	case *ast.StarExpr:
		return h.rootIsParam(e.X, depth+1)
	case *ast.SliceExpr:
		// y[:0] inherits y's storage; slicing an array is a capacity hint
		// in itself (the backing array is fixed-size, often stack).
		if t := h.info.TypeOf(e.X); t != nil {
			u := t.Underlying()
			if p, ok := u.(*types.Pointer); ok {
				u = p.Elem().Underlying()
			}
			if _, isArr := u.(*types.Array); isArr {
				return true
			}
		}
		return h.appendTargetOK(e.X, depth+1)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			// make([]T, n, c): Args[0] is the type, so an explicit
			// capacity means three arguments.
			if isBuiltin(h.info, id, "make") && len(e.Args) >= 3 {
				return true
			}
			if isBuiltin(h.info, id, "append") && len(e.Args) > 0 {
				return h.appendTargetOK(e.Args[0], depth+1)
			}
		}
		return false
	default:
		return false
	}
}

// lookupInit finds obj's initialiser by locating its enclosing function
// body and scanning it.
func (h *hotChecker) lookupInit(obj types.Object) ast.Expr {
	for _, f := range h.pass.Pkg.Files {
		if f.Pos() <= obj.Pos() && obj.Pos() < f.End() {
			var body *ast.BlockStmt
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil &&
					fd.Body.Pos() <= obj.Pos() && obj.Pos() < fd.Body.End() {
					body = fd.Body
				}
				return true
			})
			if body != nil {
				return h.localInit(obj, body)
			}
		}
	}
	return nil
}

// rootIsParam chases a selector/index/deref chain to its base identifier
// and reports whether it is a parameter or receiver.
func (h *hotChecker) rootIsParam(e ast.Expr, depth int) bool {
	if depth > 8 || e == nil {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := h.defOrUse(e)
		if obj == nil {
			return false
		}
		if h.params[obj] {
			return true
		}
		if init := h.lookupInit(obj); init != nil {
			return h.rootIsParam(init, depth+1)
		}
		return false
	case *ast.SelectorExpr:
		return h.rootIsParam(e.X, depth+1)
	case *ast.IndexExpr:
		return h.rootIsParam(e.X, depth+1)
	case *ast.StarExpr:
		return h.rootIsParam(e.X, depth+1)
	case *ast.SliceExpr:
		return h.rootIsParam(e.X, depth+1)
	default:
		return false
	}
}
