package hw

import (
	"fmt"
	"math"
)

// ThermalParams is a lumped RC thermal model of the SoC package:
//
//	dT/dt = P/Cth − (T − Tamb)/(Rth·Cth)
//
// Steady state is Tamb + Rth·P. ThrottleC is the soft trip point the
// runtime manager must respect (the Fig 2(c) event: "the temperature of
// the SoC exceeds thermal limits"); CriticalC is the hardware emergency
// trip that the simulator reports as a violation.
type ThermalParams struct {
	RthKPerW  float64
	CthJPerK  float64
	ThrottleC float64
	CriticalC float64
}

// Validate reports parameter errors.
func (t ThermalParams) Validate() error {
	switch {
	case t.RthKPerW <= 0 || t.CthJPerK <= 0:
		return fmt.Errorf("hw: thermal RC must be positive, got R=%f C=%f", t.RthKPerW, t.CthJPerK)
	case t.CriticalC <= t.ThrottleC:
		return fmt.Errorf("hw: critical %f must exceed throttle %f", t.CriticalC, t.ThrottleC)
	}
	return nil
}

// SteadyStateC returns the equilibrium temperature at constant power P
// (watts) and the given ambient.
func (t ThermalParams) SteadyStateC(ambientC, powerW float64) float64 {
	return ambientC + t.RthKPerW*powerW
}

// PowerBudgetW returns the maximum sustained power that keeps steady-state
// temperature at or below limitC.
func (t ThermalParams) PowerBudgetW(ambientC, limitC float64) float64 {
	b := (limitC - ambientC) / t.RthKPerW
	if b < 0 {
		return 0
	}
	return b
}

// ThermalState integrates the RC model over simulation time.
type ThermalState struct {
	TempC float64
}

// NewThermalState starts at ambient.
func NewThermalState(ambientC float64) *ThermalState {
	return &ThermalState{TempC: ambientC}
}

// Step advances the model by dt seconds under powerW total SoC power.
// It uses the exact exponential solution of the linear ODE so large steps
// remain stable.
func (s *ThermalState) Step(p ThermalParams, ambientC, powerW, dt float64) {
	if dt <= 0 {
		return
	}
	tau := p.RthKPerW * p.CthJPerK
	target := p.SteadyStateC(ambientC, powerW)
	// T(t+dt) = target + (T - target)·exp(-dt/τ)
	s.TempC = target + (s.TempC-target)*expNeg(dt/tau)
}

// expNeg computes e^(-x) with a guard for large x.
func expNeg(x float64) float64 {
	if x > 50 {
		return 0
	}
	return math.Exp(-x)
}
