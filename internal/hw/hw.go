// Package hw models the heterogeneous embedded platforms the paper
// evaluates on: multi-core CPU clusters with per-cluster DVFS, GPUs and
// NPUs, cluster power models, and a lumped RC thermal model.
//
// The paper's experiments ran on physical boards (Odroid XU3, Jetson Nano)
// with power sensors. This package substitutes analytic models whose
// constants are least-squares fitted to the paper's own Table I
// measurements (see catalog.go for the fits), so every downstream
// experiment exercises the same decision logic against the same numbers
// the paper reports.
package hw

import (
	"fmt"
	"math"
)

// CoreType identifies the kind of computing resource a cluster provides.
type CoreType string

// Core types appearing in the paper's platforms (Fig 1, Fig 2, Table I).
const (
	CoreA7  CoreType = "A7"  // Arm Cortex-A7 LITTLE CPU
	CoreA15 CoreType = "A15" // Arm Cortex-A15 big CPU
	CoreA57 CoreType = "A57" // Arm Cortex-A57 CPU (Jetson Nano)
	CoreBig CoreType = "BIG" // generic big CPU (flagship SoC)
	CoreLit CoreType = "LIT" // generic LITTLE CPU (flagship SoC)
	CoreGPU CoreType = "GPU"
	CoreNPU CoreType = "NPU"
	CoreDSP CoreType = "DSP"
)

// IsAccelerator reports whether the core type is a non-CPU accelerator.
func (t CoreType) IsAccelerator() bool {
	switch t {
	case CoreGPU, CoreNPU, CoreDSP:
		return true
	}
	return false
}

// OPP is one operating performance point of a voltage/frequency domain.
type OPP struct {
	FreqGHz  float64
	VoltageV float64
}

// PowerParams parametrise the cluster power model
//
//	P_busy = Ceff·V²·f·(activeCores/Cores)·util + Static
//	P_idle = Static
//
// with P in mW, V in volts, f in GHz. Ceff and Static are fitted to
// Table I of the paper (catalog.go documents each fit).
type PowerParams struct {
	CeffMWPerV2GHz float64
	StaticMW       float64
}

// Cluster is one voltage/frequency domain containing homogeneous cores
// (or one accelerator). All cores in a cluster share the OPP — the paper's
// observation that a core may be "available at a lower voltage/frequency
// due to other computing cores executing in the same voltage/frequency
// domain" falls out of this structure.
type Cluster struct {
	Name  string
	Type  CoreType
	Cores int
	OPPs  []OPP // ascending frequency
	Power PowerParams

	// RateMACsPerSecGHz is the effective multiply-accumulate throughput of
	// the whole cluster per GHz of clock, fitted from Table I latencies.
	RateMACsPerSecGHz float64
	// ParallelAlpha is the core-scaling exponent: allocating n of Cores
	// cores yields (n/Cores)^ParallelAlpha of the cluster rate.
	ParallelAlpha float64
	// FixedOverheadS is per-inference fixed time (pre/post-processing).
	FixedOverheadS float64
	// CompanionUtil is the utilisation an inference on this cluster
	// induces on a paired CPU cluster (accelerators need a host CPU for
	// pre-processing — the Jetson "GPU + A57" rows of Table I).
	CompanionUtil float64
	// CompanionName names the paired CPU cluster ("" = none).
	CompanionName string
	// MemBytes is accelerator-local memory (NPU SRAM); 0 means the
	// cluster uses shared DRAM with no co-location capacity constraint.
	MemBytes int64
}

// Validate reports structural errors in the cluster description.
func (c *Cluster) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("hw: cluster with empty name")
	case c.Cores < 1:
		return fmt.Errorf("hw: cluster %s has %d cores", c.Name, c.Cores)
	case len(c.OPPs) == 0:
		return fmt.Errorf("hw: cluster %s has no OPPs", c.Name)
	case c.RateMACsPerSecGHz <= 0:
		return fmt.Errorf("hw: cluster %s has non-positive rate", c.Name)
	case c.ParallelAlpha <= 0 || c.ParallelAlpha > 1:
		return fmt.Errorf("hw: cluster %s parallel alpha %f outside (0,1]", c.Name, c.ParallelAlpha)
	}
	prev := 0.0
	for i, o := range c.OPPs {
		if o.FreqGHz <= prev {
			return fmt.Errorf("hw: cluster %s OPP %d not ascending", c.Name, i)
		}
		if o.VoltageV <= 0 {
			return fmt.Errorf("hw: cluster %s OPP %d voltage %f", c.Name, i, o.VoltageV)
		}
		prev = o.FreqGHz
	}
	return nil
}

// MinOPP returns the lowest-frequency operating point.
func (c *Cluster) MinOPP() OPP { return c.OPPs[0] }

// MaxOPP returns the highest-frequency operating point.
func (c *Cluster) MaxOPP() OPP { return c.OPPs[len(c.OPPs)-1] }

// OPPIndexAtOrAbove returns the index of the slowest OPP with frequency
// >= f (clamped to the fastest OPP).
func (c *Cluster) OPPIndexAtOrAbove(fGHz float64) int {
	for i, o := range c.OPPs {
		if o.FreqGHz >= fGHz-1e-9 {
			return i
		}
	}
	return len(c.OPPs) - 1
}

// NearestOPPIndex returns the index of the OPP closest in frequency to f.
func (c *Cluster) NearestOPPIndex(fGHz float64) int {
	best, bestD := 0, math.Inf(1)
	for i, o := range c.OPPs {
		d := math.Abs(o.FreqGHz - fGHz)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// EffectiveRate returns the MAC/s throughput when n of the cluster's cores
// run at the given OPP. Accelerators always use n == Cores.
func (c *Cluster) EffectiveRate(opp OPP, n int) float64 {
	if n < 1 {
		return 0
	}
	if n > c.Cores {
		n = c.Cores
	}
	frac := math.Pow(float64(n)/float64(c.Cores), c.ParallelAlpha)
	return c.RateMACsPerSecGHz * opp.FreqGHz * frac
}

// BusyPowerMW returns cluster power with n cores active at the given
// utilisation (0..1), in mW.
func (c *Cluster) BusyPowerMW(opp OPP, n int, util float64) float64 {
	if n > c.Cores {
		n = c.Cores
	}
	if n < 0 {
		n = 0
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	dyn := c.Power.CeffMWPerV2GHz * opp.VoltageV * opp.VoltageV * opp.FreqGHz *
		(float64(n) / float64(c.Cores)) * util
	return dyn + c.Power.StaticMW
}

// IdlePowerMW returns cluster power with no work (static leakage only).
func (c *Cluster) IdlePowerMW() float64 { return c.Power.StaticMW }

// Platform is a complete SoC/board: a set of clusters sharing a thermal
// envelope and DRAM.
type Platform struct {
	Name     string
	Clusters []*Cluster
	Thermal  ThermalParams
	AmbientC float64
}

// Validate checks the platform and all clusters.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("hw: platform with empty name")
	}
	if len(p.Clusters) == 0 {
		return fmt.Errorf("hw: platform %s has no clusters", p.Name)
	}
	seen := map[string]bool{}
	for _, c := range p.Clusters {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("hw: platform %s duplicate cluster %s", p.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, c := range p.Clusters {
		if c.CompanionName != "" && p.Cluster(c.CompanionName) == nil {
			return fmt.Errorf("hw: cluster %s references unknown companion %s", c.Name, c.CompanionName)
		}
	}
	return p.Thermal.Validate()
}

// Cluster returns the named cluster, or nil.
func (p *Platform) Cluster(name string) *Cluster {
	for _, c := range p.Clusters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClustersOfType returns all clusters of the given core type.
func (p *Platform) ClustersOfType(t CoreType) []*Cluster {
	var out []*Cluster
	for _, c := range p.Clusters {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

// Companion resolves a cluster's companion CPU cluster, or nil.
func (p *Platform) Companion(c *Cluster) *Cluster {
	if c.CompanionName == "" {
		return nil
	}
	return p.Cluster(c.CompanionName)
}
