package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogPlatformsValidate(t *testing.T) {
	for name, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Fatalf("platform %s invalid: %v", name, err)
		}
	}
}

func TestOdroidOPPCountsMatchPaper(t *testing.T) {
	// Fig 4(a): "under 17 and 12 different frequency levels respectively"
	// for A15 and A7.
	p := OdroidXU3()
	if n := len(p.Cluster("a15").OPPs); n != 17 {
		t.Fatalf("A15 OPP count = %d, want 17", n)
	}
	if n := len(p.Cluster("a7").OPPs); n != 12 {
		t.Fatalf("A7 OPP count = %d, want 12", n)
	}
}

func TestOPPLaddersMonotone(t *testing.T) {
	for name, p := range Catalog() {
		for _, c := range p.Clusters {
			for i := 1; i < len(c.OPPs); i++ {
				if c.OPPs[i].FreqGHz <= c.OPPs[i-1].FreqGHz {
					t.Fatalf("%s/%s: OPP freq not ascending at %d", name, c.Name, i)
				}
				if c.OPPs[i].VoltageV < c.OPPs[i-1].VoltageV-1e-9 {
					t.Fatalf("%s/%s: voltage decreases with frequency at %d", name, c.Name, i)
				}
			}
		}
	}
}

func TestOPPLookups(t *testing.T) {
	c := OdroidXU3().Cluster("a15")
	if got := c.MinOPP().FreqGHz; math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("MinOPP = %f", got)
	}
	if got := c.MaxOPP().FreqGHz; math.Abs(got-1.8) > 1e-9 {
		t.Fatalf("MaxOPP = %f", got)
	}
	if i := c.OPPIndexAtOrAbove(1.0); math.Abs(c.OPPs[i].FreqGHz-1.0) > 1e-9 {
		t.Fatalf("OPPIndexAtOrAbove(1.0) -> %f", c.OPPs[i].FreqGHz)
	}
	if i := c.OPPIndexAtOrAbove(99); i != len(c.OPPs)-1 {
		t.Fatal("OPPIndexAtOrAbove must clamp to max")
	}
	if i := c.NearestOPPIndex(1.04); math.Abs(c.OPPs[i].FreqGHz-1.0) > 1e-9 {
		t.Fatalf("NearestOPPIndex(1.04) -> %f", c.OPPs[i].FreqGHz)
	}
}

// tableICase is one row of the paper's Table I.
type tableICase struct {
	platform string
	cluster  string
	fGHz     float64
	wantMs   float64
	wantMW   float64
	wantMJ   float64
}

var tableI = []tableICase{
	{"jetson-nano", "gpu", 0.614, 7.4, 1340, 9.92},
	{"jetson-nano", "gpu", 0.9216, 4.93, 2500, 12.3},
	{"jetson-nano", "a57", 0.921, 69.4, 878, 60.9},
	{"jetson-nano", "a57", 1.43, 46.9, 1490, 69.9},
	{"odroid-xu3", "a15", 0.2, 1020, 326, 320},
	{"odroid-xu3", "a15", 1.0, 204, 846, 173},
	{"odroid-xu3", "a15", 1.8, 117, 2120, 248},
	{"odroid-xu3", "a7", 0.2, 1780, 72.4, 129},
	{"odroid-xu3", "a7", 0.7, 504, 141, 71.4},
	{"odroid-xu3", "a7", 1.3, 280, 329, 92.1},
}

// TestTableICalibration verifies the fitted hardware models reproduce the
// paper's Table I within 5% on every cell (latency, power, energy).
func TestTableICalibration(t *testing.T) {
	cat := Catalog()
	for _, tc := range tableI {
		p := cat[tc.platform]
		c := p.Cluster(tc.cluster)
		opp := c.OPPs[c.NearestOPPIndex(tc.fGHz)]

		lat := c.FixedOverheadS + float64(ReferenceWorkloadMACs)/c.EffectiveRate(opp, c.Cores)
		pow := c.BusyPowerMW(opp, c.Cores, 1)
		if comp := p.Companion(c); comp != nil {
			// Table I GPU rows pair the GPU with a specific companion
			// frequency: 614 MHz GPU ↔ 921 MHz A57, 921 MHz GPU ↔ 1.43 GHz.
			compOPP := comp.OPPs[comp.NearestOPPIndex(tc.fGHz+0.4)]
			if tc.fGHz < 0.7 {
				compOPP = comp.OPPs[comp.NearestOPPIndex(0.921)]
			}
			pow += comp.BusyPowerMW(compOPP, comp.Cores, c.CompanionUtil) - comp.IdlePowerMW() + comp.IdlePowerMW()
		}
		energyMJ := pow * lat // mW × s = mJ

		checkWithin(t, tc.platform+"/"+tc.cluster+" latency", lat*1000, tc.wantMs, 0.05)
		checkWithin(t, tc.platform+"/"+tc.cluster+" power", pow, tc.wantMW, 0.05)
		checkWithin(t, tc.platform+"/"+tc.cluster+" energy", energyMJ, tc.wantMJ, 0.08)
	}
}

func checkWithin(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Fatalf("%s: got %.4g, want %.4g (±%.0f%%)", what, got, want, tol*100)
	}
}

func TestEffectiveRateScaling(t *testing.T) {
	c := OdroidXU3().Cluster("a15")
	opp := c.MaxOPP()
	full := c.EffectiveRate(opp, 4)
	one := c.EffectiveRate(opp, 1)
	if one >= full {
		t.Fatal("1 core cannot outrun 4 cores")
	}
	// Sub-linear scaling: 4 cores < 4× one core, > 2× one core.
	if full >= 4*one || full <= 2*one {
		t.Fatalf("parallel scaling implausible: full=%.3g one=%.3g", full, one)
	}
	if c.EffectiveRate(opp, 0) != 0 {
		t.Fatal("0 cores must have 0 rate")
	}
	if c.EffectiveRate(opp, 9) != full {
		t.Fatal("core count must clamp to cluster size")
	}
}

func TestBusyPowerProperties(t *testing.T) {
	f := func(seed int64) bool {
		c := OdroidXU3().Cluster("a15")
		i := int(uint64(seed) % uint64(len(c.OPPs)))
		opp := c.OPPs[i]
		util := float64(uint64(seed)%100) / 100
		p := c.BusyPowerMW(opp, 4, util)
		// Busy power >= idle power, monotone in util.
		if p < c.IdlePowerMW() {
			return false
		}
		return c.BusyPowerMW(opp, 4, 1) >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher frequency never lowers peak power, never lowers rate —
// the DVFS monotonicity invariant in DESIGN.md §7.
func TestDVFSMonotonicity(t *testing.T) {
	for name, p := range Catalog() {
		for _, c := range p.Clusters {
			for i := 1; i < len(c.OPPs); i++ {
				lo, hi := c.OPPs[i-1], c.OPPs[i]
				if c.EffectiveRate(hi, c.Cores) <= c.EffectiveRate(lo, c.Cores) {
					t.Fatalf("%s/%s: rate not increasing at OPP %d", name, c.Name, i)
				}
				if c.BusyPowerMW(hi, c.Cores, 1) <= c.BusyPowerMW(lo, c.Cores, 1) {
					t.Fatalf("%s/%s: busy power not increasing at OPP %d", name, c.Name, i)
				}
			}
		}
	}
}

func TestThermalSteadyStateAndStep(t *testing.T) {
	p := ThermalParams{RthKPerW: 10, CthJPerK: 2, ThrottleC: 70, CriticalC: 85}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.SteadyStateC(25, 3); got != 55 {
		t.Fatalf("steady state = %f, want 55", got)
	}
	if got := p.PowerBudgetW(25, 70); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("power budget = %f, want 4.5", got)
	}
	s := NewThermalState(25)
	// Integrate toward steady state: after 5τ the error must be < 1%.
	tau := p.RthKPerW * p.CthJPerK
	s.Step(p, 25, 3, 5*tau)
	if math.Abs(s.TempC-55) > 0.4 {
		t.Fatalf("after 5τ temp = %f, want ~55", s.TempC)
	}
	// Cooling: power removed, temperature must decay toward ambient.
	s.Step(p, 25, 0, 5*tau)
	if math.Abs(s.TempC-25) > 0.4 {
		t.Fatalf("cooling failed: %f", s.TempC)
	}
}

func TestThermalStepStability(t *testing.T) {
	// Exact exponential integration must be stable for any dt.
	p := ThermalParams{RthKPerW: 8, CthJPerK: 0.5, ThrottleC: 70, CriticalC: 85}
	s := NewThermalState(25)
	for i := 0; i < 100; i++ {
		s.Step(p, 25, 5, 1000) // huge steps
		if math.IsNaN(s.TempC) || s.TempC < 25 || s.TempC > 25+8*5+1 {
			t.Fatalf("unstable temperature %f", s.TempC)
		}
	}
}

func TestThermalValidateRejectsBad(t *testing.T) {
	bad := []ThermalParams{
		{RthKPerW: 0, CthJPerK: 1, ThrottleC: 70, CriticalC: 85},
		{RthKPerW: 1, CthJPerK: 0, ThrottleC: 70, CriticalC: 85},
		{RthKPerW: 1, CthJPerK: 1, ThrottleC: 85, CriticalC: 70},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("thermal params %d should be rejected", i)
		}
	}
}

func TestPlatformLookupsAndValidation(t *testing.T) {
	p := FlagshipSoC()
	if p.Cluster("npu") == nil || p.Cluster("missing") != nil {
		t.Fatal("Cluster lookup broken")
	}
	if got := len(p.ClustersOfType(CoreGPU)); got != 1 {
		t.Fatalf("ClustersOfType(GPU) = %d", got)
	}
	npu := p.Cluster("npu")
	if comp := p.Companion(npu); comp == nil || comp.Name != "cpu-lit" {
		t.Fatal("NPU companion must be cpu-lit")
	}
	if npu.MemBytes == 0 {
		t.Fatal("NPU must expose local memory for the Fig 2(d) constraint")
	}
	if !CoreNPU.IsAccelerator() || CoreA15.IsAccelerator() {
		t.Fatal("IsAccelerator misclassifies")
	}

	// Duplicate cluster names must be rejected.
	dup := &Platform{
		Name:     "dup",
		AmbientC: 25,
		Thermal:  ThermalParams{RthKPerW: 1, CthJPerK: 1, ThrottleC: 70, CriticalC: 85},
		Clusters: []*Cluster{
			{Name: "x", Type: CoreA7, Cores: 1, OPPs: []OPP{{1, 1}}, RateMACsPerSecGHz: 1, ParallelAlpha: 1},
			{Name: "x", Type: CoreA7, Cores: 1, OPPs: []OPP{{1, 1}}, RateMACsPerSecGHz: 1, ParallelAlpha: 1},
		},
	}
	if dup.Validate() == nil {
		t.Fatal("duplicate cluster names must be rejected")
	}
	// Unknown companion must be rejected.
	badComp := &Platform{
		Name:     "badcomp",
		AmbientC: 25,
		Thermal:  ThermalParams{RthKPerW: 1, CthJPerK: 1, ThrottleC: 70, CriticalC: 85},
		Clusters: []*Cluster{
			{Name: "g", Type: CoreGPU, Cores: 1, OPPs: []OPP{{1, 1}}, RateMACsPerSecGHz: 1, ParallelAlpha: 1, CompanionName: "nope"},
		},
	}
	if badComp.Validate() == nil {
		t.Fatal("unknown companion must be rejected")
	}
}

func TestCapabilityOrderingForScenario(t *testing.T) {
	// Fig 2 depends on NPU ≫ GPU ≫ big CPU ≫ LITTLE CPU at max OPPs.
	p := FlagshipSoC()
	rate := func(name string) float64 {
		c := p.Cluster(name)
		return c.EffectiveRate(c.MaxOPP(), c.Cores)
	}
	if !(rate("npu") > rate("gpu") && rate("gpu") > rate("cpu-big") && rate("cpu-big") > rate("cpu-lit")) {
		t.Fatalf("capability ordering broken: npu=%.3g gpu=%.3g big=%.3g lit=%.3g",
			rate("npu"), rate("gpu"), rate("cpu-big"), rate("cpu-lit"))
	}
}
