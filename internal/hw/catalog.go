package hw

// This file defines the platforms of the paper's evaluation, with model
// constants fitted to the paper's Table I. The reference workload for all
// fits is a fixed W = 1,042,432 MACs per inference (the 100% configuration
// of the reference dynamic DNN used in perf.PaperReferenceProfile).
//
// Latency model per cluster: t(f) = overhead + W / (rate·f)
// Power model per cluster:   P(f,V) = Ceff·V²·f + Static  (full util)
//
// Fits (paper value → model value):
//
// Odroid XU3, A15 cluster — Table I rows (200 MHz, 1 GHz, 1.8 GHz):
//   latency 1020/204/117 ms → 1004/204/115.1 ms (overhead 4 ms,
//   rate 5.2122e6 MAC/s/GHz)
//   power 326/846/2120 mW → 326/846/2113 mW (Ceff 620.5, Static 225.5,
//   V = 0.90625 − 0.0625 f + 0.15625 f²: 0.90 V @200 MHz, 1.00 V @1 GHz,
//   1.30 V @1.8 GHz)
//
// Odroid XU3, A7 cluster — rows (200, 700, 1300 MHz):
//   latency 1780/504/280 ms → 1782/512.7/278.4 ms (overhead 5 ms,
//   rate 2.9332e6)
//   power 72.4/141/329 mW → 72.4/141/323 mW (Ceff 127.5, Static 51.7,
//   V = 0.89394 − 0.01818 f + 0.24242 f²)
//
// Jetson Nano, A57 cluster — rows (921 MHz, 1.43 GHz):
//   latency 69.4/46.9 ms → 69.4/46.9 ms (overhead 6.2 ms, rate 17.912e6)
//   power 878/1490 mW → 878/1490 mW (Ceff 756.2, Static 181.6,
//   V = 1.0 @0.921, 1.1 @1.43)
//
// Jetson Nano, GPU — rows (614 MHz + A57@921, 921 MHz + A57@1.43):
//   latency 7.4/4.93 ms → 7.41/4.94 ms (overhead 0, rate 229.1e6)
//   total power 1340/2500 mW → 1346/2505 mW with the GPU inference
//   inducing 20% utilisation on the companion A57 (pre-processing), GPU
//   Ceff 1850, Static 0, V = 0.95 @0.614, 1.10 @0.921.
//
// Energy cross-check (E = P·t): model reproduces every Table I energy cell
// within 3% (verified by TestTableICalibration).

// ReferenceWorkloadMACs is the inference cost of the 100% model used for
// all Table I fits.
const ReferenceWorkloadMACs = 1042432

// volt evaluates a quadratic voltage/frequency ladder.
func volt(v0, v1, v2, f float64) float64 { return v0 + v1*f + v2*f*f }

// rangeOPPs builds an OPP ladder from fMin to fMax (inclusive) in the
// given step, with voltages from the quadratic ladder coefficients.
func rangeOPPs(fMin, fMax, step, v0, v1, v2 float64) []OPP {
	var opps []OPP
	for f := fMin; f <= fMax+1e-9; f += step {
		opps = append(opps, OPP{FreqGHz: f, VoltageV: volt(v0, v1, v2, f)})
	}
	return opps
}

// OdroidXU3 models the paper's primary evaluation board (Exynos 5422):
// 4×A15 with 17 DVFS levels (200–1800 MHz) and 4×A7 with 12 levels
// (200–1300 MHz) — the exact ladder counts used in Fig 4(a).
func OdroidXU3() *Platform {
	return &Platform{
		Name:     "odroid-xu3",
		AmbientC: 25,
		Thermal: ThermalParams{
			RthKPerW:  9.0,
			CthJPerK:  3.0,
			ThrottleC: 85,
			CriticalC: 95,
		},
		Clusters: []*Cluster{
			{
				Name:              "a15",
				Type:              CoreA15,
				Cores:             4,
				OPPs:              rangeOPPs(0.2, 1.8, 0.1, 0.90625, -0.0625, 0.15625),
				Power:             PowerParams{CeffMWPerV2GHz: 620.5, StaticMW: 225.5},
				RateMACsPerSecGHz: 5.2122e6,
				ParallelAlpha:     0.9,
				FixedOverheadS:    0.004,
			},
			{
				Name:              "a7",
				Type:              CoreA7,
				Cores:             4,
				OPPs:              rangeOPPs(0.2, 1.3, 0.1, 0.89394, -0.01818, 0.24242),
				Power:             PowerParams{CeffMWPerV2GHz: 127.5, StaticMW: 51.7},
				RateMACsPerSecGHz: 2.9332e6,
				ParallelAlpha:     0.9,
				FixedOverheadS:    0.005,
			},
		},
	}
}

// JetsonNano models the paper's second Table I platform: a Maxwell GPU
// plus a 4×A57 CPU cluster.
func JetsonNano() *Platform {
	return &Platform{
		Name:     "jetson-nano",
		AmbientC: 25,
		Thermal: ThermalParams{
			RthKPerW:  6.0,
			CthJPerK:  6.0,
			ThrottleC: 85,
			CriticalC: 97,
		},
		Clusters: []*Cluster{
			{
				Name:  "gpu",
				Type:  CoreGPU,
				Cores: 1,
				OPPs: []OPP{
					{FreqGHz: 0.3937, VoltageV: 0.90},
					{FreqGHz: 0.6140, VoltageV: 0.95},
					{FreqGHz: 0.7680, VoltageV: 1.02},
					{FreqGHz: 0.9216, VoltageV: 1.10},
				},
				Power:             PowerParams{CeffMWPerV2GHz: 1850, StaticMW: 0},
				RateMACsPerSecGHz: 229.1e6,
				ParallelAlpha:     1.0,
				FixedOverheadS:    0,
				CompanionName:     "a57",
				CompanionUtil:     0.20,
			},
			{
				Name:  "a57",
				Type:  CoreA57,
				Cores: 4,
				OPPs: []OPP{
					{FreqGHz: 0.921, VoltageV: 1.00},
					{FreqGHz: 1.2, VoltageV: 1.05},
					{FreqGHz: 1.43, VoltageV: 1.10},
				},
				Power:             PowerParams{CeffMWPerV2GHz: 756.2, StaticMW: 181.6},
				RateMACsPerSecGHz: 17.912e6,
				ParallelAlpha:     0.9,
				FixedOverheadS:    0.0062,
			},
		},
	}
}

// FlagshipSoC is a representative phone SoC in the spirit of the paper's
// motivating examples (Kirin 990 5G, Apple A13): two CPU clusters, a GPU
// and an NPU with dedicated on-chip memory. Its constants are not fitted
// to Table I (the paper publishes none for these parts); they preserve the
// capability ordering NPU ≫ GPU ≫ big CPU ≫ LITTLE CPU that the Fig 2
// scenario depends on.
func FlagshipSoC() *Platform {
	return &Platform{
		Name:     "flagship-soc",
		AmbientC: 25,
		Thermal: ThermalParams{
			RthKPerW:  8.0,
			CthJPerK:  0.5,
			ThrottleC: 65,
			CriticalC: 85,
		},
		Clusters: []*Cluster{
			{
				Name:              "cpu-big",
				Type:              CoreBig,
				Cores:             4,
				OPPs:              rangeOPPs(0.6, 2.6, 0.2, 0.62, 0.13, 0.04),
				Power:             PowerParams{CeffMWPerV2GHz: 900, StaticMW: 250},
				RateMACsPerSecGHz: 24e6,
				ParallelAlpha:     0.9,
				FixedOverheadS:    0.002,
			},
			{
				Name:              "cpu-lit",
				Type:              CoreLit,
				Cores:             4,
				OPPs:              rangeOPPs(0.4, 1.8, 0.2, 0.70, 0.10, 0.06),
				Power:             PowerParams{CeffMWPerV2GHz: 180, StaticMW: 60},
				RateMACsPerSecGHz: 7e6,
				ParallelAlpha:     0.9,
				FixedOverheadS:    0.004,
			},
			{
				Name:  "gpu",
				Type:  CoreGPU,
				Cores: 1,
				OPPs: []OPP{
					{FreqGHz: 0.25, VoltageV: 0.70},
					{FreqGHz: 0.40, VoltageV: 0.78},
					{FreqGHz: 0.60, VoltageV: 0.88},
					{FreqGHz: 0.80, VoltageV: 1.00},
				},
				Power:             PowerParams{CeffMWPerV2GHz: 2600, StaticMW: 80},
				RateMACsPerSecGHz: 200e6,
				ParallelAlpha:     1.0,
				FixedOverheadS:    0.001,
				CompanionName:     "cpu-lit",
				CompanionUtil:     0.25,
			},
			{
				Name:  "npu",
				Type:  CoreNPU,
				Cores: 1,
				OPPs: []OPP{
					{FreqGHz: 0.40, VoltageV: 0.70},
					{FreqGHz: 0.60, VoltageV: 0.78},
					{FreqGHz: 0.80, VoltageV: 0.88},
					{FreqGHz: 1.00, VoltageV: 0.95},
				},
				Power:             PowerParams{CeffMWPerV2GHz: 1800, StaticMW: 60},
				RateMACsPerSecGHz: 2400e6,
				ParallelAlpha:     1.0,
				FixedOverheadS:    0.0008,
				CompanionName:     "cpu-lit",
				CompanionUtil:     0.20,
				MemBytes:          8 << 20, // 8 MiB on-chip model memory
			},
		},
	}
}

// Catalog returns all built-in platforms keyed by name.
func Catalog() map[string]*Platform {
	out := map[string]*Platform{}
	for _, p := range []*Platform{OdroidXU3(), JetsonNano(), FlagshipSoC()} {
		out[p.Name] = p
	}
	return out
}
