package sim

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// benchApps is a representative mixed workload: three DNN streams at
// different rates, a render app and background load on the flagship SoC —
// enough event traffic that the engine's heap, advanceTo and refresh paths
// all run hot.
func benchApps() []App {
	prof := perf.UniformProfile("dnn-mobile", 7_000_000, 7<<20,
		perf.PaperAccuracies, []float64{0.61, 0.68, 0.74, 0.78})
	return []App{
		{Name: "dnn1", Kind: KindDNN, Profile: prof, Level: 4, PeriodS: 0.040,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "npu"}},
		{Name: "dnn2", Kind: KindDNN, Profile: prof, Level: 4, PeriodS: 1.0 / 60,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "cpu-big", Cores: 4}},
		{Name: "dnn3", Kind: KindDNN, Profile: prof, Level: 2, PeriodS: 0.100,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "cpu-lit", Cores: 2}},
		{Name: "vr", Kind: KindRender, Util: 0.6, Placement: Placement{Cluster: "gpu"}},
		{Name: "bg", Kind: KindBackground, Util: 0.4, Placement: Placement{Cluster: "cpu-lit", Cores: 1}},
	}
}

// BenchmarkEngineRun measures one uncontrolled 10-simulated-second run of
// the mixed workload per iteration — the engine share of fleet throughput
// (BenchmarkPolicyPlan and BenchmarkReplan in internal/rtm isolate the
// planning layers above it). Construction is included; see
// BenchmarkEngineRunReuse for the steady-state cost a fleet worker pays.
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Platform: hw.FlagshipSoC(), Apps: benchApps()})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			b.Fatal(err)
		}
		if e.Report().DurationS != 10 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkEngineRunReuse measures the same run on one engine Reset in
// place between iterations — the per-scenario cost inside a fleet worker,
// where construction is paid once per worker lifetime.
func BenchmarkEngineRunReuse(b *testing.B) {
	cfg := Config{Platform: hw.FlagshipSoC(), Apps: benchApps()}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			b.Fatal(err)
		}
		if e.Report().DurationS != 10 {
			b.Fatal("short run")
		}
	}
}

// TestEngineRunReuseAllocs pins the steady-state allocation budget: a
// Reset+Run cycle on a warmed engine must stay within 10 allocations
// (today's count is lower; the headroom absorbs map-iteration jitter, not
// new per-run allocation). A failure here means the engine hot path
// regained a per-run allocation — find it with
// `go test -run '^$' -bench EngineRunReuse -benchmem ./internal/sim`.
func TestEngineRunReuseAllocs(t *testing.T) {
	cfg := Config{Platform: hw.FlagshipSoC(), Apps: benchApps()}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := e.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 10 {
		t.Fatalf("steady-state Reset+Run costs %.1f allocs/run, budget is 10", avg)
	}
}
