package sim

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// benchApps is a representative mixed workload: three DNN streams at
// different rates, a render app and background load on the flagship SoC —
// enough event traffic that the engine's heap, advanceTo and refresh paths
// all run hot.
func benchApps() []App {
	prof := perf.UniformProfile("dnn-mobile", 7_000_000, 7<<20,
		perf.PaperAccuracies, []float64{0.61, 0.68, 0.74, 0.78})
	return []App{
		{Name: "dnn1", Kind: KindDNN, Profile: prof, Level: 4, PeriodS: 0.040,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "npu"}},
		{Name: "dnn2", Kind: KindDNN, Profile: prof, Level: 4, PeriodS: 1.0 / 60,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "cpu-big", Cores: 4}},
		{Name: "dnn3", Kind: KindDNN, Profile: prof, Level: 2, PeriodS: 0.100,
			ModelBytes: 7 << 20, Placement: Placement{Cluster: "cpu-lit", Cores: 2}},
		{Name: "vr", Kind: KindRender, Util: 0.6, Placement: Placement{Cluster: "gpu"}},
		{Name: "bg", Kind: KindBackground, Util: 0.4, Placement: Placement{Cluster: "cpu-lit", Cores: 1}},
	}
}

// BenchmarkEngineRun measures one uncontrolled 10-simulated-second run of
// the mixed workload per iteration — the engine share of fleet throughput
// (BenchmarkPolicyPlan and BenchmarkReplan in internal/rtm isolate the
// planning layers above it).
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Platform: hw.FlagshipSoC(), Apps: benchApps()})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			b.Fatal(err)
		}
		if e.Report().DurationS != 10 {
			b.Fatal("short run")
		}
	}
}
