// Package sim is a discrete-event simulator for DNN and non-DNN workloads
// executing on a heterogeneous multi-core platform (hw.Platform). It models
// what the paper's runtime scenario (Fig 2) needs:
//
//   - periodic DNN inference apps with frame deadlines, placed on CPU
//     clusters (with a core count) or accelerators;
//   - GPU render apps and CPU background apps that occupy resources and
//     draw power;
//   - per-cluster DVFS (one OPP per voltage/frequency domain — co-resident
//     apps share the frequency, the paper's "same voltage/frequency
//     domain" coupling);
//   - accelerator contention (resident DNN jobs share the accelerator's
//     throughput) and NPU model-memory capacity (the Fig 2(d) constraint);
//   - energy accounting per cluster and lumped RC thermal integration with
//     throttle-crossing alarms;
//   - migration with a load-time cost, and runtime model-level switching;
//   - a Controller hook (the RTM) invoked on a fixed epoch and on events.
//
// Between events all rates and powers are constant, so job progress,
// energy and temperature are integrated exactly — results do not depend on
// a time-step size.
package sim

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// AppKind classifies workloads.
type AppKind int

// Workload kinds of the Fig 2 scenario.
const (
	KindDNN        AppKind = iota // periodic inference with deadlines
	KindRender                    // continuous GPU load (AR/VR)
	KindBackground                // continuous CPU load
)

func (k AppKind) String() string {
	switch k {
	case KindDNN:
		return "dnn"
	case KindRender:
		return "render"
	case KindBackground:
		return "background"
	}
	return "unknown"
}

// App describes a workload to simulate.
type App struct {
	Name string
	Kind AppKind

	// DNN apps.
	Profile    perf.ModelProfile // per-level MACs/accuracy/memory
	Level      int               // initial model level
	PeriodS    float64           // frame period (deadline = period)
	ModelBytes int64             // resident size of the FULL model (level scales it)

	// Render/Background apps.
	Util float64 // fraction of the cluster the app occupies (0..1]

	// Lifetime.
	StartS float64
	StopS  float64 // 0 = runs to the end of simulation

	// Initial placement.
	Placement Placement
}

// Placement binds an app to a cluster and, for CPU clusters, a core count.
type Placement struct {
	Cluster string
	Cores   int // ignored for accelerators (always the whole device)
}

// EventKind enumerates observable simulator events.
type EventKind int

// Simulator event kinds delivered to the Controller.
const (
	EvAppStart EventKind = iota
	EvAppStop
	EvJobComplete
	EvDeadlineMiss // job finished after its deadline
	EvFrameDrop    // release arrived while previous job still running
	EvThermalAlarm // temperature crossed the throttle threshold upward
	EvMigrated
	EvClusterFail   // a cluster dropped offline (hardware fault)
	EvClusterRepair // a failed cluster came back online
)

func (k EventKind) String() string {
	switch k {
	case EvAppStart:
		return "app-start"
	case EvAppStop:
		return "app-stop"
	case EvJobComplete:
		return "job-complete"
	case EvDeadlineMiss:
		return "deadline-miss"
	case EvFrameDrop:
		return "frame-drop"
	case EvThermalAlarm:
		return "thermal-alarm"
	case EvMigrated:
		return "migrated"
	case EvClusterFail:
		return "cluster-fail"
	case EvClusterRepair:
		return "cluster-repair"
	}
	return "unknown"
}

// Event is delivered to the Controller's OnEvent hook.
type Event struct {
	TimeS float64
	Kind  EventKind
	App   string
	// Cluster names the cluster an EvClusterFail/EvClusterRepair event is
	// about ("" for app-level events).
	Cluster string
	Note    string
	// LatencyS is the job's release-to-completion latency, set on
	// EvJobComplete and EvDeadlineMiss (0 otherwise). Consumers building
	// latency distributions (percentiles) read it from the event log.
	LatencyS float64
}

// Controller is the runtime-manager hook (Fig 5's RTM layer). OnTick fires
// every TickS seconds; OnEvent fires for each Event. Both may call the
// Engine's actuation methods (SetLevel, Migrate, SetOPP, ...).
type Controller interface {
	OnTick(e *Engine)
	OnEvent(e *Engine, ev Event)
}

// MigrationModel prices app migration between clusters.
type MigrationModel struct {
	// BandwidthBps is the model reload bandwidth (bytes/s).
	BandwidthBps float64
	// FixedS is a fixed re-init latency per migration.
	FixedS float64
}

// DefaultMigrationModel mirrors dyndnn's switch-cost constants.
func DefaultMigrationModel() MigrationModel {
	return MigrationModel{BandwidthBps: 200e6, FixedS: 0.050}
}

// Downtime returns the migration downtime for a model of the given size.
func (m MigrationModel) Downtime(bytes int64) float64 {
	if m.BandwidthBps <= 0 {
		return m.FixedS
	}
	return m.FixedS + float64(bytes)/m.BandwidthBps
}

// appState is the live state of one app.
type appState struct {
	App
	idx     int32 // position in Engine.appList, carried by scheduler events
	placed  Placement
	level   int
	started bool
	stopped bool

	// Current job (DNN apps).
	jobActive     bool
	jobReleaseS   float64
	jobRemaining  float64 // MACs
	completionSeq int64   // seq of the currently valid completion event
	completionEst float64 // scheduled completion time of that event

	blockedUntil float64 // migration downtime

	// placedCS is the cluster state of the current placement — the hot
	// loop resolves it once per migration instead of once per rate query.
	placedCS *clusterState

	// Derived-value cache (see Engine.stateVer): the job's MAC/s rate,
	// valid while rateVer matches the engine's stateVer.
	rateVer    uint64
	cachedRate float64

	// Stats.
	released   int
	completed  int
	missed     int
	dropped    int
	aborted    int // jobs killed by a cluster fault (in-flight or released while unhosted)
	sumLatency float64
	maxLatency float64
}

// clusterState tracks per-cluster dynamics.
type clusterState struct {
	c       *hw.Cluster
	oppIdx  int
	online  bool    // availability: an offline cluster runs nothing and draws nothing
	energy  float64 // mJ
	busyS   float64 // seconds with any activity
	lastPow float64 // mW, for observability

	// Derived-value caches (see Engine.stateVer). Between mutations the
	// system is piecewise-constant, so utilisation, busy power, the
	// accelerator DNN share and the any-active-DNN predicate are computed
	// once per state version instead of once per caller. Each value is
	// valid while its version tag matches the engine's stateVer.
	utilVer      uint64
	cachedUtil   float64
	cachedPow    float64
	shareVer     uint64
	cachedShare  float64
	activeVer    uint64
	cachedActive bool
}

// Engine runs the simulation.
type Engine struct {
	plat     *hw.Platform
	apps     map[string]*appState
	clusters map[string]*clusterState
	// appList / clusterList are the deterministic iteration orders:
	// appList in creation order, clusterList in platform order. The event
	// loop and snapshotting walk these instead of re-deriving order
	// through the name-keyed maps (which cost a lookup — and, for cluster
	// order, an allocation — per event).
	appList     []*appState
	clusterList []*clusterState
	// appStore / clusterStore are the backing arrays the list pointers
	// index into. Reset rewrites them in place, so a worker replaying
	// thousands of scenarios through one engine re-allocates state only
	// when a scenario needs more apps or clusters than any before it.
	appStore     []appState
	clusterStore []clusterState
	thermal      hw.ThermalState
	ambient      float64 // current ambient °C (scenario-controllable)
	mig          MigrationModel

	ctrl  Controller
	tickS float64

	now          float64
	endS         float64
	events       eventHeap
	seq          int64
	thermalEvSeq int64   // seq of the currently valid thermal alarm event
	thermalEst   float64 // scheduled time of that alarm
	alarmed      bool    // throttle alarm latched until temperature drops below

	maxTempC    float64
	overThrotS  float64 // time spent above throttle
	overCritS   float64 // time spent above critical
	eventLog    []Event
	logEvents   bool
	totalEnergy float64
	migrations  int
	levelSwaps  int
	oppSwitches int

	// Fault accounting. offline counts clusters currently unavailable (the
	// cheap "is anything degraded" predicate); unhostedS integrates running
	// DNN app-seconds spent placed on an offline cluster; the deg* counters
	// split frame outcomes by whether any cluster was offline at the time,
	// so reports can compare miss rates inside and outside degraded windows.
	offline        int
	clusterFails   int
	clusterRepairs int
	unhostedS      float64
	degReleased    int
	degCompleted   int
	degMissed      int
	degDropped     int

	// stateVer tags the derived-value caches (cluster utilisation/power,
	// accelerator share, job rates). It advances on every mutation those
	// values can observe — app lifecycle, job start/finish, OPP switches,
	// migrations — and on clock advances while a migration downtime window
	// is still open (the blocked-until predicates read the clock). A cache
	// entry whose tag matches stateVer is exactly the value a fresh
	// recomputation would produce, bit for bit.
	stateVer uint64
	// planEpoch is a monotone counter over planning-relevant state: the
	// running-app set, model levels, placements, OPPs and ambient. The
	// rtm manager uses it to elide replans when nothing a policy can act
	// on has changed. Job-level churn (releases, completions) does not
	// advance it — per-app statistics move continuously and policies that
	// read them opt into their own fingerprint extension instead.
	planEpoch uint64
	// maxBlockedUntil is the high-water mark of migration downtime ends;
	// once the clock passes it no blocked-until predicate can flip, so
	// clock advances stop invalidating the caches.
	maxBlockedUntil float64
}

// Config configures an Engine.
type Config struct {
	Platform   *hw.Platform
	Apps       []App
	Controller Controller // may be nil (uncontrolled baseline)
	TickS      float64    // controller epoch; 0 disables ticks
	Migration  MigrationModel
	LogEvents  bool // retain the full event log (tests, reports)
}

// New validates the config and builds an engine.
func New(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rewinds the engine to the pristine pre-Run state New would build
// for cfg, reusing the existing backing storage: the event heap, the
// per-app and per-cluster state stores, the name-lookup maps and the event
// log all keep their capacity, so a worker replaying a stream of scenarios
// through one engine runs allocation-free once the stores have grown to
// the stream's high-water mark. Reset-then-Run is byte-for-byte equivalent
// to a fresh New-then-Run of the same config — the equivalence the fleet
// layer's reuse property tests pin.
//
// Reset invalidates everything handed out by the previous run: Report
// Events slices alias the engine's log and are rewritten in place. On
// error the engine is left partially rewound and must not be used until a
// subsequent Reset succeeds.
func (e *Engine) Reset(cfg Config) error {
	if cfg.Platform == nil {
		return fmt.Errorf("sim: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return err
	}
	e.plat = cfg.Platform
	e.thermal = hw.ThermalState{TempC: cfg.Platform.AmbientC}
	e.ambient = cfg.Platform.AmbientC
	e.mig = cfg.Migration
	e.ctrl = cfg.Controller
	e.tickS = cfg.TickS
	e.logEvents = cfg.LogEvents
	if e.mig.BandwidthBps == 0 && e.mig.FixedS == 0 {
		e.mig = DefaultMigrationModel()
	}

	e.now, e.endS, e.seq = 0, 0, 0
	e.thermalEvSeq, e.thermalEst, e.alarmed = 0, 0, false
	e.overThrotS, e.overCritS, e.totalEnergy = 0, 0, 0
	e.migrations, e.levelSwaps, e.oppSwitches = 0, 0, 0
	e.offline, e.clusterFails, e.clusterRepairs = 0, 0, 0
	e.unhostedS = 0
	e.degReleased, e.degCompleted, e.degMissed, e.degDropped = 0, 0, 0, 0
	e.maxTempC = cfg.Platform.AmbientC
	// stateVer restarts at 1 so the version tags zeroed by the store
	// rewrites below are invalid until first fill.
	e.stateVer, e.planEpoch, e.maxBlockedUntil = 1, 0, 0

	if e.apps == nil {
		e.apps = make(map[string]*appState, len(cfg.Apps))
		e.clusters = make(map[string]*clusterState, len(cfg.Platform.Clusters))
	} else {
		clear(e.apps)
		clear(e.clusters)
	}

	// Rebuild cluster state into the reused store; pointers are taken only
	// after the store has its final size, so they stay valid.
	if cap(e.clusterStore) < len(cfg.Platform.Clusters) {
		e.clusterStore = make([]clusterState, len(cfg.Platform.Clusters))
	}
	e.clusterStore = e.clusterStore[:len(cfg.Platform.Clusters)]
	e.clusterList = e.clusterList[:0]
	for i, c := range cfg.Platform.Clusters {
		e.clusterStore[i] = clusterState{c: c, online: true}
		cs := &e.clusterStore[i]
		e.clusters[c.Name] = cs
		e.clusterList = append(e.clusterList, cs)
	}

	if cap(e.appStore) < len(cfg.Apps) {
		e.appStore = make([]appState, len(cfg.Apps))
	}
	e.appStore = e.appStore[:len(cfg.Apps)]
	e.appList = e.appList[:0]
	for i, a := range cfg.Apps {
		if err := e.validateApp(a); err != nil {
			return err
		}
		// Accelerators are always allocated whole; normalising here keeps
		// planner-computed placements comparable with initial ones.
		if cl := cfg.Platform.Cluster(a.Placement.Cluster); cl.Type.IsAccelerator() {
			a.Placement.Cores = cl.Cores
		}
		e.appStore[i] = appState{App: a, idx: int32(i), placed: a.Placement, level: a.Level}
		st := &e.appStore[i]
		st.placedCS = e.clusters[a.Placement.Cluster]
		e.apps[a.Name] = st
		e.appList = append(e.appList, st)
	}

	// Size the event queue for the steady state (a handful of pending
	// events per app) and the event log for a realistic run, so the hot
	// loop reaches zero-allocation push/pop and amortised emit quickly.
	if want := 16 + 4*len(e.appList); cap(e.events) < want {
		e.events = make(eventHeap, 0, want)
	}
	e.events = e.events[:0]
	if e.logEvents && e.eventLog == nil {
		e.eventLog = make([]Event, 0, 512)
	}
	e.eventLog = e.eventLog[:0]
	return nil
}

func (e *Engine) validateApp(a App) error {
	if a.Name == "" {
		return fmt.Errorf("sim: app with empty name")
	}
	if _, dup := e.apps[a.Name]; dup {
		return fmt.Errorf("sim: duplicate app %q", a.Name)
	}
	cl := e.plat.Cluster(a.Placement.Cluster)
	if cl == nil {
		return fmt.Errorf("sim: app %q placed on unknown cluster %q", a.Name, a.Placement.Cluster)
	}
	switch a.Kind {
	case KindDNN:
		if err := a.Profile.Validate(); err != nil {
			return fmt.Errorf("sim: app %q: %w", a.Name, err)
		}
		if a.Level < 1 || a.Level > a.Profile.MaxLevel() {
			return fmt.Errorf("sim: app %q level %d out of range", a.Name, a.Level)
		}
		if a.PeriodS <= 0 {
			return fmt.Errorf("sim: app %q period %f", a.Name, a.PeriodS)
		}
	case KindRender, KindBackground:
		if a.Util <= 0 || a.Util > 1 {
			return fmt.Errorf("sim: app %q util %f outside (0,1]", a.Name, a.Util)
		}
	default:
		return fmt.Errorf("sim: app %q unknown kind", a.Name)
	}
	if !cl.Type.IsAccelerator() && a.Placement.Cores < 1 {
		return fmt.Errorf("sim: app %q needs >= 1 core on CPU cluster", a.Name)
	}
	if a.StopS != 0 && a.StopS <= a.StartS {
		return fmt.Errorf("sim: app %q stop %f <= start %f", a.Name, a.StopS, a.StartS)
	}
	return nil
}
