package sim

import (
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// This file is the white-box safety net under the dirty-tracked observable
// caches: every cached value must equal a from-scratch recompute at every
// controller tick of a scenario that churns all the invalidation sources
// (app starts/stops, job activity, DVFS switches, migrations with
// downtime, ambient changes), and PlanEpoch must move exactly when
// planning-relevant state does.

// cacheAuditor is a controller that cross-checks every cache against its
// compute function each tick, while injecting knob churn at fixed times.
type cacheAuditor struct {
	t       *testing.T
	did3    bool
	did6    bool
	did8    bool
	did10   bool
	audited int
}

func (c *cacheAuditor) OnTick(e *Engine) {
	now := e.Now()
	switch {
	case !c.did3 && now >= 3:
		c.did3 = true
		if err := e.SetOPP("cpu-big", 0); err != nil {
			c.t.Errorf("SetOPP: %v", err)
		}
	case !c.did6 && now >= 6:
		c.did6 = true
		// NPU → GPU: a model reload with real downtime, so blockedUntil
		// predicates flip mid-window and again when the window ends.
		if err := e.Migrate("dnn1", Placement{Cluster: "gpu"}); err != nil {
			c.t.Errorf("Migrate: %v", err)
		}
	case !c.did8 && now >= 8:
		c.did8 = true
		e.SetAmbient(40)
	case !c.did10 && now >= 10:
		c.did10 = true
		if err := e.SetLevel("dnn1", 2); err != nil {
			c.t.Errorf("SetLevel: %v", err)
		}
	}
	c.audit(e)
}

func (c *cacheAuditor) OnEvent(e *Engine, ev Event) {}

// audit reads every cached observable (filling the caches), then compares
// the cached values against direct recomputes.
func (c *cacheAuditor) audit(e *Engine) {
	c.audited++
	for _, cs := range e.clusterList {
		util := e.clusterUtilOf(cs)
		pow := e.clusterPowerMW(cs)
		share := e.acceleratorDNNShare(cs)
		active := e.anyActiveDNN(cs)
		if want := e.computeAcceleratorDNNShare(cs.c.Name); share != want {
			c.t.Errorf("t=%.2f %s: cached share %v, recompute %v", e.Now(), cs.c.Name, share, want)
		}
		if want := e.computeAnyActiveDNN(cs.c.Name); active != want {
			c.t.Errorf("t=%.2f %s: cached active %v, recompute %v", e.Now(), cs.c.Name, active, want)
		}
		if want := e.computeClusterUtil(cs); util != want {
			c.t.Errorf("t=%.2f %s: cached util %v, recompute %v", e.Now(), cs.c.Name, util, want)
		}
		if want := cs.c.BusyPowerMW(cs.c.OPPs[cs.oppIdx], cs.c.Cores, util); pow != want {
			c.t.Errorf("t=%.2f %s: cached power %v, recompute %v", e.Now(), cs.c.Name, pow, want)
		}
	}
	for _, a := range e.appList {
		if a.Kind != KindDNN || !a.started || a.stopped {
			continue
		}
		rate := e.jobRate(a)
		if want := e.computeJobRate(a); rate != want {
			c.t.Errorf("t=%.2f %s: cached rate %v, recompute %v", e.Now(), a.Name, rate, want)
		}
	}
}

func cacheTestApps() []App {
	prof := perf.UniformProfile("cachetest", 7_000_000, 7<<20, perf.PaperAccuracies, nil)
	return []App{
		{
			Name: "dnn1", Kind: KindDNN, Profile: prof, Level: 4,
			PeriodS: 0.040, ModelBytes: 7 << 20,
			Placement: Placement{Cluster: "npu"},
		},
		{
			Name: "dnn2", Kind: KindDNN, Profile: prof, Level: 3,
			PeriodS: 1.0 / 60, ModelBytes: 7 << 20, StartS: 2,
			Placement: Placement{Cluster: "cpu-big", Cores: 4},
		},
		{
			Name: "vr", Kind: KindRender, Util: 0.6, StartS: 4, StopS: 11,
			Placement: Placement{Cluster: "gpu"},
		},
		{
			Name: "bg", Kind: KindBackground, Util: 0.3,
			Placement: Placement{Cluster: "cpu-lit", Cores: 2},
		},
	}
}

// TestCachedObservablesMatchRecompute drives a scenario through every
// cache-invalidation source and asserts, tick by tick, that the cached
// cluster util/power/share/active and per-app job rates are
// indistinguishable from recomputing them from scratch.
func TestCachedObservablesMatchRecompute(t *testing.T) {
	aud := &cacheAuditor{t: t}
	e, err := New(Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       cacheTestApps(),
		Controller: aud,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(14); err != nil {
		t.Fatal(err)
	}
	if !aud.did3 || !aud.did6 || !aud.did8 || !aud.did10 {
		t.Fatalf("not every disturbance fired: %+v", aud)
	}
	if aud.audited == 0 {
		t.Fatal("auditor never ran")
	}
}

// epochProbe samples PlanEpoch mid-run and performs the knob steps at
// fixed ticks, all within a single Run (hStart events are re-pushed per
// Run call, so incremental Runs would re-fire starts and muddy the test).
type epochProbe struct {
	t          *testing.T
	atQuiet    uint64 // epoch at t≈2, after dnn1+bg started
	atQuiet2   uint64 // epoch at t≈5, after 3 s of pure job churn
	afterStart uint64 // epoch at t≈7, after dnn2's t=6 start
	didKnobs   bool
}

func (p *epochProbe) OnEvent(e *Engine, ev Event) {}

func (p *epochProbe) OnTick(e *Engine) {
	now := e.Now()
	switch {
	case p.atQuiet == 0 && now >= 2:
		p.atQuiet = e.PlanEpoch()
		if p.atQuiet == 0 {
			p.t.Error("app starts must move PlanEpoch")
		}
	case p.atQuiet2 == 0 && now >= 5:
		// dnn1 released/completed/missed frames for 3 s: pure job churn.
		p.atQuiet2 = e.PlanEpoch()
		if p.atQuiet2 != p.atQuiet {
			p.t.Errorf("job churn moved PlanEpoch %d -> %d", p.atQuiet, p.atQuiet2)
		}
	case p.afterStart == 0 && now >= 7:
		p.afterStart = e.PlanEpoch()
		if p.afterStart <= p.atQuiet2 {
			p.t.Error("app start at t=6 did not move PlanEpoch")
		}
		p.knobSteps(e)
		p.didKnobs = true
	}
}

func (p *epochProbe) knobSteps(e *Engine) {
	step := func(name string, f func() error, wantMove bool) {
		before := e.PlanEpoch()
		if err := f(); err != nil {
			p.t.Fatalf("%s: %v", name, err)
		}
		if moved := e.PlanEpoch() != before; moved != wantMove {
			p.t.Errorf("%s: PlanEpoch moved=%v, want %v", name, moved, wantMove)
		}
	}
	step("SetOPP", func() error { return e.SetOPP("cpu-big", 1) }, true)
	step("SetLevel", func() error { return e.SetLevel("dnn1", 3) }, true)
	step("Migrate", func() error {
		return e.Migrate("dnn2", Placement{Cluster: "cpu-big", Cores: 2})
	}, true)
	step("SetAmbient change", func() error { e.SetAmbient(35); return nil }, true)
	step("SetAmbient no-op", func() error { e.SetAmbient(35); return nil }, false)
}

// TestPlanEpochSemantics pins what PlanEpoch tracks — app lifecycle and
// knob state — and, just as deliberately, what it does not: the clock and
// per-job churn, which is what lets a manager elide replans while frames
// keep flowing.
func TestPlanEpochSemantics(t *testing.T) {
	prof := perf.UniformProfile("epochtest", 7_000_000, 7<<20, perf.PaperAccuracies, nil)
	apps := []App{
		{
			Name: "dnn1", Kind: KindDNN, Profile: prof, Level: 4,
			PeriodS: 0.040, ModelBytes: 7 << 20,
			Placement: Placement{Cluster: "npu"},
		},
		{
			Name: "bg", Kind: KindBackground, Util: 0.3,
			Placement: Placement{Cluster: "cpu-lit", Cores: 2},
		},
		{
			Name: "dnn2", Kind: KindDNN, Profile: prof, Level: 3,
			PeriodS: 1.0 / 60, ModelBytes: 7 << 20, StartS: 6,
			Placement: Placement{Cluster: "cpu-big", Cores: 4},
		},
		{
			Name: "vr", Kind: KindRender, Util: 0.6, StartS: 8, StopS: 11,
			Placement: Placement{Cluster: "gpu"},
		},
	}
	probe := &epochProbe{t: t}
	e, err := New(Config{
		Platform:   hw.FlagshipSoC(),
		Apps:       apps,
		Controller: probe,
		TickS:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(12); err != nil {
		t.Fatal(err)
	}
	if !probe.didKnobs {
		t.Fatal("knob steps never ran")
	}
	// The four epoch-moving knob steps ran at t≈7, then vr started at t=8
	// and stopped at t=11: all six must have moved the epoch past the t=7
	// sample.
	if got := e.PlanEpoch(); got < probe.afterStart+4+2 {
		t.Fatalf("PlanEpoch %d; want ≥ %d after knob steps + vr start/stop",
			got, probe.afterStart+4+2)
	}
}
