package sim

import (
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
)

// faultCtrl flips one cluster offline at failAtS and back online at
// repairAtS (0 = never) from the tick hook, mimicking the workload layer's
// fault windows at the sim API level.
type faultCtrl struct {
	cluster  string
	failAtS  float64
	repairAt float64
	failed   bool
	repaired bool
}

func (c *faultCtrl) OnTick(e *Engine) {
	if !c.failed && e.Now() >= c.failAtS {
		c.failed = true
		if err := e.SetClusterOnline(c.cluster, false); err != nil {
			panic(err)
		}
	}
	if c.failed && !c.repaired && c.repairAt > 0 && e.Now() >= c.repairAt {
		c.repaired = true
		if err := e.SetClusterOnline(c.cluster, true); err != nil {
			panic(err)
		}
	}
}

func (c *faultCtrl) OnEvent(e *Engine, ev Event) {}

func TestSetClusterOnlineValidation(t *testing.T) {
	e := mustEngine(t, Config{
		Platform: hw.OdroidXU3(),
		Apps:     []App{dnnApp("dnn1", "a7", 4, 1, 1.0)},
	})
	if err := e.SetClusterOnline("nope", false); err == nil {
		t.Fatal("expected error for unknown cluster")
	}
	epoch := e.PlanEpoch()
	// Same-state transition is a no-op: no epoch bump, no counters.
	if err := e.SetClusterOnline("a7", true); err != nil {
		t.Fatal(err)
	}
	if e.PlanEpoch() != epoch {
		t.Fatalf("no-op transition bumped PlanEpoch %d -> %d", epoch, e.PlanEpoch())
	}
	if err := e.SetClusterOnline("a7", false); err != nil {
		t.Fatal(err)
	}
	if e.PlanEpoch() != epoch+1 {
		t.Fatalf("fail transition: PlanEpoch %d, want %d", e.PlanEpoch(), epoch+1)
	}
	if err := e.SetClusterOnline("a7", true); err != nil {
		t.Fatal(err)
	}
	if e.PlanEpoch() != epoch+2 {
		t.Fatalf("repair transition: PlanEpoch %d, want %d", e.PlanEpoch(), epoch+2)
	}
	rep := e.Report()
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 1 {
		t.Fatalf("fails=%d repairs=%d, want 1/1", rep.ClusterFails, rep.ClusterRepairs)
	}
}

func TestClusterFailAbortsAndUnhosts(t *testing.T) {
	// 10 fps DNN on the A7; the cluster dies at 3 s and never repairs.
	e := mustEngine(t, Config{
		Platform:   hw.OdroidXU3(),
		Apps:       []App{dnnApp("dnn1", "a7", 4, 1, 0.1)},
		Controller: &faultCtrl{cluster: "a7", failAtS: 3},
		TickS:      0.05,
		LogEvents:  true,
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, err := e.App("dnn1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Aborted == 0 {
		t.Fatalf("no jobs aborted across a cluster failure: %+v", info)
	}
	// Frames released while unhosted abort instead of completing.
	if info.Completed >= info.Released {
		t.Fatalf("completed %d of %d released with a dead cluster", info.Completed, info.Released)
	}
	if got := e.UnhostedApps(); got != 1 {
		t.Fatalf("UnhostedApps = %d, want 1", got)
	}
	rep := e.Report()
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 0 {
		t.Fatalf("fails=%d repairs=%d, want 1/0", rep.ClusterFails, rep.ClusterRepairs)
	}
	if rep.JobsAborted != info.Aborted {
		t.Fatalf("Report.JobsAborted=%d, app aborted=%d", rep.JobsAborted, info.Aborted)
	}
	// ~7 s of the run had the app sitting on dead hardware.
	if rep.UnhostedS < 6.5 || rep.UnhostedS > 7.5 {
		t.Fatalf("UnhostedS = %.2f, want ~7", rep.UnhostedS)
	}
	var fails, drops int
	for _, ev := range rep.Events {
		switch {
		case ev.Kind == EvClusterFail:
			fails++
			if ev.Cluster != "a7" {
				t.Fatalf("fail event names cluster %q", ev.Cluster)
			}
		case ev.Kind == EvFrameDrop && strings.Contains(ev.Note, "unhosted"):
			drops++
		}
	}
	if fails != 1 || drops == 0 {
		t.Fatalf("event log: %d fail events, %d unhosted drops", fails, drops)
	}
}

func TestClusterRepairRestoresService(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform:   plat,
		Apps:       []App{dnnApp("dnn1", "a7", 4, 1, 0.1)},
		Controller: &faultCtrl{cluster: "a7", failAtS: 3, repairAt: 5},
		TickS:      0.05,
	})
	// Max frequency so the 10 fps period is sustainable outside the fault.
	if err := e.SetOPP("a7", len(plat.Cluster("a7").OPPs)-1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, _ := e.App("dnn1")
	if e.UnhostedApps() != 0 {
		t.Fatalf("app still unhosted after repair")
	}
	// Service resumed: far more completions than the 3 s pre-fault span
	// alone could produce (30 frames at 10 fps).
	if info.Completed < 60 {
		t.Fatalf("completed %d frames, want service restored after repair", info.Completed)
	}
	rep := e.Report()
	if rep.ClusterFails != 1 || rep.ClusterRepairs != 1 {
		t.Fatalf("fails=%d repairs=%d, want 1/1", rep.ClusterFails, rep.ClusterRepairs)
	}
	if rep.UnhostedS < 1.5 || rep.UnhostedS > 2.5 {
		t.Fatalf("UnhostedS = %.2f, want ~2", rep.UnhostedS)
	}
}

func TestOfflineClusterDrawsNoPower(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "a7", 4, 1, 0.5)},
	})
	before := e.TotalPowerMW()
	if before <= 0 {
		t.Fatalf("idle power %.1f, want > 0", before)
	}
	if err := e.SetClusterOnline("a7", false); err != nil {
		t.Fatal(err)
	}
	if err := e.SetClusterOnline("a15", false); err != nil {
		t.Fatal(err)
	}
	if got := e.TotalPowerMW(); got != 0 {
		t.Fatalf("power with all clusters offline = %.3f mW, want 0", got)
	}
	ci, err := e.Cluster("a7")
	if err != nil {
		t.Fatal(err)
	}
	if ci.Online {
		t.Fatal("ClusterInfo.Online true for failed cluster")
	}
	if ci.Util != 0 || ci.PowerMW != 0 {
		t.Fatalf("offline cluster util=%.2f power=%.1f, want 0/0", ci.Util, ci.PowerMW)
	}
}

func TestMigrateToOfflineClusterRejected(t *testing.T) {
	e := mustEngine(t, Config{
		Platform: hw.OdroidXU3(),
		Apps:     []App{dnnApp("dnn1", "a7", 4, 1, 1.0)},
	})
	if err := e.SetClusterOnline("a15", false); err != nil {
		t.Fatal(err)
	}
	err := e.Migrate("dnn1", Placement{Cluster: "a15", Cores: 1})
	if err == nil || !strings.Contains(err.Error(), "offline") {
		t.Fatalf("Migrate onto offline cluster: err=%v, want offline rejection", err)
	}
	// Migration off a dead cluster onto a live one is exactly the
	// degraded-fallback move and must stay legal.
	if err := e.SetClusterOnline("a7", false); err != nil {
		t.Fatal(err)
	}
	if err := e.SetClusterOnline("a15", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate("dnn1", Placement{Cluster: "a15", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if e.UnhostedApps() != 0 {
		t.Fatalf("app migrated off dead cluster still counts unhosted")
	}
}

func TestFaultStateSurvivesReset(t *testing.T) {
	cfg := Config{
		Platform: hw.OdroidXU3(),
		Apps:     []App{dnnApp("dnn1", "a7", 4, 1, 1.0)},
	}
	e := mustEngine(t, cfg)
	if err := e.SetClusterOnline("a7", false); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	// Reset restores every cluster online and zeroes fault counters.
	ci, err := e.Cluster("a7")
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Online {
		t.Fatal("Reset left cluster offline")
	}
	rep := e.Report()
	if rep.ClusterFails != 0 || rep.UnhostedS != 0 || rep.JobsAborted != 0 {
		t.Fatalf("Reset kept fault stats: %+v", rep)
	}
	if e.UnhostedApps() != 0 {
		t.Fatal("Reset left apps unhosted")
	}
}
