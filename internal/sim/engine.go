package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// hKind enumerates internal scheduler events (a superset of the observable
// Event kinds).
type hKind int

const (
	hStart hKind = iota
	hStop
	hRelease
	hComplete
	hUnblock
	hTick
	hThermal
)

type hevent struct {
	t    float64
	seq  int64
	kind hKind
	app  string
}

type eventHeap []hevent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(hevent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func (e *Engine) push(t float64, kind hKind, app string) int64 {
	e.seq++
	heap.Push(&e.events, hevent{t: t, seq: e.seq, kind: kind, app: app})
	return e.seq
}

// Run executes the simulation until endS seconds. It may be called once.
func (e *Engine) Run(endS float64) error {
	if endS <= 0 {
		return fmt.Errorf("sim: end time %f must be positive", endS)
	}
	e.endS = endS
	for _, name := range e.order {
		a := e.apps[name]
		e.push(a.StartS, hStart, name)
		if a.StopS > 0 {
			e.push(a.StopS, hStop, name)
		}
	}
	if e.tickS > 0 && e.ctrl != nil {
		e.push(e.tickS, hTick, "")
	}
	e.rescheduleThermal()

	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(hevent)
		if ev.t > endS {
			break
		}
		e.advanceTo(ev.t)
		e.handle(ev)
		e.refresh()
	}
	e.advanceTo(endS)
	return nil
}

// advanceTo integrates the piecewise-constant segment [now, t]: job
// progress, per-cluster energy, and the thermal state.
func (e *Engine) advanceTo(t float64) {
	dt := t - e.now
	if dt <= 0 {
		e.now = t
		return
	}
	totalMW := 0.0
	for _, name := range e.clusterOrder() {
		cs := e.clusters[name]
		util := e.clusterUtil(cs.c.Name)
		pw := cs.c.BusyPowerMW(cs.c.OPPs[cs.oppIdx], cs.c.Cores, util)
		cs.lastPow = pw
		cs.energy += pw * dt
		if util > 0 {
			cs.busyS += dt
		}
		totalMW += pw
	}
	e.totalEnergy += totalMW * dt

	// Job progress.
	for _, name := range e.order {
		a := e.apps[name]
		if a.Kind != KindDNN || !a.jobActive {
			continue
		}
		rate := e.jobRate(a)
		if rate > 0 && e.now >= a.blockedUntil {
			a.jobRemaining -= rate * dt
			if a.jobRemaining < 0 {
				a.jobRemaining = 0
			}
		}
	}

	// Thermal integration (exact within the segment).
	tempBefore := e.thermal.TempC
	e.thermal.Step(e.plat.Thermal, e.ambient, totalMW/1000, dt)
	tempAfter := e.thermal.TempC
	if tempAfter > e.maxTempC {
		e.maxTempC = tempAfter
	}
	mid := (tempBefore + tempAfter) / 2
	if mid > e.plat.Thermal.ThrottleC {
		e.overThrotS += dt
	}
	if mid > e.plat.Thermal.CriticalC {
		e.overCritS += dt
	}
	if e.alarmed && tempAfter < e.plat.Thermal.ThrottleC-2 {
		e.alarmed = false
	}
	e.now = t
}

func (e *Engine) clusterOrder() []string {
	names := make([]string, 0, len(e.clusters))
	for _, c := range e.plat.Clusters {
		names = append(names, c.Name)
	}
	return names
}

// clusterUtil computes the aggregate dynamic-power utilisation fraction of
// a cluster in [0,1]: resident DNN jobs run their cores flat out, render
// and background apps contribute their configured utilisation, and
// accelerator inference induces CompanionUtil on the companion cluster.
func (e *Engine) clusterUtil(name string) float64 {
	cs := e.clusters[name]
	util := 0.0
	for _, an := range e.order {
		a := e.apps[an]
		if !a.started || a.stopped || a.placed.Cluster != name {
			continue
		}
		switch a.Kind {
		case KindDNN:
			if a.jobActive && e.now >= a.blockedUntil {
				if cs.c.Type.IsAccelerator() {
					util += e.acceleratorDNNShare(name)
				} else {
					util += float64(a.placed.Cores) / float64(cs.c.Cores)
				}
			}
		case KindRender, KindBackground:
			if cs.c.Type.IsAccelerator() {
				util += a.Util
			} else {
				util += float64(a.placed.Cores) / float64(cs.c.Cores) * a.Util
			}
		}
	}
	// Companion load induced by accelerators hosting active DNN jobs.
	for _, cl := range e.plat.Clusters {
		if cl.CompanionName != name || cl.CompanionUtil == 0 {
			continue
		}
		if e.anyActiveDNN(cl.Name) {
			util += cl.CompanionUtil
		}
	}
	if util > 1 {
		util = 1
	}
	return util
}

// acceleratorDNNShare returns the fraction of the accelerator each active
// DNN job uses: active jobs share whatever render apps leave.
func (e *Engine) acceleratorDNNShare(cluster string) float64 {
	renderUtil := 0.0
	active := 0
	for _, an := range e.order {
		a := e.apps[an]
		if !a.started || a.stopped || a.placed.Cluster != cluster {
			continue
		}
		switch a.Kind {
		case KindRender, KindBackground:
			renderUtil += a.Util
		case KindDNN:
			if a.jobActive && e.now >= a.blockedUntil {
				active++
			}
		}
	}
	if active == 0 {
		return 0
	}
	free := 1 - renderUtil
	if free < 0 {
		free = 0
	}
	return free / float64(active)
}

func (e *Engine) anyActiveDNN(cluster string) bool {
	for _, an := range e.order {
		a := e.apps[an]
		if a.started && !a.stopped && a.placed.Cluster == cluster &&
			a.Kind == KindDNN && a.jobActive && e.now >= a.blockedUntil {
			return true
		}
	}
	return false
}

// jobRate returns the MAC/s processing rate of an app's current job.
func (e *Engine) jobRate(a *appState) float64 {
	if e.now < a.blockedUntil {
		return 0
	}
	cs := e.clusters[a.placed.Cluster]
	opp := cs.c.OPPs[cs.oppIdx]
	if cs.c.Type.IsAccelerator() {
		return cs.c.EffectiveRate(opp, cs.c.Cores) * e.acceleratorDNNShare(a.placed.Cluster)
	}
	return cs.c.EffectiveRate(opp, a.placed.Cores)
}

// handle processes one scheduler event (state is already advanced to its
// time).
func (e *Engine) handle(ev hevent) {
	switch ev.kind {
	case hStart:
		a := e.apps[ev.app]
		a.started = true
		e.emit(Event{TimeS: e.now, Kind: EvAppStart, App: ev.app})
		if a.Kind == KindDNN {
			e.release(a)
		}
	case hStop:
		a := e.apps[ev.app]
		a.stopped = true
		a.jobActive = false
		e.emit(Event{TimeS: e.now, Kind: EvAppStop, App: ev.app})
	case hRelease:
		a := e.apps[ev.app]
		if a.started && !a.stopped {
			e.release(a)
		}
	case hComplete:
		a := e.apps[ev.app]
		if a.jobActive && ev.seq == a.completionSeq {
			// Complete when less than a nanosecond of work remains; the
			// residue is floating-point error from time subtraction, which
			// grows with the simulation clock. If genuinely early (a rate
			// drop moved the estimate), clear the seq so refresh reschedules
			// — the skip-guard must not suppress it.
			if rate := e.jobRate(a); rate > 0 && a.jobRemaining <= rate*1e-9 {
				e.complete(a)
			} else {
				a.completionSeq = 0
			}
		}
	case hUnblock:
		// No state change needed: rates recompute in refresh().
	case hTick:
		if e.ctrl != nil {
			e.ctrl.OnTick(e)
			if next := e.now + e.tickS; next <= e.endS {
				e.push(next, hTick, "")
			}
		}
	case hThermal:
		if ev.seq == e.thermalEvSeq {
			e.thermalEvSeq = 0 // consumed; refresh may schedule a successor
			if !e.alarmed && e.thermal.TempC >= e.plat.Thermal.ThrottleC-0.05 {
				e.alarmed = true
				e.emit(Event{TimeS: e.now, Kind: EvThermalAlarm,
					Note: fmt.Sprintf("%.1fC", e.thermal.TempC)})
			}
		}
	}
}

// release starts a new job (or drops the frame if one is running) and
// schedules the next release.
func (e *Engine) release(a *appState) {
	a.released++
	if a.jobActive {
		a.dropped++
		e.emit(Event{TimeS: e.now, Kind: EvFrameDrop, App: a.Name})
	} else {
		a.jobActive = true
		a.jobReleaseS = e.now
		a.jobRemaining = float64(a.Profile.Level(a.level).MACs)
		// Charge the per-inference fixed overhead (pre/post-processing) as
		// work at the current rate, matching perf.InferenceLatencyS.
		if rate := e.jobRate(a); rate > 0 {
			a.jobRemaining += e.plat.Cluster(a.placed.Cluster).FixedOverheadS * rate
		}
	}
	next := e.now + a.PeriodS
	if (a.StopS == 0 || next < a.StopS) && next <= e.endS {
		e.push(next, hRelease, a.Name)
	}
}

func (e *Engine) complete(a *appState) {
	latency := e.now - a.jobReleaseS
	a.jobActive = false
	a.completed++
	a.sumLatency += latency
	if latency > a.maxLatency {
		a.maxLatency = latency
	}
	if latency > a.PeriodS+1e-9 {
		a.missed++
		e.emit(Event{TimeS: e.now, Kind: EvDeadlineMiss, App: a.Name,
			Note:     fmt.Sprintf("latency %.1fms > %.1fms", latency*1000, a.PeriodS*1000),
			LatencyS: latency})
	} else {
		e.emit(Event{TimeS: e.now, Kind: EvJobComplete, App: a.Name, LatencyS: latency})
	}
}

// emit records an event and forwards it to the controller.
func (e *Engine) emit(ev Event) {
	if e.logEvents {
		e.eventLog = append(e.eventLog, ev)
	}
	if e.ctrl != nil {
		e.ctrl.OnEvent(e, ev)
	}
}

// refresh recomputes all pending completion events and the thermal alarm
// after any state change. An event is only (re)scheduled when its estimate
// actually moved: unconditional rescheduling would invalidate the event
// just popped on every iteration and the heap would never drain.
func (e *Engine) refresh() {
	for _, name := range e.order {
		a := e.apps[name]
		if a.Kind != KindDNN || !a.jobActive || a.stopped {
			a.completionSeq = 0
			continue
		}
		if e.now < a.blockedUntil {
			if a.completionSeq == 0 || a.completionEst != a.blockedUntil {
				a.completionEst = a.blockedUntil
				a.completionSeq = e.push(a.blockedUntil, hUnblock, a.Name)
			}
			continue
		}
		rate := e.jobRate(a)
		if rate <= 0 {
			continue // stalled: a future state change will reschedule
		}
		est := e.now + a.jobRemaining/rate
		if a.completionSeq != 0 && math.Abs(est-a.completionEst) < 1e-9 {
			continue // pending event still accurate
		}
		a.completionEst = est
		a.completionSeq = e.push(est, hComplete, a.Name)
	}
	e.rescheduleThermal()
}

// rescheduleThermal predicts the next upward throttle crossing under the
// current (constant) power and schedules an alarm at the exact crossing
// time from the RC model's closed form.
func (e *Engine) rescheduleThermal() {
	if e.alarmed {
		return
	}
	totalW := e.TotalPowerMW() / 1000
	th := e.plat.Thermal
	target := th.SteadyStateC(e.ambient, totalW)
	cur := e.thermal.TempC
	if target <= th.ThrottleC || cur >= th.ThrottleC {
		if cur >= th.ThrottleC && !e.alarmed && e.thermalEvSeq == 0 {
			// Already above: alarm immediately.
			e.thermalEst = e.now
			e.thermalEvSeq = e.push(e.now, hThermal, "")
		}
		return
	}
	tau := th.RthKPerW * th.CthJPerK
	frac := (target - cur) / (target - th.ThrottleC)
	if frac <= 1 {
		return
	}
	tc := tau * math.Log(frac)
	// Floor the crossing delay: as cur approaches the trip point, tc → 0
	// and floating-point error could otherwise schedule a cascade of
	// zero-advance alarms (a Zeno loop). 1 ms resolution is far below any
	// thermal time constant of interest.
	if tc < 1e-3 {
		tc = 1e-3
	}
	est := e.now + tc
	if e.thermalEvSeq != 0 && math.Abs(est-e.thermalEst) < 1e-3 {
		return // pending alarm still accurate
	}
	e.thermalEst = est
	e.thermalEvSeq = e.push(est, hThermal, "")
}
