package sim

import (
	"fmt"
	"math"
)

// hKind enumerates internal scheduler events (a superset of the observable
// Event kinds).
type hKind int

const (
	hStart hKind = iota
	hStop
	hRelease
	hComplete
	hUnblock
	hTick
	hThermal
)

// hevent is one scheduled event. app is the index into Engine.appList
// (-1 for app-less events): the hot loop never touches the name-keyed app
// map.
type hevent struct {
	t    float64
	seq  int64
	kind hKind
	app  int32
}

// eventHeap is a typed, index-based binary min-heap of scheduler events
// ordered by (t, seq). push and pop sift inline over the backing array and
// keep it when the heap drains, so the steady-state simulation loop does
// no heap allocations — unlike container/heap, whose interface boxes every
// pushed element through `any`.
type eventHeap []hevent

// before is the heap order: earliest time first, insertion sequence as the
// tie-break (so simultaneous events pop in schedule order).
func (h eventHeap) before(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push inserts an event, reusing the slice's spare capacity.
//
//detlint:hotpath
func (h *eventHeap) push(ev hevent) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the minimum event. The backing array is kept for
// future pushes.
//
//detlint:hotpath
func (h *eventHeap) pop() hevent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.before(r, child) {
			child = r
		}
		if !s.before(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

func (e *Engine) push(t float64, kind hKind, app int32) int64 {
	e.seq++
	e.events.push(hevent{t: t, seq: e.seq, kind: kind, app: app})
	return e.seq
}

// Run executes the simulation until endS seconds. Calling Run again on
// the same engine continues from the accumulated state (warm caches,
// stats and all — the rtm tests use this to extend a managed run); use
// Reset to rewind to the pristine state a fresh New would build.
//
//detlint:hotpath
func (e *Engine) Run(endS float64) error {
	if endS <= 0 {
		//detlint:allow hotalloc one-time argument validation; never reached by the steady-state loop
		return fmt.Errorf("sim: end time %f must be positive", endS)
	}
	e.endS = endS
	for _, a := range e.appList {
		e.push(a.StartS, hStart, a.idx)
		if a.StopS > 0 {
			e.push(a.StopS, hStop, a.idx)
		}
	}
	if e.tickS > 0 && e.ctrl != nil {
		e.push(e.tickS, hTick, -1)
	}
	e.rescheduleThermal()

	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.t > endS {
			break
		}
		e.advanceTo(ev.t)
		e.handle(ev)
		e.refresh()
	}
	e.advanceTo(endS)
	return nil
}

// advanceTo integrates the piecewise-constant segment [now, t]: job
// progress, per-cluster energy, and the thermal state.
//
//detlint:hotpath
func (e *Engine) advanceTo(t float64) {
	dt := t - e.now
	if dt <= 0 {
		e.now = t
		return
	}
	totalMW := 0.0
	for _, cs := range e.clusterList {
		util := e.clusterUtilOf(cs)
		pw := cs.cachedPow
		cs.lastPow = pw
		cs.energy += pw * dt
		if util > 0 {
			cs.busyS += dt
		}
		totalMW += pw
	}
	e.totalEnergy += totalMW * dt

	// Job progress.
	for _, a := range e.appList {
		if a.Kind != KindDNN || !a.jobActive {
			continue
		}
		rate := e.jobRate(a)
		if rate > 0 && e.now >= a.blockedUntil {
			a.jobRemaining -= rate * dt
			if a.jobRemaining < 0 {
				a.jobRemaining = 0
			}
		}
	}
	// Unhosted integration: running DNNs whose placement cluster is offline
	// accumulate app-seconds of lost service until a replan moves them.
	if e.offline > 0 {
		for _, a := range e.appList {
			if a.Kind == KindDNN && a.started && !a.stopped && !a.placedCS.online {
				e.unhostedS += dt
			}
		}
	}

	// Thermal integration (exact within the segment).
	tempBefore := e.thermal.TempC
	e.thermal.Step(e.plat.Thermal, e.ambient, totalMW/1000, dt)
	tempAfter := e.thermal.TempC
	if tempAfter > e.maxTempC {
		e.maxTempC = tempAfter
	}
	mid := (tempBefore + tempAfter) / 2
	if mid > e.plat.Thermal.ThrottleC {
		e.overThrotS += dt
	}
	if mid > e.plat.Thermal.CriticalC {
		e.overCritS += dt
	}
	if e.alarmed && tempAfter < e.plat.Thermal.ThrottleC-2 {
		e.alarmed = false
	}
	prev := e.now
	e.now = t
	// The cached utilisations and rates were computed under the old clock.
	// They only read it through the blocked-until predicates, so advancing
	// time invalidates them solely while some migration downtime window is
	// still open — in steady state the caches survive the advance and the
	// post-event refresh reuses them.
	if prev < e.maxBlockedUntil {
		e.stateVer++
	}
}

// clusterUtil computes the aggregate dynamic-power utilisation fraction of
// a cluster in [0,1] by name; clusterUtilOf is the hot-path variant that
// skips the map lookup.
func (e *Engine) clusterUtil(name string) float64 {
	return e.clusterUtilOf(e.clusters[name])
}

// clusterUtilOf returns a cluster's utilisation through the derived-value
// cache, recomputing only when the state version moved. The matching busy
// power is computed and cached alongside — every hot caller that needs one
// needs the other within the same piecewise-constant segment.
func (e *Engine) clusterUtilOf(cs *clusterState) float64 {
	if cs.utilVer != e.stateVer {
		if cs.online {
			cs.cachedUtil = e.computeClusterUtil(cs)
			cs.cachedPow = cs.c.BusyPowerMW(cs.c.OPPs[cs.oppIdx], cs.c.Cores, cs.cachedUtil)
		} else {
			// A failed cluster runs nothing and draws nothing — not even
			// static power: the domain is dead, not idle.
			cs.cachedUtil, cs.cachedPow = 0, 0
		}
		cs.utilVer = e.stateVer
	}
	return cs.cachedUtil
}

// clusterPowerMW returns the cluster's instantaneous busy power via the
// same cache as clusterUtilOf.
func (e *Engine) clusterPowerMW(cs *clusterState) float64 {
	e.clusterUtilOf(cs)
	return cs.cachedPow
}

// computeClusterUtil computes a cluster's utilisation: resident DNN jobs
// run their cores flat out, render and background apps contribute their
// configured utilisation, and accelerator inference induces CompanionUtil
// on the companion cluster.
func (e *Engine) computeClusterUtil(cs *clusterState) float64 {
	name := cs.c.Name
	util := 0.0
	for _, a := range e.appList {
		if !a.started || a.stopped || a.placed.Cluster != name {
			continue
		}
		switch a.Kind {
		case KindDNN:
			if a.jobActive && e.now >= a.blockedUntil {
				if cs.c.Type.IsAccelerator() {
					util += e.acceleratorDNNShare(cs)
				} else {
					util += float64(a.placed.Cores) / float64(cs.c.Cores)
				}
			}
		case KindRender, KindBackground:
			if cs.c.Type.IsAccelerator() {
				util += a.Util
			} else {
				util += float64(a.placed.Cores) / float64(cs.c.Cores) * a.Util
			}
		}
	}
	// Companion load induced by accelerators hosting active DNN jobs.
	// clusterList follows platform order, so the accumulation order is
	// identical to iterating e.plat.Clusters.
	for _, ocs := range e.clusterList {
		cl := ocs.c
		if cl.CompanionName != name || cl.CompanionUtil == 0 {
			continue
		}
		if e.anyActiveDNN(ocs) {
			util += cl.CompanionUtil
		}
	}
	if util > 1 {
		util = 1
	}
	return util
}

// acceleratorDNNShare returns the fraction of the accelerator each active
// DNN job uses (cached per state version): active jobs share whatever
// render apps leave.
func (e *Engine) acceleratorDNNShare(cs *clusterState) float64 {
	if cs.shareVer != e.stateVer {
		cs.cachedShare = e.computeAcceleratorDNNShare(cs.c.Name)
		cs.shareVer = e.stateVer
	}
	return cs.cachedShare
}

func (e *Engine) computeAcceleratorDNNShare(cluster string) float64 {
	renderUtil := 0.0
	active := 0
	for _, a := range e.appList {
		if !a.started || a.stopped || a.placed.Cluster != cluster {
			continue
		}
		switch a.Kind {
		case KindRender, KindBackground:
			renderUtil += a.Util
		case KindDNN:
			if a.jobActive && e.now >= a.blockedUntil {
				active++
			}
		}
	}
	if active == 0 {
		return 0
	}
	free := 1 - renderUtil
	if free < 0 {
		free = 0
	}
	return free / float64(active)
}

func (e *Engine) anyActiveDNN(cs *clusterState) bool {
	if cs.activeVer != e.stateVer {
		cs.cachedActive = e.computeAnyActiveDNN(cs.c.Name)
		cs.activeVer = e.stateVer
	}
	return cs.cachedActive
}

func (e *Engine) computeAnyActiveDNN(cluster string) bool {
	for _, a := range e.appList {
		if a.started && !a.stopped && a.placed.Cluster == cluster &&
			a.Kind == KindDNN && a.jobActive && e.now >= a.blockedUntil {
			return true
		}
	}
	return false
}

// jobRate returns the MAC/s processing rate of an app's current job,
// cached per state version.
func (e *Engine) jobRate(a *appState) float64 {
	if a.rateVer != e.stateVer {
		a.cachedRate = e.computeJobRate(a)
		a.rateVer = e.stateVer
	}
	return a.cachedRate
}

func (e *Engine) computeJobRate(a *appState) float64 {
	if e.now < a.blockedUntil {
		return 0
	}
	cs := a.placedCS
	if !cs.online {
		return 0
	}
	opp := cs.c.OPPs[cs.oppIdx]
	if cs.c.Type.IsAccelerator() {
		return cs.c.EffectiveRate(opp, cs.c.Cores) * e.acceleratorDNNShare(cs)
	}
	return cs.c.EffectiveRate(opp, a.placed.Cores)
}

// handle processes one scheduler event (state is already advanced to its
// time).
func (e *Engine) handle(ev hevent) {
	switch ev.kind {
	case hStart:
		a := e.appList[ev.app]
		a.started = true
		// Dirty before emit: a controller reacting to the event must see
		// fresh derived values and the new planning epoch.
		e.stateVer++
		e.planEpoch++
		e.emit(Event{TimeS: e.now, Kind: EvAppStart, App: a.Name})
		if a.Kind == KindDNN {
			e.release(a)
		}
	case hStop:
		a := e.appList[ev.app]
		a.stopped = true
		a.jobActive = false
		e.stateVer++
		e.planEpoch++
		e.emit(Event{TimeS: e.now, Kind: EvAppStop, App: a.Name})
	case hRelease:
		a := e.appList[ev.app]
		if a.started && !a.stopped {
			e.release(a)
		}
	case hComplete:
		a := e.appList[ev.app]
		if a.jobActive && ev.seq == a.completionSeq {
			// Complete when less than a nanosecond of work remains; the
			// residue is floating-point error from time subtraction, which
			// grows with the simulation clock. If genuinely early (a rate
			// drop moved the estimate), clear the seq so refresh reschedules
			// — the skip-guard must not suppress it.
			if rate := e.jobRate(a); rate > 0 && a.jobRemaining <= rate*1e-9 {
				e.complete(a)
			} else {
				a.completionSeq = 0
			}
		}
	case hUnblock:
		// No state change needed: the clock advance into the blocked-until
		// boundary already invalidated the caches (see advanceTo), so rates
		// recompute in refresh().
	case hTick:
		if e.ctrl != nil {
			e.ctrl.OnTick(e)
			if next := e.now + e.tickS; next <= e.endS {
				e.push(next, hTick, -1)
			}
		}
	case hThermal:
		if ev.seq == e.thermalEvSeq {
			e.thermalEvSeq = 0 // consumed; refresh may schedule a successor
			if !e.alarmed && e.thermal.TempC >= e.plat.Thermal.ThrottleC-0.05 {
				e.alarmed = true
				ev := Event{TimeS: e.now, Kind: EvThermalAlarm}
				if e.observed() {
					ev.Note = fmt.Sprintf("%.1fC", e.thermal.TempC)
				}
				e.emit(ev)
			}
		}
	}
}

// release starts a new job (or drops the frame if one is running) and
// schedules the next release.
func (e *Engine) release(a *appState) {
	a.released++
	if e.offline > 0 {
		e.degReleased++
	}
	if !a.placedCS.online {
		// The app is unhosted: its cluster died and no replan has moved it
		// yet. The frame aborts immediately — there is no hardware to run
		// it on. Per-app it counts as aborted (not dropped); in the
		// degraded-window split it joins degDropped so the window's
		// outcome counters cover exactly the frames released inside it.
		a.aborted++
		e.degDropped++
		e.emit(Event{TimeS: e.now, Kind: EvFrameDrop, App: a.Name, Note: "unhosted"})
		next := e.now + a.PeriodS
		if (a.StopS == 0 || next < a.StopS) && next <= e.endS {
			e.push(next, hRelease, a.idx)
		}
		return
	}
	if a.jobActive {
		a.dropped++
		if e.offline > 0 {
			e.degDropped++
		}
		e.emit(Event{TimeS: e.now, Kind: EvFrameDrop, App: a.Name})
	} else {
		a.jobActive = true
		a.jobReleaseS = e.now
		a.jobRemaining = float64(a.Profile.Level(a.level).MACs)
		// The job becoming active changes utilisations and shares; the rate
		// below must be computed under the new state.
		e.stateVer++
		// Charge the per-inference fixed overhead (pre/post-processing) as
		// work at the current rate, matching perf.InferenceLatencyS.
		if rate := e.jobRate(a); rate > 0 {
			a.jobRemaining += a.placedCS.c.FixedOverheadS * rate
		}
	}
	next := e.now + a.PeriodS
	if (a.StopS == 0 || next < a.StopS) && next <= e.endS {
		e.push(next, hRelease, a.idx)
	}
}

func (e *Engine) complete(a *appState) {
	latency := e.now - a.jobReleaseS
	a.jobActive = false
	e.stateVer++
	a.completed++
	if e.offline > 0 {
		e.degCompleted++
	}
	a.sumLatency += latency
	if latency > a.maxLatency {
		a.maxLatency = latency
	}
	if latency > a.PeriodS+1e-9 {
		a.missed++
		if e.offline > 0 {
			e.degMissed++
		}
		ev := Event{TimeS: e.now, Kind: EvDeadlineMiss, App: a.Name, LatencyS: latency}
		if e.observed() {
			// The note is presentation-only; formatting it when no log and
			// no controller will ever see it was the uncontrolled run's
			// dominant allocation.
			ev.Note = fmt.Sprintf("latency %.1fms > %.1fms", latency*1000, a.PeriodS*1000)
		}
		e.emit(ev)
	} else {
		e.emit(Event{TimeS: e.now, Kind: EvJobComplete, App: a.Name, LatencyS: latency})
	}
}

// observed reports whether an emitted Event reaches anything — the
// retained log or a controller. Callers formatting presentation-only Note
// strings check this first so an unobserved run never pays for them.
func (e *Engine) observed() bool {
	return e.logEvents || e.ctrl != nil
}

// emit records an event and forwards it to the controller.
func (e *Engine) emit(ev Event) {
	if e.logEvents {
		e.eventLog = append(e.eventLog, ev)
	}
	if e.ctrl != nil {
		e.ctrl.OnEvent(e, ev)
	}
}

// refresh recomputes all pending completion events and the thermal alarm
// after any state change. An event is only (re)scheduled when its estimate
// actually moved: unconditional rescheduling would invalidate the event
// just popped on every iteration and the heap would never drain.
//
//detlint:hotpath
func (e *Engine) refresh() {
	for _, a := range e.appList {
		if a.Kind != KindDNN || !a.jobActive || a.stopped {
			a.completionSeq = 0
			continue
		}
		if e.now < a.blockedUntil {
			if a.completionSeq == 0 || a.completionEst != a.blockedUntil {
				a.completionEst = a.blockedUntil
				a.completionSeq = e.push(a.blockedUntil, hUnblock, a.idx)
			}
			continue
		}
		rate := e.jobRate(a)
		if rate <= 0 {
			continue // stalled: a future state change will reschedule
		}
		est := e.now + a.jobRemaining/rate
		if a.completionSeq != 0 && math.Abs(est-a.completionEst) < 1e-9 {
			continue // pending event still accurate
		}
		a.completionEst = est
		a.completionSeq = e.push(est, hComplete, a.idx)
	}
	e.rescheduleThermal()
}

// rescheduleThermal predicts the next upward throttle crossing under the
// current (constant) power and schedules an alarm at the exact crossing
// time from the RC model's closed form.
func (e *Engine) rescheduleThermal() {
	if e.alarmed {
		return
	}
	totalW := e.TotalPowerMW() / 1000
	th := e.plat.Thermal
	target := th.SteadyStateC(e.ambient, totalW)
	cur := e.thermal.TempC
	if target <= th.ThrottleC || cur >= th.ThrottleC {
		if cur >= th.ThrottleC && !e.alarmed && e.thermalEvSeq == 0 {
			// Already above: alarm immediately.
			e.thermalEst = e.now
			e.thermalEvSeq = e.push(e.now, hThermal, -1)
		}
		return
	}
	tau := th.RthKPerW * th.CthJPerK
	frac := (target - cur) / (target - th.ThrottleC)
	if frac <= 1 {
		return
	}
	tc := tau * math.Log(frac)
	// Floor the crossing delay: as cur approaches the trip point, tc → 0
	// and floating-point error could otherwise schedule a cascade of
	// zero-advance alarms (a Zeno loop). 1 ms resolution is far below any
	// thermal time constant of interest.
	if tc < 1e-3 {
		tc = 1e-3
	}
	est := e.now + tc
	if e.thermalEvSeq != 0 && math.Abs(est-e.thermalEst) < 1e-3 {
		return // pending alarm still accurate
	}
	e.thermalEst = est
	e.thermalEvSeq = e.push(est, hThermal, -1)
}
