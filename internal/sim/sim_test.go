package sim

import (
	"math"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

func dnnApp(name, cluster string, cores, level int, periodS float64) App {
	return App{
		Name:       name,
		Kind:       KindDNN,
		Profile:    perf.PaperReferenceProfile(),
		Level:      level,
		PeriodS:    periodS,
		ModelBytes: 350 << 10,
		Placement:  Placement{Cluster: cluster, Cores: cores},
	}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleDNNLatencyMatchesPerfModel(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "a7", 4, 4, 1.0)},
	})
	// Raise the A7 to max frequency before running.
	if err := e.SetOPP("a7", len(plat.Cluster("a7").OPPs)-1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, err := e.App("dnn1")
	if err != nil {
		t.Fatal(err)
	}
	a7 := plat.Cluster("a7")
	want := perf.InferenceLatencyS(a7, a7.MaxOPP(), 4, perf.PaperReferenceProfile().Level(4).MACs)
	if info.Completed < 9 {
		t.Fatalf("completed %d jobs in 10s at 1 fps", info.Completed)
	}
	if math.Abs(info.AvgLatency-want)/want > 0.02 {
		t.Fatalf("sim latency %.1fms vs perf model %.1fms", info.AvgLatency*1000, want*1000)
	}
	if info.Missed != 0 || info.Dropped != 0 {
		t.Fatalf("unexpected misses/drops: %+v", info)
	}
}

func TestDeadlineMissesWhenPeriodTooTight(t *testing.T) {
	plat := hw.OdroidXU3()
	// 100% model on A7 at min frequency (200 MHz): latency ~1.78 s, but
	// period 0.5 s → continuous frame drops.
	e := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "a7", 4, 4, 0.5)},
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, _ := e.App("dnn1")
	if info.Dropped == 0 {
		t.Fatalf("expected frame drops at 200MHz with 0.5s period: %+v", info)
	}
}

func TestHigherOPPEliminatesMisses(t *testing.T) {
	plat := hw.OdroidXU3()
	run := func(oppIdx int) AppInfo {
		e := mustEngine(t, Config{
			Platform: plat,
			Apps:     []App{dnnApp("dnn1", "a15", 4, 4, 0.3)},
		})
		if err := e.SetOPP("a15", oppIdx); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(9); err != nil {
			t.Fatal(err)
		}
		info, _ := e.App("dnn1")
		return info
	}
	slow := run(0)                                 // 200 MHz: ~1 s latency
	fast := run(len(plat.Cluster("a15").OPPs) - 1) // 1.8 GHz: ~115 ms
	if slow.Dropped == 0 {
		t.Fatal("slow OPP should drop frames")
	}
	if fast.Dropped != 0 || fast.Missed != 0 {
		t.Fatalf("fast OPP should meet all deadlines: %+v", fast)
	}
}

func TestLevelKnobReducesLatency(t *testing.T) {
	plat := hw.OdroidXU3()
	run := func(level int) float64 {
		e := mustEngine(t, Config{
			Platform: plat,
			Apps:     []App{dnnApp("dnn1", "a15", 4, level, 1.0)},
		})
		if err := e.Run(5); err != nil {
			t.Fatal(err)
		}
		info, _ := e.App("dnn1")
		return info.AvgLatency
	}
	if !(run(1) < run(2) && run(2) < run(4)) {
		t.Fatal("latency must increase with model level")
	}
}

func TestSetLevelAppliesAndCounts(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "a15", 4, 4, 1.0)},
	})
	if err := e.SetLevel("dnn1", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.SetLevel("dnn1", 1); err != nil { // no-op
		t.Fatal(err)
	}
	if err := e.SetLevel("dnn1", 9); err == nil {
		t.Fatal("out-of-range level must error")
	}
	if err := e.SetLevel("missing", 1); err == nil {
		t.Fatal("unknown app must error")
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := e.Report().LevelSwaps; got != 1 {
		t.Fatalf("level swaps = %d, want 1", got)
	}
}

func TestMigrationChargesDowntime(t *testing.T) {
	plat := hw.OdroidXU3()
	type ctl struct{ migrated bool }
	c := &ctl{}
	ctrl := controllerFuncs{
		tick: func(e *Engine) {
			if !c.migrated && e.Now() >= 2 {
				if err := e.Migrate("dnn1", Placement{Cluster: "a7", Cores: 4}); err != nil {
					t.Errorf("migrate: %v", err)
				}
				c.migrated = true
			}
		},
	}
	e := mustEngine(t, Config{
		Platform:   plat,
		Apps:       []App{dnnApp("dnn1", "a15", 4, 4, 1.0)},
		Controller: ctrl,
		TickS:      0.5,
		LogEvents:  true,
	})
	if err := e.SetOPP("a15", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOPP("a7", 11); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", rep.Migrations)
	}
	info, _ := e.App("dnn1")
	if info.Placement.Cluster != "a7" {
		t.Fatalf("app on %s, want a7", info.Placement.Cluster)
	}
	if info.Completed == 0 {
		t.Fatal("app must keep completing after migration")
	}
	found := false
	for _, ev := range rep.Events {
		if ev.Kind == EvMigrated && ev.App == "dnn1" {
			found = true
		}
	}
	if !found {
		t.Fatal("migration event missing from log")
	}
}

func TestMigrationCapacityChecks(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform: plat,
		Apps: []App{
			dnnApp("dnn1", "a15", 3, 4, 1.0),
			dnnApp("dnn2", "a7", 4, 4, 1.0),
		},
	})
	// Make both apps resident (simulate a short time).
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	// a15 has 3 cores used; dnn2 wants 4 → reject, 1 → accept.
	if err := e.Migrate("dnn2", Placement{Cluster: "a15", Cores: 4}); err == nil {
		t.Fatal("over-capacity migration must fail")
	}
	if err := e.Migrate("dnn2", Placement{Cluster: "a15", Cores: 1}); err != nil {
		t.Fatalf("fitting migration failed: %v", err)
	}
	if err := e.Migrate("dnn2", Placement{Cluster: "nope", Cores: 1}); err == nil {
		t.Fatal("unknown cluster must fail")
	}
}

func TestNPUMemoryConstraint(t *testing.T) {
	plat := hw.FlagshipSoC()
	npu := plat.Cluster("npu")
	// Two DNNs whose full models do NOT fit the NPU together, but whose
	// compressed levels do — the Fig 2(d) situation.
	a := dnnApp("dnn1", "npu", 1, 4, 0.1)
	b := dnnApp("dnn2", "cpu-big", 4, 4, 0.1)
	a.ModelBytes = npu.MemBytes * 3 / 4
	b.ModelBytes = npu.MemBytes * 3 / 4
	e := mustEngine(t, Config{Platform: plat, Apps: []App{a, b}})
	if err := e.Run(0.5); err != nil {
		t.Fatal(err)
	}
	// Full dnn2 cannot join the NPU.
	if err := e.Migrate("dnn2", Placement{Cluster: "npu"}); err == nil {
		t.Fatal("full models must not co-locate on NPU")
	}
	// Compress both to 50%: 3/8 + 3/8 <= 8/8 → fits.
	if err := e.SetLevel("dnn1", 2); err != nil {
		t.Fatal(err)
	}
	if err := e.SetLevel("dnn2", 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate("dnn2", Placement{Cluster: "npu"}); err != nil {
		t.Fatalf("compressed models must co-locate: %v", err)
	}
	// Growing dnn1 back to 100% must now be rejected (no memory).
	if err := e.SetLevel("dnn1", 4); err == nil {
		t.Fatal("level growth beyond NPU memory must fail")
	}
}

func TestAcceleratorSharingHalvesRate(t *testing.T) {
	plat := hw.FlagshipSoC()
	// One DNN alone on the NPU vs two co-located: per-app latency must
	// roughly double under sharing.
	solo := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "npu", 1, 4, 0.2)},
	})
	if err := solo.Run(5); err != nil {
		t.Fatal(err)
	}
	soloInfo, _ := solo.App("dnn1")

	duo := mustEngine(t, Config{
		Platform: plat,
		Apps: []App{
			dnnApp("dnn1", "npu", 1, 4, 0.2),
			dnnApp("dnn2", "npu", 1, 4, 0.2),
		},
	})
	if err := duo.Run(5); err != nil {
		t.Fatal(err)
	}
	duoInfo, _ := duo.App("dnn1")
	ratio := duoInfo.AvgLatency / soloInfo.AvgLatency
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("sharing ratio %.2f, want ~2", ratio)
	}
}

func TestRenderAppStealsGPUShare(t *testing.T) {
	plat := hw.FlagshipSoC()
	withRender := mustEngine(t, Config{
		Platform: plat,
		Apps: []App{
			dnnApp("dnn1", "gpu", 1, 4, 0.5),
			{Name: "vr", Kind: KindRender, Util: 0.6,
				Placement: Placement{Cluster: "gpu"}},
		},
	})
	if err := withRender.Run(5); err != nil {
		t.Fatal(err)
	}
	w, _ := withRender.App("dnn1")

	alone := mustEngine(t, Config{
		Platform: plat,
		Apps:     []App{dnnApp("dnn1", "gpu", 1, 4, 0.5)},
	})
	if err := alone.Run(5); err != nil {
		t.Fatal(err)
	}
	a, _ := alone.App("dnn1")
	// 60% of the GPU gone → DNN rate 40% → ~2.5× latency.
	ratio := w.AvgLatency / a.AvgLatency
	if ratio < 2.0 || ratio > 3.0 {
		t.Fatalf("render interference ratio %.2f, want ~2.5", ratio)
	}
}

func TestThermalAlarmFiresUnderSustainedLoad(t *testing.T) {
	plat := hw.FlagshipSoC() // throttle at 70C, Rth 8: >5.6W sustained trips
	e := mustEngine(t, Config{
		Platform: plat,
		Apps: []App{
			dnnApp("dnn1", "cpu-big", 4, 4, 0.01), // smaller period than latency: always busy
			{Name: "vr", Kind: KindRender, Util: 1.0, Placement: Placement{Cluster: "gpu"}},
			{Name: "bg", Kind: KindBackground, Util: 1.0, Placement: Placement{Cluster: "cpu-lit", Cores: 4}},
		},
		LogEvents: true,
	})
	// Max everything out.
	for _, c := range plat.Clusters {
		if err := e.SetOPP(c.Name, len(c.OPPs)-1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(60); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.MaxTempC <= plat.Thermal.ThrottleC {
		t.Fatalf("max temp %.1fC never exceeded throttle %.1fC", rep.MaxTempC, plat.Thermal.ThrottleC)
	}
	alarm := false
	for _, ev := range rep.Events {
		if ev.Kind == EvThermalAlarm {
			alarm = true
		}
	}
	if !alarm {
		t.Fatal("thermal alarm never fired")
	}
	if rep.OverThrottleS <= 0 {
		t.Fatal("over-throttle time not accounted")
	}
}

func TestEnergyConservation(t *testing.T) {
	plat := hw.OdroidXU3()
	e := mustEngine(t, Config{
		Platform: plat,
		Apps: []App{
			dnnApp("dnn1", "a15", 2, 3, 0.5),
			{Name: "bg", Kind: KindBackground, Util: 0.5,
				Placement: Placement{Cluster: "a7", Cores: 2}},
		},
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	var sum float64
	for _, c := range rep.Clusters {
		sum += c.EnergyMJ
	}
	if math.Abs(sum-rep.TotalEnergyMJ) > 1e-6*math.Max(1, rep.TotalEnergyMJ) {
		t.Fatalf("energy conservation: clusters %.3f vs total %.3f", sum, rep.TotalEnergyMJ)
	}
	// Idle clusters still burn static power: total > 0 even with no work.
	idle := mustEngine(t, Config{Platform: hw.OdroidXU3(),
		Apps: []App{dnnApp("x", "a7", 1, 1, 100)}})
	if err := idle.Run(1); err != nil {
		t.Fatal(err)
	}
	if idle.Report().TotalEnergyMJ <= 0 {
		t.Fatal("static power must accrue energy")
	}
}

func TestControllerTicksAndEvents(t *testing.T) {
	plat := hw.OdroidXU3()
	ticks := 0
	events := map[EventKind]int{}
	ctrl := controllerFuncs{
		tick:  func(e *Engine) { ticks++ },
		event: func(e *Engine, ev Event) { events[ev.Kind]++ },
	}
	e := mustEngine(t, Config{
		Platform:   plat,
		Apps:       []App{dnnApp("dnn1", "a15", 4, 1, 0.5)},
		Controller: ctrl,
		TickS:      1.0,
	})
	if err := e.SetOPP("a15", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if ticks < 9 || ticks > 10 {
		t.Fatalf("ticks = %d, want ~10", ticks)
	}
	if events[EvAppStart] != 1 {
		t.Fatalf("app-start events = %d", events[EvAppStart])
	}
	if events[EvJobComplete] == 0 {
		t.Fatal("no completion events delivered")
	}
}

func TestAppLifetimeWindow(t *testing.T) {
	plat := hw.OdroidXU3()
	app := dnnApp("dnn1", "a15", 4, 1, 0.5)
	app.StartS = 2
	app.StopS = 4
	e := mustEngine(t, Config{Platform: plat, Apps: []App{app}, LogEvents: true})
	if err := e.SetOPP("a15", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	info, _ := e.App("dnn1")
	if info.Running {
		t.Fatal("app must have stopped")
	}
	// ~4 releases in [2,4) at 0.5s period.
	if info.Released < 3 || info.Released > 5 {
		t.Fatalf("released = %d, want ~4", info.Released)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	cases := []Config{
		{Platform: nil},
		{Platform: plat, Apps: []App{{Name: "", Kind: KindDNN}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindDNN, Profile: prof,
			Level: 1, PeriodS: 1, Placement: Placement{Cluster: "nope", Cores: 1}}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindDNN, Profile: prof,
			Level: 0, PeriodS: 1, Placement: Placement{Cluster: "a15", Cores: 1}}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindDNN, Profile: prof,
			Level: 1, PeriodS: 0, Placement: Placement{Cluster: "a15", Cores: 1}}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindBackground, Util: 0,
			Placement: Placement{Cluster: "a15", Cores: 1}}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindDNN, Profile: prof,
			Level: 1, PeriodS: 1, Placement: Placement{Cluster: "a15", Cores: 0}}}},
		{Platform: plat, Apps: []App{
			{Name: "x", Kind: KindBackground, Util: 0.5, Placement: Placement{Cluster: "a15", Cores: 1}},
			{Name: "x", Kind: KindBackground, Util: 0.5, Placement: Placement{Cluster: "a15", Cores: 1}}}},
		{Platform: plat, Apps: []App{{Name: "x", Kind: KindDNN, Profile: prof,
			Level: 1, PeriodS: 1, StartS: 5, StopS: 3, Placement: Placement{Cluster: "a15", Cores: 1}}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d must be rejected", i)
		}
	}
	// Run with non-positive horizon must fail.
	e := mustEngine(t, Config{Platform: plat, Apps: []App{dnnApp("ok", "a15", 1, 1, 1)}})
	if err := e.Run(0); err == nil {
		t.Fatal("zero-length run must error")
	}
}

// controllerFuncs adapts plain funcs to the Controller interface.
type controllerFuncs struct {
	tick  func(e *Engine)
	event func(e *Engine, ev Event)
}

func (c controllerFuncs) OnTick(e *Engine) {
	if c.tick != nil {
		c.tick(e)
	}
}
func (c controllerFuncs) OnEvent(e *Engine, ev Event) {
	if c.event != nil {
		c.event(e, ev)
	}
}

func TestClusterInfoReporting(t *testing.T) {
	plat := hw.FlagshipSoC()
	a := dnnApp("dnn1", "npu", 1, 2, 0.5)
	a.ModelBytes = 4 << 20
	e := mustEngine(t, Config{Platform: plat, Apps: []App{a}})
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	info, err := e.Cluster("npu")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Residents) != 1 || info.Residents[0] != "dnn1" {
		t.Fatalf("residents = %v", info.Residents)
	}
	// 50% level of a 4 MiB model = 2 MiB used of 8 MiB.
	wantFree := plat.Cluster("npu").MemBytes - 2<<20
	if info.MemFree != wantFree {
		t.Fatalf("MemFree = %d, want %d", info.MemFree, wantFree)
	}
	if _, err := e.Cluster("nope"); err == nil {
		t.Fatal("unknown cluster must error")
	}
}
