package sim

import (
	"encoding/json"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
)

// reportJSON canonicalises a report for byte comparison: the encoding
// covers every exported field, including the full event log.
func reportJSON(t *testing.T, rep Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestResetEquivalence is the tentpole's correctness pin at the engine
// layer: Reset-then-Run on a reused engine must produce a report
// byte-identical to New-then-Run of the same config, including across
// config changes that shrink and regrow the backing stores (fewer apps,
// different platform, then back).
func TestResetEquivalence(t *testing.T) {
	big := Config{Platform: hw.FlagshipSoC(), Apps: benchApps(), LogEvents: true}
	small := Config{
		Platform:  hw.OdroidXU3(),
		Apps:      []App{dnnApp("solo", "a15", 4, 3, 0.05)},
		LogEvents: true,
	}
	// The reuse sequence big→small→big exercises store shrink, map clear
	// with stale keys, and regrowth into retained capacity.
	seq := []Config{big, small, big, small, big}

	var reused *Engine
	for i, cfg := range seq {
		fresh := mustEngine(t, cfg)
		if err := fresh.Run(10); err != nil {
			t.Fatal(err)
		}
		want := reportJSON(t, fresh.Report())

		if reused == nil {
			reused = mustEngine(t, cfg)
		} else if err := reused.Reset(cfg); err != nil {
			t.Fatalf("step %d: Reset: %v", i, err)
		}
		if err := reused.Run(10); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got := reportJSON(t, reused.Report())
		if string(got) != string(want) {
			t.Fatalf("step %d: reused-engine report differs from fresh engine\nfresh:  %s\nreused: %s", i, want, got)
		}
	}
}

// TestResetAfterError: a Reset that fails validation leaves the engine
// poisoned only until the next successful Reset, which must fully rewind
// it again.
func TestResetAfterError(t *testing.T) {
	good := Config{Platform: hw.OdroidXU3(), Apps: []App{dnnApp("d", "a15", 4, 3, 0.05)}, LogEvents: true}
	e := mustEngine(t, good)
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Apps = []App{dnnApp("d", "nope", 4, 3, 0.05)}
	if err := e.Reset(bad); err == nil {
		t.Fatal("Reset accepted an app on an unknown cluster")
	}

	if err := e.Reset(good); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, good)
	if err := fresh.Run(5); err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, e.Report())) != string(reportJSON(t, fresh.Report())) {
		t.Fatal("report after recovering from a failed Reset differs from a fresh engine")
	}
}

// TestResetRejectsDuplicateApp: validation inside Reset sees the apps
// inserted so far, not leftovers of the previous run.
func TestResetRejectsDuplicateApp(t *testing.T) {
	cfg := Config{Platform: hw.OdroidXU3(), Apps: []App{
		dnnApp("d", "a15", 4, 3, 0.05),
		dnnApp("d", "a7", 4, 3, 0.05),
	}}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted duplicate app names")
	}
	e := mustEngine(t, Config{Platform: hw.OdroidXU3(), Apps: []App{dnnApp("d", "a15", 4, 3, 0.05)}})
	if err := e.Reset(cfg); err == nil {
		t.Fatal("Reset accepted duplicate app names")
	}
}
