package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the boxed container/heap implementation the typed eventHeap
// replaced, kept here as the property-test oracle: the rewrite must pop in
// exactly the same (t, seq) order.
type refHeap []hevent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(hevent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// TestEventHeapMatchesContainerHeap drives the typed heap and the
// container/heap oracle through identical random interleavings of pushes
// and pops and requires identical pop sequences. Duplicate timestamps are
// sampled deliberately often so the seq tie-break is exercised.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var typed eventHeap
		ref := &refHeap{}
		var seq int64
		n := 1 + rng.Intn(300)
		for op := 0; op < n; op++ {
			if len(typed) != ref.Len() {
				t.Fatalf("trial %d: size diverged: %d vs %d", trial, len(typed), ref.Len())
			}
			// Push ~2/3 of the time so the heap grows and drains repeatedly.
			if ref.Len() == 0 || rng.Intn(3) < 2 {
				seq++
				ev := hevent{
					// Coarse timestamps force (t, seq) ties.
					t:    float64(rng.Intn(20)) * 0.5,
					seq:  seq,
					kind: hKind(rng.Intn(7)),
					app:  int32(rng.Intn(4)) - 1,
				}
				typed.push(ev)
				heap.Push(ref, ev)
				continue
			}
			got := typed.pop()
			want := heap.Pop(ref).(hevent)
			if got != want {
				t.Fatalf("trial %d op %d: pop = %+v, want %+v", trial, op, got, want)
			}
		}
		// Drain: full order must match.
		for ref.Len() > 0 {
			got := typed.pop()
			want := heap.Pop(ref).(hevent)
			if got != want {
				t.Fatalf("trial %d drain: pop = %+v, want %+v", trial, got, want)
			}
		}
		if len(typed) != 0 {
			t.Fatalf("trial %d: typed heap not drained: %d left", trial, len(typed))
		}
	}
}

// TestEventHeapZeroAllocSteadyState pins the point of the typed heap: once
// the backing array has grown to the working-set size, push and pop
// allocate nothing. (container/heap boxed every Push through `any`, one
// allocation per scheduled event.)
func TestEventHeapZeroAllocSteadyState(t *testing.T) {
	var h eventHeap
	var seq int64
	cycle := func() {
		for i := 0; i < 128; i++ {
			seq++
			h.push(hevent{t: float64((i * 37) % 64), seq: seq, kind: hRelease, app: int32(i % 4)})
		}
		for len(h) > 0 {
			h.pop()
		}
	}
	cycle() // warm up the backing array
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per cycle, want 0", allocs)
	}
}
