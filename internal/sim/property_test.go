package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/tensor"
)

// randomWorkload builds a structurally valid random workload on the XU3.
func randomWorkload(rng *tensor.RNG) []App {
	n := 1 + rng.Intn(4)
	apps := make([]App, 0, n)
	coresLeft := map[string]int{"a15": 4, "a7": 4}
	clusters := []string{"a15", "a7"}
	for i := 0; i < n; i++ {
		cl := clusters[rng.Intn(2)]
		if coresLeft[cl] == 0 {
			continue
		}
		cores := 1 + rng.Intn(coresLeft[cl])
		coresLeft[cl] -= cores
		name := string(rune('a' + i))
		if rng.Intn(2) == 0 {
			apps = append(apps, App{
				Name:       name,
				Kind:       KindDNN,
				Profile:    perf.PaperReferenceProfile(),
				Level:      1 + rng.Intn(4),
				PeriodS:    0.1 + rng.Float64(),
				ModelBytes: 350 << 10,
				StartS:     rng.Float64() * 2,
				Placement:  Placement{Cluster: cl, Cores: cores},
			})
		} else {
			apps = append(apps, App{
				Name:      name,
				Kind:      KindBackground,
				Util:      0.1 + 0.9*rng.Float64(),
				StartS:    rng.Float64() * 2,
				Placement: Placement{Cluster: cl, Cores: cores},
			})
		}
	}
	if len(apps) == 0 {
		apps = append(apps, App{
			Name: "solo", Kind: KindBackground, Util: 0.5,
			Placement: Placement{Cluster: "a7", Cores: 1},
		})
	}
	return apps
}

// Property: for any random workload, total energy equals the sum of
// cluster energies, average power is within physical bounds, and app
// statistics are internally consistent.
func TestSimConservationProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		e, err := New(Config{Platform: hw.OdroidXU3(), Apps: randomWorkload(rng)})
		if err != nil {
			return false
		}
		if err := e.Run(5 + rng.Float64()*5); err != nil {
			return false
		}
		rep := e.Report()

		// Energy conservation.
		var sum float64
		for _, c := range rep.Clusters {
			sum += c.EnergyMJ
		}
		if math.Abs(sum-rep.TotalEnergyMJ) > 1e-6*(1+rep.TotalEnergyMJ) {
			return false
		}

		// Power bounds: at least the static floor, at most every cluster
		// flat out at max OPP.
		plat := hw.OdroidXU3()
		minP, maxP := 0.0, 0.0
		for _, c := range plat.Clusters {
			minP += c.IdlePowerMW()
			maxP += c.BusyPowerMW(c.MaxOPP(), c.Cores, 1)
		}
		if rep.AvgPowerMW < minP-1e-6 || rep.AvgPowerMW > maxP+1e-6 {
			return false
		}

		// Per-app counters: completed + dropped <= released; completed
		// latencies non-negative.
		for _, a := range rep.Apps {
			if a.Kind != KindDNN {
				continue
			}
			if a.Completed+a.Dropped > a.Released {
				return false
			}
			if a.Missed > a.Completed {
				return false
			}
			if a.AvgLatency < 0 || a.MaxLatency < a.AvgLatency-1e-9 {
				return false
			}
		}

		// Temperature stays within [ambient, steady-state at max power].
		if rep.MaxTempC < plat.AmbientC-1e-9 {
			return false
		}
		if rep.MaxTempC > plat.Thermal.SteadyStateC(plat.AmbientC, maxP/1000)+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling the simulated duration of a steady workload at least
// doubles accumulated energy (monotone accounting, no resets).
func TestSimEnergyMonotoneInTime(t *testing.T) {
	run := func(dur float64) float64 {
		e, err := New(Config{
			Platform: hw.OdroidXU3(),
			Apps: []App{{
				Name: "bg", Kind: KindBackground, Util: 0.7,
				Placement: Placement{Cluster: "a15", Cores: 2},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(dur); err != nil {
			t.Fatal(err)
		}
		return e.Report().TotalEnergyMJ
	}
	e5, e10 := run(5), run(10)
	if e10 < 1.99*e5 || e10 > 2.01*e5 {
		t.Fatalf("steady workload energy not linear in time: %.1f vs %.1f", e5, e10)
	}
}

// Property: a DNN's completed-frame count never decreases when the cluster
// frequency rises (DVFS monotonicity at the QoS level).
func TestSimThroughputMonotoneInFrequency(t *testing.T) {
	run := func(oppIdx int) int {
		e, err := New(Config{
			Platform: hw.OdroidXU3(),
			Apps: []App{{
				Name: "d", Kind: KindDNN, Profile: perf.PaperReferenceProfile(),
				Level: 4, PeriodS: 0.2, ModelBytes: 350 << 10,
				Placement: Placement{Cluster: "a15", Cores: 4},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetOPP("a15", oppIdx); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(10); err != nil {
			t.Fatal(err)
		}
		info, _ := e.App("d")
		return info.Completed
	}
	prev := -1
	for _, idx := range []int{0, 4, 8, 12, 16} {
		got := run(idx)
		if got < prev {
			t.Fatalf("completed frames fell from %d to %d as frequency rose", prev, got)
		}
		prev = got
	}
}
