package sim

import (
	"reflect"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
)

// TestSnapshotIntoMatchesSnapshot: rebuilding a reused snapshot must
// capture exactly what a fresh Snapshot captures, at every point of a
// run — SnapshotInto is the manager's per-tick view source, so any drift
// here is a planning-input bug.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	// One reused snapshot across engines at different horizons: buffer
	// contents from the previous rebuild must never leak into the next.
	var reused Snapshot
	for _, horizon := range []float64{0.5, 1, 2, 4} {
		e, err := New(Config{Platform: hw.FlagshipSoC(), Apps: benchApps()})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(horizon); err != nil {
			t.Fatal(err)
		}
		fresh := e.Snapshot()
		e.SnapshotInto(&reused)
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("at t=%.1f: SnapshotInto diverged from Snapshot:\nfresh:  %+v\nreused: %+v",
				horizon, fresh, reused)
		}
	}
}

// TestSnapshotIntoZeroAllocSteadyState pins the reuse contract: once the
// snapshot's buffers have grown to the engine's working set, rebuilding
// it allocates nothing.
func TestSnapshotIntoZeroAllocSteadyState(t *testing.T) {
	e, err := New(Config{Platform: hw.FlagshipSoC(), Apps: benchApps()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	e.SnapshotInto(&s) // grow the buffers
	if allocs := testing.AllocsPerRun(100, func() { e.SnapshotInto(&s) }); allocs != 0 {
		t.Fatalf("steady-state SnapshotInto allocated %.1f times, want 0", allocs)
	}
}
