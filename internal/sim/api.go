package sim

import (
	"fmt"
	"sort"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
)

// This file is the controller-facing API of the engine: the "monitors"
// (observation) and "knobs" (actuation) the RTM layer of Fig 5 uses.

// ---- Monitors (observation) ----

// Now returns the simulation clock in seconds.
func (e *Engine) Now() float64 { return e.now }

// Temperature returns the current die temperature in °C — a device monitor.
func (e *Engine) Temperature() float64 { return e.thermal.TempC }

// ThrottleC returns the platform's thermal throttle trip point.
func (e *Engine) ThrottleC() float64 { return e.plat.Thermal.ThrottleC }

// Ambient returns the current ambient temperature in °C.
func (e *Engine) Ambient() float64 { return e.ambient }

// SetAmbient changes the ambient temperature (an environmental
// disturbance: the device moving into a pocket or sunlight). The thermal
// trajectory and any pending throttle alarm are re-derived.
func (e *Engine) SetAmbient(c float64) {
	if c == e.ambient {
		return
	}
	e.ambient = c
	// Ambient feeds the thermal power budget planners work against, so it
	// advances the planning epoch; the utilisation/rate caches never read
	// it and stay valid.
	e.planEpoch++
	e.refresh()
}

// Platform returns the simulated platform description.
func (e *Engine) Platform() *hw.Platform { return e.plat }

// TotalPowerMW returns the instantaneous platform power — a device monitor.
func (e *Engine) TotalPowerMW() float64 {
	total := 0.0
	for _, cs := range e.clusterList {
		total += e.clusterPowerMW(cs)
	}
	return total
}

// PlanEpoch is a monotone counter over planning-relevant engine state:
// the running-app set, model levels, placements, per-cluster OPPs,
// cluster availability and the ambient temperature. Two calls returning
// the same value guarantee that
// every View field a planning policy derives from that state is unchanged
// — the cheap dirty check behind the rtm manager's replan elision.
// Continuously-moving observables (clock, die temperature, per-app
// latency statistics) are deliberately outside it.
func (e *Engine) PlanEpoch() uint64 { return e.planEpoch }

// AppCount returns the number of configured apps.
func (e *Engine) AppCount() int { return len(e.appList) }

// AppAt returns the observable state of the app at index i in creation
// order — the allocation-free counterpart of Apps for callers walking the
// app set.
func (e *Engine) AppAt(i int) AppInfo { return e.appInfo(e.appList[i]) }

// AppInfo is the observable state of one app — application monitors
// (frame latency, misses) plus current knob settings.
type AppInfo struct {
	Name      string
	Kind      AppKind
	Running   bool
	Placement Placement
	Level     int
	PeriodS   float64

	// Profile and ModelBytes echo the app description so planners can
	// reason about alternative levels and memory footprints.
	Profile    perf.ModelProfile
	ModelBytes int64
	Util       float64 // render/background demand

	Released   int
	Completed  int
	Missed     int
	Dropped    int
	Aborted    int // frames killed by a cluster fault (in-flight or released while unhosted)
	AvgLatency float64
	MaxLatency float64
}

// App returns the observable state of the named app.
func (e *Engine) App(name string) (AppInfo, error) {
	a, ok := e.apps[name]
	if !ok {
		return AppInfo{}, fmt.Errorf("sim: unknown app %q", name)
	}
	return e.appInfo(a), nil
}

func (e *Engine) appInfo(a *appState) AppInfo {
	info := AppInfo{
		Name:       a.Name,
		Kind:       a.Kind,
		Running:    a.started && !a.stopped,
		Placement:  a.placed,
		Level:      a.level,
		PeriodS:    a.PeriodS,
		Profile:    a.Profile,
		ModelBytes: a.ModelBytes,
		Util:       a.Util,
		Released:   a.released,
		Completed:  a.completed,
		Missed:     a.missed,
		Dropped:    a.dropped,
		Aborted:    a.aborted,
	}
	if a.completed > 0 {
		info.AvgLatency = a.sumLatency / float64(a.completed)
		info.MaxLatency = a.maxLatency
	}
	return info
}

// Apps returns all apps in deterministic creation order.
func (e *Engine) Apps() []AppInfo {
	out := make([]AppInfo, 0, len(e.appList))
	for _, a := range e.appList {
		out = append(out, e.appInfo(a))
	}
	return out
}

// ClusterInfo is the observable state of one cluster.
type ClusterInfo struct {
	Name      string
	Type      hw.CoreType
	OPPIndex  int
	FreqGHz   float64
	Cores     int
	UsedCores int // CPU clusters: Σ cores of resident apps
	Util      float64
	PowerMW   float64
	EnergyMJ  float64
	Residents []string
	MemFree   int64 // accelerator model memory remaining (0 for DRAM clusters)
	Online    bool  // availability: false while the cluster is failed
}

// Cluster returns the observable state of the named cluster.
func (e *Engine) Cluster(name string) (ClusterInfo, error) {
	cs, ok := e.clusters[name]
	if !ok {
		return ClusterInfo{}, fmt.Errorf("sim: unknown cluster %q", name)
	}
	var info ClusterInfo
	e.clusterInfoInto(cs, &info)
	return info, nil
}

// clusterInfoInto fills info from the cluster's live state, reusing
// info's existing Residents backing storage (every other field is
// overwritten). It is the shared fill behind Cluster and SnapshotInto.
func (e *Engine) clusterInfoInto(cs *clusterState, info *ClusterInfo) {
	residents := info.Residents[:0]
	*info = ClusterInfo{
		Name:     cs.c.Name,
		Type:     cs.c.Type,
		OPPIndex: cs.oppIdx,
		FreqGHz:  cs.c.OPPs[cs.oppIdx].FreqGHz,
		Cores:    cs.c.Cores,
		Util:     e.clusterUtilOf(cs),
		EnergyMJ: cs.energy,
		Online:   cs.online,
	}
	info.PowerMW = cs.cachedPow
	for _, a := range e.appList {
		if a.started && !a.stopped && a.placed.Cluster == cs.c.Name {
			residents = append(residents, a.Name)
			if !cs.c.Type.IsAccelerator() {
				info.UsedCores += a.placed.Cores
			}
		}
	}
	if cs.c.MemBytes > 0 {
		info.MemFree = cs.c.MemBytes - e.acceleratorMemUsed(cs.c.Name, "")
	}
	sort.Strings(residents)
	if len(residents) > 0 {
		info.Residents = residents
	}
}

// Snapshot is a read-only capture of everything a planning policy may
// observe: the clock, the thermal state, and per-app / per-cluster
// observable state. The engine's mutable state is captured as value
// copies — overwriting a Snapshot field cannot reach back into the
// engine. (Shared static configuration referenced from the copies, such
// as profile level tables, stays shared and is read-only by contract.)
type Snapshot struct {
	TimeS     float64
	AmbientC  float64
	TempC     float64
	ThrottleC float64
	Apps      []AppInfo
	Clusters  []ClusterInfo
}

// Snapshot captures the engine's observable state. Apps are in
// deterministic creation order and Clusters in platform order, so two
// snapshots of identical engine states are identical — the determinism
// anchor for policy planning.
func (e *Engine) Snapshot() Snapshot {
	var s Snapshot
	e.SnapshotInto(&s)
	return s
}

// SnapshotInto rebuilds s in place from the engine's observable state,
// reusing s's Apps and Clusters backing storage (including each cluster's
// Residents buffer). It captures exactly what Snapshot captures without
// the per-call allocations, which is what lets a controller ticking every
// simulated epoch snapshot allocation-free; pass a zero Snapshot to start
// a fresh buffer set.
//
//detlint:hotpath
func (e *Engine) SnapshotInto(s *Snapshot) {
	s.TimeS = e.now
	s.AmbientC = e.ambient
	s.TempC = e.thermal.TempC
	s.ThrottleC = e.plat.Thermal.ThrottleC
	s.Apps = s.Apps[:0]
	for _, a := range e.appList {
		s.Apps = append(s.Apps, e.appInfo(a))
	}
	// Reuse ClusterInfo slots (not just the slice) so each slot's
	// Residents buffer survives the rebuild.
	if cap(s.Clusters) < len(e.clusterList) {
		grown := make([]ClusterInfo, len(e.clusterList))
		copy(grown, s.Clusters[:cap(s.Clusters)])
		s.Clusters = grown
	}
	s.Clusters = s.Clusters[:len(e.clusterList)]
	for i, cs := range e.clusterList {
		e.clusterInfoInto(cs, &s.Clusters[i])
	}
}

// acceleratorMemUsed sums the level-scaled model bytes of DNN apps resident
// on the cluster, excluding `except`.
func (e *Engine) acceleratorMemUsed(cluster, except string) int64 {
	var used int64
	for _, a := range e.appList {
		if a.Name == except || a.stopped || a.placed.Cluster != cluster || a.Kind != KindDNN {
			continue
		}
		used += e.levelBytes(a)
	}
	return used
}

// levelBytes returns the app's resident model size at its current level.
func (e *Engine) levelBytes(a *appState) int64 {
	if a.ModelBytes == 0 {
		return 0
	}
	return a.ModelBytes * int64(a.level) / int64(a.Profile.MaxLevel())
}

// ---- Knobs (actuation) ----

// SetLevel changes a DNN app's model configuration (the application knob).
// The change is free (a dynamic-DNN pointer bump); it applies to the next
// frame. On memory-constrained accelerators the new level must fit.
func (e *Engine) SetLevel(app string, level int) error {
	a, ok := e.apps[app]
	if !ok {
		return fmt.Errorf("sim: unknown app %q", app)
	}
	if a.Kind != KindDNN {
		return fmt.Errorf("sim: app %q is not a DNN", app)
	}
	if level < 1 || level > a.Profile.MaxLevel() {
		return fmt.Errorf("sim: app %q level %d out of range [1,%d]", app, level, a.Profile.MaxLevel())
	}
	if level == a.level {
		return nil
	}
	cl := e.plat.Cluster(a.placed.Cluster)
	if cl.MemBytes > 0 && a.ModelBytes > 0 {
		newBytes := a.ModelBytes * int64(level) / int64(a.Profile.MaxLevel())
		if e.acceleratorMemUsed(a.placed.Cluster, app)+newBytes > cl.MemBytes {
			return fmt.Errorf("sim: level %d of %q does not fit %s memory", level, app, cl.Name)
		}
	}
	a.level = level
	// A level change is planning-relevant (and alters the next release's
	// workload) but touches nothing the utilisation/rate caches read.
	e.planEpoch++
	e.levelSwaps++
	e.refresh()
	return nil
}

// SetOPP changes a cluster's DVFS operating point (a device knob). Every
// resident app sees the new frequency — the shared-domain coupling.
func (e *Engine) SetOPP(cluster string, idx int) error {
	cs, ok := e.clusters[cluster]
	if !ok {
		return fmt.Errorf("sim: unknown cluster %q", cluster)
	}
	if idx < 0 || idx >= len(cs.c.OPPs) {
		return fmt.Errorf("sim: OPP index %d out of range for %s", idx, cluster)
	}
	if idx == cs.oppIdx {
		return nil
	}
	cs.oppIdx = idx
	e.stateVer++
	e.planEpoch++
	e.oppSwitches++
	e.refresh()
	return nil
}

// SetClusterOnline changes a cluster's availability (the hardware-fault
// disturbance knob). Taking a cluster offline aborts its in-flight jobs —
// the work is lost, not migrated — and leaves resident apps unhosted until
// a controller replans them; bringing it back makes it plannable again.
// Both transitions advance the planning epoch and invalidate the derived
// caches, so replan elision and plan memoisation can never serve a plan
// computed against a different availability set.
func (e *Engine) SetClusterOnline(cluster string, online bool) error {
	cs, ok := e.clusters[cluster]
	if !ok {
		return fmt.Errorf("sim: unknown cluster %q", cluster)
	}
	if cs.online == online {
		return nil
	}
	cs.online = online
	kind := EvClusterRepair
	if online {
		e.offline--
		e.clusterRepairs++
	} else {
		e.offline++
		e.clusterFails++
		kind = EvClusterFail
		for _, a := range e.appList {
			if a.placedCS == cs && a.jobActive {
				a.jobActive = false
				a.aborted++
				a.completionSeq = 0 // cancel the pending completion event
			}
		}
	}
	e.stateVer++
	e.planEpoch++
	e.emit(Event{TimeS: e.now, Kind: kind, Cluster: cluster})
	e.refresh()
	return nil
}

// UnhostedApps counts running DNN apps currently placed on an offline
// cluster — work that needs a replan to resume. The zero-fault fast path
// keeps this cheap enough to poll every tick.
func (e *Engine) UnhostedApps() int {
	if e.offline == 0 {
		return 0
	}
	n := 0
	for _, a := range e.appList {
		if a.Kind == KindDNN && a.started && !a.stopped && !a.placedCS.online {
			n++
		}
	}
	return n
}

// Migrate moves an app to a new placement (the task-mapping knob),
// charging the migration model's downtime during which the app's current
// job stalls. Capacity and accelerator memory are checked first.
func (e *Engine) Migrate(app string, to Placement) error {
	a, ok := e.apps[app]
	if !ok {
		return fmt.Errorf("sim: unknown app %q", app)
	}
	cl := e.plat.Cluster(to.Cluster)
	if cl == nil {
		return fmt.Errorf("sim: unknown cluster %q", to.Cluster)
	}
	if !e.clusters[to.Cluster].online {
		return fmt.Errorf("sim: cluster %q is offline", to.Cluster)
	}
	if cl.Type.IsAccelerator() {
		to.Cores = cl.Cores
	} else if to.Cores < 1 || to.Cores > cl.Cores {
		return fmt.Errorf("sim: core count %d out of range for %s", to.Cores, to.Cluster)
	}
	if a.placed == to {
		return nil
	}
	// CPU capacity check.
	if !cl.Type.IsAccelerator() {
		used := 0
		for _, o := range e.appList {
			if o.Name != app && o.started && !o.stopped && o.placed.Cluster == to.Cluster {
				used += o.placed.Cores
			}
		}
		if used+to.Cores > cl.Cores {
			return fmt.Errorf("sim: %s has %d/%d cores used; cannot fit %d more",
				to.Cluster, used, cl.Cores, to.Cores)
		}
	}
	// Accelerator memory check.
	if cl.MemBytes > 0 && a.Kind == KindDNN && a.ModelBytes > 0 {
		if e.acceleratorMemUsed(to.Cluster, app)+e.levelBytes(a) > cl.MemBytes {
			return fmt.Errorf("sim: model of %q does not fit %s memory", app, to.Cluster)
		}
	}
	from := a.placed
	a.placed = to
	a.placedCS = e.clusters[to.Cluster]
	if a.Kind == KindDNN {
		a.blockedUntil = e.now + e.mig.Downtime(e.levelBytes(a))
		if a.blockedUntil > e.maxBlockedUntil {
			e.maxBlockedUntil = a.blockedUntil
		}
	}
	e.stateVer++
	e.planEpoch++
	e.migrations++
	if e.logEvents {
		e.eventLog = append(e.eventLog, Event{TimeS: e.now, Kind: EvMigrated, App: app,
			Note: fmt.Sprintf("%s -> %s/%d", from.Cluster, to.Cluster, to.Cores)})
	}
	e.refresh()
	return nil
}

// ---- Results ----

// ClusterReport is the per-cluster summary after Run.
type ClusterReport struct {
	Name     string
	EnergyMJ float64
	BusyS    float64
}

// Report is the overall simulation outcome.
type Report struct {
	DurationS     float64
	TotalEnergyMJ float64
	AvgPowerMW    float64
	MaxTempC      float64
	OverThrottleS float64
	OverCriticalS float64
	Migrations    int
	LevelSwaps    int
	OPPSwitches   int

	// Fault accounting (all zero on a fault-free run). JobsAborted sums the
	// per-app Aborted stats; UnhostedS integrates running-DNN app-seconds
	// spent placed on an offline cluster; the Degraded* counters split frame
	// outcomes by whether any cluster was offline when they happened.
	ClusterFails      int
	ClusterRepairs    int
	JobsAborted       int
	UnhostedS         float64
	DegradedFrames    int
	DegradedCompleted int
	DegradedMissed    int
	DegradedDropped   int

	Apps     []AppInfo
	Clusters []ClusterReport
	Events   []Event // only when LogEvents was set
}

// Report summarises the run so far.
func (e *Engine) Report() Report {
	r := Report{
		DurationS:     e.now,
		TotalEnergyMJ: e.totalEnergy,
		MaxTempC:      e.maxTempC,
		OverThrottleS: e.overThrotS,
		OverCriticalS: e.overCritS,
		Migrations:    e.migrations,
		LevelSwaps:    e.levelSwaps,
		OPPSwitches:   e.oppSwitches,

		ClusterFails:      e.clusterFails,
		ClusterRepairs:    e.clusterRepairs,
		UnhostedS:         e.unhostedS,
		DegradedFrames:    e.degReleased,
		DegradedCompleted: e.degCompleted,
		DegradedMissed:    e.degMissed,
		DegradedDropped:   e.degDropped,

		Apps:   e.Apps(),
		Events: e.eventLog,
	}
	for _, a := range e.appList {
		r.JobsAborted += a.aborted
	}
	if e.now > 0 {
		r.AvgPowerMW = e.totalEnergy / e.now
	}
	for _, cs := range e.clusterList {
		r.Clusters = append(r.Clusters, ClusterReport{Name: cs.c.Name, EnergyMJ: cs.energy, BusyS: cs.busyS})
	}
	return r
}
