// Package dataset generates a deterministic synthetic image-classification
// task standing in for CIFAR-10, which the paper uses but which is not
// available offline. See DESIGN.md §2 for the substitution argument: the
// paper's claims concern the *relative* accuracy of the 25/50/75/100%
// dynamic-DNN configurations, so the dataset's job is to be (a) learnable
// by a small grouped CNN, (b) hard enough that accuracy rises with model
// capacity with diminishing returns, and (c) bit-reproducible.
//
// Construction: 10 classes arranged as 5 confusable pairs. Each pair
// shares a grating orientation (coarse cue, easy); the two classes within
// a pair differ in spatial frequency and a colour ramp (fine cues, hard).
// A low-capacity model learns the coarse cue and plateaus near the
// pair-resolution ceiling; added groups resolve the fine cues.
package dataset

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// Config parametrises generation. The zero value is not valid; use
// DefaultConfig or QuickConfig.
type Config struct {
	Classes  int     // number of classes (10 for the CIFAR-10 analogue)
	Size     int     // square image size in pixels (32 paper-scale)
	Channels int     // colour channels (3)
	TrainN   int     // training samples
	ValN     int     // validation samples
	Noise    float64 // additive Gaussian pixel noise σ
	Jitter   float64 // per-sample phase/translation jitter strength in [0,1]
	Seed     uint64
}

// DefaultConfig mirrors the paper's CIFAR-10 setting: 10 classes, 32×32×3,
// 10 000 validation images (Fig 4(b) evaluates on the 10k validation set).
func DefaultConfig() Config {
	return Config{
		Classes:  10,
		Size:     32,
		Channels: 3,
		TrainN:   8000,
		ValN:     10000,
		Noise:    1.2,
		Jitter:   1.0,
		Seed:     1,
	}
}

// QuickConfig is a reduced-size variant for unit tests and -short runs.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Size = 16
	c.TrainN = 1200
	c.ValN = 600
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: need >= 2 classes, got %d", c.Classes)
	case c.Size < 8 || c.Size%4 != 0:
		return fmt.Errorf("dataset: size must be >= 8 and divisible by 4, got %d", c.Size)
	case c.Channels < 1:
		return fmt.Errorf("dataset: need >= 1 channel, got %d", c.Channels)
	case c.TrainN < c.Classes || c.ValN < c.Classes:
		return fmt.Errorf("dataset: need at least one sample per class (train %d, val %d)", c.TrainN, c.ValN)
	case c.Noise < 0:
		return fmt.Errorf("dataset: negative noise %f", c.Noise)
	}
	return nil
}

// Dataset holds generated tensors. Images are NCHW float32, roughly
// zero-mean unit-range. Labels are class indices.
type Dataset struct {
	Cfg    Config
	TrainX *tensor.Tensor
	TrainY []int
	ValX   *tensor.Tensor
	ValY   []int
}

// Generate builds the dataset deterministically from cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{Cfg: cfg}
	rng := tensor.NewRNG(cfg.Seed)
	ds.TrainX, ds.TrainY = genSplit(cfg, rng, cfg.TrainN)
	ds.ValX, ds.ValY = genSplit(cfg, rng, cfg.ValN)
	return ds, nil
}

// MustGenerate is Generate that panics on configuration error; convenient
// in tests and examples where the config is a literal.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

func genSplit(cfg Config, rng *tensor.RNG, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, cfg.Channels, cfg.Size, cfg.Size)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % cfg.Classes // balanced classes
		y[i] = c
		renderSample(cfg, rng, c, x.Data()[i*cfg.Channels*cfg.Size*cfg.Size:(i+1)*cfg.Channels*cfg.Size*cfg.Size])
	}
	return x, y
}

// renderSample draws one image of class c into dst (CHW layout).
func renderSample(cfg Config, rng *tensor.RNG, c int, dst []float32) {
	s := cfg.Size
	pair := c / 2   // 5 pairs: the coarse, easy cue
	within := c % 2 // fine cue distinguishing the pair members
	pairs := (cfg.Classes + 1) / 2

	// Coarse cue: grating orientation per pair.
	theta := math.Pi * float64(pair) / float64(pairs)
	ct, st := math.Cos(theta), math.Sin(theta)

	// Fine cue 1: spatial frequency differs within the pair. The gap is
	// deliberately small so resolving a pair needs filter capacity beyond
	// the coarse orientation detector.
	freq := 2.2
	if within == 1 {
		freq = 2.6
	}

	// Fine cue 2: colour ramp direction differs within the pair.
	rampSign := float64(1 - 2*within)

	// Per-class difficulty gradient: higher class indices get more noise
	// and weaker fine cues. This is what produces the per-class accuracy
	// spread reported as error bars in the paper's Fig 4(b), and it keeps
	// the capacity-accuracy curve gradual: small configurations solve the
	// easy classes, added groups recover progressively harder ones.
	difficulty := float64(c) / float64(cfg.Classes-1) // 0 (easy) .. 1 (hard)
	noiseScale := 0.5 + 2.5*difficulty
	fineScale := 1.0 - 0.85*difficulty

	// Per-sample nuisance parameters.
	phase := rng.Float64() * 2 * math.Pi * cfg.Jitter
	dx := (rng.Float64() - 0.5) * 0.35 * float64(s) * cfg.Jitter
	dy := (rng.Float64() - 0.5) * 0.35 * float64(s) * cfg.Jitter
	amp := 0.7 + 0.6*rng.Float64()
	// Occluding patch (cutout): zeroes a random square region, forcing
	// classifiers to use distributed evidence rather than one locus.
	occSize := int(float64(s) / 4 * cfg.Jitter)
	occX, occY := -1, -1
	if occSize > 0 {
		occX = rng.Intn(s - occSize + 1)
		occY = rng.Intn(s - occSize + 1)
	}

	inv := 1.0 / float64(s)
	for ch := 0; ch < cfg.Channels; ch++ {
		// Each channel sees the grating with a channel-dependent phase
		// offset plus the class-pair colour ramp.
		chPhase := float64(ch) * 0.9
		base := ch * s * s
		for yy := 0; yy < s; yy++ {
			for xx := 0; xx < s; xx++ {
				var val float64
				occluded := occSize > 0 && xx >= occX && xx < occX+occSize && yy >= occY && yy < occY+occSize
				if !occluded {
					u := (float64(xx) + dx) * inv
					v := (float64(yy) + dy) * inv
					g := amp * math.Sin(2*math.Pi*freq*(u*ct+v*st)+phase+chPhase)
					ramp := 0.3 * fineScale * rampSign * (u - v) * float64(ch+1) / float64(cfg.Channels)
					val = 0.6*g + ramp
				}
				noise := cfg.Noise * noiseScale * rng.NormFloat64()
				dst[base+yy*s+xx] = float32(val + noise)
			}
		}
	}
}

// Batches returns shuffled mini-batch index slices covering [0,n) once.
// The shuffle is driven by rng so training is reproducible.
func Batches(rng *tensor.RNG, n, batchSize int) [][]int {
	if batchSize <= 0 {
		panic("dataset: batchSize must be positive")
	}
	perm := rng.Perm(n)
	var out [][]int
	for i := 0; i < n; i += batchSize {
		j := i + batchSize
		if j > n {
			j = n
		}
		out = append(out, perm[i:j])
	}
	return out
}

// Gather copies the rows of x (NCHW) selected by idx into a new batch
// tensor and returns the matching labels.
func Gather(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int) {
	per := x.Len() / x.Dim(0)
	shape := append([]int{len(idx)}, x.Shape()[1:]...)
	out := tensor.New(shape...)
	labels := make([]int, len(idx))
	for bi, si := range idx {
		copy(out.Data()[bi*per:(bi+1)*per], x.Data()[si*per:(si+1)*per])
		labels[bi] = y[si]
	}
	return out, labels
}
