package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

func TestGenerateShapes(t *testing.T) {
	cfg := QuickConfig()
	ds := MustGenerate(cfg)
	wantTrain := []int{cfg.TrainN, cfg.Channels, cfg.Size, cfg.Size}
	for i, d := range ds.TrainX.Shape() {
		if d != wantTrain[i] {
			t.Fatalf("train shape %v, want %v", ds.TrainX.Shape(), wantTrain)
		}
	}
	if len(ds.TrainY) != cfg.TrainN || len(ds.ValY) != cfg.ValN {
		t.Fatal("label lengths mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(QuickConfig())
	b := MustGenerate(QuickConfig())
	if !a.TrainX.AllClose(b.TrainX, 0) || !a.ValX.AllClose(b.ValX, 0) {
		t.Fatal("same seed must generate identical data")
	}
	c := QuickConfig()
	c.Seed = 2
	d := MustGenerate(c)
	if a.TrainX.AllClose(d.TrainX, 0) {
		t.Fatal("different seeds must generate different data")
	}
}

func TestClassesBalanced(t *testing.T) {
	ds := MustGenerate(QuickConfig())
	counts := make([]int, ds.Cfg.Classes)
	for _, y := range ds.ValY {
		if y < 0 || y >= ds.Cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Fatalf("class imbalance: min %d max %d", minC, maxC)
	}
}

func TestPixelsBoundedAndVaried(t *testing.T) {
	ds := MustGenerate(QuickConfig())
	var sum, sumSq float64
	for _, v := range ds.TrainX.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite pixel")
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(ds.TrainX.Len())
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.25 {
		t.Fatalf("pixel mean %.3f too far from 0", mean)
	}
	// The hardest classes run at ~3× base noise, so the aggregate std can
	// reach ~2× the base noise setting.
	if std < 0.3 || std > 3.0 {
		t.Fatalf("pixel std %.3f outside sane range", std)
	}
}

func TestClassSignalPresent(t *testing.T) {
	// Mean images of two classes in *different pairs* must differ much
	// more than two renderings of the same class — i.e. there is signal.
	cfg := QuickConfig()
	cfg.Noise = 0.2
	ds := MustGenerate(cfg)
	per := ds.TrainX.Len() / ds.TrainX.Dim(0)
	meanOf := func(class int) []float64 {
		m := make([]float64, per)
		n := 0
		for i, y := range ds.TrainY {
			if y != class {
				continue
			}
			for j := 0; j < per; j++ {
				m[j] += float64(ds.TrainX.Data()[i*per+j])
			}
			n++
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	m0, m2 := meanOf(0), meanOf(2) // different pairs
	m0b := meanOf(0)               // same computation, sanity
	if dist(m0, m0b) != 0 {
		t.Fatal("meanOf is not deterministic")
	}
	if dist(m0, m2) < 1e-3 {
		t.Fatal("class means indistinguishable: no learnable signal")
	}
}

func TestClassDifficultyGradient(t *testing.T) {
	// The generator gives higher class indices more noise (the mechanism
	// behind Fig 4(b)'s per-class spread). Verify per-class pixel variance
	// rises from class 0 to class Classes-1.
	ds := MustGenerate(QuickConfig())
	per := ds.TrainX.Len() / ds.TrainX.Dim(0)
	varOf := func(class int) float64 {
		var sum, sumSq float64
		n := 0
		for i, y := range ds.TrainY {
			if y != class {
				continue
			}
			for j := 0; j < per; j++ {
				v := float64(ds.TrainX.Data()[i*per+j])
				sum += v
				sumSq += v * v
				n++
			}
		}
		mean := sum / float64(n)
		return sumSq/float64(n) - mean*mean
	}
	easy := varOf(0)
	hard := varOf(ds.Cfg.Classes - 1)
	if hard <= easy*1.2 {
		t.Fatalf("hard-class variance %.3f not clearly above easy-class %.3f", hard, easy)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Classes: 1, Size: 16, Channels: 3, TrainN: 10, ValN: 10},
		{Classes: 10, Size: 6, Channels: 3, TrainN: 10, ValN: 10},
		{Classes: 10, Size: 18, Channels: 3, TrainN: 100, ValN: 100}, // not /4
		{Classes: 10, Size: 16, Channels: 0, TrainN: 10, ValN: 10},
		{Classes: 10, Size: 16, Channels: 3, TrainN: 5, ValN: 10},
		{Classes: 10, Size: 16, Channels: 3, TrainN: 100, ValN: 100, Noise: -1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestBatchesCoverAllIndicesOnce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + int(seed%90)
		bs := 1 + int(seed%16)
		seen := make([]bool, n)
		total := 0
		for _, b := range Batches(rng, n, bs) {
			if len(b) > bs || len(b) == 0 {
				return false
			}
			for _, i := range b {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherSelectsCorrectRows(t *testing.T) {
	x := tensor.New(4, 1, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	y := []int{0, 1, 2, 3}
	bx, by := Gather(x, y, []int{2, 0})
	if by[0] != 2 || by[1] != 0 {
		t.Fatalf("gathered labels %v, want [2 0]", by)
	}
	if bx.At(0, 0, 0, 0) != x.At(2, 0, 0, 0) || bx.At(1, 0, 0, 0) != x.At(0, 0, 0, 0) {
		t.Fatal("gathered rows mismatch")
	}
}
