// Package perf computes inference latency, power and energy for a DNN
// workload placed on a hardware cluster, and enumerates the operating-point
// space (model level × cluster × core count × DVFS level) that Fig 4(a) of
// the paper plots and that the runtime manager searches.
package perf

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/hw"
)

// LevelSpec describes one dynamic-DNN configuration as the perf model sees
// it: its compute cost and its platform-independent metrics.
type LevelSpec struct {
	Level      int
	Name       string // "25%", "50%", ...
	MACs       int64
	Accuracy   float64 // top-1 in [0,1]
	Confidence float64 // mean top-1 softmax probability
	MemBytes   int64
}

// ModelProfile is the per-level characterisation of a dynamic DNN (or, for
// baselines, a set of independent static models presented uniformly).
type ModelProfile struct {
	Name   string
	Levels []LevelSpec // ascending level
}

// Validate reports structural errors.
func (p ModelProfile) Validate() error {
	if len(p.Levels) == 0 {
		return fmt.Errorf("perf: profile %q has no levels", p.Name)
	}
	for i, l := range p.Levels {
		if l.MACs <= 0 {
			return fmt.Errorf("perf: profile %q level %d has MACs %d", p.Name, i, l.MACs)
		}
		if i > 0 && l.MACs <= p.Levels[i-1].MACs {
			return fmt.Errorf("perf: profile %q MACs not increasing at level %d", p.Name, i)
		}
		if l.Accuracy < 0 || l.Accuracy > 1 {
			return fmt.Errorf("perf: profile %q level %d accuracy %f", p.Name, i, l.Accuracy)
		}
	}
	return nil
}

// Level returns the spec for a 1-based level index.
func (p ModelProfile) Level(level int) LevelSpec {
	for _, l := range p.Levels {
		if l.Level == level {
			return l
		}
	}
	panic(fmt.Sprintf("perf: profile %q has no level %d", p.Name, level))
}

// MaxLevel returns the largest level index.
func (p ModelProfile) MaxLevel() int { return p.Levels[len(p.Levels)-1].Level }

// InferenceLatencyS returns the latency of one inference of `macs` MACs on
// n cores of cluster c at the given OPP.
func InferenceLatencyS(c *hw.Cluster, opp hw.OPP, n int, macs int64) float64 {
	rate := c.EffectiveRate(opp, n)
	if rate <= 0 {
		return math.Inf(1)
	}
	return c.FixedOverheadS + float64(macs)/rate
}

// InferencePowerMW returns the platform power attributable to an inference
// running continuously on n cores of cluster c at the given OPP: the
// cluster's busy power plus the induced companion-CPU power (accelerators
// need a host core for pre-processing).
//
// companionOPP selects the companion's operating point; pass a negative
// index to use the companion's lowest OPP.
func InferencePowerMW(p *hw.Platform, c *hw.Cluster, opp hw.OPP, n int, companionOPPIdx int) float64 {
	pw := c.BusyPowerMW(opp, n, 1)
	if comp := p.Companion(c); comp != nil && c.CompanionUtil > 0 {
		idx := companionOPPIdx
		if idx < 0 || idx >= len(comp.OPPs) {
			idx = 0
		}
		pw += comp.BusyPowerMW(comp.OPPs[idx], comp.Cores, c.CompanionUtil)
	}
	return pw
}

// InferenceEnergyMJ returns energy per inference in millijoules (busy
// power × latency, matching the paper's per-inference mJ accounting).
func InferenceEnergyMJ(latencyS, powerMW float64) float64 { return powerMW * latencyS }

// OperatingPoint is one selectable configuration in the E/P/t/accuracy
// space of Section V: a (model level, cluster, cores, DVFS level) tuple
// with its predicted metrics.
type OperatingPoint struct {
	Platform  string
	Cluster   string
	CoreType  hw.CoreType
	OPPIndex  int
	FreqGHz   float64
	Cores     int
	Level     int
	LevelName string

	LatencyS   float64
	PowerMW    float64
	EnergyMJ   float64
	Accuracy   float64
	Confidence float64
	MemBytes   int64
}

// String renders a point compactly for logs and reports.
func (o OperatingPoint) String() string {
	return fmt.Sprintf("%s/%s %dcore @%.1fGHz %s: t=%.1fms P=%.0fmW E=%.1fmJ acc=%.1f%%",
		o.Platform, o.Cluster, o.Cores, o.FreqGHz, o.LevelName,
		o.LatencyS*1000, o.PowerMW, o.EnergyMJ, 100*o.Accuracy)
}

// EnumerateOptions controls operating-point enumeration.
type EnumerateOptions struct {
	// Clusters restricts enumeration to the named clusters (nil = all).
	Clusters []string
	// SweepCores enumerates every core count 1..Cores for CPU clusters
	// (the task-mapping knob at sub-cluster granularity). When false, only
	// the full cluster is used — Fig 4(a)'s setting.
	SweepCores bool
	// Levels restricts the model levels (nil = all).
	Levels []int
}

// Enumerate builds the operating-point space of a model profile on a
// platform. Points are ordered deterministically: cluster (platform
// order), then level, then core count, then OPP index.
func Enumerate(p *hw.Platform, prof ModelProfile, opt EnumerateOptions) []OperatingPoint {
	allowCluster := func(name string) bool {
		if len(opt.Clusters) == 0 {
			return true
		}
		for _, n := range opt.Clusters {
			if n == name {
				return true
			}
		}
		return false
	}
	allowLevel := func(l int) bool {
		if len(opt.Levels) == 0 {
			return true
		}
		for _, v := range opt.Levels {
			if v == l {
				return true
			}
		}
		return false
	}

	var out []OperatingPoint
	for _, c := range p.Clusters {
		if !allowCluster(c.Name) {
			continue
		}
		coreCounts := []int{c.Cores}
		if opt.SweepCores && !c.Type.IsAccelerator() {
			coreCounts = coreCounts[:0]
			for n := 1; n <= c.Cores; n++ {
				coreCounts = append(coreCounts, n)
			}
		}
		for _, spec := range prof.Levels {
			if !allowLevel(spec.Level) {
				continue
			}
			for _, n := range coreCounts {
				for oi, opp := range c.OPPs {
					lat := InferenceLatencyS(c, opp, n, spec.MACs)
					pw := InferencePowerMW(p, c, opp, n, -1)
					out = append(out, OperatingPoint{
						Platform:   p.Name,
						Cluster:    c.Name,
						CoreType:   c.Type,
						OPPIndex:   oi,
						FreqGHz:    opp.FreqGHz,
						Cores:      n,
						Level:      spec.Level,
						LevelName:  spec.Name,
						LatencyS:   lat,
						PowerMW:    pw,
						EnergyMJ:   InferenceEnergyMJ(lat, pw),
						Accuracy:   spec.Accuracy,
						Confidence: spec.Confidence,
						MemBytes:   spec.MemBytes,
					})
				}
			}
		}
	}
	return out
}

// UniformProfile builds a profile whose level k costs k/maxLevel of
// fullMACs, with the supplied accuracies — the shape of the paper's
// group-pruned dynamic DNN. Accuracy slice length sets the level count.
func UniformProfile(name string, fullMACs int64, fullMemBytes int64, accuracies, confidences []float64) ModelProfile {
	g := len(accuracies)
	prof := ModelProfile{Name: name}
	for k := 1; k <= g; k++ {
		conf := 0.0
		if len(confidences) == g {
			conf = confidences[k-1]
		}
		prof.Levels = append(prof.Levels, LevelSpec{
			Level:      k,
			Name:       fmt.Sprintf("%d%%", 100*k/g),
			MACs:       fullMACs * int64(k) / int64(g),
			Accuracy:   accuracies[k-1],
			Confidence: conf,
			MemBytes:   fullMemBytes * int64(k) / int64(g),
		})
	}
	return prof
}

// PaperAccuracies are the Fig 4(b) top-1 accuracies of the paper's
// 25/50/75/100% models on CIFAR-10, used when an experiment needs the
// published values rather than retraining.
var PaperAccuracies = []float64{0.560, 0.627, 0.688, 0.712}

// PaperReferenceProfile is the profile of the paper's dynamic DNN with
// published accuracies and the calibration workload of Table I.
func PaperReferenceProfile() ModelProfile {
	return UniformProfile("dyndnn-paper", hw.ReferenceWorkloadMACs, 350<<10,
		PaperAccuracies, []float64{0.61, 0.68, 0.74, 0.78})
}
