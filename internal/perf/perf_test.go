package perf

import (
	"math"
	"testing"

	"github.com/emlrtm/emlrtm/internal/hw"
)

func TestProfileValidate(t *testing.T) {
	good := PaperReferenceProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("reference profile invalid: %v", err)
	}
	bad := []ModelProfile{
		{Name: "empty"},
		{Name: "zero-macs", Levels: []LevelSpec{{Level: 1, MACs: 0}}},
		{Name: "non-increasing", Levels: []LevelSpec{
			{Level: 1, MACs: 100}, {Level: 2, MACs: 100}}},
		{Name: "bad-acc", Levels: []LevelSpec{{Level: 1, MACs: 100, Accuracy: 1.2}}},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("profile %q should be rejected", p.Name)
		}
	}
}

func TestProfileLevelLookup(t *testing.T) {
	p := PaperReferenceProfile()
	if p.MaxLevel() != 4 {
		t.Fatalf("MaxLevel = %d", p.MaxLevel())
	}
	l := p.Level(3)
	if l.Name != "75%" {
		t.Fatalf("level 3 name = %q", l.Name)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing level must panic")
		}
	}()
	p.Level(9)
}

func TestUniformProfileScaling(t *testing.T) {
	p := UniformProfile("u", 1000, 4000, []float64{0.5, 0.6, 0.7, 0.8}, nil)
	for k := 1; k <= 4; k++ {
		spec := p.Level(k)
		if spec.MACs != int64(250*k) {
			t.Fatalf("level %d MACs = %d", k, spec.MACs)
		}
		if spec.MemBytes != int64(1000*k) {
			t.Fatalf("level %d mem = %d", k, spec.MemBytes)
		}
	}
}

func TestLatencyMonotoneInFreqAndWork(t *testing.T) {
	c := hw.OdroidXU3().Cluster("a15")
	loOPP, hiOPP := c.MinOPP(), c.MaxOPP()
	if InferenceLatencyS(c, loOPP, 4, 1e6) <= InferenceLatencyS(c, hiOPP, 4, 1e6) {
		t.Fatal("higher frequency must reduce latency")
	}
	if InferenceLatencyS(c, hiOPP, 4, 1e6) >= InferenceLatencyS(c, hiOPP, 4, 2e6) {
		t.Fatal("more work must take longer")
	}
	if InferenceLatencyS(c, hiOPP, 1, 1e6) <= InferenceLatencyS(c, hiOPP, 4, 1e6) {
		t.Fatal("fewer cores must be slower")
	}
	if !math.IsInf(InferenceLatencyS(c, hiOPP, 0, 1e6), 1) {
		t.Fatal("zero cores must be infinitely slow")
	}
}

func TestCompanionPowerIncluded(t *testing.T) {
	p := hw.JetsonNano()
	gpu := p.Cluster("gpu")
	a57 := p.Cluster("a57")
	opp := gpu.OPPs[1] // 614 MHz
	with := InferencePowerMW(p, gpu, opp, 1, 0)
	alone := gpu.BusyPowerMW(opp, 1, 1)
	if with <= alone {
		t.Fatal("companion CPU power must be added for accelerator inference")
	}
	// CPU-only inference has no companion term.
	cpuP := InferencePowerMW(p, a57, a57.OPPs[0], 4, -1)
	if cpuP != a57.BusyPowerMW(a57.OPPs[0], 4, 1) {
		t.Fatal("CPU cluster must not add companion power")
	}
}

func TestEnumerateFig4aSpaceSize(t *testing.T) {
	// Fig 4(a): 4 model configs × (17 A15 + 12 A7 OPPs) = 116 points with
	// full clusters.
	plat := hw.OdroidXU3()
	pts := Enumerate(plat, PaperReferenceProfile(), EnumerateOptions{})
	if len(pts) != 116 {
		t.Fatalf("Fig 4(a) space has %d points, want 116", len(pts))
	}
}

func TestEnumerateFiltersAndCoreSweep(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := PaperReferenceProfile()

	only15 := Enumerate(plat, prof, EnumerateOptions{Clusters: []string{"a15"}})
	if len(only15) != 4*17 {
		t.Fatalf("a15-only points = %d, want 68", len(only15))
	}
	for _, p := range only15 {
		if p.Cluster != "a15" {
			t.Fatal("cluster filter leaked")
		}
	}

	lvl2 := Enumerate(plat, prof, EnumerateOptions{Levels: []int{2}})
	if len(lvl2) != 17+12 {
		t.Fatalf("level-2 points = %d, want 29", len(lvl2))
	}

	sweep := Enumerate(plat, prof, EnumerateOptions{Clusters: []string{"a7"}, SweepCores: true})
	if len(sweep) != 4*4*12 {
		t.Fatalf("core-sweep points = %d, want 192", len(sweep))
	}
}

func TestEnumerateAcceleratorIgnoresCoreSweep(t *testing.T) {
	plat := hw.JetsonNano()
	pts := Enumerate(plat, PaperReferenceProfile(),
		EnumerateOptions{Clusters: []string{"gpu"}, SweepCores: true})
	// GPU is one "core": sweep must not multiply points.
	if len(pts) != 4*len(plat.Cluster("gpu").OPPs) {
		t.Fatalf("gpu points = %d", len(pts))
	}
}

func TestOperatingPointMetricsConsistent(t *testing.T) {
	plat := hw.OdroidXU3()
	for _, p := range Enumerate(plat, PaperReferenceProfile(), EnumerateOptions{}) {
		if p.EnergyMJ <= 0 || p.PowerMW <= 0 || p.LatencyS <= 0 {
			t.Fatalf("non-positive metric in %v", p)
		}
		if math.Abs(p.EnergyMJ-p.PowerMW*p.LatencyS) > 1e-9 {
			t.Fatalf("energy != power×latency in %v", p)
		}
	}
}

func TestTableIWorkedExampleShape(t *testing.T) {
	// The paper's Fig 4 narrative: "a 100% model on the A7 CPU at 900 MHz"
	// meets (400 ms, 100 mJ). Verify those metrics from the raw model.
	plat := hw.OdroidXU3()
	a7 := plat.Cluster("a7")
	opp := a7.OPPs[a7.NearestOPPIndex(0.9)]
	spec := PaperReferenceProfile().Level(4)
	lat := InferenceLatencyS(a7, opp, 4, spec.MACs)
	pw := InferencePowerMW(plat, a7, opp, 4, -1)
	if lat > 0.400 {
		t.Fatalf("A7@0.9GHz 100%% latency %.1fms exceeds 400ms budget", lat*1000)
	}
	if e := InferenceEnergyMJ(lat, pw); e > 100 {
		t.Fatalf("A7@0.9GHz 100%% energy %.1fmJ exceeds 100mJ budget", e)
	}
}

func TestPointString(t *testing.T) {
	plat := hw.OdroidXU3()
	pts := Enumerate(plat, PaperReferenceProfile(), EnumerateOptions{})
	if pts[0].String() == "" {
		t.Fatal("String must render")
	}
}
