package pareto

import (
	"testing"
	"testing/quick"

	"github.com/emlrtm/emlrtm/internal/hw"
	"github.com/emlrtm/emlrtm/internal/perf"
	"github.com/emlrtm/emlrtm/internal/tensor"
)

func fig4aPoints() []perf.OperatingPoint {
	return perf.Enumerate(hw.OdroidXU3(), perf.PaperReferenceProfile(), perf.EnumerateOptions{})
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Fatalf("case %d: Dominates(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestDominatesPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

// Frontier properties: subset of input, contains no dominated point, and
// every excluded point is dominated by some frontier point; idempotent.
func TestFrontierProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 3 + rng.Intn(40)
		type pt struct{ x, y float64 }
		items := make([]pt, n)
		for i := range items {
			items[i] = pt{rng.Float64(), rng.Float64()}
		}
		metric := func(p pt) []float64 { return []float64{p.x, p.y} }
		front := Frontier(items, metric)
		if len(front) == 0 || len(front) > n {
			return false
		}
		// No point on the frontier dominated by any input point.
		for _, fp := range front {
			for _, ip := range items {
				if Dominates(metric(ip), metric(fp)) {
					return false
				}
			}
		}
		// Idempotence.
		if len(Frontier(front, metric)) != len(front) {
			return false
		}
		// Every excluded point is dominated by someone.
		inFront := map[pt]bool{}
		for _, fp := range front {
			inFront[fp] = true
		}
		for _, ip := range items {
			if inFront[ip] {
				continue
			}
			dominated := false
			for _, fp := range front {
				if Dominates(metric(fp), metric(ip)) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetSatisfies(t *testing.T) {
	p := perf.OperatingPoint{LatencyS: 0.2, EnergyMJ: 100, PowerMW: 500, Accuracy: 0.7}
	cases := []struct {
		b    Budget
		want bool
	}{
		{Budget{}, true},
		{Budget{MaxLatencyS: 0.3}, true},
		{Budget{MaxLatencyS: 0.1}, false},
		{Budget{MaxEnergyMJ: 99}, false},
		{Budget{MaxPowerMW: 600, MinAccuracy: 0.6}, true},
		{Budget{MinAccuracy: 0.8}, false},
	}
	for i, c := range cases {
		if got := c.b.Satisfies(p); got != c.want {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

// E7: the paper's first worked example. Budget (400 ms, 100 mJ) on the
// Odroid XU3 space must select the 100% model on the A7 cluster at 0.9 GHz.
func TestPaperWorkedExample400ms100mJ(t *testing.T) {
	best, ok := Best(fig4aPoints(), Budget{MaxLatencyS: 0.400, MaxEnergyMJ: 100})
	if !ok {
		t.Fatal("budget must be satisfiable")
	}
	if best.Cluster != "a7" || best.LevelName != "100%" {
		t.Fatalf("selected %v, want A7 100%% model", best)
	}
	if best.FreqGHz < 0.85 || best.FreqGHz > 0.95 {
		t.Fatalf("selected %.2f GHz, paper says 900 MHz", best.FreqGHz)
	}
}

// E7: the paper's second worked example. Budget (200 ms, 150 mJ) must move
// to a 75% model on the A15 cluster near 1 GHz.
func TestPaperWorkedExample200ms150mJ(t *testing.T) {
	best, ok := Best(fig4aPoints(), Budget{MaxLatencyS: 0.200, MaxEnergyMJ: 150})
	if !ok {
		t.Fatal("budget must be satisfiable")
	}
	if best.Cluster != "a15" || best.LevelName != "75%" {
		t.Fatalf("selected %v, want A15 75%% model", best)
	}
	if best.FreqGHz < 0.8 || best.FreqGHz > 1.2 {
		t.Fatalf("selected %.2f GHz, paper says ~1 GHz", best.FreqGHz)
	}
}

func TestBestInfeasibleBudget(t *testing.T) {
	if _, ok := Best(fig4aPoints(), Budget{MaxLatencyS: 0.0001}); ok {
		t.Fatal("impossible budget must report !ok")
	}
}

func TestMinEnergyAndMinLatencySelectors(t *testing.T) {
	pts := fig4aPoints()
	me, ok := MinEnergy(pts, Budget{})
	if !ok {
		t.Fatal("unconstrained MinEnergy must succeed")
	}
	for _, p := range pts {
		if p.EnergyMJ < me.EnergyMJ {
			t.Fatal("MinEnergy did not find the minimum")
		}
	}
	ml, ok := MinLatency(pts, Budget{})
	if !ok {
		t.Fatal("unconstrained MinLatency must succeed")
	}
	for _, p := range pts {
		if p.LatencyS < ml.LatencyS {
			t.Fatal("MinLatency did not find the minimum")
		}
	}
	// The fastest point should be the biggest cluster at max frequency
	// with the smallest model.
	if ml.Cluster != "a15" || ml.LevelName != "25%" {
		t.Fatalf("fastest point %v implausible", ml)
	}
}

func TestStatsSpans(t *testing.T) {
	pts := fig4aPoints()
	s := Stats(pts)
	if s.N != len(pts) {
		t.Fatal("count mismatch")
	}
	if s.MinLatencyS >= s.MaxLatencyS || s.MinEnergyMJ >= s.MaxEnergyMJ {
		t.Fatal("degenerate spans")
	}
	if s.LatencySpan != s.MaxLatencyS-s.MinLatencyS {
		t.Fatal("latency span arithmetic")
	}
	if s.MinAccuracy != 0.560 || s.MaxAccuracy != 0.712 {
		t.Fatalf("accuracy range [%.3f, %.3f], want paper's [0.560, 0.712]", s.MinAccuracy, s.MaxAccuracy)
	}
}

// The knob-ablation coverage measure: all three knobs together must cover
// at least as many budgets as any single knob alone.
func TestSatisfiableFractionMonotoneInKnobs(t *testing.T) {
	plat := hw.OdroidXU3()
	prof := perf.PaperReferenceProfile()
	grid := func() ([]float64, []float64) {
		var lat, en []float64
		for _, ms := range []float64{30, 60, 120, 250, 500, 1000, 2000} {
			lat = append(lat, ms/1000)
		}
		for _, mj := range []float64{20, 40, 80, 160, 320} {
			en = append(en, mj)
		}
		return lat, en
	}
	latG, enG := grid()

	all := perf.Enumerate(plat, prof, perf.EnumerateOptions{})
	dvfsOnly := perf.Enumerate(plat, prof, perf.EnumerateOptions{
		Clusters: []string{"a15"}, Levels: []int{4}})
	modelOnly := perf.Enumerate(plat, prof, perf.EnumerateOptions{
		Clusters: []string{"a15"}})
	// model-only: fix DVFS to max freq — emulate by filtering.
	var modelOnlyMaxF []perf.OperatingPoint
	for _, p := range modelOnly {
		if p.OPPIndex == len(plat.Cluster("a15").OPPs)-1 {
			modelOnlyMaxF = append(modelOnlyMaxF, p)
		}
	}

	fAll := SatisfiableFraction(all, latG, enG)
	fDVFS := SatisfiableFraction(dvfsOnly, latG, enG)
	fModel := SatisfiableFraction(modelOnlyMaxF, latG, enG)
	if fAll < fDVFS || fAll < fModel {
		t.Fatalf("combined knobs (%.2f) must cover at least single knobs (dvfs %.2f, model %.2f)",
			fAll, fDVFS, fModel)
	}
	if fAll <= fDVFS && fAll <= fModel {
		t.Fatalf("combined knobs (%.2f) should strictly widen coverage vs at least one single knob", fAll)
	}
}

func TestSatisfiableFractionEmptyGrid(t *testing.T) {
	if SatisfiableFraction(fig4aPoints(), nil, nil) != 0 {
		t.Fatal("empty grid must return 0")
	}
}
