// Package pareto provides Pareto-frontier computation and budget queries
// over operating-point spaces. Section V of the paper frames runtime
// management as selecting among "dynamically selectable operating points in
// the E, P, t, accuracy space"; this package implements that selection.
package pareto

import (
	"math"
	"sort"

	"github.com/emlrtm/emlrtm/internal/perf"
)

// Dominates reports whether metric vector a dominates b under minimisation:
// a is no worse in every dimension and strictly better in at least one.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic("pareto: dimension mismatch")
	}
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// Frontier returns the non-dominated subset of items under the metric
// function (minimisation in every dimension). Order of the result follows
// the input order. O(n²), fine for the few-hundred-point spaces here.
func Frontier[T any](items []T, metric func(T) []float64) []T {
	ms := make([][]float64, len(items))
	for i, it := range items {
		ms[i] = metric(it)
	}
	var out []T
	for i := range items {
		dominated := false
		for j := range items {
			if i != j && Dominates(ms[j], ms[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, items[i])
		}
	}
	return out
}

// LatencyEnergyMetric is the Fig 4(a) plane: minimise (latency, energy)
// while maximising accuracy, encoded as (t, E, -acc).
func LatencyEnergyMetric(p perf.OperatingPoint) []float64 {
	return []float64{p.LatencyS, p.EnergyMJ, -p.Accuracy}
}

// Budget expresses an application/device constraint set. Zero-valued
// fields are unconstrained. This is the vocabulary the RTM receives from
// application monitors (latency, accuracy) and device monitors (power).
type Budget struct {
	MaxLatencyS float64
	MaxEnergyMJ float64
	MaxPowerMW  float64
	MinAccuracy float64
}

// Satisfies reports whether point p meets every constraint of b.
func (b Budget) Satisfies(p perf.OperatingPoint) bool {
	if b.MaxLatencyS > 0 && p.LatencyS > b.MaxLatencyS {
		return false
	}
	if b.MaxEnergyMJ > 0 && p.EnergyMJ > b.MaxEnergyMJ {
		return false
	}
	if b.MaxPowerMW > 0 && p.PowerMW > b.MaxPowerMW {
		return false
	}
	if b.MinAccuracy > 0 && p.Accuracy < b.MinAccuracy {
		return false
	}
	return true
}

// Filter returns the points satisfying the budget, preserving order.
func Filter(points []perf.OperatingPoint, b Budget) []perf.OperatingPoint {
	var out []perf.OperatingPoint
	for _, p := range points {
		if b.Satisfies(p) {
			out = append(out, p)
		}
	}
	return out
}

// Best selects from the feasible set by the paper's worked-example rule:
// maximise accuracy first, then minimise energy, then minimise latency.
// ok is false when no point satisfies the budget.
func Best(points []perf.OperatingPoint, b Budget) (best perf.OperatingPoint, ok bool) {
	feasible := Filter(points, b)
	if len(feasible) == 0 {
		return perf.OperatingPoint{}, false
	}
	sort.SliceStable(feasible, func(i, j int) bool {
		a, c := feasible[i], feasible[j]
		if a.Accuracy != c.Accuracy {
			return a.Accuracy > c.Accuracy
		}
		if a.EnergyMJ != c.EnergyMJ {
			return a.EnergyMJ < c.EnergyMJ
		}
		return a.LatencyS < c.LatencyS
	})
	return feasible[0], true
}

// MinEnergy selects the feasible point with the lowest energy (tie-break:
// higher accuracy, then lower latency).
func MinEnergy(points []perf.OperatingPoint, b Budget) (perf.OperatingPoint, bool) {
	feasible := Filter(points, b)
	if len(feasible) == 0 {
		return perf.OperatingPoint{}, false
	}
	sort.SliceStable(feasible, func(i, j int) bool {
		a, c := feasible[i], feasible[j]
		if a.EnergyMJ != c.EnergyMJ {
			return a.EnergyMJ < c.EnergyMJ
		}
		if a.Accuracy != c.Accuracy {
			return a.Accuracy > c.Accuracy
		}
		return a.LatencyS < c.LatencyS
	})
	return feasible[0], true
}

// MinLatency selects the feasible point with the lowest latency
// (tie-break: higher accuracy, then lower energy).
func MinLatency(points []perf.OperatingPoint, b Budget) (perf.OperatingPoint, bool) {
	feasible := Filter(points, b)
	if len(feasible) == 0 {
		return perf.OperatingPoint{}, false
	}
	sort.SliceStable(feasible, func(i, j int) bool {
		a, c := feasible[i], feasible[j]
		if a.LatencyS != c.LatencyS {
			return a.LatencyS < c.LatencyS
		}
		if a.Accuracy != c.Accuracy {
			return a.Accuracy > c.Accuracy
		}
		return a.EnergyMJ < c.EnergyMJ
	})
	return feasible[0], true
}

// RangeStats summarises the dynamic range a set of points offers — the
// paper's claim that combining the model knob with DVFS and mapping
// "achieves a wider dynamic range of performance trade-off" (Section IV)
// is quantified with these numbers in the knob ablation.
type RangeStats struct {
	N           int
	MinLatencyS float64
	MaxLatencyS float64
	MinEnergyMJ float64
	MaxEnergyMJ float64
	MinAccuracy float64
	MaxAccuracy float64
	// HyperVolume is the area of the (latency, energy) rectangle spanned:
	// a scalar proxy for trade-off range.
	LatencySpan float64
	EnergySpan  float64
}

// Stats computes RangeStats over points (which must be non-empty).
func Stats(points []perf.OperatingPoint) RangeStats {
	s := RangeStats{
		N:           len(points),
		MinLatencyS: math.Inf(1), MaxLatencyS: math.Inf(-1),
		MinEnergyMJ: math.Inf(1), MaxEnergyMJ: math.Inf(-1),
		MinAccuracy: math.Inf(1), MaxAccuracy: math.Inf(-1),
	}
	for _, p := range points {
		s.MinLatencyS = math.Min(s.MinLatencyS, p.LatencyS)
		s.MaxLatencyS = math.Max(s.MaxLatencyS, p.LatencyS)
		s.MinEnergyMJ = math.Min(s.MinEnergyMJ, p.EnergyMJ)
		s.MaxEnergyMJ = math.Max(s.MaxEnergyMJ, p.EnergyMJ)
		s.MinAccuracy = math.Min(s.MinAccuracy, p.Accuracy)
		s.MaxAccuracy = math.Max(s.MaxAccuracy, p.Accuracy)
	}
	s.LatencySpan = s.MaxLatencyS - s.MinLatencyS
	s.EnergySpan = s.MaxEnergyMJ - s.MinEnergyMJ
	return s
}

// SatisfiableFraction returns the fraction of budgets (cartesian product of
// the latency and energy grids) that at least one point satisfies — the
// coverage measure used by the knob ablation (A1 in DESIGN.md).
func SatisfiableFraction(points []perf.OperatingPoint, latencyGridS, energyGridMJ []float64) float64 {
	if len(latencyGridS) == 0 || len(energyGridMJ) == 0 {
		return 0
	}
	hit := 0
	for _, lt := range latencyGridS {
		for _, e := range energyGridMJ {
			b := Budget{MaxLatencyS: lt, MaxEnergyMJ: e}
			for _, p := range points {
				if b.Satisfies(p) {
					hit++
					break
				}
			}
		}
	}
	return float64(hit) / float64(len(latencyGridS)*len(energyGridMJ))
}
