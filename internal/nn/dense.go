package nn

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// GroupedDense is the dynamic DNN's classifier head (the FC layer in
// Fig 3): logits = bias + Σ_{g<active} x_g · W_gᵀ, where x_g is group g's
// feature slice. The bias is shared and assigned to group 0, so it is
// trained in incremental step 1 and frozen afterwards; later groups learn
// additive refinements of the logits, which is what lets configurations be
// pruned to a group prefix with no retraining.
type GroupedDense struct {
	name         string
	groups       int
	active       int
	featPerGroup int
	classes      int

	w    []*Param // per group: (classes, featPerGroup)
	bias *Param   // (classes,), group 0

	lastX *tensor.Tensor
}

// NewGroupedDense constructs the head. featPerGroup is the flattened
// feature count each group contributes.
func NewGroupedDense(name string, groups, featPerGroup, classes int, rng *tensor.RNG) *GroupedDense {
	if groups < 1 {
		panic(fmt.Sprintf("nn: %s: groups must be >= 1", name))
	}
	l := &GroupedDense{
		name:         name,
		groups:       groups,
		active:       groups,
		featPerGroup: featPerGroup,
		classes:      classes,
	}
	for g := 0; g < groups; g++ {
		w := newParam(fmt.Sprintf("%s.g%d.w", name, g), g, classes, featPerGroup)
		w.Value.KaimingInit(rng, featPerGroup*groups)
		l.w = append(l.w, w)
	}
	l.bias = newParam(name+".b", 0, classes)
	return l
}

// Name implements Layer.
func (l *GroupedDense) Name() string { return l.name }

// SetActiveGroups implements Layer.
func (l *GroupedDense) SetActiveGroups(k int) {
	if k < 1 || k > l.groups {
		panic(fmt.Sprintf("nn: %s: active groups %d out of range [1,%d]", l.name, k, l.groups))
	}
	l.active = k
}

// Params implements Layer.
func (l *GroupedDense) Params() []*Param {
	ps := make([]*Param, 0, l.groups+1)
	for _, w := range l.w {
		ps = append(ps, w)
	}
	return append(ps, l.bias)
}

// Forward implements Layer. Input (N, active*featPerGroup); output
// (N, classes).
func (l *GroupedDense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: %s: input rank %d, want 2", l.name, x.Rank()))
	}
	wantF := l.active * l.featPerGroup
	if x.Dim(1) != wantF {
		panic(fmt.Sprintf("nn: %s: input features %d, want %d for %d active groups", l.name, x.Dim(1), wantF, l.active))
	}
	l.lastX = x
	n := x.Dim(0)
	out := tensor.New(n, l.classes)
	bd := l.bias.Value.Data()
	parallelFor(n, func(i int) {
		xi := x.Data()[i*wantF : (i+1)*wantF]
		oi := out.Data()[i*l.classes : (i+1)*l.classes]
		copy(oi, bd)
		for g := 0; g < l.active; g++ {
			xg := xi[g*l.featPerGroup : (g+1)*l.featPerGroup]
			wd := l.w[g].Value.Data()
			for c := 0; c < l.classes; c++ {
				wc := wd[c*l.featPerGroup : (c+1)*l.featPerGroup]
				var acc float32
				for t, xv := range xg {
					acc += xv * wc[t]
				}
				oi[c] += acc
			}
		}
	})
	return out
}

// Backward implements Layer.
func (l *GroupedDense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", l.name))
	}
	n := l.lastX.Dim(0)
	wantF := l.active * l.featPerGroup
	dx := tensor.New(n, wantF)

	// Sequential accumulation: the head is cheap relative to the convs.
	for i := 0; i < n; i++ {
		xi := l.lastX.Data()[i*wantF : (i+1)*wantF]
		di := dout.Data()[i*l.classes : (i+1)*l.classes]
		dxi := dx.Data()[i*wantF : (i+1)*wantF]
		if !l.bias.Frozen {
			bg := l.bias.Grad.Data()
			for c, dv := range di {
				bg[c] += dv
			}
		}
		for g := 0; g < l.active; g++ {
			xg := xi[g*l.featPerGroup : (g+1)*l.featPerGroup]
			dxg := dxi[g*l.featPerGroup : (g+1)*l.featPerGroup]
			wd := l.w[g].Value.Data()
			var wg []float32
			if !l.w[g].Frozen {
				wg = l.w[g].Grad.Data()
			}
			for c, dv := range di {
				if dv == 0 {
					continue
				}
				wc := wd[c*l.featPerGroup : (c+1)*l.featPerGroup]
				for t := range dxg {
					dxg[t] += dv * wc[t]
				}
				if wg != nil {
					wgc := wg[c*l.featPerGroup : (c+1)*l.featPerGroup]
					for t, xv := range xg {
						wgc[t] += dv * xv
					}
				}
			}
		}
	}
	return dx
}

// MACsPerGroup returns one group's multiply-accumulate count per inference.
func (l *GroupedDense) MACsPerGroup() int64 {
	return int64(l.classes) * int64(l.featPerGroup)
}

var _ Layer = (*GroupedDense)(nil)

// Dense is a conventional fully-connected layer (no group structure),
// provided for baseline models and tests.
type Dense struct {
	name    string
	in, out int
	w, b    *Param
	lastX   *tensor.Tensor
}

// NewDense constructs a fully-connected layer with Kaiming init.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	l := &Dense{name: name, in: in, out: out}
	l.w = newParam(name+".w", 0, out, in)
	l.w.Value.KaimingInit(rng, in)
	l.b = newParam(name+".b", 0, out)
	return l
}

// Name implements Layer.
func (l *Dense) Name() string { return l.name }

// SetActiveGroups implements Layer (no-op: not group-structured).
func (l *Dense) SetActiveGroups(int) {}

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.w, l.b} }

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: %s: input shape %v, want (N,%d)", l.name, x.Shape(), l.in))
	}
	l.lastX = x
	out := tensor.MatMulABT(x, l.w.Value)
	bd := l.b.Value.Data()
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		oi := out.Data()[i*l.out : (i+1)*l.out]
		for c := range oi {
			oi[c] += bd[c]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if !l.w.Frozen {
		l.w.Grad.Add(tensor.MatMulATB(dout, l.lastX))
	}
	if !l.b.Frozen {
		bg := l.b.Grad.Data()
		n := dout.Dim(0)
		for i := 0; i < n; i++ {
			di := dout.Data()[i*l.out : (i+1)*l.out]
			for c, dv := range di {
				bg[c] += dv
			}
		}
	}
	return tensor.MatMul(dout, l.w.Value)
}

var _ Layer = (*Dense)(nil)
