package nn

import (
	"fmt"
	"strings"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// ConfusionMatrix counts predictions per (true class, predicted class).
// Rows are true classes. It underlies per-class diagnostics of the
// dynamic DNN's configurations: the paper's Fig 4(b) error bars come from
// the per-class accuracies on its diagonal.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix allocates a zeroed matrix.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, classes)
	}
	return m
}

// Update accumulates a batch of logits against labels.
func (m *ConfusionMatrix) Update(logits *tensor.Tensor, labels []int) {
	pred := logits.ArgMaxRow()
	for i, p := range pred {
		y := labels[i]
		if y < 0 || y >= m.Classes || p < 0 || p >= m.Classes {
			panic(fmt.Sprintf("nn: confusion update out of range: true %d pred %d", y, p))
		}
		m.Counts[y][p]++
	}
}

// Total returns the number of accumulated samples.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range m.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy returns the overall top-1 accuracy.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < m.Classes; i++ {
		diag += m.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// Recall returns the per-class recall (diagonal over row sum); classes
// with no samples report 0.
func (m *ConfusionMatrix) Recall(class int) float64 {
	row := m.Counts[class]
	sum := 0
	for _, c := range row {
		sum += c
	}
	if sum == 0 {
		return 0
	}
	return float64(row[class]) / float64(sum)
}

// MostConfused returns the off-diagonal cell with the highest count — the
// class pair the model mixes up most (for the synthetic dataset this
// should be a within-pair confusion, by construction).
func (m *ConfusionMatrix) MostConfused() (trueClass, predClass, count int) {
	for i := 0; i < m.Classes; i++ {
		for j := 0; j < m.Classes; j++ {
			if i != j && m.Counts[i][j] > count {
				trueClass, predClass, count = i, j, m.Counts[i][j]
			}
		}
	}
	return trueClass, predClass, count
}

// String renders a compact matrix for logs.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d samples, acc %.3f):\n", m.Total(), m.Accuracy())
	for i, row := range m.Counts {
		fmt.Fprintf(&b, "  %2d |", i)
		for _, c := range row {
			fmt.Fprintf(&b, " %4d", c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
