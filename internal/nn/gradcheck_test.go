package nn

import (
	"math"
	"testing"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// lossOf runs a forward pass and returns a deterministic scalar "loss":
// the dot product of the network output with a fixed weighting tensor.
// Using a linear functional makes the analytic dL/d(output) trivial.
func lossOf(net *Network, x, weighting *tensor.Tensor) float64 {
	out := net.Forward(x, true)
	var s float64
	for i, v := range out.Data() {
		s += float64(v) * float64(weighting.Data()[i])
	}
	return s
}

// checkGradients verifies analytic gradients of every unfrozen parameter
// and of the input against central finite differences.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, tol float64) {
	t.Helper()
	checkGradientsFrac(t, net, x, tol, 0)
}

// checkGradientsFrac is checkGradients with a tolerance for non-smooth
// points: nets containing ReLU/MaxPool are piecewise linear, and a finite
// difference that straddles a kink measures the average of two slopes while
// backprop reports one side. maxBadFrac bounds the fraction of sampled
// points allowed to disagree for that reason. Pure-linear nets must pass
// with maxBadFrac = 0.
func checkGradientsFrac(t *testing.T, net *Network, x *tensor.Tensor, tol, maxBadFrac float64) {
	t.Helper()
	out := net.Forward(x, true)
	weighting := tensor.New(out.Shape()...)
	weighting.FillNormal(tensor.NewRNG(99), 0, 1)

	net.ZeroGrads()
	net.Forward(x, true)
	dx := func() *tensor.Tensor {
		d := weighting.Clone()
		var grad *tensor.Tensor
		for i := len(net.Layers) - 1; i >= 0; i-- {
			d = net.Layers[i].Backward(d)
			grad = d
		}
		return grad
	}()

	// numericGrad estimates d(loss)/d(data[i]) with a central difference at
	// step h. ReLU masks and pool argmaxes make the loss piecewise linear;
	// if two step sizes disagree, the step crossed a kink and the point is
	// skipped (ok=false) rather than reported as a gradient bug.
	numericGrad := func(data []float32, i int) (g float64, ok bool) {
		est := func(h float32) float64 {
			orig := data[i]
			data[i] = orig + h
			lp := lossOf(net, x, weighting)
			data[i] = orig - h
			lm := lossOf(net, x, weighting)
			data[i] = orig
			return (lp - lm) / (2 * float64(h))
		}
		g1, g2 := est(1e-2), est(5e-3)
		if !closeEnough(g1, g2, 1e-2) {
			return 0, false
		}
		return g1, true
	}

	checked, bad := 0, 0
	var firstBad string

	report := func(where string, numeric, analytic float64) {
		checked++
		if !closeEnough(numeric, analytic, tol) {
			bad++
			if firstBad == "" {
				firstBad = where
			}
		}
	}

	// Parameter gradients.
	for _, p := range net.Params() {
		if p.Frozen {
			continue
		}
		data := p.Value.Data()
		grad := p.Grad.Data()
		stride := len(data)/7 + 1 // sample a subset of elements
		for i := 0; i < len(data); i += stride {
			numeric, ok := numericGrad(data, i)
			if !ok {
				continue
			}
			report(p.Name, numeric, float64(grad[i]))
		}
	}
	// Input gradients.
	data := x.Data()
	stride := len(data)/11 + 1
	for i := 0; i < len(data); i += stride {
		numeric, ok := numericGrad(data, i)
		if !ok {
			continue
		}
		report("input", numeric, float64(dx.Data()[i]))
	}

	if checked == 0 {
		t.Fatal("gradient check sampled zero smooth points")
	}
	if frac := float64(bad) / float64(checked); frac > maxBadFrac {
		t.Fatalf("gradient mismatches at %d/%d sampled points (first at %s), allowed fraction %.2f",
			bad, checked, firstBad, maxBadFrac)
	}
}

func closeEnough(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= tol*scale
}

func smallInput(n, c, h, w int, seed uint64) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

func TestGradCheckSharedInputConv(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := NewGroupedConv2D("c1", SharedInput, 2, 3,
		tensor.ConvGeom{InC: 2, InH: 6, InW: 6, Kernel: 3, Stride: 1, Pad: 1}, rng)
	net := NewNetwork(2, conv)
	checkGradients(t, net, smallInput(2, 2, 6, 6, 7), 2e-2)
}

func TestGradCheckDiagonalConv(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := NewGroupedConv2D("c2", Diagonal, 2, 3,
		tensor.ConvGeom{InC: 4, InH: 6, InW: 6, Kernel: 3, Stride: 1, Pad: 1}, rng)
	net := NewNetwork(2, conv)
	checkGradients(t, net, smallInput(2, 4, 6, 6, 8), 2e-2)
}

func TestGradCheckStridedConvNoPad(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := NewGroupedConv2D("c3", SharedInput, 1, 2,
		tensor.ConvGeom{InC: 3, InH: 7, InW: 7, Kernel: 3, Stride: 2, Pad: 0}, rng)
	net := NewNetwork(1, conv)
	checkGradients(t, net, smallInput(2, 3, 7, 7, 9), 2e-2)
}

func TestGradCheckGroupedDense(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := NewGroupedDense("fc", 3, 5, 4, rng)
	net := NewNetwork(3, d)
	x := tensor.New(3, 15)
	x.FillNormal(tensor.NewRNG(10), 0, 1)
	checkGradients(t, net, x, 2e-2)
}

func TestGradCheckDense(t *testing.T) {
	rng := tensor.NewRNG(5)
	d := NewDense("fc", 6, 4, rng)
	net := NewNetwork(0, d)
	x := tensor.New(3, 6)
	x.FillNormal(tensor.NewRNG(11), 0, 1)
	checkGradients(t, net, x, 2e-2)
}

func TestGradCheckFullStack(t *testing.T) {
	rng := tensor.NewRNG(6)
	// A miniature of the paper's dynamic CNN: shared-input conv, ReLU,
	// pool, diagonal conv, ReLU, pool, flatten, grouped dense.
	g := 2
	conv1 := NewGroupedConv2D("c1", SharedInput, g, 2,
		tensor.ConvGeom{InC: 1, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}, rng)
	conv2 := NewGroupedConv2D("c2", Diagonal, g, 2,
		tensor.ConvGeom{InC: 4, InH: 4, InW: 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
	head := NewGroupedDense("fc", g, 2*2*2, 3, rng)
	net := NewNetwork(g,
		conv1, NewReLU("r1"), NewMaxPool2x2("p1"),
		conv2, NewReLU("r2"), NewMaxPool2x2("p2"),
		NewFlatten("fl"), head)
	checkGradientsFrac(t, net, smallInput(2, 1, 8, 8, 12), 5e-2, 0.10)
}

// ReLU and MaxPool gradients, checked strictly on inputs kept away from the
// non-smooth boundaries (|preactivation| and pool-window gaps > 0.1, far
// beyond the 1e-2 finite-difference step).
func TestGradCheckReLUAwayFromKinks(t *testing.T) {
	net := NewNetwork(0, NewReLU("r"))
	x := tensor.New(2, 3, 4, 4)
	r := tensor.NewRNG(40)
	for i := range x.Data() {
		v := float32(r.NormFloat64())
		if v >= 0 {
			v += 0.2
		} else {
			v -= 0.2
		}
		x.Data()[i] = v
	}
	checkGradients(t, net, x, 1e-2)
}

func TestGradCheckMaxPoolAwayFromTies(t *testing.T) {
	net := NewNetwork(0, NewMaxPool2x2("p"))
	x := tensor.New(1, 2, 4, 4)
	// Distinct values with gaps >> eps so the argmax never flips.
	for i := range x.Data() {
		x.Data()[i] = float32(i) * 0.5
	}
	checkGradients(t, net, x, 1e-2)
}

func TestGradCheckWithReducedActiveGroups(t *testing.T) {
	rng := tensor.NewRNG(7)
	g := 3
	conv1 := NewGroupedConv2D("c1", SharedInput, g, 2,
		tensor.ConvGeom{InC: 1, InH: 4, InW: 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
	head := NewGroupedDense("fc", g, 2*4*4, 3, rng)
	net := NewNetwork(g, conv1, NewFlatten("fl"), head)
	net.SetActiveGroups(2)
	checkGradients(t, net, smallInput(2, 1, 4, 4, 13), 2e-2)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(8)
	logits := tensor.New(4, 5)
	logits.FillNormal(rng, 0, 2)
	labels := []int{0, 3, 2, 4}

	_, dl := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-2
	for i := range logits.Data() {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if !closeEnough(numeric, float64(dl.Data()[i]), 1e-2) {
			t.Fatalf("dlogits[%d]: numeric %.5f vs analytic %.5f", i, numeric, dl.Data()[i])
		}
	}
}
