package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps batch-level parallelism. Convolution forward/backward
// parallelise across samples; the cap keeps goroutine churn sensible on
// large machines while tests on small batches stay deterministic in result
// (gradients are reduced in a fixed order).
var maxWorkers = runtime.NumCPU()

// parallelFor runs fn(i) for i in [0,n) across up to maxWorkers goroutines
// and waits for completion. For n==1 it runs inline.
func parallelFor(n int, fn func(i int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	// Work distribution is an atomic claim counter rather than a channel
	// pre-filled with n indices: this path runs per conv layer per batch,
	// and the O(n) channel fill plus its allocation dominated small kernels.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
