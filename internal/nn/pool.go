package nn

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// MaxPool2x2 is 2×2/stride-2 max pooling. Spatial dims must be even. Like
// ReLU it is parameter-free and processes whatever channel count arrives.
type MaxPool2x2 struct {
	name    string
	argmax  []int
	inShape []int
}

// NewMaxPool2x2 constructs the layer.
func NewMaxPool2x2(name string) *MaxPool2x2 { return &MaxPool2x2{name: name} }

// Name implements Layer.
func (l *MaxPool2x2) Name() string { return l.name }

// SetActiveGroups implements Layer (no-op).
func (l *MaxPool2x2) SetActiveGroups(int) {}

// Params implements Layer.
func (l *MaxPool2x2) Params() []*Param { return nil }

// Forward implements Layer.
func (l *MaxPool2x2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input rank %d, want 4", l.name, x.Rank()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.inShape = append(l.inShape[:0], n, c, h, w)
	outH, outW := h/2, w/2
	out := tensor.New(n, c, outH, outW)
	if cap(l.argmax) < out.Len() {
		l.argmax = make([]int, out.Len())
	}
	l.argmax = l.argmax[:out.Len()]
	inPer := c * h * w
	outPer := c * outH * outW
	parallelFor(n, func(i int) {
		xi := x.Data()[i*inPer : (i+1)*inPer]
		oi := out.Data()[i*outPer : (i+1)*outPer]
		ai := l.argmax[i*outPer : (i+1)*outPer]
		tensor.MaxPool2x2(xi, c, h, w, oi, ai)
	})
	return out
}

// Backward implements Layer.
func (l *MaxPool2x2) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	dx := tensor.New(n, c, h, w)
	inPer := c * h * w
	outPer := dout.Len() / n
	for i := 0; i < n; i++ {
		di := dout.Data()[i*outPer : (i+1)*outPer]
		dxi := dx.Data()[i*inPer : (i+1)*inPer]
		ai := l.argmax[i*outPer : (i+1)*outPer]
		for j, dv := range di {
			dxi[ai[j]] += dv
		}
	}
	return dx
}

var _ Layer = (*MaxPool2x2)(nil)
