package nn

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// ConvMode selects how a grouped convolution's groups connect to the input.
type ConvMode int

const (
	// SharedInput: every group reads the full input (used for the first
	// layer, whose input is the raw image shared by all groups).
	SharedInput ConvMode = iota
	// Diagonal: group g reads only input-channel group g (standard group
	// convolution, Fig 3(a) of the paper). Groups form independent towers,
	// which is what makes later groups prunable at runtime.
	Diagonal
)

// GroupedConv2D is a 2-D convolution whose output channels are divided into
// G groups that can be pruned to a prefix at runtime (the paper's group
// convolution pruning). Each group's weights are a separate Param so the
// incremental trainer can freeze earlier groups (Fig 3(b)).
type GroupedConv2D struct {
	name        string
	mode        ConvMode
	groups      int
	active      int
	outPerGroup int
	inPerGroup  int // Diagonal mode: input channels per group
	geom        tensor.ConvGeom

	w []*Param // per group: (outPerGroup, inCg*K*K)
	b []*Param // per group: (outPerGroup)

	// Cached for backward (valid for the most recent Forward call).
	lastX    *tensor.Tensor
	lastCols [][]*tensor.Tensor // [sample][group or 0(shared)]
}

// NewGroupedConv2D constructs the layer.
//
// geom.InC must be the full input channel count when all G groups are
// active: for SharedInput it is the raw input channel count (e.g. 3); for
// Diagonal it must be divisible by groups. outPerGroup is the number of
// output channels contributed by each group.
func NewGroupedConv2D(name string, mode ConvMode, groups, outPerGroup int, geom tensor.ConvGeom, rng *tensor.RNG) *GroupedConv2D {
	if groups < 1 {
		panic(fmt.Sprintf("nn: %s: groups must be >= 1", name))
	}
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	l := &GroupedConv2D{
		name:        name,
		mode:        mode,
		groups:      groups,
		active:      groups,
		outPerGroup: outPerGroup,
		geom:        geom,
	}
	switch mode {
	case SharedInput:
		l.inPerGroup = geom.InC
	case Diagonal:
		if geom.InC%groups != 0 {
			panic(fmt.Sprintf("nn: %s: input channels %d not divisible by %d groups", name, geom.InC, groups))
		}
		l.inPerGroup = geom.InC / groups
	default:
		panic("nn: unknown conv mode")
	}
	k := geom.Kernel
	fanIn := l.inPerGroup * k * k
	for g := 0; g < groups; g++ {
		w := newParam(fmt.Sprintf("%s.g%d.w", name, g), g, outPerGroup, fanIn)
		w.Value.KaimingInit(rng, fanIn)
		b := newParam(fmt.Sprintf("%s.g%d.b", name, g), g, outPerGroup)
		l.w = append(l.w, w)
		l.b = append(l.b, b)
	}
	return l
}

// Name implements Layer.
func (l *GroupedConv2D) Name() string { return l.name }

// SetActiveGroups implements Layer.
func (l *GroupedConv2D) SetActiveGroups(k int) {
	if k < 1 || k > l.groups {
		panic(fmt.Sprintf("nn: %s: active groups %d out of range [1,%d]", l.name, k, l.groups))
	}
	l.active = k
}

// Params implements Layer.
func (l *GroupedConv2D) Params() []*Param {
	ps := make([]*Param, 0, 2*l.groups)
	for g := 0; g < l.groups; g++ {
		ps = append(ps, l.w[g], l.b[g])
	}
	return ps
}

// groupGeom returns the im2col geometry for one group's input slice.
func (l *GroupedConv2D) groupGeom() tensor.ConvGeom {
	g := l.geom
	g.InC = l.inPerGroup
	return g
}

// expectedInC returns the input channel count for the current active-group
// setting.
func (l *GroupedConv2D) expectedInC() int {
	if l.mode == SharedInput {
		return l.geom.InC
	}
	return l.active * l.inPerGroup
}

// Forward implements Layer. Input shape (N, inC, H, W) with inC matching
// the active-group setting; output (N, active*outPerGroup, outH, outW).
func (l *GroupedConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input rank %d, want 4", l.name, x.Rank()))
	}
	n, inC := x.Dim(0), x.Dim(1)
	if inC != l.expectedInC() {
		panic(fmt.Sprintf("nn: %s: input channels %d, want %d for %d active groups", l.name, inC, l.expectedInC(), l.active))
	}
	if x.Dim(2) != l.geom.InH || x.Dim(3) != l.geom.InW {
		panic(fmt.Sprintf("nn: %s: spatial %dx%d, want %dx%d", l.name, x.Dim(2), x.Dim(3), l.geom.InH, l.geom.InW))
	}
	gg := l.groupGeom()
	outH, outW := gg.OutH(), gg.OutW()
	outHW := outH * outW
	active := l.active
	out := tensor.New(n, active*l.outPerGroup, outH, outW)

	l.lastX = x
	l.lastCols = make([][]*tensor.Tensor, n)

	inHW := l.geom.InH * l.geom.InW
	fanIn := l.inPerGroup * l.geom.Kernel * l.geom.Kernel

	parallelFor(n, func(i int) {
		xi := x.Data()[i*inC*inHW : (i+1)*inC*inHW]
		oi := out.Data()[i*active*l.outPerGroup*outHW : (i+1)*active*l.outPerGroup*outHW]
		if l.mode == SharedInput {
			cols := tensor.New(outHW, fanIn)
			tensor.Im2Col(xi, gg, cols)
			l.lastCols[i] = []*tensor.Tensor{cols}
			for g := 0; g < active; g++ {
				l.convGroupForward(cols, g, oi[g*l.outPerGroup*outHW:(g+1)*l.outPerGroup*outHW], outHW)
			}
			return
		}
		l.lastCols[i] = make([]*tensor.Tensor, active)
		for g := 0; g < active; g++ {
			sub := xi[g*l.inPerGroup*inHW : (g+1)*l.inPerGroup*inHW]
			cols := tensor.New(outHW, fanIn)
			tensor.Im2Col(sub, gg, cols)
			l.lastCols[i][g] = cols
			l.convGroupForward(cols, g, oi[g*l.outPerGroup*outHW:(g+1)*l.outPerGroup*outHW], outHW)
		}
	})
	return out
}

// convGroupForward computes one group's output block: for each output
// channel c of the group, outBlock[c*outHW+p] = cols[p]·w[c] + b[c].
func (l *GroupedConv2D) convGroupForward(cols *tensor.Tensor, g int, outBlock []float32, outHW int) {
	w := l.w[g].Value
	b := l.b[g].Value.Data()
	fanIn := w.Dim(1)
	cd := cols.Data()
	wd := w.Data()
	for c := 0; c < l.outPerGroup; c++ {
		wc := wd[c*fanIn : (c+1)*fanIn]
		bias := b[c]
		for p := 0; p < outHW; p++ {
			row := cd[p*fanIn : (p+1)*fanIn]
			var acc float32
			for t, rv := range row {
				acc += rv * wc[t]
			}
			outBlock[c*outHW+p] = acc + bias
		}
	}
}

// Backward implements Layer. dout shape (N, active*outPerGroup, outH, outW);
// returns dX with the same shape as the forward input.
func (l *GroupedConv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", l.name))
	}
	n := l.lastX.Dim(0)
	inC := l.lastX.Dim(1)
	gg := l.groupGeom()
	outHW := gg.OutH() * gg.OutW()
	active := l.active
	fanIn := l.inPerGroup * l.geom.Kernel * l.geom.Kernel
	inHW := l.geom.InH * l.geom.InW

	dx := tensor.New(n, inC, l.geom.InH, l.geom.InW)

	// Per-worker gradient accumulators avoid a mutex in the hot loop; they
	// are reduced deterministically afterwards (sample order).
	type grads struct {
		dw []*tensor.Tensor
		db []*tensor.Tensor
	}
	perSample := make([]grads, n)

	parallelFor(n, func(i int) {
		di := dout.Data()[i*active*l.outPerGroup*outHW : (i+1)*active*l.outPerGroup*outHW]
		dxi := dx.Data()[i*inC*inHW : (i+1)*inC*inHW]
		gs := grads{
			dw: make([]*tensor.Tensor, active),
			db: make([]*tensor.Tensor, active),
		}
		// Shared dCols for SharedInput mode accumulates over groups.
		var sharedDCols *tensor.Tensor
		if l.mode == SharedInput {
			sharedDCols = tensor.New(outHW, fanIn)
		}
		for g := 0; g < active; g++ {
			var cols *tensor.Tensor
			if l.mode == SharedInput {
				cols = l.lastCols[i][0]
			} else {
				cols = l.lastCols[i][g]
			}
			dBlock := di[g*l.outPerGroup*outHW : (g+1)*l.outPerGroup*outHW]

			// Parameter gradients (skipped entirely for frozen groups).
			if !l.w[g].Frozen {
				dw := tensor.New(l.outPerGroup, fanIn)
				db := tensor.New(l.outPerGroup)
				cd := cols.Data()
				dwd := dw.Data()
				dbd := db.Data()
				for c := 0; c < l.outPerGroup; c++ {
					dwc := dwd[c*fanIn : (c+1)*fanIn]
					var bsum float32
					for p := 0; p < outHW; p++ {
						dv := dBlock[c*outHW+p]
						if dv == 0 {
							continue
						}
						bsum += dv
						row := cd[p*fanIn : (p+1)*fanIn]
						for t, rv := range row {
							dwc[t] += dv * rv
						}
					}
					dbd[c] = bsum
				}
				gs.dw[g] = dw
				gs.db[g] = db
			}

			// Input gradient: dCols = Dᵀ-expansion then Col2Im.
			dcols := sharedDCols
			if l.mode == Diagonal {
				dcols = tensor.New(outHW, fanIn)
			}
			wd := l.w[g].Value.Data()
			dcd := dcols.Data()
			for c := 0; c < l.outPerGroup; c++ {
				wc := wd[c*fanIn : (c+1)*fanIn]
				for p := 0; p < outHW; p++ {
					dv := dBlock[c*outHW+p]
					if dv == 0 {
						continue
					}
					row := dcd[p*fanIn : (p+1)*fanIn]
					for t, wv := range wc {
						row[t] += dv * wv
					}
				}
			}
			if l.mode == Diagonal {
				sub := dxi[g*l.inPerGroup*inHW : (g+1)*l.inPerGroup*inHW]
				tensor.Col2Im(dcols, gg, sub)
			}
		}
		if l.mode == SharedInput {
			tensor.Col2Im(sharedDCols, gg, dxi)
		}
		perSample[i] = gs
	})

	// Deterministic reduction.
	for i := 0; i < n; i++ {
		for g := 0; g < active; g++ {
			if perSample[i].dw[g] != nil {
				l.w[g].Grad.Add(perSample[i].dw[g])
				l.b[g].Grad.Add(perSample[i].db[g])
			}
		}
	}
	return dx
}

// OutShape returns the output (C,H,W) for k active groups, used by the
// FLOPs accounting in dyndnn.
func (l *GroupedConv2D) OutShape(k int) (c, h, w int) {
	gg := l.groupGeom()
	return k * l.outPerGroup, gg.OutH(), gg.OutW()
}

// MACsPerGroup returns the multiply-accumulate count contributed by a
// single group for one inference, the unit of the perf model's workload.
func (l *GroupedConv2D) MACsPerGroup() int64 {
	gg := l.groupGeom()
	fanIn := l.inPerGroup * l.geom.Kernel * l.geom.Kernel
	return int64(l.outPerGroup) * int64(fanIn) * int64(gg.OutH()) * int64(gg.OutW())
}

var _ Layer = (*GroupedConv2D)(nil)
