package nn

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits (N, classes) with integer labels, and the gradient dL/dlogits
// (already divided by N). It is the standard fused softmax+CE used for
// classification training.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dlogits *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic("nn: SoftmaxCrossEntropy requires rank-2 logits")
	}
	n, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	probs := logits.Clone().SoftmaxRows()
	dlogits = probs.Clone()
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		p := probs.At(i, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p)) * invN
		dlogits.Set(dlogits.At(i, y)-1, i, y)
	}
	dlogits.Scale(float32(invN))
	return loss, dlogits
}

// Accuracy returns the top-1 accuracy of logits against labels, in [0,1].
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgMaxRow()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// PerClassAccuracy returns top-1 accuracy broken down by true class, the
// statistic behind Fig 4(b)'s error bars ("variance over 10 image classes").
// Classes with no samples report NaN.
func PerClassAccuracy(logits *tensor.Tensor, labels []int, classes int) []float64 {
	pred := logits.ArgMaxRow()
	correct := make([]int, classes)
	total := make([]int, classes)
	for i, p := range pred {
		total[labels[i]]++
		if p == labels[i] {
			correct[labels[i]]++
		}
	}
	out := make([]float64, classes)
	for c := 0; c < classes; c++ {
		if total[c] == 0 {
			out[c] = math.NaN()
			continue
		}
		out[c] = float64(correct[c]) / float64(total[c])
	}
	return out
}

// MeanConfidence returns the average top-1 softmax probability — the
// paper's platform-independent "confidence" monitor.
func MeanConfidence(logits *tensor.Tensor) float64 {
	probs := logits.Clone().SoftmaxRows()
	n := probs.Dim(0)
	var s float64
	for i := 0; i < n; i++ {
		row := probs.Row(i)
		best := row[0]
		for _, v := range row[1:] {
			if v > best {
				best = v
			}
		}
		s += float64(best)
	}
	return s / float64(n)
}

// MeanStd returns the mean and standard deviation of xs, ignoring NaNs.
func MeanStd(xs []float64) (mean, std float64) {
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		mean += x
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean /= float64(n)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(n))
	return mean, std
}
