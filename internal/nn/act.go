package nn

import (
	"fmt"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// ReLU is a rectified-linear activation. It caches the activation mask for
// the backward pass and has no parameters, so it is group-agnostic: it
// simply processes however many channels the active-group setting delivers.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// SetActiveGroups implements Layer (no-op).
func (l *ReLU) SetActiveGroups(int) {}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(l.mask) < out.Len() {
		l.mask = make([]bool, out.Len())
	}
	l.mask = l.mask[:out.Len()]
	d := out.Data()
	for i, v := range d {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			d[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) != dout.Len() {
		panic(fmt.Sprintf("nn: %s: backward size %d does not match cached mask %d", l.name, dout.Len(), len(l.mask)))
	}
	dx := dout.Clone()
	d := dx.Data()
	for i := range d {
		if !l.mask[i] {
			d[i] = 0
		}
	}
	return dx
}

var _ Layer = (*ReLU)(nil)

// Flatten reshapes (N,C,H,W) to (N, C*H*W). Because tensors are NCHW and
// channel groups are contiguous, each group's features stay contiguous
// after flattening, which is what GroupedDense relies on.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// SetActiveGroups implements Layer (no-op).
func (l *Flatten) SetActiveGroups(int) {}

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (l *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(l.lastShape...)
}

var _ Layer = (*Flatten)(nil)
