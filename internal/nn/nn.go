// Package nn is a from-scratch neural-network substrate supporting the
// paper's dynamic DNN: grouped convolutions with a prunable group-prefix
// structure, per-group parameter freezing for incremental training
// (Fig 3 of the paper), and plain SGD training — all on the stdlib only.
//
// Layers operate on NCHW float32 tensors. A network processes batches; the
// convolution layers parallelise across the batch internally because they
// dominate the runtime.
package nn

import (
	"fmt"
	"math"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator. Group records
// which dynamic-DNN group the parameter belongs to (0-based); parameters
// that are not group-structured (e.g. a shared bias) use group 0 so they are
// trained in the first incremental step and frozen afterwards, exactly as
// the paper's shared classifier bias is.
type Param struct {
	Name   string
	Group  int
	Value  *tensor.Tensor
	Grad   *tensor.Tensor
	Frozen bool
}

func newParam(name string, group int, shape ...int) *Param {
	return &Param{
		Name:  name,
		Group: group,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumElems returns the number of scalar parameters.
func (p *Param) NumElems() int { return p.Value.Len() }

// Layer is one stage of a sequential network. Forward consumes the previous
// activation and returns the next; Backward consumes dL/d(output) and
// returns dL/d(input), accumulating parameter gradients along the way.
//
// SetActiveGroups restricts group-structured layers to their first k groups
// (the paper's runtime pruning knob); layers without group structure ignore
// it. Layers must tolerate inputs whose channel count reflects the caller's
// current active-group setting.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	SetActiveGroups(k int)
}

// Network is a sequential container of layers.
type Network struct {
	Layers []Layer
	groups int // total dynamic groups (0 = not group-structured)
	active int
}

// NewNetwork builds a sequential network. groups is the dynamic-DNN group
// count G (4 in the paper); pass 0 for a conventional static network.
func NewNetwork(groups int, layers ...Layer) *Network {
	n := &Network{Layers: layers, groups: groups, active: groups}
	if groups == 0 {
		n.active = 0
	}
	return n
}

// Groups returns the total group count G.
func (n *Network) Groups() int { return n.groups }

// ActiveGroups returns the currently enabled group count.
func (n *Network) ActiveGroups() int { return n.active }

// SetActiveGroups enables the first k of G groups in every layer: the
// runtime model-size knob. It panics for k outside [1, G], or any k != 0
// on a non-grouped network.
func (n *Network) SetActiveGroups(k int) {
	if n.groups == 0 {
		panic("nn: SetActiveGroups on a non-grouped network")
	}
	if k < 1 || k > n.groups {
		panic(fmt.Sprintf("nn: active groups %d out of range [1,%d]", k, n.groups))
	}
	n.active = k
	for _, l := range n.Layers {
		l.SetActiveGroups(k)
	}
}

// Forward runs the whole network on a batch.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/d(logits) through all layers.
func (n *Network) Backward(dout *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
}

// Params returns every parameter of every layer, in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// FreezeGroupsBelow freezes every parameter whose group index is < g and
// unfreezes the rest. Incremental step i of the paper calls
// FreezeGroupsBelow(i) before training group i.
func (n *Network) FreezeGroupsBelow(g int) {
	for _, p := range n.Params() {
		p.Frozen = p.Group < g
	}
}

// FreezeAll marks every parameter frozen (inference-only use).
func (n *Network) FreezeAll() {
	for _, p := range n.Params() {
		p.Frozen = true
	}
}

// UnfreezeAll marks every parameter trainable.
func (n *Network) UnfreezeAll() {
	for _, p := range n.Params() {
		p.Frozen = false
	}
}

// NumParams returns the total scalar parameter count across all groups.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.NumElems()
	}
	return total
}

// NumParamsForGroups returns the scalar parameter count used when only the
// first k groups are active — the paper's "25% model uses one group of DNN
// parameters" accounting.
func (n *Network) NumParamsForGroups(k int) int {
	total := 0
	for _, p := range n.Params() {
		if p.Group < k {
			total += p.NumElems()
		}
	}
	return total
}

// ParamChecksum returns a cheap deterministic digest of all parameter
// values in groups < k. Tests use it to prove that enabling more groups
// (or training later groups) leaves earlier-group weights bit-identical —
// the paper's "no retraining" property.
func (n *Network) ParamChecksum(k int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, p := range n.Params() {
		if p.Group >= k {
			continue
		}
		for _, v := range p.Value.Data() {
			h ^= uint64(math.Float32bits(v))
			h *= 1099511628211
		}
	}
	return h
}
