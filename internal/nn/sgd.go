package nn

import "github.com/emlrtm/emlrtm/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and L2 weight
// decay. Frozen parameters are skipped entirely — their values AND their
// momentum state stay untouched, which is what guarantees the incremental
// trainer's bit-identical earlier groups.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs the optimiser.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every unfrozen parameter and zeroes all
// gradients (frozen ones included, so stale gradients never leak into a
// later unfreeze).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		g := p.Grad
		if s.WeightDecay != 0 {
			g.AddScaled(s.WeightDecay, p.Value)
		}
		// v = momentum*v - lr*g ; w += v
		v.Scale(s.Momentum).AddScaled(-s.LR, g)
		p.Value.Add(v)
		p.ZeroGrad()
	}
}

// ResetMomentum clears all velocity state (used between incremental
// training steps so a newly unfrozen group starts cold).
func (s *SGD) ResetMomentum() {
	s.velocity = make(map[*Param]*tensor.Tensor)
}
