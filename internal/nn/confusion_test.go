package nn

import (
	"strings"
	"testing"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(3)
	logits := tensor.FromSlice([]float32{
		5, 0, 0, // pred 0
		0, 5, 0, // pred 1
		0, 5, 0, // pred 1
		0, 0, 5, // pred 2
	}, 4, 3)
	m.Update(logits, []int{0, 1, 0, 2})
	if m.Total() != 4 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.Accuracy() != 0.75 {
		t.Fatalf("accuracy = %v", m.Accuracy())
	}
	if m.Recall(0) != 0.5 || m.Recall(1) != 1 || m.Recall(2) != 1 {
		t.Fatalf("recalls = %v %v %v", m.Recall(0), m.Recall(1), m.Recall(2))
	}
	tc, pc, n := m.MostConfused()
	if tc != 0 || pc != 1 || n != 1 {
		t.Fatalf("most confused = (%d,%d,%d)", tc, pc, n)
	}
	if !strings.Contains(m.String(), "acc 0.750") {
		t.Fatalf("render: %s", m.String())
	}
}

func TestConfusionMatrixEmptyAndPanics(t *testing.T) {
	m := NewConfusionMatrix(2)
	if m.Accuracy() != 0 || m.Recall(0) != 0 {
		t.Fatal("empty matrix must report zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label must panic")
		}
	}()
	logits := tensor.FromSlice([]float32{1, 0}, 1, 2)
	m.Update(logits, []int{7})
}
