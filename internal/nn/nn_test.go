package nn

import (
	"testing"
	"testing/quick"

	"github.com/emlrtm/emlrtm/internal/tensor"
)

// buildMiniDynNet constructs a small grouped network used across tests.
func buildMiniDynNet(groups int, seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	conv1 := NewGroupedConv2D("c1", SharedInput, groups, 2,
		tensor.ConvGeom{InC: 1, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}, rng)
	conv2 := NewGroupedConv2D("c2", Diagonal, groups, 2,
		tensor.ConvGeom{InC: 2 * groups, InH: 4, InW: 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
	head := NewGroupedDense("fc", groups, 2*2*2, 3, rng)
	return NewNetwork(groups,
		conv1, NewReLU("r1"), NewMaxPool2x2("p1"),
		conv2, NewReLU("r2"), NewMaxPool2x2("p2"),
		NewFlatten("fl"), head)
}

func TestNetworkOutputShapes(t *testing.T) {
	net := buildMiniDynNet(4, 1)
	x := smallInput(3, 1, 8, 8, 2)
	for k := 1; k <= 4; k++ {
		net.SetActiveGroups(k)
		out := net.Forward(x, false)
		if out.Dim(0) != 3 || out.Dim(1) != 3 {
			t.Fatalf("k=%d: output shape %v, want (3,3)", k, out.Shape())
		}
	}
}

func TestSetActiveGroupsBounds(t *testing.T) {
	net := buildMiniDynNet(4, 1)
	for _, bad := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetActiveGroups(%d) must panic", bad)
				}
			}()
			net.SetActiveGroups(bad)
		}()
	}
}

func TestSetActiveGroupsOnStaticNetworkPanics(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(0, NewDense("d", 4, 2, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.SetActiveGroups(1)
}

// The paper's key prunability property: the output with k active groups
// must not depend on any parameter of groups > k.
func TestPrunedOutputIndependentOfLaterGroups(t *testing.T) {
	net := buildMiniDynNet(4, 5)
	x := smallInput(2, 1, 8, 8, 6)
	for k := 1; k < 4; k++ {
		net.SetActiveGroups(k)
		before := net.Forward(x, false).Clone()

		// Scramble every parameter belonging to groups > k.
		scramble := tensor.NewRNG(uint64(100 + k))
		for _, p := range net.Params() {
			if p.Group >= k {
				p.Value.FillNormal(scramble, 0, 10)
			}
		}
		after := net.Forward(x, false)
		if !before.AllClose(after, 0) {
			t.Fatalf("k=%d: output changed when groups > k were scrambled", k)
		}
		// Restore for next iteration by rebuilding deterministically.
		net = buildMiniDynNet(4, 5)
	}
}

// Adding a group changes logits only by an additive per-sample term
// composed of the new tower's contribution — i.e. removing it reproduces
// the smaller configuration exactly (runtime pruning needs no retraining).
func TestGroupContributionAdditivity(t *testing.T) {
	net := buildMiniDynNet(4, 7)
	x := smallInput(2, 1, 8, 8, 8)
	net.SetActiveGroups(4)
	full := net.Forward(x, false).Clone()
	net.SetActiveGroups(3)
	partial := net.Forward(x, false).Clone()

	// The difference must be exactly group 3's head contribution; verify
	// it is consistent across a repeated evaluation (deterministic) and
	// non-zero (group 3 genuinely participates).
	diff := full.Clone().Sub(partial)
	if diff.AbsMax() == 0 {
		t.Fatal("fourth group contributed nothing — group wiring broken")
	}
	net.SetActiveGroups(4)
	full2 := net.Forward(x, false)
	if !full.AllClose(full2, 0) {
		t.Fatal("forward is not deterministic")
	}
}

func TestFreezeGroupsBelow(t *testing.T) {
	net := buildMiniDynNet(4, 9)
	net.FreezeGroupsBelow(2)
	for _, p := range net.Params() {
		if p.Group < 2 && !p.Frozen {
			t.Fatalf("param %s (group %d) should be frozen", p.Name, p.Group)
		}
		if p.Group >= 2 && p.Frozen {
			t.Fatalf("param %s (group %d) should be trainable", p.Name, p.Group)
		}
	}
	net.UnfreezeAll()
	for _, p := range net.Params() {
		if p.Frozen {
			t.Fatal("UnfreezeAll left a frozen param")
		}
	}
	net.FreezeAll()
	for _, p := range net.Params() {
		if !p.Frozen {
			t.Fatal("FreezeAll left a trainable param")
		}
	}
}

func TestFrozenParamsUntouchedBySGD(t *testing.T) {
	net := buildMiniDynNet(2, 10)
	x := smallInput(4, 1, 8, 8, 11)
	labels := []int{0, 1, 2, 0}

	net.FreezeGroupsBelow(1) // freeze group 0, train group 1
	sum0 := net.ParamChecksum(1)

	opt := NewSGD(0.05, 0.9, 1e-4)
	for step := 0; step < 5; step++ {
		net.SetActiveGroups(2)
		logits := net.Forward(x, true)
		_, dl := SoftmaxCrossEntropy(logits, labels)
		net.Backward(dl)
		opt.Step(net.Params())
	}
	if net.ParamChecksum(1) != sum0 {
		t.Fatal("training group 1 modified frozen group 0 weights")
	}
}

func TestSGDReducesLossOnTinyProblem(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := NewNetwork(0, NewDense("d1", 4, 16, rng), NewReLU("r"), NewDense("d2", 16, 3, rng))
	// Three linearly separable clusters.
	n := 30
	x := tensor.New(n, 4)
	labels := make([]int, n)
	dataRNG := tensor.NewRNG(13)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		for j := 0; j < 4; j++ {
			base := float32(0)
			if j == c {
				base = 3
			}
			x.Set(base+0.3*float32(dataRNG.NormFloat64()), i, j)
		}
	}
	opt := NewSGD(0.1, 0.9, 0)
	first, _ := SoftmaxCrossEntropy(net.Forward(x, true), labels)
	var last float64
	for step := 0; step < 60; step++ {
		logits := net.Forward(x, true)
		loss, dl := SoftmaxCrossEntropy(logits, labels)
		last = loss
		net.Backward(dl)
		opt.Step(net.Params())
	}
	if last >= first*0.5 {
		t.Fatalf("loss did not halve: first %.4f last %.4f", first, last)
	}
	if acc := Accuracy(net.Forward(x, false), labels); acc < 0.9 {
		t.Fatalf("accuracy %.2f on trivially separable data", acc)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// On a 1-D quadratic (loss = 0.5*w², grad = w), momentum must make
	// more progress than plain SGD at equal LR after a few steps.
	run := func(momentum float32) float32 {
		p := newParam("w", 0, 1)
		p.Value.Data()[0] = 1
		opt := NewSGD(0.05, momentum, 0)
		for i := 0; i < 20; i++ {
			p.Grad.Data()[0] = p.Value.Data()[0]
			opt.Step([]*Param{p})
		}
		v := p.Value.Data()[0]
		if v < 0 {
			v = -v
		}
		return v
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum did not accelerate convergence on a quadratic")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 0, 1)
	p.Value.Data()[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // zero gradient: only decay acts
	if got := p.Value.Data()[0]; got >= 1 {
		t.Fatalf("weight decay failed to shrink: %v", got)
	}
}

func TestNumParamsForGroupsLinear(t *testing.T) {
	net := buildMiniDynNet(4, 14)
	total := net.NumParams()
	p1 := net.NumParamsForGroups(1)
	p4 := net.NumParamsForGroups(4)
	if p4 != total {
		t.Fatalf("all-groups params %d != total %d", p4, total)
	}
	// Group 0 carries the shared bias, so p1 >= total/4; later groups are
	// equal-sized.
	delta21 := net.NumParamsForGroups(2) - p1
	delta32 := net.NumParamsForGroups(3) - net.NumParamsForGroups(2)
	if delta21 != delta32 {
		t.Fatalf("group sizes differ: +%d vs +%d", delta21, delta32)
	}
	if p1 <= 0 || p1 >= total {
		t.Fatalf("group-1 params %d out of range (total %d)", p1, total)
	}
}

func TestParamChecksumSensitivity(t *testing.T) {
	net := buildMiniDynNet(2, 15)
	sum := net.ParamChecksum(2)
	net.Params()[0].Value.Data()[0] += 1
	if net.ParamChecksum(2) == sum {
		t.Fatal("checksum did not change after weight mutation")
	}
}

func TestAccuracyAndConfidence(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		5, 0, 0,
		0, 5, 0,
		0, 0, 5,
		5, 0, 0,
	}, 4, 3)
	labels := []int{0, 1, 2, 1}
	if acc := Accuracy(logits, labels); acc != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", acc)
	}
	pc := PerClassAccuracy(logits, labels, 3)
	if pc[0] != 1 || pc[1] != 0.5 || pc[2] != 1 {
		t.Fatalf("per-class = %v, want [1 0.5 1]", pc)
	}
	conf := MeanConfidence(logits)
	if conf < 0.8 || conf > 1 {
		t.Fatalf("confidence = %v for peaked logits", conf)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Fatalf("mean = %v, want 2.5", m)
	}
	if s < 1.11 || s > 1.12 {
		t.Fatalf("std = %v, want ~1.118", s)
	}
}

// Property: for any active-group setting, ReLU(x) >= 0 and pooling output
// max equals input window max (spot-checked through the full net: outputs
// are finite and deterministic).
func TestForwardDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		net := buildMiniDynNet(3, 21)
		x := smallInput(2, 1, 8, 8, seed)
		k := 1 + int(seed%3)
		net.SetActiveGroups(k)
		a := net.Forward(x, false).Clone()
		b := net.Forward(x, false)
		return a.AllClose(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMACsAccounting(t *testing.T) {
	rng := tensor.NewRNG(30)
	conv := NewGroupedConv2D("c", Diagonal, 4, 8,
		tensor.ConvGeom{InC: 16, InH: 8, InW: 8, Kernel: 3, Stride: 1, Pad: 1}, rng)
	// Per group: out 8 channels × (4 in × 9 taps) × 64 positions.
	want := int64(8) * (4 * 9) * 64
	if got := conv.MACsPerGroup(); got != want {
		t.Fatalf("MACsPerGroup = %d, want %d", got, want)
	}
	d := NewGroupedDense("fc", 4, 32, 10, rng)
	if got := d.MACsPerGroup(); got != 320 {
		t.Fatalf("dense MACsPerGroup = %d, want 320", got)
	}
}

func TestConvRejectsWrongChannelCount(t *testing.T) {
	rng := tensor.NewRNG(31)
	conv := NewGroupedConv2D("c", Diagonal, 2, 2,
		tensor.ConvGeom{InC: 4, InH: 4, InW: 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
	net := NewNetwork(2, conv)
	net.SetActiveGroups(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input channels")
		}
	}()
	net.Forward(smallInput(1, 3, 4, 4, 32), false) // 3 channels, want 4
}

func TestDiagonalConvRequiresDivisibleChannels(t *testing.T) {
	rng := tensor.NewRNG(33)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible channels")
		}
	}()
	NewGroupedConv2D("c", Diagonal, 3, 2,
		tensor.ConvGeom{InC: 4, InH: 4, InW: 4, Kernel: 3, Stride: 1, Pad: 1}, rng)
}
